package wormnoc_test

import (
	"fmt"
	"testing"

	"wormnoc/internal/core"
	"wormnoc/internal/exp"
	"wormnoc/internal/mapopt"
	"wormnoc/internal/noc"
	"wormnoc/internal/priority"
	"wormnoc/internal/sim"
	"wormnoc/internal/traffic"
	"wormnoc/internal/workload"
)

// BenchmarkSLA measures the stage-level baseline at sweep scale.
func BenchmarkSLA(b *testing.B) {
	topo := noc.MustMesh(4, 4, noc.RouterConfig{BufDepth: 8, LinkLatency: 1})
	sys, err := workload.Synthetic(topo, workload.SynthConfig{NumFlows: 200, Seed: 13})
	if err != nil {
		b.Fatal(err)
	}
	sets := core.BuildSets(sys)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.AnalyzeWithSets(sys, sets, core.Options{Method: core.SLA}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTightness measures the per-flow tightness study at bench
// scale.
func BenchmarkTightness(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := exp.RunTightness(exp.TightnessConfig{
			Width: 4, Height: 4,
			FlowCounts:   []int{200},
			SetsPerPoint: 4,
			Seed:         int64(i),
			Workers:      1,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulatorMeshScaling measures simulator throughput versus
// mesh size at a fixed per-node load, under both the historical
// synchronized burst (all releases at cycle 0, "saturated") and
// staggered releases ("moderate", where the event-driven engine's
// dirty-link arbitration avoids scanning the whole mesh every cycle).
func BenchmarkSimulatorMeshScaling(b *testing.B) {
	for _, dim := range []int{2, 4, 8} {
		topo := noc.MustMesh(dim, dim, noc.RouterConfig{BufDepth: 4, LinkLatency: 1})
		sys, err := workload.Synthetic(topo, workload.SynthConfig{
			NumFlows: 2 * dim * dim, Seed: 21,
		})
		if err != nil {
			b.Fatal(err)
		}
		const horizon = 50_000
		for _, load := range []string{"saturated", "moderate"} {
			var offsets []noc.Cycles
			if load == "moderate" {
				offsets = staggeredOffsets(2*dim*dim, horizon, 17)
			}
			b.Run(fmt.Sprintf("%dx%d/%s", dim, dim, load), func(b *testing.B) {
				eng := sim.NewEngine(sys)
				cfg := sim.Config{Duration: horizon, Offsets: offsets}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := eng.Run(cfg); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(horizon)*float64(b.N)/b.Elapsed().Seconds(), "cycles/s")
			})
		}
	}
}

// BenchmarkAudsley measures the priority-assignment search (O(n²)
// analyses).
func BenchmarkAudsley(b *testing.B) {
	topo := noc.MustMesh(3, 3, noc.RouterConfig{BufDepth: 2, LinkLatency: 1})
	sys, err := workload.Synthetic(topo, workload.SynthConfig{NumFlows: 16, Seed: 31})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := priority.Audsley(topo, sys.Flows(), core.Options{Method: core.IBN}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMappingOptimizer measures the annealing search with the IBN
// oracle on the AV benchmark.
func BenchmarkMappingOptimizer(b *testing.B) {
	topo := noc.MustMesh(4, 4, noc.RouterConfig{BufDepth: 2, LinkLatency: 1})
	g := mapopt.AVGraph()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := mapopt.Optimize(g, topo, mapopt.Config{
			Analysis:   core.Options{Method: core.IBN, BufDepth: 2},
			Iterations: 50,
			Seed:       int64(i),
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWorstCaseSearch measures the adversarial phasing search.
// "didactic" is the historical scenario — 3 flows on a small topology,
// busy for a third of each hyperperiod. "synthetic" searches a 4x4 mesh
// flow set whose random probe phasings leave the mesh mostly idle, the
// regime the search actually spends its time in during oracle runs —
// and where the event-driven engine's cycle skipping dominates.
func BenchmarkWorstCaseSearch(b *testing.B) {
	topo := noc.MustMesh(4, 4, noc.RouterConfig{BufDepth: 4, LinkLatency: 1})
	synth, err := workload.Synthetic(topo, workload.SynthConfig{NumFlows: 32, Seed: 9})
	if err != nil {
		b.Fatal(err)
	}
	for _, sc := range []struct {
		name     string
		sys      *traffic.System
		duration noc.Cycles
		target   int
	}{
		{"didactic", workload.Didactic(2), 10_000, 2},
		{"synthetic", synth, 20_000, 0},
	} {
		b.Run(sc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := sim.SearchWorstCase(sc.sys, sim.SearchConfig{
					Base:     sim.Config{Duration: sc.duration},
					Target:   sc.target,
					Restarts: 2, RefineSteps: 1, ProbesPerFlow: 4,
					Seed: int64(i),
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
