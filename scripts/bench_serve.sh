#!/usr/bin/env bash
# Regenerates results/BENCH_serve.json: the serving tier's tracked
# latency/throughput baseline (Makefile `bench-serve`, DESIGN.md §14).
#
# Two cmd/nocload runs against real processes on loopback:
#
#   BenchmarkServeSingle/* — one nocserve worker, loaded directly
#   BenchmarkServeFleet/*  — 3 workers behind a cluster coordinator
#
# Both runs use the same seed, mix, skew and duration, so the pairs
# benchjson derives compare like with like. Tune with:
#
#   DURATION=10s CONC=16 SYSTEMS=64 scripts/bench_serve.sh
set -euo pipefail
cd "$(dirname "$0")/.."

DURATION="${DURATION:-10s}"
CONC="${CONC:-16}"
SYSTEMS="${SYSTEMS:-64}"
SEED="${SEED:-1}"
OUT="${OUT:-results/BENCH_serve.json}"
PORT_BASE="${PORT_BASE:-19080}"

BIN="$(mktemp -d)"
trap 'kill $(jobs -p) 2>/dev/null; wait 2>/dev/null; rm -rf "$BIN"' EXIT
go build -o "$BIN/nocserve" ./cmd/nocserve
go build -o "$BIN/nocload" ./cmd/nocload

wait_healthy() { # url
  for _ in $(seq 1 100); do
    curl -sf "$1/healthz" >/dev/null 2>&1 && return 0
    sleep 0.1
  done
  echo "bench_serve: $1 never became healthy" >&2
  return 1
}

coord="http://127.0.0.1:$PORT_BASE"
w1="http://127.0.0.1:$((PORT_BASE + 1))"
w2="http://127.0.0.1:$((PORT_BASE + 2))"
w3="http://127.0.0.1:$((PORT_BASE + 3))"

"$BIN/nocserve" -addr "127.0.0.1:$((PORT_BASE + 1))" &
"$BIN/nocserve" -addr "127.0.0.1:$((PORT_BASE + 2))" &
"$BIN/nocserve" -addr "127.0.0.1:$((PORT_BASE + 3))" &
wait_healthy "$w1"; wait_healthy "$w2"; wait_healthy "$w3"

report="$(mktemp)"

echo "bench_serve: single-node run ($DURATION, conc $CONC)..." >&2
"$BIN/nocload" -target "$w1" -label ServeSingle -duration "$DURATION" \
  -conc "$CONC" -systems "$SYSTEMS" -seed "$SEED" -maxerrrate 0 >>"$report"

"$BIN/nocserve" -mode coordinator -addr "127.0.0.1:$PORT_BASE" \
  -backends "w1=$w1,w2=$w2,w3=$w3" &
wait_healthy "$coord"

echo "bench_serve: fleet run ($DURATION, conc $CONC)..." >&2
"$BIN/nocload" -target "$coord" -label ServeFleet -duration "$DURATION" \
  -conc "$CONC" -systems "$SYSTEMS" -seed "$SEED" -maxerrrate 0 >>"$report"

mkdir -p "$(dirname "$OUT")"
go run ./cmd/benchjson -in "$report" -out "$OUT"
rm -f "$report"
echo "wrote $OUT" >&2
