#!/usr/bin/env bash
# Fleet chaos drill (CI `fleet-chaos` job): boot 3 nocserve workers
# behind a cluster coordinator, drive a zipf-skewed analyze/batch/whatif
# burst through cmd/nocload, and kill one worker halfway through.
#
# Pass criteria (any violation exits non-zero):
#
#   - zero incorrect results: every 200 the coordinator returned during
#     and after the kill is bit-identical to nocload's local oracle
#     (nocload -maxerrrate 0 also forbids client-visible errors — the
#     fleet must conceal the death entirely via retry/failover);
#   - bounded tail latency: overall p99 stays under MAX_P99;
#   - reconciled metrics: afterwards /metrics must show exactly one
#     dead backend, exactly one rebalance, hedge wins ≤ hedges fired,
#     and full shard coverage by the survivors.
set -euo pipefail
cd "$(dirname "$0")/.."

DURATION="${DURATION:-10s}"
CONC="${CONC:-16}"
SYSTEMS="${SYSTEMS:-48}"
SEED="${SEED:-7}"
MAX_P99="${MAX_P99:-2s}"
KILL_AFTER="${KILL_AFTER:-4}" # seconds into the burst
PORT_BASE="${PORT_BASE:-19180}"

BIN="$(mktemp -d)"
trap 'kill $(jobs -p) 2>/dev/null; wait 2>/dev/null; rm -rf "$BIN"' EXIT
go build -o "$BIN/nocserve" ./cmd/nocserve
go build -o "$BIN/nocload" ./cmd/nocload

wait_healthy() {
  for _ in $(seq 1 100); do
    curl -sf "$1/healthz" >/dev/null 2>&1 && return 0
    sleep 0.1
  done
  echo "fleet_chaos: $1 never became healthy" >&2
  return 1
}

coord="http://127.0.0.1:$PORT_BASE"
"$BIN/nocserve" -addr "127.0.0.1:$((PORT_BASE + 1))" & W1=$!
"$BIN/nocserve" -addr "127.0.0.1:$((PORT_BASE + 2))" & W2=$!
"$BIN/nocserve" -addr "127.0.0.1:$((PORT_BASE + 3))" & W3=$!
wait_healthy "http://127.0.0.1:$((PORT_BASE + 1))"
wait_healthy "http://127.0.0.1:$((PORT_BASE + 2))"
wait_healthy "http://127.0.0.1:$((PORT_BASE + 3))"

"$BIN/nocserve" -mode coordinator -addr "127.0.0.1:$PORT_BASE" \
  -backends "w1=http://127.0.0.1:$((PORT_BASE + 1)),w2=http://127.0.0.1:$((PORT_BASE + 2)),w3=http://127.0.0.1:$((PORT_BASE + 3))" &
wait_healthy "$coord"

# The assassin: SIGKILL (not SIGTERM) one worker mid-burst, so it gets
# no graceful drain — in-flight requests die with it.
( sleep "$KILL_AFTER"; echo "fleet_chaos: killing worker w2 (pid $W2)" >&2; kill -9 "$W2" ) &

echo "fleet_chaos: bursting for $DURATION at concurrency $CONC..." >&2
"$BIN/nocload" -target "$coord" -label ServeFleet -duration "$DURATION" \
  -conc "$CONC" -systems "$SYSTEMS" -seed "$SEED" \
  -maxerrrate 0 -maxp99 "$MAX_P99"

# Give membership probes a beat to register the corpse, then reconcile.
sleep 3
curl -sf "$coord/metrics" >"$BIN/metrics.json"
python3 - "$BIN/metrics.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    snap = json.load(f)
cs = snap.get("cluster")
assert cs, "coordinator /metrics has no cluster section"
states = cs["cluster_backends"]
assert states.get("dead") == 1, f"want exactly 1 dead backend, got {states}"
assert states.get("alive") == 2, f"want 2 alive backends, got {states}"
assert cs["rebalances"] == 1, f"want exactly 1 rebalance for 1 death, got {cs['rebalances']}"
assert cs["hedge_wins"] <= cs["hedges_fired"], f"hedge wins {cs['hedge_wins']} > fired {cs['hedges_fired']}"
assert cs["shards_covered"] == 1.0, f"survivors cover {cs['shards_covered']} of shards, want 1.0"
dead = [b for b in cs["backends"] if b["state"] == "dead"]
assert [b["name"] for b in dead] == ["w2"], f"wrong corpse: {dead}"
assert all(b["shards"] == 0 for b in dead), "dead backend still owns shards"
print("fleet_chaos: metrics reconciled —",
      f"{cs['retries']} retries, {cs['hedges_fired']} hedges ({cs['hedge_wins']} wins),",
      f"{cs['rebalances']} rebalance, {cs['local_fallbacks']} local fallbacks")
EOF
echo "fleet_chaos: PASS" >&2
