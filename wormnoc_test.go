package wormnoc_test

import (
	"testing"

	"wormnoc"
)

// TestFacadeEndToEnd exercises the public API surface the examples use:
// platform construction, system validation, the three analyses, the
// simulator and the phasing sweep — on the paper's didactic scenario.
func TestFacadeEndToEnd(t *testing.T) {
	topo, err := wormnoc.NewMesh(6, 1, wormnoc.RouterConfig{
		BufDepth: 2, LinkLatency: 1, RouteLatency: 0,
	})
	if err != nil {
		t.Fatal(err)
	}
	sys, err := wormnoc.NewSystem(topo, []wormnoc.Flow{
		{Name: "τ1", Priority: 1, Period: 200, Deadline: 200, Length: 60, Src: 4, Dst: 5},
		{Name: "τ2", Priority: 2, Period: 4000, Deadline: 4000, Length: 198, Src: 0, Dst: 5},
		{Name: "τ3", Priority: 3, Period: 6000, Deadline: 6000, Length: 128, Src: 1, Dst: 4},
	})
	if err != nil {
		t.Fatal(err)
	}

	if got := wormnoc.ZeroLoadLatency(topo.Config(), 7, 198); got != 204 {
		t.Errorf("ZeroLoadLatency = %d, want 204", got)
	}

	sets := wormnoc.BuildSets(sys)
	want := map[wormnoc.Method]wormnoc.Cycles{
		wormnoc.SB:   336,
		wormnoc.XLWX: 460,
		wormnoc.IBN:  348,
	}
	for m, r3 := range want {
		res, err := wormnoc.AnalyzeWithSets(sys, sets, wormnoc.AnalysisOptions{Method: m})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Schedulable {
			t.Errorf("%v: should be schedulable", m)
		}
		if res.R(2) != r3 {
			t.Errorf("%v: R(τ3) = %d, want %d", m, res.R(2), r3)
		}
		for i := range res.Flows {
			if res.Flows[i].Status != wormnoc.Schedulable {
				t.Errorf("%v flow %d: status %v", m, i, res.Flows[i].Status)
			}
		}
	}

	// Analyze (without pre-built sets) agrees.
	res, err := wormnoc.Analyze(sys, wormnoc.AnalysisOptions{Method: wormnoc.IBN, BufDepth: 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.R(2) != 396 {
		t.Errorf("IBN b=10 override: R(τ3) = %d, want 396", res.R(2))
	}

	// Simulator and sweep through the facade.
	obs, err := wormnoc.Simulate(sys, wormnoc.SimConfig{Duration: 10_000})
	if err != nil {
		t.Fatal(err)
	}
	if obs.Completed[2] == 0 || obs.WorstLatency[2] > 348 {
		t.Errorf("simulated τ3: completed %d worst %d", obs.Completed[2], obs.WorstLatency[2])
	}
	sweep, err := wormnoc.SweepOffsets(sys, wormnoc.SimConfig{Duration: 12_000}, 0, 200, 20)
	if err != nil {
		t.Fatal(err)
	}
	if sweep.Runs != 10 {
		t.Errorf("sweep runs = %d, want 10", sweep.Runs)
	}
	if sweep.Worst[2] > 348 {
		t.Errorf("swept worst τ3 = %d exceeds IBN bound 348", sweep.Worst[2])
	}
}
