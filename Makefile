# Benchmark baseline tracking (DESIGN.md §10).
#
# `make bench` regenerates the two tracked benchmark baselines:
#
#   results/BENCH_sim.json      — simulator & engine benchmarks, incl.
#                                 the before/after pairs of the retained
#                                 reference engine vs the event-driven
#                                 engine per load scenario and of the
#                                 sequential vs batched (RunMany)
#                                 scenario-campaign runner
#   results/BENCH_analysis.json — analysis-side benchmarks (scaling,
#                                 set construction, Table II columns)
#
# `make bench-serve` regenerates the serving-tier baseline separately
# (it boots real processes on loopback, so it is not part of `bench`):
#
#   results/BENCH_serve.json    — cmd/nocload latency/throughput report:
#                                 one worker loaded directly vs 3 workers
#                                 behind a cluster coordinator. The pair
#                                 "speedup" is the single/fleet mean-
#                                 latency ratio, i.e. the coordination
#                                 overhead paid for fault tolerance.
#
# BENCHTIME/COUNT tune fidelity vs wall time; CI uses the defaults and
# uploads the files as artifacts.

BENCHTIME ?= 1s
COUNT     ?= 1

.PHONY: bench bench-sim bench-analysis bench-serve fleet-chaos

bench: bench-sim bench-analysis

bench-sim:
	@mkdir -p results
	{ \
	  go test -run=NONE -count=$(COUNT) -benchtime=$(BENCHTIME) -benchmem \
	    -bench 'BenchmarkSimulator$$|BenchmarkSimulatorMeshScaling$$|BenchmarkWorstCaseSearch$$' . ; \
	  go test -run=NONE -count=$(COUNT) -benchtime=$(BENCHTIME) -benchmem \
	    -bench 'BenchmarkEngine|BenchmarkRunMany' ./internal/sim ; \
	} | go run ./cmd/benchjson -out results/BENCH_sim.json
	@echo wrote results/BENCH_sim.json

bench-analysis:
	@mkdir -p results
	go test -run=NONE -count=$(COUNT) -benchtime=$(BENCHTIME) -benchmem \
	  -bench 'BenchmarkAnalysisScaling$$|BenchmarkBuildSets$$|BenchmarkTable2Didactic$$|BenchmarkAblationEq7$$|BenchmarkWhatIfScratch$$|BenchmarkWhatIfIncremental$$' . \
	  | go run ./cmd/benchjson -out results/BENCH_analysis.json
	@echo wrote results/BENCH_analysis.json

bench-serve:
	scripts/bench_serve.sh

# Fleet chaos drill: 3 workers + coordinator, zipf burst, one worker
# SIGKILLed mid-burst; passes only if no client-visible errors, zero
# incorrect results, bounded p99 and exactly-reconciled fleet metrics.
fleet-chaos:
	scripts/fleet_chaos.sh
