# Benchmark baseline tracking (DESIGN.md §10).
#
# `make bench` regenerates the two tracked benchmark baselines:
#
#   results/BENCH_sim.json      — simulator & engine benchmarks, incl.
#                                 the before/after pairs of the retained
#                                 reference engine vs the event-driven
#                                 engine per load scenario and of the
#                                 sequential vs batched (RunMany)
#                                 scenario-campaign runner
#   results/BENCH_analysis.json — analysis-side benchmarks (scaling,
#                                 set construction, Table II columns)
#
# BENCHTIME/COUNT tune fidelity vs wall time; CI uses the defaults and
# uploads both files as artifacts.

BENCHTIME ?= 1s
COUNT     ?= 1

.PHONY: bench bench-sim bench-analysis

bench: bench-sim bench-analysis

bench-sim:
	@mkdir -p results
	{ \
	  go test -run=NONE -count=$(COUNT) -benchtime=$(BENCHTIME) -benchmem \
	    -bench 'BenchmarkSimulator$$|BenchmarkSimulatorMeshScaling$$|BenchmarkWorstCaseSearch$$' . ; \
	  go test -run=NONE -count=$(COUNT) -benchtime=$(BENCHTIME) -benchmem \
	    -bench 'BenchmarkEngine|BenchmarkRunMany' ./internal/sim ; \
	} | go run ./cmd/benchjson -out results/BENCH_sim.json
	@echo wrote results/BENCH_sim.json

bench-analysis:
	@mkdir -p results
	go test -run=NONE -count=$(COUNT) -benchtime=$(BENCHTIME) -benchmem \
	  -bench 'BenchmarkAnalysisScaling$$|BenchmarkBuildSets$$|BenchmarkTable2Didactic$$|BenchmarkAblationEq7$$|BenchmarkWhatIfScratch$$|BenchmarkWhatIfIncremental$$' . \
	  | go run ./cmd/benchjson -out results/BENCH_analysis.json
	@echo wrote results/BENCH_analysis.json
