# Benchmark baseline tracking (DESIGN.md §10).
#
# `make bench` regenerates the two tracked benchmark baselines:
#
#   results/BENCH_sim.json      — simulator & engine benchmarks, incl.
#                                 the before/after pairs of the retained
#                                 reference engine vs the event-driven
#                                 engine per load scenario and of the
#                                 sequential vs batched (RunMany)
#                                 scenario-campaign runner
#   results/BENCH_analysis.json — analysis-side benchmarks (scaling,
#                                 set construction, Table II columns)
#
# `make bench-serve` regenerates the serving-tier baseline separately
# (it boots real processes on loopback, so it is not part of `bench`):
#
#   results/BENCH_serve.json    — cmd/nocload latency/throughput report:
#                                 one worker loaded directly vs 3 workers
#                                 behind a cluster coordinator. The pair
#                                 "speedup" is the single/fleet mean-
#                                 latency ratio, i.e. the coordination
#                                 overhead paid for fault tolerance.
#
# `make bench-exhaustive` regenerates the explicit-state backend's
# reduction baseline:
#
#   results/BENCH_exhaustive.json — raw-grid vs symmetry-quotiented,
#                                 cluster-decomposed enumeration on the
#                                 4-flow reference config; the pair
#                                 speedup is the wall-clock win and the
#                                 states/op metrics carry the state-
#                                 count reduction behind it.
#
# When a committed baseline already exists, the regenerated pair
# speedups are gated against it: a drop of more than MAXREGRESS fails
# the target (exit 3 from benchjson) and leaves the committed file
# untouched, so CI catches a reduction that quietly stopped reducing.
#
# BENCHTIME/COUNT tune fidelity vs wall time; CI uses the defaults and
# uploads the files as artifacts.

BENCHTIME  ?= 1s
COUNT      ?= 1
MAXREGRESS ?= 25%

.PHONY: bench bench-sim bench-analysis bench-exhaustive bench-serve fleet-chaos

bench: bench-sim bench-analysis bench-exhaustive

bench-sim:
	@mkdir -p results
	{ \
	  go test -run=NONE -count=$(COUNT) -benchtime=$(BENCHTIME) -benchmem \
	    -bench 'BenchmarkSimulator$$|BenchmarkSimulatorMeshScaling$$|BenchmarkWorstCaseSearch$$' . ; \
	  go test -run=NONE -count=$(COUNT) -benchtime=$(BENCHTIME) -benchmem \
	    -bench 'BenchmarkEngine|BenchmarkRunMany' ./internal/sim ; \
	} | go run ./cmd/benchjson -out results/BENCH_sim.json
	@echo wrote results/BENCH_sim.json

bench-analysis:
	@mkdir -p results
	go test -run=NONE -count=$(COUNT) -benchtime=$(BENCHTIME) -benchmem \
	  -bench 'BenchmarkAnalysisScaling$$|BenchmarkBuildSets$$|BenchmarkTable2Didactic$$|BenchmarkAblationEq7$$|BenchmarkWhatIfScratch$$|BenchmarkWhatIfIncremental$$' . \
	  | go run ./cmd/benchjson -out results/BENCH_analysis.json
	@echo wrote results/BENCH_analysis.json

bench-exhaustive:
	@mkdir -p results
	go test -run=NONE -count=$(COUNT) -benchtime=$(BENCHTIME) -benchmem \
	  -bench 'BenchmarkExhaustive' ./internal/exhaustive \
	  > results/.bench_exhaustive.txt
	@if [ -f results/BENCH_exhaustive.json ]; then \
	  go run ./cmd/benchjson -in results/.bench_exhaustive.txt \
	    -out results/.bench_exhaustive.json.new \
	    -baseline results/BENCH_exhaustive.json -max-regress $(MAXREGRESS); \
	else \
	  go run ./cmd/benchjson -in results/.bench_exhaustive.txt \
	    -out results/.bench_exhaustive.json.new; \
	fi
	@mv results/.bench_exhaustive.json.new results/BENCH_exhaustive.json
	@rm -f results/.bench_exhaustive.txt
	@echo wrote results/BENCH_exhaustive.json

bench-serve:
	scripts/bench_serve.sh

# Fleet chaos drill: 3 workers + coordinator, zipf burst, one worker
# SIGKILLed mid-burst; passes only if no client-visible errors, zero
# incorrect results, bounded p99 and exactly-reconciled fleet metrics.
fleet-chaos:
	scripts/fleet_chaos.sh
