package mapopt_test

import (
	"context"

	"testing"

	"wormnoc/internal/core"
	"wormnoc/internal/mapopt"
	"wormnoc/internal/noc"
	"wormnoc/internal/workload"
)

func smallGraph() mapopt.Graph {
	return mapopt.Graph{
		NumTasks: 6,
		Flows: []mapopt.TaskFlow{
			{Name: "a", SrcTask: 0, DstTask: 1, Period: 5_000, Deadline: 5_000, Length: 1024},
			{Name: "b", SrcTask: 1, DstTask: 2, Period: 5_000, Deadline: 5_000, Length: 512},
			{Name: "c", SrcTask: 2, DstTask: 3, Period: 10_000, Deadline: 10_000, Length: 2048},
			{Name: "d", SrcTask: 4, DstTask: 3, Period: 2_500, Deadline: 1_250, Length: 64},
			{Name: "e", SrcTask: 5, DstTask: 3, Period: 20_000, Deadline: 20_000, Length: 2048},
		},
	}
}

func TestGraphValidate(t *testing.T) {
	if err := smallGraph().Validate(); err != nil {
		t.Fatalf("valid graph rejected: %v", err)
	}
	bad := []mapopt.Graph{
		{NumTasks: 0, Flows: smallGraph().Flows},
		{NumTasks: 3, Flows: smallGraph().Flows}, // endpoints out of range
		{NumTasks: 6},                            // no flows
		{NumTasks: 6, Flows: []mapopt.TaskFlow{{SrcTask: 1, DstTask: 1, Period: 10, Deadline: 10, Length: 1}}},
		{NumTasks: 6, Flows: []mapopt.TaskFlow{{SrcTask: 0, DstTask: 1, Period: 10, Deadline: 20, Length: 1}}},
	}
	for i, g := range bad {
		if err := g.Validate(); err == nil {
			t.Errorf("graph %d should be invalid", i)
		}
	}
}

func TestGraphBuild(t *testing.T) {
	topo := noc.MustMesh(3, 3, noc.RouterConfig{BufDepth: 2, LinkLatency: 1, RouteLatency: 0})
	g := smallGraph()
	mapping := []noc.NodeID{0, 1, 2, 3, 4, 5}
	sys, err := g.Build(topo, mapping)
	if err != nil {
		t.Fatal(err)
	}
	if sys.NumFlows() != len(g.Flows) {
		t.Fatalf("flows = %d, want %d", sys.NumFlows(), len(g.Flows))
	}
	// Co-mapping tasks 0 and 1 drops flow "a".
	mapping2 := []noc.NodeID{0, 0, 2, 3, 4, 5}
	sys2, err := g.Build(topo, mapping2)
	if err != nil {
		t.Fatal(err)
	}
	if sys2.NumFlows() != len(g.Flows)-1 {
		t.Fatalf("co-mapped build has %d flows, want %d", sys2.NumFlows(), len(g.Flows)-1)
	}
	// All tasks on one node: nil system.
	all0 := make([]noc.NodeID, g.NumTasks)
	sys3, err := g.Build(topo, all0)
	if err != nil || sys3 != nil {
		t.Fatalf("fully local build: sys=%v err=%v", sys3, err)
	}
	// Errors.
	if _, err := g.Build(topo, all0[:2]); err == nil {
		t.Error("short mapping must fail")
	}
	if _, err := g.Build(topo, []noc.NodeID{0, 1, 2, 3, 4, 99}); err == nil {
		t.Error("out-of-mesh mapping must fail")
	}
}

func TestCostOrdering(t *testing.T) {
	topo := noc.MustMesh(3, 3, noc.RouterConfig{BufDepth: 2, LinkLatency: 1, RouteLatency: 0})
	g := smallGraph()
	opt := core.Options{Method: core.IBN}
	// Fully local mapping: perfect cost.
	all0 := make([]noc.NodeID, g.NumTasks)
	c0, sched0, err := mapopt.Cost(g, topo, all0, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !sched0 || c0 != -2 {
		t.Errorf("local mapping cost = %f sched=%v", c0, sched0)
	}
	// A spread mapping: schedulable costs must be in [-2, -1].
	spread := []noc.NodeID{0, 1, 2, 3, 4, 5}
	c1, sched1, err := mapopt.Cost(g, topo, spread, opt)
	if err != nil {
		t.Fatal(err)
	}
	if sched1 && (c1 < -2 || c1 > -1) {
		t.Errorf("schedulable cost %f outside [-2,-1]", c1)
	}
	if !sched1 && c1 < 0 {
		t.Errorf("unschedulable cost %f must be >= 0", c1)
	}
}

func TestOptimizeFindsFeasibleMapping(t *testing.T) {
	// The AV benchmark on a 4x4: random mappings are schedulable only
	// ~28% of the time under XLWX / ~66% under IBN (Figure 5), so the
	// search must reliably find a certified mapping.
	topo := noc.MustMesh(4, 4, noc.RouterConfig{BufDepth: 2, LinkLatency: 1, RouteLatency: 0})
	g := mapopt.AVGraph()
	res, err := mapopt.Optimize(g, topo, mapopt.Config{
		Analysis:          core.Options{Method: core.IBN, BufDepth: 2},
		Iterations:        400,
		Seed:              1,
		StopWhenScheduled: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Schedulable {
		t.Fatalf("no feasible mapping found in %d evaluations (cost %f)", res.Evaluations, res.Cost)
	}
	// Double-check the certificate end to end.
	sys, err := g.Build(topo, res.Best)
	if err != nil {
		t.Fatal(err)
	}
	if sys != nil {
		r, err := core.Analyze(sys, core.Options{Method: core.IBN, BufDepth: 2})
		if err != nil {
			t.Fatal(err)
		}
		if !r.Schedulable {
			t.Error("optimizer returned an uncertified mapping")
		}
	}
}

func TestOptimizeDeterministic(t *testing.T) {
	topo := noc.MustMesh(3, 3, noc.RouterConfig{BufDepth: 2, LinkLatency: 1, RouteLatency: 0})
	g := smallGraph()
	run := func() *mapopt.Result {
		res, err := mapopt.Optimize(g, topo, mapopt.Config{
			Analysis:   core.Options{Method: core.IBN},
			Iterations: 200,
			Seed:       42,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Cost != b.Cost || a.Evaluations != b.Evaluations || a.Accepted != b.Accepted {
		t.Errorf("optimizer not deterministic: %+v vs %+v", a, b)
	}
	for i := range a.Best {
		if a.Best[i] != b.Best[i] {
			t.Errorf("best mappings differ at task %d", i)
		}
	}
}

func TestOptimizeImprovesOnInitial(t *testing.T) {
	topo := noc.MustMesh(3, 3, noc.RouterConfig{BufDepth: 2, LinkLatency: 1, RouteLatency: 0})
	g := smallGraph()
	// A deliberately terrible start: everything funnels through one
	// column.
	initial := []noc.NodeID{0, 6, 0, 6, 0, 6}
	start, _, err := mapopt.Cost(g, topo, initial, core.Options{Method: core.IBN})
	if err != nil {
		t.Fatal(err)
	}
	res, err := mapopt.Optimize(g, topo, mapopt.Config{
		Analysis:   core.Options{Method: core.IBN},
		Iterations: 300,
		Seed:       3,
		Initial:    initial,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost > start {
		t.Errorf("optimizer worsened the mapping: %f -> %f", start, res.Cost)
	}
	if res.Schedulable && res.WorstSlack < 0 {
		t.Errorf("inconsistent slack %f", res.WorstSlack)
	}
}

func TestOptimizeErrors(t *testing.T) {
	topo := noc.MustMesh(3, 3, noc.RouterConfig{BufDepth: 2, LinkLatency: 1, RouteLatency: 0})
	if _, err := mapopt.Optimize(mapopt.Graph{}, topo, mapopt.Config{}); err == nil {
		t.Error("invalid graph must fail")
	}
	if _, err := mapopt.Optimize(smallGraph(), topo, mapopt.Config{Initial: make([]noc.NodeID, 2)}); err == nil {
		t.Error("short initial mapping must fail")
	}
}

func TestAVGraphShape(t *testing.T) {
	g := mapopt.AVGraph()
	if g.NumTasks != workload.NumAVTasks() || len(g.Flows) != len(workload.AVFlows()) {
		t.Errorf("AV graph shape: %d tasks %d flows", g.NumTasks, len(g.Flows))
	}
	if err := g.Validate(); err != nil {
		t.Errorf("AV graph invalid: %v", err)
	}
}

func TestOptimizeContextCancelled(t *testing.T) {
	topo := noc.MustMesh(3, 3, noc.RouterConfig{BufDepth: 2, LinkLatency: 1, RouteLatency: 0})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := mapopt.OptimizeContext(ctx, smallGraph(), topo, mapopt.Config{
		Analysis:   core.Options{Method: core.IBN},
		Iterations: 50,
		Seed:       7,
	})
	if err == nil {
		t.Error("cancelled context must abort the search")
	}
}
