// Package mapopt searches for task-to-node mappings that the
// response-time analyses certify as schedulable — the design-space
// exploration that Figure 5 of the paper performs by random sampling,
// done with the analysis in the optimisation loop instead.
//
// A simulated-annealing search mutates a mapping (moving or swapping
// tasks), instantiates the network flow set for each candidate
// (rate-monotonic priorities, co-mapped communications dropped) and
// scores it with a configurable analysis: unschedulable mappings are
// ranked by how badly they fail, schedulable ones by their worst
// normalised slack. Because the tighter IBN analysis certifies more of
// the design space than XLWX, it both finds feasible mappings more often
// and converges faster — the practical payoff of the paper's
// contribution.
package mapopt

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"wormnoc/internal/core"
	"wormnoc/internal/noc"
	"wormnoc/internal/priority"
	"wormnoc/internal/traffic"
	"wormnoc/internal/workload"
)

// TaskFlow is one flow of a task graph, with task-level endpoints (the
// mapping assigns tasks to nodes).
type TaskFlow struct {
	Name             string
	SrcTask, DstTask int
	Period, Deadline noc.Cycles
	Jitter           noc.Cycles
	Length           int
}

// Graph is an application task graph.
type Graph struct {
	NumTasks int
	Flows    []TaskFlow
}

// AVGraph returns the autonomous-vehicle benchmark as a Graph.
func AVGraph() Graph {
	av := workload.AVFlows()
	flows := make([]TaskFlow, len(av))
	for i, f := range av {
		flows[i] = TaskFlow{
			Name: f.Name, SrcTask: f.SrcTask, DstTask: f.DstTask,
			Period: f.Period, Deadline: f.Deadline, Length: f.Length,
		}
	}
	return Graph{NumTasks: workload.NumAVTasks(), Flows: flows}
}

// Validate checks the graph's well-formedness.
func (g Graph) Validate() error {
	if g.NumTasks < 1 {
		return fmt.Errorf("mapopt: graph needs at least one task")
	}
	if len(g.Flows) == 0 {
		return fmt.Errorf("mapopt: graph has no flows")
	}
	for _, f := range g.Flows {
		if f.SrcTask < 0 || f.SrcTask >= g.NumTasks || f.DstTask < 0 || f.DstTask >= g.NumTasks {
			return fmt.Errorf("mapopt: flow %q references tasks outside [0,%d)", f.Name, g.NumTasks)
		}
		if f.SrcTask == f.DstTask {
			return fmt.Errorf("mapopt: flow %q is a task self-loop", f.Name)
		}
		if f.Period < 1 || f.Deadline < 1 || f.Deadline > f.Period || f.Length < 1 || f.Jitter < 0 {
			return fmt.Errorf("mapopt: flow %q has invalid parameters", f.Name)
		}
	}
	return nil
}

// Build instantiates the network flow set of a mapping: flows between
// co-mapped tasks are dropped (zero network latency) and priorities are
// assigned rate-monotonically. A nil system (with nil error) means every
// communication is local — trivially schedulable.
func (g Graph) Build(topo *noc.Topology, mapping []noc.NodeID) (*traffic.System, error) {
	flows, err := g.flowsFor(topo, mapping)
	if err != nil || len(flows) == 0 {
		return nil, err
	}
	return traffic.NewSystem(topo, flows)
}

// flowsFor is Build before system construction: the mapping's flow list
// (empty when every communication is local), rate-monotonic priorities
// assigned.
func (g Graph) flowsFor(topo *noc.Topology, mapping []noc.NodeID) ([]traffic.Flow, error) {
	if len(mapping) != g.NumTasks {
		return nil, fmt.Errorf("mapopt: mapping covers %d tasks, want %d", len(mapping), g.NumTasks)
	}
	var flows []traffic.Flow
	for _, f := range g.Flows {
		src, dst := mapping[f.SrcTask], mapping[f.DstTask]
		if !topo.ContainsNode(src) || !topo.ContainsNode(dst) {
			return nil, fmt.Errorf("mapopt: flow %q mapped outside %s", f.Name, topo)
		}
		if src == dst {
			continue
		}
		flows = append(flows, traffic.Flow{
			Name: f.Name, Period: f.Period, Deadline: f.Deadline,
			Jitter: f.Jitter, Length: f.Length, Src: src, Dst: dst,
		})
	}
	if len(flows) > 0 {
		priority.RateMonotonic(flows)
	}
	return flows, nil
}

// Config parameterises Optimize.
type Config struct {
	// Analysis is the schedulability oracle (e.g. IBN with BufDepth 2).
	Analysis core.Options
	// Iterations bounds the annealing steps (default 2000).
	Iterations int
	// Seed makes the search deterministic.
	Seed int64
	// Initial is the starting mapping; nil starts from a random one.
	Initial []noc.NodeID
	// InitialTemperature and Cooling control the annealing schedule
	// (defaults 1.0 and 0.995). Cost deltas are in [−2, 2]-ish units.
	InitialTemperature, Cooling float64
	// StopWhenScheduled ends the search at the first certified mapping.
	StopWhenScheduled bool
}

// Result reports the best mapping found.
type Result struct {
	// Best is the best mapping found (task → node).
	Best []noc.NodeID
	// Cost is its cost (lower is better; negative iff schedulable,
	// -1-slack for a schedulable mapping with worst normalised slack
	// `slack`).
	Cost float64
	// Schedulable reports whether Best was certified by the oracle.
	Schedulable bool
	// WorstSlack is the minimum normalised slack (D-R)/D over the flows
	// of Best (only meaningful when Schedulable).
	WorstSlack float64
	// Evaluations counts oracle invocations.
	Evaluations int
	// Accepted counts accepted moves.
	Accepted int
}

// Cost scores a mapping: schedulable mappings score −1−worstSlack
// (in [−2, −1]); unschedulable ones score the fraction of flows that are
// not schedulable plus the relative deadline overrun of the worst flow
// (≥ 0). Lower is better, and any schedulable mapping beats any
// unschedulable one.
func Cost(g Graph, topo *noc.Topology, mapping []noc.NodeID, opt core.Options) (cost float64, schedulable bool, err error) {
	sys, err := g.Build(topo, mapping)
	if err != nil {
		return 0, false, err
	}
	if sys == nil {
		return -2, true, nil // everything local: perfect
	}
	res, err := core.Analyze(sys, opt)
	if err != nil {
		return 0, false, err
	}
	cost, schedulable = score(sys, res)
	return cost, schedulable, nil
}

// score converts an analysis result into the annealing cost (see Cost).
func score(sys *traffic.System, res *core.Result) (float64, bool) {
	if res.Schedulable {
		slack := 1.0
		for i := 0; i < sys.NumFlows(); i++ {
			s := float64(sys.Flow(i).Deadline-res.R(i)) / float64(sys.Flow(i).Deadline)
			if s < slack {
				slack = s
			}
		}
		return -1 - slack, true
	}
	bad := 0
	worst := 0.0
	for i := 0; i < sys.NumFlows(); i++ {
		fr := res.Flows[i]
		if fr.Status == core.Schedulable {
			continue
		}
		bad++
		if fr.Status == core.DeadlineMiss {
			over := float64(fr.R-sys.Flow(i).Deadline) / float64(sys.Flow(i).Deadline)
			if over > worst {
				worst = over
			}
		} else {
			worst = math.Max(worst, 1)
		}
	}
	return float64(bad)/float64(sys.NumFlows()) + worst, false
}

// evaluator scores candidate mappings against one shared delta-aware
// engine. Its system tracks the last evaluated mapping; a candidate that
// keeps the same flow membership becomes a handful of re-mapping deltas
// (frontier-only re-analysis over incrementally refreshed contention
// domains), and only a membership change (a flow becoming local or
// non-local) rebuilds the engine from scratch. Annealing rejections are
// undone with Snapshot/Rollback so the engine always scores the next
// candidate as a small edit of the current mapping.
type evaluator struct {
	g    Graph
	topo *noc.Topology
	opt  core.Options
	inc  *core.Incremental
	// flows is the flow set of inc's system; nil when the last evaluated
	// mapping was fully local (inc, if any, is stale then).
	flows []traffic.Flow
	// evals counts analysis-backed evaluations (Result.Evaluations).
	evals int
}

// evalCheckpoint restores the evaluator across a rejected move.
type evalCheckpoint struct {
	snap  *core.IncSnapshot
	flows []traffic.Flow
}

func (e *evaluator) checkpoint() evalCheckpoint {
	cp := evalCheckpoint{flows: e.flows}
	if e.inc != nil {
		cp.snap = e.inc.Snapshot()
	}
	return cp
}

func (e *evaluator) restore(cp evalCheckpoint) {
	e.flows = cp.flows
	if cp.snap != nil {
		e.inc.Rollback(cp.snap)
	}
}

// cost scores a mapping, leaving the engine on that mapping's system.
func (e *evaluator) cost(ctx context.Context, mapping []noc.NodeID) (float64, bool, error) {
	flows, err := e.g.flowsFor(e.topo, mapping)
	if err != nil {
		return 0, false, err
	}
	e.evals++
	if len(flows) == 0 {
		e.flows = nil
		return -2, true, nil // everything local: perfect
	}
	if deltas, ok := remapDeltas(e.flows, flows); ok && e.inc != nil {
		if len(deltas) > 0 {
			if err := e.inc.Apply(deltas...); err != nil {
				return 0, false, err
			}
		}
	} else {
		sys, err := traffic.NewSystem(e.topo, flows)
		if err != nil {
			return 0, false, err
		}
		if e.inc == nil {
			e.inc = core.NewIncremental(sys)
		} else {
			e.inc.Reset(sys)
		}
	}
	e.flows = flows
	res, err := e.inc.Analyze(ctx, e.opt)
	if err != nil {
		return 0, false, err
	}
	cost, sched := score(e.inc.System(), res)
	return cost, sched, nil
}

// remapDeltas diffs two instantiated flow lists: when they hold the same
// flows (same membership, order, parameters and priorities) and differ
// only in endpoints, it returns one re-mapping delta per moved flow and
// ok=true. Identical membership implies identical rate-monotonic
// priorities (the assignment reads only periods and list order), so a
// false here means the flow sets genuinely differ and the caller must
// rebuild.
func remapDeltas(old, new []traffic.Flow) ([]core.Delta, bool) {
	if len(old) == 0 || len(old) != len(new) {
		return nil, false
	}
	var deltas []core.Delta
	for i := range old {
		o, n := old[i], new[i]
		if o.Name != n.Name || o.Priority != n.Priority || o.Period != n.Period ||
			o.Deadline != n.Deadline || o.Jitter != n.Jitter || o.Length != n.Length {
			return nil, false
		}
		if o.Src != n.Src || o.Dst != n.Dst {
			deltas = append(deltas, core.Delta{Kind: core.DeltaMapping, Flow: i, Src: n.Src, Dst: n.Dst})
		}
	}
	return deltas, true
}

// Optimize runs the simulated-annealing search.
func Optimize(g Graph, topo *noc.Topology, cfg Config) (*Result, error) {
	return OptimizeContext(context.Background(), g, topo, cfg)
}

// OptimizeContext is Optimize under a context: cancelling ctx aborts the
// search with the context's error. All candidate evaluations share one
// delta-aware engine (see evaluator); the search itself — mutation,
// acceptance, cooling — is unchanged and bit-identical to scoring every
// candidate from scratch.
func OptimizeContext(ctx context.Context, g Graph, topo *noc.Topology, cfg Config) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if cfg.Iterations <= 0 {
		cfg.Iterations = 2000
	}
	if cfg.InitialTemperature <= 0 {
		cfg.InitialTemperature = 1.0
	}
	if cfg.Cooling <= 0 || cfg.Cooling >= 1 {
		cfg.Cooling = 0.995
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := topo.NumNodes()

	cur := make([]noc.NodeID, g.NumTasks)
	if cfg.Initial != nil {
		if len(cfg.Initial) != g.NumTasks {
			return nil, fmt.Errorf("mapopt: initial mapping covers %d tasks, want %d", len(cfg.Initial), g.NumTasks)
		}
		copy(cur, cfg.Initial)
	} else {
		for t := range cur {
			cur[t] = noc.NodeID(rng.Intn(n))
		}
	}
	res := &Result{Best: make([]noc.NodeID, g.NumTasks)}
	ev := &evaluator{g: g, topo: topo, opt: cfg.Analysis}
	curCost, curSched, err := ev.cost(ctx, cur)
	if err != nil {
		return nil, err
	}
	copy(res.Best, cur)
	res.Cost, res.Schedulable = curCost, curSched

	temp := cfg.InitialTemperature
	cand := make([]noc.NodeID, g.NumTasks)
	for it := 0; it < cfg.Iterations; it++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if cfg.StopWhenScheduled && res.Schedulable {
			break
		}
		copy(cand, cur)
		if rng.Intn(4) == 0 && g.NumTasks > 1 {
			// Swap two tasks.
			a, b := rng.Intn(g.NumTasks), rng.Intn(g.NumTasks-1)
			if b >= a {
				b++
			}
			cand[a], cand[b] = cand[b], cand[a]
		} else {
			// Move one task to another node.
			t := rng.Intn(g.NumTasks)
			nn := rng.Intn(n - 1)
			if noc.NodeID(nn) >= cand[t] {
				nn++
			}
			cand[t] = noc.NodeID(nn)
		}
		cp := ev.checkpoint()
		cost, sched, err := ev.cost(ctx, cand)
		if err != nil {
			return nil, err
		}
		accept := cost <= curCost
		if !accept && temp > 1e-9 {
			accept = rng.Float64() < math.Exp((curCost-cost)/temp)
		}
		if accept {
			copy(cur, cand)
			curCost, curSched = cost, sched
			res.Accepted++
			if cost < res.Cost {
				copy(res.Best, cur)
				res.Cost, res.Schedulable = cost, sched
			}
		} else {
			// Rejected: put the engine back on the current mapping so the
			// next candidate diffs against it.
			ev.restore(cp)
		}
		temp *= cfg.Cooling
	}
	_ = curSched
	res.Evaluations = ev.evals
	if res.Schedulable {
		res.WorstSlack = -res.Cost - 1
	}
	return res, nil
}
