// Package faultinject provides deterministic, seed-driven fault
// injection for chaos testing the analysis service end to end.
//
// Production code is instrumented at a small set of named sites (the
// engine fixed point, the serving layer's caches and batch fan-out, the
// worker pool). Each site calls Fire, which is a single atomic load —
// effectively a no-op — unless a test has installed an Injector with
// Enable. An installed injector matches the site (and optionally the
// site-specific key) against its configured faults and either returns a
// typed error, panics, sleeps, or reports a context cancellation,
// letting the resilience machinery above (panic recovery, per-item
// batch isolation, retries, circuit breakers) be exercised on demand
// and reconciled exactly against the injector's fired counters.
//
// Determinism: a fault with Prob in (0, 1) decides each hit by hashing
// (seed, site, hit ordinal), so a given seed always fires the same hit
// ordinals at a site. Under concurrent callers the *assignment* of
// ordinals to callers depends on scheduling; tests that must know
// exactly which logical operations fail should select by Keys (every
// instrumented site passes a stable key such as the task index or flow
// rank) rather than by probability.
package faultinject

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Site names one instrumented injection point.
type Site string

// The instrumented sites. Keys passed to Fire at each site:
//
//	SiteParallelTask:     the task index ("0", "1", …)
//	SiteCoreFixedPoint:   the flow index being analysed ("0", "1", …)
//	SiteServeCacheGet:    the canonical request key (hex)
//	SiteServeCachePut:    the canonical request key (hex)
//	SiteServeBatchItem:   the batch item index ("0", "1", …)
//	SiteServeEngineBuild: the canonical system key (hex)
//	SiteClusterRequest:   the backend name the coordinator dials
//	SiteClusterProbe:     the backend name being health-probed
//
// The two cluster sites are the backend-level chaos vocabulary: a
// KindError fault at SiteClusterRequest is a partition (the dial fails,
// the coordinator fails over to the next replica), the same fault at
// SiteClusterProbe kills the backend for membership purposes (enough
// consecutive probe failures mark it dead and rebalance its shard), a
// Times-bounded KindDelay at SiteClusterRequest is a slow-start
// (transiently slow after joining), and an unbounded KindDelay is a
// byzantine-slow backend — alive and correct but pathologically
// latent, the case hedged requests exist for.
const (
	SiteParallelTask     Site = "parallel.task"
	SiteCoreFixedPoint   Site = "core.fixedpoint"
	SiteServeCacheGet    Site = "serve.cache.get"
	SiteServeCachePut    Site = "serve.cache.put"
	SiteServeBatchItem   Site = "serve.batch.item"
	SiteServeEngineBuild Site = "serve.engine.build"
	SiteClusterRequest   Site = "cluster.request"
	SiteClusterProbe     Site = "cluster.probe"
)

// Kind selects what a matched fault does.
type Kind int

const (
	// KindError makes Fire return the fault's Err (an *InjectedError
	// when Err is nil). InjectedError is transient — the serving layer's
	// retry policy will retry it.
	KindError Kind = iota
	// KindPanic makes Fire panic, exercising the recovery boundaries.
	KindPanic
	// KindDelay makes Fire sleep for the fault's Delay (bounded by the
	// context) and then continue, exercising deadline handling.
	KindDelay
	// KindCancel makes Fire return an error wrapping context.Canceled,
	// exercising the cancellation paths without a real cancel.
	KindCancel
)

// String returns the kind's name ("error", "panic", "delay", "cancel").
func (k Kind) String() string {
	switch k {
	case KindError:
		return "error"
	case KindPanic:
		return "panic"
	case KindDelay:
		return "delay"
	case KindCancel:
		return "cancel"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Fault configures one injected failure mode at one site.
type Fault struct {
	// Site selects the injection point.
	Site Site
	// Kind selects the failure mode.
	Kind Kind
	// Keys, when non-empty, restricts the fault to hits whose key is in
	// the set. Empty matches every hit at the site.
	Keys []string
	// Prob fires the fault on a deterministic, seed-derived subset of
	// matched hits when in (0, 1). Outside that range every matched hit
	// fires.
	Prob float64
	// Times caps how often the fault fires (0 = unlimited).
	Times int
	// Delay is the sleep duration for KindDelay.
	Delay time.Duration
	// Err overrides the returned error for KindError (default: a
	// transient *InjectedError naming the site and key).
	Err error
}

// InjectedError is the default error returned by a KindError fault. It
// reports itself as transient, so bounded retry policies will retry it.
type InjectedError struct {
	Site Site
	Key  string
}

func (e *InjectedError) Error() string {
	return fmt.Sprintf("faultinject: injected error at %s[%s]", e.Site, e.Key)
}

// Transient marks the error as retryable.
func (e *InjectedError) Transient() bool { return true }

// faultState is one configured fault plus its live counters.
type faultState struct {
	Fault
	keys  map[string]struct{} // nil = match all
	hits  int64               // matched hits (for the Prob hash)
	fired int64
}

// Injector holds an enabled fault plan and its fired counters. Safe for
// concurrent use.
type Injector struct {
	seed   uint64
	mu     sync.Mutex
	faults []*faultState
}

// New returns an empty injector whose probabilistic decisions derive
// from seed.
func New(seed int64) *Injector {
	return &Injector{seed: uint64(seed)}
}

// Add registers a fault. Not safe to call while the injector is
// enabled.
func (in *Injector) Add(f Fault) *Injector {
	st := &faultState{Fault: f}
	if len(f.Keys) > 0 {
		st.keys = make(map[string]struct{}, len(f.Keys))
		for _, k := range f.Keys {
			st.keys[k] = struct{}{}
		}
	}
	in.faults = append(in.faults, st)
	return in
}

// Fired returns how many faults fired per site, across all kinds.
func (in *Injector) Fired() map[Site]int64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make(map[Site]int64)
	for _, f := range in.faults {
		out[f.Site] += f.fired
	}
	return out
}

// TotalFired returns the total number of faults fired.
func (in *Injector) TotalFired() int64 {
	var n int64
	for _, v := range in.Fired() {
		n += v
	}
	return n
}

// active is the globally enabled injector; nil means every Fire call is
// a no-op beyond one atomic load.
var active atomic.Pointer[Injector]

// Enable installs in as the process-wide injector. Tests must pair it
// with Disable (typically via defer or t.Cleanup).
func Enable(in *Injector) { active.Store(in) }

// Disable removes the process-wide injector, restoring no-op behaviour.
func Disable() { active.Store(nil) }

// Enabled reports whether an injector is installed. Call sites use it
// to skip key construction on the hot path.
func Enabled() bool { return active.Load() != nil }

// splitmix64 is the avalanche finaliser used for deterministic per-hit
// probability decisions.
func splitmix64(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func hashSite(s Site) uint64 {
	var h uint64 = 1469598103934665603 // FNV offset basis
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// Fire evaluates the enabled injector (if any) at site with the given
// key. It returns a non-nil error for KindError and KindCancel faults,
// panics for KindPanic faults, sleeps for KindDelay faults, and returns
// nil otherwise. With no injector enabled it costs one atomic load.
func Fire(ctx context.Context, site Site, key string) error {
	in := active.Load()
	if in == nil {
		return nil
	}
	return in.fire(ctx, site, key)
}

func (in *Injector) fire(ctx context.Context, site Site, key string) error {
	var hit *faultState
	in.mu.Lock()
	for _, f := range in.faults {
		if f.Site != site {
			continue
		}
		if f.keys != nil {
			if _, ok := f.keys[key]; !ok {
				continue
			}
		}
		n := f.hits
		f.hits++
		if f.Prob > 0 && f.Prob < 1 {
			roll := splitmix64(in.seed ^ hashSite(site) ^ uint64(n))
			if float64(roll>>11)/(1<<53) >= f.Prob {
				continue
			}
		}
		if f.Times > 0 && f.fired >= int64(f.Times) {
			continue
		}
		f.fired++
		hit = f
		break
	}
	in.mu.Unlock()
	if hit == nil {
		return nil
	}
	switch hit.Kind {
	case KindPanic:
		panic(fmt.Sprintf("faultinject: injected panic at %s[%s]", site, key))
	case KindDelay:
		t := time.NewTimer(hit.Delay)
		defer t.Stop()
		select {
		case <-t.C:
		case <-ctx.Done():
		}
		return nil
	case KindCancel:
		return fmt.Errorf("faultinject: injected cancel at %s[%s]: %w", site, key, context.Canceled)
	default:
		if hit.Err != nil {
			return hit.Err
		}
		return &InjectedError{Site: site, Key: key}
	}
}
