package faultinject

import (
	"context"
	"errors"
	"strconv"
	"strings"
	"testing"
	"time"
)

func TestDisabledIsNoOp(t *testing.T) {
	Disable()
	if Enabled() {
		t.Fatal("Enabled() = true with no injector installed")
	}
	if err := Fire(context.Background(), SiteParallelTask, "0"); err != nil {
		t.Fatalf("Fire with no injector: %v", err)
	}
}

func TestKeyMatching(t *testing.T) {
	in := New(1).Add(Fault{Site: SiteServeBatchItem, Kind: KindError, Keys: []string{"3", "7"}})
	Enable(in)
	defer Disable()

	ctx := context.Background()
	for i := 0; i < 10; i++ {
		err := Fire(ctx, SiteServeBatchItem, strconv.Itoa(i))
		want := i == 3 || i == 7
		if (err != nil) != want {
			t.Fatalf("key %d: err = %v, want fired=%v", i, err, want)
		}
		if want {
			var ie *InjectedError
			if !errors.As(err, &ie) {
				t.Fatalf("key %d: err = %T, want *InjectedError", i, err)
			}
			if ie.Site != SiteServeBatchItem || ie.Key != strconv.Itoa(i) {
				t.Fatalf("key %d: error carries %s[%s]", i, ie.Site, ie.Key)
			}
			if !ie.Transient() {
				t.Fatal("InjectedError must be transient")
			}
		}
	}
	// A different site never matches, even with the same key.
	if err := Fire(ctx, SiteCoreFixedPoint, "3"); err != nil {
		t.Fatalf("other site fired: %v", err)
	}
	if got := in.Fired()[SiteServeBatchItem]; got != 2 {
		t.Fatalf("Fired = %d, want 2", got)
	}
	if in.TotalFired() != 2 {
		t.Fatalf("TotalFired = %d, want 2", in.TotalFired())
	}
}

func TestTimesCap(t *testing.T) {
	in := New(1).Add(Fault{Site: SiteCoreFixedPoint, Kind: KindError, Times: 3})
	Enable(in)
	defer Disable()

	fired := 0
	for i := 0; i < 10; i++ {
		if Fire(context.Background(), SiteCoreFixedPoint, "0") != nil {
			fired++
		}
	}
	if fired != 3 {
		t.Fatalf("fired %d times, want 3 (Times cap)", fired)
	}
	if in.TotalFired() != 3 {
		t.Fatalf("TotalFired = %d, want 3", in.TotalFired())
	}
}

func TestProbDeterministicAcrossRuns(t *testing.T) {
	run := func(seed int64) []int {
		in := New(seed).Add(Fault{Site: SiteParallelTask, Kind: KindError, Prob: 0.25})
		Enable(in)
		defer Disable()
		var hits []int
		for i := 0; i < 400; i++ {
			if Fire(context.Background(), SiteParallelTask, strconv.Itoa(i)) != nil {
				hits = append(hits, i)
			}
		}
		return hits
	}
	a, b := run(42), run(42)
	if len(a) != len(b) {
		t.Fatalf("same seed fired %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at hit %d: %d vs %d", i, a[i], b[i])
		}
	}
	// Roughly a quarter of hits fire (loose bound, deterministic anyway).
	if len(a) < 50 || len(a) > 150 {
		t.Fatalf("Prob 0.25 fired %d/400 hits", len(a))
	}
	// A different seed selects a different subset.
	c := run(43)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds selected identical hit subsets")
	}
}

func TestKindPanic(t *testing.T) {
	Enable(New(1).Add(Fault{Site: SiteServeEngineBuild, Kind: KindPanic}))
	defer Disable()

	defer func() {
		v := recover()
		if v == nil {
			t.Fatal("KindPanic did not panic")
		}
		s, _ := v.(string)
		if !strings.Contains(s, "injected panic at serve.engine.build[k]") {
			t.Fatalf("panic value = %v", v)
		}
	}()
	Fire(context.Background(), SiteServeEngineBuild, "k")
}

func TestKindDelayBoundedByContext(t *testing.T) {
	Enable(New(1).Add(Fault{Site: SiteServeCacheGet, Kind: KindDelay, Delay: time.Hour}))
	defer Disable()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	start := time.Now()
	if err := Fire(ctx, SiteServeCacheGet, "k"); err != nil {
		t.Fatalf("KindDelay returned error: %v", err)
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("delay ignored context: slept %v", d)
	}
}

func TestKindDelayElapses(t *testing.T) {
	Enable(New(1).Add(Fault{Site: SiteServeCacheGet, Kind: KindDelay, Delay: 2 * time.Millisecond}))
	defer Disable()

	start := time.Now()
	if err := Fire(context.Background(), SiteServeCacheGet, "k"); err != nil {
		t.Fatalf("KindDelay returned error: %v", err)
	}
	if d := time.Since(start); d < 2*time.Millisecond {
		t.Fatalf("delay too short: %v", d)
	}
}

func TestKindCancel(t *testing.T) {
	Enable(New(1).Add(Fault{Site: SiteServeBatchItem, Kind: KindCancel}))
	defer Disable()

	err := Fire(context.Background(), SiteServeBatchItem, "0")
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("KindCancel err = %v, want wrapping context.Canceled", err)
	}
}

func TestCustomError(t *testing.T) {
	sentinel := errors.New("boom")
	Enable(New(1).Add(Fault{Site: SiteServeCachePut, Kind: KindError, Err: sentinel}))
	defer Disable()

	if err := Fire(context.Background(), SiteServeCachePut, "k"); !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want the configured sentinel", err)
	}
}

func TestFirstMatchingFaultWins(t *testing.T) {
	sentinel := errors.New("first")
	in := New(1).
		Add(Fault{Site: SiteParallelTask, Kind: KindError, Keys: []string{"5"}, Err: sentinel}).
		Add(Fault{Site: SiteParallelTask, Kind: KindPanic})
	Enable(in)
	defer Disable()

	// Key 5 matches the first fault; the panic fault never sees it.
	if err := Fire(context.Background(), SiteParallelTask, "5"); !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want first fault's sentinel", err)
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{
		KindError: "error", KindPanic: "panic", KindDelay: "delay", KindCancel: "cancel", Kind(99): "Kind(99)",
	} {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", int(k), got, want)
		}
	}
}

// The backend-level chaos vocabulary: a partition at one backend's
// request site fires only for that backend, a kill at the probe site
// fires independently, and a Times-bounded delay models a slow-start
// that clears.
func TestClusterSites(t *testing.T) {
	in := New(7).
		Add(Fault{Site: SiteClusterRequest, Kind: KindError, Keys: []string{"w1"}}).
		Add(Fault{Site: SiteClusterProbe, Kind: KindError, Keys: []string{"w2"}}).
		Add(Fault{Site: SiteClusterRequest, Kind: KindDelay, Keys: []string{"w3"}, Delay: time.Millisecond, Times: 2})
	Enable(in)
	defer Disable()
	ctx := context.Background()

	// w1 is partitioned at the request site only.
	if err := Fire(ctx, SiteClusterRequest, "w1"); err == nil {
		t.Fatal("partitioned backend's request did not fail")
	}
	if err := Fire(ctx, SiteClusterProbe, "w1"); err != nil {
		t.Fatalf("w1 probe failed but only w2 is killed: %v", err)
	}
	// w2 fails probes (membership kill) but requests still connect.
	if err := Fire(ctx, SiteClusterProbe, "w2"); err == nil {
		t.Fatal("killed backend's probe did not fail")
	}
	if err := Fire(ctx, SiteClusterRequest, "w2"); err != nil {
		t.Fatalf("w2 request failed but only w1 is partitioned: %v", err)
	}
	// w3's slow-start delays exactly twice, then clears.
	for i := 0; i < 3; i++ {
		if err := Fire(ctx, SiteClusterRequest, "w3"); err != nil {
			t.Fatalf("slow-start hit %d returned an error: %v", i, err)
		}
	}
	fired := in.Fired()
	if fired[SiteClusterRequest] != 3 { // 1 partition + 2 slow-start delays
		t.Fatalf("SiteClusterRequest fired %d, want 3", fired[SiteClusterRequest])
	}
	if fired[SiteClusterProbe] != 1 {
		t.Fatalf("SiteClusterProbe fired %d, want 1", fired[SiteClusterProbe])
	}
}
