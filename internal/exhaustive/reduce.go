package exhaustive

import (
	"fmt"

	"wormnoc/internal/noc"
)

// Reduction selects which sound state-space reductions Explore applies.
// Both reductions are proof-preserving — they change how many phasings
// are simulated, never which worst cases, censor flags or Proven
// verdicts come out — so the zero value enables both and the other
// values exist as escape hatches for differential validation
// (`nocfuzz exhaust -reduce=...`) and for the equivalence property
// tests that certify the reductions against the unreduced grid.
type Reduction int

const (
	// ReduceAll applies both the shift-symmetry quotient and the
	// contention-cluster decomposition (the default).
	ReduceAll Reduction = iota
	// ReduceNone explores the raw offset grid exactly as the pre-
	// reduction explorer did; the enumeration order, witnesses and
	// statistics are bit-identical to that behaviour.
	ReduceNone
	// ReduceSymmetry applies only the shift-symmetry quotient, over the
	// whole flow set at once.
	ReduceSymmetry
	// ReduceClusters applies only the cluster decomposition, exploring
	// each cluster's raw sub-grid.
	ReduceClusters
)

// symmetry reports whether the mode canonicalises offset vectors.
func (r Reduction) symmetry() bool { return r == ReduceAll || r == ReduceSymmetry }

// clusters reports whether the mode decomposes the flow set into
// contention clusters.
func (r Reduction) clusters() bool { return r == ReduceAll || r == ReduceClusters }

// String returns the flag spelling of the mode.
func (r Reduction) String() string {
	switch r {
	case ReduceAll:
		return "all"
	case ReduceNone:
		return "none"
	case ReduceSymmetry:
		return "symmetry"
	case ReduceClusters:
		return "clusters"
	}
	return fmt.Sprintf("Reduction(%d)", int(r))
}

// ParseReduction parses the -reduce flag spelling of a Reduction.
func ParseReduction(s string) (Reduction, error) {
	switch s {
	case "all":
		return ReduceAll, nil
	case "none":
		return ReduceNone, nil
	case "symmetry":
		return ReduceSymmetry, nil
	case "clusters":
		return ReduceClusters, nil
	}
	return ReduceAll, fmt.Errorf("exhaustive: unknown reduction %q (want none, symmetry, clusters or all)", s)
}

// enum enumerates the offset grid of one flow group as a contiguous,
// indexable sequence — the property the chunked deterministic frontier
// rests on. In raw mode it is the plain mixed-radix product grid
// Π[0,Pᵢ) with the last flow varying fastest (the pre-reduction
// order). In canonical mode it enumerates only the shift-symmetry
// representatives: the vectors with min offset 0. Those dominate their
// whole orbit — for any vector o with δ = min oᵢ > 0, the run from
// o − δ is the run from o shifted δ cycles earlier with δ extra cycles
// of observation, so every latency (and every censored or deadline-
// missing packet) o exhibits is exhibited by its representative too —
// which is why enumerating the Π Pᵢ − Π (Pᵢ−1) representatives proves
// the same class as the Π Pᵢ grid (DESIGN.md §15).
//
// Canonical vectors are ordered by their first zero coordinate j, then
// lexicographically by the remaining digits (last fastest): digits
// before j range over [1,Pᵢ), digit j is 0, digits after j over
// [0,Pᵢ). prefix[j] is the rank of block j's first vector.
type enum struct {
	periods   []int64
	canonical bool
	size      int64
	prefix    []int64
}

// newEnum builds the enumerator for one group's periods. The caller
// guarantees Π periods fits int64 (Plan's grid guard).
func newEnum(periods []int64, canonical bool) enum {
	e := enum{periods: periods, canonical: canonical}
	if !canonical {
		e.size = 1
		for _, p := range periods {
			e.size *= p
		}
		return e
	}
	n := len(periods)
	// suf[k] = Π_{i>=k} Pᵢ; pre = Π_{i<j} (Pᵢ−1), built incrementally.
	suf := make([]int64, n+1)
	suf[n] = 1
	for i := n - 1; i >= 0; i-- {
		suf[i] = suf[i+1] * periods[i]
	}
	e.prefix = make([]int64, n+1)
	pre := int64(1)
	for j := 0; j < n; j++ {
		e.prefix[j+1] = e.prefix[j] + pre*suf[j+1]
		pre *= periods[j] - 1
	}
	e.size = e.prefix[n]
	return e
}

// decode expands rank k into the group-local offset vector.
func (e *enum) decode(k int64, out []noc.Cycles) {
	if !e.canonical {
		for i := len(e.periods) - 1; i >= 0; i-- {
			out[i] = noc.Cycles(k % e.periods[i])
			k /= e.periods[i]
		}
		return
	}
	j := 0
	for e.prefix[j+1] <= k {
		j++
	}
	k -= e.prefix[j]
	for i := len(e.periods) - 1; i >= 0; i-- {
		switch {
		case i > j:
			out[i] = noc.Cycles(k % e.periods[i])
			k /= e.periods[i]
		case i == j:
			out[i] = 0
		default:
			q := e.periods[i] - 1
			out[i] = noc.Cycles(1 + k%q)
			k /= q
		}
	}
}

// encode is decode's inverse: the rank of off, or -1 when off is not
// enumerated (canonical mode only — a vector whose minimum offset is
// not zero has no rank; its representative does).
func (e *enum) encode(off []noc.Cycles) int64 {
	if !e.canonical {
		var k int64
		for i, p := range e.periods {
			k = k*p + int64(off[i])
		}
		return k
	}
	j := -1
	for i := range off {
		if off[i] == 0 {
			j = i
			break
		}
	}
	if j < 0 {
		return -1
	}
	var k int64
	for i, p := range e.periods {
		switch {
		case i < j:
			k = k*(p-1) + int64(off[i]) - 1
		case i > j:
			k = k*p + int64(off[i])
		}
	}
	return e.prefix[j] + k
}
