package exhaustive

import (
	"context"
	"math"
	"reflect"
	"strings"
	"testing"

	"wormnoc/internal/noc"
	"wormnoc/internal/sim"
	"wormnoc/internal/traffic"
)

// rc is the canonical tiny-platform router: unit link latency, zero
// routing latency, deep-enough buffers that credit stalls don't add
// incidental latency to the hand derivations.
var rc = noc.RouterConfig{BufDepth: 4, LinkLatency: 1}

func line2(t *testing.T) *noc.Topology {
	t.Helper()
	topo, err := noc.NewMesh(2, 1, rc)
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

func mesh22(t *testing.T) *noc.Topology {
	t.Helper()
	topo, err := noc.NewMesh(2, 2, rc)
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

// TestExploreHandChecked pins the exhaustive worst case of systems small
// enough to derive on paper, and asserts the randomised search attains
// the same value (search == exhaustive) on each: these grids are tiny,
// so a search that can't saturate them would be a search bug.
func TestExploreHandChecked(t *testing.T) {
	cases := []struct {
		name  string
		build func(t *testing.T) *traffic.System
		// want[i] is flow i's true worst-case latency over the canonical
		// phasing class, derived in the comments below.
		want []noc.Cycles
	}{
		{
			// A solo flow sees no interference at any phasing: its worst
			// case is the zero-load latency, here routl·2 + linkl·3 +
			// linkl·(3-1) = 5 over the 3-link route (injection, mesh,
			// ejection).
			name: "solo flow is zero-load",
			build: func(t *testing.T) *traffic.System {
				return traffic.MustSystem(line2(t), []traffic.Flow{
					{Name: "solo", Priority: 1, Period: 10, Deadline: 10, Length: 3, Src: 0, Dst: 1},
				})
			},
			want: []noc.Cycles{5},
		},
		{
			// Link-disjoint flows on the 2x2 mesh (XY routing keeps 0->1
			// on the top row and 2->3 on the bottom row) cannot interact:
			// both worst cases are their zero-load latencies regardless of
			// phasing. C = 3 + (L-1).
			name: "disjoint flows stay zero-load",
			build: func(t *testing.T) *traffic.System {
				return traffic.MustSystem(mesh22(t), []traffic.Flow{
					{Name: "top", Priority: 1, Period: 6, Deadline: 6, Length: 2, Src: 0, Dst: 1},
					{Name: "bottom", Priority: 2, Period: 9, Deadline: 9, Length: 3, Src: 2, Dst: 3},
				})
			},
			want: []noc.Cycles{4, 5},
		},
		{
			// One shared link chain, two flows (the ISSUE's 1-link/2-flow
			// case): h and l share the whole 0->1 route. h always wins
			// every arbitration, so its worst case is its zero-load
			// latency C_h = 3 + (2-1) = 4. l's worst response satisfies
			// the classic recurrence R = C_l + ceil(R/P_h)*L_h: with
			// C_l = 5, L_h = 2, P_h = 8 the fixed point is R = 7 — one h
			// packet's flits ever fit inside l's response window.
			name: "single-link contention pair",
			build: func(t *testing.T) *traffic.System {
				return traffic.MustSystem(line2(t), []traffic.Flow{
					{Name: "h", Priority: 1, Period: 8, Deadline: 8, Length: 2, Src: 0, Dst: 1},
					{Name: "l", Priority: 2, Period: 12, Deadline: 12, Length: 3, Src: 0, Dst: 1},
				})
			},
			want: []noc.Cycles{4, 7},
		},
		{
			// The ISSUE's 2x1-line/3-flow case: two flows contend for the
			// 0->1 direction while the third rides the disjoint 1->0
			// direction. h: zero-load 3 + 1 = 4. l: R = C_l + ceil(R/P_h)*L_h
			// with C_l = 3 + 3 = 6, L_h = 2, P_h = 10 gives R = 8.
			// back: solo on its direction, zero-load 3 + 1 = 4.
			name: "line three flows",
			build: func(t *testing.T) *traffic.System {
				return traffic.MustSystem(line2(t), []traffic.Flow{
					{Name: "h", Priority: 1, Period: 10, Deadline: 10, Length: 2, Src: 0, Dst: 1},
					{Name: "l", Priority: 2, Period: 14, Deadline: 14, Length: 4, Src: 0, Dst: 1},
					{Name: "back", Priority: 3, Period: 9, Deadline: 9, Length: 2, Src: 1, Dst: 0},
				})
			},
			want: []noc.Cycles{4, 8, 4},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sys := tc.build(t)
			res, err := Explore(sys, Config{})
			if err != nil {
				t.Fatal(err)
			}
			if !res.Complete {
				t.Fatalf("tiny grid not explored completely: %s", res.Truncation)
			}
			if res.Truncation != "" {
				t.Fatalf("complete run carries truncation note %q", res.Truncation)
			}
			if res.States != res.Space.ReducedGridSize || res.Explored != res.Space.ReducedGridSize {
				t.Fatalf("complete run states=%d explored=%d, want reduced grid %d",
					res.States, res.Explored, res.Space.ReducedGridSize)
			}
			if res.States > res.Space.GridSize {
				t.Fatalf("reduced run simulated %d states, more than the raw grid %d",
					res.States, res.Space.GridSize)
			}
			if red := res.Reductions; red.Mode != ReduceAll ||
				red.RawGridSize != res.Space.GridSize ||
				red.ReducedGridSize != res.Space.ReducedGridSize ||
				red.StatesSaved != red.RawGridSize-red.ReducedGridSize ||
				red.Clusters != len(res.Space.Clusters) {
				t.Fatalf("inconsistent reduction stats: %+v (space %+v)", red, res.Space)
			}
			for i := range tc.want {
				if got := res.Flows[i].Worst; got != tc.want[i] {
					t.Errorf("flow %d: exhaustive worst %d, hand-derived %d", i, got, tc.want[i])
				}
				if !res.Proven(i) {
					t.Errorf("flow %d: complete uncensored run not proven", i)
				}
				if res.Flows[i].Censored != 0 || res.Flows[i].DeadlineMisses != 0 {
					t.Errorf("flow %d: unexpected censoring %d / misses %d",
						i, res.Flows[i].Censored, res.Flows[i].DeadlineMisses)
				}
				// The witness phasing must replay to the reported worst.
				rr, err := sim.Run(sys, sim.Config{Duration: res.Duration, Offsets: res.Flows[i].Offsets})
				if err != nil {
					t.Fatal(err)
				}
				if rr.WorstLatency[i] != res.Flows[i].Worst {
					t.Errorf("flow %d: witness offsets replay to %d, reported %d",
						i, rr.WorstLatency[i], res.Flows[i].Worst)
				}
				// search == exhaustive on these grids: the randomised
				// search explores a subset of the same class, so it can
				// never exceed the exhaustive value, and on grids this
				// small it must reach it.
				sr, err := sim.SearchWorstCase(sys, sim.SearchConfig{
					Base:   sim.Config{Duration: res.Duration},
					Target: i, Seed: 1, Workers: 1,
				})
				if err != nil {
					t.Fatal(err)
				}
				if sr.Worst > res.Flows[i].Worst {
					t.Errorf("flow %d: search found %d above exhaustive %d — enumeration is not exhaustive",
						i, sr.Worst, res.Flows[i].Worst)
				}
				if sr.Worst != res.Flows[i].Worst {
					t.Errorf("flow %d: search %d != exhaustive %d on a trivially saturable grid",
						i, sr.Worst, res.Flows[i].Worst)
				}
			}
		})
	}
}

// TestExploreDeterministicAcrossWorkers asserts bit-identical results at
// any parallelism, for both complete and stride-truncated explorations.
func TestExploreDeterministicAcrossWorkers(t *testing.T) {
	sys := traffic.MustSystem(line2(t), []traffic.Flow{
		{Name: "h", Priority: 1, Period: 8, Deadline: 8, Length: 2, Src: 0, Dst: 1},
		{Name: "l", Priority: 2, Period: 12, Deadline: 12, Length: 3, Src: 0, Dst: 1},
		{Name: "back", Priority: 3, Period: 10, Deadline: 10, Length: 2, Src: 1, Dst: 0},
	})
	for _, cfg := range []Config{
		{},
		{Reduce: ReduceNone},
		{Reduce: ReduceSymmetry},
		{Reduce: ReduceClusters},
		{MaxStates: 100, AllowTruncated: true, Reduce: ReduceNone},
		{MaxStates: 10, AllowTruncated: true},
		{Stride: 7, Reduce: ReduceNone},
		{Stride: 3},
	} {
		var base *Result
		for _, workers := range []int{1, 2, 8} {
			c := cfg
			c.Workers = workers
			res, err := Explore(sys, c)
			if err != nil {
				t.Fatal(err)
			}
			if base == nil {
				base = res
				continue
			}
			if !reflect.DeepEqual(base, res) {
				t.Fatalf("cfg %+v: result differs between workers=1 and workers=%d:\n%+v\nvs\n%+v",
					cfg, workers, base, res)
			}
		}
	}
}

// TestExploreRepeatable asserts two identical invocations return
// bit-identical results (no hidden map-iteration or timing dependence).
func TestExploreRepeatable(t *testing.T) {
	sys := traffic.MustSystem(line2(t), []traffic.Flow{
		{Name: "h", Priority: 1, Period: 8, Deadline: 8, Length: 2, Src: 0, Dst: 1},
		{Name: "l", Priority: 2, Period: 12, Deadline: 12, Length: 3, Src: 0, Dst: 1},
	})
	a, err := Explore(sys, Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Explore(sys, Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("repeated runs differ:\n%+v\nvs\n%+v", a, b)
	}
}

// TestExploreTruncationHonesty: budget-capped runs must refuse or
// degrade loudly, and must never claim Complete or Proven.
func TestExploreTruncationHonesty(t *testing.T) {
	sys := traffic.MustSystem(line2(t), []traffic.Flow{
		{Name: "h", Priority: 1, Period: 8, Deadline: 8, Length: 2, Src: 0, Dst: 1},
		{Name: "l", Priority: 2, Period: 12, Deadline: 12, Length: 3, Src: 0, Dst: 1},
	})
	if _, err := Explore(sys, Config{MaxStates: 10}); err == nil {
		t.Fatal("over-budget grid without AllowTruncated did not error")
	}
	res, err := Explore(sys, Config{MaxStates: 10, AllowTruncated: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Complete {
		t.Fatal("budget-truncated run claims Complete")
	}
	if !strings.Contains(res.Truncation, "state budget") {
		t.Fatalf("truncation reason %q does not name the budget", res.Truncation)
	}
	if res.Stride <= 1 {
		t.Fatalf("truncated run kept stride %d", res.Stride)
	}
	for i := range res.Flows {
		if res.Proven(i) {
			t.Fatalf("flow %d proven on a truncated run", i)
		}
	}
	// The strided sample plus refinement is still a valid lower bound.
	full, err := Explore(sys, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Flows {
		if res.Flows[i].Worst > full.Flows[i].Worst {
			t.Fatalf("flow %d: truncated worst %d exceeds full-grid worst %d",
				i, res.Flows[i].Worst, full.Flows[i].Worst)
		}
	}
	if res.Deduped == 0 {
		t.Error("refinement pass reported no deduplicated candidates on overlapping windows")
	}
}

// TestExploreCancelled: a cancelled context yields a partial result
// marked truncated, not an error and not a proof.
func TestExploreCancelled(t *testing.T) {
	sys := traffic.MustSystem(line2(t), []traffic.Flow{
		{Name: "h", Priority: 1, Period: 8, Deadline: 8, Length: 2, Src: 0, Dst: 1},
		{Name: "l", Priority: 2, Period: 12, Deadline: 12, Length: 3, Src: 0, Dst: 1},
	})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := Explore(sys, Config{Context: ctx})
	if err != nil {
		t.Fatal(err)
	}
	if res.Complete {
		t.Fatal("cancelled run claims Complete")
	}
	if !strings.Contains(res.Truncation, "cancelled") {
		t.Fatalf("truncation reason %q does not mention cancellation", res.Truncation)
	}
	for i := range res.Flows {
		if res.Proven(i) {
			t.Fatalf("flow %d proven on a cancelled run", i)
		}
	}
}

// TestExploreCensoring: an overloaded link must surface as censored
// phasings and deadline misses, voiding the proof claim for the starved
// flow while the fully-preempting top-priority flow stays provable.
func TestExploreCensoring(t *testing.T) {
	// Utilisation on the shared 0->1 path is 6/8 + 6/8 > 1: the
	// low-priority flow's backlog grows without bound, so late packets
	// never complete inside any horizon.
	sys := traffic.MustSystem(line2(t), []traffic.Flow{
		{Name: "h", Priority: 1, Period: 8, Deadline: 8, Length: 6, Src: 0, Dst: 1},
		{Name: "l", Priority: 2, Period: 8, Deadline: 8, Length: 6, Src: 0, Dst: 1},
	})
	res, err := Explore(sys, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete {
		t.Fatalf("tiny grid not complete: %s", res.Truncation)
	}
	if res.Flows[1].Censored == 0 && res.Flows[1].DeadlineMisses == 0 {
		t.Fatal("overloaded low-priority flow shows neither censoring nor deadline misses")
	}
	if res.Proven(1) {
		t.Fatal("starved flow claims a proven worst case")
	}
	if !res.Proven(0) {
		t.Fatal("top-priority flow of a complete run should stay proven")
	}
}

// TestPlanLimits: structural refusals — too many flows, too many nodes,
// grid overflow — are Plan errors, not silent downgrades.
func TestPlanLimits(t *testing.T) {
	big, err := noc.NewMesh(3, 3, rc)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Plan(traffic.MustSystem(big, []traffic.Flow{
		{Name: "a", Priority: 1, Period: 10, Deadline: 10, Length: 2, Src: 0, Dst: 8},
	})); err == nil {
		t.Error("9-node mesh accepted")
	}

	topo := line2(t)
	five := make([]traffic.Flow, 5)
	for i := range five {
		five[i] = traffic.Flow{Priority: i + 1, Period: 10, Deadline: 10, Length: 1, Src: 0, Dst: 1}
	}
	if _, err := Plan(traffic.MustSystem(topo, five)); err == nil {
		t.Error("5-flow system accepted")
	}

	huge := noc.Cycles(math.MaxInt64 / 2)
	if _, err := Plan(traffic.MustSystem(topo, []traffic.Flow{
		{Name: "a", Priority: 1, Period: huge, Deadline: huge, Length: 1, Src: 0, Dst: 1},
		{Name: "b", Priority: 2, Period: huge - 1, Deadline: huge - 1, Length: 1, Src: 0, Dst: 1},
	})); err == nil {
		t.Error("overflowing phasing grid accepted")
	}

	// The horizon Hyperperiod + 2·MaxDeadline + 1 can overflow even when
	// the grid does not (a solo flow's grid is just its period): it must
	// be refused as a structural error, not wrapped into a negative
	// duration.
	if _, err := Plan(traffic.MustSystem(topo, []traffic.Flow{
		{Name: "a", Priority: 1, Period: huge, Deadline: huge, Length: 1, Src: 0, Dst: 1},
	})); err == nil {
		t.Error("overflowing suggested horizon accepted")
	} else if !strings.Contains(err.Error(), "periods too large") {
		t.Errorf("horizon overflow error %q does not say periods too large", err)
	}

	sp, err := Plan(traffic.MustSystem(topo, []traffic.Flow{
		{Name: "a", Priority: 1, Period: 6, Deadline: 5, Length: 2, Src: 0, Dst: 1},
		{Name: "b", Priority: 2, Period: 10, Deadline: 9, Length: 2, Src: 0, Dst: 1},
	}))
	if err != nil {
		t.Fatal(err)
	}
	if sp.GridSize != 60 {
		t.Errorf("grid size %d, want 60", sp.GridSize)
	}
	if sp.Hyperperiod != 30 {
		t.Errorf("hyperperiod %d, want 30", sp.Hyperperiod)
	}
	if sp.SuggestedDuration != 30+2*9+1 {
		t.Errorf("suggested duration %d, want %d", sp.SuggestedDuration, 30+2*9+1)
	}
	// Both flows share the 0->1 route: one cluster, whose quotient is
	// Π Pᵢ − Π (Pᵢ−1) = 60 − 5·9 = 15.
	if len(sp.Clusters) != 1 || !reflect.DeepEqual(sp.Clusters[0].Flows, []int{0, 1}) {
		t.Fatalf("clusters = %+v, want one cluster {0,1}", sp.Clusters)
	}
	if sp.Clusters[0].GridSize != 60 || sp.Clusters[0].QuotientSize != 15 {
		t.Errorf("cluster sizing %+v, want grid 60 quotient 15", sp.Clusters[0])
	}
	if sp.ReducedGridSize != 15 {
		t.Errorf("reduced grid %d, want 15", sp.ReducedGridSize)
	}
	for _, tc := range []struct {
		mode Reduction
		want int64
	}{
		{ReduceNone, 60}, {ReduceClusters, 60}, {ReduceSymmetry, 15}, {ReduceAll, 15},
	} {
		if got := sp.SizeUnder(tc.mode); got != tc.want {
			t.Errorf("SizeUnder(%v) = %d, want %d", tc.mode, got, tc.want)
		}
	}
}
