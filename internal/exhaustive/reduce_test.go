package exhaustive

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"wormnoc/internal/noc"
	"wormnoc/internal/sim"
	"wormnoc/internal/traffic"
)

// enumSpec lists small period vectors covering the canonical
// enumerator's edge cases: solo flows, period-1 flows (a single offset,
// hence an empty nonzero range), equal periods, coprime periods.
var enumSpecs = [][]int64{
	{1}, {4}, {2, 3}, {4, 4}, {1, 5}, {5, 1}, {2, 3, 4}, {3, 3, 3}, {1, 2, 3}, {6, 4, 2, 3},
}

// TestEnumCanonicalBijection proves the canonical enumerator is a
// bijection onto exactly the shift-symmetry representatives: the raw
// grid vectors with min offset 0. Size formula, decode coverage and
// encode round-trip are all checked against brute force.
func TestEnumCanonicalBijection(t *testing.T) {
	for _, periods := range enumSpecs {
		t.Run(fmt.Sprintf("%v", periods), func(t *testing.T) {
			n := len(periods)
			raw := newEnum(periods, false)
			can := newEnum(periods, true)
			// Size formula: Π Pᵢ − Π (Pᵢ−1).
			wantSize := int64(1)
			rest := int64(1)
			for _, p := range periods {
				wantSize *= p
				rest *= p - 1
			}
			wantSize -= rest
			if can.size != wantSize {
				t.Fatalf("canonical size %d, want %d", can.size, wantSize)
			}
			// Brute force the representative set off the raw grid.
			want := make(map[string]bool)
			off := make([]noc.Cycles, n)
			for k := int64(0); k < raw.size; k++ {
				raw.decode(k, off)
				if raw.encode(off) != k {
					t.Fatalf("raw encode(decode(%d)) != %d", k, k)
				}
				min := off[0]
				for _, o := range off {
					if o < min {
						min = o
					}
				}
				if min == 0 {
					want[fmt.Sprint(off)] = true
				}
			}
			if int64(len(want)) != wantSize {
				t.Fatalf("brute-force representative count %d, formula %d", len(want), wantSize)
			}
			// Decode must cover each representative exactly once and
			// encode must invert it.
			got := make(map[string]bool)
			for k := int64(0); k < can.size; k++ {
				can.decode(k, off)
				key := fmt.Sprint(off)
				if got[key] {
					t.Fatalf("rank %d decodes to duplicate vector %v", k, off)
				}
				got[key] = true
				if !want[key] {
					t.Fatalf("rank %d decodes to non-representative %v", k, off)
				}
				if r := can.encode(off); r != k {
					t.Fatalf("canonical encode(decode(%d)) = %d", k, r)
				}
			}
			if len(got) != len(want) {
				t.Fatalf("canonical enumeration covers %d of %d representatives", len(got), len(want))
			}
			// Non-representatives have no rank.
			for k := int64(0); k < raw.size; k++ {
				raw.decode(k, off)
				if key := fmt.Sprint(off); !want[key] {
					if r := can.encode(off); r != -1 {
						t.Fatalf("non-representative %v got rank %d", off, r)
					}
				}
			}
		})
	}
}

// randomTinySystem builds a deterministic random ≤3-flow system on a
// tiny platform. Flow directions are mixed so the generated population
// contains both single-cluster and multi-cluster interference graphs,
// and periods are small enough that the raw grid brute-forces quickly.
func randomTinySystem(rng *rand.Rand) *traffic.System {
	for {
		var topo *noc.Topology
		var nodes int
		cfg := noc.RouterConfig{BufDepth: 2 + rng.Intn(3), LinkLatency: 1, RouteLatency: noc.Cycles(rng.Intn(2))}
		if rng.Intn(2) == 0 {
			nodes = 2 + rng.Intn(3)
			topo = noc.MustMesh(nodes, 1, cfg)
		} else {
			nodes = 4
			topo = noc.MustMesh(2, 2, cfg)
		}
		nf := 1 + rng.Intn(3)
		flows := make([]traffic.Flow, nf)
		for i := range flows {
			p := noc.Cycles(2 + rng.Intn(5))
			src := rng.Intn(nodes)
			dst := rng.Intn(nodes - 1)
			if dst >= src {
				dst++
			}
			flows[i] = traffic.Flow{
				Name: fmt.Sprintf("f%d", i), Priority: i + 1,
				Period: p, Deadline: p, Length: 1 + rng.Intn(4),
				Src: noc.NodeID(src), Dst: noc.NodeID(dst),
			}
		}
		sys, err := traffic.NewSystem(topo, flows)
		if err != nil {
			continue
		}
		return sys
	}
}

// censorFlag is the per-flow evidence Proven keys on: whether any
// explored phasing censored the flow or missed its deadline. The
// reductions preserve this flag exactly; the raw counts legitimately
// differ (the raw grid re-observes each cluster event once per phasing
// of the other clusters).
func censorFlag(fr FlowResult) bool { return fr.Censored > 0 || fr.DeadlineMisses > 0 }

// TestReductionEquivalence is the soundness property suite of the
// reductions: over random tiny systems, every reduction mode must
// agree with the unreduced grid on per-flow worst latencies, censor
// flags and Proven verdicts, produce witnesses that replay on the full
// system to the reported worst, and be bit-identical at workers 1, 2
// and 8. The population is asserted to contain multi-cluster systems
// so the cluster decomposition is genuinely exercised.
func TestReductionEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	multiCluster := 0
	censored := 0
	for trial := 0; trial < 30; trial++ {
		sys := randomTinySystem(rng)
		full, err := Explore(sys, Config{Reduce: ReduceNone, Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		if !full.Complete {
			t.Fatalf("trial %d: raw grid of %d did not complete", trial, full.Space.GridSize)
		}
		if len(full.Space.Clusters) > 1 {
			multiCluster++
		}
		for i := range full.Flows {
			if censorFlag(full.Flows[i]) {
				censored++
				break
			}
		}
		for _, mode := range []Reduction{ReduceSymmetry, ReduceClusters, ReduceAll} {
			var base *Result
			for _, workers := range []int{1, 2, 8} {
				res, err := Explore(sys, Config{Reduce: mode, Workers: workers})
				if err != nil {
					t.Fatal(err)
				}
				if base == nil {
					base = res
				} else if !reflect.DeepEqual(base, res) {
					t.Fatalf("trial %d mode %v: result differs at workers=%d:\n%+v\nvs\n%+v",
						trial, mode, workers, base, res)
				}
				if !res.Complete {
					t.Fatalf("trial %d mode %v: reduced run incomplete: %s", trial, mode, res.Truncation)
				}
				if res.Explored != res.Space.SizeUnder(mode) || res.Reductions.ReducedGridSize != res.Explored {
					t.Fatalf("trial %d mode %v: explored %d, SizeUnder %d, stats %d",
						trial, mode, res.Explored, res.Space.SizeUnder(mode), res.Reductions.ReducedGridSize)
				}
				for i := range res.Flows {
					if res.Flows[i].Worst != full.Flows[i].Worst {
						t.Errorf("trial %d mode %v flow %d (workers %d): reduced worst %d != full %d\nsystem: %v",
							trial, mode, i, workers, res.Flows[i].Worst, full.Flows[i].Worst, sys.Flows())
					}
					if censorFlag(res.Flows[i]) != censorFlag(full.Flows[i]) {
						t.Errorf("trial %d mode %v flow %d: censor flag %v != full %v",
							trial, mode, i, censorFlag(res.Flows[i]), censorFlag(full.Flows[i]))
					}
					if res.Proven(i) != full.Proven(i) {
						t.Errorf("trial %d mode %v flow %d: proven %v != full %v",
							trial, mode, i, res.Proven(i), full.Proven(i))
					}
					// De-canonicalised witnesses are ordinary full-system
					// phasings achieving the reported worst.
					rr, err := sim.Run(sys, sim.Config{Duration: res.Duration, Offsets: res.Flows[i].Offsets})
					if err != nil {
						t.Fatal(err)
					}
					if rr.WorstLatency[i] != res.Flows[i].Worst {
						t.Errorf("trial %d mode %v flow %d: witness %v replays to %d, reported %d",
							trial, mode, i, res.Flows[i].Offsets, rr.WorstLatency[i], res.Flows[i].Worst)
					}
				}
			}
		}
	}
	if multiCluster == 0 {
		t.Error("population had no multi-cluster system; cluster decomposition untested")
	}
	if censored == 0 {
		t.Error("population had no censored/overloaded system; censor-flag preservation untested")
	}
}

// TestBrokenCanonicaliserCaught is the mutation self-test of the
// equivalence suite: the obvious-but-wrong quotient — pin the
// largest-period flow's offset to 0 and keep the other flows' native
// ranges (a mod-wrapping shift "symmetry") — must be caught by exactly
// the comparison the suite runs. It is wrong because the mod-shifted
// orbit is only equivalent in steady state: at a finite horizon the
// wrapped release pattern differs from every representative's
// transient, and relative phases outside the pinned flow's period are
// never enumerated at all. The plain-shift quotient Explore uses never
// wraps (min offset 0), which is why it is exact (DESIGN.md §15). If
// this test ever fails, the equivalence property has lost its teeth.
func TestBrokenCanonicaliserCaught(t *testing.T) {
	topo := noc.MustMesh(2, 1, noc.RouterConfig{BufDepth: 2, LinkLatency: 1})
	sys := traffic.MustSystem(topo, []traffic.Flow{
		{Name: "f0", Priority: 1, Period: 5, Deadline: 5, Length: 1, Src: 1, Dst: 0},
		{Name: "f1", Priority: 2, Period: 6, Deadline: 6, Length: 4, Src: 1, Dst: 0},
		{Name: "f2", Priority: 3, Period: 6, Deadline: 6, Length: 4, Src: 1, Dst: 0},
	})
	full, err := Explore(sys, Config{Reduce: ReduceNone, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !full.Complete {
		t.Fatalf("raw grid incomplete: %s", full.Truncation)
	}
	// The broken quotient's representative set: offsets (a, 0, c) with
	// the largest-period flow (first maximum, flow 1) pinned to 0.
	worst := []noc.Cycles{-1, -1, -1}
	for a := int64(0); a < 5; a++ {
		for c := int64(0); c < 6; c++ {
			sr, err := sim.Run(sys, sim.Config{
				Duration: full.Duration,
				Offsets:  []noc.Cycles{noc.Cycles(a), 0, noc.Cycles(c)},
			})
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 3; i++ {
				if sr.WorstLatency[i] > worst[i] {
					worst[i] = sr.WorstLatency[i]
				}
			}
		}
	}
	caught := false
	for i := 0; i < 3; i++ {
		if worst[i] != full.Flows[i].Worst {
			caught = true
		}
		if worst[i] > full.Flows[i].Worst {
			t.Errorf("flow %d: pinned subset exceeds the full grid (%d > %d) — brute force is broken",
				i, worst[i], full.Flows[i].Worst)
		}
	}
	if !caught {
		t.Fatal("the deliberately broken canonicaliser produced full-grid worst cases; the equivalence suite cannot catch quotient bugs")
	}
	// Pin the exact miss so a future simulator change that silently
	// legitimises mod-shifting is noticed here.
	if worst[2] != 32 || full.Flows[2].Worst != 36 {
		t.Errorf("witness drifted: pin-largest worst %d (want 32) vs true %d (want 36)", worst[2], full.Flows[2].Worst)
	}
}
