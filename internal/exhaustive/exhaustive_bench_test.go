package exhaustive_test

import (
	"testing"

	"wormnoc/internal/exhaustive"
	"wormnoc/internal/noc"
	"wormnoc/internal/traffic"
)

// benchReferenceSystem is the 4-flow reference configuration of the
// reduction before/after pair (results/BENCH_exhaustive.json): two
// link-disjoint contention clusters on a 4-node line — flows 0,1 share
// link 1→2 in the forward direction, flows 2,3 share link 2→1 in the
// reverse direction. Raw grid 8·12·9·10 = 8640 phasings; the cluster
// decomposition splits it into 96 + 90 and the shift-symmetry quotient
// shrinks those to 19 + 18 = 37 representatives, a ~234× state
// reduction at identical (property-test-certified) results.
func benchReferenceSystem(b testing.TB) *traffic.System {
	topo := noc.MustMesh(4, 1, noc.RouterConfig{BufDepth: 4, LinkLatency: 1})
	sys, err := traffic.NewSystem(topo, []traffic.Flow{
		{Name: "a0", Priority: 1, Period: 8, Deadline: 8, Length: 2, Src: 0, Dst: 2},
		{Name: "a1", Priority: 2, Period: 12, Deadline: 12, Length: 3, Src: 1, Dst: 3},
		{Name: "b0", Priority: 3, Period: 9, Deadline: 9, Length: 2, Src: 3, Dst: 1},
		{Name: "b1", Priority: 4, Period: 10, Deadline: 10, Length: 3, Src: 2, Dst: 0},
	})
	if err != nil {
		b.Fatal(err)
	}
	return sys
}

func benchExplore(b *testing.B, mode exhaustive.Reduction) {
	sys := benchReferenceSystem(b)
	b.Run("ref4", func(b *testing.B) {
		var states int64
		for i := 0; i < b.N; i++ {
			res, err := exhaustive.Explore(sys, exhaustive.Config{Reduce: mode, Workers: 1})
			if err != nil {
				b.Fatal(err)
			}
			if !res.Complete {
				b.Fatalf("reference configuration did not complete: %s", res.Truncation)
			}
			states = res.States
		}
		b.ReportMetric(float64(states), "states/op")
	})
}

// BenchmarkExhaustiveRaw is the before side of the reduction pair: the
// unreduced grid enumeration the pre-reduction explorer performed
// (ReduceNone is bit-compatible with it). Workers is pinned to 1 so the
// pair measures states, not scheduling.
func BenchmarkExhaustiveRaw(b *testing.B) { benchExplore(b, exhaustive.ReduceNone) }

// BenchmarkExhaustiveReduced is the after side: the same proof obtained
// from the symmetry-quotiented, cluster-decomposed state space. The
// states/op metric records the enumeration sizes whose ratio is the
// claimed reduction; TestReductionEquivalence is the *Agree test of
// this pair.
func BenchmarkExhaustiveReduced(b *testing.B) { benchExplore(b, exhaustive.ReduceAll) }
