package exhaustive_test

import (
	"fmt"
	"log"

	"wormnoc/internal/exhaustive"
	"wormnoc/internal/noc"
	"wormnoc/internal/traffic"
)

// Two flows sharing every link of a 2-node line: the smallest system
// with real contention. Plan sizes the phasing grid, Explore enumerates
// it completely, and Proven certifies the worst cases as true maxima of
// the canonical phasing class — the upgrade from the randomised
// search's "worst found" to "worst possible".
func Example() {
	topo, err := noc.NewMesh(2, 1, noc.RouterConfig{BufDepth: 4, LinkLatency: 1})
	if err != nil {
		log.Fatal(err)
	}
	sys := traffic.MustSystem(topo, []traffic.Flow{
		{Name: "hi", Priority: 1, Period: 8, Deadline: 8, Length: 2, Src: 0, Dst: 1},
		{Name: "lo", Priority: 2, Period: 12, Deadline: 12, Length: 3, Src: 0, Dst: 1},
	})

	sp, err := exhaustive.Plan(sys)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("grid: %d phasings (%d after reduction), horizon: %d cycles\n",
		sp.GridSize, sp.ReducedGridSize, sp.SuggestedDuration)

	res, err := exhaustive.Explore(sys, exhaustive.Config{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("complete: %v over %d simulated states\n", res.Complete, res.States)
	for i, fr := range res.Flows {
		fmt.Printf("%s: worst %d (proven %v)\n", sys.Flow(i).Name, fr.Worst, res.Proven(i))
	}
	// Output:
	// grid: 96 phasings (19 after reduction), horizon: 49 cycles
	// complete: true over 19 simulated states
	// hi: worst 4 (proven true)
	// lo: worst 7 (proven true)
}
