// Package exhaustive is the explicit-state verification backend for
// small configurations: where the oracle's randomised phasing search
// (sim.SearchWorstCase) samples the space of release phasings, this
// package enumerates it, computing the *true* worst-case latency of
// every flow over the whole class and upgrading the oracle's verdict
// from "no violation found" to "provably none exists in this class".
//
// # The certified class
//
// The explored class is the canonical phasing class of the event-driven
// simulator: every flow releases strictly periodically with its first
// release at an offset in [0, Period), jitter injection disabled, over a
// fixed horizon. Three facts make enumeration of that class a proof:
//
//   - the simulator is a deterministic function of the offset vector —
//     sim.TieFree certifies that arbitration never admits a tie, so
//     there are no interleavings to enumerate per phasing (were that
//     gate ever to fail, Explore refuses rather than certify);
//   - the offset grid Π[0,Pᵢ) is finite and is a strict superset of
//     every phasing the randomised search can probe (the search draws
//     offsets from exactly these ranges), so "search ≤ exhaustive" is an
//     invariant, not a hope;
//   - the joint release pattern is periodic in the hyperperiod H from
//     cycle 0, so a horizon of H + 2·max(Dᵢ) shows every relative
//     release configuration a full deadline-window of observation
//     (see Space.SuggestedDuration and DESIGN.md §15 for the steady-
//     state argument and its schedulability precondition).
//
// Per-packet varying jitter is deliberately outside the class: a
// constant release delay is subsumed by the offset grid, while
// adversarial per-release jitter would blow the space up exponentially.
// Flows may still carry Jitter > 0 — the analytic bounds then include
// the jitter terms and only get looser, so "exhaustive ≤ bound" remains
// a sound (if conservative) invariant.
//
// # Reductions
//
// The raw grid is highly redundant, and Explore exploits two exact
// redundancies by default (Config.Reduce, DESIGN.md §15):
//
//   - Shift-symmetry quotient: a phasing whose earliest offset is δ > 0
//     is the phasing shifted by −δ observed δ cycles later, so only the
//     vectors with min offset 0 — Π Pᵢ − Π (Pᵢ−1) of the Π Pᵢ — need
//     simulating; every worst case, censored packet and deadline miss
//     of the grid is witnessed by a representative.
//   - Contention-cluster decomposition: flows in different connected
//     components of the interference graph over S^D ∪ S^I
//     (core.Sets.Clusters) provably never interact in the simulator
//     (sim.Restrict), so each cluster's sub-grid is explored alone and
//     the multiplicative joint grid collapses into a sum.
//
// Both reductions preserve worst cases, witnesses (de-canonicalised to
// ordinary grid points on report), per-flow censor flags and Proven
// verdicts exactly; property tests certify them against the unreduced
// grid, and ReduceNone retains the raw enumeration bit-for-bit as the
// differential baseline.
//
// # Budgets and truncation
//
// Exploration is bounded twice: MaxStates caps the number of phasings
// simulated (exceeding it either fails or, with AllowTruncated, falls
// back to deterministic stride sampling plus local refinement), and an
// optional Context cancels long runs. Either truncation is reported
// explicitly — Result.Complete is false, Result.Truncation says why, and
// Result.Proven never claims a proof for a truncated run. Truncated
// results remain valid lower bounds on the true worst case and any
// bound exceedance they witness is a real violation.
//
// Exploration fans out over parallel.Runner with deterministic work
// partitioning: the sampled state space is cut into fixed-size index
// chunks merged in chunk order, so the Result is bit-identical at any
// worker count. internal/oracle wires Explore in as the exhaustive-
// divergent invariant class; cmd/nocfuzz's exhaust subcommand drives
// whole matrices of small configurations through it.
package exhaustive

import (
	"context"
	"encoding/binary"
	"fmt"
	"math"
	"runtime"

	"wormnoc/internal/core"
	"wormnoc/internal/noc"
	"wormnoc/internal/parallel"
	"wormnoc/internal/sim"
	"wormnoc/internal/traffic"
)

const (
	// MaxFlows bounds the flow-set size Explore accepts. The grid is the
	// product of the periods, so the limit keeps "exhaustive" honest:
	// beyond a handful of flows no budget reaches the full grid and the
	// proof claim would silently degrade into sampling.
	MaxFlows = 4
	// MaxNodes bounds the platform size (2×2 meshes and 1×N lines up to
	// four nodes). Larger platforms are the randomised oracle's job.
	MaxNodes = 4
	// DefaultMaxStates is the state budget used when Config.MaxStates is
	// zero: about a million phasings, a few seconds of single-core work
	// on typical tiny configurations.
	DefaultMaxStates = 1 << 20
	// DefaultDedupCap bounds the visited set of the refinement pass (see
	// Config.DedupCap).
	DefaultDedupCap = 1 << 16
	// chunkStates is the number of sampled grid points per work chunk.
	// Fixed — never derived from the worker count — so the chunk
	// partition, and with it the merged result, is identical at any
	// parallelism.
	chunkStates = 2048
)

// ClusterSpace sizes one contention cluster's share of the state space.
type ClusterSpace struct {
	// Flows lists the cluster's member flow indices, ascending.
	Flows []int
	// GridSize is the cluster's raw offset grid, Π Periodᵢ over members.
	GridSize int64
	// QuotientSize counts the cluster's shift-symmetry representatives,
	// Π Pᵢ − Π (Pᵢ−1): the vectors with min offset 0. A solo flow has
	// exactly one (offset 0).
	QuotientSize int64
}

// Space describes the state space of one system before exploring it:
// how many phasings the full grid holds, how far the reductions shrink
// it, and how long a horizon shows every phasing. Plan computes it;
// Explore embeds the same numbers in its Result.
type Space struct {
	// GridSize is the number of canonical phasings, Π Periodᵢ over all
	// flows — the raw, unreduced state space.
	GridSize int64
	// ReducedGridSize is the number of phasings the default reduction
	// (ReduceAll) enumerates: Σ over contention clusters of their
	// shift-symmetry quotients. SizeUnder reports the other modes.
	ReducedGridSize int64
	// Clusters are the connected components of the interference graph
	// over S^D ∪ S^I (core.Sets.Clusters), ordered by smallest member.
	// Flows in different clusters provably never interact, so the joint
	// grid factorises across them.
	Clusters []ClusterSpace
	// Hyperperiod is lcm(Periodᵢ): the joint release pattern of any
	// phasing repeats with this period from cycle 0.
	Hyperperiod noc.Cycles
	// MaxDeadline is the largest flow deadline, the observation slack
	// appended to the horizon.
	MaxDeadline noc.Cycles
	// SuggestedDuration is the auto-selected horizon,
	// Hyperperiod + 2·MaxDeadline + 1: releases in the second
	// deadline-window-aligned hyperperiod repeat the steady-state
	// configurations and still complete inside the horizon when the
	// system is schedulable.
	SuggestedDuration noc.Cycles
}

// SizeUnder returns the number of phasings Explore enumerates at stride
// 1 under reduction mode r. Callers budgeting an exploration (the
// oracle's skip decision) must size against the mode they will run, not
// the raw grid — that is the whole point of the reductions.
func (sp Space) SizeUnder(r Reduction) int64 {
	switch r {
	case ReduceNone:
		return sp.GridSize
	case ReduceClusters:
		var s int64
		for _, c := range sp.Clusters {
			s += c.GridSize
		}
		return s
	case ReduceSymmetry:
		// Whole-vector quotient: Π Pᵢ − Π (Pᵢ−1) over all flows, the
		// all-nonzero product being the product of the per-cluster ones.
		rest := int64(1)
		for _, c := range sp.Clusters {
			rest *= c.GridSize - c.QuotientSize
		}
		return sp.GridSize - rest
	}
	var s int64
	for _, c := range sp.Clusters {
		s += c.QuotientSize
	}
	return s
}

// Plan sizes the state space of sys without exploring it: callers use
// it to decide whether a configuration fits an exhaustive budget (the
// oracle skips the invariant, loudly, when it does not). The error
// reports structural limits — too many flows or nodes, an arbitration
// tie, arithmetic overflow of the grid or horizon — not budget
// overruns, which are Explore's to enforce.
func Plan(sys *traffic.System) (Space, error) {
	var sp Space
	n := sys.NumFlows()
	if n > MaxFlows {
		return sp, fmt.Errorf("exhaustive: %d flows exceed the limit of %d", n, MaxFlows)
	}
	if nodes := sys.Topology().NumNodes(); nodes > MaxNodes {
		return sp, fmt.Errorf("exhaustive: %d nodes exceed the limit of %d", nodes, MaxNodes)
	}
	if ok, reason := sim.TieFree(sys); !ok {
		return sp, fmt.Errorf("exhaustive: interleavings are not enumerable: %s", reason)
	}
	sp.GridSize = 1
	sp.Hyperperiod = 1
	for i := 0; i < n; i++ {
		f := sys.Flow(i)
		p := int64(f.Period)
		if sp.GridSize > math.MaxInt64/p {
			return sp, fmt.Errorf("exhaustive: phasing grid overflows int64 (periods too large)")
		}
		sp.GridSize *= p
		h := lcm(sp.Hyperperiod, f.Period)
		if h <= 0 {
			return sp, fmt.Errorf("exhaustive: hyperperiod overflows int64 (periods too large)")
		}
		sp.Hyperperiod = h
		if f.Deadline > sp.MaxDeadline {
			sp.MaxDeadline = f.Deadline
		}
	}
	// Cluster-grid sums can exceed the product by up to MaxFlows−1
	// states (a+b ≤ ab+1 for a,b ≥ 1), so keep that much headroom.
	if sp.GridSize > math.MaxInt64-MaxFlows {
		return sp, fmt.Errorf("exhaustive: phasing grid overflows int64 (periods too large)")
	}
	if sp.MaxDeadline > (math.MaxInt64-1)/2 ||
		sp.Hyperperiod > noc.Cycles(math.MaxInt64)-(2*sp.MaxDeadline+1) {
		return sp, fmt.Errorf("exhaustive: suggested horizon overflows int64 (periods too large)")
	}
	sp.SuggestedDuration = sp.Hyperperiod + 2*sp.MaxDeadline + 1
	for _, members := range core.BuildSets(sys).Clusters() {
		c := ClusterSpace{Flows: members, GridSize: 1}
		rest := int64(1)
		for _, i := range members {
			p := int64(sys.Flow(i).Period)
			c.GridSize *= p
			rest *= p - 1
		}
		c.QuotientSize = c.GridSize - rest
		sp.Clusters = append(sp.Clusters, c)
	}
	sp.ReducedGridSize = sp.SizeUnder(ReduceAll)
	return sp, nil
}

func gcd(a, b noc.Cycles) noc.Cycles {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// lcm returns the least common multiple, or a non-positive value on
// int64 overflow.
func lcm(a, b noc.Cycles) noc.Cycles {
	g := gcd(a, b)
	q := a / g
	if q != 0 && b > math.MaxInt64/q {
		return -1
	}
	return q * b
}

// Config parameterises one exploration. The zero value explores the
// fully-reduced state space at stride 1 (a proof, when it fits
// DefaultMaxStates) with the auto horizon and all CPUs.
type Config struct {
	// Duration is the simulation horizon per phasing; 0 selects
	// Space.SuggestedDuration. Shorter horizons weaken the certified
	// class ("worst within Duration"), never the chain invariants — the
	// comparison search must simply run the same horizon.
	Duration noc.Cycles
	// Reduce selects the state-space reductions (see Reduction). The
	// zero value is ReduceAll: both reductions are exact, so they are
	// on unless a differential run switches them off.
	Reduce Reduction
	// Stride samples every Stride-th enumerated state when > 1. A
	// strided run is explicitly NOT a proof (Complete stays false); it
	// exists for configurations whose state space exceeds any budget,
	// paired with the refinement pass around each flow's best phasing.
	Stride int64
	// MaxStates caps the number of phasings simulated in the systematic
	// pass (0 = DefaultMaxStates). When the strided state space still
	// exceeds it, Explore fails — or, with AllowTruncated, raises the
	// stride deterministically and reports the truncation.
	MaxStates int64
	// AllowTruncated permits the budget to degrade the run into stride
	// sampling instead of returning an error. The result is then marked
	// Complete=false with the reason in Truncation.
	AllowTruncated bool
	// Workers bounds the chunk fan-out (0 = GOMAXPROCS). The result is
	// bit-identical for any value.
	Workers int
	// Context, when non-nil, cancels a long exploration. A cancelled run
	// returns the states merged so far, marked truncated; which states
	// those are depends on timing, so only state-budget truncation is
	// deterministic.
	Context context.Context
	// DedupCap bounds the refinement pass's visited set (0 =
	// DefaultDedupCap). The set stores exact encoded offset vectors —
	// internal/canon-style length-stable little-endian keys — so a hit
	// can never alias two distinct phasings; overflowing the cap only
	// costs duplicate simulations, never correctness.
	DedupCap int
}

// FlowResult is one flow's exhaustive outcome.
type FlowResult struct {
	// Worst is the maximum observed latency over every explored phasing,
	// or -1 when no packet of the flow ever completed.
	Worst noc.Cycles
	// Offsets is the first (lowest enumeration index) phasing achieving
	// Worst. It is always an ordinary point of the raw grid — canonical
	// representatives are grid members and cluster witnesses embed with
	// zero offsets for the other clusters — so it replays directly
	// through sim.Run on the full system.
	Offsets []noc.Cycles
	// Censored counts explored phasings in which a packet of this flow
	// released at least a deadline before the horizon failed to complete
	// — direct evidence of a latency beyond the deadline that the
	// horizon cut off. Non-zero censoring voids the proof claim for this
	// flow and every lower-priority one (see Result.Proven).
	Censored int64
	// DeadlineMisses totals observed deadline misses across explored
	// phasings (completed packets whose latency exceeded the deadline).
	DeadlineMisses int64
}

// Reductions reports which state-space reductions an exploration ran
// under and what they saved. Reduced and raw runs agree on every worst
// case, witness quality, censor flag and Proven verdict; only these
// numbers (and the wall clock) differ.
type Reductions struct {
	// Mode is the reduction mode the exploration applied.
	Mode Reduction
	// Clusters is the number of independently-explored flow groups: the
	// contention-cluster count when decomposition is on, else 1.
	Clusters int
	// RawGridSize echoes Space.GridSize, the unreduced Π Periodᵢ.
	RawGridSize int64
	// ReducedGridSize is the stride-1 enumeration size under Mode
	// (Space.SizeUnder(Mode)).
	ReducedGridSize int64
	// StatesSaved is RawGridSize − ReducedGridSize: simulations the
	// reductions made unnecessary without weakening the proof.
	StatesSaved int64
	// SymmetryFactor is the multiplicative saving attributable to the
	// shift-symmetry quotient alone, at the run's cluster setting
	// (states without the quotient over states with it); 1 when the
	// quotient is off.
	SymmetryFactor float64
}

// Result is the outcome of one exploration.
type Result struct {
	// Flows holds per-flow worst cases, indexed like the system's flows.
	Flows []FlowResult
	// Space echoes the state-space plan of the explored system.
	Space Space
	// Reductions reports the reduction mode and its savings.
	Reductions Reductions
	// Duration is the horizon every phasing was simulated for.
	Duration noc.Cycles
	// Stride is the effective sampling stride of the systematic pass
	// (1 = full enumeration of the reduced space).
	Stride int64
	// Explored counts the systematic pass's sampled states;
	// Refined counts the refinement pass's additional simulations;
	// States = Explored + Refined is everything simulated.
	Explored, Refined, States int64
	// Deduped counts refinement candidates skipped because they were
	// provably already simulated (on the sampled lattice or in the
	// visited set).
	Deduped int64
	// Complete reports whether the reduced state space was enumerated
	// at stride 1 without cancellation — the precondition of every
	// proof claim. The reductions are exact, so a complete reduced run
	// proves exactly what a complete raw run proves.
	Complete bool
	// Truncation is empty for complete runs; otherwise it states what
	// was cut (stride sampling, state budget, cancellation) so callers
	// can never mistake a truncated run for a proof.
	Truncation string

	priorities []int
}

// Proven reports whether Flows[i].Worst is the provable true worst case
// of flow i over the certified class: the run must be Complete and no
// flow at equal-or-higher priority (including i itself) may have
// censored packets or deadline misses — the steady-state horizon
// argument presumes the interferer subsystem actually meets its
// deadlines. A truncated or censored run still yields valid *lower*
// bounds (and hence valid violations), just no proof of absence.
func (r *Result) Proven(i int) bool {
	if !r.Complete {
		return false
	}
	for j := range r.Flows {
		if r.priorities[j] <= r.priorities[i] &&
			(r.Flows[j].Censored > 0 || r.Flows[j].DeadlineMisses > 0) {
			return false
		}
	}
	return true
}

// group is one independently-explorable flow subset with its share of
// the concatenated enumeration index space [base, base+e.size). With
// cluster decomposition off there is a single group holding every flow
// and the original System; with it on, each contention cluster gets a
// sim.Restrict sub-system, which simulates the cluster's flows
// bit-identically to the full system (the flows provably never meet a
// flow outside the cluster on any link). All groups share one global
// Duration — the full system's horizon — so the certified class is the
// same one an unreduced run certifies.
type group struct {
	flows     []int // member flow indices in the full system
	sys       *traffic.System
	e         enum
	base      int64
	rawSize   int64
	periods   []int64
	deadlines []int64
}

// buildGroups materialises the reduction mode's flow groups and their
// enumerators. It also returns the flow→group index mapping.
func buildGroups(sys *traffic.System, sp Space, mode Reduction) ([]group, []int, error) {
	n := sys.NumFlows()
	var members [][]int
	if mode.clusters() && len(sp.Clusters) > 1 {
		for _, c := range sp.Clusters {
			members = append(members, c.Flows)
		}
	} else {
		all := make([]int, n)
		for i := range all {
			all[i] = i
		}
		members = [][]int{all}
	}
	groups := make([]group, len(members))
	groupOf := make([]int, n)
	var base int64
	for gi, flows := range members {
		g := &groups[gi]
		g.flows = flows
		g.sys = sys
		if len(flows) != n {
			sub, err := sim.Restrict(sys, flows)
			if err != nil {
				return nil, nil, fmt.Errorf("exhaustive: cluster restriction: %w", err)
			}
			g.sys = sub
		}
		g.periods = make([]int64, len(flows))
		g.deadlines = make([]int64, len(flows))
		g.rawSize = 1
		for k, fi := range flows {
			f := sys.Flow(fi)
			g.periods[k] = int64(f.Period)
			g.deadlines[k] = int64(f.Deadline)
			g.rawSize *= g.periods[k]
			groupOf[fi] = gi
		}
		g.e = newEnum(g.periods, mode.symmetry())
		g.base = base
		base += g.e.size
	}
	return groups, groupOf, nil
}

// groupAt returns the group owning concatenated enumeration index idx.
func groupAt(groups []group, idx int64) *group {
	gi := 0
	for idx >= groups[gi].base+groups[gi].e.size {
		gi++
	}
	return &groups[gi]
}

// reductionStats derives the Reductions record for a run over groups.
func reductionStats(sp Space, mode Reduction, groups []group, total int64) Reductions {
	red := Reductions{
		Mode:            mode,
		Clusters:        len(groups),
		RawGridSize:     sp.GridSize,
		ReducedGridSize: total,
		StatesSaved:     sp.GridSize - total,
		SymmetryFactor:  1,
	}
	if mode.symmetry() && total > 0 {
		var raw int64
		for i := range groups {
			raw += groups[i].rawSize
		}
		red.SymmetryFactor = float64(raw) / float64(total)
	}
	return red
}

// chunkRes accumulates one chunk's per-flow maxima. worstAt carries the
// concatenated enumeration index achieving the maximum so the merge can
// prefer the lowest index deterministically.
type chunkRes struct {
	worst    []noc.Cycles
	worstAt  []int64
	censored []int64
	misses   []int64
	states   int64
}

// Explore enumerates the phasing state space of sys — reduced per
// cfg.Reduce — and returns every flow's worst case over the full
// canonical phasing class. It is deterministic in (sys, cfg) —
// including at any Workers value — except for Context-cancelled runs,
// whose partial coverage depends on timing. Structural errors (limits,
// ties, an over-budget state space without AllowTruncated) return a
// nil Result.
func Explore(sys *traffic.System, cfg Config) (*Result, error) {
	sp, err := Plan(sys)
	if err != nil {
		return nil, err
	}
	n := sys.NumFlows()
	res := &Result{
		Flows:      make([]FlowResult, n),
		Space:      sp,
		Duration:   cfg.Duration,
		priorities: make([]int, n),
	}
	for i := 0; i < n; i++ {
		res.Flows[i].Worst = -1
		res.priorities[i] = sys.Flow(i).Priority
	}
	if res.Duration <= 0 {
		res.Duration = sp.SuggestedDuration
	}
	groups, groupOf, err := buildGroups(sys, sp, cfg.Reduce)
	if err != nil {
		return nil, err
	}
	lastG := &groups[len(groups)-1]
	total := lastG.base + lastG.e.size
	res.Reductions = reductionStats(sp, cfg.Reduce, groups, total)

	maxStates := cfg.MaxStates
	if maxStates <= 0 {
		maxStates = DefaultMaxStates
	}
	stride := cfg.Stride
	if stride < 1 {
		stride = 1
	}
	if stride > 1 {
		res.Truncation = fmt.Sprintf("stride %d sampling requested: %d of %d phasings", stride, ceilDiv(total, stride), total)
	}
	if ceilDiv(total, stride) > maxStates {
		if !cfg.AllowTruncated {
			if total != sp.GridSize {
				return nil, fmt.Errorf("exhaustive: reduced state space of %d phasings (raw grid %d) exceeds the state budget of %d (set AllowTruncated for stride sampling)",
					total, sp.GridSize, maxStates)
			}
			return nil, fmt.Errorf("exhaustive: grid of %d phasings exceeds the state budget of %d (set AllowTruncated for stride sampling)",
				total, maxStates)
		}
		stride = ceilDiv(total, maxStates)
		res.Truncation = fmt.Sprintf("state budget %d: stride raised to %d, sampling %d of %d phasings",
			maxStates, stride, ceilDiv(total, stride), total)
	}
	res.Stride = stride
	res.Explored = ceilDiv(total, stride)

	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	numChunks := int(ceilDiv(res.Explored, chunkStates))
	chunks := make([]chunkRes, numChunks)
	{
		// One arena for all chunk slices keeps the allocation count flat
		// in the chunk count.
		cyc := make([]noc.Cycles, numChunks*n)
		i64 := make([]int64, 3*numChunks*n)
		for c := range chunks {
			chunks[c].worst, cyc = cyc[:n:n], cyc[n:]
			chunks[c].worstAt, i64 = i64[:n:n], i64[n:]
			chunks[c].censored, i64 = i64[:n:n], i64[n:]
			chunks[c].misses, i64 = i64[:n:n], i64[n:]
		}
	}
	// Engines and offset scratch are per (worker slot, group), created
	// lazily: a run whose chunks never reach a group on some worker
	// never pays for that group's engine there.
	engines := make([][]*sim.Engine, workers)
	offsets := make([][][]noc.Cycles, workers)
	runner := parallel.Runner{Workers: workers, Context: cfg.Context}
	runErr := runner.RunWorkers(numChunks, func(w, c int) error {
		if engines[w] == nil {
			engines[w] = make([]*sim.Engine, len(groups))
			offsets[w] = make([][]noc.Cycles, len(groups))
		}
		cr := &chunks[c]
		for i := range cr.worst {
			cr.worst[i] = -1
			cr.worstAt[i] = -1
		}
		lo := int64(c) * chunkStates
		hi := lo + chunkStates
		if hi > res.Explored {
			hi = res.Explored
		}
		gi := 0 // sample indices ascend, so the group cursor only advances
		for k := lo; k < hi; k++ {
			idx := k * stride
			for idx >= groups[gi].base+groups[gi].e.size {
				gi++
			}
			g := &groups[gi]
			eng := engines[w][gi]
			if eng == nil {
				eng = sim.NewEngine(g.sys)
				engines[w][gi] = eng
				offsets[w][gi] = make([]noc.Cycles, len(g.flows))
			}
			off := offsets[w][gi]
			g.e.decode(idx-g.base, off)
			sr, err := eng.Run(sim.Config{Duration: res.Duration, Offsets: off})
			if err != nil {
				return err
			}
			cr.states++
			for fk, i := range g.flows {
				if sr.WorstLatency[fk] > cr.worst[i] {
					cr.worst[i] = sr.WorstLatency[fk]
					cr.worstAt[i] = idx
				}
				if int64(sr.Completed[fk]) < expectedAt(int64(off[fk]), g.periods[fk], int64(res.Duration), g.deadlines[fk]) {
					cr.censored[i]++
				}
				cr.misses[i] += int64(sr.DeadlineMisses[fk])
			}
		}
		return nil
	})
	cancelled := false
	if runErr != nil {
		if cfg.Context != nil && cfg.Context.Err() != nil {
			cancelled = true
			res.Truncation = fmt.Sprintf("cancelled mid-exploration: %v; partial coverage only", runErr)
		} else {
			return nil, fmt.Errorf("exhaustive: exploration failed: %w", runErr)
		}
	}

	// Merge in chunk order: the per-flow maximum prefers the lowest
	// enumeration index on ties, so the reported witness phasing is
	// deterministic.
	best := make([]int64, n)
	for i := range best {
		best[i] = -1
	}
	for c := range chunks {
		cr := &chunks[c]
		res.States += cr.states
		for i := 0; i < n; i++ {
			if cr.worstAt[i] >= 0 && (cr.worst[i] > res.Flows[i].Worst ||
				(cr.worst[i] == res.Flows[i].Worst && (best[i] < 0 || cr.worstAt[i] < best[i]))) {
				res.Flows[i].Worst = cr.worst[i]
				best[i] = cr.worstAt[i]
			}
			res.Flows[i].Censored += cr.censored[i]
			res.Flows[i].DeadlineMisses += cr.misses[i]
		}
	}
	// De-canonicalise witnesses: decode the winning group-local vector
	// and embed it into a full-length phasing (zero offsets for the
	// other groups — any value would do, those flows provably cannot
	// affect this one). The result is an ordinary grid point replaying
	// to the reported worst.
	for i := 0; i < n; i++ {
		res.Flows[i].Offsets = make([]noc.Cycles, n)
		if best[i] >= 0 {
			g := groupAt(groups, best[i])
			loc := make([]noc.Cycles, len(g.flows))
			g.e.decode(best[i]-g.base, loc)
			for k, fi := range g.flows {
				res.Flows[i].Offsets[fi] = loc[k]
			}
		}
	}

	if stride > 1 && !cancelled {
		refine(cfg, res, groups, groupOf, best)
	}
	res.Complete = stride == 1 && !cancelled
	return res, nil
}

// expectedAt returns the number of completions a flow releasing at
// offset off owes the horizon: releases at off + m·period with a full
// deadline window before the last simulated cycle. A shortfall means a
// packet outlived its deadline without completing — censoring evidence.
func expectedAt(off, period, duration, deadline int64) int64 {
	last := duration - 1 - deadline
	if off > last {
		return 0
	}
	return (last-off)/period + 1
}

// refine runs the local-refinement pass of a strided exploration:
// around every flow's best-known phasing, each coordinate of the flow's
// own group is swept over the stride-wide window the sampling skipped
// (coordinates of other groups provably cannot move the flow's worst
// case). Candidates already on the sampled lattice, or already tried by
// an overlapping window, are deduplicated — the former exactly by
// enumeration-rank arithmetic, the latter by the bounded visited set.
// Swept vectors may leave the canonical representative set; they are
// still ordinary class members, so their latencies are valid lower
// bounds, which is all a truncated run reports. The pass is sequential
// and in a fixed sweep order, so strided results stay deterministic at
// any worker count.
func refine(cfg Config, res *Result, groups []group, groupOf []int, best []int64) {
	dedupCap := cfg.DedupCap
	if dedupCap <= 0 {
		dedupCap = DefaultDedupCap
	}
	visited := make(map[string]struct{}, 1024)
	engines := make([]*sim.Engine, len(groups))
	scratch := make([][]noc.Cycles, len(groups))
	for target := range res.Flows {
		if best[target] < 0 {
			continue
		}
		gi := groupOf[target]
		g := &groups[gi]
		if engines[gi] == nil {
			engines[gi] = sim.NewEngine(g.sys)
			scratch[gi] = make([]noc.Cycles, len(g.flows))
		}
		eng := engines[gi]
		off := scratch[gi]
		// Group-local projection of the target's best-known witness.
		base := make([]noc.Cycles, len(g.flows))
		for k, fi := range g.flows {
			base[k] = res.Flows[target].Offsets[fi]
		}
		// Keys carry the group index so equal-length vectors of
		// different groups can never alias in the visited set.
		keyBuf := make([]byte, 1+8*len(g.flows))
		keyBuf[0] = byte(gi)
		for fk := range g.flows {
			for d := int64(1); d < res.Stride; d++ {
				for _, sign := range [2]int64{1, -1} {
					copy(off, base)
					p := g.periods[fk]
					off[fk] = noc.Cycles(((int64(base[fk])+sign*d)%p + p) % p)
					if r := g.e.encode(off); r >= 0 && (g.base+r)%res.Stride == 0 {
						res.Deduped++ // on the sampled lattice: already simulated
						continue
					}
					for k, o := range off {
						binary.LittleEndian.PutUint64(keyBuf[1+8*k:], uint64(o))
					}
					if _, dup := visited[string(keyBuf)]; dup {
						res.Deduped++
						continue
					}
					if len(visited) < dedupCap {
						visited[string(keyBuf)] = struct{}{}
					}
					sr, err := eng.Run(sim.Config{Duration: res.Duration, Offsets: off})
					if err != nil {
						return // validated inputs cannot fail; keep partial refinement
					}
					res.Refined++
					res.States++
					for k, fi := range g.flows {
						if sr.WorstLatency[k] > res.Flows[fi].Worst {
							res.Flows[fi].Worst = sr.WorstLatency[k]
							for kk, fj := range g.flows {
								res.Flows[fi].Offsets[fj] = off[kk]
							}
						}
						if int64(sr.Completed[k]) < expectedAt(int64(off[k]), g.periods[k], int64(res.Duration), g.deadlines[k]) {
							res.Flows[fi].Censored++
						}
						res.Flows[fi].DeadlineMisses += int64(sr.DeadlineMisses[k])
					}
				}
			}
		}
	}
}

func ceilDiv(a, b int64) int64 { return (a + b - 1) / b }
