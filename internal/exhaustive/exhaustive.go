// Package exhaustive is the explicit-state verification backend for
// small configurations: where the oracle's randomised phasing search
// (sim.SearchWorstCase) samples the space of release phasings, this
// package enumerates it, computing the *true* worst-case latency of
// every flow over the whole class and upgrading the oracle's verdict
// from "no violation found" to "provably none exists in this class".
//
// # The certified class
//
// The explored class is the canonical phasing class of the event-driven
// simulator: every flow releases strictly periodically with its first
// release at an offset in [0, Period), jitter injection disabled, over a
// fixed horizon. Three facts make enumeration of that class a proof:
//
//   - the simulator is a deterministic function of the offset vector —
//     sim.TieFree certifies that arbitration never admits a tie, so
//     there are no interleavings to enumerate per phasing (were that
//     gate ever to fail, Explore refuses rather than certify);
//   - the offset grid Π[0,Pᵢ) is finite and is a strict superset of
//     every phasing the randomised search can probe (the search draws
//     offsets from exactly these ranges), so "search ≤ exhaustive" is an
//     invariant, not a hope;
//   - the joint release pattern is periodic in the hyperperiod H from
//     cycle 0, so a horizon of H + 2·max(Dᵢ) shows every relative
//     release configuration a full deadline-window of observation
//     (see Space.SuggestedDuration and DESIGN.md §15 for the steady-
//     state argument and its schedulability precondition).
//
// Per-packet varying jitter is deliberately outside the class: a
// constant release delay is subsumed by the offset grid, while
// adversarial per-release jitter would blow the space up exponentially.
// Flows may still carry Jitter > 0 — the analytic bounds then include
// the jitter terms and only get looser, so "exhaustive ≤ bound" remains
// a sound (if conservative) invariant.
//
// # Budgets and truncation
//
// Exploration is bounded twice: MaxStates caps the number of phasings
// simulated (exceeding it either fails or, with AllowTruncated, falls
// back to deterministic stride sampling plus local refinement), and an
// optional Context cancels long runs. Either truncation is reported
// explicitly — Result.Complete is false, Result.Truncation says why, and
// Result.Proven never claims a proof for a truncated run. Truncated
// results remain valid lower bounds on the true worst case and any
// bound exceedance they witness is a real violation.
//
// Exploration fans out over parallel.Runner with deterministic work
// partitioning: the sampled grid is cut into fixed-size index chunks
// merged in chunk order, so the Result is bit-identical at any worker
// count. internal/oracle wires Explore in as the exhaustive-divergent
// invariant class; cmd/nocfuzz's exhaust subcommand drives whole
// matrices of small configurations through it.
package exhaustive

import (
	"context"
	"encoding/binary"
	"fmt"
	"math"
	"runtime"

	"wormnoc/internal/noc"
	"wormnoc/internal/parallel"
	"wormnoc/internal/sim"
	"wormnoc/internal/traffic"
)

const (
	// MaxFlows bounds the flow-set size Explore accepts. The grid is the
	// product of the periods, so the limit keeps "exhaustive" honest:
	// beyond a handful of flows no budget reaches the full grid and the
	// proof claim would silently degrade into sampling.
	MaxFlows = 4
	// MaxNodes bounds the platform size (2×2 meshes and 1×N lines up to
	// four nodes). Larger platforms are the randomised oracle's job.
	MaxNodes = 4
	// DefaultMaxStates is the state budget used when Config.MaxStates is
	// zero: about a million phasings, a few seconds of single-core work
	// on typical tiny configurations.
	DefaultMaxStates = 1 << 20
	// DefaultDedupCap bounds the visited set of the refinement pass (see
	// Config.DedupCap).
	DefaultDedupCap = 1 << 16
	// chunkStates is the number of sampled grid points per work chunk.
	// Fixed — never derived from the worker count — so the chunk
	// partition, and with it the merged result, is identical at any
	// parallelism.
	chunkStates = 2048
)

// Space describes the state space of one system before exploring it:
// how many phasings the full grid holds and how long a horizon shows
// them all. Plan computes it; Explore embeds the same numbers in its
// Result.
type Space struct {
	// GridSize is the number of canonical phasings, Π Periodᵢ over all
	// flows.
	GridSize int64
	// Hyperperiod is lcm(Periodᵢ): the joint release pattern of any
	// phasing repeats with this period from cycle 0.
	Hyperperiod noc.Cycles
	// MaxDeadline is the largest flow deadline, the observation slack
	// appended to the horizon.
	MaxDeadline noc.Cycles
	// SuggestedDuration is the auto-selected horizon,
	// Hyperperiod + 2·MaxDeadline + 1: releases in the second
	// deadline-window-aligned hyperperiod repeat the steady-state
	// configurations and still complete inside the horizon when the
	// system is schedulable.
	SuggestedDuration noc.Cycles
}

// Plan sizes the state space of sys without exploring it: callers use
// it to decide whether a configuration fits an exhaustive budget (the
// oracle skips the invariant, loudly, when it does not). The error
// reports structural limits — too many flows or nodes, an arbitration
// tie, arithmetic overflow of the grid — not budget overruns, which are
// Explore's to enforce.
func Plan(sys *traffic.System) (Space, error) {
	var sp Space
	n := sys.NumFlows()
	if n > MaxFlows {
		return sp, fmt.Errorf("exhaustive: %d flows exceed the limit of %d", n, MaxFlows)
	}
	if nodes := sys.Topology().NumNodes(); nodes > MaxNodes {
		return sp, fmt.Errorf("exhaustive: %d nodes exceed the limit of %d", nodes, MaxNodes)
	}
	if ok, reason := sim.TieFree(sys); !ok {
		return sp, fmt.Errorf("exhaustive: interleavings are not enumerable: %s", reason)
	}
	sp.GridSize = 1
	sp.Hyperperiod = 1
	for i := 0; i < n; i++ {
		f := sys.Flow(i)
		p := int64(f.Period)
		if sp.GridSize > math.MaxInt64/p {
			return sp, fmt.Errorf("exhaustive: phasing grid overflows int64 (periods too large)")
		}
		sp.GridSize *= p
		h := lcm(sp.Hyperperiod, f.Period)
		if h <= 0 {
			return sp, fmt.Errorf("exhaustive: hyperperiod overflows int64 (periods too large)")
		}
		sp.Hyperperiod = h
		if f.Deadline > sp.MaxDeadline {
			sp.MaxDeadline = f.Deadline
		}
	}
	sp.SuggestedDuration = sp.Hyperperiod + 2*sp.MaxDeadline + 1
	return sp, nil
}

func gcd(a, b noc.Cycles) noc.Cycles {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// lcm returns the least common multiple, or a non-positive value on
// int64 overflow.
func lcm(a, b noc.Cycles) noc.Cycles {
	g := gcd(a, b)
	q := a / g
	if q != 0 && b > math.MaxInt64/q {
		return -1
	}
	return q * b
}

// Config parameterises one exploration. The zero value explores the
// full grid at stride 1 (a proof, when it fits DefaultMaxStates) with
// the auto horizon and all CPUs.
type Config struct {
	// Duration is the simulation horizon per phasing; 0 selects
	// Space.SuggestedDuration. Shorter horizons weaken the certified
	// class ("worst within Duration"), never the chain invariants — the
	// comparison search must simply run the same horizon.
	Duration noc.Cycles
	// Stride samples every Stride-th grid point when > 1. A strided run
	// is explicitly NOT a proof (Complete stays false); it exists for
	// configurations whose grid exceeds any budget, paired with the
	// refinement pass around each flow's best phasing.
	Stride int64
	// MaxStates caps the number of phasings simulated in the systematic
	// pass (0 = DefaultMaxStates). When the strided grid still exceeds
	// it, Explore fails — or, with AllowTruncated, raises the stride
	// deterministically and reports the truncation.
	MaxStates int64
	// AllowTruncated permits the budget to degrade the run into stride
	// sampling instead of returning an error. The result is then marked
	// Complete=false with the reason in Truncation.
	AllowTruncated bool
	// Workers bounds the chunk fan-out (0 = GOMAXPROCS). The result is
	// bit-identical for any value.
	Workers int
	// Context, when non-nil, cancels a long exploration. A cancelled run
	// returns the states merged so far, marked truncated; which states
	// those are depends on timing, so only state-budget truncation is
	// deterministic.
	Context context.Context
	// DedupCap bounds the refinement pass's visited set (0 =
	// DefaultDedupCap). The set stores exact encoded offset vectors —
	// internal/canon-style length-stable little-endian keys — so a hit
	// can never alias two distinct phasings; overflowing the cap only
	// costs duplicate simulations, never correctness.
	DedupCap int
}

// FlowResult is one flow's exhaustive outcome.
type FlowResult struct {
	// Worst is the maximum observed latency over every explored phasing,
	// or -1 when no packet of the flow ever completed.
	Worst noc.Cycles
	// Offsets is the first (lowest grid index) phasing achieving Worst.
	Offsets []noc.Cycles
	// Censored counts explored phasings in which a packet of this flow
	// released at least a deadline before the horizon failed to complete
	// — direct evidence of a latency beyond the deadline that the
	// horizon cut off. Non-zero censoring voids the proof claim for this
	// flow and every lower-priority one (see Result.Proven).
	Censored int64
	// DeadlineMisses totals observed deadline misses across explored
	// phasings (completed packets whose latency exceeded the deadline).
	DeadlineMisses int64
}

// Result is the outcome of one exploration.
type Result struct {
	// Flows holds per-flow worst cases, indexed like the system's flows.
	Flows []FlowResult
	// Space echoes the state-space plan of the explored system.
	Space Space
	// Duration is the horizon every phasing was simulated for.
	Duration noc.Cycles
	// Stride is the effective sampling stride of the systematic pass
	// (1 = full grid).
	Stride int64
	// Explored counts the systematic pass's sampled grid points;
	// Refined counts the refinement pass's additional simulations;
	// States = Explored + Refined is everything simulated.
	Explored, Refined, States int64
	// Deduped counts refinement candidates skipped because they were
	// provably already simulated (on the sampled lattice or in the
	// visited set).
	Deduped int64
	// Complete reports whether the full grid was enumerated at stride 1
	// without cancellation — the precondition of every proof claim.
	Complete bool
	// Truncation is empty for complete runs; otherwise it states what
	// was cut (stride sampling, state budget, cancellation) so callers
	// can never mistake a truncated run for a proof.
	Truncation string

	priorities []int
}

// Proven reports whether Flows[i].Worst is the provable true worst case
// of flow i over the certified class: the run must be Complete and no
// flow at equal-or-higher priority (including i itself) may have
// censored packets or deadline misses — the steady-state horizon
// argument presumes the interferer subsystem actually meets its
// deadlines. A truncated or censored run still yields valid *lower*
// bounds (and hence valid violations), just no proof of absence.
func (r *Result) Proven(i int) bool {
	if !r.Complete {
		return false
	}
	for j := range r.Flows {
		if r.priorities[j] <= r.priorities[i] &&
			(r.Flows[j].Censored > 0 || r.Flows[j].DeadlineMisses > 0) {
			return false
		}
	}
	return true
}

// chunkRes accumulates one chunk's per-flow maxima. worstAt carries the
// flat grid index achieving the maximum so the merge can prefer the
// lowest index deterministically.
type chunkRes struct {
	worst    []noc.Cycles
	worstAt  []int64
	censored []int64
	misses   []int64
	states   int64
}

// Explore enumerates the phasing grid of sys and returns every flow's
// worst case over it. It is deterministic in (sys, cfg) — including at
// any Workers value — except for Context-cancelled runs, whose partial
// coverage depends on timing. Structural errors (limits, ties, an
// over-budget grid without AllowTruncated) return a nil Result.
func Explore(sys *traffic.System, cfg Config) (*Result, error) {
	sp, err := Plan(sys)
	if err != nil {
		return nil, err
	}
	n := sys.NumFlows()
	res := &Result{
		Flows:      make([]FlowResult, n),
		Space:      sp,
		Duration:   cfg.Duration,
		priorities: make([]int, n),
	}
	for i := 0; i < n; i++ {
		res.Flows[i].Worst = -1
		res.priorities[i] = sys.Flow(i).Priority
	}
	if res.Duration <= 0 {
		res.Duration = sp.SuggestedDuration
	}
	maxStates := cfg.MaxStates
	if maxStates <= 0 {
		maxStates = DefaultMaxStates
	}
	stride := cfg.Stride
	if stride < 1 {
		stride = 1
	}
	if stride > 1 {
		res.Truncation = fmt.Sprintf("stride %d sampling requested: %d of %d phasings", stride, ceilDiv(sp.GridSize, stride), sp.GridSize)
	}
	if ceilDiv(sp.GridSize, stride) > maxStates {
		if !cfg.AllowTruncated {
			return nil, fmt.Errorf("exhaustive: grid of %d phasings exceeds the state budget of %d (set AllowTruncated for stride sampling)",
				sp.GridSize, maxStates)
		}
		stride = ceilDiv(sp.GridSize, maxStates)
		res.Truncation = fmt.Sprintf("state budget %d: stride raised to %d, sampling %d of %d phasings",
			maxStates, stride, ceilDiv(sp.GridSize, stride), sp.GridSize)
	}
	res.Stride = stride
	res.Explored = ceilDiv(sp.GridSize, stride)

	periods := make([]int64, n)
	deadlines := make([]int64, n)
	for i := 0; i < n; i++ {
		f := sys.Flow(i)
		periods[i] = int64(f.Period)
		deadlines[i] = int64(f.Deadline)
	}

	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	numChunks := int(ceilDiv(res.Explored, chunkStates))
	chunks := make([]chunkRes, numChunks)
	{
		// One arena for all chunk slices keeps the allocation count flat
		// in the chunk count.
		cyc := make([]noc.Cycles, numChunks*n)
		i64 := make([]int64, 3*numChunks*n)
		for c := range chunks {
			chunks[c].worst, cyc = cyc[:n:n], cyc[n:]
			chunks[c].worstAt, i64 = i64[:n:n], i64[n:]
			chunks[c].censored, i64 = i64[:n:n], i64[n:]
			chunks[c].misses, i64 = i64[:n:n], i64[n:]
		}
	}
	engines := make([]*sim.Engine, workers)
	offsets := make([][]noc.Cycles, workers)
	runner := parallel.Runner{Workers: workers, Context: cfg.Context}
	runErr := runner.RunWorkers(numChunks, func(w, c int) error {
		eng := engines[w]
		if eng == nil {
			eng = sim.NewEngine(sys)
			engines[w] = eng
			offsets[w] = make([]noc.Cycles, n)
		}
		off := offsets[w]
		cr := &chunks[c]
		for i := range cr.worst {
			cr.worst[i] = -1
			cr.worstAt[i] = -1
		}
		lo := int64(c) * chunkStates
		hi := lo + chunkStates
		if hi > res.Explored {
			hi = res.Explored
		}
		for k := lo; k < hi; k++ {
			idx := k * stride
			decodeOffsets(idx, periods, off)
			sr, err := eng.Run(sim.Config{Duration: res.Duration, Offsets: off})
			if err != nil {
				return err
			}
			cr.states++
			for i := 0; i < n; i++ {
				if sr.WorstLatency[i] > cr.worst[i] {
					cr.worst[i] = sr.WorstLatency[i]
					cr.worstAt[i] = idx
				}
				if int64(sr.Completed[i]) < expectedAt(int64(off[i]), periods[i], int64(res.Duration), deadlines[i]) {
					cr.censored[i]++
				}
				cr.misses[i] += int64(sr.DeadlineMisses[i])
			}
		}
		return nil
	})
	cancelled := false
	if runErr != nil {
		if cfg.Context != nil && cfg.Context.Err() != nil {
			cancelled = true
			res.Truncation = fmt.Sprintf("cancelled mid-exploration: %v; partial coverage only", runErr)
		} else {
			return nil, fmt.Errorf("exhaustive: exploration failed: %w", runErr)
		}
	}

	// Merge in chunk order: the per-flow maximum prefers the lowest flat
	// index on ties, so the reported witness phasing is deterministic.
	best := make([]int64, n)
	for i := range best {
		best[i] = -1
	}
	for c := range chunks {
		cr := &chunks[c]
		res.States += cr.states
		for i := 0; i < n; i++ {
			if cr.worstAt[i] >= 0 && (cr.worst[i] > res.Flows[i].Worst ||
				(cr.worst[i] == res.Flows[i].Worst && (best[i] < 0 || cr.worstAt[i] < best[i]))) {
				res.Flows[i].Worst = cr.worst[i]
				best[i] = cr.worstAt[i]
			}
			res.Flows[i].Censored += cr.censored[i]
			res.Flows[i].DeadlineMisses += cr.misses[i]
		}
	}
	for i := 0; i < n; i++ {
		res.Flows[i].Offsets = make([]noc.Cycles, n)
		if best[i] >= 0 {
			decodeOffsets(best[i], periods, res.Flows[i].Offsets)
		}
	}

	if stride > 1 && !cancelled {
		refine(sys, cfg, res, periods, deadlines, best)
	}
	res.Complete = stride == 1 && !cancelled
	return res, nil
}

// expectedAt returns the number of completions a flow releasing at
// offset off owes the horizon: releases at off + m·period with a full
// deadline window before the last simulated cycle. A shortfall means a
// packet outlived its deadline without completing — censoring evidence.
func expectedAt(off, period, duration, deadline int64) int64 {
	last := duration - 1 - deadline
	if off > last {
		return 0
	}
	return (last-off)/period + 1
}

// decodeOffsets expands flat grid index idx into the per-flow offset
// vector (mixed radix, the last flow varying fastest).
func decodeOffsets(idx int64, periods []int64, out []noc.Cycles) {
	for i := len(periods) - 1; i >= 0; i-- {
		out[i] = noc.Cycles(idx % periods[i])
		idx /= periods[i]
	}
}

// encodeOffsets is decodeOffsets' inverse; it returns -1 if the vector
// is off-grid (it never is for in-range offsets).
func encodeOffsets(off []noc.Cycles, periods []int64) int64 {
	var idx int64
	for i := range periods {
		idx = idx*periods[i] + int64(off[i])
	}
	return idx
}

// refine runs the local-refinement pass of a strided exploration:
// around every flow's best-known phasing, each coordinate is swept over
// the stride-wide window the sampling skipped. Candidates already on
// the sampled lattice, or already tried by an overlapping window, are
// deduplicated — the former exactly by index arithmetic, the latter by
// the bounded visited set. The pass is sequential and in a fixed sweep
// order, so strided results stay deterministic at any worker count.
func refine(sys *traffic.System, cfg Config, res *Result, periods, deadlines []int64, best []int64) {
	n := len(periods)
	dedupCap := cfg.DedupCap
	if dedupCap <= 0 {
		dedupCap = DefaultDedupCap
	}
	visited := make(map[string]struct{}, 1024)
	eng := sim.NewEngine(sys)
	off := make([]noc.Cycles, n)
	keyBuf := make([]byte, 8*n)
	for target := 0; target < n; target++ {
		if best[target] < 0 {
			continue
		}
		base := res.Flows[target].Offsets
		for f := 0; f < n; f++ {
			for d := int64(1); d < res.Stride; d++ {
				for _, sign := range [2]int64{1, -1} {
					copy(off, base)
					p := periods[f]
					off[f] = noc.Cycles(((int64(base[f])+sign*d)%p + p) % p)
					if encodeOffsets(off, periods)%res.Stride == 0 {
						res.Deduped++ // on the sampled lattice: already simulated
						continue
					}
					for i, o := range off {
						binary.LittleEndian.PutUint64(keyBuf[8*i:], uint64(o))
					}
					if _, dup := visited[string(keyBuf)]; dup {
						res.Deduped++
						continue
					}
					if len(visited) < dedupCap {
						visited[string(keyBuf)] = struct{}{}
					}
					sr, err := eng.Run(sim.Config{Duration: res.Duration, Offsets: off})
					if err != nil {
						return // validated inputs cannot fail; keep partial refinement
					}
					res.Refined++
					res.States++
					for i := 0; i < n; i++ {
						if sr.WorstLatency[i] > res.Flows[i].Worst {
							res.Flows[i].Worst = sr.WorstLatency[i]
							copy(res.Flows[i].Offsets, off)
						}
						if int64(sr.Completed[i]) < expectedAt(int64(off[i]), periods[i], int64(res.Duration), deadlines[i]) {
							res.Flows[i].Censored++
						}
						res.Flows[i].DeadlineMisses += int64(sr.DeadlineMisses[i])
					}
				}
			}
		}
	}
}

func ceilDiv(a, b int64) int64 { return (a + b - 1) / b }
