package traffic

import (
	"encoding/json"
	"fmt"
	"io"

	"wormnoc/internal/noc"
)

// Document is the on-disk JSON representation of a platform plus flow
// set, consumed by cmd/analyze and cmd/nocsim and produced by the
// workload generators' -dump options.
type Document struct {
	Mesh   MeshSpec   `json:"mesh"`
	Flows  []FlowSpec `json:"flows"`
	Commen string     `json:"comment,omitempty"`
}

// MeshSpec describes the platform of a Document.
type MeshSpec struct {
	Width        int   `json:"width"`
	Height       int   `json:"height"`
	BufDepth     int   `json:"buf"`
	NumVCs       int   `json:"vcs,omitempty"`
	LinkLatency  int64 `json:"linkl"`
	RouteLatency int64 `json:"routl"`
	// Routing selects the dimension-order routing policy: "xy" (the
	// default, also selected by an absent or empty field) or "yx". The
	// field exists so scenario documents — in particular the verification
	// oracle's counterexample artifacts — replay with the exact routes
	// they were found under.
	Routing string `json:"routing,omitempty"`
}

// FlowSpec describes one flow of a Document.
type FlowSpec struct {
	Name     string `json:"name,omitempty"`
	Priority int    `json:"priority"`
	Period   int64  `json:"period"`
	Deadline int64  `json:"deadline"`
	Jitter   int64  `json:"jitter,omitempty"`
	Length   int    `json:"length"`
	Src      int    `json:"src"`
	Dst      int    `json:"dst"`
}

// ToDocument converts a System into its serialisable form.
func (s *System) ToDocument() Document {
	cfg := s.topo.Config()
	routing := ""
	if s.topo.Routing() == noc.YX {
		routing = "yx"
	}
	doc := Document{
		Mesh: MeshSpec{
			Width:        s.topo.Width(),
			Height:       s.topo.Height(),
			BufDepth:     cfg.BufDepth,
			NumVCs:       cfg.NumVCs,
			LinkLatency:  int64(cfg.LinkLatency),
			RouteLatency: int64(cfg.RouteLatency),
			Routing:      routing,
		},
		Flows: make([]FlowSpec, len(s.flows)),
	}
	for i, f := range s.flows {
		doc.Flows[i] = FlowSpec{
			Name:     f.Name,
			Priority: f.Priority,
			Period:   int64(f.Period),
			Deadline: int64(f.Deadline),
			Jitter:   int64(f.Jitter),
			Length:   f.Length,
			Src:      int(f.Src),
			Dst:      int(f.Dst),
		}
	}
	return doc
}

// System materialises the document: it builds the mesh and binds the flow
// set to it.
func (d Document) System() (*System, error) {
	topo, err := noc.NewMesh(d.Mesh.Width, d.Mesh.Height, noc.RouterConfig{
		BufDepth:     d.Mesh.BufDepth,
		NumVCs:       d.Mesh.NumVCs,
		LinkLatency:  noc.Cycles(d.Mesh.LinkLatency),
		RouteLatency: noc.Cycles(d.Mesh.RouteLatency),
	})
	if err != nil {
		return nil, err
	}
	switch d.Mesh.Routing {
	case "", "xy", "XY":
		// XY is the zero value of the topology's routing policy.
	case "yx", "YX":
		topo, err = topo.WithRouting(noc.YX)
		if err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("traffic: unknown routing policy %q (want \"xy\" or \"yx\")", d.Mesh.Routing)
	}
	flows := make([]Flow, len(d.Flows))
	for i, fs := range d.Flows {
		flows[i] = Flow{
			Name:     fs.Name,
			Priority: fs.Priority,
			Period:   noc.Cycles(fs.Period),
			Deadline: noc.Cycles(fs.Deadline),
			Jitter:   noc.Cycles(fs.Jitter),
			Length:   fs.Length,
			Src:      noc.NodeID(fs.Src),
			Dst:      noc.NodeID(fs.Dst),
		}
	}
	return NewSystem(topo, flows)
}

// WriteJSON serialises the system to w as an indented JSON Document.
func (s *System) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s.ToDocument())
}

// ReadJSON parses a Document from r and materialises it.
func ReadJSON(r io.Reader) (*System, error) {
	var doc Document
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("traffic: decoding flow-set document: %w", err)
	}
	return doc.System()
}
