package traffic

import (
	"strings"
	"testing"

	"wormnoc/internal/noc"
)

func testTopo(t *testing.T) *noc.Topology {
	t.Helper()
	return noc.MustMesh(4, 4, noc.RouterConfig{BufDepth: 2, LinkLatency: 1, RouteLatency: 0})
}

func validFlow() Flow {
	return Flow{Name: "f", Priority: 1, Period: 1000, Deadline: 1000, Length: 10, Src: 0, Dst: 5}
}

func TestFlowValidate(t *testing.T) {
	if err := validFlow().Validate(); err != nil {
		t.Fatalf("valid flow rejected: %v", err)
	}
	mutations := []struct {
		name string
		mut  func(*Flow)
	}{
		{"priority 0", func(f *Flow) { f.Priority = 0 }},
		{"negative priority", func(f *Flow) { f.Priority = -3 }},
		{"zero period", func(f *Flow) { f.Period = 0 }},
		{"zero deadline", func(f *Flow) { f.Deadline = 0 }},
		{"deadline > period", func(f *Flow) { f.Deadline = f.Period + 1 }},
		{"negative jitter", func(f *Flow) { f.Jitter = -1 }},
		{"zero length", func(f *Flow) { f.Length = 0 }},
		{"self loop", func(f *Flow) { f.Dst = f.Src }},
	}
	for _, m := range mutations {
		f := validFlow()
		m.mut(&f)
		if err := f.Validate(); err == nil {
			t.Errorf("%s: expected validation error", m.name)
		}
	}
}

func TestZeroLoadLatencyEquation1(t *testing.T) {
	cases := []struct {
		cfg      noc.RouterConfig
		routeLen int
		length   int
		want     noc.Cycles
	}{
		// The paper's didactic values (routl=0, linkl=1).
		{noc.RouterConfig{LinkLatency: 1, RouteLatency: 0}, 3, 60, 62},
		{noc.RouterConfig{LinkLatency: 1, RouteLatency: 0}, 7, 198, 204},
		{noc.RouterConfig{LinkLatency: 1, RouteLatency: 0}, 5, 128, 132},
		// routl·(|r|-1) + linkl·|r| + linkl·(L-1)
		{noc.RouterConfig{LinkLatency: 2, RouteLatency: 3}, 4, 10, 3*3 + 2*4 + 2*9},
		{noc.RouterConfig{LinkLatency: 1, RouteLatency: 1}, 2, 1, 1 + 2},
	}
	for i, tc := range cases {
		if got := ZeroLoadLatency(tc.cfg, tc.routeLen, tc.length); got != tc.want {
			t.Errorf("case %d: C = %d, want %d", i, got, tc.want)
		}
	}
}

func TestNewSystem(t *testing.T) {
	topo := testTopo(t)
	flows := []Flow{
		{Name: "a", Priority: 2, Period: 1000, Deadline: 900, Length: 8, Src: 0, Dst: 15},
		{Name: "b", Priority: 1, Period: 500, Deadline: 500, Length: 4, Src: 3, Dst: 12},
	}
	sys, err := NewSystem(topo, flows)
	if err != nil {
		t.Fatal(err)
	}
	if sys.NumFlows() != 2 {
		t.Fatalf("NumFlows = %d", sys.NumFlows())
	}
	// Route and C are consistent with Eq. 1.
	for i := range flows {
		want := ZeroLoadLatency(topo.Config(), sys.Route(i).Len(), flows[i].Length)
		if sys.C(i) != want {
			t.Errorf("C(%d) = %d, want %d", i, sys.C(i), want)
		}
	}
	// ByPriority: flow 1 (P=1) first.
	bp := sys.ByPriority()
	if bp[0] != 1 || bp[1] != 0 {
		t.Errorf("ByPriority = %v, want [1 0]", bp)
	}
	if !sys.HigherPriority(1, 0) || sys.HigherPriority(0, 1) {
		t.Error("HigherPriority comparison wrong")
	}
	// Flows must be copied, not aliased.
	flows[0].Priority = 99
	if sys.Flow(0).Priority == 99 {
		t.Error("NewSystem must copy the flow slice")
	}
	if sys.Topology() != topo {
		t.Error("Topology accessor mismatch")
	}
	if len(sys.Flows()) != 2 {
		t.Error("Flows accessor mismatch")
	}
}

func TestNewSystemErrors(t *testing.T) {
	topo := testTopo(t)
	if _, err := NewSystem(nil, []Flow{validFlow()}); err == nil {
		t.Error("nil topology must fail")
	}
	if _, err := NewSystem(topo, nil); err == nil {
		t.Error("empty flow set must fail")
	}
	dup := []Flow{
		{Name: "a", Priority: 1, Period: 1000, Deadline: 1000, Length: 4, Src: 0, Dst: 1},
		{Name: "b", Priority: 1, Period: 2000, Deadline: 2000, Length: 4, Src: 2, Dst: 3},
	}
	if _, err := NewSystem(topo, dup); err == nil || !strings.Contains(err.Error(), "priority") {
		t.Errorf("duplicate priorities must fail, got %v", err)
	}
	bad := []Flow{{Name: "a", Priority: 1, Period: 1000, Deadline: 1000, Length: 4, Src: 0, Dst: 99}}
	if _, err := NewSystem(topo, bad); err == nil {
		t.Error("unroutable flow must fail")
	}
	invalid := []Flow{{Name: "a", Priority: 1, Period: 0, Deadline: 0, Length: 4, Src: 0, Dst: 1}}
	if _, err := NewSystem(topo, invalid); err == nil {
		t.Error("invalid flow must fail")
	}
}

func TestMustSystemPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustSystem must panic on error")
		}
	}()
	MustSystem(testTopo(t), nil)
}

func TestUtilisation(t *testing.T) {
	topo := testTopo(t)
	sys := MustSystem(topo, []Flow{
		{Name: "a", Priority: 1, Period: 1000, Deadline: 1000, Length: 10, Src: 0, Dst: 1},
	})
	u := sys.Utilisation()
	if u <= 0 || u >= 1 {
		t.Errorf("utilisation = %f out of plausible range", u)
	}
	// Doubling the rate doubles utilisation.
	sys2 := MustSystem(topo, []Flow{
		{Name: "a", Priority: 1, Period: 500, Deadline: 500, Length: 10, Src: 0, Dst: 1},
	})
	if got, want := sys2.Utilisation(), 2*u; got < want*0.999 || got > want*1.001 {
		t.Errorf("utilisation scaling: %f, want %f", got, want)
	}
}

func TestSystemWithConfig(t *testing.T) {
	topo := noc.MustMesh(4, 4, noc.RouterConfig{BufDepth: 2, LinkLatency: 1, RouteLatency: 0})
	sys := MustSystem(topo, []Flow{
		{Name: "a", Priority: 1, Period: 1000, Deadline: 1000, Length: 10, Src: 0, Dst: 15},
	})
	slow, err := sys.WithConfig(noc.RouterConfig{BufDepth: 2, LinkLatency: 2, RouteLatency: 1})
	if err != nil {
		t.Fatal(err)
	}
	if slow.C(0) <= sys.C(0) {
		t.Errorf("slower platform must increase C: %d vs %d", slow.C(0), sys.C(0))
	}
	if _, err := sys.WithConfig(noc.RouterConfig{}); err == nil {
		t.Error("WithConfig must validate")
	}
}

func TestFlowString(t *testing.T) {
	if s := validFlow().String(); !strings.Contains(s, "P=1") {
		t.Errorf("Flow.String() = %q", s)
	}
}

func TestLinkLoads(t *testing.T) {
	topo := noc.MustMesh(4, 1, noc.RouterConfig{BufDepth: 2, LinkLatency: 1, RouteLatency: 0})
	sys := MustSystem(topo, []Flow{
		{Name: "a", Priority: 1, Period: 100, Deadline: 100, Length: 10, Src: 0, Dst: 3},
		{Name: "b", Priority: 2, Period: 200, Deadline: 200, Length: 10, Src: 1, Dst: 3},
	})
	loads := sys.LinkLoads()
	if len(loads) != topo.NumLinks() {
		t.Fatalf("loads for %d links, want %d", len(loads), topo.NumLinks())
	}
	// Flow a alone on its injection link: 10/100.
	if got := loads[sys.Route(0)[0]]; got != 0.1 {
		t.Errorf("injection load = %f, want 0.1", got)
	}
	// Shared mesh link r1→r2 carries both: 0.1 + 0.05.
	shared := sys.Route(1)[1]
	if !sys.Route(0).Contains(shared) {
		t.Fatalf("expected shared link")
	}
	if got := loads[shared]; got < 0.1499 || got > 0.1501 {
		t.Errorf("shared load = %f, want 0.15", got)
	}
	// Untouched links carry zero.
	if got := loads[topo.InjectionLink(2)]; got != 0 {
		t.Errorf("idle link load = %f", got)
	}
}
