package traffic

import (
	"bytes"
	"strings"
	"testing"

	"wormnoc/internal/noc"
)

// FuzzReadJSON checks that arbitrary input never panics the flow-set
// parser, and that anything it accepts round-trips losslessly.
func FuzzReadJSON(f *testing.F) {
	topo := noc.MustMesh(2, 2, noc.RouterConfig{BufDepth: 2, LinkLatency: 1})
	var buf bytes.Buffer
	if err := MustSystem(topo, []Flow{
		{Name: "a", Priority: 1, Period: 100, Deadline: 90, Jitter: 3, Length: 5, Src: 0, Dst: 3},
	}).WriteJSON(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	f.Add(`{"mesh":{"width":2,"height":2,"buf":2,"linkl":1,"routl":0},"flows":[]}`)
	f.Add(`{"mesh":{"width":-1},"flows":null}`)
	f.Add(`[]`)
	f.Add(``)
	f.Add(`{"mesh":{"width":1000000,"height":1000000,"buf":1,"linkl":1},"flows":[{"priority":1,"period":1,"deadline":1,"length":1,"src":0,"dst":1}]}`)

	f.Fuzz(func(t *testing.T, in string) {
		if len(in) > 1<<16 || strings.Contains(in, "000000") {
			t.Skip("skip giant inputs/meshes")
		}
		sys, err := ReadJSON(strings.NewReader(in))
		if err != nil {
			return
		}
		// Accepted input must round-trip to an equivalent system.
		var out bytes.Buffer
		if err := sys.WriteJSON(&out); err != nil {
			t.Fatalf("write-back failed: %v", err)
		}
		back, err := ReadJSON(&out)
		if err != nil {
			t.Fatalf("round-trip failed: %v", err)
		}
		if back.NumFlows() != sys.NumFlows() {
			t.Fatalf("flow count changed in round trip")
		}
		for i := 0; i < sys.NumFlows(); i++ {
			if back.Flow(i) != sys.Flow(i) {
				t.Fatalf("flow %d changed in round trip", i)
			}
		}
	})
}
