package traffic

import (
	"bytes"
	"strings"
	"testing"

	"wormnoc/internal/noc"
)

func TestJSONRoundTrip(t *testing.T) {
	topo := noc.MustMesh(3, 2, noc.RouterConfig{
		BufDepth: 8, NumVCs: 4, LinkLatency: 2, RouteLatency: 1,
	})
	orig := MustSystem(topo, []Flow{
		{Name: "α", Priority: 1, Period: 5000, Deadline: 4000, Jitter: 7, Length: 64, Src: 0, Dst: 5},
		{Name: "β", Priority: 2, Period: 9000, Deadline: 9000, Length: 128, Src: 4, Dst: 1},
	})
	var buf bytes.Buffer
	if err := orig.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumFlows() != orig.NumFlows() {
		t.Fatalf("flow count changed: %d vs %d", back.NumFlows(), orig.NumFlows())
	}
	for i := 0; i < orig.NumFlows(); i++ {
		if back.Flow(i) != orig.Flow(i) {
			t.Errorf("flow %d changed: %+v vs %+v", i, back.Flow(i), orig.Flow(i))
		}
		if back.C(i) != orig.C(i) {
			t.Errorf("C(%d) changed: %d vs %d", i, back.C(i), orig.C(i))
		}
		if !back.Route(i).Equal(orig.Route(i)) {
			t.Errorf("route %d changed", i)
		}
	}
	got, want := back.Topology().Config(), orig.Topology().Config()
	if got != want {
		t.Errorf("router config changed: %+v vs %+v", got, want)
	}
}

func TestReadJSONRejectsGarbage(t *testing.T) {
	cases := map[string]string{
		"not json":       "hello",
		"unknown fields": `{"mesh":{"width":2,"height":2,"buf":2,"linkl":1,"routl":0},"flows":[],"bogus":1}`,
		"no flows":       `{"mesh":{"width":2,"height":2,"buf":2,"linkl":1,"routl":0},"flows":[]}`,
		"bad mesh":       `{"mesh":{"width":0,"height":2,"buf":2,"linkl":1,"routl":0},"flows":[{"priority":1,"period":100,"deadline":100,"length":1,"src":0,"dst":1}]}`,
		"bad flow":       `{"mesh":{"width":2,"height":2,"buf":2,"linkl":1,"routl":0},"flows":[{"priority":0,"period":100,"deadline":100,"length":1,"src":0,"dst":1}]}`,
	}
	for name, in := range cases {
		if _, err := ReadJSON(strings.NewReader(in)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestDocumentSystem(t *testing.T) {
	doc := Document{
		Mesh: MeshSpec{Width: 2, Height: 2, BufDepth: 2, LinkLatency: 1},
		Flows: []FlowSpec{
			{Name: "x", Priority: 1, Period: 100, Deadline: 100, Length: 4, Src: 0, Dst: 3},
		},
	}
	sys, err := doc.System()
	if err != nil {
		t.Fatal(err)
	}
	if sys.Flow(0).Name != "x" || sys.Route(0).Len() != 4 {
		t.Errorf("unexpected system: %+v route len %d", sys.Flow(0), sys.Route(0).Len())
	}
	// ToDocument inverse.
	doc2 := sys.ToDocument()
	if len(doc2.Flows) != 1 || doc2.Mesh.Width != 2 || doc2.Flows[0].Name != "x" {
		t.Errorf("ToDocument mismatch: %+v", doc2)
	}
}
