// Package traffic models the real-time traffic load injected into the
// network: the set Γ of periodic/sporadic traffic flows of Section II of
// the paper, each characterised by τi = (Pi, Ci, Ti, Di, Ji, src, dst).
//
// A System binds a flow set to a concrete topology, caches every flow's
// route and provides the maximum zero-load network latency Ci (Equation 1
// of the paper).
package traffic

import (
	"fmt"
	"sort"

	"wormnoc/internal/noc"
)

// Flow is one real-time traffic flow τi. A flow releases a potentially
// unbounded sequence of packets, at least Period cycles apart, each with
// at most Length flits, which must reach Dst within Deadline cycles of
// the release.
type Flow struct {
	// Name is an optional human-readable label.
	Name string
	// Priority Pi of every packet of the flow; 1 is the highest priority
	// and larger integers denote lower priorities. The analyses and the
	// simulator require priorities to be unique within a flow set (one
	// virtual channel per priority level).
	Priority int
	// Period Ti: lower bound on the interval between successive releases.
	Period noc.Cycles
	// Deadline Di: upper bound on acceptable network latency. Must satisfy
	// Di <= Ti (so packets of the same flow never interfere).
	Deadline noc.Cycles
	// Jitter Ji: maximum deviation of a release from its periodic tick.
	Jitter noc.Cycles
	// Length Li: maximum number of flits of a packet of this flow.
	Length int
	// Src and Dst are the source and destination nodes (πi^s, πi^d).
	Src, Dst noc.NodeID
}

// Validate checks the flow's parameters in isolation.
func (f Flow) Validate() error {
	switch {
	case f.Priority < 1:
		return fmt.Errorf("traffic: flow %q: priority must be >= 1, got %d", f.Name, f.Priority)
	case f.Period < 1:
		return fmt.Errorf("traffic: flow %q: period must be >= 1 cycle, got %d", f.Name, f.Period)
	case f.Deadline < 1:
		return fmt.Errorf("traffic: flow %q: deadline must be >= 1 cycle, got %d", f.Name, f.Deadline)
	case f.Deadline > f.Period:
		return fmt.Errorf("traffic: flow %q: deadline %d exceeds period %d (the model requires Di <= Ti)",
			f.Name, f.Deadline, f.Period)
	case f.Jitter < 0:
		return fmt.Errorf("traffic: flow %q: jitter must be >= 0, got %d", f.Name, f.Jitter)
	case f.Length < 1:
		return fmt.Errorf("traffic: flow %q: packet length must be >= 1 flit, got %d", f.Name, f.Length)
	case f.Src == f.Dst:
		return fmt.Errorf("traffic: flow %q: source and destination are both node %d", f.Name, int(f.Src))
	}
	return nil
}

// String renders the flow's full parameter tuple in the paper's τ
// notation, useful in test failures and debug logs.
func (f Flow) String() string {
	return fmt.Sprintf("τ%q(P=%d L=%d T=%d D=%d J=%d %d→%d)",
		f.Name, f.Priority, f.Length, f.Period, f.Deadline, f.Jitter, int(f.Src), int(f.Dst))
}

// System is a flow set Γ bound to a topology, with routes and zero-load
// latencies precomputed. It is immutable after construction and safe for
// concurrent use.
type System struct {
	topo   *noc.Topology
	flows  []Flow
	routes []noc.Route
	zeroC  []noc.Cycles
	// byPriority holds flow indices sorted from highest priority
	// (smallest Pi) to lowest.
	byPriority []int
}

// NewSystem validates the flow set against the topology, computes every
// route (XY routing) and every zero-load latency Ci.
//
// Flow priorities must be unique: the architecture dedicates one virtual
// channel per priority level and every analysis reproduced here assumes a
// total priority order.
func NewSystem(topo *noc.Topology, flows []Flow) (*System, error) {
	if topo == nil {
		return nil, fmt.Errorf("traffic: nil topology")
	}
	if len(flows) == 0 {
		return nil, fmt.Errorf("traffic: empty flow set")
	}
	s := &System{
		topo:   topo,
		flows:  make([]Flow, len(flows)),
		routes: make([]noc.Route, len(flows)),
		zeroC:  make([]noc.Cycles, len(flows)),
	}
	copy(s.flows, flows)
	seen := make(map[int]int, len(flows))
	for i, f := range s.flows {
		if err := f.Validate(); err != nil {
			return nil, fmt.Errorf("traffic: flow %d: %w", i, err)
		}
		if j, dup := seen[f.Priority]; dup {
			return nil, fmt.Errorf("traffic: flows %d and %d share priority %d (priorities must be unique)",
				j, i, f.Priority)
		}
		seen[f.Priority] = i
		route, err := topo.Route(f.Src, f.Dst)
		if err != nil {
			return nil, fmt.Errorf("traffic: flow %d (%q): %w", i, f.Name, err)
		}
		s.routes[i] = route
		s.zeroC[i] = ZeroLoadLatency(topo.Config(), route.Len(), f.Length)
	}
	s.byPriority = make([]int, len(flows))
	for i := range s.byPriority {
		s.byPriority[i] = i
	}
	sort.Slice(s.byPriority, func(a, b int) bool {
		return s.flows[s.byPriority[a]].Priority < s.flows[s.byPriority[b]].Priority
	})
	return s, nil
}

// MustSystem is NewSystem that panics on error; intended for tests and
// examples.
func MustSystem(topo *noc.Topology, flows []Flow) *System {
	s, err := NewSystem(topo, flows)
	if err != nil {
		panic(err)
	}
	return s
}

// ZeroLoadLatency evaluates Equation 1 of the paper: the latency of a
// packet of length flits over a route of routeLen links when no
// contention exists,
//
//	C = routl·(|route|-1) + linkl·|route| + linkl·(L-1)
//
// i.e. the header's zero-load latency (one routing decision per traversed
// router plus one link traversal per link) plus one link latency per
// payload flit pipelined behind the header.
func ZeroLoadLatency(cfg noc.RouterConfig, routeLen, length int) noc.Cycles {
	return cfg.RouteLatency*noc.Cycles(routeLen-1) +
		cfg.LinkLatency*noc.Cycles(routeLen) +
		cfg.LinkLatency*noc.Cycles(length-1)
}

// Topology returns the platform the flow set is bound to.
func (s *System) Topology() *noc.Topology { return s.topo }

// NumFlows returns |Γ|.
func (s *System) NumFlows() int { return len(s.flows) }

// Flow returns flow i. Flows keep the order they were passed to
// NewSystem.
func (s *System) Flow(i int) Flow { return s.flows[i] }

// Flows returns the flow set; the returned slice must not be modified.
func (s *System) Flows() []Flow { return s.flows }

// Route returns route(τi); the returned slice must not be modified.
func (s *System) Route(i int) noc.Route { return s.routes[i] }

// C returns the maximum zero-load network latency Ci of flow i (Eq. 1).
func (s *System) C(i int) noc.Cycles { return s.zeroC[i] }

// ByPriority returns flow indices ordered from highest priority (Pi = 1)
// to lowest. The returned slice must not be modified.
func (s *System) ByPriority() []int { return s.byPriority }

// HigherPriority reports whether flow i has higher priority than flow j
// (Pi < Pj: smaller values denote higher priorities).
func (s *System) HigherPriority(i, j int) bool {
	return s.flows[i].Priority < s.flows[j].Priority
}

// Utilisation returns the total link-time demand of the flow set as a
// fraction of the aggregate mesh-link capacity: Σ (Ci/Ti · |routei|) over
// the number of links. It is a coarse load indicator used by the
// experiment harness to characterise generated workloads.
func (s *System) Utilisation() float64 {
	var u float64
	for i, f := range s.flows {
		u += float64(s.zeroC[i]) / float64(f.Period) * float64(s.routes[i].Len())
	}
	return u / float64(s.topo.NumLinks())
}

// LinkLoads returns the long-run utilisation demanded of every link:
// for link λ, Σ over flows crossing λ of Li·linkl/Ti. A value above 1
// means the link is overcommitted and the flow set cannot be schedulable
// regardless of analysis. Indexed by LinkID.
func (s *System) LinkLoads() []float64 {
	loads := make([]float64, s.topo.NumLinks())
	linkl := float64(s.topo.Config().LinkLatency)
	for i, f := range s.flows {
		u := float64(f.Length) * linkl / float64(f.Period)
		for _, l := range s.routes[i] {
			loads[l] += u
		}
	}
	return loads
}

// WithConfig rebinds the same flow set to a topology with a different
// router configuration (e.g. another buffer depth), recomputing the
// zero-load latencies.
func (s *System) WithConfig(cfg noc.RouterConfig) (*System, error) {
	topo, err := s.topo.WithConfig(cfg)
	if err != nil {
		return nil, err
	}
	return NewSystem(topo, s.flows)
}
