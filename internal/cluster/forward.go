package cluster

import (
	"bytes"
	"context"
	"io"
	"math/rand/v2"
	"net/http"
	"net/url"
	"time"

	"wormnoc/internal/faultinject"
)

// attemptResult is one backend dispatch's outcome, delivered on the
// race channel.
type attemptResult struct {
	id      int
	backend int
	status  int
	body    []byte
	err     error
	hedged  bool
}

// do performs one HTTP POST against backend b, returning the status
// and full response body. The faultinject site fires first, so chaos
// tests can partition (KindError) or slow (KindDelay) a named backend
// without touching the network stack.
func (c *Coordinator) do(ctx context.Context, b int, path string, body []byte) (int, []byte, error) {
	if faultinject.Enabled() {
		if err := faultinject.Fire(ctx, faultinject.SiteClusterRequest, c.backends[b].Name); err != nil {
			return 0, nil, err
		}
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.backends[b].URL+path, bytes.NewReader(body))
	if err != nil {
		return 0, nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.client.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	rb, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, nil, err
	}
	return resp.StatusCode, rb, nil
}

// backendFault reports whether an attempt outcome consumes the
// backend's error budget and failure streak: transport errors and
// 5xx responses that signal a sick or unreachable worker. A worker's
// 429 (saturated), 504 (request deadline) and every 2xx/4xx are
// legitimate outcomes of a healthy backend.
func backendFault(status int, err error) bool {
	if err != nil {
		return true
	}
	return status == http.StatusInternalServerError ||
		status == http.StatusBadGateway ||
		status == http.StatusServiceUnavailable
}

// finalStatus reports whether a response should be returned to the
// client as-is rather than failed over: everything except faults and
// worker saturation (429, which is worth one try on a replica).
func finalStatus(status int, err error) bool {
	return err == nil && !backendFault(status, err) && status != http.StatusTooManyRequests
}

// retryDelay is the failover backoff before re-attempt attempt
// (0-based): base doubled per attempt, clamped to 1s, jittered ±50% so
// coordinated failovers do not synchronise on a struggling backend.
func retryDelay(base time.Duration, attempt int) time.Duration {
	const maxBackoff = time.Second
	d := base
	for i := 0; i < attempt && d < maxBackoff; i++ {
		d <<= 1
	}
	if d > maxBackoff {
		d = maxBackoff
	}
	return d/2 + time.Duration(rand.Int64N(int64(d)))
}

// dispatch races one request over the shard's owner chain: the primary
// dispatch, a budgeted hedge to the next replica once the adaptive
// latency quantile elapses, and bounded, backoff-jittered failover
// re-attempts (wrapping the chain) after faults. The first final
// response wins; in-flight losers are cancelled and their outcomes are
// drained off the race without feeding the per-backend error budget
// (a cancellation is the coordinator's doing, not the backend's
// fault). Returns ok=false when every rung failed — the caller then
// degrades to local compute.
func (c *Coordinator) dispatch(ctx context.Context, chain []int, path string, body []byte) (status int, respBody []byte, ok bool) {
	if len(chain) == 0 {
		return 0, nil, false
	}
	c.met.addRequest()

	results := make(chan attemptResult, len(chain)+c.cfg.RequestRetries+1)
	pending := make(map[int]context.CancelFunc)
	nextID := 0
	next := 0 // chain cursor, wraps for retries
	budget := len(chain) + c.cfg.RequestRetries

	// launch starts the next breaker-admitted backend off the chain.
	// Every Allow is paired with exactly one Record or Release.
	launch := func(hedged bool) bool {
		for budget > 0 {
			b := chain[next%len(chain)]
			next++
			budget--
			if !c.brk.Allow(c.backends[b].Name) {
				continue
			}
			actx, cancel := context.WithCancel(ctx)
			id := nextID
			nextID++
			pending[id] = cancel
			go func(id, b int, hedged bool) {
				st, rb, err := c.do(actx, b, path, body)
				results <- attemptResult{id: id, backend: b, status: st, body: rb, err: err, hedged: hedged}
			}(id, b, hedged)
			return true
		}
		return false
	}

	// settle cancels and drains every in-flight loser once the race is
	// decided. A loser that died of our cancellation releases its
	// breaker slot — it must not count as a backend fault (nor trip a
	// slow-but-healthy backend's breaker); one that finished anyway
	// carries a real outcome and is recorded normally.
	settle := func() {
		for _, cancel := range pending {
			cancel()
		}
		if n := len(pending); n > 0 {
			go func() {
				for i := 0; i < n; i++ {
					r := <-results
					name := c.backends[r.backend].Name
					if r.err != nil {
						c.brk.Release(name)
						continue
					}
					c.brk.Record(name, backendFault(r.status, nil))
					if backendFault(r.status, nil) {
						c.markFailure(r.backend)
					} else {
						c.markSuccess(r.backend)
					}
				}
			}()
		}
		pending = nil
	}

	if !launch(false) {
		return 0, nil, false
	}
	t0 := time.Now()
	hedgeTimer := time.NewTimer(c.hedgeDelay())
	defer hedgeTimer.Stop()
	var shedResult *attemptResult
	failovers := 0

	for len(pending) > 0 {
		select {
		case <-hedgeTimer.C:
			if c.met.tryHedge(c.cfg.HedgeBurst, c.cfg.HedgeBudget) {
				launch(true)
			}
		case r := <-results:
			delete(pending, r.id)
			name := c.backends[r.backend].Name
			if ctx.Err() != nil {
				// The client's deadline expired mid-race: not the
				// backend's fault, and not worth failing over.
				c.brk.Record(name, false)
				settle()
				return http.StatusGatewayTimeout,
					[]byte(`{"error":"request deadline expired before any backend responded"}`), true
			}
			if finalStatus(r.status, r.err) {
				c.brk.Record(name, false)
				c.markSuccess(r.backend)
				c.met.recordLatency(time.Since(t0))
				if r.hedged {
					c.met.addHedgeWin()
				}
				settle()
				return r.status, r.body, true
			}
			if r.err == nil && r.status == http.StatusTooManyRequests {
				// A saturated worker is healthy; keep its 429 to proxy
				// if every replica is saturated too.
				c.brk.Record(name, false)
				c.markSuccess(r.backend)
				shed := r
				shedResult = &shed
			} else {
				c.brk.Record(name, true)
				c.markFailure(r.backend)
			}
			// Failover: if nothing is left in flight, re-attempt down
			// the chain after a jittered backoff.
			if len(pending) == 0 && budget > 0 {
				t := time.NewTimer(retryDelay(c.cfg.RetryBackoff, failovers))
				select {
				case <-ctx.Done():
					t.Stop()
					return http.StatusGatewayTimeout,
						[]byte(`{"error":"request deadline expired before any backend responded"}`), true
				case <-t.C:
				}
				failovers++
				if launch(false) {
					c.met.addRetry()
				}
			}
		}
	}
	if shedResult != nil {
		// Every routable replica shed: proxy the saturation signal
		// instead of piling the work onto the coordinator.
		c.met.addShed()
		return shedResult.status, shedResult.body, true
	}
	return 0, nil, false
}

// hedgeDelay resolves the configured hedge policy: a fixed HedgeDelay
// when set, else the adaptive recent-latency quantile.
func (c *Coordinator) hedgeDelay() time.Duration {
	if c.cfg.HedgeDelay > 0 {
		return c.cfg.HedgeDelay
	}
	return c.met.hedgeDelay(c.cfg.HedgeQuantile, c.cfg.HedgeMinDelay, c.cfg.HedgeMaxDelay)
}

// memWriter is an in-memory http.ResponseWriter for the local
// degradation path: the coordinator round-trips the request through its
// embedded serve.Server's handler without a network hop, inheriting its
// admission control, caches and fault containment.
type memWriter struct {
	header http.Header
	status int
	buf    bytes.Buffer
}

func (w *memWriter) Header() http.Header {
	if w.header == nil {
		w.header = make(http.Header)
	}
	return w.header
}

func (w *memWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
}

func (w *memWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.buf.Write(b)
}

// localDo computes a request on the embedded local server — the last
// rung of the degradation ladder, used when a shard has no routable
// owner (all backends dead, shed, or out of budget).
func (c *Coordinator) localDo(ctx context.Context, path string, body []byte) (int, []byte) {
	c.met.addLocalFallback()
	req := (&http.Request{
		Method: http.MethodPost,
		URL:    &url.URL{Path: path},
		Header: http.Header{"Content-Type": []string{"application/json"}},
		Body:   io.NopCloser(bytes.NewReader(body)),
		Host:   "local",
	}).WithContext(ctx)
	w := &memWriter{}
	c.local.Handler().ServeHTTP(w, req)
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.status, w.buf.Bytes()
}
