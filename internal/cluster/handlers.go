package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"runtime/debug"
	"time"

	"wormnoc/internal/canon"
	"wormnoc/internal/core"
	"wormnoc/internal/parallel"
	"wormnoc/internal/serve"
	"wormnoc/internal/traffic"
)

// Handler returns the coordinator's HTTP surface: the three analysis
// endpoints are routed over the fleet; everything else (/v1/methods,
// /metrics, /healthz, pprof) falls through to the embedded local
// server, whose /healthz and /metrics carry the fleet sections via the
// ClusterStatus hook.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/analyze", c.wrap(c.handleAnalyze))
	mux.HandleFunc("POST /v1/batch", c.wrap(c.handleBatch))
	mux.HandleFunc("POST /v1/whatif", c.wrap(c.handleWhatIf))
	mux.Handle("/", c.local.Handler())
	return mux
}

// wrap is the coordinator-side request lifecycle: panic recovery (a
// routing fault must never kill the fleet's front door) and body-size
// capping. The analysis semantics — admission, caches, breakers — live
// on the workers and the local server; the coordinator adds none of its
// own.
func (c *Coordinator) wrap(h http.HandlerFunc) http.HandlerFunc {
	maxBytes := c.cfg.Local.MaxRequestBytes
	if maxBytes <= 0 {
		maxBytes = 16 << 20
	}
	return func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if v := recover(); v != nil {
				log.Printf("cluster: panic in coordinator handler: %v\n%s", v, debug.Stack())
				writeJSONError(w, http.StatusInternalServerError, "internal coordinator error")
			}
		}()
		if r.Body != nil {
			r.Body = http.MaxBytesReader(w, r.Body, maxBytes)
		}
		h(w, r)
	}
}

// requestTimeout mirrors the workers' policy: a request's timeout_ms is
// honoured up to the local server's default, which is also the default.
func (c *Coordinator) requestTimeout(ms int64) time.Duration {
	def := c.cfg.Local.DefaultTimeout
	if def <= 0 {
		def = 30 * time.Second
	}
	d := time.Duration(ms) * time.Millisecond
	if d <= 0 || d > def {
		return def
	}
	return d
}

// decodeStrict mirrors the workers' decoding contract (unknown fields
// and trailing garbage are errors), so a schema typo fails identically
// whether a client talks to a worker or the coordinator.
func decodeStrict(body []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	if dec.More() {
		return errors.New("trailing data after JSON body")
	}
	return nil
}

// forwardKeyed is the shared single-request path of /v1/analyze and
// /v1/whatif: dispatch over key's owner chain, degrade to local compute
// when the fleet cannot take it, and proxy the winning response bytes
// verbatim.
func (c *Coordinator) forwardKeyed(w http.ResponseWriter, r *http.Request, key, path string, body []byte, timeoutMs int64) {
	ctx, cancel := context.WithTimeout(r.Context(), c.requestTimeout(timeoutMs))
	defer cancel()
	chain := c.ring.owners(key, c.cfg.Replicas, c.routable)
	status, respBody, ok := c.dispatch(ctx, chain, path, body)
	if !ok {
		status, respBody = c.localDo(ctx, path, body)
	}
	writeRaw(w, status, respBody)
}

func (c *Coordinator) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(r.Body)
	if err != nil {
		writeJSONError(w, http.StatusBadRequest, "reading request: %v", err)
		return
	}
	var req serve.AnalyzeRequest
	if err := decodeStrict(body, &req); err != nil {
		writeJSONError(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	c.forwardKeyed(w, r, canon.SystemKey(req.System), "/v1/analyze", body, req.TimeoutMs)
}

func (c *Coordinator) handleWhatIf(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(r.Body)
	if err != nil {
		writeJSONError(w, http.StatusBadRequest, "reading request: %v", err)
		return
	}
	var req serve.WhatIfRequest
	if err := decodeStrict(body, &req); err != nil {
		writeJSONError(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	// A what-if routes with its base system, so the chain hits the
	// worker whose warm-engine cache holds (or will hold) the base. A
	// request that names neither base form goes to the local server for
	// the canonical 422.
	key := req.SystemKey
	if key == "" && req.System != nil {
		key = canon.SystemKey(*req.System)
	}
	if key == "" {
		status, respBody := c.localDo(r.Context(), "/v1/whatif", body)
		writeRaw(w, status, respBody)
		return
	}
	c.forwardKeyed(w, r, key, "/v1/whatif", body, req.TimeoutMs)
}

// batchGroup is one shard owner's slice of a fanned-out batch.
type batchGroup struct {
	owner   int   // backend index, -1 for the ownerless (local) group
	indices []int // original item positions, ascending
}

func (c *Coordinator) handleBatch(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(r.Body)
	if err != nil {
		writeJSONError(w, http.StatusBadRequest, "reading request: %v", err)
		return
	}
	var req serve.BatchRequest
	if err := decodeStrict(body, &req); err != nil {
		writeJSONError(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	if len(req.Systems) == 0 {
		writeJSONError(w, http.StatusUnprocessableEntity, "batch names no systems")
		return
	}
	maxBatch := c.cfg.Local.MaxBatchSystems
	if maxBatch <= 0 {
		maxBatch = 1024
	}
	if len(req.Systems) > maxBatch {
		writeJSONError(w, http.StatusUnprocessableEntity, "batch of %d systems exceeds the cap of %d", len(req.Systems), maxBatch)
		return
	}
	if _, err := core.ParseMethod(req.Method); err != nil {
		writeJSONError(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), c.requestTimeout(req.TimeoutMs))
	defer cancel()

	// Group items by shard owner. Ownerless items (no routable backend
	// anywhere on their chain) go straight to the local group.
	n := len(req.Systems)
	keys := make([]string, n)
	groups := map[int]*batchGroup{}
	for i := range req.Systems {
		keys[i] = canon.SystemKey(req.Systems[i])
		owner := c.ring.owner(keys[i], c.routable)
		g, ok := groups[owner]
		if !ok {
			g = &batchGroup{owner: owner}
			groups[owner] = g
		}
		g.indices = append(g.indices, i)
	}
	order := make([]*batchGroup, 0, len(groups))
	for _, g := range groups {
		order = append(order, g)
	}

	// Fan the groups out concurrently; each group fails or succeeds
	// independently, and a group whose every replica fails is computed
	// locally, so a killed backend can delay its shard but never lose
	// or corrupt an item.
	out := serve.BatchResponse{Results: make([]serve.BatchItem, n)}
	runner := &parallel.Runner{Workers: c.cfg.BatchWorkers, KeepGoing: true}
	runErr := runner.RunContext(ctx, len(order), func(gi int) error {
		c.runGroup(ctx, order[gi], keys, &req, out.Results)
		return nil
	})
	if runErr != nil {
		// KeepGoing only reports per-index panics; runGroup contains its
		// own failure handling, so any surviving indices get a typed
		// error below.
		var te *parallel.TaskErrors
		if errors.As(runErr, &te) {
			for _, gi := range te.Indices() {
				for _, i := range order[gi].indices {
					if out.Results[i].AnalyzeResponse == nil && out.Results[i].Error == "" {
						out.Results[i] = serve.BatchItem{
							Error: "internal error dispatching batch group",
							Code:  "panic",
						}
					}
				}
			}
		}
	}
	for i := range out.Results {
		if res := out.Results[i].AnalyzeResponse; res != nil {
			if res.Cached {
				out.CacheHits++
			}
		} else {
			out.Failed++
		}
	}
	// Mirror the workers' contract: batch-level 504 only when the
	// deadline expired and no item at all produced a result.
	if out.Failed == n && ctx.Err() != nil {
		writeJSONError(w, http.StatusGatewayTimeout, "batch aborted, no item completed: %v", ctx.Err())
		return
	}
	writeJSON(w, http.StatusOK, &out)
}

// runGroup dispatches one owner's sub-batch (over the owner's replica
// chain, hedged and retried like any dispatch), degrades to local
// compute when the fleet cannot take it, and scatters the items back
// into their original positions.
func (c *Coordinator) runGroup(ctx context.Context, g *batchGroup, keys []string, req *serve.BatchRequest, results []serve.BatchItem) {
	sub := serve.BatchRequest{
		Systems:   make([]traffic.Document, 0, len(g.indices)),
		Method:    req.Method,
		Options:   req.Options,
		TimeoutMs: req.TimeoutMs,
	}
	for _, i := range g.indices {
		sub.Systems = append(sub.Systems, req.Systems[i])
	}
	payload, err := json.Marshal(&sub)
	if err != nil {
		c.failGroup(g, results, fmt.Sprintf("encoding sub-batch: %v", err), "invalid_system")
		return
	}
	var status int
	var respBody []byte
	ok := false
	if g.owner >= 0 {
		status, respBody, ok = c.dispatch(ctx, c.ring.owners(keys[g.indices[0]], c.cfg.Replicas, c.routable), "/v1/batch", payload)
	}
	if !ok {
		status, respBody = c.localDo(ctx, "/v1/batch", payload)
	}
	switch status {
	case http.StatusOK:
		var subOut serve.BatchResponse
		if err := json.Unmarshal(respBody, &subOut); err != nil || len(subOut.Results) != len(g.indices) {
			c.failGroup(g, results, "malformed sub-batch response", "transient")
			return
		}
		for j, i := range g.indices {
			results[i] = subOut.Results[j]
		}
	case http.StatusGatewayTimeout:
		c.failGroup(g, results, "batch deadline expired", "timeout")
	case http.StatusTooManyRequests, http.StatusServiceUnavailable:
		c.failGroup(g, results, "analysis capacity saturated, retry later", "transient")
	default:
		c.failGroup(g, results, fmt.Sprintf("sub-batch failed with status %d", status), "transient")
	}
}

// failGroup marks every item of a group failed with one shared error.
func (c *Coordinator) failGroup(g *batchGroup, results []serve.BatchItem, msg, code string) {
	for _, i := range g.indices {
		results[i] = serve.BatchItem{Error: msg, Code: code}
	}
}

func writeRaw(w http.ResponseWriter, status int, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(body)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeJSONError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}
