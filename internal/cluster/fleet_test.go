package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	neturl "net/url"
	"sync/atomic"
	"testing"

	"wormnoc/internal/canon"
	"wormnoc/internal/serve"
	"wormnoc/internal/traffic"
	"wormnoc/internal/workload"
)

// testWorker is one fleet member: a real serve.Server behind a real
// HTTP listener, with a request counter so tests can see where traffic
// landed.
type testWorker struct {
	name string
	srv  *serve.Server
	ts   *httptest.Server
	hits int64
}

func (w *testWorker) hitCount() int64 { return atomic.LoadInt64(&w.hits) }

// startFleet boots n workers and a coordinator over them. The returned
// cleanup is registered on t; cfg's Backends are filled in here.
func startFleet(t *testing.T, n int, cfg Config) (*Coordinator, []*testWorker) {
	t.Helper()
	workers := make([]*testWorker, n)
	for i := range workers {
		w := &testWorker{name: fmt.Sprintf("w%d", i), srv: serve.New(serve.Config{})}
		h := w.srv.Handler()
		w.ts = httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
			atomic.AddInt64(&w.hits, 1)
			h.ServeHTTP(rw, r)
		}))
		t.Cleanup(w.ts.Close)
		workers[i] = w
		cfg.Backends = append(cfg.Backends, Backend{Name: w.name, URL: w.ts.URL})
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c, workers
}

// testDoc returns the didactic system at one buffer depth; each depth
// canonicalises to a distinct system key, giving tests a cheap supply
// of distinct-but-deterministic shard keys.
func testDoc(bufDepth int) traffic.Document {
	return workload.Didactic(bufDepth).ToDocument()
}

// docOwnedBy scans buffer depths for a system whose shard owner is the
// given backend index, starting after *cursor (so successive calls
// yield distinct systems).
func docOwnedBy(t *testing.T, c *Coordinator, owner int, cursor *int) traffic.Document {
	t.Helper()
	for d := *cursor + 1; d < *cursor+2000; d++ {
		doc := testDoc(d)
		if c.ring.owner(canon.SystemKey(doc), nil) == owner {
			*cursor = d
			return doc
		}
	}
	t.Fatalf("no didactic depth in (%d, %d] is owned by backend %d", *cursor, *cursor+2000, owner)
	return traffic.Document{}
}

func postJSON(t *testing.T, h http.Handler, path string, body any) (int, []byte) {
	t.Helper()
	payload, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(payload))
	req.Header.Set("Content-Type", "application/json")
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	resp := w.Result()
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, b
}

func getJSON(t *testing.T, h http.Handler, path string, v any) int {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	resp := w.Result()
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	if v != nil {
		if err := json.Unmarshal(b, v); err != nil {
			t.Fatalf("decoding %s: %v\n%s", path, err, b)
		}
	}
	return resp.StatusCode
}

// normalizeItems strips the fields that legitimately differ between a
// fleet run and a single-node run — wall time, cache provenance and
// worker-side retry counts — leaving the analytical payload, which must
// be bit-identical.
func normalizeItems(items []serve.BatchItem) {
	for i := range items {
		if items[i].AnalyzeResponse != nil {
			items[i].ElapsedUs = 0
			items[i].Cached = false
		}
		items[i].Retries = 0
	}
}

func normalizeAnalyze(r *serve.AnalyzeResponse) {
	r.ElapsedUs = 0
	r.Cached = false
}

// singleNodeBatch computes the reference result on a fresh standalone
// server — the ground truth a fleet answer must match bit-for-bit.
func singleNodeBatch(t *testing.T, req serve.BatchRequest) serve.BatchResponse {
	t.Helper()
	ref := serve.New(serve.Config{})
	status, body := postJSON(t, ref.Handler(), "/v1/batch", req)
	if status != http.StatusOK {
		t.Fatalf("reference batch failed: %d %s", status, body)
	}
	var out serve.BatchResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	return out
}

// Repeated analyses of one system must land on one worker — that is
// the point of shard routing (the second request hits the owner's
// result cache, not a cold replica).
func TestAnalyzeShardAffinity(t *testing.T) {
	c, workers := startFleet(t, 3, Config{})
	h := c.Handler()
	req := serve.AnalyzeRequest{System: testDoc(2), Method: "IBN"}

	var first serve.AnalyzeResponse
	for i := 0; i < 3; i++ {
		status, body := postJSON(t, h, "/v1/analyze", req)
		if status != http.StatusOK {
			t.Fatalf("analyze %d: %d %s", i, status, body)
		}
		var resp serve.AnalyzeResponse
		if err := json.Unmarshal(body, &resp); err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = resp
			continue
		}
		if !resp.Cached {
			t.Fatalf("analyze %d was not a cache hit — rerouted off the shard owner", i)
		}
		normalizeAnalyze(&resp)
		normalizeAnalyze(&first)
		a, _ := json.Marshal(first)
		b, _ := json.Marshal(resp)
		if !bytes.Equal(a, b) {
			t.Fatalf("repeat analyze diverged:\n%s\n%s", a, b)
		}
	}
	loaded := 0
	for _, w := range workers {
		if w.hitCount() > 0 {
			loaded++
			if w.hitCount() != 3 {
				t.Fatalf("shard owner %s saw %d hits, want 3", w.name, w.hitCount())
			}
		}
	}
	if loaded != 1 {
		t.Fatalf("%d workers saw traffic for one key, want exactly 1", loaded)
	}
	// The didactic IBN bound is known: τ3's R = 348 at depth 2.
	last := first.Flows[len(first.Flows)-1]
	if last.R != 348 {
		t.Fatalf("didactic IBN R(τ3) = %d through the fleet, want 348", last.R)
	}
}

// A batch must fan out across the fleet and return exactly what a
// single node returns.
func TestBatchFanOutMatchesSingleNode(t *testing.T) {
	c, workers := startFleet(t, 3, Config{})
	req := serve.BatchRequest{Method: "XLWX"}
	for d := 1; d <= 24; d++ {
		req.Systems = append(req.Systems, testDoc(d))
	}
	status, body := postJSON(t, c.Handler(), "/v1/batch", req)
	if status != http.StatusOK {
		t.Fatalf("fleet batch: %d %s", status, body)
	}
	var got serve.BatchResponse
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	if got.Failed != 0 {
		t.Fatalf("fleet batch failed %d items: %s", got.Failed, body)
	}
	want := singleNodeBatch(t, req)
	normalizeItems(got.Results)
	normalizeItems(want.Results)
	a, _ := json.Marshal(got.Results)
	b, _ := json.Marshal(want.Results)
	if !bytes.Equal(a, b) {
		t.Fatalf("fleet batch diverged from single node:\n%s\n%s", a, b)
	}
	spread := 0
	for _, w := range workers {
		if w.hitCount() > 0 {
			spread++
		}
	}
	if spread < 2 {
		t.Fatalf("batch of 24 systems reached only %d of 3 workers", spread)
	}
}

// A what-if chain must follow its base system's shard and produce the
// single-node answer.
func TestWhatIfFollowsBaseShard(t *testing.T) {
	c, _ := startFleet(t, 3, Config{})
	h := c.Handler()
	req := serve.WhatIfRequest{
		System: docPtr(testDoc(2)),
		Method: "IBN",
		Deltas: []serve.DeltaSpec{{Kind: "buf", BufDepth: 4}, {Kind: "buf", BufDepth: 8}},
	}
	status, body := postJSON(t, h, "/v1/whatif", req)
	if status != http.StatusOK {
		t.Fatalf("fleet whatif: %d %s", status, body)
	}
	var got serve.WhatIfResponse
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	ref := serve.New(serve.Config{})
	status, body = postJSON(t, ref.Handler(), "/v1/whatif", req)
	if status != http.StatusOK {
		t.Fatalf("reference whatif: %d %s", status, body)
	}
	var want serve.WhatIfResponse
	if err := json.Unmarshal(body, &want); err != nil {
		t.Fatal(err)
	}
	if got.BaseKey != want.BaseKey || len(got.Steps) != len(want.Steps) || got.Failed != want.Failed {
		t.Fatalf("fleet whatif shape diverged: %+v vs %+v", got, want)
	}
	for i := range got.Steps {
		if got.Steps[i].AnalyzeResponse != nil {
			normalizeAnalyze(got.Steps[i].AnalyzeResponse)
		}
		if want.Steps[i].AnalyzeResponse != nil {
			normalizeAnalyze(want.Steps[i].AnalyzeResponse)
		}
		a, _ := json.Marshal(got.Steps[i])
		b, _ := json.Marshal(want.Steps[i])
		if !bytes.Equal(a, b) {
			t.Fatalf("whatif step %d diverged:\n%s\n%s", i, a, b)
		}
	}
	// A what-if that names neither base form still gets the canonical
	// 422, via the local server.
	status, _ = postJSON(t, h, "/v1/whatif", serve.WhatIfRequest{Method: "IBN", Deltas: req.Deltas})
	if status != http.StatusUnprocessableEntity {
		t.Fatalf("baseless whatif: %d, want 422", status)
	}
}

func docPtr(d traffic.Document) *traffic.Document { return &d }

// The coordinator's /healthz and /metrics must carry the fleet
// sections (satellite: per-backend/per-shard state + the
// cluster_backends{state} gauge), and malformed coordinator input must
// fail like a worker would fail it.
func TestCoordinatorSurface(t *testing.T) {
	c, _ := startFleet(t, 3, Config{})
	h := c.Handler()

	var health struct {
		OK      bool `json:"ok"`
		Cluster struct {
			Backends      []serve.BackendStatus      `json:"backends"`
			ShardsCovered float64                    `json:"shards_covered"`
			States        map[serve.BackendState]int `json:"states"`
		} `json:"cluster"`
	}
	if status := getJSON(t, h, "/healthz", &health); status != http.StatusOK {
		t.Fatalf("healthz: %d", status)
	}
	if !health.OK || len(health.Cluster.Backends) != 3 || health.Cluster.ShardsCovered != 1.0 {
		t.Fatalf("healthz cluster section wrong: %+v", health)
	}
	if health.Cluster.States[serve.BackendAlive] != 3 {
		t.Fatalf("states = %v, want 3 alive", health.Cluster.States)
	}
	shards := 0
	for _, b := range health.Cluster.Backends {
		shards += b.Shards
	}
	if shards != 3*c.cfg.VNodes {
		t.Fatalf("backends own %d shards total, want %d", shards, 3*c.cfg.VNodes)
	}

	var metrics struct {
		Cluster *serve.ClusterStatus `json:"cluster"`
	}
	if status := getJSON(t, h, "/metrics", &metrics); status != http.StatusOK {
		t.Fatalf("metrics: %d", status)
	}
	if metrics.Cluster == nil || metrics.Cluster.States[serve.BackendAlive] != 3 {
		t.Fatalf("metrics cluster section missing or wrong: %+v", metrics.Cluster)
	}

	// Strict decoding parity with workers.
	status, _ := postJSON(t, h, "/v1/analyze", map[string]any{"system": testDoc(2), "method": "IBN", "bogus": 1})
	if status != http.StatusBadRequest {
		t.Fatalf("unknown field: %d, want 400", status)
	}
	status, _ = postJSON(t, h, "/v1/batch", serve.BatchRequest{Method: "IBN"})
	if status != http.StatusUnprocessableEntity {
		t.Fatalf("empty batch: %d, want 422", status)
	}
	status, _ = postJSON(t, h, "/v1/batch", serve.BatchRequest{Method: "NOPE", Systems: []traffic.Document{testDoc(1)}})
	if status != http.StatusUnprocessableEntity {
		t.Fatalf("unknown method: %d, want 422", status)
	}
}

// With every backend dead the coordinator must keep answering — local
// compute under its own admission control — and /healthz must say
// degraded.
func TestTotalBackendLossDegradesToLocal(t *testing.T) {
	c, workers := startFleet(t, 2, Config{DeadAfter: 1})
	for _, w := range workers {
		w.ts.Close()
	}
	c.ProbeAll(context.Background())
	h := c.Handler()

	status, body := postJSON(t, h, "/v1/analyze", serve.AnalyzeRequest{System: testDoc(2), Method: "IBN"})
	if status != http.StatusOK {
		t.Fatalf("analyze with dead fleet: %d %s", status, body)
	}
	var resp serve.AnalyzeResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if last := resp.Flows[len(resp.Flows)-1]; last.R != 348 {
		t.Fatalf("local-fallback IBN R(τ3) = %d, want 348", last.R)
	}

	cs := c.Status()
	if cs.States[serve.BackendDead] != 2 || cs.ShardsCovered != 0 {
		t.Fatalf("status after total loss: %+v", cs)
	}
	if cs.LocalFallbacks < 1 {
		t.Fatalf("local_fallbacks = %d, want ≥ 1", cs.LocalFallbacks)
	}
	if cs.Rebalances != 2 {
		t.Fatalf("rebalances = %d, want 2 (one per death)", cs.Rebalances)
	}

	var health struct {
		OK    bool   `json:"ok"`
		State string `json:"state"`
	}
	if status := getJSON(t, h, "/healthz", &health); status != http.StatusOK {
		t.Fatalf("healthz while degraded: %d", status)
	}
	if health.OK {
		t.Fatal("healthz reports ok with the whole fleet dead")
	}

	// Batches too: every group becomes a local group.
	req := serve.BatchRequest{Method: "IBN"}
	for d := 1; d <= 6; d++ {
		req.Systems = append(req.Systems, testDoc(d))
	}
	status, body = postJSON(t, h, "/v1/batch", req)
	if status != http.StatusOK {
		t.Fatalf("batch with dead fleet: %d %s", status, body)
	}
	var got serve.BatchResponse
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	if got.Failed != 0 {
		t.Fatalf("local-degraded batch failed %d items: %s", got.Failed, body)
	}
	want := singleNodeBatch(t, req)
	normalizeItems(got.Results)
	normalizeItems(want.Results)
	a, _ := json.Marshal(got.Results)
	b, _ := json.Marshal(want.Results)
	if !bytes.Equal(a, b) {
		t.Fatalf("local-degraded batch diverged from single node:\n%s\n%s", a, b)
	}
}

// Membership must recover: a dead backend that answers probes again is
// revived (one deterministic reverse rebalance) and resumes owning its
// shard.
func TestMembershipRevival(t *testing.T) {
	c, workers := startFleet(t, 3, Config{DeadAfter: 2})
	ctx := context.Background()

	// Kill w1's listener; two probe rounds flip it dead.
	victim := 1
	url := workers[victim].ts.URL
	workers[victim].ts.Close()
	c.ProbeAll(ctx)
	c.ProbeAll(ctx)
	cs := c.Status()
	if cs.Backends[victim].State != serve.BackendDead || cs.Rebalances != 1 {
		t.Fatalf("after 2 failed probes: %+v", cs)
	}

	// Resurrect a listener on the old address (a worker restart).
	u, err := neturl.Parse(url)
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", u.Host)
	if err != nil {
		t.Skipf("cannot rebind %s: %v", u.Host, err)
	}
	revived := httptest.NewUnstartedServer(workers[victim].srv.Handler())
	revived.Listener.Close()
	revived.Listener = l
	revived.Start()
	t.Cleanup(revived.Close)

	c.ProbeAll(ctx)
	cs = c.Status()
	if cs.Backends[victim].State != serve.BackendAlive || cs.Rebalances != 2 {
		t.Fatalf("after revival probe: %+v", cs)
	}
	if !cs.Healthy() {
		t.Fatal("fleet not healthy after revival")
	}
}
