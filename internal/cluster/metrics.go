package cluster

import (
	"sort"
	"sync"
	"time"
)

// fleetLatencyWindow is how many recent winning-dispatch latencies the
// adaptive hedge-delay estimator keeps.
const fleetLatencyWindow = 512

// fleetMetrics holds the coordinator's fan-out counters (exposed via
// serve.ClusterStatus) and the recent-latency window the hedge delay is
// derived from. Safe for concurrent use.
type fleetMetrics struct {
	mu             sync.Mutex
	requests       int64
	hedgesFired    int64
	hedgeWins      int64
	retries        int64
	rebalances     int64
	localFallbacks int64
	proxiedShed    int64
	lat            [fleetLatencyWindow]int64 // µs
	latN           int64
}

func newFleetMetrics() *fleetMetrics { return &fleetMetrics{} }

func (m *fleetMetrics) addRequest() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.requests++
}

// tryHedge atomically checks the hedge budget — hedges may launch while
// hedges_fired < burst + budget×requests — and claims one hedge slot
// when allowed. Check and claim are one critical section so concurrent
// dispatches cannot overshoot the budget.
func (m *fleetMetrics) tryHedge(burst int, budget float64) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if float64(m.hedgesFired) >= float64(burst)+budget*float64(m.requests) {
		return false
	}
	m.hedgesFired++
	return true
}

func (m *fleetMetrics) addHedgeWin() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.hedgeWins++
}

func (m *fleetMetrics) addRetry() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.retries++
}

func (m *fleetMetrics) addRebalance() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.rebalances++
}

func (m *fleetMetrics) addLocalFallback() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.localFallbacks++
}

func (m *fleetMetrics) addShed() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.proxiedShed++
}

func (m *fleetMetrics) recordLatency(d time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.lat[m.latN%fleetLatencyWindow] = d.Microseconds()
	m.latN++
}

// hedgeDelay derives the adaptive hedge delay: the quantile-th
// percentile of recent winning latencies, clamped to [min, max]. With
// no data yet it returns max — cold coordinators do not hedge
// aggressively.
func (m *fleetMetrics) hedgeDelay(quantile int, min, max time.Duration) time.Duration {
	m.mu.Lock()
	n := m.latN
	if n > fleetLatencyWindow {
		n = fleetLatencyWindow
	}
	lat := make([]int64, n)
	copy(lat, m.lat[:n])
	m.mu.Unlock()
	if len(lat) == 0 {
		return max
	}
	sort.Slice(lat, func(a, b int) bool { return lat[a] < lat[b] })
	rank := (quantile*len(lat) + 99) / 100
	if rank < 1 {
		rank = 1
	}
	d := time.Duration(lat[rank-1]) * time.Microsecond
	if d < min {
		d = min
	}
	if d > max {
		d = max
	}
	return d
}

func (m *fleetMetrics) counters() (hedges, hedgeWins, retries, rebalances, localFallbacks, shed int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.hedgesFired, m.hedgeWins, m.retries, m.rebalances, m.localFallbacks, m.proxiedShed
}
