// Package cluster turns the single-process analysis service
// (internal/serve) into a coordinator/worker fleet.
//
// A Coordinator fronts a configurable set of worker backends, each an
// ordinary nocserve process. Requests are routed by the canonical
// system key (internal/canon) over a consistent-hash ring, so each
// backend owns a stable shard of the key space — and therefore of the
// fleet's warm-engine and result caches: repeated analyses of one
// system always land on the worker already holding its interference
// sets. Batches fan out *across* backends (items grouped by shard
// owner, sub-batches dispatched concurrently), and what-if chains
// follow their base system's shard so they hit the warm engine their
// base was analysed on.
//
// # Failure handling
//
// The coordinator survives — and conceals — individual backend
// failures with a ladder of mechanisms, cheapest first:
//
//   - hedged requests: when a dispatch exceeds an adaptive latency
//     quantile of recent requests, a budgeted second try is launched on
//     the shard's next replica; the first usable response wins and the
//     loser is cancelled (a cancelled loser records nothing against its
//     backend — see Breaker below);
//   - bounded retries: transport errors and 5xx worker failures fail
//     over to the next replica in the shard's deterministic chain, with
//     doubling, jittered backoff;
//   - per-backend circuit breakers (serve.Breaker, the same lifecycle
//     the workers apply per method): a backend burning its error budget
//     is shed and probed half-open after a cooldown;
//   - health-probe membership: consecutive probe or transport failures
//     mark a backend dead, deterministically rebalancing its shard arcs
//     to ring successors; a later successful probe restores it (and its
//     shard) just as deterministically;
//   - local degradation: when a shard has no routable owner at all, the
//     coordinator computes the request on its own embedded serve.Server
//     under that server's admission control, so total backend loss
//     degrades throughput, never correctness.
//
// Every rung is counted (hedges fired/won, retries, rebalances, local
// fallbacks, sheds) and the counters are exposed through the local
// server's /metrics "cluster" section — the chaos suite reconciles
// them exactly against the fault injector.
package cluster

import (
	"context"
	"fmt"
	"net/http"
	"runtime"
	"sort"
	"sync"
	"time"

	"wormnoc/internal/faultinject"
	"wormnoc/internal/serve"
)

// Backend names one worker of the fleet.
type Backend struct {
	// Name is the stable membership identifier; ring placement hashes
	// it, so renaming a backend reshards it.
	Name string
	// URL is the backend's base URL (e.g. "http://127.0.0.1:8081").
	URL string
}

// Config tunes a Coordinator. The zero value of every optional field
// selects a production-reasonable default (see each field).
type Config struct {
	// Backends is the worker set. At least one backend is required.
	Backends []Backend
	// Local configures the coordinator's embedded serve.Server: the
	// local-degradation compute path plus the /v1/methods, /metrics and
	// /healthz surface. Its ClusterStatus hook is installed by New.
	Local serve.Config
	// Replicas is the length of each shard's owner chain (owner +
	// failover/hedging replicas). Default 2, capped at len(Backends).
	Replicas int
	// VNodes is the virtual points per backend on the hash ring.
	// Default 64.
	VNodes int
	// HedgeQuantile is the recent-latency percentile (1..100) a dispatch
	// must exceed before a hedge is launched. Default 95.
	HedgeQuantile int
	// HedgeMinDelay and HedgeMaxDelay clamp the adaptive hedge delay;
	// the maximum is also the cold-start delay while no latency data
	// exists. Defaults 2ms and 1s.
	HedgeMinDelay time.Duration
	HedgeMaxDelay time.Duration
	// HedgeDelay, when positive, fixes the hedge delay (tests and
	// benchmarking); 0 selects the adaptive quantile.
	HedgeDelay time.Duration
	// HedgeBurst and HedgeBudget bound hedged duplication: a hedge may
	// launch while hedges_fired < HedgeBurst + HedgeBudget×requests.
	// Defaults 8 and 0.1 (≤10% sustained duplication).
	HedgeBurst  int
	HedgeBudget float64
	// RequestRetries bounds failover re-attempts per request beyond the
	// first dispatch (hedges not counted). Default 2; negative disables.
	RequestRetries int
	// RetryBackoff is the base failover backoff, doubled per attempt and
	// jittered ±50%. Default 2ms.
	RetryBackoff time.Duration
	// ProbeInterval is the health-probe period. Default 1s.
	ProbeInterval time.Duration
	// ProbeTimeout bounds one probe. Default 2s.
	ProbeTimeout time.Duration
	// DeadAfter marks a backend dead after this many consecutive probe
	// or transport failures. Default 3.
	DeadAfter int
	// BreakerWindow/BreakerThreshold/BreakerCooldown tune the
	// per-backend circuit breakers (same semantics as the workers'
	// per-method ones). Defaults 64, 16, 15s.
	BreakerWindow    int
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// BatchWorkers bounds one batch's cross-backend fan-out. Default
	// GOMAXPROCS.
	BatchWorkers int
}

func (c Config) withDefaults() Config {
	if c.Replicas <= 0 {
		c.Replicas = 2
	}
	if c.VNodes <= 0 {
		c.VNodes = defaultVNodes
	}
	if c.HedgeQuantile <= 0 || c.HedgeQuantile > 100 {
		c.HedgeQuantile = 95
	}
	if c.HedgeMinDelay <= 0 {
		c.HedgeMinDelay = 2 * time.Millisecond
	}
	if c.HedgeMaxDelay <= 0 {
		c.HedgeMaxDelay = time.Second
	}
	if c.HedgeBurst <= 0 {
		c.HedgeBurst = 8
	}
	if c.HedgeBudget <= 0 {
		c.HedgeBudget = 0.1
	}
	if c.RequestRetries == 0 {
		c.RequestRetries = 2
	}
	if c.RequestRetries < 0 {
		c.RequestRetries = 0
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 2 * time.Millisecond
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = time.Second
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = 2 * time.Second
	}
	if c.DeadAfter <= 0 {
		c.DeadAfter = 3
	}
	if c.BreakerWindow <= 0 {
		c.BreakerWindow = 64
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = 16
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 15 * time.Second
	}
	if c.BatchWorkers <= 0 {
		c.BatchWorkers = runtime.GOMAXPROCS(0)
	}
	return c
}

// backendState is one backend's mutable membership record.
type backendState struct {
	dead bool
	// consecFails counts probe/transport failures since the last
	// success; DeadAfter of them flip dead.
	consecFails int
}

// Coordinator routes analysis traffic over the backend fleet. Create
// one with New, expose it with Handler, start membership probing with
// StartProbing. Safe for concurrent use.
type Coordinator struct {
	cfg      Config
	backends []Backend // sorted by Name; ring indices point here
	ring     *ring
	local    *serve.Server
	client   *http.Client
	brk      *serve.Breaker
	met      *fleetMetrics

	mu    sync.Mutex
	state []backendState
}

// New builds a Coordinator over cfg.Backends. Backend names must be
// non-empty and unique (routing and the chaos sites key on them).
func New(cfg Config) (*Coordinator, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Backends) == 0 {
		return nil, fmt.Errorf("cluster: no backends configured")
	}
	backends := append([]Backend(nil), cfg.Backends...)
	sort.Slice(backends, func(i, j int) bool { return backends[i].Name < backends[j].Name })
	names := make([]string, len(backends))
	for i, b := range backends {
		if b.Name == "" {
			return nil, fmt.Errorf("cluster: backend %d has no name", i)
		}
		if i > 0 && backends[i-1].Name == b.Name {
			return nil, fmt.Errorf("cluster: duplicate backend name %q", b.Name)
		}
		names[i] = b.Name
	}
	c := &Coordinator{
		cfg:      cfg,
		backends: backends,
		ring:     buildRing(names, cfg.VNodes),
		client: &http.Client{
			// Per-request contexts carry the deadlines; the client-level
			// timeout stays off so hedge/retry budgets compose.
			Transport: &http.Transport{MaxIdleConnsPerHost: 64},
		},
		brk:   serve.NewBreaker(cfg.BreakerWindow, cfg.BreakerThreshold, cfg.BreakerCooldown),
		met:   newFleetMetrics(),
		state: make([]backendState, len(backends)),
	}
	local := cfg.Local
	local.ClusterStatus = c.Status
	c.local = serve.New(local)
	return c, nil
}

// Local returns the embedded serve.Server (the degradation compute path
// and the /metrics / /healthz surface).
func (c *Coordinator) Local() *serve.Server { return c.local }

// Shutdown drains the embedded local server.
func (c *Coordinator) Shutdown(ctx context.Context) error { return c.local.Shutdown(ctx) }

// routable reports whether backend b may receive traffic: alive by
// membership. (Breaker state is applied per dispatch, because Allow has
// half-open probe-slot side effects.)
func (c *Coordinator) routable(b int) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return !c.state[b].dead
}

// markFailure records one probe/transport failure against backend b,
// flipping it dead — one deterministic rebalance — at the DeadAfter'th
// consecutive failure.
func (c *Coordinator) markFailure(b int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := &c.state[b]
	st.consecFails++
	if !st.dead && st.consecFails >= c.cfg.DeadAfter {
		st.dead = true
		c.met.addRebalance()
	}
}

// markSuccess resets backend b's failure streak, reviving it — the
// reverse rebalance — if it was dead.
func (c *Coordinator) markSuccess(b int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := &c.state[b]
	st.consecFails = 0
	if st.dead {
		st.dead = false
		c.met.addRebalance()
	}
}

// StartProbing launches the membership prober: every ProbeInterval each
// backend's /healthz is probed (bounded by ProbeTimeout) until ctx is
// cancelled. Tests drive ProbeAll directly instead.
func (c *Coordinator) StartProbing(ctx context.Context) {
	go func() {
		t := time.NewTicker(c.cfg.ProbeInterval)
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-t.C:
				c.ProbeAll(ctx)
			}
		}
	}()
}

// ProbeAll health-probes every backend once, updating membership.
func (c *Coordinator) ProbeAll(ctx context.Context) {
	for b := range c.backends {
		c.probe(ctx, b)
	}
}

// probe checks one backend's /healthz. Any response at all counts as
// alive — a degraded worker (tripped method breaker) still serves its
// other methods, so membership only reacts to unreachability.
func (c *Coordinator) probe(ctx context.Context, b int) {
	pctx, cancel := context.WithTimeout(ctx, c.cfg.ProbeTimeout)
	defer cancel()
	if faultinject.Enabled() {
		if err := faultinject.Fire(pctx, faultinject.SiteClusterProbe, c.backends[b].Name); err != nil {
			c.markFailure(b)
			return
		}
	}
	req, err := http.NewRequestWithContext(pctx, http.MethodGet, c.backends[b].URL+"/healthz", nil)
	if err != nil {
		c.markFailure(b)
		return
	}
	resp, err := c.client.Do(req)
	if err != nil {
		c.markFailure(b)
		return
	}
	resp.Body.Close()
	c.markSuccess(b)
}

// Status snapshots the fleet for /healthz and /metrics (installed as
// the local server's Config.ClusterStatus hook by New).
func (c *Coordinator) Status() *serve.ClusterStatus {
	c.mu.Lock()
	state := append([]backendState(nil), c.state...)
	c.mu.Unlock()
	open := make(map[string]bool)
	for _, name := range c.brk.Open() {
		open[name] = true
	}
	routable := func(b int) bool { return !state[b].dead }
	counts, covered := c.ring.shardCounts(routable)
	cs := &serve.ClusterStatus{
		Backends:      make([]serve.BackendStatus, len(c.backends)),
		ShardsCovered: covered,
		States:        map[serve.BackendState]int{},
	}
	for i, b := range c.backends {
		st := serve.BackendAlive
		switch {
		case state[i].dead:
			st = serve.BackendDead
		case open[b.Name]:
			st = serve.BackendOpen
		}
		cs.Backends[i] = serve.BackendStatus{
			Name:                b.Name,
			URL:                 b.URL,
			State:               st,
			ConsecutiveFailures: state[i].consecFails,
			Shards:              counts[i],
		}
		cs.States[st]++
	}
	cs.HedgesFired, cs.HedgeWins, cs.Retries, cs.Rebalances, cs.LocalFallbacks, cs.ProxiedShed = c.met.counters()
	cs.BreakerTrips, _ = c.brk.Counters()
	return cs
}
