package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"wormnoc/internal/canon"
	"wormnoc/internal/faultinject"
	"wormnoc/internal/serve"
)

// The headline chaos invariant: partition one of three workers under
// live traffic and every result is still bit-identical to a
// single-node run, with the coordinator's fan-out counters reconciled
// EXACTLY against the fault injector — every injected partition hit is
// accounted for as exactly one failover retry, and no other rung of
// the degradation ladder fires.
func TestFleetChaosPartitionExactReconciliation(t *testing.T) {
	c, _ := startFleet(t, 3, Config{
		// Freeze the non-deterministic rungs: no hedging, no membership
		// flips, no breaker trips — this test isolates retry/failover.
		HedgeDelay:       time.Hour,
		DeadAfter:        1 << 20,
		BreakerThreshold: 1 << 20,
	})
	h := c.Handler()

	const nDocs = 32
	docs := make([]string, 0, nDocs) // keys, for ownership accounting
	req := serve.BatchRequest{Method: "IBN"}
	for d := 1; d <= nDocs; d++ {
		doc := testDoc(d)
		req.Systems = append(req.Systems, doc)
		docs = append(docs, canon.SystemKey(doc))
	}
	// Partition the backend owning the most keys (guaranteed > 0).
	owned := make([]int, 3)
	for _, k := range docs {
		owned[c.ring.owner(k, nil)]++
	}
	victim := 0
	for b := range owned {
		if owned[b] > owned[victim] {
			victim = b
		}
	}
	victimOwned := int64(owned[victim])

	in := faultinject.New(1).Add(faultinject.Fault{
		Site: faultinject.SiteClusterRequest,
		Kind: faultinject.KindError,
		Keys: []string{c.backends[victim].Name},
	})
	faultinject.Enable(in)
	defer faultinject.Disable()

	// Per-request traffic: every victim-owned key fails over to its
	// replica exactly once; every other key never touches the victim.
	want := singleNodeBatch(t, req)
	normalizeItems(want.Results)
	for i := range req.Systems {
		status, body := postJSON(t, h, "/v1/analyze", serve.AnalyzeRequest{System: req.Systems[i], Method: "IBN"})
		if status != http.StatusOK {
			t.Fatalf("analyze %d under partition: %d %s", i, status, body)
		}
		var resp serve.AnalyzeResponse
		if err := json.Unmarshal(body, &resp); err != nil {
			t.Fatal(err)
		}
		normalizeAnalyze(&resp)
		a, _ := json.Marshal(resp)
		b, _ := json.Marshal(want.Results[i].AnalyzeResponse)
		if !bytes.Equal(a, b) {
			t.Fatalf("analyze %d diverged under partition:\n%s\n%s", i, a, b)
		}
	}
	// Batch traffic: the victim's whole group fails over as one
	// sub-batch — one more retry, zero lost items.
	status, body := postJSON(t, h, "/v1/batch", req)
	if status != http.StatusOK {
		t.Fatalf("batch under partition: %d %s", status, body)
	}
	var got serve.BatchResponse
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	if got.Failed != 0 {
		t.Fatalf("batch under partition failed %d items", got.Failed)
	}
	normalizeItems(got.Results)
	normalizeItems(want.Results)
	a, _ := json.Marshal(got.Results)
	b, _ := json.Marshal(want.Results)
	if !bytes.Equal(a, b) {
		t.Fatalf("batch under partition diverged from single node:\n%s\n%s", a, b)
	}

	// Exact reconciliation, through the public /metrics surface: each
	// injector hit at cluster.request is one failover retry (analyzes)
	// plus one for the batch group, and nothing else moved.
	var metrics struct {
		Cluster *serve.ClusterStatus `json:"cluster"`
	}
	if status := getJSON(t, h, "/metrics", &metrics); status != http.StatusOK {
		t.Fatalf("metrics: %d", status)
	}
	cs := metrics.Cluster
	fired := in.Fired()[faultinject.SiteClusterRequest]
	if fired != victimOwned+1 {
		t.Fatalf("injector fired %d at cluster.request, want %d (victim-owned analyzes + 1 batch group)", fired, victimOwned+1)
	}
	if cs.Retries != fired {
		t.Fatalf("retries = %d, injector fired %d — counters do not reconcile", cs.Retries, fired)
	}
	if cs.HedgesFired != 0 || cs.HedgeWins != 0 || cs.LocalFallbacks != 0 ||
		cs.ProxiedShed != 0 || cs.BreakerTrips != 0 || cs.Rebalances != 0 {
		t.Fatalf("unexpected ladder activity: %+v", cs)
	}
	if cs.Backends[victim].ConsecutiveFailures != int(fired) {
		t.Fatalf("victim consecutive_failures = %d, want %d", cs.Backends[victim].ConsecutiveFailures, fired)
	}
}

// The acceptance scenario with a real process death: one of three
// workers' listeners closes under live traffic (no injection — actual
// connection refusals). The campaign's results stay bit-identical to
// single-node, the victim is marked dead after exactly DeadAfter
// transport failures (counted as retries), and once dead it costs
// nothing more.
func TestFleetChaosWorkerDeathMidCampaign(t *testing.T) {
	const deadAfter = 3
	c, workers := startFleet(t, 3, Config{
		HedgeDelay: time.Hour,
		DeadAfter:  deadAfter,
	})
	h := c.Handler()

	const nDocs = 24
	req := serve.BatchRequest{Method: "IBN"}
	keys := make([]string, nDocs)
	for d := 1; d <= nDocs; d++ {
		doc := testDoc(d)
		req.Systems = append(req.Systems, doc)
		keys[d-1] = canon.SystemKey(doc)
	}
	owned := make([]int, 3)
	for _, k := range keys {
		owned[c.ring.owner(k, nil)]++
	}
	victim := 0
	for b := range owned {
		if owned[b] > owned[victim] {
			victim = b
		}
	}
	if owned[victim] <= deadAfter {
		t.Fatalf("victim owns only %d of %d keys; test needs > %d", owned[victim], nDocs, deadAfter)
	}
	want := singleNodeBatch(t, req)
	normalizeItems(want.Results)

	// Kill the worker process. The coordinator has not probed — it
	// discovers the death from in-flight traffic.
	workers[victim].ts.Close()

	for i := range req.Systems {
		status, body := postJSON(t, h, "/v1/analyze", serve.AnalyzeRequest{System: req.Systems[i], Method: "IBN"})
		if status != http.StatusOK {
			t.Fatalf("analyze %d after worker death: %d %s", i, status, body)
		}
		var resp serve.AnalyzeResponse
		if err := json.Unmarshal(body, &resp); err != nil {
			t.Fatal(err)
		}
		normalizeAnalyze(&resp)
		a, _ := json.Marshal(resp)
		b, _ := json.Marshal(want.Results[i].AnalyzeResponse)
		if !bytes.Equal(a, b) {
			t.Fatalf("analyze %d diverged after worker death:\n%s\n%s", i, a, b)
		}
	}

	// The victim was marked dead at exactly the DeadAfter'th transport
	// failure; each failure before that cost one failover retry.
	cs := c.Status()
	if cs.Backends[victim].State != serve.BackendDead {
		t.Fatalf("victim state = %s after %d owned requests, want dead", cs.Backends[victim].State, owned[victim])
	}
	if cs.Retries != deadAfter {
		t.Fatalf("retries = %d, want exactly %d (DeadAfter, then routed around)", cs.Retries, deadAfter)
	}
	if cs.Rebalances != 1 || cs.LocalFallbacks != 0 || cs.HedgesFired != 0 {
		t.Fatalf("unexpected ladder activity: %+v", cs)
	}
	if cs.ShardsCovered != 1.0 {
		t.Fatalf("shards_covered = %v with 2 of 3 workers alive, want 1.0", cs.ShardsCovered)
	}

	// A dead backend costs nothing more: the follow-up batch routes
	// around it with zero additional retries and stays bit-identical.
	status, body := postJSON(t, h, "/v1/batch", req)
	if status != http.StatusOK {
		t.Fatalf("batch after death: %d %s", status, body)
	}
	var got serve.BatchResponse
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	if got.Failed != 0 {
		t.Fatalf("batch after death failed %d items", got.Failed)
	}
	normalizeItems(got.Results)
	normalizeItems(want.Results)
	a, _ := json.Marshal(got.Results)
	b, _ := json.Marshal(want.Results)
	if !bytes.Equal(a, b) {
		t.Fatalf("batch after death diverged:\n%s\n%s", a, b)
	}
	if after := c.Status(); after.Retries != deadAfter {
		t.Fatalf("retries moved from %d to %d on post-death batch — dead backend still being dialled", deadAfter, after.Retries)
	}
}

// Satellite regression: a byzantine-slow backend — alive, correct,
// pathologically latent — is exactly what hedging is for, and the
// hedge's cancelled losers must NOT count against the slow backend's
// error budget. With BreakerThreshold=1, a single mis-accounted
// cancellation would trip the breaker; the victim must stay alive and
// closed through repeated hedge wins.
func TestHedgeCancelNeverTripsBreaker(t *testing.T) {
	c, _ := startFleet(t, 2, Config{
		HedgeDelay:       5 * time.Millisecond,
		HedgeBurst:       64,
		BreakerThreshold: 1, // hair trigger: one recorded fault trips
	})
	h := c.Handler()
	victim := 0

	in := faultinject.New(1).Add(faultinject.Fault{
		Site:  faultinject.SiteClusterRequest,
		Kind:  faultinject.KindDelay, // unbounded: byzantine-slow
		Keys:  []string{c.backends[victim].Name},
		Delay: 2 * time.Second,
	})
	faultinject.Enable(in)
	defer faultinject.Disable()

	const n = 5
	cursor := 0
	start := time.Now()
	for i := 0; i < n; i++ {
		doc := docOwnedBy(t, c, victim, &cursor)
		status, body := postJSON(t, h, "/v1/analyze", serve.AnalyzeRequest{System: doc, Method: "IBN"})
		if status != http.StatusOK {
			t.Fatalf("hedged analyze %d: %d %s", i, status, body)
		}
		var resp serve.AnalyzeResponse
		if err := json.Unmarshal(body, &resp); err != nil {
			t.Fatal(err)
		}
		if len(resp.Flows) == 0 {
			t.Fatalf("hedged analyze %d returned no flows: %s", i, body)
		}
	}
	// If any dispatch had waited out the 2s byzantine delay instead of
	// racing a hedge and cancelling the loser, we could not be here yet.
	if elapsed := time.Since(start); elapsed > 1500*time.Millisecond {
		t.Fatalf("%d hedged requests took %v — losers were awaited, not cancelled", n, elapsed)
	}

	cs := c.Status()
	if cs.HedgesFired != n || cs.HedgeWins != n {
		t.Fatalf("hedges fired/won = %d/%d, want %d/%d", cs.HedgesFired, cs.HedgeWins, n, n)
	}
	if cs.BreakerTrips != 0 {
		t.Fatalf("breaker trips = %d — hedge cancellations consumed the error budget", cs.BreakerTrips)
	}
	if st := cs.Backends[victim].State; st != serve.BackendAlive {
		t.Fatalf("slow-but-healthy backend state = %s, want alive", st)
	}
	if cs.Retries != 0 || cs.LocalFallbacks != 0 {
		t.Fatalf("unexpected ladder activity: %+v", cs)
	}

	// The hedge budget is a real bound: with the budget exhausted a
	// dispatch may not hedge (tryHedge refuses), so hedges_fired never
	// exceeds burst + budget×requests.
	max := float64(c.cfg.HedgeBurst) + c.cfg.HedgeBudget*float64(n+1)
	if float64(cs.HedgesFired) > max {
		t.Fatalf("hedges_fired %d exceeds budget %v", cs.HedgesFired, max)
	}
}

// A transiently slow backend (slow-start: a Times-bounded delay) is
// ridden out by hedges without any membership or breaker consequence,
// and once the slow-start clears the backend serves normally again.
func TestSlowStartClears(t *testing.T) {
	c, _ := startFleet(t, 2, Config{
		HedgeDelay: 5 * time.Millisecond,
		HedgeBurst: 64,
	})
	h := c.Handler()
	victim := 0

	in := faultinject.New(1).Add(faultinject.Fault{
		Site:  faultinject.SiteClusterRequest,
		Kind:  faultinject.KindDelay,
		Keys:  []string{c.backends[victim].Name},
		Delay: time.Second,
		Times: 2, // slow-start: transiently slow after joining
	})
	faultinject.Enable(in)
	defer faultinject.Disable()

	cursor := 0
	for i := 0; i < 4; i++ {
		doc := docOwnedBy(t, c, victim, &cursor)
		status, body := postJSON(t, h, "/v1/analyze", serve.AnalyzeRequest{System: doc, Method: "IBN"})
		if status != http.StatusOK {
			t.Fatalf("analyze %d through slow-start: %d %s", i, status, body)
		}
	}
	cs := c.Status()
	if cs.HedgesFired != 2 {
		t.Fatalf("hedges fired = %d, want exactly 2 (the slow-start's Times)", cs.HedgesFired)
	}
	if !cs.Healthy() || cs.BreakerTrips != 0 || cs.Rebalances != 0 {
		t.Fatalf("slow-start left a mark on the fleet: %+v", cs)
	}
}

// Probe-level kill (the membership chaos site): enough failed probes
// mark the backend dead without a single client request being hurt,
// and requests immediately route around it.
func TestProbeKillRebalances(t *testing.T) {
	c, _ := startFleet(t, 3, Config{DeadAfter: 3, HedgeDelay: time.Hour})
	h := c.Handler()
	ctx := context.Background()
	victim := 2

	in := faultinject.New(1).Add(faultinject.Fault{
		Site: faultinject.SiteClusterProbe,
		Kind: faultinject.KindError,
		Keys: []string{c.backends[victim].Name},
	})
	faultinject.Enable(in)
	defer faultinject.Disable()

	for i := 0; i < 3; i++ {
		c.ProbeAll(ctx)
	}
	cs := c.Status()
	if cs.Backends[victim].State != serve.BackendDead || cs.Rebalances != 1 {
		t.Fatalf("after 3 killed probes: %+v", cs)
	}
	if fired := in.Fired()[faultinject.SiteClusterProbe]; fired != 3 {
		t.Fatalf("probe site fired %d, want 3", fired)
	}

	// Traffic routes around the dead member with zero retries: the
	// request-site injector never fires because the victim is not
	// dialled at all.
	cursor := 0
	doc := docOwnedBy(t, c, victim, &cursor)
	status, body := postJSON(t, h, "/v1/analyze", serve.AnalyzeRequest{System: doc, Method: "IBN"})
	if status != http.StatusOK {
		t.Fatalf("analyze with dead shard owner: %d %s", status, body)
	}
	cs = c.Status()
	if cs.Retries != 0 || cs.LocalFallbacks != 0 {
		t.Fatalf("routing around a dead member cost ladder activity: %+v", cs)
	}

	// Probes healing (injector disabled) revives the backend.
	faultinject.Disable()
	c.ProbeAll(ctx)
	cs = c.Status()
	if cs.Backends[victim].State != serve.BackendAlive || cs.Rebalances != 2 {
		t.Fatalf("after healing probe: %+v", cs)
	}
}
