package cluster

import (
	"sort"
)

// ring is a consistent-hash ring over the configured backends. Each
// backend contributes vnodes virtual points, placed by hashing
// "name#i"; a canonical system key (internal/canon) is owned by the
// first point clockwise from the key's hash. Routing therefore depends
// only on the *set* of backend names (membership is sorted before the
// ring is built), never on configuration order, process identity or
// time — the same fleet always shards the same way, across coordinator
// restarts (satisfying the determinism the engine-cache sharding needs:
// a key's warm engine lives where the key routes).
//
// Virtual nodes make removal well-behaved: when one of N backends dies,
// only the keys in its points' arcs move — in expectation 1/N of the
// key space — and every surviving backend's shard is untouched. The
// dead backend's arcs fall to their clockwise successors, so the ring
// rebalances deterministically with no coordination.
//
// The ring itself is immutable after build; liveness is applied at
// lookup time (owners skips backends the caller marks unroutable), so
// membership changes never mutate shared state.
type ring struct {
	// points is sorted by hash; backend is an index into the
	// coordinator's name-sorted backend slice.
	points []ringPoint
	// backends is the number of distinct backends on the ring.
	backends int
}

type ringPoint struct {
	hash    uint64
	backend int
}

// defaultVNodes balances shard-size variance (more points = more even
// shards) against lookup-table size. 64 points per backend keeps the
// largest/smallest shard ratio under ~2 for small fleets.
const defaultVNodes = 64

// buildRing places vnodes points per backend name. names must already
// be sorted and unique; indices into it are what lookups return.
func buildRing(names []string, vnodes int) *ring {
	if vnodes <= 0 {
		vnodes = defaultVNodes
	}
	r := &ring{
		points:   make([]ringPoint, 0, len(names)*vnodes),
		backends: len(names),
	}
	for b, name := range names {
		h := fnv64(name)
		for i := 0; i < vnodes; i++ {
			// Derive the i-th virtual point by avalanche-mixing the name
			// hash with the vnode ordinal; splitmix64 scatters even
			// near-identical names ("w1", "w2") uniformly.
			r.points = append(r.points, ringPoint{
				hash:    splitmix64(h ^ (uint64(i) * 0x9e3779b97f4a7c15)),
				backend: b,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Hash ties (vanishingly rare) break by backend index so the
		// order — and hence routing — stays deterministic.
		return r.points[i].backend < r.points[j].backend
	})
	return r
}

// owners returns up to max distinct backends for key, in ring order
// starting at the key's owning point, including only backends for which
// routable returns true. The first entry is the shard owner; the rest
// are the failover/hedging replica chain. A nil routable accepts every
// backend.
func (r *ring) owners(key string, max int, routable func(int) bool) []int {
	if len(r.points) == 0 || max <= 0 {
		return nil
	}
	h := fnv64(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if start == len(r.points) {
		start = 0
	}
	if max > r.backends {
		max = r.backends
	}
	out := make([]int, 0, max)
	seen := make(map[int]bool, max)
	for i := 0; i < len(r.points) && len(out) < max; i++ {
		p := r.points[(start+i)%len(r.points)]
		if seen[p.backend] {
			continue
		}
		seen[p.backend] = true
		if routable == nil || routable(p.backend) {
			out = append(out, p.backend)
		}
	}
	return out
}

// owner returns key's shard owner among routable backends (-1 when none
// is routable).
func (r *ring) owner(key string, routable func(int) bool) int {
	if o := r.owners(key, r.backends, routable); len(o) > 0 {
		return o[0]
	}
	return -1
}

// shardCounts returns how many ring points each backend owns after
// liveness filtering: point arcs of unroutable backends are credited to
// their clockwise successor, mirroring what owners does per key. The
// second return is the fraction of points with any routable owner.
func (r *ring) shardCounts(routable func(int) bool) (counts []int, covered float64) {
	counts = make([]int, r.backends)
	if len(r.points) == 0 {
		return counts, 0
	}
	coveredPoints := 0
	for i := range r.points {
		// Walk clockwise from this point to the first routable backend,
		// exactly like a key hashing into this arc would.
		for j := 0; j < len(r.points); j++ {
			b := r.points[(i+j)%len(r.points)].backend
			if routable == nil || routable(b) {
				counts[b]++
				coveredPoints++
				break
			}
		}
	}
	return counts, float64(coveredPoints) / float64(len(r.points))
}

// fnv64 is the FNV-1a hash of s — cheap, allocation-free, and stable
// across processes, which is all key placement needs (canon keys are
// already uniformly distributed SHA-256 hex).
func fnv64(s string) uint64 {
	h := uint64(1469598103934665603)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// splitmix64 is the avalanche finaliser used to scatter virtual-node
// points (same construction as internal/faultinject's).
func splitmix64(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
