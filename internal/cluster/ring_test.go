package cluster

import (
	"fmt"
	"math/rand"
	"testing"
)

// randomKeys returns n hex-ish keys, deterministically in seed — stand-
// ins for canon system keys.
func randomKeys(n int, seed int64) []string {
	rng := rand.New(rand.NewSource(seed))
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("%016x%016x", rng.Uint64(), rng.Uint64())
	}
	return keys
}

// Routing must depend only on the membership *set*: the same names in
// any configuration order, across any number of coordinator "restarts"
// (fresh ring builds), route every key identically. This is what makes
// the shard → warm-engine-cache assignment stable across the fleet's
// lifetime.
func TestRingDeterministicAcrossRestarts(t *testing.T) {
	names := []string{"w0", "w1", "w2", "w3", "w4"}
	keys := randomKeys(2000, 1)
	base := buildRing(names, 64)
	want := make([]int, len(keys))
	for i, k := range keys {
		want[i] = base.owner(k, nil)
	}
	for restart := 0; restart < 5; restart++ {
		// New constructs sort membership by name; buildRing receives the
		// same sorted slice regardless of Config order, so rebuilding is
		// exactly what a coordinator restart does.
		r := buildRing(names, 64)
		for i, k := range keys {
			if got := r.owner(k, nil); got != want[i] {
				t.Fatalf("restart %d: key %d owner = %d, want %d", restart, i, got, want[i])
			}
		}
	}
}

// New must reject unusable memberships and sort the rest by name so
// ring indices are configuration-order-independent.
func TestNewMembershipValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("New accepted an empty backend set")
	}
	if _, err := New(Config{Backends: []Backend{{Name: "a"}, {Name: "a"}}}); err == nil {
		t.Fatal("New accepted duplicate backend names")
	}
	if _, err := New(Config{Backends: []Backend{{Name: ""}}}); err == nil {
		t.Fatal("New accepted an unnamed backend")
	}
	c, err := New(Config{Backends: []Backend{{Name: "z", URL: "http://z"}, {Name: "a", URL: "http://a"}}})
	if err != nil {
		t.Fatal(err)
	}
	if c.backends[0].Name != "a" || c.backends[1].Name != "z" {
		t.Fatalf("membership not name-sorted: %+v", c.backends)
	}
}

// Removing one of N backends must remap exactly the keys the removed
// backend owned — its arcs fall to ring successors — and nothing else;
// in expectation that is 1/N of the key space. Adding it back restores
// the original routing bit-for-bit.
func TestRingRemovalRemapsOnlyOwnedKeys(t *testing.T) {
	const n = 5
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("w%d", i)
	}
	r := buildRing(names, 64)
	keys := randomKeys(10000, 2)

	for dead := 0; dead < n; dead++ {
		alive := func(b int) bool { return b != dead }
		moved := 0
		for _, k := range keys {
			before := r.owner(k, nil)
			after := r.owner(k, alive)
			if before != dead {
				// Stability: a key whose owner survives must not move.
				if after != before {
					t.Fatalf("dead=%d: key of surviving owner %d remapped to %d", dead, before, after)
				}
				continue
			}
			if after == dead {
				t.Fatalf("dead=%d: key still routed to the dead backend", dead)
			}
			moved++
		}
		// The moved fraction is the dead backend's shard: ~1/N with
		// vnode-bounded variance. 64 vnodes keep it well within
		// [0.5/N, 2/N] for N=5.
		frac := float64(moved) / float64(len(keys))
		if frac < 0.5/n || frac > 2.0/n {
			t.Fatalf("dead=%d: %.3f of keys moved, want ~%.3f (1/N)", dead, frac, 1.0/n)
		}
		// Revival restores routing exactly (the ring itself never
		// changed; liveness is lookup-time).
		for _, k := range keys[:500] {
			if r.owner(k, nil) != r.owner(k, func(int) bool { return true }) {
				t.Fatal("revived routing differs from original")
			}
		}
	}
}

// Growing the fleet by one backend must only move keys *to* the new
// backend (~1/(N+1) of them); no key may move between two old backends.
func TestRingAddRemapsOnlyToNewBackend(t *testing.T) {
	old := []string{"w0", "w1", "w2", "w3"}
	grown := []string{"w0", "w1", "w2", "w3", "w4"} // sorted; w4 is index 4
	rOld := buildRing(old, 64)
	rNew := buildRing(grown, 64)
	keys := randomKeys(10000, 3)

	moved := 0
	for _, k := range keys {
		before := rOld.owner(k, nil)
		after := rNew.owner(k, nil)
		if after == before {
			continue
		}
		if after != 4 {
			t.Fatalf("key moved between old backends %d → %d on grow", before, after)
		}
		moved++
	}
	frac := float64(moved) / float64(len(keys))
	if frac < 0.5/5 || frac > 2.0/5 {
		t.Fatalf("%.3f of keys moved to the new backend, want ~%.3f", frac, 1.0/5)
	}
}

// The replica chain must start with the owner, contain no duplicates,
// and be deterministic; shardCounts must agree with per-key ownership
// and report coverage 0 only when every backend is unroutable.
func TestRingOwnersAndCoverage(t *testing.T) {
	names := []string{"w0", "w1", "w2"}
	r := buildRing(names, 64)
	for _, k := range randomKeys(200, 4) {
		chain := r.owners(k, 2, nil)
		if len(chain) != 2 {
			t.Fatalf("owners(%q) = %v, want 2 distinct backends", k, chain)
		}
		if chain[0] == chain[1] {
			t.Fatalf("owners(%q) repeats backend %d", k, chain[0])
		}
		if chain[0] != r.owner(k, nil) {
			t.Fatalf("owners(%q)[0] = %d, owner = %d", k, chain[0], r.owner(k, nil))
		}
	}
	counts, covered := r.shardCounts(nil)
	total := 0
	for _, c := range counts {
		if c == 0 {
			t.Fatalf("a backend owns zero shards: %v", counts)
		}
		total += c
	}
	if total != 3*64 || covered != 1.0 {
		t.Fatalf("shardCounts = %v (total %d, covered %.2f), want total %d covered 1.0", counts, total, covered, 3*64)
	}
	_, covered = r.shardCounts(func(int) bool { return false })
	if covered != 0 {
		t.Fatalf("covered = %.2f with every backend dead, want 0", covered)
	}
}
