package oracle

import (
	"fmt"
	"math/rand"

	"wormnoc/internal/core"
	"wormnoc/internal/exhaustive"
	"wormnoc/internal/noc"
	"wormnoc/internal/sim"
	"wormnoc/internal/traffic"
)

// exhaustiveSearchStream offsets the DeriveSeed stream indices of the
// in-class comparison searches away from the main attack's streams
// (which use 2·flow and 2·flow+1), so the two search families stay
// decorrelated at any flow count.
const exhaustiveSearchStream = int64(1) << 32

// ExhaustiveGap is one flow's search-vs-exhaustive attack-quality
// comparison: how close the randomised phasing search came to the true
// in-class worst case the explicit-state backend computed.
type ExhaustiveGap struct {
	// Flow indexes the flow in the scenario's flow set.
	Flow int `json:"flow"`
	// Search is the best latency the randomised search found inside the
	// exhaustive class (jitter-free, same horizon), -1 if none.
	Search noc.Cycles `json:"search"`
	// Exhaustive is the true worst case over the enumerated class, -1 if
	// no packet of the flow completed at any phasing.
	Exhaustive noc.Cycles `json:"exhaustive"`
	// Gap is Exhaustive - Search, the latency the search left on the
	// table (meaningful when both sides are >= 0; never negative on a
	// complete exploration, or "search<=exhaustive" has been violated).
	Gap noc.Cycles `json:"gap"`
	// Proven reports whether Exhaustive is certified as the true worst
	// case of the class (complete enumeration, no censoring at or above
	// this flow's priority).
	Proven bool `json:"proven"`
	// ViaReduction marks a proof the reductions made affordable: the
	// enumeration that certified this flow covered strictly fewer
	// simulated states than the raw phasing grid. False for proofs over
	// the unreduced grid (ReduceNone, or a space the reductions cannot
	// shrink) and for unproven rows.
	ViaReduction bool `json:"via_reduction,omitempty"`
}

// ExhaustiveReport is the exhaustive backend's contribution to a check
// Report: the state-space coverage and the per-flow gap metric.
type ExhaustiveReport struct {
	// GridSize is the full phasing grid of the scenario.
	GridSize int64 `json:"grid_size"`
	// ReducedGridSize is the stride-1 enumeration size under the
	// reduction mode the backend ran with (equal to GridSize when the
	// reductions were off or saved nothing).
	ReducedGridSize int64 `json:"reduced_grid_size"`
	// Reduction is the mode's flag spelling ("all", "none", "symmetry",
	// "clusters").
	Reduction string `json:"reduction"`
	// Clusters is the number of independently-explored contention
	// clusters (1 when decomposition was off or the graph is connected).
	Clusters int `json:"clusters"`
	// StatesSaved is GridSize − ReducedGridSize: simulations the
	// reductions made unnecessary without weakening the proof.
	StatesSaved int64 `json:"states_saved"`
	// States is the number of phasings actually simulated.
	States int64 `json:"states"`
	// Stride is the effective sampling stride (1 = full enumeration).
	Stride int64 `json:"stride"`
	// Duration is the per-phasing simulation horizon used.
	Duration noc.Cycles `json:"duration"`
	// Complete reports whether the grid was fully enumerated; proofs and
	// the "search<=exhaustive" invariant both require it.
	Complete bool `json:"complete"`
	// Truncation, for incomplete explorations, says what was cut. A
	// truncated run is reported as a lower bound, never as a proof.
	Truncation string `json:"truncation,omitempty"`
	// Gaps holds the per-flow search-vs-exhaustive comparison for every
	// flow some analysis declared schedulable.
	Gaps []ExhaustiveGap `json:"gaps"`
}

// checkExhaustive runs the explicit-state backend over the scenario and
// evaluates its invariant chain: search <= exhaustive (completeness of
// the enumeration), exhaustive <= IBN and exhaustive <= XLWX (soundness
// of the declared-safe bounds against the true in-class worst case),
// and censor-freedom for schedulable flows (a schedulable flow whose
// packet outlives its deadline at some canonical phasing falsifies the
// bound even though the unfinished packet reports no latency). The
// exhaustive class is jitter-free, so the comparison search runs with
// jitter injection off; scenario jitter only widens the analytic
// bounds, keeping the chain sound. Returns a nil report with a note
// when the scenario is out of the backend's reach.
func checkExhaustive(sys *traffic.System, results map[core.Method]*core.Result, cfg CheckConfig,
	bound func(core.Method, int, noc.Cycles) noc.Cycles) ([]Violation, *ExhaustiveReport, []string, int, error) {

	sp, err := exhaustive.Plan(sys)
	if err != nil {
		return nil, nil, []string{fmt.Sprintf("exhaustive skipped: %v", err)}, 0, nil
	}
	// The budget gate compares against the REDUCED enumeration size:
	// scenarios whose raw grid dwarfs the budget still get proofs when
	// the symmetry quotient and cluster decomposition bring the state
	// count within reach. The skip note records both sizes so a "still
	// too big" verdict is auditable against either.
	if reduced := sp.SizeUnder(cfg.ExhaustiveReduce); reduced > cfg.ExhaustiveStates {
		return nil, nil, []string{fmt.Sprintf(
			"exhaustive skipped: reduced state space of %d phasings (raw grid %d) exceeds budget %d",
			reduced, sp.GridSize, cfg.ExhaustiveStates)}, 0, nil
	}
	ex, err := exhaustive.Explore(sys, exhaustive.Config{
		MaxStates: cfg.ExhaustiveStates,
		Workers:   cfg.Workers,
		Reduce:    cfg.ExhaustiveReduce,
	})
	if err != nil {
		return nil, nil, nil, 0, fmt.Errorf("oracle: exhaustive exploration: %w", err)
	}
	er := &ExhaustiveReport{
		GridSize:        ex.Space.GridSize,
		ReducedGridSize: ex.Reductions.ReducedGridSize,
		Reduction:       ex.Reductions.Mode.String(),
		Clusters:        ex.Reductions.Clusters,
		StatesSaved:     ex.Reductions.StatesSaved,
		States:          ex.States,
		Stride:          ex.Stride,
		Duration:        ex.Duration,
		Complete:        ex.Complete,
		Truncation:      ex.Truncation,
	}
	simRuns := int(ex.States)
	var out []Violation
	methods := []core.Method{core.IBN, core.XLWX}
	for i := 0; i < sys.NumFlows(); i++ {
		schedulable := false
		for _, m := range methods {
			if results[m].Flows[i].Status == core.Schedulable {
				schedulable = true
			}
		}
		if !schedulable {
			continue
		}
		search, err := sim.SearchWorstCase(sys, sim.SearchConfig{
			Base:          sim.Config{Duration: ex.Duration},
			Target:        i,
			Restarts:      cfg.Restarts,
			RefineSteps:   cfg.RefineSteps,
			ProbesPerFlow: cfg.ProbesPerFlow,
			Workers:       1,
			Rand:          rand.New(rand.NewSource(DeriveSeed(cfg.Seed, exhaustiveSearchStream+int64(i)))),
		})
		if err != nil {
			return nil, nil, nil, simRuns, fmt.Errorf("oracle: in-class comparison search: %w", err)
		}
		simRuns += search.Runs
		g := ExhaustiveGap{
			Flow:         i,
			Search:       search.Worst,
			Exhaustive:   ex.Flows[i].Worst,
			Proven:       ex.Proven(i),
			ViaReduction: ex.Proven(i) && ex.Reductions.StatesSaved > 0,
		}
		if g.Search >= 0 && g.Exhaustive >= 0 {
			g.Gap = g.Exhaustive - g.Search
		}
		er.Gaps = append(er.Gaps, g)

		// search <= exhaustive: the search samples a subset of the
		// enumerated class, so on a complete enumeration it can never see
		// further than the backend. If it does, the enumeration (or the
		// class argument behind it) is broken.
		if ex.Complete && search.Worst > ex.Flows[i].Worst {
			out = append(out, Violation{
				Class:     ExhaustiveDivergent,
				Invariant: "search<=exhaustive",
				Flow:      i,
				Bound:     ex.Flows[i].Worst,
				Observed:  search.Worst,
				Offsets:   append([]noc.Cycles(nil), search.Offsets...),
				Detail: fmt.Sprintf("randomised search found %d beyond the exhaustive maximum %d over %d phasings",
					search.Worst, ex.Flows[i].Worst, ex.States),
			})
		}

		// exhaustive <= bound for every declared-safe bound: the true
		// in-class worst case (or its truncated lower bound — still a
		// witnessed latency) must stay below anything IBN/XLWX declared
		// safe.
		for _, m := range methods {
			fr := results[m].Flows[i]
			if fr.Status != core.Schedulable {
				continue
			}
			b := bound(m, i, fr.R)
			if ex.Flows[i].Worst > b {
				out = append(out, Violation{
					Class:     ExhaustiveDivergent,
					Invariant: "exhaustive<=" + m.String(),
					Method:    m,
					Flow:      i,
					Bound:     b,
					Observed:  ex.Flows[i].Worst,
					Offsets:   append([]noc.Cycles(nil), ex.Flows[i].Offsets...),
					Detail: fmt.Sprintf("exhaustive worst case %d exceeds bound %d by %d (complete=%v)",
						ex.Flows[i].Worst, b, ex.Flows[i].Worst-b, ex.Complete),
				})
			}
			// Censored packets witness latencies beyond the deadline
			// without ever completing, so they evade the worst-latency
			// comparison above; for a flow the analysis declared
			// schedulable (R <= D) they are bound violations all the same.
			if ex.Flows[i].Censored > 0 {
				out = append(out, Violation{
					Class:     ExhaustiveDivergent,
					Invariant: "exhaustive-censor-free",
					Method:    m,
					Flow:      i,
					Bound:     b,
					Observed:  ex.Flows[i].Worst,
					Offsets:   append([]noc.Cycles(nil), ex.Flows[i].Offsets...),
					Detail: fmt.Sprintf("%d phasings left a packet of this %s-schedulable flow unfinished a full deadline past release",
						ex.Flows[i].Censored, m),
				})
			}
		}
	}
	return out, er, nil, simRuns, nil
}
