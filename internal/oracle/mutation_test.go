package oracle

import (
	"bytes"
	"testing"

	"wormnoc/internal/core"
	"wormnoc/internal/noc"
	"wormnoc/internal/workload"
)

// The mutation self-tests corrupt analytic bounds through the
// test-only CheckConfig.mutate hook and demand the oracle notice. An
// oracle that stays green under a deliberately unsound analysis is
// decoration, not verification.

func didacticScenario() *Scenario {
	return &Scenario{Doc: workload.Didactic(2).ToDocument()}
}

// Halving every IBN bound makes the analysis optimistic the way a real
// soundness bug would: the phasing attack must observe latencies beyond
// the corrupted bounds and classify them Unsound — and the shrinker
// must then reduce the didactic scenario to a minimal replayable
// counterexample.
func TestMutationOptimisticIBNIsCaughtAndShrunk(t *testing.T) {
	sc := didacticScenario()
	cfg := CheckConfig{
		Seed: 1,
		mutate: func(m core.Method, flow int, r noc.Cycles) noc.Cycles {
			if m == core.IBN {
				return r / 2
			}
			return r
		},
	}
	rep, err := Check(sc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var caught *Violation
	for i := range rep.Violations {
		if rep.Violations[i].Class == Unsound && rep.Violations[i].Invariant == "sim<=IBN" {
			caught = &rep.Violations[i]
			break
		}
	}
	if caught == nil {
		t.Fatalf("halved IBN bounds went undetected; violations: %v", rep.Violations)
	}
	if caught.Observed <= caught.Bound {
		t.Fatalf("violation does not witness the breach: observed %d <= bound %d", caught.Observed, caught.Bound)
	}

	shrunk, err := Shrink(sc, *caught, cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if shrunk.Reductions == 0 {
		t.Error("shrinker made no reduction on the 3-flow didactic scenario")
	}
	if n := len(shrunk.Scenario.Doc.Flows); n > 1 {
		// A lone flow at zero load observes exactly C > C/2, so the
		// minimal counterexample for this mutation is a single flow.
		t.Errorf("minimal counterexample kept %d flows, want 1", n)
	}
	if FindViolation(shrunk.Report, *caught) == nil {
		t.Error("shrunk scenario no longer exhibits the violation")
	}

	// The counterexample persists, round-trips and replays. Replay runs
	// the *unmutated* analyses — the violation must NOT reproduce, which
	// is exactly what replay reports after a bug is fixed.
	art := NewArtifact(shrunk.Scenario, cfg, *FindViolation(shrunk.Report, *caught), shrunk)
	var buf bytes.Buffer
	if err := art.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadArtifact(&buf)
	if err != nil {
		t.Fatal(err)
	}
	replayRep, reproduced, err := back.Replay()
	if err != nil {
		t.Fatal(err)
	}
	if reproduced {
		t.Errorf("replay against the healthy analyses reproduced the mutation's violation: %v", replayRep.Violations)
	}
}

// An off-by-one tightening of XLWX must trip the IBN<=XLWX
// cross-consistency invariant: the didactic top-priority flow has
// R_IBN == R_XLWX, so any tightening of XLWX alone inverts the order.
func TestMutationTightenedXLWXTripsConsistency(t *testing.T) {
	sc := didacticScenario()
	rep, err := Check(sc, CheckConfig{
		Seed: 1,
		mutate: func(m core.Method, flow int, r noc.Cycles) noc.Cycles {
			if m == core.XLWX {
				return r - 1
			}
			return r
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range rep.Violations {
		if v.Class == Inconsistent && v.Invariant == "IBN<=XLWX" {
			return
		}
	}
	t.Fatalf("tightened XLWX went undetected; violations: %v", rep.Violations)
}

// A uniform +1 loosening of every schedulable bound is invisible to the
// soundness, consistency and monotonicity invariants (looser bounds
// stay safe, and both sides of every analytic comparison shift
// together) — but the incremental-divergence comparison applies the
// hook to the scratch reference side only, so the warm-started engine's
// raw results must register as divergent. An oracle that stays green
// here would also miss a real one-cycle warm-start bug.
func TestMutationIncrementalDivergenceIsCaughtAndShrunk(t *testing.T) {
	sc := didacticScenario()
	cfg := CheckConfig{
		Seed:   1,
		mutate: func(m core.Method, flow int, r noc.Cycles) noc.Cycles { return r + 1 },
	}
	rep, err := Check(sc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var caught *Violation
	for i := range rep.Violations {
		if rep.Violations[i].Class == IncrementalDivergent && rep.Violations[i].Invariant == "incremental==scratch" {
			caught = &rep.Violations[i]
			break
		}
	}
	if caught == nil {
		t.Fatalf("shifted reference bounds went undetected; violations: %v", rep.Violations)
	}
	if caught.Bound != caught.Observed+1 {
		t.Fatalf("violation does not witness the one-cycle shift: bound %d, observed %d", caught.Bound, caught.Observed)
	}
	for _, v := range rep.Violations {
		if v.Class != IncrementalDivergent {
			t.Errorf("the uniform shift leaked into another invariant: %s", v.String())
		}
	}

	// The shrinker walks the replayed chain down: a single edit already
	// exhibits the (mutation-faked) divergence.
	shrunk, err := Shrink(sc, *caught, cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if shrunk.Config.EditChainLen >= DefaultEditChainLen {
		t.Errorf("shrinker left the edit chain at %d edits", shrunk.Config.EditChainLen)
	}
	if FindViolation(shrunk.Report, *caught) == nil {
		t.Error("shrunk scenario no longer exhibits the divergence")
	}

	// The artifact records the shrunk chain length, round-trips, and its
	// replay runs the healthy engine — the divergence must NOT reproduce.
	art := NewArtifact(shrunk.Scenario, cfg, *FindViolation(shrunk.Report, *caught), shrunk)
	if art.Check.EditChainLen != shrunk.Config.EditChainLen {
		t.Errorf("artifact records chain length %d, shrinker found %d", art.Check.EditChainLen, shrunk.Config.EditChainLen)
	}
	var buf bytes.Buffer
	if err := art.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadArtifact(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.CheckConfig().EditChainLen != art.Check.EditChainLen {
		t.Errorf("chain length lost in round trip: %d vs %d", back.CheckConfig().EditChainLen, art.Check.EditChainLen)
	}
	replayRep, reproduced, err := back.Replay()
	if err != nil {
		t.Fatal(err)
	}
	if reproduced {
		t.Errorf("replay against the healthy engine reproduced the mutation's divergence: %v", replayRep.Violations)
	}
}

// Loosening high-buffer IBN rungs is invisible, but *tightening* them
// — here: collapsing the bound at depths above the platform's — breaks
// buffer monotonicity and must be classified NonMonotone.
func TestMutationNonMonotoneBufferIsCaught(t *testing.T) {
	sc := didacticScenario()
	calls := 0
	rep, err := Check(sc, CheckConfig{
		Seed: 1,
		mutate: func(m core.Method, flow int, r noc.Cycles) noc.Cycles {
			if m != core.IBN || flow != 2 {
				return r
			}
			// Each successive probe (the monotonicity ladder queries
			// ascending depths in order) gets an extra 40 cycles shaved.
			// The didactic IBN rungs for flow 2 rise by under 40 across
			// some step of the ladder, so the mutated sequence must
			// invert there while staying positive.
			calls++
			return r - noc.Cycles(40*calls)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range rep.Violations {
		if v.Class == NonMonotone && v.Invariant == "IBN-monotone-in-buf" {
			return
		}
	}
	t.Fatalf("non-monotone IBN went undetected; violations: %v", rep.Violations)
}
