package oracle

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"wormnoc/internal/core"
	"wormnoc/internal/exhaustive"
	"wormnoc/internal/noc"
	"wormnoc/internal/parallel"
	"wormnoc/internal/sim"
	"wormnoc/internal/traffic"
)

// CheckConfig parameterises one invariant check of a scenario. The zero
// value selects a budget suited to fuzzing many scenarios; raise
// Duration/Restarts/ProbesPerFlow for a harder adversary.
type CheckConfig struct {
	// Seed drives every random choice of the check: each flow's phasing
	// search receives its own *rand.Rand seeded deterministically from
	// it (see DeriveSeed), so a violation replays from (scenario, Seed)
	// alone.
	Seed int64
	// Duration is the simulation horizon per phasing probe (default
	// 12_000 cycles).
	Duration noc.Cycles
	// Restarts, RefineSteps and ProbesPerFlow tune the per-flow phasing
	// search (defaults 2, 1, 4; see sim.SearchConfig).
	Restarts, RefineSteps, ProbesPerFlow int
	// Workers bounds the fan-out over attacked flows (0 = all CPUs).
	Workers int
	// ExtraBufDepths, when non-empty, replaces the default buffer-depth
	// ladder probed by the monotonicity invariant (the platform's depth
	// plus +1, ×2 and +8 by default). Depths are probed in ascending
	// order.
	ExtraBufDepths []int
	// EditChainLen is the length of the random edit chain the
	// incremental-divergence invariant replays against the scenario
	// (default DefaultEditChainLen). Negative disables the replay.
	EditChainLen int
	// ExhaustiveStates, when positive, arms the explicit-state backend:
	// scenarios whose full phasing grid fits this many states (and the
	// structural limits of internal/exhaustive) are exhaustively
	// enumerated and held to the chain search <= exhaustive <= IBN <=
	// XLWX, with the search-vs-exhaustive gap reported in
	// Report.Exhaustive. Zero disables the backend — it only pays off on
	// deliberately tiny scenarios (see GenConfig for the knobs that keep
	// grids small). Scenarios out of reach are skipped with a Note,
	// never silently.
	ExhaustiveStates int64
	// ExhaustiveReduce selects the state-space reductions the backend
	// explores under (see exhaustive.Reduction). The zero value,
	// exhaustive.ReduceAll, applies both proof-preserving reductions —
	// the budget check above compares ExhaustiveStates against the
	// REDUCED size, so scenarios whose raw grid is out of reach still
	// get proofs when their reduced space fits. The other modes exist
	// for differential validation (`nocfuzz exhaust -reduce=...`).
	ExhaustiveReduce exhaustive.Reduction

	// mutate, when non-nil, rewrites every analytic bound before the
	// invariants see it. It exists solely for the mutation self-test:
	// deliberately corrupting a bound must make the oracle report a
	// violation, proving the invariants have teeth. Never set on real
	// verification runs (it is unexported and unserialised on purpose).
	mutate func(m core.Method, flow int, r noc.Cycles) noc.Cycles
}

func (c *CheckConfig) setDefaults() {
	if c.Duration <= 0 {
		c.Duration = 12_000
	}
	if c.Restarts <= 0 {
		c.Restarts = 2
	}
	if c.RefineSteps <= 0 {
		c.RefineSteps = 1
	}
	if c.ProbesPerFlow <= 0 {
		c.ProbesPerFlow = 4
	}
	if c.EditChainLen == 0 {
		c.EditChainLen = DefaultEditChainLen
	}
}

// Class partitions everything the oracle can detect.
type Class int

const (
	// Unsound: an observed latency exceeded a bound the analysis
	// declared safe. The most severe class — for XLWX/IBN it falsifies
	// the paper's claims (or, far more likely, this reproduction).
	Unsound Class = iota
	// Inconsistent: the analyses disagree where they must not —
	// R_IBN > R_XLWX, or a flow XLWX schedules that IBN rejects.
	Inconsistent
	// NonMonotone: an IBN bound tightened when buffers grew,
	// contradicting Equation 6's monotone buffer term.
	NonMonotone
	// NonDeterministic: rebuilding the engine changed a result.
	NonDeterministic
	// Divergent: the event-driven simulation engine disagreed with the
	// retained cycle-scanning reference engine (or a reused Engine
	// disagreed with a fresh one) when replaying a worst-case phasing.
	// The two engines are bit-identical by construction; any divergence
	// is a simulator bug that silently poisons every sim-based
	// invariant, so it is reported as a violation in its own class.
	Divergent
	// IncrementalDivergent: the delta-aware incremental analysis engine
	// produced a result that is not bit-identical to a from-scratch
	// analysis of the same edited system, somewhere along a random edit
	// chain. Warm-started fixed points are only admissible because they
	// converge to the same point as cold ones; any divergence is an
	// invalidation or warm-start bug in internal/core's Incremental.
	IncrementalDivergent
	// ExhaustiveDivergent: the explicit-state backend (internal/
	// exhaustive) falsified its chain on a small scenario — the
	// randomised search exceeded the supposedly complete enumeration
	// (search<=exhaustive), the true in-class worst case exceeded a
	// declared-safe IBN/XLWX bound (exhaustive<=IBN, exhaustive<=XLWX),
	// or a schedulable flow left packets unfinished a deadline past
	// release (exhaustive-censor-free). The first invariant indicts the
	// enumeration itself; the others are ground-truth unsoundness
	// evidence, stronger than a sampled attack because the whole phasing
	// class was checked.
	ExhaustiveDivergent
	// KnownOptimism: an observed latency exceeded an SB or SLA bound.
	// This is the multi-point progressive blocking effect those
	// analyses miss — expected behaviour, reported as a finding rather
	// than a violation.
	KnownOptimism
)

// String names the class.
func (c Class) String() string {
	switch c {
	case Unsound:
		return "unsound"
	case Inconsistent:
		return "inconsistent"
	case NonMonotone:
		return "non-monotone"
	case NonDeterministic:
		return "non-deterministic"
	case Divergent:
		return "divergent-sim"
	case IncrementalDivergent:
		return "incremental-divergent"
	case ExhaustiveDivergent:
		return "exhaustive-divergent"
	case KnownOptimism:
		return "known-optimism"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// parseClass is the inverse of Class.String, used by artifact replay.
func parseClass(s string) (Class, error) {
	for _, c := range []Class{Unsound, Inconsistent, NonMonotone, NonDeterministic, Divergent, IncrementalDivergent, ExhaustiveDivergent, KnownOptimism} {
		if c.String() == s {
			return c, nil
		}
	}
	return 0, fmt.Errorf("oracle: unknown violation class %q", s)
}

// Violation is one invariant breach (or, for KnownOptimism, one
// classified expected-optimism finding).
type Violation struct {
	// Class classifies the breach.
	Class Class
	// Invariant names the checked property, e.g. "sim<=IBN".
	Invariant string
	// Method is the analysis whose bound is implicated.
	Method core.Method
	// Flow indexes the affected flow in the scenario's flow set.
	Flow int
	// Bound and Observed are the two sides of the failed comparison (for
	// sim-based invariants: the analytic bound and the observed
	// latency; for analytic cross-checks: the two bounds).
	Bound, Observed noc.Cycles
	// Offsets, for sim-based breaches, is the release phasing that
	// exhibits the observed latency.
	Offsets []noc.Cycles
	// BufA and BufB, for monotonicity breaches, are the two buffer
	// depths compared (bound at BufB < bound at BufA despite BufB>BufA).
	BufA, BufB int
	// Detail is a human-readable one-liner.
	Detail string
}

func (v Violation) String() string {
	return fmt.Sprintf("[%s] %s: flow %d (%s): %s", v.Class, v.Invariant, v.Flow, v.Method, v.Detail)
}

// Report is the outcome of checking one scenario.
type Report struct {
	// Scenario is the checked subject.
	Scenario *Scenario
	// Methods lists every analysis that was run (all registered ones).
	Methods []core.Method
	// Violations holds invariant breaches, deterministically ordered.
	// Empty means the scenario passed.
	Violations []Violation
	// Findings holds the KnownOptimism classifications: observed MPB
	// latencies beyond the unsafe SB/SLA bounds.
	Findings []Violation
	// FlowsAttacked counts flows whose bounds were adversarially
	// searched; SimRuns counts the simulations spent doing it.
	FlowsAttacked, SimRuns int
	// Exhaustive, when the explicit-state backend ran (see
	// CheckConfig.ExhaustiveStates), reports its coverage and the
	// per-flow search-vs-exhaustive gap. Nil when the backend was
	// disabled or the scenario was out of its reach (a Note says which).
	Exhaustive *ExhaustiveReport
	// Notes records checks that were skipped and why (e.g. the sim
	// attack on a platform outside Equation 1's validity region).
	Notes []string
}

// unsafeUnderMPB marks the analyses that are documented to produce
// optimistic bounds in multi-point progressive blocking scenarios;
// observed latencies beyond their bounds are classified KnownOptimism
// instead of Unsound.
var unsafeUnderMPB = map[core.Method]bool{core.SB: true, core.SLA: true}

// Check runs every registered analysis over the scenario, attacks the
// bounds with the simulator's phasing search and evaluates the
// invariant suite. It is deterministic in (sc, cfg).
func Check(sc *Scenario, cfg CheckConfig) (*Report, error) {
	cfg.setDefaults()
	sys, err := sc.System()
	if err != nil {
		return nil, fmt.Errorf("oracle: materialising scenario: %w", err)
	}
	methods := core.Methods()
	rep := &Report{Scenario: sc, Methods: methods}

	bound := func(m core.Method, flow int, r noc.Cycles) noc.Cycles {
		if cfg.mutate != nil {
			return cfg.mutate(m, flow, r)
		}
		return r
	}

	// One engine serves every analysis; a second, independently built
	// engine backs the determinism invariant.
	eng := core.NewEngine(sys)
	results := make(map[core.Method]*core.Result, len(methods))
	for _, m := range methods {
		res, err := eng.Analyze(core.Options{Method: m})
		if err != nil {
			return nil, fmt.Errorf("oracle: %s analysis: %w", m, err)
		}
		results[m] = res
	}

	// Invariant: analysis determinism across engine rebuilds. The
	// comparison runs on raw results — a bound mutation must not mask
	// (or fake) nondeterminism.
	eng2 := core.NewEngine(sys)
	for _, m := range methods {
		again, err := eng2.Analyze(core.Options{Method: m})
		if err != nil {
			return nil, fmt.Errorf("oracle: %s re-analysis: %w", m, err)
		}
		for i := range again.Flows {
			if again.Flows[i] != results[m].Flows[i] {
				rep.Violations = append(rep.Violations, Violation{
					Class:     NonDeterministic,
					Invariant: "rebuild-deterministic",
					Method:    m,
					Flow:      i,
					Bound:     results[m].Flows[i].R,
					Observed:  again.Flows[i].R,
					Detail: fmt.Sprintf("engine rebuild changed the result: %+v vs %+v",
						results[m].Flows[i], again.Flows[i]),
				})
			}
		}
	}

	// Invariant: IBN is never looser than XLWX (Equation 8 takes a min),
	// and never loses a flow XLWX schedules.
	xlwx, ibn := results[core.XLWX], results[core.IBN]
	if xlwx == nil || ibn == nil {
		return nil, fmt.Errorf("oracle: XLWX and IBN must be registered (got %v)", methods)
	}
	for i := range xlwx.Flows {
		if xlwx.Flows[i].Status != core.Schedulable {
			continue
		}
		bx := bound(core.XLWX, i, xlwx.Flows[i].R)
		if ibn.Flows[i].Status != core.Schedulable {
			rep.Violations = append(rep.Violations, Violation{
				Class:     Inconsistent,
				Invariant: "IBN<=XLWX",
				Method:    core.IBN,
				Flow:      i,
				Bound:     bx,
				Detail: fmt.Sprintf("XLWX schedulable (R=%d) but IBN reports %s",
					bx, ibn.Flows[i].Status),
			})
			continue
		}
		bi := bound(core.IBN, i, ibn.Flows[i].R)
		if bi > bx {
			rep.Violations = append(rep.Violations, Violation{
				Class:     Inconsistent,
				Invariant: "IBN<=XLWX",
				Method:    core.IBN,
				Flow:      i,
				Bound:     bx,
				Observed:  bi,
				Detail:    fmt.Sprintf("R_IBN %d > R_XLWX %d", bi, bx),
			})
		}
	}

	// Invariant: the IBN bound is monotone in the buffer depth.
	rep.Violations = append(rep.Violations, checkBufferMonotone(sc, sys, eng, cfg, bound)...)

	// Invariant: the delta-aware incremental engine is bit-identical to
	// from-scratch analysis at every step of a random edit chain. Runs
	// after the monotonicity ladder so the bound hook's call order over
	// the base system stays stable for the mutation self-tests.
	if cfg.EditChainLen > 0 {
		vs, err := checkIncrementalDivergent(sys, methods, cfg, bound)
		if err != nil {
			return nil, err
		}
		rep.Violations = append(rep.Violations, vs...)
	} else {
		rep.Notes = append(rep.Notes, "incremental replay skipped: EditChainLen < 0")
	}

	// The sim-vs-analysis invariants only hold inside Equation 1's
	// validity region: 1-flit buffers cannot cover the credit round
	// trip, so even uncontended packets exceed C there (see
	// MinBufDepth). The analytic invariants above still apply; only the
	// adversarial attack is skipped, and loudly.
	if sc.Doc.Mesh.BufDepth < MinBufDepth {
		rep.Notes = append(rep.Notes, fmt.Sprintf(
			"sim attack skipped: buf=%d is below Equation 1's validity floor of %d",
			sc.Doc.Mesh.BufDepth, MinBufDepth))
		sortViolations(rep.Violations)
		return rep, nil
	}

	// Adversarial attack: search the worst phasing of every flow some
	// analysis bounded, fanning out on the shared worker pool. Each
	// search owns a rand.Rand derived from cfg.Seed and its flow index.
	type attack struct {
		worst   noc.Cycles
		offsets []noc.Cycles
		runs    int
		skipped bool
	}
	anyJitter := false
	for i := 0; i < sys.NumFlows(); i++ {
		if sys.Flow(i).Jitter > 0 {
			anyJitter = true
		}
	}
	attacks := make([]attack, sys.NumFlows())
	var mu sync.Mutex
	runner := &parallel.Runner{Workers: cfg.Workers}
	err = runner.Run(sys.NumFlows(), func(target int) error {
		bounded := false
		for _, m := range methods {
			if results[m].Flows[target].Status == core.Schedulable {
				bounded = true
				break
			}
		}
		if !bounded {
			mu.Lock()
			attacks[target].skipped = true
			mu.Unlock()
			return nil
		}
		search, err := sim.SearchWorstCase(sys, sim.SearchConfig{
			Base: sim.Config{
				Duration:     cfg.Duration,
				InjectJitter: anyJitter,
				JitterSeed:   DeriveSeed(cfg.Seed, int64(target)*2+1),
			},
			Target:        target,
			Restarts:      cfg.Restarts,
			RefineSteps:   cfg.RefineSteps,
			ProbesPerFlow: cfg.ProbesPerFlow,
			// The check already fans out across target flows (and a
			// campaign across scenarios); serial probe batches avoid
			// stacking a third pool on the same cores.
			Workers: 1,
			Rand:    rand.New(rand.NewSource(DeriveSeed(cfg.Seed, int64(target)*2))),
		})
		if err != nil {
			return err
		}
		mu.Lock()
		attacks[target] = attack{worst: search.Worst, offsets: search.Offsets, runs: search.Runs}
		mu.Unlock()
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("oracle: phasing search: %w", err)
	}

	// Invariant: simulation-engine agreement. Replay every attacked
	// flow's worst phasing through the event-driven engine (fresh and
	// reused) and the retained cycle-scanning reference engine; the
	// three must agree bit for bit, or every sim-based verdict above is
	// built on sand (DESIGN.md §10).
	simEng := sim.NewEngine(sys)
	for target, at := range attacks {
		if at.skipped {
			continue
		}
		rep.Violations = append(rep.Violations,
			checkEngineAgreement(sys, simEng, target, sim.Config{
				Duration:     cfg.Duration,
				Offsets:      at.offsets,
				InjectJitter: anyJitter,
				JitterSeed:   DeriveSeed(cfg.Seed, int64(target)*2+1),
			})...)
		rep.SimRuns += 3
	}

	for target, at := range attacks {
		if at.skipped {
			continue
		}
		rep.FlowsAttacked++
		rep.SimRuns += at.runs
		if at.worst < 0 {
			// No packet of the target completed within the horizon —
			// nothing to compare (the horizon is the caller's budget
			// knob, not an invariant).
			continue
		}
		for _, m := range methods {
			fr := results[m].Flows[target]
			if fr.Status != core.Schedulable {
				continue
			}
			b := bound(m, target, fr.R)
			if at.worst <= b {
				continue
			}
			v := Violation{
				Invariant: "sim<=" + m.String(),
				Method:    m,
				Flow:      target,
				Bound:     b,
				Observed:  at.worst,
				Offsets:   append([]noc.Cycles(nil), at.offsets...),
				Detail:    fmt.Sprintf("observed latency %d exceeds bound %d by %d", at.worst, b, at.worst-b),
			}
			if unsafeUnderMPB[m] {
				v.Class = KnownOptimism
				rep.Findings = append(rep.Findings, v)
			} else {
				v.Class = Unsound
				rep.Violations = append(rep.Violations, v)
			}
		}
	}

	// Invariant chain of the explicit-state backend: on scenarios small
	// enough to enumerate, upgrade "no violation found" to "provably
	// none exists in the canonical phasing class" — and hold the
	// randomised search to the enumeration (search<=exhaustive) while
	// holding the declared-safe bounds to the true worst case
	// (exhaustive<=IBN<=XLWX, plus censor-freedom).
	if cfg.ExhaustiveStates > 0 {
		vs, er, notes, runs, err := checkExhaustive(sys, results, cfg, bound)
		if err != nil {
			return nil, err
		}
		rep.Violations = append(rep.Violations, vs...)
		rep.Exhaustive = er
		rep.Notes = append(rep.Notes, notes...)
		rep.SimRuns += runs
	}

	sortViolations(rep.Violations)
	sortViolations(rep.Findings)
	return rep, nil
}

// checkEngineAgreement replays one phasing through the retained
// reference engine, a fresh event-driven run and the reused engine, and
// reports a Divergent violation per flow whose observed worst latency
// differs (plus one if the aggregate counters disagree).
func checkEngineAgreement(sys *traffic.System, reused *sim.Engine, target int, runCfg sim.Config) []Violation {
	ref, err := sim.RunReference(sys, runCfg)
	if err != nil {
		return []Violation{divergence(target, -1, -1,
			fmt.Sprintf("reference engine failed on replay: %v", err))}
	}
	fresh, err := sim.Run(sys, runCfg)
	if err != nil {
		return []Violation{divergence(target, -1, -1,
			fmt.Sprintf("event-driven engine failed on replay: %v", err))}
	}
	warm, err := reused.Run(runCfg)
	if err != nil {
		return []Violation{divergence(target, -1, -1,
			fmt.Sprintf("reused event-driven engine failed on replay: %v", err))}
	}
	var out []Violation
	for i := range ref.WorstLatency {
		if fresh.WorstLatency[i] != ref.WorstLatency[i] {
			out = append(out, divergence(i, ref.WorstLatency[i], fresh.WorstLatency[i],
				fmt.Sprintf("event-driven engine observed %d, reference %d (replaying flow %d's worst phasing)",
					fresh.WorstLatency[i], ref.WorstLatency[i], target)))
		} else if warm.WorstLatency[i] != ref.WorstLatency[i] {
			out = append(out, divergence(i, ref.WorstLatency[i], warm.WorstLatency[i],
				fmt.Sprintf("reused engine observed %d, reference %d (replaying flow %d's worst phasing)",
					warm.WorstLatency[i], ref.WorstLatency[i], target)))
		}
		if fresh.Completed[i] != ref.Completed[i] || fresh.Released[i] != ref.Released[i] ||
			warm.Completed[i] != ref.Completed[i] || warm.Released[i] != ref.Released[i] {
			out = append(out, divergence(i, noc.Cycles(ref.Completed[i]), noc.Cycles(fresh.Completed[i]),
				fmt.Sprintf("completion/release counters diverge: reference %d/%d, fresh %d/%d, reused %d/%d",
					ref.Completed[i], ref.Released[i], fresh.Completed[i], fresh.Released[i],
					warm.Completed[i], warm.Released[i])))
		}
	}
	if fresh.InFlight != ref.InFlight || warm.InFlight != ref.InFlight {
		out = append(out, divergence(target, noc.Cycles(ref.InFlight), noc.Cycles(fresh.InFlight),
			fmt.Sprintf("in-flight totals diverge: reference %d, fresh %d, reused %d",
				ref.InFlight, fresh.InFlight, warm.InFlight)))
	}
	for i := range out {
		out[i].Offsets = append([]noc.Cycles(nil), runCfg.Offsets...)
	}
	return out
}

func divergence(flow int, bound, observed noc.Cycles, detail string) Violation {
	return Violation{
		Class:     Divergent,
		Invariant: "sim-engines-agree",
		Flow:      flow,
		Bound:     bound,
		Observed:  observed,
		Detail:    detail,
	}
}

// checkBufferMonotone probes the IBN bound over an ascending
// buffer-depth ladder: shrinking buf(Ξ) must never loosen — and growing
// it must never tighten — the bound, because Equation 6's buffered
// interference is non-decreasing in the depth.
func checkBufferMonotone(sc *Scenario, sys *traffic.System, eng *core.Engine, cfg CheckConfig,
	bound func(core.Method, int, noc.Cycles) noc.Cycles) []Violation {

	base := sc.Doc.Mesh.BufDepth
	depths := cfg.ExtraBufDepths
	if len(depths) == 0 {
		depths = []int{base, base + 1, base * 2, base + 8}
	}
	depths = append([]int(nil), depths...)
	sort.Ints(depths)
	var out []Violation
	prev := make([]noc.Cycles, sys.NumFlows())
	prevDepth := make([]int, sys.NumFlows())
	for i := range prev {
		prev[i] = -1
	}
	seen := -1
	for _, d := range depths {
		if d <= 0 || d == seen {
			continue
		}
		seen = d
		res, err := eng.Analyze(core.Options{Method: core.IBN, BufDepth: d})
		if err != nil {
			out = append(out, Violation{
				Class:     NonDeterministic,
				Invariant: "IBN-monotone-in-buf",
				Method:    core.IBN,
				Detail:    fmt.Sprintf("analysis failed at buf=%d: %v", d, err),
			})
			return out
		}
		for i := range res.Flows {
			if res.Flows[i].Status != core.Schedulable {
				continue
			}
			r := bound(core.IBN, i, res.Flows[i].R)
			if prev[i] >= 0 && r < prev[i] {
				out = append(out, Violation{
					Class:     NonMonotone,
					Invariant: "IBN-monotone-in-buf",
					Method:    core.IBN,
					Flow:      i,
					Bound:     prev[i],
					Observed:  r,
					BufA:      prevDepth[i],
					BufB:      d,
					Detail: fmt.Sprintf("R_IBN dropped from %d (buf=%d) to %d (buf=%d)",
						prev[i], prevDepth[i], r, d),
				})
			}
			prev[i] = r
			prevDepth[i] = d
		}
	}
	return out
}

func sortViolations(vs []Violation) {
	sort.Slice(vs, func(a, b int) bool {
		if vs[a].Class != vs[b].Class {
			return vs[a].Class < vs[b].Class
		}
		if vs[a].Invariant != vs[b].Invariant {
			return vs[a].Invariant < vs[b].Invariant
		}
		if vs[a].Flow != vs[b].Flow {
			return vs[a].Flow < vs[b].Flow
		}
		return vs[a].Method < vs[b].Method
	})
}
