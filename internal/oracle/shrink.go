package oracle

import (
	"fmt"

	"wormnoc/internal/traffic"
)

// DefaultShrinkBudget caps the number of candidate re-checks one Shrink
// may spend. Each candidate costs a full Check (analyses + phasing
// searches), so the budget bounds shrinking wall time.
const DefaultShrinkBudget = 160

// ShrinkResult is the outcome of minimising a violating scenario.
type ShrinkResult struct {
	// Scenario is the minimal violating scenario found.
	Scenario *Scenario
	// Report is the check report of that minimal scenario (it contains
	// at least one violation matching the shrunk class and invariant).
	Report *Report
	// Config is the check configuration the minimal scenario violates
	// under, with defaults materialised. It starts as the caller's cfg;
	// for incremental-divergence violations Shrink additionally walks
	// EditChainLen down, so artifacts record the shortest edit chain
	// that still diverges.
	Config CheckConfig
	// Attempts counts candidate scenarios checked (including rejected
	// ones); Reductions counts the accepted ones.
	Attempts, Reductions int
}

// Shrink greedily minimises a scenario while it keeps violating the
// same invariant (class + invariant name) as the given violation:
// flows are dropped one at a time, the mesh is cropped to the bounding
// box of the surviving endpoints, the buffer depth is walked down,
// periods are halved and — for incremental-divergence violations — the
// replayed edit chain is shortened. Every candidate reduction is
// verified with a full Check under the current configuration;
// reductions that lose the violation are rolled back. The process is
// deterministic in (sc, cfg) and stops at a fixpoint or when budget
// candidate checks (DefaultShrinkBudget if budget <= 0) have been
// spent.
func Shrink(sc *Scenario, v Violation, cfg CheckConfig, budget int) (*ShrinkResult, error) {
	if budget <= 0 {
		budget = DefaultShrinkBudget
	}
	// Materialise defaults so the chain-length walk (and the recorded
	// Config) works on effective values, not zero placeholders.
	cfg.setDefaults()
	cur, curCfg := sc, cfg
	curRep, err := Check(cur, curCfg)
	if err != nil {
		return nil, err
	}
	if FindViolation(curRep, v) == nil {
		return nil, fmt.Errorf("oracle: scenario does not exhibit %s/%s, nothing to shrink", v.Class, v.Invariant)
	}
	res := &ShrinkResult{Scenario: cur, Report: curRep, Config: curCfg, Attempts: 1}

	// try checks one candidate scenario/config pair; on success it
	// becomes the new current state. Returns false once the budget is
	// exhausted.
	try := func(cand *Scenario, candCfg CheckConfig) (bool, error) {
		if res.Attempts >= budget {
			return false, nil
		}
		res.Attempts++
		rep, err := Check(cand, candCfg)
		if err != nil {
			// A candidate reduction can produce an unmaterialisable
			// document (e.g. a crop bug); treat it as "not smaller"
			// rather than aborting the shrink.
			return false, nil
		}
		if FindViolation(rep, v) == nil {
			return false, nil
		}
		cur, curRep, curCfg = cand, rep, candCfg
		res.Scenario, res.Report, res.Config = cand, rep, candCfg
		res.Reductions++
		return true, nil
	}

	for pass := 0; pass < 16; pass++ {
		reduced := false

		// Drop flows, highest index first so earlier indices stay
		// stable while iterating.
		for i := len(cur.Doc.Flows) - 1; i >= 0 && len(cur.Doc.Flows) > 1; i-- {
			cand := cloneScenario(cur)
			cand.Doc.Flows = append(cand.Doc.Flows[:i], cand.Doc.Flows[i+1:]...)
			ok, err := try(cand, curCfg)
			if err != nil {
				return nil, err
			}
			reduced = reduced || ok
		}

		// Crop the mesh to the bounding box of the surviving endpoints
		// (dimension-order routes never leave the rectangle spanned by
		// their endpoints, so the cropped links were never used).
		if cand, changed := cropMesh(cur); changed {
			ok, err := try(cand, curCfg)
			if err != nil {
				return nil, err
			}
			reduced = reduced || ok
		}

		// Walk the buffer depth down: halve, then decrement. The floor
		// is MinBufDepth, not 1 — below it the sim attack is skipped,
		// so a sim-based violation could never survive the reduction
		// anyway, and analytic ones must stay comparable.
		for cur.Doc.Mesh.BufDepth > MinBufDepth {
			next := cur.Doc.Mesh.BufDepth / 2
			if next < MinBufDepth {
				next = MinBufDepth
			}
			cand := cloneScenario(cur)
			cand.Doc.Mesh.BufDepth = next
			ok, err := try(cand, curCfg)
			if err != nil {
				return nil, err
			}
			if !ok {
				break
			}
			reduced = true
		}
		if cur.Doc.Mesh.BufDepth > MinBufDepth {
			cand := cloneScenario(cur)
			cand.Doc.Mesh.BufDepth--
			ok, err := try(cand, curCfg)
			if err != nil {
				return nil, err
			}
			reduced = reduced || ok
		}

		// Halve every period (deadlines track periods; jitter is
		// clamped so the flow stays valid).
		if cand, changed := halvePeriods(cur); changed {
			ok, err := try(cand, curCfg)
			if err != nil {
				return nil, err
			}
			reduced = reduced || ok
		}

		// Shorten the replayed edit chain (halve, then decrement). Only
		// attempted for incremental-divergence violations — the other
		// invariants never read EditChainLen, so shortening it could not
		// lose them and would burn budget on no-op reductions.
		if v.Class == IncrementalDivergent {
			for curCfg.EditChainLen > 1 {
				candCfg := curCfg
				candCfg.EditChainLen = curCfg.EditChainLen / 2
				ok, err := try(cur, candCfg)
				if err != nil {
					return nil, err
				}
				if !ok {
					break
				}
				reduced = true
			}
			if curCfg.EditChainLen > 1 {
				candCfg := curCfg
				candCfg.EditChainLen--
				ok, err := try(cur, candCfg)
				if err != nil {
					return nil, err
				}
				reduced = reduced || ok
			}
		}

		if !reduced || res.Attempts >= budget {
			break
		}
	}
	return res, nil
}

// FindViolation returns the first violation of rep matching want's
// class and invariant name, or nil.
func FindViolation(rep *Report, want Violation) *Violation {
	for i := range rep.Violations {
		if rep.Violations[i].Class == want.Class && rep.Violations[i].Invariant == want.Invariant {
			return &rep.Violations[i]
		}
	}
	return nil
}

func cloneScenario(sc *Scenario) *Scenario {
	out := &Scenario{Seed: sc.Seed, Doc: sc.Doc}
	out.Doc.Flows = append([]traffic.FlowSpec(nil), sc.Doc.Flows...)
	return out
}

// cropMesh shrinks the mesh to the bounding box of every flow endpoint,
// remapping node ids. It reports whether the candidate is smaller.
func cropMesh(sc *Scenario) (*Scenario, bool) {
	w := sc.Doc.Mesh.Width
	minX, minY := w, sc.Doc.Mesh.Height
	maxX, maxY := 0, 0
	for _, f := range sc.Doc.Flows {
		for _, n := range []int{f.Src, f.Dst} {
			x, y := n%w, n/w
			if x < minX {
				minX = x
			}
			if x > maxX {
				maxX = x
			}
			if y < minY {
				minY = y
			}
			if y > maxY {
				maxY = y
			}
		}
	}
	nw, nh := maxX-minX+1, maxY-minY+1
	if nw*nh < 2 || (nw == sc.Doc.Mesh.Width && nh == sc.Doc.Mesh.Height) {
		return sc, false
	}
	out := cloneScenario(sc)
	out.Doc.Mesh.Width, out.Doc.Mesh.Height = nw, nh
	for i := range out.Doc.Flows {
		f := &out.Doc.Flows[i]
		f.Src = (f.Src%w - minX) + (f.Src/w-minY)*nw
		f.Dst = (f.Dst%w - minX) + (f.Dst/w-minY)*nw
	}
	return out, true
}

// halvePeriods halves every flow's period and deadline (floored at 2
// cycles) and clamps jitter below the new period. It reports whether
// anything changed.
func halvePeriods(sc *Scenario) (*Scenario, bool) {
	out := cloneScenario(sc)
	changed := false
	for i := range out.Doc.Flows {
		f := &out.Doc.Flows[i]
		if f.Period < 4 {
			continue
		}
		f.Period /= 2
		f.Deadline /= 2
		if f.Deadline < 1 {
			f.Deadline = 1
		}
		if f.Deadline > f.Period {
			f.Deadline = f.Period
		}
		if f.Jitter > f.Period/4 {
			f.Jitter = f.Period / 4
		}
		changed = true
	}
	return out, changed
}
