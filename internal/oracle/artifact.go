package oracle

import (
	"encoding/json"
	"fmt"
	"io"

	"wormnoc/internal/exhaustive"
	"wormnoc/internal/noc"
	"wormnoc/internal/traffic"
)

// ArtifactVersion tags the counterexample JSON schema.
const ArtifactVersion = 1

// Artifact is a replayable counterexample: the (shrunk) scenario, the
// check configuration that exhibits the violation, and the violation
// itself. Everything needed to reproduce is in the file — no process
// state, no global randomness.
type Artifact struct {
	Version int `json:"version"`
	// Seed is the generator seed of the originating scenario (before
	// shrinking), kept for provenance.
	Seed int64 `json:"seed"`
	// Scenario is the minimal platform + flow set.
	Scenario traffic.Document `json:"scenario"`
	// Check reproduces the adversarial budget the violation was found
	// under.
	Check CheckSpec `json:"check"`
	// Violation is the breach the scenario exhibits.
	Violation ViolationSpec `json:"violation"`
	// ShrinkAttempts and ShrinkReductions summarise the minimisation.
	ShrinkAttempts   int `json:"shrink_attempts,omitempty"`
	ShrinkReductions int `json:"shrink_reductions,omitempty"`
}

// CheckSpec is the serialised form of CheckConfig (the test-only bound
// mutation is deliberately not representable).
type CheckSpec struct {
	Seed          int64 `json:"seed"`
	Duration      int64 `json:"duration"`
	Restarts      int   `json:"restarts"`
	RefineSteps   int   `json:"refine_steps"`
	ProbesPerFlow int   `json:"probes_per_flow"`
	// EditChainLen records the replayed edit-chain length of the
	// incremental-divergence invariant (possibly shrunk below the
	// default); zero means the default and is omitted for
	// compatibility with artifacts written before the invariant
	// existed.
	EditChainLen int `json:"edit_chain_len,omitempty"`
	// ExhaustiveStates records the explicit-state backend's state
	// budget; zero (the backend disabled) is omitted for compatibility
	// with artifacts written before the backend existed.
	ExhaustiveStates int64 `json:"exhaustive_states,omitempty"`
	// ExhaustiveReduce records the backend's reduction mode by its flag
	// spelling ("none", "symmetry", "clusters"); empty means the
	// default, "all", and is omitted for compatibility with artifacts
	// written before the reductions existed.
	ExhaustiveReduce string `json:"exhaustive_reduce,omitempty"`
}

// ViolationSpec is the serialised form of Violation.
type ViolationSpec struct {
	Class     string  `json:"class"`
	Invariant string  `json:"invariant"`
	Method    string  `json:"method"`
	Flow      int     `json:"flow"`
	Bound     int64   `json:"bound"`
	Observed  int64   `json:"observed"`
	Offsets   []int64 `json:"offsets,omitempty"`
	BufA      int     `json:"buf_a,omitempty"`
	BufB      int     `json:"buf_b,omitempty"`
	Detail    string  `json:"detail,omitempty"`
}

// reduceSpec serialises a reduction mode for CheckSpec: the default
// (ReduceAll) stays empty so pre-reduction artifacts and new ones with
// default settings are byte-identical.
func reduceSpec(r exhaustive.Reduction) string {
	if r == exhaustive.ReduceAll {
		return ""
	}
	return r.String()
}

// parseReduceSpec is the inverse of reduceSpec.
func parseReduceSpec(s string) (exhaustive.Reduction, error) {
	if s == "" {
		return exhaustive.ReduceAll, nil
	}
	return exhaustive.ParseReduction(s)
}

// NewArtifact assembles a counterexample from a shrink result (or, with
// a nil shrink, straight from a violating scenario).
func NewArtifact(sc *Scenario, cfg CheckConfig, v Violation, shrink *ShrinkResult) *Artifact {
	if shrink != nil {
		// Record the configuration the shrunk scenario was last verified
		// under — Shrink may have walked EditChainLen down.
		cfg = shrink.Config
	}
	a := &Artifact{
		Version:  ArtifactVersion,
		Seed:     sc.Seed,
		Scenario: sc.Doc,
		Check: CheckSpec{
			Seed:             cfg.Seed,
			Duration:         int64(cfg.Duration),
			Restarts:         cfg.Restarts,
			RefineSteps:      cfg.RefineSteps,
			ProbesPerFlow:    cfg.ProbesPerFlow,
			EditChainLen:     cfg.EditChainLen,
			ExhaustiveStates: cfg.ExhaustiveStates,
			ExhaustiveReduce: reduceSpec(cfg.ExhaustiveReduce),
		},
		Violation: ViolationSpec{
			Class:     v.Class.String(),
			Invariant: v.Invariant,
			Method:    v.Method.String(),
			Flow:      v.Flow,
			Bound:     int64(v.Bound),
			Observed:  int64(v.Observed),
			BufA:      v.BufA,
			BufB:      v.BufB,
			Detail:    v.Detail,
		},
	}
	for _, off := range v.Offsets {
		a.Violation.Offsets = append(a.Violation.Offsets, int64(off))
	}
	if shrink != nil {
		a.Scenario = shrink.Scenario.Doc
		a.ShrinkAttempts = shrink.Attempts
		a.ShrinkReductions = shrink.Reductions
	}
	return a
}

// WriteJSON serialises the artifact, indented for human diffing.
func (a *Artifact) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(a)
}

// ReadArtifact parses a counterexample artifact.
func ReadArtifact(r io.Reader) (*Artifact, error) {
	var a Artifact
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&a); err != nil {
		return nil, fmt.Errorf("oracle: decoding artifact: %w", err)
	}
	if a.Version != ArtifactVersion {
		return nil, fmt.Errorf("oracle: artifact version %d, this build reads %d", a.Version, ArtifactVersion)
	}
	if _, err := parseClass(a.Violation.Class); err != nil {
		return nil, err
	}
	if _, err := parseReduceSpec(a.Check.ExhaustiveReduce); err != nil {
		return nil, fmt.Errorf("oracle: artifact check spec: %w", err)
	}
	if _, err := a.Scenario.System(); err != nil {
		return nil, fmt.Errorf("oracle: artifact scenario does not materialise: %w", err)
	}
	return &a, nil
}

// CheckConfig reconstructs the check configuration the artifact was
// found under.
func (a *Artifact) CheckConfig() CheckConfig {
	// ReadArtifact validated the reduce spec; an unparsable mode on a
	// hand-built Artifact falls back to the default, ReduceAll.
	reduce, _ := parseReduceSpec(a.Check.ExhaustiveReduce)
	return CheckConfig{
		Seed:             a.Check.Seed,
		Duration:         noc.Cycles(a.Check.Duration),
		Restarts:         a.Check.Restarts,
		RefineSteps:      a.Check.RefineSteps,
		ProbesPerFlow:    a.Check.ProbesPerFlow,
		EditChainLen:     a.Check.EditChainLen,
		ExhaustiveStates: a.Check.ExhaustiveStates,
		ExhaustiveReduce: reduce,
	}
}

// Replay re-runs the artifact's check on its stored scenario and
// reports whether a violation of the recorded class and invariant still
// reproduces. A nil violation with reproduced=false means the defect
// the artifact captured no longer exists (e.g. it has been fixed).
func (a *Artifact) Replay() (rep *Report, reproduced bool, err error) {
	class, err := parseClass(a.Violation.Class)
	if err != nil {
		return nil, false, err
	}
	sc := &Scenario{Seed: a.Seed, Doc: a.Scenario}
	rep, err = Check(sc, a.CheckConfig())
	if err != nil {
		return nil, false, err
	}
	v := FindViolation(rep, Violation{Class: class, Invariant: a.Violation.Invariant})
	return rep, v != nil, nil
}
