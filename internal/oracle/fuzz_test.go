package oracle

import "testing"

// FuzzOracleScenario plugs the whole generate → analyze → attack →
// invariant cycle into go's native fuzzer: any int64 is a valid
// scenario seed, so the fuzzer explores the scenario space directly.
// The check budget is kept small for throughput; cmd/nocfuzz and
// TestOracleRandomScenarios run the full-budget adversary.
func FuzzOracleScenario(f *testing.F) {
	for _, seed := range []int64{0, 1, 7, 14, 29, 42, 44, 1337, -1, 1 << 40} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		sc := Generate(seed, GenConfig{})
		rep, err := Check(sc, CheckConfig{
			Seed:          seed,
			Duration:      6_000,
			Restarts:      1,
			RefineSteps:   1,
			ProbesPerFlow: 2,
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, v := range rep.Violations {
			t.Errorf("seed %d (%s): %s", seed, sc, v.String())
		}
	})
}
