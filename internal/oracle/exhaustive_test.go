package oracle

import (
	"bytes"
	"strings"
	"testing"

	"wormnoc/internal/core"
	"wormnoc/internal/exhaustive"
	"wormnoc/internal/noc"
	"wormnoc/internal/traffic"
)

// tinyScenario is small enough for the explicit-state backend: a
// 2-node line, two flows sharing the whole route, grid of 8*20 = 160
// phasings. Both flows are IBN/XLWX-schedulable (the low-priority
// deadline is generous because the analytic bounds are conservative
// under shared-route interference), so the full chain
// search <= exhaustive <= IBN <= XLWX is exercised.
func tinyScenario() *Scenario {
	return &Scenario{Doc: buildDoc(
		traffic.MeshSpec{Width: 2, Height: 1, BufDepth: 4, LinkLatency: 1},
		[]traffic.Flow{
			{Name: "h", Priority: 1, Period: 8, Deadline: 8, Length: 2, Src: 0, Dst: 1},
			{Name: "l", Priority: 2, Period: 20, Deadline: 20, Length: 3, Src: 0, Dst: 1},
		})}
}

// A healthy tiny scenario must come back violation-free with a complete
// exhaustive report proving the chain, and — on a grid this small — a
// zero search-vs-exhaustive gap. The 160-phasing raw grid (8·20, one
// contention cluster) reduces to 160 − 7·19 = 27 shift-symmetry
// representatives, so the default mode proves the chain in 27 states
// while ReduceNone still enumerates all 160.
func TestCheckExhaustiveProvesChain(t *testing.T) {
	for _, tc := range []struct {
		name          string
		reduce        exhaustive.Reduction
		states, saved int64
	}{
		{"reduced", exhaustive.ReduceAll, 27, 133},
		{"raw", exhaustive.ReduceNone, 160, 0},
	} {
		t.Run(tc.name, func(t *testing.T) {
			rep, err := Check(tinyScenario(), CheckConfig{
				Seed: 1, ExhaustiveStates: 1 << 12, ExhaustiveReduce: tc.reduce})
			if err != nil {
				t.Fatal(err)
			}
			if len(rep.Violations) != 0 {
				t.Fatalf("healthy scenario reported violations: %v", rep.Violations)
			}
			ex := rep.Exhaustive
			if ex == nil {
				t.Fatalf("exhaustive backend did not run; notes: %v", rep.Notes)
			}
			if !ex.Complete || ex.Truncation != "" {
				t.Fatalf("reduced space not completely enumerated: %+v", ex)
			}
			if ex.GridSize != 160 || ex.States != tc.states {
				t.Fatalf("grid/states = %d/%d, want 160/%d", ex.GridSize, ex.States, tc.states)
			}
			if ex.ReducedGridSize != tc.states || ex.StatesSaved != tc.saved ||
				ex.Reduction != tc.reduce.String() || ex.Clusters != 1 {
				t.Fatalf("reduction accounting %+v, want reduced %d saved %d mode %q clusters 1",
					ex, tc.states, tc.saved, tc.reduce)
			}
			if len(ex.Gaps) != 2 {
				t.Fatalf("gap metric covers %d flows, want 2", len(ex.Gaps))
			}
			for _, g := range ex.Gaps {
				if !g.Proven {
					t.Errorf("flow %d not proven on a complete uncensored enumeration", g.Flow)
				}
				if g.ViaReduction != (tc.saved > 0) {
					t.Errorf("flow %d: ViaReduction = %v under mode %q", g.Flow, g.ViaReduction, tc.reduce)
				}
				if g.Gap != 0 {
					t.Errorf("flow %d: search left a gap of %d on a 160-phasing grid (search %d, exhaustive %d)",
						g.Flow, g.Gap, g.Search, g.Exhaustive)
				}
			}
		})
	}
}

// The budget gate compares against the reduced enumeration size: a
// budget far below the 160-phasing raw grid but above the 27
// representatives must still yield a complete proof — the scenarios the
// reductions exist for. The same budget under ReduceNone skips.
func TestCheckExhaustiveBudgetUsesReducedSize(t *testing.T) {
	rep, err := Check(tinyScenario(), CheckConfig{Seed: 1, ExhaustiveStates: 40})
	if err != nil {
		t.Fatal(err)
	}
	ex := rep.Exhaustive
	if ex == nil {
		t.Fatalf("reduced space of 27 skipped under budget 40; notes: %v", rep.Notes)
	}
	if !ex.Complete || ex.States != 27 || ex.StatesSaved != 133 {
		t.Fatalf("expected a complete 27-state proof via reduction, got %+v", ex)
	}

	rep, err = Check(tinyScenario(), CheckConfig{
		Seed: 1, ExhaustiveStates: 40, ExhaustiveReduce: exhaustive.ReduceNone})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Exhaustive != nil {
		t.Fatal("unreduced 160-phasing grid ran under budget 40")
	}
}

// Scenarios out of the backend's reach are skipped with an explicit
// note, never silently and never with a fake report.
func TestCheckExhaustiveSkipsLoudly(t *testing.T) {
	// Budget below even the reduced space of 27 representatives. The
	// skip note must carry both the reduced and the raw grid size so
	// "still too big after reduction" is auditable.
	rep, err := Check(tinyScenario(), CheckConfig{Seed: 1, ExhaustiveStates: 10})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Exhaustive != nil {
		t.Fatal("over-budget grid still produced an exhaustive report")
	}
	found := false
	for _, n := range rep.Notes {
		if strings.Contains(n, "exhaustive skipped") && strings.Contains(n, "budget") {
			found = true
			if !strings.Contains(n, "27") || !strings.Contains(n, "160") {
				t.Errorf("skip note lacks reduced (27) and raw (160) sizes: %q", n)
			}
		}
	}
	if !found {
		t.Fatalf("no skip note recorded; notes: %v", rep.Notes)
	}

	// Backend disabled: no report, no note, no cost.
	rep, err = Check(tinyScenario(), CheckConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Exhaustive != nil {
		t.Fatal("disabled backend still produced an exhaustive report")
	}
	for _, n := range rep.Notes {
		if strings.Contains(n, "exhaustive") {
			t.Fatalf("disabled backend left a note: %q", n)
		}
	}
}

// Halving the IBN bound on the tiny scenario must trip the exhaustive
// chain — the true in-class worst case exceeds the corrupted bound —
// and the violation must shrink to a minimal replayable counterexample,
// with the backend's budget recorded in the artifact so the replay
// re-arms it.
func TestMutationExhaustiveDivergenceIsCaughtAndShrunk(t *testing.T) {
	sc := tinyScenario()
	cfg := CheckConfig{
		Seed:             1,
		ExhaustiveStates: 1 << 12,
		mutate: func(m core.Method, flow int, r noc.Cycles) noc.Cycles {
			if m == core.IBN {
				return r / 2
			}
			return r
		},
	}
	rep, err := Check(sc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var caught *Violation
	for i := range rep.Violations {
		if rep.Violations[i].Class == ExhaustiveDivergent && rep.Violations[i].Invariant == "exhaustive<=IBN" {
			caught = &rep.Violations[i]
			break
		}
	}
	if caught == nil {
		t.Fatalf("halved IBN bound evaded the exhaustive chain; violations: %v", rep.Violations)
	}
	if caught.Observed <= caught.Bound {
		t.Fatalf("violation does not witness the breach: observed %d <= bound %d", caught.Observed, caught.Bound)
	}
	// The witness phasing must be attached for replay.
	if len(caught.Offsets) == 0 {
		t.Fatal("exhaustive violation carries no witness phasing")
	}

	shrunk, err := Shrink(sc, *caught, cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if shrunk.Reductions == 0 {
		t.Error("shrinker made no reduction on the 2-flow scenario")
	}
	if n := len(shrunk.Scenario.Doc.Flows); n > 1 {
		// A lone flow's exhaustive worst case is exactly C > C/2, so the
		// minimal counterexample for this mutation is a single flow.
		t.Errorf("minimal counterexample kept %d flows, want 1", n)
	}
	if FindViolation(shrunk.Report, *caught) == nil {
		t.Error("shrunk scenario no longer exhibits the violation")
	}

	// The artifact records the exhaustive budget, round-trips, and its
	// replay (healthy analyses) must NOT reproduce the violation.
	art := NewArtifact(shrunk.Scenario, cfg, *FindViolation(shrunk.Report, *caught), shrunk)
	if art.Check.ExhaustiveStates != cfg.ExhaustiveStates {
		t.Errorf("artifact records exhaustive budget %d, want %d", art.Check.ExhaustiveStates, cfg.ExhaustiveStates)
	}
	var buf bytes.Buffer
	if err := art.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadArtifact(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.CheckConfig().ExhaustiveStates != cfg.ExhaustiveStates {
		t.Errorf("exhaustive budget lost in round trip: %d", back.CheckConfig().ExhaustiveStates)
	}
	if back.CheckConfig().ExhaustiveReduce != cfg.ExhaustiveReduce {
		t.Errorf("reduction mode lost in round trip: %v", back.CheckConfig().ExhaustiveReduce)
	}
	replayRep, reproduced, err := back.Replay()
	if err != nil {
		t.Fatal(err)
	}
	if reproduced {
		t.Errorf("replay against the healthy analyses reproduced the mutation's violation: %v", replayRep.Violations)
	}
	if replayRep.Exhaustive == nil {
		t.Error("replay did not re-arm the exhaustive backend")
	}
}

// A campaign with the backend armed counts enumerated scenarios; tiny
// generator bounds keep every grid within reach.
func TestCampaignCountsExhausted(t *testing.T) {
	stats, err := Campaign(CampaignConfig{
		Scenarios: 4,
		Seed:      7,
		Gen: GenConfig{
			MaxDim: 2, MaxFlows: 2, MaxBuf: 4,
			MaxLinkLatency: 1, MaxRouteLatency: -1,
			PeriodMin: 6, PeriodMax: 16, LenMin: 2, LenMax: 4,
		},
		Check:   CheckConfig{Duration: 2000, ExhaustiveStates: 1 << 12},
		Workers: 2,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Checked != 4 {
		t.Fatalf("checked %d scenarios, want 4", stats.Checked)
	}
	if stats.Exhausted == 0 {
		t.Fatal("no scenario reached the exhaustive backend under tiny generator bounds")
	}
	if stats.ExhaustedComplete > stats.Exhausted {
		t.Fatalf("complete count %d exceeds enumerated count %d", stats.ExhaustedComplete, stats.Exhausted)
	}
	if stats.ExhaustedViaReduction > stats.ExhaustedComplete {
		t.Fatalf("via-reduction count %d exceeds complete count %d",
			stats.ExhaustedViaReduction, stats.ExhaustedComplete)
	}
	if stats.Violations != 0 {
		t.Fatalf("healthy campaign reported %d violations", stats.Violations)
	}
}
