package oracle

import (
	"bytes"
	"reflect"
	"testing"

	"wormnoc/internal/core"
	"wormnoc/internal/noc"
	"wormnoc/internal/traffic"
)

// TestOracleRandomScenarios is the acceptance gate of the verification
// subsystem: 200 generated scenarios (40 under -short), every
// registered analysis attacked by the phasing search, zero invariant
// violations. KnownOptimism findings against SB/SLA are expected to
// appear over the full run — they prove the adversarial attack can
// actually construct multi-point progressive blocking.
func TestOracleRandomScenarios(t *testing.T) {
	seeds := int64(200)
	if testing.Short() {
		seeds = 40
	}
	findings, simRuns, attacked := 0, 0, 0
	for seed := int64(0); seed < seeds; seed++ {
		sc := Generate(seed, GenConfig{})
		rep, err := Check(sc, CheckConfig{Seed: seed})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, v := range rep.Violations {
			t.Errorf("seed %d (%s): %s", seed, sc, v.String())
		}
		findings += len(rep.Findings)
		simRuns += rep.SimRuns
		attacked += rep.FlowsAttacked
	}
	if attacked == 0 {
		t.Error("no flow was ever attacked: the generator produced no schedulable bounds")
	}
	if !testing.Short() && findings == 0 {
		t.Error("no KnownOptimism finding over the full run: the attack never constructed MPB, it has lost its teeth")
	}
	t.Logf("%d scenarios: %d flows attacked, %d sim runs, %d known-optimism findings",
		seeds, attacked, simRuns, findings)
}

// Generation is a pure function of the seed.
func TestGenerateDeterministic(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		a := Generate(seed, GenConfig{})
		b := Generate(seed, GenConfig{})
		if !reflect.DeepEqual(a.Doc, b.Doc) {
			t.Fatalf("seed %d generated two different scenarios", seed)
		}
	}
	if reflect.DeepEqual(Generate(1, GenConfig{}).Doc, Generate(2, GenConfig{}).Doc) {
		t.Error("distinct seeds produced identical scenarios")
	}
}

// A check is a pure function of (scenario, config): the phasing
// searches draw from seeded generators only.
func TestCheckDeterministic(t *testing.T) {
	sc := Generate(3, GenConfig{})
	a, err := Check(sc, CheckConfig{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Check(sc, CheckConfig{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Violations, b.Violations) || !reflect.DeepEqual(a.Findings, b.Findings) {
		t.Error("identical checks disagreed on violations/findings")
	}
	if a.SimRuns != b.SimRuns || a.FlowsAttacked != b.FlowsAttacked {
		t.Errorf("identical checks spent different budgets: %d/%d vs %d/%d sim runs",
			a.SimRuns, a.FlowsAttacked, b.SimRuns, b.FlowsAttacked)
	}
}

// Every generated scenario stays inside the configured bounds and the
// analyses' validity region, and materialises into a valid system.
func TestGenerateRespectsBounds(t *testing.T) {
	cfg := GenConfig{}
	cfg.setDefaults()
	for seed := int64(0); seed < 100; seed++ {
		sc := Generate(seed, cfg)
		m := sc.Doc.Mesh
		if m.BufDepth < MinBufDepth || m.BufDepth > cfg.MaxBuf {
			t.Fatalf("seed %d: buf %d outside [%d, %d]", seed, m.BufDepth, MinBufDepth, cfg.MaxBuf)
		}
		if m.Width > cfg.MaxDim+2 || m.Height > cfg.MaxDim+2 {
			t.Fatalf("seed %d: mesh %dx%d beyond MaxDim %d", seed, m.Width, m.Height, cfg.MaxDim)
		}
		if len(sc.Doc.Flows) < 2 || len(sc.Doc.Flows) > cfg.MaxFlows {
			t.Fatalf("seed %d: %d flows outside [2, %d]", seed, len(sc.Doc.Flows), cfg.MaxFlows)
		}
		prios := map[int]bool{}
		for _, f := range sc.Doc.Flows {
			if f.Src == f.Dst {
				t.Fatalf("seed %d: flow %q routes to itself", seed, f.Name)
			}
			if prios[f.Priority] {
				t.Fatalf("seed %d: duplicate priority %d", seed, f.Priority)
			}
			prios[f.Priority] = true
		}
		if _, err := sc.System(); err != nil {
			t.Fatalf("seed %d does not materialise: %v", seed, err)
		}
	}
}

// Platforms below Equation 1's validity floor get analytic invariants
// only; the sim attack is skipped with an explicit note, never run
// silently into false unsoundness.
func TestCheckSkipsSimBelowMinBuf(t *testing.T) {
	sc := Generate(0, GenConfig{})
	sc.Doc.Mesh.BufDepth = 1
	rep, err := Check(sc, CheckConfig{Seed: 0})
	if err != nil {
		t.Fatal(err)
	}
	if rep.FlowsAttacked != 0 || rep.SimRuns != 0 {
		t.Errorf("sim attack ran on buf=1: %d flows, %d runs", rep.FlowsAttacked, rep.SimRuns)
	}
	if len(rep.Notes) == 0 {
		t.Error("skipping the sim attack left no note")
	}
	if len(rep.Violations) != 0 {
		t.Errorf("buf=1 produced violations: %v", rep.Violations)
	}
}

func TestArtifactRoundTrip(t *testing.T) {
	sc := Generate(5, GenConfig{})
	cfg := CheckConfig{Seed: 11, Duration: 6000, Restarts: 1, RefineSteps: 1, ProbesPerFlow: 2}
	v := Violation{
		Class:     Unsound,
		Invariant: "sim<=IBN",
		Method:    core.IBN,
		Flow:      1,
		Bound:     100,
		Observed:  140,
		Offsets:   []noc.Cycles{0, 7, 3},
		Detail:    "synthetic for round-trip",
	}
	art := NewArtifact(sc, cfg, v, &ShrinkResult{Scenario: sc, Config: cfg, Attempts: 4, Reductions: 2})

	var buf bytes.Buffer
	if err := art.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadArtifact(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, art) {
		t.Errorf("artifact changed in round trip:\n%+v\nvs\n%+v", back, art)
	}
	got := back.CheckConfig()
	if got.Seed != cfg.Seed || got.Duration != cfg.Duration || got.Restarts != cfg.Restarts ||
		got.RefineSteps != cfg.RefineSteps || got.ProbesPerFlow != cfg.ProbesPerFlow {
		t.Errorf("check config changed in round trip: %+v vs %+v", got, cfg)
	}
}

func TestReadArtifactRejects(t *testing.T) {
	sc := Generate(5, GenConfig{})
	art := NewArtifact(sc, CheckConfig{}, Violation{Class: Unsound, Invariant: "sim<=IBN"}, nil)

	encode := func(mutate func(*Artifact)) *bytes.Buffer {
		cp := *art
		mutate(&cp)
		var buf bytes.Buffer
		if err := cp.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return &buf
	}

	if _, err := ReadArtifact(encode(func(a *Artifact) { a.Version = 99 })); err == nil {
		t.Error("future version accepted")
	}
	if _, err := ReadArtifact(encode(func(a *Artifact) { a.Violation.Class = "nonsense" })); err == nil {
		t.Error("unknown violation class accepted")
	}
	if _, err := ReadArtifact(encode(func(a *Artifact) { a.Scenario = traffic.Document{} })); err == nil {
		t.Error("unmaterialisable scenario accepted")
	}
	if _, err := ReadArtifact(bytes.NewReader([]byte(`{"version":1,"unknown_field":true}`))); err == nil {
		t.Error("unknown field accepted")
	}
}

// The divergence class must survive the artifact string round-trip like
// every other class, so a replayed divergence artifact classifies
// correctly.
func TestDivergentClassRoundTrip(t *testing.T) {
	for _, c := range []Class{Unsound, Inconsistent, NonMonotone, NonDeterministic, Divergent, IncrementalDivergent, KnownOptimism} {
		got, err := parseClass(c.String())
		if err != nil {
			t.Fatalf("parseClass(%q): %v", c.String(), err)
		}
		if got != c {
			t.Errorf("class %v round-tripped to %v", c, got)
		}
	}
	if Divergent >= KnownOptimism || IncrementalDivergent >= KnownOptimism {
		t.Error("engine-divergence classes must sort before KnownOptimism so they are treated as violations, not findings")
	}
}
