package oracle

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"wormnoc/internal/parallel"
)

// CampaignConfig parameterises a multi-scenario verification campaign:
// Scenarios independent scenarios generated and checked in parallel,
// deterministically in Seed — scenario i is always Generate(DeriveSeed(
// Seed, i), Gen) checked with that same derived seed, regardless of
// worker count or completion order.
type CampaignConfig struct {
	// Scenarios is the number of scenarios to check (default 100).
	Scenarios int
	// Seed is the campaign's root seed.
	Seed int64
	// Gen parameterises the scenario generator.
	Gen GenConfig
	// Check is the per-scenario check template; its Seed field is
	// overwritten with each scenario's derived seed.
	Check CheckConfig
	// Workers bounds the scenarios checked concurrently (0 = GOMAXPROCS).
	// When scenarios run in parallel and Check.Workers is unset, each
	// scenario's internal fan-out (attacked flows, probe batches) is
	// forced serial: one scenario per core beats nested pools, and it is
	// what lets the nightly campaign scale to 10k+ scenarios.
	Workers int
	// Context, when non-nil, cancels the campaign early.
	Context context.Context
}

// CampaignStats aggregates a campaign's outcome. Violations and
// Findings count individual reported entries, not scenarios.
type CampaignStats struct {
	// Checked counts scenarios fully checked.
	Checked int
	// SimRuns totals the simulations spent across all checks.
	SimRuns int
	// Violations counts reported invariant breaches.
	Violations int
	// Findings counts KnownOptimism classifications.
	Findings int
	// Exhausted counts scenarios the explicit-state backend enumerated
	// (Report.Exhaustive non-nil); ExhaustedComplete counts those whose
	// full phasing grid was covered — the scenarios whose verdict is a
	// proof, not a sample. All three stay zero when
	// CheckConfig.ExhaustiveStates is unset.
	Exhausted, ExhaustedComplete int
	// ExhaustedViaReduction counts the subset of ExhaustedComplete whose
	// proof covered strictly fewer simulated states than the raw phasing
	// grid — completions the symmetry/cluster reductions made
	// affordable.
	ExhaustedViaReduction int
}

// Campaign generates and checks cfg.Scenarios scenarios on a worker
// pool, streaming every report to fn as scenarios complete (in
// arbitrary order; fn, when non-nil, is called concurrently and must
// synchronise its own state). ccfg is the exact CheckConfig the
// scenario was checked with — persist it alongside a violation so the
// artifact replays identically. A non-nil error from fn or from a check
// cancels the remaining scenarios and is returned with whatever stats
// had accumulated. Every scenario's report is a pure function of
// (cfg.Seed, i, cfg.Gen, cfg.Check), so campaigns are reproducible at
// any parallelism.
func Campaign(cfg CampaignConfig, fn func(i int, sc *Scenario, ccfg CheckConfig, rep *Report) error) (CampaignStats, error) {
	if cfg.Scenarios <= 0 {
		cfg.Scenarios = 100
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	inner := cfg.Check
	if workers > 1 && inner.Workers == 0 {
		inner.Workers = 1
	}
	var (
		mu    sync.Mutex
		stats CampaignStats
	)
	r := parallel.Runner{Workers: workers, Context: cfg.Context}
	err := r.Run(cfg.Scenarios, func(i int) error {
		scSeed := DeriveSeed(cfg.Seed, int64(i))
		sc := Generate(scSeed, cfg.Gen)
		ccfg := inner
		ccfg.Seed = scSeed
		rep, err := Check(sc, ccfg)
		if err != nil {
			return fmt.Errorf("scenario %d (seed %d): %w", i, scSeed, err)
		}
		mu.Lock()
		stats.Checked++
		stats.SimRuns += rep.SimRuns
		stats.Violations += len(rep.Violations)
		stats.Findings += len(rep.Findings)
		if rep.Exhaustive != nil {
			stats.Exhausted++
			if rep.Exhaustive.Complete {
				stats.ExhaustedComplete++
				if rep.Exhaustive.StatesSaved > 0 {
					stats.ExhaustedViaReduction++
				}
			}
		}
		mu.Unlock()
		if fn != nil {
			return fn(i, sc, ccfg, rep)
		}
		return nil
	})
	return stats, err
}
