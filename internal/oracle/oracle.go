// Package oracle is the repository's differential verification
// subsystem: it generates random scenarios (platform + flow set),
// computes every registered analysis's bounds through the
// internal/core engine, adversarially attacks those bounds with the
// simulator's randomised phasing search, and checks a declared suite of
// invariants that must hold if the reproduced analyses are sound:
//
//   - safety:            observed latency <= R_XLWX and <= R_IBN for
//     every flow those analyses declare schedulable (the paper's
//     Theorem-level claim);
//   - cross-consistency: R_IBN <= R_XLWX per flow, and any flow set
//     XLWX deems schedulable is schedulable under IBN (Equation 8
//     takes a min, so IBN can never be looser);
//   - buffer monotonicity: growing buf(Ξ) never tightens an IBN bound
//     (Equation 6's bi_ij is non-decreasing in the buffer depth);
//   - MPB classification: observed latencies exceeding the SB or SLA
//     bounds are detected and classified as the *expected* optimism of
//     those pre-MPB analyses (a finding, not a violation) — if they
//     never appear at all, the attack has lost its teeth;
//   - determinism:       rebuilding the engine and re-analysing yields
//     bit-identical results.
//
// On any violation the scenario is shrunk (drop flows, crop the mesh,
// reduce buffers and periods) to a minimal counterexample that still
// violates, and persisted as a replayable JSON artifact (see Artifact).
// cmd/nocfuzz is the CLI front end; FuzzOracleScenario plugs the whole
// cycle into go's native fuzzer.
//
// Everything in this package is deterministic in the seeds it is given:
// generation from Scenario seeds, attacks from CheckConfig.Seed (the
// phasing searches receive a single seeded *rand.Rand derived from it —
// there is no hidden global-rand use anywhere on the verification
// path). A logged (scenario seed, check seed) pair therefore replays a
// violation exactly.
package oracle

import (
	"fmt"
	"math/rand"

	"wormnoc/internal/core"
	"wormnoc/internal/noc"
	"wormnoc/internal/traffic"
	"wormnoc/internal/workload"
)

// MinBufDepth is the smallest buffer depth the oracle generates,
// shrinks to, or attacks with the simulator. Equation 1's zero-load
// latency assumes fully pipelined wormhole forwarding, which needs at
// least two flits of buffering per VC to cover the credit round trip:
// at buf(Ξ)=1 a flit can only advance every other cycle, so even an
// uncontended packet legitimately exceeds C and comparing simulated
// latencies against the analyses is meaningless. The paper's platforms
// use 2..100-flit buffers, so the analyses inherit this precondition.
const MinBufDepth = 2

// GenConfig bounds the random scenario generator. The zero value selects
// defaults tuned for MPB-prone scenarios that simulate quickly: small
// meshes (including 1×N lines, the shape of the paper's didactic
// example), shallow-to-moderate buffers and tight periods relative to
// packet lengths.
type GenConfig struct {
	// MaxDim bounds both mesh dimensions (default 4). Lines of length up
	// to MaxDim+2 are generated alongside W×H meshes.
	MaxDim int
	// MaxFlows bounds the flow-set size (default 8; at least 2 flows are
	// always generated, since a lone flow cannot suffer interference).
	MaxFlows int
	// MaxBuf bounds buf(Ξ) (default 16).
	MaxBuf int
	// MaxLinkLatency bounds linkl(Ξ) (default 2).
	MaxLinkLatency int
	// MaxRouteLatency bounds routl(Ξ) (default 2).
	MaxRouteLatency int
	// PeriodMin/PeriodMax bound the uniform period distribution in
	// cycles (defaults 800, 20_000 — short enough that a Check's
	// simulation horizon covers many releases).
	PeriodMin, PeriodMax noc.Cycles
	// LenMin/LenMax bound packet lengths in flits (defaults 8, 96).
	LenMin, LenMax int
	// JitterProb is the probability that a flow gets release jitter
	// (default 0.25; negative disables jitter entirely, which the
	// exhaustive matrices use — the explicit-state backend certifies the
	// jitter-free canonical class, so jitter-free scenarios keep its
	// searches and proofs in the same class). The jitter drawn is at
	// most a quarter period.
	JitterProb float64
	// MaxJitter, when positive, additionally clamps every drawn jitter
	// to this many cycles (the -jitter knob of nocfuzz exhaust).
	MaxJitter noc.Cycles
}

func (c *GenConfig) setDefaults() {
	if c.MaxDim <= 0 {
		c.MaxDim = 4
	}
	if c.MaxFlows < 2 {
		c.MaxFlows = 8
	}
	if c.MaxBuf <= 0 {
		c.MaxBuf = 16
	}
	if c.MaxLinkLatency <= 0 {
		c.MaxLinkLatency = 2
	}
	if c.MaxRouteLatency < 0 {
		c.MaxRouteLatency = 0
	} else if c.MaxRouteLatency == 0 {
		c.MaxRouteLatency = 2
	}
	if c.PeriodMin <= 0 {
		c.PeriodMin = 800
	}
	if c.PeriodMax < c.PeriodMin {
		c.PeriodMax = 20_000
	}
	if c.LenMin <= 0 {
		c.LenMin = 8
	}
	if c.LenMax < c.LenMin {
		c.LenMax = 96
	}
	if c.JitterProb == 0 {
		c.JitterProb = 0.25
	} else if c.JitterProb < 0 {
		c.JitterProb = 0
	}
}

// Scenario is one generated (or shrunk, or replayed) verification
// subject: a platform plus flow set in its serialisable Document form,
// tagged with the seed that produced it.
type Scenario struct {
	// Seed is the generator seed the scenario came from (0 for scenarios
	// built from external documents).
	Seed int64
	// Doc is the full platform + flow-set description, including the
	// routing policy, so the scenario replays byte-identically from JSON.
	Doc traffic.Document
}

// System materialises the scenario.
func (s *Scenario) System() (*traffic.System, error) { return s.Doc.System() }

// String summarises the scenario on one line.
func (s *Scenario) String() string {
	routing := s.Doc.Mesh.Routing
	if routing == "" {
		routing = "xy"
	}
	return fmt.Sprintf("scenario seed=%d mesh=%dx%d buf=%d linkl=%d routl=%d routing=%s flows=%d",
		s.Seed, s.Doc.Mesh.Width, s.Doc.Mesh.Height, s.Doc.Mesh.BufDepth,
		s.Doc.Mesh.LinkLatency, s.Doc.Mesh.RouteLatency, routing, len(s.Doc.Flows))
}

// Generate builds a random scenario, deterministically in seed. Flow
// sets are biased towards schedulability: when fewer than two flows are
// XLWX-schedulable, periods are stretched (up to three times) so the
// attack surface — bounds worth attacking — stays non-trivial.
func Generate(seed int64, cfg GenConfig) *Scenario {
	cfg.setDefaults()
	rng := rand.New(rand.NewSource(seed))

	// Shape: one third 1×N lines (the didactic geometry generalised),
	// two thirds W×H meshes. Both orientations of a line are exercised
	// so YX routing is not a no-op on them.
	var w, h int
	switch rng.Intn(3) {
	case 0:
		n := 3 + rng.Intn(cfg.MaxDim)
		if rng.Intn(2) == 0 {
			w, h = n, 1
		} else {
			w, h = 1, n
		}
	default:
		w, h = 2+rng.Intn(cfg.MaxDim-1), 2+rng.Intn(cfg.MaxDim-1)
	}
	routing := ""
	if rng.Intn(2) == 1 {
		routing = "yx"
	}
	// buf(Ξ) starts at 2: Equation 1's fully pipelined zero-load latency
	// presumes the credit loop is covered, which 1-flit buffers cannot do
	// (their round trip halves throughput, so even an uncontended packet
	// exceeds C). The paper's platforms use 2..100-flit buffers; the
	// analyses inherit that precondition, so the oracle stays inside it.
	mesh := traffic.MeshSpec{
		Width:        w,
		Height:       h,
		BufDepth:     MinBufDepth + rng.Intn(cfg.MaxBuf-1),
		LinkLatency:  int64(1 + rng.Intn(cfg.MaxLinkLatency)),
		RouteLatency: int64(rng.Intn(cfg.MaxRouteLatency + 1)),
		Routing:      routing,
	}

	nodes := w * h
	numFlows := 2 + rng.Intn(cfg.MaxFlows-1)
	flows := make([]traffic.Flow, numFlows)
	for i := range flows {
		src := rng.Intn(nodes)
		dst := rng.Intn(nodes - 1)
		if dst >= src {
			dst++
		}
		period := cfg.PeriodMin + noc.Cycles(rng.Int63n(int64(cfg.PeriodMax-cfg.PeriodMin)+1))
		length := cfg.LenMin + rng.Intn(cfg.LenMax-cfg.LenMin+1)
		var jitter noc.Cycles
		if rng.Float64() < cfg.JitterProb {
			jitter = noc.Cycles(rng.Int63n(int64(period/4) + 1))
			if cfg.MaxJitter > 0 && jitter > cfg.MaxJitter {
				jitter = cfg.MaxJitter
			}
		}
		flows[i] = traffic.Flow{
			Name:     fmt.Sprintf("g%d", i),
			Period:   period,
			Deadline: period,
			Jitter:   jitter,
			Length:   length,
			Src:      noc.NodeID(src),
			Dst:      noc.NodeID(dst),
		}
	}
	workload.AssignRateMonotonic(flows)

	sc := &Scenario{Seed: seed, Doc: buildDoc(mesh, flows)}
	for attempt := 0; attempt < 3; attempt++ {
		sys, err := sc.Doc.System()
		if err != nil {
			// Unreachable by construction; surface it loudly in Check.
			return sc
		}
		if schedulableCount(sys) >= 2 || numFlows < 3 {
			return sc
		}
		for i := range flows {
			flows[i].Period *= 4
			flows[i].Deadline = flows[i].Period
		}
		sc.Doc = buildDoc(mesh, flows)
	}
	return sc
}

func buildDoc(mesh traffic.MeshSpec, flows []traffic.Flow) traffic.Document {
	doc := traffic.Document{Mesh: mesh, Flows: make([]traffic.FlowSpec, len(flows))}
	for i, f := range flows {
		doc.Flows[i] = traffic.FlowSpec{
			Name:     f.Name,
			Priority: f.Priority,
			Period:   int64(f.Period),
			Deadline: int64(f.Deadline),
			Jitter:   int64(f.Jitter),
			Length:   f.Length,
			Src:      int(f.Src),
			Dst:      int(f.Dst),
		}
	}
	return doc
}

func schedulableCount(sys *traffic.System) int {
	res, err := core.Analyze(sys, core.Options{Method: core.XLWX})
	if err != nil {
		return 0
	}
	n := 0
	for _, fr := range res.Flows {
		if fr.Status == core.Schedulable {
			n++
		}
	}
	return n
}

// splitmix64 derives independent sub-seeds from one root seed; it is the
// finaliser of the SplitMix64 generator, which maps distinct inputs to
// well-distributed outputs.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// DeriveSeed folds a stream index into a root seed, so every phasing
// search of one Check has its own deterministic, decorrelated seed.
func DeriveSeed(root int64, stream int64) int64 {
	return int64(splitmix64(uint64(root) ^ splitmix64(uint64(stream))))
}
