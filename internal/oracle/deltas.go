package oracle

import (
	"context"
	"fmt"
	"math/rand"

	"wormnoc/internal/core"
	"wormnoc/internal/noc"
	"wormnoc/internal/traffic"
)

// DefaultEditChainLen is the number of edits the incremental-divergent
// invariant replays against each scenario when CheckConfig.EditChainLen
// is zero.
const DefaultEditChainLen = 12

// editChainStream is the DeriveSeed stream of the edit-chain generator.
// The phasing searches use streams 2·target and 2·target+1, which are
// never negative, so the chain's randomness cannot collide with them.
const editChainStream = -1

// checkIncrementalDivergent replays a deterministic random edit chain
// through one core.Incremental and, in lockstep, through from-scratch
// engines over the equivalently edited system. Every method's result
// must match bit for bit at every step — the warm-started fixed points
// are only admissible because they converge to the cold ones. The bound
// hook rewrites the scratch (reference) side of schedulable flows, so
// the mutation self-test can prove the comparison has teeth.
func checkIncrementalDivergent(sys *traffic.System, methods []core.Method, cfg CheckConfig,
	bound func(core.Method, int, noc.Cycles) noc.Cycles) ([]Violation, error) {

	deltas, _, err := RandomDeltas(DeriveSeed(cfg.Seed, editChainStream), sys, cfg.EditChainLen)
	if err != nil {
		return nil, fmt.Errorf("oracle: incremental replay: %w", err)
	}
	inc := core.NewIncremental(sys)
	scratch := sys
	ctx := context.Background()
	var out []Violation
	for step, d := range deltas {
		if err := inc.Apply(d); err != nil {
			return nil, fmt.Errorf("oracle: incremental replay: applying step %d (%s): %w", step, d, err)
		}
		scratch, err = core.ApplyDelta(scratch, d)
		if err != nil {
			return nil, fmt.Errorf("oracle: incremental replay: folding step %d (%s): %w", step, d, err)
		}
		eng := core.NewEngine(scratch)
		for _, m := range methods {
			got, err := inc.Analyze(ctx, core.Options{Method: m})
			if err != nil {
				return nil, fmt.Errorf("oracle: incremental replay: %s at step %d: %w", m, step, err)
			}
			want, err := eng.Analyze(core.Options{Method: m})
			if err != nil {
				return nil, fmt.Errorf("oracle: incremental replay: scratch %s at step %d: %w", m, step, err)
			}
			if len(got.Flows) != len(want.Flows) {
				out = append(out, Violation{
					Class:     IncrementalDivergent,
					Invariant: "incremental==scratch",
					Method:    m,
					Detail: fmt.Sprintf("step %d (%s): incremental tracks %d flows, scratch %d",
						step, d, len(got.Flows), len(want.Flows)),
				})
				continue
			}
			for i := range want.Flows {
				w := want.Flows[i]
				if w.Status == core.Schedulable {
					w.R = bound(m, i, w.R)
				}
				if w == got.Flows[i] {
					continue
				}
				out = append(out, Violation{
					Class:     IncrementalDivergent,
					Invariant: "incremental==scratch",
					Method:    m,
					Flow:      i,
					Bound:     w.R,
					Observed:  got.Flows[i].R,
					Detail: fmt.Sprintf("step %d (%s): warm result %+v diverges from scratch %+v",
						step, d, got.Flows[i], w),
				})
			}
		}
	}
	return out, nil
}

// RandomDeltas derives a deterministic random edit chain against sys:
// every delta is valid for the system produced by its predecessors, so
// the whole chain folds through core.ApplyDeltas without error. The
// distribution leans on parameter edits (the dominant production
// workload) but includes priority swaps, re-mappings, buffer-depth
// changes and flow add/remove so the structural invalidation paths are
// exercised too. The final edited system is returned alongside the
// chain.
func RandomDeltas(seed int64, sys *traffic.System, count int) ([]core.Delta, *traffic.System, error) {
	rng := rand.New(rand.NewSource(seed))
	deltas := make([]core.Delta, 0, count)
	for attempts := 0; len(deltas) < count; attempts++ {
		if attempts > 50*count+200 {
			return nil, nil, fmt.Errorf("oracle: edit-chain generator stalled after %d attempts (seed %d)", attempts, seed)
		}
		d, ok := randomDelta(rng, sys)
		if !ok {
			continue
		}
		next, err := core.ApplyDelta(sys, d)
		if err != nil {
			// The generator aims for valid edits, but a roll can still hit
			// a cross-flow constraint; skip and re-roll.
			continue
		}
		deltas = append(deltas, d)
		sys = next
	}
	return deltas, sys, nil
}

func randomDelta(rng *rand.Rand, sys *traffic.System) (core.Delta, bool) {
	n := sys.NumFlows()
	k := rng.Intn(n)
	f := sys.Flow(k)
	switch rng.Intn(14) {
	case 0, 1, 2: // period: anywhere from the deadline (validity floor) to 2× the current
		lo := int64(f.Deadline)
		hi := 2 * int64(f.Period)
		if hi < lo {
			hi = lo
		}
		return core.Delta{Kind: core.DeltaPeriod, Flow: k, Cycles: noc.Cycles(lo + rng.Int63n(hi-lo+1))}, true
	case 3, 4: // jitter: up to half the period, shrinking to zero included
		return core.Delta{Kind: core.DeltaJitter, Flow: k, Cycles: noc.Cycles(rng.Int63n(int64(f.Period)/2 + 1))}, true
	case 5, 6: // payload: halve to double the current length
		lo := f.Length / 2
		if lo < 1 {
			lo = 1
		}
		return core.Delta{Kind: core.DeltaLength, Flow: k, Length: lo + rng.Intn(f.Length*2-lo+1)}, true
	case 7: // deadline: mostly comfortable, occasionally brutally tight so
		// deadline misses and dependency failures propagate through a chain
		lo := int64(f.Period) / 2
		if lo < 1 || rng.Intn(4) == 0 {
			lo = 1
		}
		return core.Delta{Kind: core.DeltaDeadline, Flow: k, Cycles: noc.Cycles(lo + rng.Int63n(int64(f.Period)-lo+1))}, true
	case 8: // platform buffer depth
		return core.Delta{Kind: core.DeltaBufDepth, BufDepth: MinBufDepth + rng.Intn(10)}, true
	case 9, 10: // priority swap
		if n < 2 {
			return core.Delta{}, false
		}
		o := rng.Intn(n - 1)
		if o >= k {
			o++
		}
		return core.Delta{Kind: core.DeltaPrioritySwap, Flow: k, Other: o}, true
	case 11: // re-map to fresh endpoints
		nodes := sys.Topology().NumNodes()
		if nodes < 2 {
			return core.Delta{}, false
		}
		src := rng.Intn(nodes)
		dst := rng.Intn(nodes - 1)
		if dst >= src {
			dst++
		}
		return core.Delta{Kind: core.DeltaMapping, Flow: k, Src: noc.NodeID(src), Dst: noc.NodeID(dst)}, true
	case 12: // add a flow at the next free (lowest) priority
		nodes := sys.Topology().NumNodes()
		if nodes < 2 {
			return core.Delta{}, false
		}
		maxPrio := 0
		for _, fl := range sys.Flows() {
			if fl.Priority > maxPrio {
				maxPrio = fl.Priority
			}
		}
		src := rng.Intn(nodes)
		dst := rng.Intn(nodes - 1)
		if dst >= src {
			dst++
		}
		period := noc.Cycles(2_000 + rng.Int63n(40_000))
		return core.Delta{Kind: core.DeltaAddFlow, NewFlow: traffic.Flow{
			Name:     fmt.Sprintf("e%d", maxPrio+1),
			Priority: maxPrio + 1,
			Period:   period,
			Deadline: period,
			Length:   8 + rng.Intn(96),
			Src:      noc.NodeID(src),
			Dst:      noc.NodeID(dst),
		}}, true
	default: // remove a flow, keeping at least two
		if n < 3 {
			return core.Delta{}, false
		}
		return core.Delta{Kind: core.DeltaRemoveFlow, Flow: k}, true
	}
}
