// Package sim is a cycle-accurate, flit-level simulator of the
// priority-preemptive wormhole NoC of Section II of the paper.
//
// It models exactly the router of Figure 1: per-priority virtual channels
// (one FIFO of buf(Ξ) flits per VC at each input port), credit-based flow
// control (a flit advances only when the downstream VC buffer has space),
// and per-output-link priority-preemptive arbitration: every cycle, each
// link transfers the flit of the highest-priority packet that requests it
// *and* holds a credit; a blocked high-priority packet with full buffers
// lets lower-priority packets proceed. Header flits pay the routing
// latency routl(Ξ) at every router, and every link transfer takes
// linkl(Ξ) cycles.
//
// The simulator is used to reproduce the "sim" columns of Table II (the
// worst observed latencies under multi-point progressive blocking) and to
// validate the analytical bounds: on every scenario, observed latencies
// must stay below the IBN and XLWX bounds, while they can exceed the
// (unsafe) SB bound.
//
// Two engines live here. Engine is the production one: event-driven
// (it skips straight across cycles in which nothing can move, and only
// re-arbitrates links whose inputs changed) and reusable (Reset/Run
// recycle every buffer, so steady-state searches allocate nothing).
// RunReference is the retained straightforward cycle-scanning engine;
// the two are held bit-identical by a differential test suite and the
// verification oracle's divergence invariant (DESIGN.md §10).
package sim

import (
	"fmt"
	"io"

	"wormnoc/internal/noc"
	"wormnoc/internal/traffic"
)

// Config parameterises one simulation run.
type Config struct {
	// Duration is the number of simulated cycles. Packets still in flight
	// when the horizon is reached are not counted in latency statistics
	// (Result.InFlight reports them).
	Duration noc.Cycles
	// Offsets holds the first-release instant of each flow (default 0).
	// Successive packets are released periodically from the offset.
	Offsets []noc.Cycles
	// MaxPacketsPerFlow stops releasing packets of a flow after this many
	// (0 = release for the whole duration).
	MaxPacketsPerFlow int
	// RecordLatencies makes the Result keep every completed packet's
	// latency (Result.Latencies), enabling distribution statistics at the
	// cost of memory proportional to the number of packets.
	RecordLatencies bool
	// InjectJitter enables release jitter: each packet of a flow with
	// Jitter J > 0 is released uniformly in [tick, tick+J] after its
	// periodic tick, deterministically in JitterSeed. Latencies are
	// measured from the actual (jittered) release, matching the analyses'
	// convention (an interferer's jitter appears in the interference
	// terms; a flow's own jitter does not extend its own bound).
	InjectJitter bool
	// JitterSeed seeds the jitter sampler (used only with InjectJitter).
	JitterSeed int64
	// TraceWriter, when non-nil, receives one CSV line per flit transfer:
	// cycle,link,flow,packet,flit. Lines are batched in an internal
	// buffer and flushed when it fills and at the end of the run, so
	// tracing no longer allocates or issues a Write per flit.
	TraceWriter io.Writer
}

// Stats reports engine-internal execution counters. They describe how a
// result was computed, not what was observed: two runs that differ only
// in Stats simulated the identical system trajectory. The differential
// suite therefore compares Results with Stats ignored, and the retained
// reference engine always leaves it zero.
type Stats struct {
	// FastPathBatches counts locked-arbitration batches: stretches of
	// cycles in which every link's winner, credits and contender set
	// were provably stable, executed as one bulk step instead of
	// per-cycle arbitration (DESIGN.md §13).
	FastPathBatches int
	// FastPathCycles is the total number of simulated cycles covered by
	// those batches (each batch covers at least 2 cycles).
	FastPathCycles noc.Cycles
}

// Result holds the outcome of a run.
type Result struct {
	// WorstLatency[i] is the maximum observed latency (release to arrival
	// of the last flit) over the completed packets of flow i, or -1 when
	// none completed within the horizon.
	WorstLatency []noc.Cycles
	// TotalLatency[i] is the sum of observed latencies (for averages).
	TotalLatency []noc.Cycles
	// Completed[i] counts completed packets of flow i.
	Completed []int
	// Released[i] counts released packets of flow i.
	Released []int
	// InFlight counts packets not yet fully delivered at the horizon.
	InFlight int
	// DeadlineMisses[i] counts completed packets of flow i whose observed
	// latency exceeded the flow deadline.
	DeadlineMisses []int
	// Latencies[i] holds the latency of every completed packet of flow i
	// in completion order (only with Config.RecordLatencies).
	Latencies [][]noc.Cycles
	// MaxOccupancy[i][h] is the maximum number of flits of flow i ever
	// held in the virtual-channel buffer fed by hop h of its route
	// (h in [0, |route|-2]). Occupancy can never exceed the platform's
	// buffer depth — that is the credit-based flow control at work — and
	// watching it grow along the contention domain during a downstream
	// blocking is exactly the "buffered interference" of the paper.
	MaxOccupancy [][]int
	// Stats holds engine-internal execution counters. It is the one
	// Result field allowed to differ between engines: comparisons of
	// observable behaviour must ignore it (see Stats).
	Stats Stats
}

// PeakOccupancy returns the largest buffer occupancy flow i reached on
// any hop of its route.
func (r *Result) PeakOccupancy(i int) int {
	peak := 0
	for _, o := range r.MaxOccupancy[i] {
		if o > peak {
			peak = o
		}
	}
	return peak
}

// MeanLatency returns the average observed latency of flow i, or -1 when
// no packet of the flow completed.
func (r *Result) MeanLatency(i int) float64 {
	if r.Completed[i] == 0 {
		return -1
	}
	return float64(r.TotalLatency[i]) / float64(r.Completed[i])
}

type packet struct {
	flow     int
	id       int
	release  noc.Cycles
	length   int
	injected int // flits handed to the injection link so far
	arrived  int // flits delivered to the destination node so far
}

// flit is one flow-control unit inside a VC buffer.
type flit struct {
	pkt *packet
	seq int
	// readyAt is the earliest cycle a header flit may compete for the
	// next link (arrival + routl); body flits are ready on arrival.
	readyAt noc.Cycles
}

// arrival is a flit in transit over a link.
type arrival struct {
	at   noc.Cycles
	flow int
	hop  int // index of the link just crossed in the flow's route
	fl   flit
}

// cand is one arbitration candidate: a flow crossing hop hop of its
// route.
type cand struct{ flow, hop int }

func validateConfig(sys *traffic.System, cfg Config) error {
	if cfg.Duration < 1 {
		return fmt.Errorf("sim: Duration must be >= 1 cycle, got %d", cfg.Duration)
	}
	if cfg.Offsets != nil && len(cfg.Offsets) != sys.NumFlows() {
		return fmt.Errorf("sim: got %d offsets for %d flows", len(cfg.Offsets), sys.NumFlows())
	}
	for i, off := range cfg.Offsets {
		if off < 0 {
			return fmt.Errorf("sim: flow %d has negative offset %d", i, off)
		}
	}
	return nil
}

// Run simulates the system for cfg.Duration cycles and reports the
// observed latencies. The flow set must have unique priorities (enforced
// by traffic.NewSystem). Each call builds a fresh Engine; callers running
// many simulations of the same system should build one Engine and reuse
// it (NewEngine / Engine.Run), which allocates nothing in steady state.
func Run(sys *traffic.System, cfg Config) (*Result, error) {
	if err := validateConfig(sys, cfg); err != nil {
		return nil, err
	}
	e := NewEngine(sys)
	e.reset(cfg)
	e.run()
	return e.res, nil
}
