// Package sim is a cycle-accurate, flit-level simulator of the
// priority-preemptive wormhole NoC of Section II of the paper.
//
// It models exactly the router of Figure 1: per-priority virtual channels
// (one FIFO of buf(Ξ) flits per VC at each input port), credit-based flow
// control (a flit advances only when the downstream VC buffer has space),
// and per-output-link priority-preemptive arbitration: every cycle, each
// link transfers the flit of the highest-priority packet that requests it
// *and* holds a credit; a blocked high-priority packet with full buffers
// lets lower-priority packets proceed. Header flits pay the routing
// latency routl(Ξ) at every router, and every link transfer takes
// linkl(Ξ) cycles.
//
// The simulator is used to reproduce the "sim" columns of Table II (the
// worst observed latencies under multi-point progressive blocking) and to
// validate the analytical bounds: on every scenario, observed latencies
// must stay below the IBN and XLWX bounds, while they can exceed the
// (unsafe) SB bound.
package sim

import (
	"fmt"
	"io"
	"math/rand"

	"wormnoc/internal/noc"
	"wormnoc/internal/traffic"
)

// Config parameterises one simulation run.
type Config struct {
	// Duration is the number of simulated cycles. Packets still in flight
	// when the horizon is reached are not counted in latency statistics
	// (Result.InFlight reports them).
	Duration noc.Cycles
	// Offsets holds the first-release instant of each flow (default 0).
	// Successive packets are released periodically from the offset.
	Offsets []noc.Cycles
	// MaxPacketsPerFlow stops releasing packets of a flow after this many
	// (0 = release for the whole duration).
	MaxPacketsPerFlow int
	// RecordLatencies makes the Result keep every completed packet's
	// latency (Result.Latencies), enabling distribution statistics at the
	// cost of memory proportional to the number of packets.
	RecordLatencies bool
	// InjectJitter enables release jitter: each packet of a flow with
	// Jitter J > 0 is released uniformly in [tick, tick+J] after its
	// periodic tick, deterministically in JitterSeed. Latencies are
	// measured from the actual (jittered) release, matching the analyses'
	// convention (an interferer's jitter appears in the interference
	// terms; a flow's own jitter does not extend its own bound).
	InjectJitter bool
	// JitterSeed seeds the jitter sampler (used only with InjectJitter).
	JitterSeed int64
	// TraceWriter, when non-nil, receives one CSV line per flit transfer:
	// cycle,link,flow,packet,flit. Intended for debugging and for the
	// cmd/nocsim -trace option; it slows simulation down considerably.
	TraceWriter io.Writer
}

// Result holds the outcome of a run.
type Result struct {
	// WorstLatency[i] is the maximum observed latency (release to arrival
	// of the last flit) over the completed packets of flow i, or -1 when
	// none completed within the horizon.
	WorstLatency []noc.Cycles
	// TotalLatency[i] is the sum of observed latencies (for averages).
	TotalLatency []noc.Cycles
	// Completed[i] counts completed packets of flow i.
	Completed []int
	// Released[i] counts released packets of flow i.
	Released []int
	// InFlight counts packets not yet fully delivered at the horizon.
	InFlight int
	// DeadlineMisses[i] counts completed packets of flow i whose observed
	// latency exceeded the flow deadline.
	DeadlineMisses []int
	// Latencies[i] holds the latency of every completed packet of flow i
	// in completion order (only with Config.RecordLatencies).
	Latencies [][]noc.Cycles
	// MaxOccupancy[i][h] is the maximum number of flits of flow i ever
	// held in the virtual-channel buffer fed by hop h of its route
	// (h in [0, |route|-2]). Occupancy can never exceed the platform's
	// buffer depth — that is the credit-based flow control at work — and
	// watching it grow along the contention domain during a downstream
	// blocking is exactly the "buffered interference" of the paper.
	MaxOccupancy [][]int
}

// PeakOccupancy returns the largest buffer occupancy flow i reached on
// any hop of its route.
func (r *Result) PeakOccupancy(i int) int {
	peak := 0
	for _, o := range r.MaxOccupancy[i] {
		if o > peak {
			peak = o
		}
	}
	return peak
}

// MeanLatency returns the average observed latency of flow i, or -1 when
// no packet of the flow completed.
func (r *Result) MeanLatency(i int) float64 {
	if r.Completed[i] == 0 {
		return -1
	}
	return float64(r.TotalLatency[i]) / float64(r.Completed[i])
}

type packet struct {
	flow     int
	id       int
	release  noc.Cycles
	length   int
	injected int // flits handed to the injection link so far
	arrived  int // flits delivered to the destination node so far
}

// flit is one flow-control unit inside a VC buffer.
type flit struct {
	pkt *packet
	seq int
	// readyAt is the earliest cycle a header flit may compete for the
	// next link (arrival + routl); body flits are ready on arrival.
	readyAt noc.Cycles
}

// vcFIFO is the FIFO buffer of one virtual channel at one router input
// port. Because flow priorities are unique and each priority has its own
// VC, each FIFO carries flits of exactly one flow.
type vcFIFO struct {
	flits    []flit
	head     int
	inflight int // flits transferred but not yet arrived (credit debt)
}

func (f *vcFIFO) len() int { return len(f.flits) - f.head }

func (f *vcFIFO) occupancy() int { return f.len() + f.inflight }

func (f *vcFIFO) push(fl flit) {
	if f.head > 0 && f.head == len(f.flits) {
		f.flits = f.flits[:0]
		f.head = 0
	} else if f.head > 64 && f.head*2 >= len(f.flits) {
		n := copy(f.flits, f.flits[f.head:])
		f.flits = f.flits[:n]
		f.head = 0
	}
	f.flits = append(f.flits, fl)
}

func (f *vcFIFO) peek() *flit { return &f.flits[f.head] }

func (f *vcFIFO) pop() flit {
	fl := f.flits[f.head]
	f.head++
	return fl
}

// arrival is a flit in transit over a link.
type arrival struct {
	at   noc.Cycles
	flow int
	hop  int // index of the link just crossed in the flow's route
	fl   flit
}

// engine is the mutable simulation state.
type engine struct {
	sys *traffic.System
	cfg Config

	linkl noc.Cycles
	routl noc.Cycles
	buf   int

	routes []noc.Route
	// fifos[flow][hop] is the VC buffer fed by route[hop], for
	// hop in [0, len(route)-2]. The ejection link feeds the sink.
	fifos [][]*vcFIFO
	// onLink[l] lists the (flow, hop) pairs whose route crosses link l,
	// i.e. the arbitration candidates of link l.
	onLink [][]cand

	busyUntil []noc.Cycles // per link

	// source state per flow
	queue       [][]*packet // released, not fully injected
	nextRelease []noc.Cycles
	released    []int
	pktSeq      []int
	// jittered releases scheduled but not yet due, ordered by time.
	pending [][]noc.Cycles
	jitter  *rand.Rand

	// arrivals is a FIFO of in-transit flits; since every transfer takes
	// exactly linkl cycles, arrivals complete in submission order.
	arrivals    []arrival
	arrivalHead int

	res       *Result
	inFlight  int
	flitsLive int // flits inside FIFOs or in transit
}

type cand struct{ flow, hop int }

// Run simulates the system for cfg.Duration cycles and reports the
// observed latencies. The flow set must have unique priorities (enforced
// by traffic.NewSystem).
func Run(sys *traffic.System, cfg Config) (*Result, error) {
	if cfg.Duration < 1 {
		return nil, fmt.Errorf("sim: Duration must be >= 1 cycle, got %d", cfg.Duration)
	}
	if cfg.Offsets != nil && len(cfg.Offsets) != sys.NumFlows() {
		return nil, fmt.Errorf("sim: got %d offsets for %d flows", len(cfg.Offsets), sys.NumFlows())
	}
	for i, off := range cfg.Offsets {
		if off < 0 {
			return nil, fmt.Errorf("sim: flow %d has negative offset %d", i, off)
		}
	}
	e := newEngine(sys, cfg)
	e.run()
	return e.res, nil
}

func newEngine(sys *traffic.System, cfg Config) *engine {
	n := sys.NumFlows()
	topo := sys.Topology()
	rc := topo.Config()
	e := &engine{
		sys:         sys,
		cfg:         cfg,
		linkl:       rc.LinkLatency,
		routl:       rc.RouteLatency,
		buf:         rc.BufDepth,
		routes:      make([]noc.Route, n),
		fifos:       make([][]*vcFIFO, n),
		onLink:      make([][]cand, topo.NumLinks()),
		busyUntil:   make([]noc.Cycles, topo.NumLinks()),
		queue:       make([][]*packet, n),
		nextRelease: make([]noc.Cycles, n),
		released:    make([]int, n),
		pktSeq:      make([]int, n),
		pending:     make([][]noc.Cycles, n),
		jitter:      rand.New(rand.NewSource(cfg.JitterSeed)),
		res: &Result{
			WorstLatency:   make([]noc.Cycles, n),
			TotalLatency:   make([]noc.Cycles, n),
			Completed:      make([]int, n),
			Released:       make([]int, n),
			DeadlineMisses: make([]int, n),
			MaxOccupancy:   make([][]int, n),
		},
	}
	if cfg.RecordLatencies {
		e.res.Latencies = make([][]noc.Cycles, n)
	}
	for i := 0; i < n; i++ {
		e.res.WorstLatency[i] = -1
		e.routes[i] = sys.Route(i)
		e.res.MaxOccupancy[i] = make([]int, e.routes[i].Len()-1)
		e.fifos[i] = make([]*vcFIFO, e.routes[i].Len()-1)
		for h := range e.fifos[i] {
			e.fifos[i][h] = &vcFIFO{}
		}
		for h, l := range e.routes[i] {
			e.onLink[l] = append(e.onLink[l], cand{flow: i, hop: h})
		}
		if cfg.Offsets != nil {
			e.nextRelease[i] = cfg.Offsets[i]
		}
	}
	// Keep candidate lists priority-sorted so arbitration scans stop at
	// the first eligible candidate.
	for l := range e.onLink {
		cands := e.onLink[l]
		for a := 1; a < len(cands); a++ {
			for b := a; b > 0 && sys.Flow(cands[b].flow).Priority < sys.Flow(cands[b-1].flow).Priority; b-- {
				cands[b], cands[b-1] = cands[b-1], cands[b]
			}
		}
	}
	return e
}

func (e *engine) run() {
	var transfers []cand
	for t := noc.Cycles(0); t < e.cfg.Duration; t++ {
		// 1. Deliver flits whose link traversal completes at t.
		for e.arrivalHead < len(e.arrivals) && e.arrivals[e.arrivalHead].at <= t {
			a := e.arrivals[e.arrivalHead]
			e.arrivalHead++
			e.deliver(a)
		}
		if e.arrivalHead == len(e.arrivals) && e.arrivalHead > 0 {
			e.arrivals = e.arrivals[:0]
			e.arrivalHead = 0
		}
		// 2. Release periodic packets whose tick is due. With jitter
		// injection the actual release may trail the tick by up to J
		// cycles; releases of one flow stay ordered (a source emits
		// packets in order).
		for i := 0; i < e.sys.NumFlows(); i++ {
			f := e.sys.Flow(i)
			for e.nextRelease[i] <= t {
				if e.cfg.MaxPacketsPerFlow > 0 && e.released[i] >= e.cfg.MaxPacketsPerFlow {
					break
				}
				e.released[i]++
				relAt := e.nextRelease[i]
				if e.cfg.InjectJitter && f.Jitter > 0 {
					relAt += noc.Cycles(e.jitter.Int63n(int64(f.Jitter) + 1))
					if n := len(e.pending[i]); n > 0 && relAt < e.pending[i][n-1] {
						relAt = e.pending[i][n-1]
					}
				}
				if relAt <= t {
					e.releasePacket(i, relAt)
				} else {
					e.pending[i] = append(e.pending[i], relAt)
				}
				e.nextRelease[i] += f.Period
			}
			for len(e.pending[i]) > 0 && e.pending[i][0] <= t {
				e.releasePacket(i, e.pending[i][0])
				e.pending[i] = e.pending[i][1:]
			}
		}
		// Fast-forward across idle gaps: nothing can happen before the
		// next (possibly jittered) release when the network is empty.
		if e.flitsLive == 0 && e.allQueuesEmpty() {
			next := e.cfg.Duration
			for i := range e.nextRelease {
				if len(e.pending[i]) > 0 && e.pending[i][0] < next {
					next = e.pending[i][0]
				}
				if e.cfg.MaxPacketsPerFlow > 0 && e.released[i] >= e.cfg.MaxPacketsPerFlow {
					continue
				}
				if e.nextRelease[i] < next {
					next = e.nextRelease[i]
				}
			}
			if next > t+1 {
				t = next - 1 // loop increment brings us to the release
			}
			continue
		}
		// 3. Arbitrate every link: highest-priority eligible candidate
		// (head flit, routed, with downstream credit) wins.
		transfers = transfers[:0]
		for l, cands := range e.onLink {
			if e.busyUntil[l] > t || len(cands) == 0 {
				continue
			}
			for _, c := range cands {
				if e.eligible(c, t) {
					transfers = append(transfers, c)
					break
				}
			}
		}
		// 4. Apply the transfers decided this cycle simultaneously.
		for _, c := range transfers {
			e.transfer(c, t)
		}
	}
	e.res.InFlight = e.inFlight
}

// releasePacket makes a packet of flow i available for injection at
// cycle relAt (its latency is measured from relAt).
func (e *engine) releasePacket(i int, relAt noc.Cycles) {
	p := &packet{
		flow:    i,
		id:      e.pktSeq[i],
		release: relAt,
		length:  e.sys.Flow(i).Length,
	}
	e.pktSeq[i]++
	e.res.Released[i]++
	e.inFlight++
	e.queue[i] = append(e.queue[i], p)
}

func (e *engine) allQueuesEmpty() bool {
	for _, q := range e.queue {
		if len(q) > 0 {
			return false
		}
	}
	return true
}

// eligible reports whether candidate c (flow crossing hop c.hop of its
// route) can transfer a flit this cycle: it must have a head flit that
// has been routed, and the downstream VC buffer must have a free slot
// (credit-based flow control).
func (e *engine) eligible(c cand, t noc.Cycles) bool {
	route := e.routes[c.flow]
	if c.hop == 0 {
		// Injection: the source node offers the next flit of its oldest
		// pending packet.
		q := e.queue[c.flow]
		if len(q) == 0 {
			return false
		}
		return e.fifos[c.flow][0].occupancy() < e.buf
	}
	f := e.fifos[c.flow][c.hop-1]
	if f.len() == 0 {
		return false
	}
	if f.peek().readyAt > t {
		return false // header still being routed
	}
	if c.hop == route.Len()-1 {
		return true // ejection into the node: always consumes
	}
	return e.fifos[c.flow][c.hop].occupancy() < e.buf
}

// transfer moves one flit of candidate c onto its link at cycle t.
func (e *engine) transfer(c cand, t noc.Cycles) {
	route := e.routes[c.flow]
	l := route[c.hop]
	var fl flit
	if c.hop == 0 {
		p := e.queue[c.flow][0]
		fl = flit{pkt: p, seq: p.injected}
		p.injected++
		if p.injected == p.length {
			e.queue[c.flow] = e.queue[c.flow][1:]
		}
		e.flitsLive++
	} else {
		fl = e.fifos[c.flow][c.hop-1].pop()
	}
	if c.hop < route.Len()-1 {
		e.fifos[c.flow][c.hop].inflight++
	}
	e.busyUntil[l] = t + e.linkl
	e.arrivals = append(e.arrivals, arrival{at: t + e.linkl, flow: c.flow, hop: c.hop, fl: fl})
	if e.cfg.TraceWriter != nil {
		fmt.Fprintf(e.cfg.TraceWriter, "%d,%d,%d,%d,%d\n", t, int(l), c.flow, fl.pkt.id, fl.seq)
	}
}

// deliver completes a link traversal: the flit lands in the next VC
// buffer, or in the destination node when the link was the ejection one.
func (e *engine) deliver(a arrival) {
	route := e.routes[a.flow]
	if a.hop == route.Len()-1 {
		// Ejected: consumed by the destination node.
		p := a.fl.pkt
		p.arrived++
		e.flitsLive--
		if p.arrived == p.length {
			e.inFlight--
			lat := a.at - p.release
			e.res.Completed[a.flow]++
			e.res.TotalLatency[a.flow] += lat
			if lat > e.res.WorstLatency[a.flow] {
				e.res.WorstLatency[a.flow] = lat
			}
			if lat > e.sys.Flow(a.flow).Deadline {
				e.res.DeadlineMisses[a.flow]++
			}
			if e.cfg.RecordLatencies {
				e.res.Latencies[a.flow] = append(e.res.Latencies[a.flow], lat)
			}
		}
		return
	}
	f := e.fifos[a.flow][a.hop]
	f.inflight--
	fl := a.fl
	if fl.seq == 0 {
		fl.readyAt = a.at + e.routl // header pays the routing latency
	} else {
		fl.readyAt = a.at
	}
	f.push(fl)
	if occ := f.len(); occ > e.res.MaxOccupancy[a.flow][a.hop] {
		e.res.MaxOccupancy[a.flow][a.hop] = occ
	}
}
