package sim_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"wormnoc/internal/noc"
	"wormnoc/internal/sim"
	"wormnoc/internal/workload"
)

// TestOccupancyNeverExceedsBufferDepth: the credit-based flow control
// must never let a virtual-channel buffer hold more than buf(Ξ) flits —
// across random platforms, workloads and phasings.
func TestOccupancyNeverExceedsBufferDepth(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		buf := 1 + rng.Intn(8)
		topo := noc.MustMesh(2+rng.Intn(3), 2+rng.Intn(3), noc.RouterConfig{
			BufDepth:     buf,
			LinkLatency:  1 + noc.Cycles(rng.Intn(2)),
			RouteLatency: noc.Cycles(rng.Intn(2)),
		})
		sys, err := workload.Synthetic(topo, workload.SynthConfig{
			NumFlows:  2 + rng.Intn(8),
			PeriodMin: 500,
			PeriodMax: 10_000,
			LenMin:    4,
			LenMax:    128,
			Seed:      seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		offsets := make([]noc.Cycles, sys.NumFlows())
		for i := range offsets {
			offsets[i] = noc.Cycles(rng.Int63n(2_000))
		}
		res, err := sim.Run(sys, sim.Config{Duration: 40_000, Offsets: offsets})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < sys.NumFlows(); i++ {
			if res.PeakOccupancy(i) > buf {
				t.Logf("seed %d flow %d: occupancy %d exceeds buf %d",
					seed, i, res.PeakOccupancy(i), buf)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestBackpressureFillsContentionDomain: in the didactic MPB scenario,
// τ1's downstream hits must fill τ2's buffers to capacity along its route
// — the physical mechanism behind Equation 6's bi = buf·linkl·|cd| bound.
func TestBackpressureFillsContentionDomain(t *testing.T) {
	for _, buf := range []int{2, 10} {
		sys := workload.Didactic(buf)
		res, err := sim.Run(sys, sim.Config{Duration: 20_000})
		if err != nil {
			t.Fatal(err)
		}
		// τ2 (index 1) is blocked downstream by τ1: backpressure must fill
		// its buffers to the full depth somewhere along the route.
		if got := res.PeakOccupancy(1); got != buf {
			t.Errorf("buf=%d: τ2 peak occupancy %d, want the full depth %d", buf, got, buf)
		}
		// At least the |cd| = 3 buffers inside the τ2/τ3 contention domain
		// (hops 1..3 of τ2's 7-link route feed routers 2..4) must have
		// filled completely while τ2 was frozen.
		full := 0
		for h := 1; h <= 3; h++ {
			if res.MaxOccupancy[1][h] == buf {
				full++
			}
		}
		if full != 3 {
			t.Errorf("buf=%d: only %d/3 contention-domain buffers filled: %v",
				buf, full, res.MaxOccupancy[1])
		}
	}
}

// TestZeroLoadOccupancySmall: an uncontended pipelined packet keeps
// buffer occupancy minimal (it streams through).
func TestZeroLoadOccupancySmall(t *testing.T) {
	topo := noc.MustMesh(6, 1, noc.RouterConfig{BufDepth: 10, LinkLatency: 1, RouteLatency: 0})
	sys := workload.Didactic(10)
	_ = topo
	// Only τ2, alone on the network.
	res, err := sim.Run(sys, sim.Config{
		Duration:          10_000,
		Offsets:           []noc.Cycles{9_999, 0, 9_998},
		MaxPacketsPerFlow: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.WorstLatency[1] != sys.C(1) {
		t.Fatalf("τ2 alone should achieve C: %d vs %d", res.WorstLatency[1], sys.C(1))
	}
	// A full-speed pipeline holds at most 2 flits per buffer (one being
	// drained, one arriving).
	if got := res.PeakOccupancy(1); got > 2 {
		t.Errorf("uncontended pipeline occupancy %d, want <= 2: %v", got, res.MaxOccupancy[1])
	}
}
