package sim

import (
	"fmt"
	"sync"

	"wormnoc/internal/noc"
	"wormnoc/internal/parallel"
	"wormnoc/internal/traffic"
)

// SweepResult aggregates a worst-case phasing search.
type SweepResult struct {
	// Worst[i] is the maximum observed latency of flow i over all runs of
	// the sweep (-1 if the flow never completed a packet in any run).
	Worst []noc.Cycles
	// WorstOffset[i] is the swept offset at which Worst[i] was observed.
	WorstOffset []noc.Cycles
	// Runs counts the simulations performed.
	Runs int
}

// SweepOffsets searches for worst-case latencies by varying the release
// offset of one flow while keeping all other offsets from base.Offsets
// (zero when nil). The offset of flow flowIdx takes every value
// 0, step, 2·step, … < maxOffset; each setting is simulated for
// base.Duration cycles and the per-flow maxima are aggregated.
//
// This reproduces the paper's simulation methodology for Table II: the
// MPB effect only manifests when the interfering flow's releases are "not
// in phase" with the others, so the phasing must be searched.
// Simulations run in parallel — each worker draws a reusable Engine from
// a shared pool, so the sweep's cost is simulation, not allocation —
// and the search is deterministic.
func SweepOffsets(sys *traffic.System, base Config, flowIdx int, maxOffset, step noc.Cycles) (*SweepResult, error) {
	if flowIdx < 0 || flowIdx >= sys.NumFlows() {
		return nil, fmt.Errorf("sim: sweep flow index %d out of range (%d flows)", flowIdx, sys.NumFlows())
	}
	if step < 1 || maxOffset < 1 {
		return nil, fmt.Errorf("sim: sweep needs step >= 1 and maxOffset >= 1, got %d and %d", step, maxOffset)
	}
	if base.TraceWriter != nil {
		return nil, fmt.Errorf("sim: tracing is not supported during offset sweeps")
	}
	n := sys.NumFlows()
	out := &SweepResult{
		Worst:       make([]noc.Cycles, n),
		WorstOffset: make([]noc.Cycles, n),
	}
	for i := range out.Worst {
		out.Worst[i] = -1
	}

	var offsets []noc.Cycles
	for off := noc.Cycles(0); off < maxOffset; off += step {
		offsets = append(offsets, off)
	}
	// Per-offset worst latencies, copied out of the pooled engines'
	// reusable results (flat backing block, one row per offset).
	worsts := make([][]noc.Cycles, len(offsets))
	flat := make([]noc.Cycles, len(offsets)*n)

	enginePool := sync.Pool{New: func() any { return NewEngine(sys) }}

	// The shared worker-pool runner stops dispatching remaining offsets
	// as soon as one simulation fails.
	err := (&parallel.Runner{}).Run(len(offsets), func(idx int) error {
		eng := enginePool.Get().(*Engine)
		defer enginePool.Put(eng)
		cfg := base
		cfg.Offsets = make([]noc.Cycles, n)
		copy(cfg.Offsets, base.Offsets)
		cfg.Offsets[flowIdx] = offsets[idx]
		res, err := eng.Run(cfg)
		if err != nil {
			return err
		}
		row := flat[idx*n : (idx+1)*n : (idx+1)*n]
		copy(row, res.WorstLatency)
		worsts[idx] = row
		return nil
	})
	if err != nil {
		return nil, err
	}

	for idx, w := range worsts {
		out.Runs++
		for i := 0; i < n; i++ {
			if w[i] > out.Worst[i] {
				out.Worst[i] = w[i]
				out.WorstOffset[i] = offsets[idx]
			}
		}
	}
	return out, nil
}
