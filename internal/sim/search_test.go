package sim_test

import (
	"testing"

	"wormnoc/internal/core"
	"wormnoc/internal/noc"
	"wormnoc/internal/sim"
	"wormnoc/internal/workload"
)

func TestSearchWorstCaseDidactic(t *testing.T) {
	sys := workload.Didactic(2)
	res, err := sim.SearchWorstCase(sys, sim.SearchConfig{
		Base:   sim.Config{Duration: 20_000},
		Target: 2,
		Seed:   1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The exhaustive single-flow sweep finds 334; the joint search must
	// land in the same region and never beyond the IBN bound.
	if res.Worst < 300 {
		t.Errorf("search found only %d; exhaustive sweep reaches 334", res.Worst)
	}
	if res.Worst > 348 {
		t.Errorf("search found %d beyond the IBN bound 348", res.Worst)
	}
	if res.Runs < 10 {
		t.Errorf("suspiciously few runs: %d", res.Runs)
	}
	if len(res.Offsets) != sys.NumFlows() {
		t.Errorf("offsets shape: %v", res.Offsets)
	}
	// Replaying the reported phasing reproduces the reported latency.
	replay, err := sim.Run(sys, sim.Config{Duration: 20_000, Offsets: res.Offsets})
	if err != nil {
		t.Fatal(err)
	}
	if replay.WorstLatency[2] != res.Worst {
		t.Errorf("replay gives %d, search reported %d", replay.WorstLatency[2], res.Worst)
	}
}

func TestSearchWorstCaseDeterministic(t *testing.T) {
	sys := workload.Didactic(2)
	cfg := sim.SearchConfig{
		Base: sim.Config{Duration: 8_000}, Target: 2, Seed: 9,
		Restarts: 3, RefineSteps: 1, ProbesPerFlow: 4,
	}
	a, err := sim.SearchWorstCase(sys, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := sim.SearchWorstCase(sys, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Worst != b.Worst || a.Runs != b.Runs {
		t.Errorf("search not deterministic: %+v vs %+v", a, b)
	}
}

func TestSearchWorstCaseErrors(t *testing.T) {
	sys := workload.Didactic(2)
	if _, err := sim.SearchWorstCase(sys, sim.SearchConfig{Base: sim.Config{Duration: 100}, Target: 9}); err == nil {
		t.Error("bad target must fail")
	}
	if _, err := sim.SearchWorstCase(sys, sim.SearchConfig{Target: 0}); err == nil {
		t.Error("zero duration must fail")
	}
}

// TestSearchRespectsIBNOnRandomScenario: adversarial phasing search on a
// random MPB-prone system never breaks the IBN bound.
func TestSearchRespectsIBNOnRandomScenario(t *testing.T) {
	topo := noc.MustMesh(3, 3, noc.RouterConfig{BufDepth: 4, LinkLatency: 1, RouteLatency: 0})
	sys, err := workload.Synthetic(topo, workload.SynthConfig{
		NumFlows: 8, PeriodMin: 1_000, PeriodMax: 20_000, LenMin: 16, LenMax: 256, Seed: 77,
	})
	if err != nil {
		t.Fatal(err)
	}
	ibn, err := core.Analyze(sys, core.Options{Method: core.IBN})
	if err != nil {
		t.Fatal(err)
	}
	for target := 0; target < sys.NumFlows(); target += 3 {
		if ibn.Flows[target].Status != core.Schedulable {
			continue
		}
		res, err := sim.SearchWorstCase(sys, sim.SearchConfig{
			Base:     sim.Config{Duration: 60_000},
			Target:   target,
			Restarts: 3, RefineSteps: 1, ProbesPerFlow: 4,
			Seed: int64(target),
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Worst > ibn.R(target) {
			t.Errorf("flow %d: adversarial search found %d beyond IBN bound %d",
				target, res.Worst, ibn.R(target))
		}
	}
}
