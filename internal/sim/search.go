package sim

import (
	"fmt"
	"math/rand"
	"runtime"

	"wormnoc/internal/noc"
	"wormnoc/internal/traffic"
)

// SearchConfig parameterises SearchWorstCase, a randomised search for
// release phasings that maximise one flow's observed latency. Where
// SweepOffsets exhaustively varies a single flow's phase (tractable for
// the didactic example), SearchWorstCase explores the joint phasing
// space of all flows: random restarts followed by greedy coordinate
// refinement of each flow's offset.
//
// The result is a lower bound on the true worst case (as any simulation
// is); its value is adversarial testing of the analytic bounds — every
// latency it finds must stay below R_IBN, and it routinely exceeds the
// unsafe SB/SLA bounds in MPB scenarios.
type SearchConfig struct {
	// Base is the simulation configuration (Duration must be set;
	// Offsets, if non-nil, seed the first probe).
	Base Config
	// Target is the flow whose latency is maximised.
	Target int
	// Restarts is the number of random starting phasings (default 8).
	Restarts int
	// RefineSteps bounds the coordinate-refinement passes per restart
	// (default 2).
	RefineSteps int
	// ProbesPerFlow is the number of offsets tried per flow per
	// refinement pass (default 8).
	ProbesPerFlow int
	// Seed makes the search deterministic.
	Seed int64
	// Workers bounds the engines evaluating probe batches concurrently;
	// 0 (or negative) selects GOMAXPROCS, 1 forces a serial search. The
	// result is identical for any value — only wall-clock time changes —
	// so callers that already parallelise outside (the oracle fans out
	// across target flows) set 1 to avoid oversubscription.
	Workers int
	// Rand, when non-nil, supplies every random choice of the search and
	// Seed is ignored. It lets a caller running many searches (the
	// verification oracle) thread one seeded generator through all of
	// them, so a reported worst case is reproducible from that seed
	// alone — the search has no other randomness source. The generator
	// is used from a single goroutine; it must not be shared with
	// concurrent searches.
	Rand *rand.Rand
}

// SearchResult reports the worst phasing found.
type SearchResult struct {
	// Worst is the maximum observed latency of the target flow.
	Worst noc.Cycles
	// Offsets is the phasing achieving it.
	Offsets []noc.Cycles
	// Runs counts simulations performed.
	Runs int
}

// SearchWorstCase runs the randomised phasing search.
//
// The search is the simulator's hottest client — thousands of runs per
// invocation — so it recycles aggressively: probe batches go through
// RunMany with persistent per-worker engine slots (one reusable Engine
// per worker for the whole search), fixed candidate-offset buffers, and
// engine-owned results. A probe costs zero allocations in steady state.
// The result depends only on the configuration and seed, never on the
// worker count.
func SearchWorstCase(sys *traffic.System, cfg SearchConfig) (*SearchResult, error) {
	n := sys.NumFlows()
	if cfg.Target < 0 || cfg.Target >= n {
		return nil, fmt.Errorf("sim: search target %d out of range (%d flows)", cfg.Target, n)
	}
	if cfg.Base.Duration < 1 {
		return nil, fmt.Errorf("sim: search needs Base.Duration >= 1")
	}
	if cfg.Base.TraceWriter != nil {
		return nil, fmt.Errorf("sim: tracing is not supported during searches")
	}
	if cfg.Restarts <= 0 {
		cfg.Restarts = 8
	}
	if cfg.RefineSteps <= 0 {
		cfg.RefineSteps = 2
	}
	if cfg.ProbesPerFlow <= 0 {
		cfg.ProbesPerFlow = 8
	}
	rng := cfg.Rand
	if rng == nil {
		rng = rand.New(rand.NewSource(cfg.Seed))
	}

	best := &SearchResult{Worst: -1, Offsets: make([]noc.Cycles, n)}
	seqEngine := NewEngine(sys)
	evaluate := func(offsets []noc.Cycles) (noc.Cycles, error) {
		run := cfg.Base
		run.Offsets = offsets
		res, err := seqEngine.Run(run)
		if err != nil {
			return -1, err
		}
		best.Runs++
		return res.WorstLatency[cfg.Target], nil
	}

	// Candidate-offset buffers and probe specs, reused for every
	// refinement batch, and persistent engine slots handed to RunMany so
	// each worker keeps one warm Engine across all batches.
	cands := make([][]noc.Cycles, cfg.ProbesPerFlow)
	candStore := make([]noc.Cycles, cfg.ProbesPerFlow*n)
	for i := range cands {
		cands[i], candStore = candStore[:n:n], candStore[n:]
	}
	out := make([]noc.Cycles, cfg.ProbesPerFlow)
	specs := make([]RunSpec, cfg.ProbesPerFlow)
	for i := range specs {
		specs[i].Sys = sys
		specs[i].Cfg = cfg.Base
		specs[i].Cfg.Offsets = cands[i]
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > cfg.ProbesPerFlow {
		workers = cfg.ProbesPerFlow
	}
	many := ManyOptions{Workers: workers, Engines: make([]*Engine, workers)}

	// evalBatch evaluates cands[0:k] into out[0:k].
	evalBatch := func(k int) error {
		err := RunMany(specs[:k], many, func(i int, res *Result) error {
			out[i] = res.WorstLatency[cfg.Target]
			return nil
		})
		if err != nil {
			return err
		}
		best.Runs += k
		return nil
	}

	cur := make([]noc.Cycles, n)
	randomOffsets := func() {
		for i := 0; i < n; i++ {
			cur[i] = noc.Cycles(rng.Int63n(int64(sys.Flow(i).Period)))
		}
		cur[cfg.Target] = 0 // measure the target from a fixed phase
	}

	for restart := 0; restart < cfg.Restarts; restart++ {
		if restart == 0 && cfg.Base.Offsets != nil {
			copy(cur, cfg.Base.Offsets)
		} else {
			randomOffsets()
		}
		curWorst, err := evaluate(cur)
		if err != nil {
			return nil, err
		}
		for pass := 0; pass < cfg.RefineSteps; pass++ {
			improved := false
			for f := 0; f < n; f++ {
				if f == cfg.Target {
					continue
				}
				period := int64(sys.Flow(f).Period)
				for p := 0; p < cfg.ProbesPerFlow; p++ {
					copy(cands[p], cur)
					cands[p][f] = noc.Cycles(rng.Int63n(period))
				}
				if err := evalBatch(cfg.ProbesPerFlow); err != nil {
					return nil, err
				}
				for i := 0; i < cfg.ProbesPerFlow; i++ {
					if out[i] > curWorst {
						curWorst = out[i]
						copy(cur, cands[i])
						improved = true
					}
				}
			}
			if !improved {
				break
			}
		}
		if curWorst > best.Worst {
			best.Worst = curWorst
			copy(best.Offsets, cur)
		}
	}
	return best, nil
}
