package sim

import (
	"math"
	"math/rand"
	"slices"
	"strconv"

	"wormnoc/internal/noc"
	"wormnoc/internal/traffic"
)

// maxCycles is the "never" sentinel for event times.
const maxCycles = noc.Cycles(math.MaxInt64)

// traceFlushSize is the trace buffer high-water mark: one Write per
// ~32KiB of CSV instead of one Fprintf per flit.
const traceFlushSize = 32 << 10

// vcFIFO is the FIFO buffer of one virtual channel at one router input
// port. Because flow priorities are unique and each priority has its own
// VC, each FIFO carries flits of exactly one flow. It is head-indexed:
// pop advances a cursor instead of re-slicing, and push reclaims the
// dead prefix, so the backing array reaches a steady size and is reused
// across Engine runs.
type vcFIFO struct {
	flits    []flit
	head     int
	inflight int // flits transferred but not yet arrived (credit debt)
}

func (f *vcFIFO) len() int { return len(f.flits) - f.head }

func (f *vcFIFO) occupancy() int { return f.len() + f.inflight }

func (f *vcFIFO) push(fl flit) {
	if f.head > 0 && f.head == len(f.flits) {
		f.flits = f.flits[:0]
		f.head = 0
	} else if f.head > 64 && f.head*2 >= len(f.flits) {
		n := copy(f.flits, f.flits[f.head:])
		f.flits = f.flits[:n]
		f.head = 0
	}
	f.flits = append(f.flits, fl)
}

func (f *vcFIFO) peek() *flit { return &f.flits[f.head] }

func (f *vcFIFO) pop() flit {
	fl := f.flits[f.head]
	f.head++
	return fl
}

func (f *vcFIFO) reset() {
	f.flits = f.flits[:0]
	f.head = 0
	f.inflight = 0
}

// pktQueue is a head-indexed queue of released-but-not-fully-injected
// packets of one flow (the source queue). Like vcFIFO it reclaims its
// dead prefix instead of re-slicing, so the backing array is reused.
type pktQueue struct {
	buf  []*packet
	head int
}

func (q *pktQueue) len() int { return len(q.buf) - q.head }

func (q *pktQueue) push(p *packet) {
	if q.head > 0 && q.head == len(q.buf) {
		q.buf = q.buf[:0]
		q.head = 0
	} else if q.head > 32 && q.head*2 >= len(q.buf) {
		n := copy(q.buf, q.buf[q.head:])
		clear(q.buf[n:])
		q.buf = q.buf[:n]
		q.head = 0
	}
	q.buf = append(q.buf, p)
}

func (q *pktQueue) peek() *packet { return q.buf[q.head] }

func (q *pktQueue) pop() {
	q.buf[q.head] = nil
	q.head++
}

func (q *pktQueue) reset() {
	clear(q.buf)
	q.buf = q.buf[:0]
	q.head = 0
}

// cycQueue is a head-indexed queue of cycle instants: the
// scheduled-but-not-yet-due jittered releases of one flow. It replaces
// the old `pending[i] = pending[i][1:]` re-slicing, which leaked the
// consumed prefix capacity forever.
type cycQueue struct {
	buf  []noc.Cycles
	head int
}

func (q *cycQueue) len() int { return len(q.buf) - q.head }

func (q *cycQueue) push(c noc.Cycles) {
	if q.head > 0 && q.head == len(q.buf) {
		q.buf = q.buf[:0]
		q.head = 0
	} else if q.head > 32 && q.head*2 >= len(q.buf) {
		n := copy(q.buf, q.buf[q.head:])
		q.buf = q.buf[:n]
		q.head = 0
	}
	q.buf = append(q.buf, c)
}

func (q *cycQueue) front() noc.Cycles { return q.buf[q.head] }

func (q *cycQueue) back() noc.Cycles { return q.buf[len(q.buf)-1] }

func (q *cycQueue) pop() noc.Cycles {
	c := q.buf[q.head]
	q.head++
	return c
}

func (q *cycQueue) reset() {
	q.buf = q.buf[:0]
	q.head = 0
}

// relEvent is one entry of the release heap: flow flow's earliest
// pending source event (periodic tick or due jittered release) at cycle
// at. Each flow has at most one live entry.
type relEvent struct {
	at   noc.Cycles
	flow int32
}

// linkEvent is one entry of the wakeup heap: link link must be
// re-arbitrated at cycle at (its busy period expires, or a header flit
// at a feeding FIFO finishes routing).
type linkEvent struct {
	at   noc.Cycles
	link int32
}

// Engine is a reusable event-driven simulation engine bound to one
// system. Build it once with NewEngine and call Run repeatedly: every
// internal buffer (VC FIFOs, source queues, arrival ring, event heaps,
// packet pool, result slices) is recycled across runs, so steady-state
// operation allocates nothing. That is what makes the adversarial
// phasing search and the verification oracle — thousands of runs per
// scenario — cheap.
//
// The Result returned by Run is owned by the engine and overwritten by
// the next Run; callers that retain it across runs must copy it first.
// An Engine is not safe for concurrent use; give each goroutine its own.
//
// Engine produces bit-identical Results and trace streams to
// RunReference; see DESIGN.md §10 for why cycle skipping and dirty-link
// arbitration cannot change observable state.
type Engine struct {
	sys *traffic.System
	cfg Config

	linkl noc.Cycles
	routl noc.Cycles
	buf   int
	n     int // flows

	flows  []traffic.Flow
	routes []noc.Route
	// fifos[flow][hop] is the VC buffer fed by route[hop], for
	// hop in [0, len(route)-2]. The ejection link feeds the sink.
	fifos [][]vcFIFO
	// onLink[l] lists the (flow, hop) pairs whose route crosses link l,
	// priority-sorted, i.e. the arbitration candidates of link l.
	onLink [][]cand

	busyUntil []noc.Cycles // per link

	// source state per flow
	queue       []pktQueue
	nextRelease []noc.Cycles
	released    []int
	pktSeq      []int
	pending     []cycQueue // jittered releases not yet due, time-ordered
	jitter      *rand.Rand

	// arrivals is a FIFO of in-transit flits; since every transfer takes
	// exactly linkl cycles, arrivals complete in submission order.
	arrivals    []arrival
	arrivalHead int

	// Event state. dirty marks links whose arbitration inputs changed
	// since they were last examined; dirtyList holds their ids. relHeap
	// orders each flow's next source event by (time, flow) — the flow
	// tie-break preserves the reference engine's flow-index release
	// order, which the shared jitter stream observes. wakeHeap holds
	// timed link re-arbitrations; linkWakeAt[l] is the earliest pending
	// wakeup of link l (dedup so a hot link does not flood the heap).
	dirty      []bool
	dirtyList  []int
	curDirty   []int // dirtyList snapshot being arbitrated this cycle
	relHeap    []relEvent
	wakeHeap   []linkEvent
	linkWakeAt []noc.Cycles

	transfers []cand

	// Locked-arbitration fast-path state (DESIGN.md §13). fastOK is the
	// platform gate: the batch analysis is only valid when every link
	// transfer takes one cycle and headers route instantly, so flits are
	// ready on arrival and the wakeup heap stays empty. prevTransfers is
	// last executed cycle's transfer set (the stability pre-filter);
	// winnerOf maps a link to its index in transfers during an analysis
	// (-1 outside); batchOrder and lastFlits are bulk-apply scratch.
	fastOK        bool
	prevTransfers []cand
	winnerOf      []int32
	batchOrder    []int32
	lastFlits     []flit

	// packet pool: pool holds every packet this engine ever allocated,
	// free the currently reusable ones. reset refills free from pool
	// wholesale, so packets stranded in-flight at a horizon are
	// recovered too.
	pool []*packet
	free []*packet

	traceBuf []byte

	res       *Result
	inFlight  int
	flitsLive int // flits inside FIFOs or in transit
}

// NewEngine builds a reusable event-driven engine for sys. The engine
// captures the system's topology, routes and per-link candidate lists
// once; each Run then only resets mutable state.
func NewEngine(sys *traffic.System) *Engine {
	n := sys.NumFlows()
	topo := sys.Topology()
	rc := topo.Config()
	e := &Engine{
		sys:         sys,
		linkl:       rc.LinkLatency,
		routl:       rc.RouteLatency,
		buf:         rc.BufDepth,
		n:           n,
		flows:       make([]traffic.Flow, n),
		routes:      make([]noc.Route, n),
		fifos:       make([][]vcFIFO, n),
		onLink:      make([][]cand, topo.NumLinks()),
		busyUntil:   make([]noc.Cycles, topo.NumLinks()),
		queue:       make([]pktQueue, n),
		nextRelease: make([]noc.Cycles, n),
		released:    make([]int, n),
		pktSeq:      make([]int, n),
		pending:     make([]cycQueue, n),
		jitter:      rand.New(rand.NewSource(0)),
		dirty:       make([]bool, topo.NumLinks()),
		linkWakeAt:  make([]noc.Cycles, topo.NumLinks()),
		fastOK:      rc.LinkLatency == 1 && rc.RouteLatency == 0,
		winnerOf:    make([]int32, topo.NumLinks()),
		res: &Result{
			WorstLatency:   make([]noc.Cycles, n),
			TotalLatency:   make([]noc.Cycles, n),
			Completed:      make([]int, n),
			Released:       make([]int, n),
			DeadlineMisses: make([]int, n),
			MaxOccupancy:   make([][]int, n),
		},
	}
	for i := range e.winnerOf {
		e.winnerOf[i] = -1
	}
	hops := 0
	for i := 0; i < n; i++ {
		e.flows[i] = sys.Flow(i)
		e.routes[i] = sys.Route(i)
		hops += e.routes[i].Len() - 1
	}
	fifoStore := make([]vcFIFO, hops)
	occStore := make([]int, hops)
	for i := 0; i < n; i++ {
		h := e.routes[i].Len() - 1
		e.fifos[i], fifoStore = fifoStore[:h:h], fifoStore[h:]
		e.res.MaxOccupancy[i], occStore = occStore[:h:h], occStore[h:]
		for hop, l := range e.routes[i] {
			e.onLink[l] = append(e.onLink[l], cand{flow: i, hop: hop})
		}
	}
	// Keep candidate lists priority-sorted so arbitration scans stop at
	// the first eligible candidate.
	for l := range e.onLink {
		cands := e.onLink[l]
		for a := 1; a < len(cands); a++ {
			for b := a; b > 0 && e.flows[cands[b].flow].Priority < e.flows[cands[b-1].flow].Priority; b-- {
				cands[b], cands[b-1] = cands[b-1], cands[b]
			}
		}
	}
	return e
}

// Run simulates the system for cfg.Duration cycles and reports the
// observed latencies. The returned Result is owned by the engine and
// valid only until the next Run.
func (e *Engine) Run(cfg Config) (*Result, error) {
	if err := validateConfig(e.sys, cfg); err != nil {
		return nil, err
	}
	e.reset(cfg)
	e.run()
	return e.res, nil
}

// reset rewinds every piece of mutable state to cycle 0 while keeping
// backing arrays, so a warm engine allocates nothing.
func (e *Engine) reset(cfg Config) {
	e.cfg = cfg
	for i := range e.busyUntil {
		e.busyUntil[i] = 0
		e.dirty[i] = false
		e.linkWakeAt[i] = maxCycles
	}
	for i := 0; i < e.n; i++ {
		e.queue[i].reset()
		e.pending[i].reset()
		if cfg.Offsets != nil {
			e.nextRelease[i] = cfg.Offsets[i]
		} else {
			e.nextRelease[i] = 0
		}
		e.released[i] = 0
		e.pktSeq[i] = 0
		for h := range e.fifos[i] {
			e.fifos[i][h].reset()
			e.res.MaxOccupancy[i][h] = 0
		}
		e.res.WorstLatency[i] = -1
		e.res.TotalLatency[i] = 0
		e.res.Completed[i] = 0
		e.res.Released[i] = 0
		e.res.DeadlineMisses[i] = 0
	}
	if cfg.RecordLatencies {
		if e.res.Latencies == nil {
			e.res.Latencies = make([][]noc.Cycles, e.n)
		}
		for i := range e.res.Latencies {
			e.res.Latencies[i] = e.res.Latencies[i][:0]
		}
	} else {
		e.res.Latencies = nil
	}
	e.res.InFlight = 0
	e.jitter.Seed(cfg.JitterSeed)
	e.arrivals = e.arrivals[:0]
	e.arrivalHead = 0
	e.dirtyList = e.dirtyList[:0]
	e.curDirty = e.curDirty[:0]
	e.relHeap = e.relHeap[:0]
	e.wakeHeap = e.wakeHeap[:0]
	e.transfers = e.transfers[:0]
	e.prevTransfers = e.prevTransfers[:0]
	e.res.Stats = Stats{}
	e.free = append(e.free[:0], e.pool...)
	e.traceBuf = e.traceBuf[:0]
	e.inFlight = 0
	e.flitsLive = 0
}

// run is the event-driven main loop. Each executed cycle does the same
// phases, in the same order, as the reference engine: deliver arrivals,
// release due packets, arbitrate, apply transfers. The difference is
// what it does NOT do: flows are only visited when their release heap
// entry is due, links are only arbitrated when marked dirty, and when a
// cycle ends with nothing dirty, t jumps straight to the next event
// (earliest arrival, release, or link wakeup) — by construction no
// state can change in between, so the skip is unobservable.
func (e *Engine) run() {
	for i := 0; i < e.n; i++ {
		e.relPush(e.nextRelease[i], int32(i))
	}
	for t := noc.Cycles(0); t < e.cfg.Duration; t++ {
		// 1. Deliver flits whose link traversal completes at t. Each
		// delivery marks the link the landing FIFO feeds as dirty.
		for e.arrivalHead < len(e.arrivals) && e.arrivals[e.arrivalHead].at <= t {
			a := e.arrivals[e.arrivalHead]
			e.arrivalHead++
			e.deliver(a)
		}
		if e.arrivalHead == len(e.arrivals) && e.arrivalHead > 0 {
			e.arrivals = e.arrivals[:0]
			e.arrivalHead = 0
		} else if e.arrivalHead > 64 && e.arrivalHead*2 >= len(e.arrivals) {
			n := copy(e.arrivals, e.arrivals[e.arrivalHead:])
			e.arrivals = e.arrivals[:n]
			e.arrivalHead = 0
		}
		// 2. Timed link wakeups: busy periods expiring at t, headers
		// whose routing delay elapses at t.
		for len(e.wakeHeap) > 0 && e.wakeHeap[0].at <= t {
			l := e.wakeHeap[0].link
			e.wakePop()
			e.markDirty(int(l))
		}
		// 3. Release periodic packets of the flows whose next source
		// event is due. The heap pops same-cycle flows in flow-index
		// order, so the shared jitter stream is consumed exactly as the
		// reference engine's per-cycle flow scan consumes it.
		for len(e.relHeap) > 0 && e.relHeap[0].at <= t {
			i := int(e.relHeap[0].flow)
			e.relPop()
			e.processReleases(i, t)
		}
		// 4. Cycle skip: if no link's inputs changed, arbitration at t
		// (and at every cycle before the next event) is a no-op.
		if len(e.dirtyList) == 0 {
			next := e.cfg.Duration
			if e.arrivalHead < len(e.arrivals) && e.arrivals[e.arrivalHead].at < next {
				next = e.arrivals[e.arrivalHead].at
			}
			if len(e.wakeHeap) > 0 && e.wakeHeap[0].at < next {
				next = e.wakeHeap[0].at
			}
			if len(e.relHeap) > 0 && e.relHeap[0].at < next {
				next = e.relHeap[0].at
			}
			if next > t+1 {
				t = next - 1 // loop increment lands on the event
			}
			continue
		}
		// 5. Arbitrate the dirty links in ascending link order (the
		// reference engine scans links in id order; transfer application
		// and trace emission must match it). Highest-priority eligible
		// candidate (head flit, routed, with downstream credit) wins.
		// The dirty list is swapped out first: marks made while
		// arbitrating and transferring accumulate for cycle t+1.
		e.curDirty, e.dirtyList = e.dirtyList, e.curDirty[:0]
		slices.Sort(e.curDirty)
		e.transfers = e.transfers[:0]
		for _, l := range e.curDirty {
			e.dirty[l] = false
			if e.busyUntil[l] > t {
				// Still busy: revisit when the busy period expires. (An
				// earlier pending wakeup may have absorbed the expiry
				// wake scheduled at transfer time, so re-arm here.)
				e.scheduleWake(e.busyUntil[l], l, t)
				continue
			}
			won := false
			minReady := maxCycles
			for _, c := range e.onLink[l] {
				ok, ready := e.eligible(c, t)
				if ok {
					e.transfers = append(e.transfers, c)
					won = true
					break
				}
				if ready < minReady {
					minReady = ready
				}
			}
			if !won && minReady < maxCycles {
				// Blocked only by routing delay: revisit when the
				// earliest header becomes ready.
				e.scheduleWake(minReady, l, t)
			}
		}
		// 6. Apply the transfers decided this cycle simultaneously.
		// Freed credits and busy links mark/schedule the affected links
		// for the following cycles.
		for _, c := range e.transfers {
			e.transfer(c, t)
		}
		// 7. Locked-arbitration fast path: if this cycle's transfer set
		// repeated the previous cycle's and provably repeats for m more
		// cycles (no release due, every winner keeps flits and credits,
		// every blocked contender stays blocked), apply those m cycles
		// in one bulk step and jump t forward (DESIGN.md §13).
		if e.fastOK && e.cfg.TraceWriter == nil && len(e.transfers) > 0 {
			t += e.tryLockBatch(t)
		}
		e.prevTransfers = append(e.prevTransfers[:0], e.transfers...)
	}
	e.res.InFlight = e.inFlight
	e.flushTrace()
}

func (e *Engine) markDirty(l int) {
	if !e.dirty[l] {
		e.dirty[l] = true
		e.dirtyList = append(e.dirtyList, l)
	}
}

// processReleases runs flow i's source: periodic ticks due at t (with
// jitter sampling), then jittered releases that became due, then
// re-schedules the flow's next event on the release heap. The body is
// the reference engine's per-flow phase 2, verbatim.
func (e *Engine) processReleases(i int, t noc.Cycles) {
	f := &e.flows[i]
	for e.nextRelease[i] <= t {
		if e.cfg.MaxPacketsPerFlow > 0 && e.released[i] >= e.cfg.MaxPacketsPerFlow {
			break
		}
		e.released[i]++
		relAt := e.nextRelease[i]
		if e.cfg.InjectJitter && f.Jitter > 0 {
			relAt += noc.Cycles(e.jitter.Int63n(int64(f.Jitter) + 1))
			if e.pending[i].len() > 0 && relAt < e.pending[i].back() {
				relAt = e.pending[i].back()
			}
		}
		if relAt <= t {
			e.releasePacket(i, relAt)
		} else {
			e.pending[i].push(relAt)
		}
		e.nextRelease[i] += f.Period
	}
	for e.pending[i].len() > 0 && e.pending[i].front() <= t {
		e.releasePacket(i, e.pending[i].pop())
	}
	next := maxCycles
	if !(e.cfg.MaxPacketsPerFlow > 0 && e.released[i] >= e.cfg.MaxPacketsPerFlow) {
		next = e.nextRelease[i]
	}
	if e.pending[i].len() > 0 && e.pending[i].front() < next {
		next = e.pending[i].front()
	}
	if next < maxCycles {
		e.relPush(next, int32(i))
	}
}

// releasePacket makes a packet of flow i available for injection at
// cycle relAt (its latency is measured from relAt) and marks the flow's
// injection link dirty.
func (e *Engine) releasePacket(i int, relAt noc.Cycles) {
	var p *packet
	if n := len(e.free); n > 0 {
		p = e.free[n-1]
		e.free = e.free[:n-1]
	} else {
		p = &packet{}
		e.pool = append(e.pool, p)
	}
	*p = packet{
		flow:    i,
		id:      e.pktSeq[i],
		release: relAt,
		length:  e.flows[i].Length,
	}
	e.pktSeq[i]++
	e.res.Released[i]++
	e.inFlight++
	e.queue[i].push(p)
	e.markDirty(int(e.routes[i][0]))
}

// eligible reports whether candidate c can transfer a flit this cycle.
// When the only obstacle is a header still being routed, it also
// returns the cycle the header becomes ready (else maxCycles), so the
// arbiter can schedule a precise wakeup.
func (e *Engine) eligible(c cand, t noc.Cycles) (bool, noc.Cycles) {
	if c.hop == 0 {
		// Injection: the source node offers the next flit of its oldest
		// pending packet.
		if e.queue[c.flow].len() == 0 {
			return false, maxCycles
		}
		return e.fifos[c.flow][0].occupancy() < e.buf, maxCycles
	}
	f := &e.fifos[c.flow][c.hop-1]
	if f.len() == 0 {
		return false, maxCycles
	}
	if ra := f.peek().readyAt; ra > t {
		return false, ra // header still being routed
	}
	if c.hop == e.routes[c.flow].Len()-1 {
		return true, maxCycles // ejection into the node: always consumes
	}
	return e.fifos[c.flow][c.hop].occupancy() < e.buf, maxCycles
}

// transfer moves one flit of candidate c onto its link at cycle t. It
// schedules the link's busy-expiry wakeup and, when it pops a FIFO,
// marks the upstream link (which just regained a credit) dirty.
func (e *Engine) transfer(c cand, t noc.Cycles) {
	route := e.routes[c.flow]
	l := route[c.hop]
	var fl flit
	if c.hop == 0 {
		q := &e.queue[c.flow]
		p := q.peek()
		fl = flit{pkt: p, seq: p.injected}
		p.injected++
		if p.injected == p.length {
			q.pop()
		}
		e.flitsLive++
	} else {
		fl = e.fifos[c.flow][c.hop-1].pop()
		// The pop freed a slot in fifos[c.flow][c.hop-1], the buffer
		// gating the previous hop's link.
		e.markDirty(int(route[c.hop-1]))
	}
	if c.hop < route.Len()-1 {
		e.fifos[c.flow][c.hop].inflight++
	}
	e.busyUntil[l] = t + e.linkl
	e.scheduleWake(t+e.linkl, int(l), t)
	e.arrivals = append(e.arrivals, arrival{at: t + e.linkl, flow: c.flow, hop: c.hop, fl: fl})
	if e.cfg.TraceWriter != nil {
		e.traceLine(t, int64(l), c.flow, fl.pkt.id, fl.seq)
	}
}

// deliver completes a link traversal: the flit lands in the next VC
// buffer (marking the link that buffer feeds dirty), or in the
// destination node when the link was the ejection one (recycling the
// packet once its last flit arrives).
func (e *Engine) deliver(a arrival) {
	route := e.routes[a.flow]
	if a.hop == route.Len()-1 {
		// Ejected: consumed by the destination node.
		p := a.fl.pkt
		p.arrived++
		e.flitsLive--
		if p.arrived == p.length {
			e.completePacket(a.flow, p, a.at)
		}
		return
	}
	f := &e.fifos[a.flow][a.hop]
	f.inflight--
	fl := a.fl
	if fl.seq == 0 {
		fl.readyAt = a.at + e.routl // header pays the routing latency
	} else {
		fl.readyAt = a.at
	}
	f.push(fl)
	if occ := f.len(); occ > e.res.MaxOccupancy[a.flow][a.hop] {
		e.res.MaxOccupancy[a.flow][a.hop] = occ
	}
	e.markDirty(int(route[a.hop+1]))
}

// completePacket records the completion of packet p of flow flow whose
// last flit arrived at cycle at, and recycles the packet.
func (e *Engine) completePacket(flow int, p *packet, at noc.Cycles) {
	e.inFlight--
	lat := at - p.release
	e.res.Completed[flow]++
	e.res.TotalLatency[flow] += lat
	if lat > e.res.WorstLatency[flow] {
		e.res.WorstLatency[flow] = lat
	}
	if lat > e.flows[flow].Deadline {
		e.res.DeadlineMisses[flow]++
	}
	if e.cfg.RecordLatencies {
		e.res.Latencies[flow] = append(e.res.Latencies[flow], lat)
	}
	e.free = append(e.free, p)
}

// isWinner reports whether (flow, hop) is in the current transfer set.
// Valid only while winnerOf is populated (inside tryLockBatch).
func (e *Engine) isWinner(flow, hop int) bool {
	wk := e.winnerOf[e.routes[flow][hop]]
	return wk >= 0 && e.transfers[wk].flow == flow && e.transfers[wk].hop == hop
}

// tryLockBatch is the locked-arbitration fast path (DESIGN.md §13).
// Called after phase 6 of an executed cycle t whose transfer set T
// equals the previous cycle's, it computes the largest m such that
// cycles t+1..t+m provably transfer exactly T again — every winner keeps
// a flit to send, a credit to send it into, and its priority; every
// other contender of every link that will be (re-)arbitrated stays
// ineligible; and no source event falls inside the window — then applies
// all m cycles in one bulk step and returns m (0 when no profitable
// batch exists). Requires the fastOK platform (linkl=1, routl=0) and no
// trace writer; under that gate the wake heap is empty and the arrival
// ring holds exactly T's flits, in transfer order.
func (e *Engine) tryLockBatch(t noc.Cycles) noc.Cycles {
	T := e.transfers
	if len(T) != len(e.prevTransfers) {
		return 0
	}
	for k, c := range T {
		if e.prevTransfers[k] != c {
			return 0
		}
	}
	// Global bounds: stay inside the horizon, and stop short of the next
	// source event (a release changes some link's contender set).
	m := e.cfg.Duration - 1 - t
	if len(e.relHeap) > 0 {
		if b := e.relHeap[0].at - t - 1; b < m {
			m = b
		}
	}
	if len(e.wakeHeap) > 0 {
		if b := e.wakeHeap[0].at - t - 1; b < m {
			m = b
		}
	}
	if m < 2 {
		return 0
	}
	for k, c := range T {
		e.winnerOf[e.routes[c.flow][c.hop]] = int32(k)
	}
	// The links arbitrated during the batch are exactly the currently
	// dirty ones (T's upstream credit returns and own re-arms) plus T's
	// delivery targets: deliveries, pops and re-arms during a T-only
	// cycle dirty no other link, and no releases fall inside the window.
	for _, l := range e.dirtyList {
		if m = e.analyzeLink(l, m); m < 2 {
			break
		}
	}
	if m >= 2 {
		for _, c := range T {
			route := e.routes[c.flow]
			if c.hop+1 < route.Len() {
				if l := int(route[c.hop+1]); !e.dirty[l] {
					if m = e.analyzeLink(l, m); m < 2 {
						break
					}
				}
			}
		}
	}
	if m >= 2 {
		e.bulkApply(m, t) // needs winnerOf populated
	}
	for _, c := range T {
		e.winnerOf[e.routes[c.flow][c.hop]] = -1
	}
	if m < 2 {
		return 0
	}
	e.res.Stats.FastPathBatches++
	e.res.Stats.FastPathCycles += m
	return m
}

// analyzeLink bounds how many cycles after t link l keeps repeating its
// cycle-t arbitration outcome, capped at m. For a link whose winner is
// in T the bound is the winner's continuation bound (lower-priority
// contenders are never examined while the winner stays eligible); for a
// winnerless link every contender must stay ineligible.
func (e *Engine) analyzeLink(l int, m noc.Cycles) noc.Cycles {
	for _, c := range e.onLink[l] {
		wk := e.winnerOf[e.routes[c.flow][c.hop]]
		if wk >= 0 && e.transfers[wk] == c {
			if b := e.winnerBound(c); b < m {
				m = b
			}
			return m
		}
		if b := e.stayBlockedBound(c); b < m {
			m = b
		}
		if m < 2 {
			return m
		}
	}
	return m
}

// winnerBound returns for how many further cycles winner c keeps
// transferring one flit per cycle: it is limited by the flits its packet
// still has on this hop (transfers never cross a packet boundary inside
// a batch), by the supply of buffered flits when the upstream hop is not
// also transferring, and by downstream credit when the downstream hop is
// not also draining. State is read after cycle t's transfers applied.
func (e *Engine) winnerBound(c cand) noc.Cycles {
	i, h := c.flow, c.hop
	route := e.routes[i]
	if h == 0 {
		q := &e.queue[i]
		if q.len() == 0 {
			return 0 // source drained; next packet needs a release
		}
		p := q.peek()
		b := noc.Cycles(p.length - p.injected)
		if !e.isWinner(i, 1) {
			if cr := noc.Cycles(e.buf - e.fifos[i][0].occupancy()); cr < b {
				b = cr
			}
		}
		return b
	}
	up := &e.fifos[i][h-1]
	feeding := e.isWinner(i, h-1)
	var p2 *packet
	var s2 int
	if up.len() > 0 {
		head := up.peek()
		p2, s2 = head.pkt, head.seq
	} else {
		if !feeding {
			return 0 // nothing buffered and nothing arriving
		}
		// The stream continues with the upstream winner's in-flight flit.
		rf := &e.arrivals[e.arrivalHead+int(e.winnerOf[route[h-1]])].fl
		p2, s2 = rf.pkt, rf.seq
	}
	b := noc.Cycles(p2.length - s2)
	if !feeding {
		if sup := noc.Cycles(up.len()); sup < b {
			b = sup
		}
	}
	if h < route.Len()-1 && !e.isWinner(i, h+1) {
		if cr := noc.Cycles(e.buf - e.fifos[i][h].occupancy()); cr < b {
			b = cr
		}
	}
	return b
}

// stayBlockedBound returns for how many cycles after t the non-winning
// contender c provably stays ineligible. maxCycles means "until some
// event outside the batch model" — a release (globally bounded by the
// release heap) or a transfer by a candidate that itself stays blocked.
// A return of 0 means c is eligible at t+1 and the batch must be
// abandoned; 1 means a transfer in T frees c's blocker next cycle.
func (e *Engine) stayBlockedBound(c cand) noc.Cycles {
	i, g := c.flow, c.hop
	route := e.routes[i]
	if g == 0 {
		if e.queue[i].len() == 0 {
			return maxCycles // refilled only by a release
		}
		if e.fifos[i][0].occupancy() < e.buf {
			return 0 // credit available: eligible at t+1
		}
		if e.isWinner(i, 1) {
			return 1 // the batch itself drains the blocking buffer
		}
		return maxCycles // blocker (i,1) is not transferring in the batch
	}
	up := &e.fifos[i][g-1]
	if up.len() == 0 {
		if e.isWinner(i, g-1) {
			return 0 // upstream winner's flit lands at t+1, ready (routl=0)
		}
		return maxCycles // nothing buffered, feeder not transferring
	}
	// Head flit buffered and ready (routl=0: flits are ready on arrival).
	if g == route.Len()-1 {
		return 0 // ejection always consumes: eligible now
	}
	if e.fifos[i][g].occupancy() < e.buf {
		return 0
	}
	if e.isWinner(i, g+1) {
		return 1
	}
	return maxCycles
}

// bulkApply executes cycles t+1..t+m, all transferring exactly the
// current transfer set, in one step. Winners are processed per flow in
// increasing hop order so upstream pushes land before downstream pops of
// the same flow's buffers; cross-flow winners touch disjoint state. The
// arrival ring is rebuilt with each winner's last transferred flit (in
// flight at t+m+1) and the dirty set left by cycle t's phase 6 is
// already exactly the set cycle t+m would leave, so the normal loop
// resumes at t+m+1 unchanged.
func (e *Engine) bulkApply(m, t noc.Cycles) {
	T := e.transfers
	mi := int(m)
	ord := e.batchOrder[:0]
	for k := range T {
		ord = append(ord, int32(k))
	}
	for a := 1; a < len(ord); a++ {
		for b := a; b > 0; b-- {
			x, y := T[ord[b]], T[ord[b-1]]
			if x.flow > y.flow || (x.flow == y.flow && x.hop > y.hop) {
				break
			}
			ord[b], ord[b-1] = ord[b-1], ord[b]
		}
	}
	e.batchOrder = ord
	if cap(e.lastFlits) < len(T) {
		e.lastFlits = make([]flit, len(T))
	}
	lasts := e.lastFlits[:len(T)]
	for _, k := range ord {
		c := T[k]
		i, h := c.flow, c.hop
		route := e.routes[i]
		// rf is this winner's flit in flight after cycle t: it is the
		// first of the m flits delivered during the batch; the flits
		// transferred during the batch are the next m of the stream.
		rf := e.arrivals[e.arrivalHead+int(k)].fl
		if h == 0 {
			// Source: inject the next m flits of the head packet.
			q := &e.queue[i]
			p := q.peek()
			s0 := p.injected
			p.injected += mi
			if p.injected == p.length {
				q.pop()
			}
			e.flitsLive += mi
			lasts[k] = flit{pkt: p, seq: s0 + mi - 1}
			F := &e.fifos[i][0]
			L0 := F.len()
			occ := L0 + mi
			if e.isWinner(i, 1) {
				occ = L0 + 1
			}
			if occ > e.res.MaxOccupancy[i][0] {
				e.res.MaxOccupancy[i][0] = occ
			}
			rf.readyAt = t + 1
			F.push(rf)
			for j := 1; j < mi; j++ {
				F.push(flit{pkt: p, seq: s0 + j - 1, readyAt: t + 1 + noc.Cycles(j)})
			}
			continue
		}
		up := &e.fifos[i][h-1]
		pops := up.flits[up.head : up.head+mi]
		lasts[k] = pops[mi-1]
		if h == route.Len()-1 {
			// Ejection: the m delivered flits (rf + the first m-1 pops)
			// leave the network. rf may be the last flit of a previous
			// packet, completing it at t+1; the pops all belong to the
			// current head packet and cannot complete it inside the
			// batch (the no-boundary bound keeps its last flit out).
			pOld := rf.pkt
			if rf.seq == pOld.length-1 {
				pOld.arrived++
				e.completePacket(i, pOld, t+1)
				p2 := pops[0].pkt
				p2.arrived += mi - 1
			} else {
				pOld.arrived += mi
			}
			e.flitsLive -= mi
		} else {
			F := &e.fifos[i][h]
			L0 := F.len()
			occ := L0 + mi
			if e.isWinner(i, h+1) {
				occ = L0 + 1
			}
			if occ > e.res.MaxOccupancy[i][h] {
				e.res.MaxOccupancy[i][h] = occ
			}
			rf.readyAt = t + 1
			F.push(rf)
			for j := 1; j < mi; j++ {
				fl := pops[j-1]
				fl.readyAt = t + 1 + noc.Cycles(j)
				F.push(fl)
			}
		}
		up.head += mi
	}
	// Rebuild the in-flight ring: one flit per winner, landing at t+m+1,
	// in transfer (link) order, and extend the winners' busy periods.
	e.arrivals = e.arrivals[:0]
	e.arrivalHead = 0
	for k, c := range T {
		e.arrivals = append(e.arrivals, arrival{at: t + m + 1, flow: c.flow, hop: c.hop, fl: lasts[k]})
		e.busyUntil[e.routes[c.flow][c.hop]] = t + m + 1
	}
}

// traceLine appends one CSV trace record to the reusable trace buffer,
// flushing to the configured writer at the high-water mark. strconv
// appends into the retained buffer, so tracing allocates nothing per
// flit.
func (e *Engine) traceLine(t noc.Cycles, l int64, flow, pkt, seq int) {
	b := e.traceBuf
	b = strconv.AppendInt(b, int64(t), 10)
	b = append(b, ',')
	b = strconv.AppendInt(b, l, 10)
	b = append(b, ',')
	b = strconv.AppendInt(b, int64(flow), 10)
	b = append(b, ',')
	b = strconv.AppendInt(b, int64(pkt), 10)
	b = append(b, ',')
	b = strconv.AppendInt(b, int64(seq), 10)
	b = append(b, '\n')
	e.traceBuf = b
	if len(b) >= traceFlushSize {
		e.flushTrace()
	}
}

func (e *Engine) flushTrace() {
	if len(e.traceBuf) > 0 && e.cfg.TraceWriter != nil {
		e.cfg.TraceWriter.Write(e.traceBuf)
		e.traceBuf = e.traceBuf[:0]
	}
}

// relPush inserts flow flow's next source event; the heap orders by
// (at, flow) so same-cycle releases pop in flow-index order.
func (e *Engine) relPush(at noc.Cycles, flow int32) {
	h := append(e.relHeap, relEvent{at: at, flow: flow})
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h[p].at < h[i].at || (h[p].at == h[i].at && h[p].flow <= h[i].flow) {
			break
		}
		h[p], h[i] = h[i], h[p]
		i = p
	}
	e.relHeap = h
}

func (e *Engine) relPop() {
	h := e.relHeap
	n := len(h) - 1
	h[0] = h[n]
	h = h[:n]
	i := 0
	for {
		c := 2*i + 1
		if c >= n {
			break
		}
		if r := c + 1; r < n && (h[r].at < h[c].at || (h[r].at == h[c].at && h[r].flow < h[c].flow)) {
			c = r
		}
		if h[i].at < h[c].at || (h[i].at == h[c].at && h[i].flow < h[c].flow) {
			break
		}
		h[i], h[c] = h[c], h[i]
		i = c
	}
	e.relHeap = h
}

// scheduleWake arranges for link l to be re-arbitrated at cycle at,
// given the current cycle t. A wake due at the very next cycle — the
// overwhelmingly common case when linkl is 1, as every transfer re-arms
// its link — goes straight onto the dirty list for t+1 (the list is
// non-empty, so the skip cannot jump past it) instead of bouncing
// through the heap. Later wakes are heaped; linkWakeAt suppresses
// pushes at or after an already-pending wakeup, so a hot link
// contributes O(1) live heap entries.
func (e *Engine) scheduleWake(at noc.Cycles, l int, t noc.Cycles) {
	if at <= t+1 {
		e.markDirty(l)
		return
	}
	if e.linkWakeAt[l] <= at {
		return
	}
	e.linkWakeAt[l] = at
	h := append(e.wakeHeap, linkEvent{at: at, link: int32(l)})
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h[p].at <= h[i].at {
			break
		}
		h[p], h[i] = h[i], h[p]
		i = p
	}
	e.wakeHeap = h
}

func (e *Engine) wakePop() {
	h := e.wakeHeap
	if e.linkWakeAt[h[0].link] == h[0].at {
		e.linkWakeAt[h[0].link] = maxCycles
	}
	n := len(h) - 1
	h[0] = h[n]
	h = h[:n]
	i := 0
	for {
		c := 2*i + 1
		if c >= n {
			break
		}
		if r := c + 1; r < n && h[r].at < h[c].at {
			c = r
		}
		if h[i].at <= h[c].at {
			break
		}
		h[i], h[c] = h[c], h[i]
		i = c
	}
	e.wakeHeap = h
}
