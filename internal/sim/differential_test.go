package sim_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"wormnoc/internal/noc"
	"wormnoc/internal/oracle"
	"wormnoc/internal/sim"
	"wormnoc/internal/workload"
)

// diffConfigs derives a handful of simulation configurations per
// scenario, covering the knobs that shape engine behaviour: phasings,
// jitter injection, packet caps and latency recording.
func diffConfigs(seed int64, numFlows int, periods []noc.Cycles) []sim.Config {
	rng := rand.New(rand.NewSource(seed))
	base := sim.Config{Duration: 2_000 + noc.Cycles(rng.Int63n(4_000))}

	random := base
	random.Offsets = make([]noc.Cycles, numFlows)
	for i := range random.Offsets {
		random.Offsets[i] = noc.Cycles(rng.Int63n(int64(periods[i])))
	}

	jittered := base
	jittered.InjectJitter = true
	jittered.JitterSeed = seed

	capped := random
	capped.MaxPacketsPerFlow = 1 + rng.Intn(3)
	capped.RecordLatencies = true

	return []sim.Config{base, random, jittered, capped}
}

func mustEqualResults(t *testing.T, label string, ref, got *sim.Result) {
	t.Helper()
	// Stats counts how the result was computed (fast-path batches), not
	// what was observed; it is the one field allowed to differ.
	a, b := *ref, *got
	a.Stats, b.Stats = sim.Stats{}, sim.Stats{}
	if !reflect.DeepEqual(&a, &b) {
		t.Fatalf("%s: event-driven engine diverged from reference\nreference: %+v\nevent-driven: %+v", label, ref, got)
	}
}

// TestDifferentialEngines replays the oracle's scenario distribution —
// 1×N lines and W×H meshes, XY and YX routing, jittered flows, shallow
// and deep buffers — through the retained reference engine and the
// event-driven Engine, asserting bit-identical Results: per-packet
// latencies, occupancies, completion/release/deadline counters and
// in-flight totals. This is the safety net that lets the event-driven
// engine be the default.
func TestDifferentialEngines(t *testing.T) {
	const scenarios = 220
	for i := 0; i < scenarios; i++ {
		seed := oracle.DeriveSeed(0xD1FF, int64(i))
		sc := oracle.Generate(seed, oracle.GenConfig{})
		sys, err := sc.System()
		if err != nil {
			t.Fatalf("scenario %d: %v", i, err)
		}
		periods := make([]noc.Cycles, sys.NumFlows())
		for f := range periods {
			periods[f] = sys.Flow(f).Period
		}
		for ci, cfg := range diffConfigs(seed, sys.NumFlows(), periods) {
			ref, err := sim.RunReference(sys, cfg)
			if err != nil {
				t.Fatalf("scenario %d cfg %d: reference: %v", i, ci, err)
			}
			got, err := sim.Run(sys, cfg)
			if err != nil {
				t.Fatalf("scenario %d cfg %d: event-driven: %v", i, ci, err)
			}
			mustEqualResults(t, fmt.Sprintf("scenario %d (%s) cfg %d", i, sc, ci), ref, got)
		}
	}
}

// TestDifferentialTraceStreams compares the raw flit-level trace output
// of the two engines byte for byte: same transfers, same cycle, same
// link, emitted in the same order — the strongest statement that cycle
// skipping and dirty-link arbitration change nothing observable.
func TestDifferentialTraceStreams(t *testing.T) {
	const scenarios = 24
	for i := 0; i < scenarios; i++ {
		seed := oracle.DeriveSeed(0x7ACE, int64(i))
		sc := oracle.Generate(seed, oracle.GenConfig{})
		sys, err := sc.System()
		if err != nil {
			t.Fatalf("scenario %d: %v", i, err)
		}
		cfg := sim.Config{Duration: 1_500, InjectJitter: i%2 == 0, JitterSeed: seed}

		var refTrace, newTrace bytes.Buffer
		refCfg := cfg
		refCfg.TraceWriter = &refTrace
		if _, err := sim.RunReference(sys, refCfg); err != nil {
			t.Fatalf("scenario %d: reference: %v", i, err)
		}
		newCfg := cfg
		newCfg.TraceWriter = &newTrace
		if _, err := sim.Run(sys, newCfg); err != nil {
			t.Fatalf("scenario %d: event-driven: %v", i, err)
		}
		if refTrace.Len() == 0 {
			t.Fatalf("scenario %d (%s): reference trace empty — scenario exercises nothing", i, sc)
		}
		if !bytes.Equal(refTrace.Bytes(), newTrace.Bytes()) {
			t.Fatalf("scenario %d (%s): trace streams diverge\nreference %d bytes, event-driven %d bytes",
				i, sc, refTrace.Len(), newTrace.Len())
		}
	}
}

// TestDifferentialDidactic pins the engines against each other on the
// paper's Section V example — the scenario behind Table II and
// testdata/table2_golden.json — across both tabulated buffer depths and
// a grid of τ2 phasings including the MPB-triggering ones.
func TestDifferentialDidactic(t *testing.T) {
	for _, buf := range []int{2, 10} {
		sys := workload.Didactic(buf)
		for off := noc.Cycles(0); off <= 200; off += 20 {
			cfg := sim.Config{
				Duration:        20_000,
				Offsets:         []noc.Cycles{0, off, 0},
				RecordLatencies: true,
			}
			ref, err := sim.RunReference(sys, cfg)
			if err != nil {
				t.Fatal(err)
			}
			got, err := sim.Run(sys, cfg)
			if err != nil {
				t.Fatal(err)
			}
			mustEqualResults(t, fmt.Sprintf("didactic buf=%d off=%d", buf, off), ref, got)
		}
	}
}

// TestEngineReuseMatchesFreshRuns drives one Engine through a sequence
// of differently-shaped runs (changing offsets, jitter, caps, recording)
// and checks every result against a fresh single-shot Run: reset must
// leave no residue.
func TestEngineReuseMatchesFreshRuns(t *testing.T) {
	for i := 0; i < 12; i++ {
		seed := oracle.DeriveSeed(0x5EED, int64(i))
		sc := oracle.Generate(seed, oracle.GenConfig{})
		sys, err := sc.System()
		if err != nil {
			t.Fatalf("scenario %d: %v", i, err)
		}
		periods := make([]noc.Cycles, sys.NumFlows())
		for f := range periods {
			periods[f] = sys.Flow(f).Period
		}
		eng := sim.NewEngine(sys)
		cfgs := diffConfigs(seed, sys.NumFlows(), periods)
		// Run the whole sequence twice so every cfg also reruns on a
		// dirty engine warmed by a different cfg.
		for pass := 0; pass < 2; pass++ {
			for ci, cfg := range cfgs {
				fresh, err := sim.Run(sys, cfg)
				if err != nil {
					t.Fatal(err)
				}
				reused, err := eng.Run(cfg)
				if err != nil {
					t.Fatal(err)
				}
				label := fmt.Sprintf("scenario %d cfg %d pass %d", i, ci, pass)
				if !reflect.DeepEqual(fresh.WorstLatency, reused.WorstLatency) ||
					!reflect.DeepEqual(fresh.TotalLatency, reused.TotalLatency) ||
					!reflect.DeepEqual(fresh.Completed, reused.Completed) ||
					!reflect.DeepEqual(fresh.Released, reused.Released) ||
					!reflect.DeepEqual(fresh.DeadlineMisses, reused.DeadlineMisses) ||
					!reflect.DeepEqual(fresh.MaxOccupancy, reused.MaxOccupancy) ||
					fresh.InFlight != reused.InFlight {
					t.Fatalf("%s: reused engine diverged from fresh run\nfresh: %+v\nreused: %+v", label, fresh, reused)
				}
				if cfg.RecordLatencies {
					for f := range fresh.Latencies {
						if len(fresh.Latencies[f]) != len(reused.Latencies[f]) {
							t.Fatalf("%s: flow %d latency count %d vs %d", label, f, len(fresh.Latencies[f]), len(reused.Latencies[f]))
						}
						for k := range fresh.Latencies[f] {
							if fresh.Latencies[f][k] != reused.Latencies[f][k] {
								t.Fatalf("%s: flow %d latency %d: %d vs %d", label, f, k, fresh.Latencies[f][k], reused.Latencies[f][k])
							}
						}
					}
				}
			}
		}
	}
}

// TestDifferentialSaturated widens the differential corpus with the
// adversarial regime the locked-arbitration fast path (DESIGN.md §13)
// lives in: every flow released at cycle 0, so contention domains stay
// busy for long stretches and the engine batches multi-cycle transfer
// windows. Oracle scenarios (spanning linkl/routl/buf, where the fast
// path partially or never engages) and shallow-buffer synthetic meshes
// (where it dominates) must stay bit-identical to the reference.
func TestDifferentialSaturated(t *testing.T) {
	batches := 0
	for i := 0; i < 40; i++ {
		seed := oracle.DeriveSeed(0x5A70, int64(i))
		sc := oracle.Generate(seed, oracle.GenConfig{})
		sys, err := sc.System()
		if err != nil {
			t.Fatalf("scenario %d: %v", i, err)
		}
		cfg := sim.Config{Duration: 6_000, RecordLatencies: i%3 == 0}
		ref, err := sim.RunReference(sys, cfg)
		if err != nil {
			t.Fatalf("scenario %d: reference: %v", i, err)
		}
		got, err := sim.Run(sys, cfg)
		if err != nil {
			t.Fatalf("scenario %d: event-driven: %v", i, err)
		}
		mustEqualResults(t, fmt.Sprintf("saturated oracle scenario %d (%s)", i, sc), ref, got)
		batches += got.Stats.FastPathBatches
	}
	for _, buf := range []int{2, 3, 4, 8} {
		topo := noc.MustMesh(4, 4, noc.RouterConfig{BufDepth: buf, LinkLatency: 1})
		sys, err := workload.Synthetic(topo, workload.SynthConfig{NumFlows: 32, Seed: 21})
		if err != nil {
			t.Fatal(err)
		}
		cfg := sim.Config{Duration: 20_000}
		ref, err := sim.RunReference(sys, cfg)
		if err != nil {
			t.Fatalf("buf=%d: reference: %v", buf, err)
		}
		got, err := sim.Run(sys, cfg)
		if err != nil {
			t.Fatalf("buf=%d: event-driven: %v", buf, err)
		}
		mustEqualResults(t, fmt.Sprintf("saturated mesh buf=%d", buf), ref, got)
		batches += got.Stats.FastPathBatches
	}
	if batches == 0 {
		t.Error("fast path never engaged across the saturated corpus; the batching differential is vacuous")
	}
}

// TestFastPathEngages asserts the locked-arbitration fast path actually
// fires on the saturated benchmark scenario — so the bit-identity
// guarantees above are exercised, not vacuous — and that tracing
// disables it (per-cycle trace interleaving cannot be reproduced from a
// batch) while still producing a byte-identical trace stream.
func TestFastPathEngages(t *testing.T) {
	sys := synth4x4(t, workload.SynthConfig{NumFlows: 32, Seed: 9})
	cfg := sim.Config{Duration: 50_000}
	ref, err := sim.RunReference(sys, cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sim.Run(sys, cfg)
	if err != nil {
		t.Fatal(err)
	}
	mustEqualResults(t, "saturated bench scenario", ref, got)
	if got.Stats.FastPathBatches == 0 {
		t.Fatal("fast path did not engage on the saturated scenario")
	}
	if got.Stats.FastPathCycles < cfg.Duration/10 {
		t.Errorf("fast path covered only %d of %d cycles; expected a dominant share under saturation",
			got.Stats.FastPathCycles, cfg.Duration)
	}
	if ref.Stats != (sim.Stats{}) {
		t.Errorf("reference engine reported nonzero Stats: %+v", ref.Stats)
	}

	var refTrace, newTrace bytes.Buffer
	refCfg, newCfg := cfg, cfg
	refCfg.TraceWriter = &refTrace
	newCfg.TraceWriter = &newTrace
	if _, err := sim.RunReference(sys, refCfg); err != nil {
		t.Fatal(err)
	}
	traced, err := sim.Run(sys, newCfg)
	if err != nil {
		t.Fatal(err)
	}
	if traced.Stats.FastPathBatches != 0 {
		t.Errorf("fast path engaged on a traced run (%d batches); tracing must disable it", traced.Stats.FastPathBatches)
	}
	if refTrace.Len() == 0 || !bytes.Equal(refTrace.Bytes(), newTrace.Bytes()) {
		t.Errorf("traced saturated run diverged from reference (%d vs %d bytes)", refTrace.Len(), newTrace.Len())
	}
}
