package sim_test

import (
	"testing"

	"wormnoc/internal/core"
	"wormnoc/internal/noc"
	"wormnoc/internal/sim"
	"wormnoc/internal/traffic"
)

// jitterSystem: a jittery high-priority interferer over a victim flow.
func jitterSystem(t *testing.T) *traffic.System {
	t.Helper()
	topo := noc.MustMesh(6, 1, noc.RouterConfig{BufDepth: 2, LinkLatency: 1, RouteLatency: 0})
	return traffic.MustSystem(topo, []traffic.Flow{
		{Name: "jittery", Priority: 1, Period: 500, Deadline: 400, Jitter: 100, Length: 40, Src: 0, Dst: 5},
		{Name: "victim", Priority: 2, Period: 3000, Deadline: 3000, Length: 100, Src: 1, Dst: 4},
	})
}

func TestJitterZeroLoadUnchanged(t *testing.T) {
	// A lone flow with jitter still achieves C for every packet, since
	// latency is measured from the actual release.
	topo := noc.MustMesh(4, 4, noc.RouterConfig{BufDepth: 2, LinkLatency: 1, RouteLatency: 0})
	sys := traffic.MustSystem(topo, []traffic.Flow{
		{Name: "only", Priority: 1, Period: 1000, Deadline: 1000, Jitter: 400, Length: 32, Src: 0, Dst: 15},
	})
	res, err := sim.Run(sys, sim.Config{Duration: 50_000, InjectJitter: true, JitterSeed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed[0] < 40 {
		t.Fatalf("completed only %d packets", res.Completed[0])
	}
	if res.WorstLatency[0] != sys.C(0) {
		t.Errorf("worst = %d, want C = %d", res.WorstLatency[0], sys.C(0))
	}
}

func TestJitterChangesInterferencePattern(t *testing.T) {
	sys := jitterSystem(t)
	base, err := sim.Run(sys, sim.Config{Duration: 60_000})
	if err != nil {
		t.Fatal(err)
	}
	jit, err := sim.Run(sys, sim.Config{Duration: 60_000, InjectJitter: true, JitterSeed: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Same workload volume either way.
	if jit.Released[0] < base.Released[0]-1 || jit.Released[0] > base.Released[0] {
		t.Errorf("jitter changed release count: %d vs %d", jit.Released[0], base.Released[0])
	}
	// The victim's latency profile must differ across phasing patterns
	// for at least one seed (jitter actually does something). The worst
	// case saturates quickly, so compare the means.
	differs := jit.MeanLatency(1) != base.MeanLatency(1)
	for seed := int64(4); !differs && seed < 10; seed++ {
		alt, err := sim.Run(sys, sim.Config{Duration: 60_000, InjectJitter: true, JitterSeed: seed})
		if err != nil {
			t.Fatal(err)
		}
		differs = alt.MeanLatency(1) != base.MeanLatency(1)
	}
	if !differs {
		t.Error("jitter injection had no observable effect across seeds")
	}
}

func TestJitterDeterministicInSeed(t *testing.T) {
	sys := jitterSystem(t)
	a, err := sim.Run(sys, sim.Config{Duration: 30_000, InjectJitter: true, JitterSeed: 11})
	if err != nil {
		t.Fatal(err)
	}
	b, err := sim.Run(sys, sim.Config{Duration: 30_000, InjectJitter: true, JitterSeed: 11})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.WorstLatency {
		if a.WorstLatency[i] != b.WorstLatency[i] || a.Completed[i] != b.Completed[i] {
			t.Fatalf("jitter not deterministic: %+v vs %+v", a, b)
		}
	}
}

// TestJitteredBoundsStillSafe: with jitter injected, observed latencies
// must stay within the analyses' bounds (which account for interferer
// jitter via the J terms).
func TestJitteredBoundsStillSafe(t *testing.T) {
	sys := jitterSystem(t)
	sets := core.BuildSets(sys)
	ibn, err := core.AnalyzeWithSets(sys, sets, core.Options{Method: core.IBN})
	if err != nil {
		t.Fatal(err)
	}
	if !ibn.Schedulable {
		t.Fatalf("scenario should be schedulable: %+v", ibn.Flows)
	}
	for seed := int64(0); seed < 20; seed++ {
		res, err := sim.Run(sys, sim.Config{
			Duration:     100_000,
			InjectJitter: true,
			JitterSeed:   seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < sys.NumFlows(); i++ {
			if res.WorstLatency[i] > ibn.R(i) {
				t.Errorf("seed %d flow %d: observed %d exceeds IBN bound %d",
					seed, i, res.WorstLatency[i], ibn.R(i))
			}
		}
	}
}
