package sim

import (
	"fmt"

	"wormnoc/internal/traffic"
)

// TieFree reports whether every arbitration decision the simulator can
// ever face for sys is uniquely determined — i.e. whether the engine's
// trajectory is a pure function of the release phasing, with no hidden
// interleaving freedom. It is the soundness gate of the exhaustive
// verification backend (internal/exhaustive): an explicit-state
// exploration that enumerates release phasings only proves a true worst
// case if, per phasing, exactly one trajectory exists; were arbitration
// ever to admit a tie, every tie-break interleaving would have to be
// enumerated too, and the explorer refuses to certify instead.
//
// The check is static and exact for the model reproduced here:
//
//   - per output link, the arbiter picks the highest-priority eligible
//     candidate, so a tie requires two eligible candidates of equal
//     priority on one link;
//   - flow priorities are unique across the whole flow set (enforced by
//     traffic.NewSystem — one virtual channel per priority level), so no
//     two candidates of any link can share a priority;
//   - all remaining same-cycle orderings (same-cycle releases, transfer
//     application, trace emission) are fixed by construction to flow-
//     index respectively link-id order, identically in both engines.
//
// TieFree re-derives the per-link guarantee from the system itself
// rather than trusting the constructor, so a future relaxation of the
// unique-priority rule (e.g. heterogeneous platforms with per-router
// arbitration) degrades exhaustive exploration into an explicit
// "interleavings not enumerable" refusal instead of a silent unsound
// proof. The returned reason is empty when tie-free, else it names the
// first link and flow pair that could tie.
func TieFree(sys *traffic.System) (bool, string) {
	topo := sys.Topology()
	// prioOn[l] is the priority of the last candidate seen on link l;
	// flowOn[l] that candidate's flow index.
	prioOn := make(map[int]map[int]int, topo.NumLinks())
	for i := 0; i < sys.NumFlows(); i++ {
		p := sys.Flow(i).Priority
		for _, l := range sys.Route(i) {
			cands := prioOn[int(l)]
			if cands == nil {
				cands = make(map[int]int, 2)
				prioOn[int(l)] = cands
			}
			if j, dup := cands[p]; dup {
				return false, fmt.Sprintf(
					"flows %d and %d contend for link %d with equal priority %d: arbitration admits a tie",
					j, i, int(l), p)
			}
			cands[p] = i
		}
	}
	return true, ""
}
