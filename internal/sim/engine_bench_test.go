package sim_test

import (
	"fmt"
	"io"
	"math/rand"
	"testing"

	"wormnoc/internal/noc"
	"wormnoc/internal/sim"
	"wormnoc/internal/traffic"
	"wormnoc/internal/workload"
)

// benchScenario is one engine benchmark point. The set spans the load
// regimes the event-driven rewrite targets: under low and moderate load
// the engine skips idle cycles and only re-arbitrates dirty links, so
// it should beat the reference by a wide margin; under a saturated
// burst every cycle executes and the requirement is merely "no slower".
// BenchmarkEngine and BenchmarkEngineReference run the *same* scenarios
// through the two engines, so their ratio is the before/after number
// recorded in BENCH_sim.json.
type benchScenario struct {
	name string
	sys  *traffic.System
	cfg  sim.Config
}

// staggeredOffsets spreads first releases uniformly over [0, window),
// deterministically in seed.
func staggeredOffsets(n int, window noc.Cycles, seed int64) []noc.Cycles {
	rng := rand.New(rand.NewSource(seed))
	offs := make([]noc.Cycles, n)
	for i := range offs {
		offs[i] = noc.Cycles(rng.Int63n(int64(window)))
	}
	return offs
}

func synth4x4(b testing.TB, cfg workload.SynthConfig) *traffic.System {
	topo := noc.MustMesh(4, 4, noc.RouterConfig{BufDepth: 4, LinkLatency: 1})
	sys, err := workload.Synthetic(topo, cfg)
	if err != nil {
		b.Fatal(err)
	}
	return sys
}

func engineScenarios(b testing.TB) []benchScenario {
	sys := synth4x4(b, workload.SynthConfig{NumFlows: 32, Seed: 9})
	sparse := synth4x4(b, workload.SynthConfig{
		NumFlows: 32, Seed: 9, PeriodMin: 40_000, PeriodMax: 400_000,
	})
	return []benchScenario{
		// Sparse periodic traffic over a long horizon: packets mostly
		// traverse an otherwise-idle mesh.
		{"low", sparse, sim.Config{
			Duration: 400_000,
			Offsets:  staggeredOffsets(32, 400_000, 5),
		}},
		// Releases staggered across the horizon: a handful of flows
		// active at a time.
		{"moderate", sys, sim.Config{
			Duration: 100_000,
			Offsets:  staggeredOffsets(32, 100_000, 5),
		}},
		// Every flow released at cycle 0: the mesh drains a synchronized
		// burst, with transfers on most links on most cycles.
		{"saturated", sys, sim.Config{Duration: 100_000}},
		// The paper's Section V example (Table II, buf=2).
		{"didactic", workload.Didactic(2), sim.Config{Duration: 20_000}},
	}
}

// BenchmarkEngine measures the event-driven engine (warm, reused across
// iterations — the steady state of searches and sweeps).
func BenchmarkEngine(b *testing.B) {
	for _, sc := range engineScenarios(b) {
		b.Run(sc.name, func(b *testing.B) {
			eng := sim.NewEngine(sc.sys)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := eng.Run(sc.cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEngineReference measures the retained cycle-scanning
// reference engine on the identical scenarios — the "before" of every
// BenchmarkEngine number.
func BenchmarkEngineReference(b *testing.B) {
	for _, sc := range engineScenarios(b) {
		b.Run(sc.name, func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sim.RunReference(sc.sys, sc.cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEngineReuse isolates the reset/reuse path the adversarial
// search leans on: repeated runs of one Engine with changing phasings.
// The acceptance bar is ~0 allocs/op.
func BenchmarkEngineReuse(b *testing.B) {
	sys := synth4x4(b, workload.SynthConfig{NumFlows: 32, Seed: 9})
	eng := sim.NewEngine(sys)
	n := sys.NumFlows()
	offs := make([]noc.Cycles, n)
	rng := rand.New(rand.NewSource(11))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for f := 0; f < n; f++ {
			offs[f] = noc.Cycles(rng.Int63n(int64(sys.Flow(f).Period)))
		}
		if _, err := eng.Run(sim.Config{Duration: 20_000, Offsets: offs}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineTraced measures a fully traced run: the trace hot path
// appends to a reusable buffer and flushes in ~32KiB batches, so a
// traced run costs a handful of Writes, not one allocation per flit.
func BenchmarkEngineTraced(b *testing.B) {
	sys := synth4x4(b, workload.SynthConfig{NumFlows: 32, Seed: 9})
	cfg := sim.Config{
		Duration:    100_000,
		Offsets:     staggeredOffsets(32, 100_000, 5),
		TraceWriter: io.Discard,
	}
	eng := sim.NewEngine(sys)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// TestEngineSteadyStateAllocs pins the zero-alloc contract: a warm
// Engine.Run allocates (almost) nothing, with or without tracing. The
// small slack absorbs one-off growth of internal rings on unlucky
// phasings.
func TestEngineSteadyStateAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc accounting run skipped in -short mode")
	}
	sys := synth4x4(t, workload.SynthConfig{NumFlows: 32, Seed: 9})
	cfg := sim.Config{
		Duration: 50_000,
		Offsets:  staggeredOffsets(32, 50_000, 5),
	}
	eng := sim.NewEngine(sys)
	// Warm up: let every ring and pool reach steady size.
	for i := 0; i < 3; i++ {
		if _, err := eng.Run(cfg); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := eng.Run(cfg); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 1 {
		t.Errorf("warm Engine.Run allocates %.1f objects/run, want ~0", allocs)
	}

	traced := cfg
	traced.TraceWriter = io.Discard
	for i := 0; i < 3; i++ {
		if _, err := eng.Run(traced); err != nil {
			t.Fatal(err)
		}
	}
	res, err := eng.Run(traced)
	if err != nil {
		t.Fatal(err)
	}
	flits := 0
	for i := range res.Completed {
		flits += res.Completed[i] * sys.Flow(i).Length
	}
	if flits == 0 {
		t.Fatal("traced scenario completed no packets")
	}
	allocs = testing.AllocsPerRun(5, func() {
		if _, err := eng.Run(traced); err != nil {
			t.Fatal(err)
		}
	})
	// The old engine allocated per flit (fmt.Fprintf); the batched path
	// must stay far below one allocation per transferred flit.
	if allocs > 8 {
		t.Errorf("warm traced Engine.Run allocates %.1f objects/run over %d delivered flits, want ~0", allocs, flits)
	}
}

// TestEngineBenchScenariosAgree double-checks that every benchmark
// scenario produces identical results on both engines — so the ratios
// recorded in BENCH_sim.json compare equal computations.
func TestEngineBenchScenariosAgree(t *testing.T) {
	for _, sc := range engineScenarios(t) {
		cfg := sc.cfg
		if cfg.Duration > 100_000 && testing.Short() {
			cfg.Duration = 100_000
		}
		ref, err := sim.RunReference(sc.sys, cfg)
		if err != nil {
			t.Fatalf("%s: reference: %v", sc.name, err)
		}
		got, err := sim.Run(sc.sys, cfg)
		if err != nil {
			t.Fatalf("%s: event-driven: %v", sc.name, err)
		}
		mustEqualResults(t, fmt.Sprintf("bench scenario %s", sc.name), ref, got)
	}
}
