package sim_test

import (
	"testing"

	"wormnoc/internal/core"
	"wormnoc/internal/noc"
	"wormnoc/internal/sim"
	"wormnoc/internal/traffic"
)

// TestSlowLinksContention: with linkl = 2 every transfer takes two
// cycles, so a blocked low-priority flow waits proportionally longer;
// bounds computed for the same platform must still hold.
func TestSlowLinksContention(t *testing.T) {
	topo := noc.MustMesh(5, 1, noc.RouterConfig{BufDepth: 3, LinkLatency: 2, RouteLatency: 0})
	sys := traffic.MustSystem(topo, []traffic.Flow{
		{Name: "hi", Priority: 1, Period: 1000, Deadline: 1000, Length: 30, Src: 0, Dst: 4},
		{Name: "lo", Priority: 2, Period: 4000, Deadline: 4000, Length: 20, Src: 0, Dst: 4},
	})
	ibn, err := core.Analyze(sys, core.Options{Method: core.IBN})
	if err != nil {
		t.Fatal(err)
	}
	sweep, err := sim.SweepOffsets(sys, sim.Config{Duration: 20_000}, 0, 1000, 25)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if sweep.Worst[i] > ibn.R(i) {
			t.Errorf("flow %d: observed %d exceeds IBN bound %d (linkl=2)", i, sweep.Worst[i], ibn.R(i))
		}
	}
	if sweep.Worst[1] <= sys.C(1) {
		t.Errorf("lo saw no contention: %d <= C %d", sweep.Worst[1], sys.C(1))
	}
}

// TestRoutingLatencyContention: non-zero routl under contention.
func TestRoutingLatencyContention(t *testing.T) {
	topo := noc.MustMesh(4, 4, noc.RouterConfig{BufDepth: 2, LinkLatency: 1, RouteLatency: 2})
	sys := traffic.MustSystem(topo, []traffic.Flow{
		{Name: "a", Priority: 1, Period: 2000, Deadline: 2000, Length: 64, Src: 0, Dst: 15},
		{Name: "b", Priority: 2, Period: 5000, Deadline: 5000, Length: 64, Src: 0, Dst: 15},
		{Name: "c", Priority: 3, Period: 9000, Deadline: 9000, Length: 64, Src: 3, Dst: 12},
	})
	ibn, err := core.Analyze(sys, core.Options{Method: core.IBN})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(sys, sim.Config{Duration: 60_000, Offsets: []noc.Cycles{7, 0, 3}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if res.Completed[i] == 0 {
			t.Fatalf("flow %d completed nothing", i)
		}
		if ibn.Flows[i].Status == core.Schedulable && res.WorstLatency[i] > ibn.R(i) {
			t.Errorf("flow %d: observed %d exceeds IBN bound %d (routl=2)", i, res.WorstLatency[i], ibn.R(i))
		}
	}
}

// TestYXRoutingSimulation: the simulator follows the topology's routing
// policy; flows that are disjoint under XY can collide under YX and
// vice versa.
func TestYXRoutingSimulation(t *testing.T) {
	cfg := noc.RouterConfig{BufDepth: 2, LinkLatency: 1, RouteLatency: 0}
	flows := []traffic.Flow{
		// 0=(0,0)→5=(1,1) and 4=(0,1)→1=(1,0) on a 2x2: under XY they
		// share no mesh link; under YX they share none either — use a
		// 3x3 with crossing diagonals instead.
		{Name: "a", Priority: 1, Period: 2000, Deadline: 2000, Length: 64, Src: 0, Dst: 8},
		{Name: "b", Priority: 2, Period: 2000 - 1, Deadline: 1999, Length: 64, Src: 6, Dst: 2},
	}
	xyTopo := noc.MustMesh(3, 3, cfg)
	yxTopo, err := xyTopo.WithRouting(noc.YX)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		topo *noc.Topology
	}{{"XY", xyTopo}, {"YX", yxTopo}} {
		t.Run(tc.name, func(t *testing.T) {
			sys := traffic.MustSystem(tc.topo, flows)
			ibn, err := core.Analyze(sys, core.Options{Method: core.IBN})
			if err != nil {
				t.Fatal(err)
			}
			res, err := sim.Run(sys, sim.Config{Duration: 40_000})
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 2; i++ {
				if ibn.Flows[i].Status == core.Schedulable && res.WorstLatency[i] > ibn.R(i) {
					t.Errorf("%s flow %d: observed %d exceeds bound %d",
						tc.name, i, res.WorstLatency[i], ibn.R(i))
				}
			}
			// Zero-load latencies match Eq. 1 under both policies.
			solo, err := sim.Run(sys, sim.Config{
				Duration: 10_000, Offsets: []noc.Cycles{0, 9_999}, MaxPacketsPerFlow: 1,
			})
			if err != nil {
				t.Fatal(err)
			}
			if solo.WorstLatency[0] != sys.C(0) {
				t.Errorf("%s: solo latency %d != C %d", tc.name, solo.WorstLatency[0], sys.C(0))
			}
		})
	}
}

// TestChainScenarioSimulation: the two-level MPB chain of
// internal/core's chain_test, adversarially phased, stays within IBN's
// 172-cycle bound for τi.
func TestChainScenarioSimulation(t *testing.T) {
	topo := noc.MustMesh(10, 1, noc.RouterConfig{BufDepth: 2, LinkLatency: 1, RouteLatency: 0})
	sys := traffic.MustSystem(topo, []traffic.Flow{
		{Name: "k2", Priority: 1, Period: 100, Deadline: 100, Length: 20, Src: 8, Dst: 9},
		{Name: "k1", Priority: 2, Period: 500, Deadline: 500, Length: 40, Src: 6, Dst: 9},
		{Name: "j", Priority: 3, Period: 10000, Deadline: 10000, Length: 100, Src: 0, Dst: 8},
		{Name: "i", Priority: 4, Period: 20000, Deadline: 20000, Length: 50, Src: 1, Dst: 5},
	})
	res, err := sim.SearchWorstCase(sys, sim.SearchConfig{
		Base:   sim.Config{Duration: 40_000},
		Target: 3,
		Seed:   5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Worst > 172 {
		t.Errorf("observed %d exceeds IBN bound 172", res.Worst)
	}
	if res.Worst <= sys.C(3) {
		t.Errorf("no interference observed: %d <= C %d", res.Worst, sys.C(3))
	}
}
