package sim_test

import (
	"math/rand"
	"reflect"
	"testing"

	"wormnoc/internal/core"
	"wormnoc/internal/noc"
	"wormnoc/internal/oracle"
	"wormnoc/internal/sim"
	"wormnoc/internal/traffic"
)

// compareFlows asserts that the restricted run sub matches the full run
// full on every observable per-flow field, for each kept flow (keep[k]
// in the full system is flow k in the restricted one).
func compareFlows(t *testing.T, full, sub *sim.Result, keep []int) {
	t.Helper()
	for k, i := range keep {
		if sub.WorstLatency[k] != full.WorstLatency[i] {
			t.Errorf("flow %d: restricted worst %d != full %d", i, sub.WorstLatency[k], full.WorstLatency[i])
		}
		if sub.TotalLatency[k] != full.TotalLatency[i] {
			t.Errorf("flow %d: restricted total %d != full %d", i, sub.TotalLatency[k], full.TotalLatency[i])
		}
		if sub.Completed[k] != full.Completed[i] || sub.Released[k] != full.Released[i] {
			t.Errorf("flow %d: restricted completed/released %d/%d != full %d/%d",
				i, sub.Completed[k], sub.Released[k], full.Completed[i], full.Released[i])
		}
		if sub.DeadlineMisses[k] != full.DeadlineMisses[i] {
			t.Errorf("flow %d: restricted misses %d != full %d", i, sub.DeadlineMisses[k], full.DeadlineMisses[i])
		}
		if !reflect.DeepEqual(sub.Latencies[k], full.Latencies[i]) {
			t.Errorf("flow %d: restricted latencies %v != full %v", i, sub.Latencies[k], full.Latencies[i])
		}
		if !reflect.DeepEqual(sub.MaxOccupancy[k], full.MaxOccupancy[i]) {
			t.Errorf("flow %d: restricted occupancy %v != full %v", i, sub.MaxOccupancy[k], full.MaxOccupancy[i])
		}
	}
}

// TestRestrictClusterBitIdentical: on a hand-built two-cluster line
// system, simulating each contention cluster alone reproduces the full
// run's per-flow observables exactly, across phasings. This is the
// exactness property the exhaustive backend's cluster decomposition
// rests on (DESIGN.md §15).
func TestRestrictClusterBitIdentical(t *testing.T) {
	topo := noc.MustMesh(8, 1, noc.RouterConfig{BufDepth: 2, LinkLatency: 1, RouteLatency: 1})
	sys := traffic.MustSystem(topo, []traffic.Flow{
		// Cluster A: share link 1→2.
		{Name: "a0", Priority: 1, Period: 8, Deadline: 8, Length: 3, Src: 0, Dst: 2},
		{Name: "a1", Priority: 2, Period: 12, Deadline: 12, Length: 2, Src: 1, Dst: 3},
		// Cluster B: share link 5→6; no link in common with cluster A.
		{Name: "b0", Priority: 3, Period: 9, Deadline: 9, Length: 2, Src: 4, Dst: 6},
		{Name: "b1", Priority: 4, Period: 10, Deadline: 10, Length: 3, Src: 5, Dst: 7},
	})
	clusters := core.BuildSets(sys).Clusters()
	if want := [][]int{{0, 1}, {2, 3}}; !reflect.DeepEqual(clusters, want) {
		t.Fatalf("clusters = %v, want %v", clusters, want)
	}

	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 25; trial++ {
		offsets := make([]noc.Cycles, sys.NumFlows())
		for i := range offsets {
			offsets[i] = noc.Cycles(rng.Intn(int(sys.Flow(i).Period)))
		}
		cfg := sim.Config{Duration: 500, Offsets: offsets, RecordLatencies: true}
		full, err := sim.Run(sys, cfg)
		if err != nil {
			t.Fatal(err)
		}
		inFlight := 0
		for _, keep := range clusters {
			subSys, err := sim.Restrict(sys, keep)
			if err != nil {
				t.Fatal(err)
			}
			subCfg := cfg
			subCfg.Offsets = make([]noc.Cycles, len(keep))
			for k, i := range keep {
				subCfg.Offsets[k] = offsets[i]
			}
			sub, err := sim.Run(subSys, subCfg)
			if err != nil {
				t.Fatal(err)
			}
			compareFlows(t, full, sub, keep)
			inFlight += sub.InFlight
		}
		if inFlight != full.InFlight {
			t.Errorf("offsets %v: cluster in-flight sum %d != full %d", offsets, inFlight, full.InFlight)
		}
	}
}

// TestRestrictRandomClusters runs the same differential over generated
// scenarios: whatever cluster structure core.Sets.Clusters finds, the
// per-cluster restricted runs must tile the full run exactly.
func TestRestrictRandomClusters(t *testing.T) {
	gen := oracle.GenConfig{
		MaxDim: 3, MaxFlows: 6, MaxBuf: 4,
		MaxLinkLatency: 1, MaxRouteLatency: -1,
		PeriodMin: 6, PeriodMax: 40, LenMin: 2, LenMax: 8,
		JitterProb: -1,
	}
	multi := 0
	for seed := int64(1); seed <= 40; seed++ {
		sys, err := oracle.Generate(seed, gen).System()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		clusters := core.BuildSets(sys).Clusters()
		if len(clusters) > 1 {
			multi++
		}
		rng := rand.New(rand.NewSource(seed))
		offsets := make([]noc.Cycles, sys.NumFlows())
		for i := range offsets {
			offsets[i] = noc.Cycles(rng.Intn(int(sys.Flow(i).Period)))
		}
		cfg := sim.Config{Duration: 600, Offsets: offsets, RecordLatencies: true}
		full, err := sim.Run(sys, cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, keep := range clusters {
			subSys, err := sim.Restrict(sys, keep)
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			subCfg := cfg
			subCfg.Offsets = make([]noc.Cycles, len(keep))
			for k, i := range keep {
				subCfg.Offsets[k] = offsets[i]
			}
			sub, err := sim.Run(subSys, subCfg)
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			compareFlows(t, full, sub, keep)
		}
	}
	// The differential is vacuous if generation never splits a flow set.
	if multi == 0 {
		t.Fatal("no generated scenario had more than one cluster; widen the generator config")
	}
}

// TestRestrictOpenSubsetDiverges proves the interference-closure
// precondition is load-bearing: restricting to a subset that is NOT
// closed under interference (dropping a flow's preemptor) changes the
// kept flow's observables. Were this test to pass with equal results,
// Restrict's exactness claim would be unfalsifiable.
func TestRestrictOpenSubsetDiverges(t *testing.T) {
	topo := noc.MustMesh(6, 1, noc.RouterConfig{BufDepth: 4, LinkLatency: 1})
	sys := traffic.MustSystem(topo, []traffic.Flow{
		{Name: "hi", Priority: 1, Period: 1 << 20, Deadline: 1 << 20, Length: 50, Src: 0, Dst: 5},
		{Name: "lo", Priority: 2, Period: 1 << 20, Deadline: 1 << 20, Length: 200, Src: 0, Dst: 5},
	})
	cfg := sim.Config{Duration: 1 << 14, Offsets: []noc.Cycles{40, 0}, MaxPacketsPerFlow: 1}
	full, err := sim.Run(sys, cfg)
	if err != nil {
		t.Fatal(err)
	}
	subSys, err := sim.Restrict(sys, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	sub, err := sim.Run(subSys, sim.Config{Duration: cfg.Duration, Offsets: []noc.Cycles{0}, MaxPacketsPerFlow: 1})
	if err != nil {
		t.Fatal(err)
	}
	if sub.WorstLatency[0] >= full.WorstLatency[1] {
		t.Fatalf("dropping the preemptor did not lower the victim's latency (%d vs %d): the closure precondition has no teeth",
			sub.WorstLatency[0], full.WorstLatency[1])
	}
}

// TestRestrictValidation covers the argument checks.
func TestRestrictValidation(t *testing.T) {
	topo := noc.MustMesh(4, 1, noc.RouterConfig{BufDepth: 2, LinkLatency: 1})
	sys := traffic.MustSystem(topo, []traffic.Flow{
		{Name: "a", Priority: 1, Period: 8, Deadline: 8, Length: 2, Src: 0, Dst: 2},
		{Name: "b", Priority: 2, Period: 8, Deadline: 8, Length: 2, Src: 1, Dst: 3},
	})
	for _, tc := range []struct {
		name string
		keep []int
	}{
		{"empty", nil},
		{"out of range", []int{0, 2}},
		{"negative", []int{-1}},
		{"duplicate", []int{1, 1}},
	} {
		if _, err := sim.Restrict(sys, tc.keep); err == nil {
			t.Errorf("%s: Restrict(%v) succeeded, want error", tc.name, tc.keep)
		}
	}
	sub, err := sim.Restrict(sys, []int{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if sub.NumFlows() != 2 || sub.Flow(0).Name != "b" || sub.Flow(1).Name != "a" {
		t.Errorf("Restrict order not preserved: %v", sub.Flows())
	}
}
