package sim

import (
	"context"
	"fmt"
	"runtime"

	"wormnoc/internal/parallel"
	"wormnoc/internal/traffic"
)

// RunSpec is one unit of work for RunMany: simulate Sys under Cfg.
// Specs may share a *traffic.System (a phasing search varies only
// Cfg.Offsets) or use a distinct one each (a verification campaign);
// workers cache their engine by system identity, so homogeneous batches
// reuse one warm engine per worker.
type RunSpec struct {
	// Sys is the system to simulate. Must be non-nil.
	Sys *traffic.System
	// Cfg is the run configuration. Cfg.TraceWriter must be nil: trace
	// streams from concurrently running scenarios would interleave.
	Cfg Config
}

// ManyOptions configures a RunMany batch.
type ManyOptions struct {
	// Workers bounds concurrency; 0 (or negative) selects GOMAXPROCS.
	// Each worker owns one reusable Engine for the whole batch.
	Workers int
	// Context, when non-nil, cancels the batch early with its error.
	Context context.Context
	// Engines, when non-nil, supplies caller-owned per-worker engine
	// slots: entry w is the engine worker w uses, rebuilt in place (the
	// slot is overwritten) whenever its bound system differs from the
	// spec's. Passing the same slice to successive RunMany calls over
	// the same system makes every call after the first allocate nothing.
	// The worker count is capped at len(Engines). A nil slice means
	// RunMany provisions (and discards) its own engines.
	Engines []*Engine
}

// RunMany simulates a batch of scenarios on a worker pool, streaming
// each result to fn as it completes. fn is called once per finished
// spec, concurrently from different workers (never concurrently for the
// same i, and calls for specs run by the same worker are sequential);
// res is owned by the worker's engine and valid only during the call —
// copy anything that must outlive it. A non-nil error from fn, the
// first engine error, or context cancellation stops the batch (in-
// flight scenarios still finish) and is returned. Determinism: every
// spec's result is independent of Workers and of completion order, so
// any reduction over i-indexed results is reproducible.
//
// This is the scenario-throughput entry point the worst-case phasing
// search and the verification oracle's campaign run on: one engine per
// worker amortised across thousands of runs (DESIGN.md §10 reuse
// contract), scaling the nightly campaign from hundreds to tens of
// thousands of scenarios in the same budget.
func RunMany(specs []RunSpec, opts ManyOptions, fn func(i int, res *Result) error) error {
	for i := range specs {
		if specs[i].Sys == nil {
			return fmt.Errorf("sim: RunMany spec %d has nil system", i)
		}
		if specs[i].Cfg.TraceWriter != nil {
			return fmt.Errorf("sim: RunMany spec %d sets TraceWriter; tracing is not supported in batches", i)
		}
		if err := validateConfig(specs[i].Sys, specs[i].Cfg); err != nil {
			return fmt.Errorf("sim: RunMany spec %d: %w", i, err)
		}
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if opts.Engines != nil && workers > len(opts.Engines) {
		workers = len(opts.Engines)
	}
	if workers > len(specs) {
		workers = len(specs)
	}
	if workers < 1 {
		workers = 1
	}
	engines := opts.Engines
	if engines == nil {
		engines = make([]*Engine, workers)
	}
	r := parallel.Runner{Workers: workers, Context: opts.Context}
	return r.RunWorkers(len(specs), func(w, i int) error {
		eng := engines[w]
		if eng == nil || eng.sys != specs[i].Sys {
			eng = NewEngine(specs[i].Sys)
			engines[w] = eng
		}
		res, err := eng.Run(specs[i].Cfg)
		if err != nil {
			return err
		}
		return fn(i, res)
	})
}
