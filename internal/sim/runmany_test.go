package sim_test

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"wormnoc/internal/noc"
	"wormnoc/internal/sim"
	"wormnoc/internal/workload"
)

// TestRunManyMatchesSequential checks that a RunMany batch — over
// heterogeneous systems and configs, at several worker counts — streams
// exactly the results sequential engine runs produce, independent of
// parallelism.
func TestRunManyMatchesSequential(t *testing.T) {
	sysA := synth4x4(t, workload.SynthConfig{NumFlows: 16, Seed: 3})
	sysB := synth4x4(t, workload.SynthConfig{NumFlows: 24, Seed: 4})
	didactic := workload.Didactic(2)

	var specs []sim.RunSpec
	for i := 0; i < 4; i++ {
		specs = append(specs,
			sim.RunSpec{Sys: sysA, Cfg: sim.Config{Duration: 20_000, Offsets: staggeredOffsets(16, 20_000, int64(i))}},
			sim.RunSpec{Sys: sysB, Cfg: sim.Config{Duration: 15_000, RecordLatencies: true}},
			sim.RunSpec{Sys: didactic, Cfg: sim.Config{Duration: 20_000, MaxPacketsPerFlow: 2}},
		)
	}

	want := make([]*sim.Result, len(specs))
	for i, sp := range specs {
		res, err := sim.Run(sp.Sys, sp.Cfg)
		if err != nil {
			t.Fatalf("sequential run %d: %v", i, err)
		}
		want[i] = copyResult(res)
	}

	for _, workers := range []int{1, 2, 7} {
		got := make([]*sim.Result, len(specs))
		var mu sync.Mutex
		err := sim.RunMany(specs, sim.ManyOptions{Workers: workers}, func(i int, res *sim.Result) error {
			mu.Lock()
			got[i] = copyResult(res)
			mu.Unlock()
			return nil
		})
		if err != nil {
			t.Fatalf("RunMany(workers=%d): %v", workers, err)
		}
		for i := range specs {
			if got[i] == nil {
				t.Fatalf("RunMany(workers=%d): spec %d produced no result", workers, i)
			}
			a, b := *want[i], *got[i]
			a.Stats, b.Stats = sim.Stats{}, sim.Stats{}
			if !reflect.DeepEqual(&a, &b) {
				t.Errorf("RunMany(workers=%d) spec %d diverged from sequential run\nwant %+v\ngot  %+v",
					workers, i, want[i], got[i])
			}
		}
	}
}

func copyResult(r *sim.Result) *sim.Result {
	cp := *r
	cp.WorstLatency = append([]noc.Cycles(nil), r.WorstLatency...)
	cp.TotalLatency = append([]noc.Cycles(nil), r.TotalLatency...)
	cp.Completed = append([]int(nil), r.Completed...)
	cp.Released = append([]int(nil), r.Released...)
	cp.DeadlineMisses = append([]int(nil), r.DeadlineMisses...)
	cp.MaxOccupancy = make([][]int, len(r.MaxOccupancy))
	for i := range r.MaxOccupancy {
		cp.MaxOccupancy[i] = append([]int(nil), r.MaxOccupancy[i]...)
	}
	if r.Latencies != nil {
		cp.Latencies = make([][]noc.Cycles, len(r.Latencies))
		for i := range r.Latencies {
			cp.Latencies[i] = append([]noc.Cycles(nil), r.Latencies[i]...)
		}
	}
	return &cp
}

// TestRunManyValidation pins the batch-level input contract: nil
// systems, embedded trace writers and invalid configs are rejected up
// front, before any scenario runs.
func TestRunManyValidation(t *testing.T) {
	sys := synth4x4(t, workload.SynthConfig{NumFlows: 8, Seed: 5})
	cases := []struct {
		name string
		spec sim.RunSpec
	}{
		{"nil system", sim.RunSpec{Sys: nil, Cfg: sim.Config{Duration: 10}}},
		{"trace writer", sim.RunSpec{Sys: sys, Cfg: sim.Config{Duration: 10, TraceWriter: discardWriter{}}}},
		{"bad duration", sim.RunSpec{Sys: sys, Cfg: sim.Config{Duration: 0}}},
	}
	for _, tc := range cases {
		ran := false
		err := sim.RunMany([]sim.RunSpec{tc.spec}, sim.ManyOptions{}, func(i int, res *sim.Result) error {
			ran = true
			return nil
		})
		if err == nil {
			t.Errorf("%s: RunMany accepted an invalid spec", tc.name)
		}
		if ran {
			t.Errorf("%s: RunMany ran a scenario despite the invalid spec", tc.name)
		}
	}
}

type discardWriter struct{}

func (discardWriter) Write(p []byte) (int, error) { return len(p), nil }

// TestRunManyStops checks both stop paths: a callback error aborts the
// batch with that error, and context cancellation surfaces the
// context's error.
func TestRunManyStops(t *testing.T) {
	sys := synth4x4(t, workload.SynthConfig{NumFlows: 8, Seed: 5})
	specs := make([]sim.RunSpec, 32)
	for i := range specs {
		specs[i] = sim.RunSpec{Sys: sys, Cfg: sim.Config{Duration: 5_000}}
	}
	sentinel := errors.New("enough")
	err := sim.RunMany(specs, sim.ManyOptions{Workers: 2}, func(i int, res *sim.Result) error {
		return sentinel
	})
	if !errors.Is(err, sentinel) {
		t.Errorf("RunMany returned %v, want the callback's error", err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err = sim.RunMany(specs, sim.ManyOptions{Workers: 2, Context: ctx}, func(i int, res *sim.Result) error {
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("RunMany returned %v, want context.Canceled", err)
	}
}

// TestRunManySteadyStateAllocs pins RunMany's zero-alloc steady state:
// with caller-owned engine slots and a homogeneous batch, a warm call
// allocates a small constant (pool bookkeeping), i.e. ~0 allocations
// per scenario — the contract that lets the phasing search and the
// oracle campaign run tens of thousands of scenarios cheaply.
func TestRunManySteadyStateAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc accounting run skipped in -short mode")
	}
	sys := synth4x4(t, workload.SynthConfig{NumFlows: 16, Seed: 6})
	const n = 64
	specs := make([]sim.RunSpec, n)
	for i := range specs {
		specs[i] = sim.RunSpec{Sys: sys, Cfg: sim.Config{Duration: 5_000, Offsets: staggeredOffsets(16, 5_000, int64(i))}}
	}
	opts := sim.ManyOptions{Workers: 1, Engines: make([]*sim.Engine, 1)}
	noop := func(i int, res *sim.Result) error { return nil }
	for i := 0; i < 3; i++ {
		if err := sim.RunMany(specs, opts, noop); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(10, func() {
		if err := sim.RunMany(specs, opts, noop); err != nil {
			t.Fatal(err)
		}
	})
	if perScenario := allocs / n; perScenario > 0.1 {
		t.Errorf("warm RunMany allocates %.2f objects/scenario (%.0f per %d-spec call), want ~0",
			perScenario, allocs, n)
	}
}

// BenchmarkRunManySequential is the "before" of the RunMany pair: the
// same scenario batch evaluated one engine run at a time, the way the
// oracle campaign iterated before batching existed.
func BenchmarkRunManySequential(b *testing.B) {
	b.Run("campaign64", func(b *testing.B) {
		specs := campaignSpecs(b)
		eng := sim.NewEngine(specs[0].Sys)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, sp := range specs {
				if _, err := eng.Run(sp.Cfg); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// BenchmarkRunMany measures scenario throughput of the batch runner
// with persistent per-worker engines — the steady state of the
// verification campaign and the phasing search. The speedup over
// BenchmarkRunManySequential is the scenario-parallelism win recorded
// in BENCH_sim.json (on a single-core machine the pair degenerates to
// parity; per-scenario cost, not the ratio, is the tracked number
// there).
func BenchmarkRunMany(b *testing.B) {
	b.Run("campaign64", func(b *testing.B) {
		specs := campaignSpecs(b)
		opts := sim.ManyOptions{Engines: make([]*sim.Engine, 16)}
		noop := func(i int, res *sim.Result) error { return nil }
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := sim.RunMany(specs, opts, noop); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// campaignSpecs is a 64-scenario batch over one system with varying
// phasings — the shape of a phasing-search refinement sweep.
func campaignSpecs(b testing.TB) []sim.RunSpec {
	sys := synth4x4(b, workload.SynthConfig{NumFlows: 32, Seed: 9})
	specs := make([]sim.RunSpec, 64)
	for i := range specs {
		specs[i] = sim.RunSpec{Sys: sys, Cfg: sim.Config{Duration: 10_000, Offsets: staggeredOffsets(32, 10_000, int64(i))}}
	}
	return specs
}

// TestRunManyBenchSpecsAgree anchors the RunMany benchmark pair: both
// sides compute identical results.
func TestRunManyBenchSpecsAgree(t *testing.T) {
	specs := campaignSpecs(t)
	eng := sim.NewEngine(specs[0].Sys)
	for i, sp := range specs[:8] {
		seq, err := eng.Run(sp.Cfg)
		if err != nil {
			t.Fatal(err)
		}
		want := copyResult(seq)
		err = sim.RunMany(specs[i:i+1], sim.ManyOptions{}, func(_ int, res *sim.Result) error {
			got := copyResult(res)
			a, b := *want, *got
			a.Stats, b.Stats = sim.Stats{}, sim.Stats{}
			if !reflect.DeepEqual(&a, &b) {
				return fmt.Errorf("spec %d: RunMany result differs from direct engine run", i)
			}
			return nil
		})
		if err != nil {
			t.Error(err)
		}
	}
}
