package sim_test

import (
	"testing"

	"wormnoc/internal/noc"
	"wormnoc/internal/sim"
	"wormnoc/internal/traffic"
	"wormnoc/internal/workload"
)

// TestZeroLoadMatchesEquation1 checks that an uncontended packet's
// simulated latency equals the analytical zero-load latency C (Eq. 1)
// exactly, across route lengths, packet lengths, link latencies, routing
// latencies and buffer depths.
func TestZeroLoadMatchesEquation1(t *testing.T) {
	cases := []struct {
		name     string
		w, h     int
		src, dst int
		length   int
		buf      int
		linkl    noc.Cycles
		routl    noc.Cycles
	}{
		{"line-short", 6, 1, 0, 5, 60, 2, 1, 0},
		{"line-long-pkt", 6, 1, 0, 5, 198, 2, 1, 0},
		{"one-hop", 4, 4, 0, 1, 16, 2, 1, 0},
		{"diagonal", 4, 4, 0, 15, 128, 4, 1, 0},
		{"routing-latency", 4, 4, 0, 15, 128, 4, 1, 3},
		{"slow-links", 3, 3, 0, 8, 32, 2, 2, 1},
		{"deep-buffers", 8, 8, 0, 63, 512, 100, 1, 2},
		{"single-flit", 4, 4, 5, 6, 1, 2, 1, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			topo := noc.MustMesh(tc.w, tc.h, noc.RouterConfig{
				BufDepth: tc.buf, LinkLatency: tc.linkl, RouteLatency: tc.routl,
			})
			sys := traffic.MustSystem(topo, []traffic.Flow{{
				Name: "f", Priority: 1, Period: 1 << 40, Deadline: 1 << 40,
				Length: tc.length, Src: noc.NodeID(tc.src), Dst: noc.NodeID(tc.dst),
			}})
			res, err := sim.Run(sys, sim.Config{Duration: 1 << 20, MaxPacketsPerFlow: 1})
			if err != nil {
				t.Fatal(err)
			}
			if res.Completed[0] != 1 {
				t.Fatalf("packet did not complete (released %d, in flight %d)", res.Released[0], res.InFlight)
			}
			if want := sys.C(0); res.WorstLatency[0] != want {
				t.Errorf("zero-load latency = %d, want C = %d", res.WorstLatency[0], want)
			}
		})
	}
}

// TestDirectPreemption: a high-priority packet released while a
// low-priority one is in flight preempts it on the shared link and still
// achieves its zero-load latency.
func TestDirectPreemption(t *testing.T) {
	topo := noc.MustMesh(6, 1, noc.RouterConfig{BufDepth: 4, LinkLatency: 1})
	sys := traffic.MustSystem(topo, []traffic.Flow{
		{Name: "hi", Priority: 1, Period: 1 << 30, Deadline: 1 << 30, Length: 50, Src: 0, Dst: 5},
		{Name: "lo", Priority: 2, Period: 1 << 30, Deadline: 1 << 30, Length: 200, Src: 0, Dst: 5},
	})
	res, err := sim.Run(sys, sim.Config{
		Duration:          1 << 16,
		Offsets:           []noc.Cycles{40, 0}, // lo first, hi preempts mid-flight
		MaxPacketsPerFlow: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.WorstLatency[0] != sys.C(0) {
		t.Errorf("preempting flow latency = %d, want its zero-load C = %d", res.WorstLatency[0], sys.C(0))
	}
	// lo is fully preempted for the duration of hi's remaining traffic.
	if res.WorstLatency[1] <= sys.C(1) {
		t.Errorf("preempted flow latency = %d, want > C = %d", res.WorstLatency[1], sys.C(1))
	}
}

// TestBlockedHighPriorityYieldsLink reproduces the arbitration rule of
// Section II: when the highest-priority packet has no credit (blocked
// downstream), the next packet may use the link.
func TestBlockedHighPriorityYieldsLink(t *testing.T) {
	// τk (P1) blocks τj (P2) downstream of τi's (P3) contention domain;
	// while τj is stalled with full buffers, τi must advance. This is the
	// didactic MPB geometry.
	sys := workload.Didactic(2)
	// Release τ1 (the hammer) periodically; with MPB, τ3 finishes even
	// though τ2 occupies the shared links first.
	res, err := sim.Run(sys, sim.Config{Duration: 10_000})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if res.Completed[i] == 0 {
			t.Fatalf("flow %d completed no packets: %+v", i, res)
		}
	}
	// τ3 must have observed MPB interference beyond C but stayed within
	// its IBN bound (348 at buf=2).
	if res.WorstLatency[2] < sys.C(2) {
		t.Errorf("τ3 latency %d below its zero-load latency %d", res.WorstLatency[2], sys.C(2))
	}
	if res.WorstLatency[2] > 348 {
		t.Errorf("τ3 latency %d exceeds its IBN b=2 bound 348", res.WorstLatency[2])
	}
}

// TestTableIISimulationColumns reproduces the simulation columns of
// Table II: sweeping τ1's phase, the worst observed latencies must stay
// below the IBN bounds, and for b=10 the MPB effect must push τ3 beyond
// the unsafe SB bound of 336.
func TestTableIISimulationColumns(t *testing.T) {
	if testing.Short() {
		t.Skip("offset sweep is slow in -short mode")
	}
	for _, tc := range []struct {
		buf      int
		ibnBound noc.Cycles // IBN bound for τ3 at this depth
	}{
		{10, 396},
		{2, 348},
	} {
		sys := workload.Didactic(tc.buf)
		sweep, err := sim.SweepOffsets(sys, sim.Config{Duration: 20_000}, 0, 200, 1)
		if err != nil {
			t.Fatal(err)
		}
		worst := sweep.Worst[2]
		t.Logf("buf=%d: worst observed τ3 latency %d (offset %d), IBN bound %d",
			tc.buf, worst, sweep.WorstOffset[2], tc.ibnBound)
		if worst > tc.ibnBound {
			t.Errorf("buf=%d: observed τ3 latency %d exceeds IBN bound %d", tc.buf, worst, tc.ibnBound)
		}
		if worst < 336-60 {
			t.Errorf("buf=%d: observed τ3 latency %d implausibly low (paper observes ~336-352)", tc.buf, worst)
		}
		if tc.buf == 10 && worst <= 336 {
			t.Errorf("buf=10: observed τ3 latency %d does not exceed the SB bound 336; MPB not reproduced", worst)
		}
	}
}

// TestBufferOccupancyNeverExceedsDepth drives the MPB scenario and
// verifies completion counts balance.
func TestConservationOfPackets(t *testing.T) {
	sys := workload.Didactic(2)
	res, err := sim.Run(sys, sim.Config{Duration: 60_000})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if res.Completed[i] > res.Released[i] {
			t.Errorf("flow %d: completed %d > released %d", i, res.Completed[i], res.Released[i])
		}
	}
	inFlight := 0
	for i := 0; i < 3; i++ {
		inFlight += res.Released[i] - res.Completed[i]
	}
	if inFlight != res.InFlight {
		t.Errorf("in-flight accounting mismatch: per-flow %d vs reported %d", inFlight, res.InFlight)
	}
}
