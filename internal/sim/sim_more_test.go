package sim_test

import (
	"bufio"
	"strings"
	"testing"

	"wormnoc/internal/noc"
	"wormnoc/internal/sim"
	"wormnoc/internal/traffic"
	"wormnoc/internal/workload"
)

func simpleSystem(t *testing.T) *traffic.System {
	t.Helper()
	topo := noc.MustMesh(4, 1, noc.RouterConfig{BufDepth: 2, LinkLatency: 1, RouteLatency: 0})
	return traffic.MustSystem(topo, []traffic.Flow{
		{Name: "a", Priority: 1, Period: 100, Deadline: 100, Length: 10, Src: 0, Dst: 3},
		{Name: "b", Priority: 2, Period: 200, Deadline: 200, Length: 10, Src: 0, Dst: 3},
	})
}

func TestRunConfigValidation(t *testing.T) {
	sys := simpleSystem(t)
	if _, err := sim.Run(sys, sim.Config{Duration: 0}); err == nil {
		t.Error("zero duration must fail")
	}
	if _, err := sim.Run(sys, sim.Config{Duration: 100, Offsets: []noc.Cycles{1}}); err == nil {
		t.Error("offset count mismatch must fail")
	}
	if _, err := sim.Run(sys, sim.Config{Duration: 100, Offsets: []noc.Cycles{-1, 0}}); err == nil {
		t.Error("negative offset must fail")
	}
}

func TestMaxPacketsPerFlow(t *testing.T) {
	sys := simpleSystem(t)
	res, err := sim.Run(sys, sim.Config{Duration: 10_000, MaxPacketsPerFlow: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if res.Released[i] != 3 || res.Completed[i] != 3 {
			t.Errorf("flow %d: released %d completed %d, want 3/3", i, res.Released[i], res.Completed[i])
		}
	}
}

func TestPeriodicReleaseCount(t *testing.T) {
	sys := simpleSystem(t)
	res, err := sim.Run(sys, sim.Config{Duration: 1000})
	if err != nil {
		t.Fatal(err)
	}
	// Flow a: releases at 0,100,...,900 = 10; flow b: 0,200,...,800 = 5.
	if res.Released[0] != 10 || res.Released[1] != 5 {
		t.Errorf("released = %v, want [10 5]", res.Released)
	}
}

func TestOffsetsDelayReleases(t *testing.T) {
	sys := simpleSystem(t)
	res, err := sim.Run(sys, sim.Config{
		Duration:          1000,
		Offsets:           []noc.Cycles{950, 999},
		MaxPacketsPerFlow: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Released[0] != 1 || res.Released[1] != 1 {
		t.Fatalf("released = %v", res.Released)
	}
	// Neither packet can complete before the horizon.
	if res.Completed[0] != 0 && res.WorstLatency[0] < 0 {
		t.Errorf("unexpected completion: %+v", res)
	}
	if res.InFlight == 0 {
		t.Error("late releases should still be in flight")
	}
}

func TestDeadlineMissCounting(t *testing.T) {
	// Low-priority flow with a deadline well below the blocking it will
	// suffer from the heavy high-priority flow sharing its whole route.
	topo := noc.MustMesh(4, 1, noc.RouterConfig{BufDepth: 2, LinkLatency: 1, RouteLatency: 0})
	sys := traffic.MustSystem(topo, []traffic.Flow{
		{Name: "hog", Priority: 1, Period: 100, Deadline: 100, Length: 80, Src: 0, Dst: 3},
		{Name: "meek", Priority: 2, Period: 400, Deadline: 20, Length: 10, Src: 0, Dst: 3},
	})
	res, err := sim.Run(sys, sim.Config{Duration: 4000})
	if err != nil {
		t.Fatal(err)
	}
	if res.DeadlineMisses[1] == 0 {
		t.Errorf("meek should miss deadlines: worst=%d completed=%d",
			res.WorstLatency[1], res.Completed[1])
	}
	if res.DeadlineMisses[0] != 0 {
		t.Errorf("hog should not miss: %+v", res.DeadlineMisses)
	}
}

func TestMeanLatency(t *testing.T) {
	sys := simpleSystem(t)
	res, err := sim.Run(sys, sim.Config{Duration: 5000})
	if err != nil {
		t.Fatal(err)
	}
	m := res.MeanLatency(0)
	if m < float64(sys.C(0)) {
		t.Errorf("mean %f below zero-load %d", m, sys.C(0))
	}
	if m > float64(res.WorstLatency[0]) {
		t.Errorf("mean %f above worst %d", m, res.WorstLatency[0])
	}
	empty, err := sim.Run(sys, sim.Config{Duration: 5000, Offsets: []noc.Cycles{6000, 6000}})
	if err != nil {
		t.Fatal(err)
	}
	if empty.MeanLatency(0) != -1 {
		t.Error("MeanLatency of flow with no completions must be -1")
	}
}

func TestTraceWriter(t *testing.T) {
	topo := noc.MustMesh(2, 1, noc.RouterConfig{BufDepth: 2, LinkLatency: 1, RouteLatency: 0})
	sys := traffic.MustSystem(topo, []traffic.Flow{
		{Name: "a", Priority: 1, Period: 1000, Deadline: 1000, Length: 3, Src: 0, Dst: 1},
	})
	var sb strings.Builder
	_, err := sim.Run(sys, sim.Config{Duration: 100, MaxPacketsPerFlow: 1, TraceWriter: &sb})
	if err != nil {
		t.Fatal(err)
	}
	// 3 flits × 3 links = 9 transfers.
	lines := 0
	sc := bufio.NewScanner(strings.NewReader(sb.String()))
	for sc.Scan() {
		fields := strings.Split(sc.Text(), ",")
		if len(fields) != 5 {
			t.Fatalf("bad trace line %q", sc.Text())
		}
		lines++
	}
	if lines != 9 {
		t.Errorf("trace has %d transfers, want 9", lines)
	}
}

// TestFastForwardEquivalence: sparse periodic traffic simulated over a
// long horizon (exercising the idle fast-forward) produces the same
// latencies as the zero-load prediction.
func TestFastForwardEquivalence(t *testing.T) {
	topo := noc.MustMesh(4, 4, noc.RouterConfig{BufDepth: 4, LinkLatency: 1, RouteLatency: 1})
	sys := traffic.MustSystem(topo, []traffic.Flow{
		{Name: "sparse", Priority: 1, Period: 1_000_000, Deadline: 1_000_000, Length: 64, Src: 0, Dst: 15},
	})
	res, err := sim.Run(sys, sim.Config{Duration: 50_000_000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed[0] != 50 {
		t.Fatalf("completed %d packets, want 50", res.Completed[0])
	}
	if res.WorstLatency[0] != sys.C(0) {
		t.Errorf("worst = %d, want C = %d", res.WorstLatency[0], sys.C(0))
	}
}

// TestSameSourceArbitration: two flows injecting at one node share the
// injection link; the higher-priority one wins and meets C.
func TestSameSourceArbitration(t *testing.T) {
	topo := noc.MustMesh(4, 1, noc.RouterConfig{BufDepth: 2, LinkLatency: 1, RouteLatency: 0})
	sys := traffic.MustSystem(topo, []traffic.Flow{
		{Name: "hi", Priority: 1, Period: 10_000, Deadline: 10_000, Length: 50, Src: 0, Dst: 3},
		{Name: "lo", Priority: 2, Period: 10_000, Deadline: 10_000, Length: 50, Src: 0, Dst: 2},
	})
	res, err := sim.Run(sys, sim.Config{Duration: 10_000, MaxPacketsPerFlow: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.WorstLatency[0] != sys.C(0) {
		t.Errorf("hi delayed at its own source: %d vs C %d", res.WorstLatency[0], sys.C(0))
	}
	if res.WorstLatency[1] <= sys.C(1) {
		t.Errorf("lo should be delayed behind hi: %d vs C %d", res.WorstLatency[1], sys.C(1))
	}
}

// TestSweepErrors covers the sweep's validation paths.
func TestSweepErrors(t *testing.T) {
	sys := workload.Didactic(2)
	if _, err := sim.SweepOffsets(sys, sim.Config{Duration: 100}, -1, 10, 1); err == nil {
		t.Error("bad flow index must fail")
	}
	if _, err := sim.SweepOffsets(sys, sim.Config{Duration: 100}, 0, 0, 1); err == nil {
		t.Error("zero maxOffset must fail")
	}
	if _, err := sim.SweepOffsets(sys, sim.Config{Duration: 100}, 0, 10, 0); err == nil {
		t.Error("zero step must fail")
	}
	var sb strings.Builder
	if _, err := sim.SweepOffsets(sys, sim.Config{Duration: 100, TraceWriter: &sb}, 0, 10, 1); err == nil {
		t.Error("tracing during sweep must fail")
	}
}

// TestSweepPreservesBaseOffsets: non-swept flows keep their base offsets.
func TestSweepPreservesBaseOffsets(t *testing.T) {
	sys := simpleSystem(t)
	base := sim.Config{Duration: 2_000, Offsets: []noc.Cycles{0, 1500}}
	res, err := sim.SweepOffsets(sys, base, 0, 50, 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.Runs != 5 {
		t.Errorf("runs = %d, want 5", res.Runs)
	}
	// Flow b releases at 1500 with period 200: packets at 1500, 1700,
	// 1900 → some must have completed.
	if res.Worst[1] < 0 {
		t.Error("flow b never completed — base offsets were not preserved")
	}
}

// TestWormholeOrdering: flits arrive in order and packets of one flow
// complete in release order (no overtaking within a flow).
func TestWormholeOrdering(t *testing.T) {
	topo := noc.MustMesh(6, 1, noc.RouterConfig{BufDepth: 2, LinkLatency: 1, RouteLatency: 0})
	sys := traffic.MustSystem(topo, []traffic.Flow{
		{Name: "x", Priority: 1, Period: 50, Deadline: 50, Length: 60, Src: 0, Dst: 5},
	})
	// C = 66 > period 50: packets queue at the source back to back, but
	// each must still be delivered completely and in order, with latency
	// growing by the accumulated queueing delay (16 cycles per packet).
	res, err := sim.Run(sys, sim.Config{Duration: 5_000, MaxPacketsPerFlow: 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed[0] != 10 {
		t.Fatalf("completed %d, want 10", res.Completed[0])
	}
	// Packet k is released at 50k but can only start after its
	// predecessor's tail clears the source: worst (10th) latency is
	// C + 9·(60·linkl − 50) = 66 + 144.
	if want := sys.C(0) + 9*(60-50); res.WorstLatency[0] != want {
		t.Errorf("worst = %d, want %d", res.WorstLatency[0], want)
	}
	if res.DeadlineMisses[0] != 10 {
		t.Errorf("all 10 packets must miss D=50, got %d", res.DeadlineMisses[0])
	}
}

// TestRecordLatencies: with recording enabled every completed packet's
// latency is kept, consistent with the aggregate statistics.
func TestRecordLatencies(t *testing.T) {
	sys := simpleSystem(t)
	res, err := sim.Run(sys, sim.Config{Duration: 5_000, RecordLatencies: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < sys.NumFlows(); i++ {
		if len(res.Latencies[i]) != res.Completed[i] {
			t.Fatalf("flow %d: %d recorded latencies for %d completions",
				i, len(res.Latencies[i]), res.Completed[i])
		}
		var total noc.Cycles
		worst := noc.Cycles(-1)
		for _, l := range res.Latencies[i] {
			total += l
			if l > worst {
				worst = l
			}
		}
		if total != res.TotalLatency[i] || worst != res.WorstLatency[i] {
			t.Errorf("flow %d: recorded stats disagree with aggregates", i)
		}
	}
	// Recording off: no slices allocated.
	res2, err := sim.Run(sys, sim.Config{Duration: 5_000})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Latencies != nil {
		t.Error("latencies recorded without RecordLatencies")
	}
}
