package sim

import (
	"fmt"

	"wormnoc/internal/traffic"
)

// Restrict builds the sub-System of sys containing exactly the flows
// whose (original) indices appear in keep, in the order given, bound to
// the same topology. It is the spec-construction half of the exhaustive
// backend's contention-cluster decomposition (internal/exhaustive,
// DESIGN.md §15): when keep is closed under interference — no kept flow
// shares a link, directly or transitively, with a dropped one — the
// restricted system's trajectory is bit-identical to the kept flows'
// slice of the full system's trajectory at the same Duration and
// (projected) Offsets.
//
// The exactness argument is structural, not statistical. The engine's
// state decomposes per link and per virtual channel: a flit moves only
// by winning arbitration on a link of its own route against candidates
// routed on that link, and credits are per-VC, where VC identity is the
// flow's priority. A flow therefore influences another only through a
// shared link, so influence is confined to the connected component of
// the link-sharing graph — exactly the S^D ∪ S^I component structure
// (core.Sets.Clusters). Dropping every flow outside the component
// removes no candidate from any arbitration the kept flows ever face.
//
// Restrict validates that keep is non-empty, in range and duplicate
// free, but deliberately does not verify interference-closure: callers
// exploring reduced state spaces check closure via core.Sets.Clusters,
// while differential tests call Restrict on deliberately open sets to
// prove the closure precondition is load-bearing.
func Restrict(sys *traffic.System, keep []int) (*traffic.System, error) {
	if len(keep) == 0 {
		return nil, fmt.Errorf("sim: restrict: empty flow subset")
	}
	n := sys.NumFlows()
	seen := make(map[int]bool, len(keep))
	flows := make([]traffic.Flow, len(keep))
	for k, i := range keep {
		if i < 0 || i >= n {
			return nil, fmt.Errorf("sim: restrict: flow index %d out of range [0,%d)", i, n)
		}
		if seen[i] {
			return nil, fmt.Errorf("sim: restrict: duplicate flow index %d", i)
		}
		seen[i] = true
		flows[k] = sys.Flow(i)
	}
	sub, err := traffic.NewSystem(sys.Topology(), flows)
	if err != nil {
		return nil, fmt.Errorf("sim: restrict: %w", err)
	}
	return sub, nil
}
