package sim

import (
	"testing"

	"wormnoc/internal/noc"
	"wormnoc/internal/traffic"
)

// Every system traffic.NewSystem accepts has unique flow priorities, so
// TieFree must hold on all of them — including flow sets that share
// every link of a route.
func TestTieFreeHoldsForValidSystems(t *testing.T) {
	topo, err := noc.NewMesh(2, 2, noc.RouterConfig{BufDepth: 4, LinkLatency: 1})
	if err != nil {
		t.Fatal(err)
	}
	sys := traffic.MustSystem(topo, []traffic.Flow{
		{Name: "a", Priority: 1, Period: 20, Deadline: 20, Length: 2, Src: 0, Dst: 3},
		{Name: "b", Priority: 2, Period: 24, Deadline: 24, Length: 3, Src: 0, Dst: 3},
		{Name: "c", Priority: 3, Period: 30, Deadline: 30, Length: 1, Src: 2, Dst: 1},
	})
	ok, reason := TieFree(sys)
	if !ok {
		t.Fatalf("unique-priority system reported tie-prone: %s", reason)
	}
	if reason != "" {
		t.Fatalf("tie-free system returned non-empty reason %q", reason)
	}
}
