package sim

import (
	"fmt"
	"math/rand"

	"wormnoc/internal/noc"
	"wormnoc/internal/traffic"
)

// RunReference simulates the system with the retained pre-event-driven
// engine: a straightforward cycle loop that scans every flow for due
// releases and arbitrates every link, every cycle. It is kept verbatim
// as the differential baseline for the event-driven Engine — the two
// must produce bit-identical Results and trace streams on every input
// (see TestDifferentialEngines and the oracle's divergence invariant).
// It is deliberately unoptimised; use Run/Engine for real workloads.
func RunReference(sys *traffic.System, cfg Config) (*Result, error) {
	if err := validateConfig(sys, cfg); err != nil {
		return nil, err
	}
	e := newRefEngine(sys, cfg)
	e.run()
	return e.res, nil
}

// refVCFIFO is the reference engine's FIFO buffer of one virtual channel
// at one router input port.
type refVCFIFO struct {
	flits    []flit
	head     int
	inflight int // flits transferred but not yet arrived (credit debt)
}

func (f *refVCFIFO) len() int { return len(f.flits) - f.head }

func (f *refVCFIFO) occupancy() int { return f.len() + f.inflight }

func (f *refVCFIFO) push(fl flit) {
	if f.head > 0 && f.head == len(f.flits) {
		f.flits = f.flits[:0]
		f.head = 0
	} else if f.head > 64 && f.head*2 >= len(f.flits) {
		n := copy(f.flits, f.flits[f.head:])
		f.flits = f.flits[:n]
		f.head = 0
	}
	f.flits = append(f.flits, fl)
}

func (f *refVCFIFO) peek() *flit { return &f.flits[f.head] }

func (f *refVCFIFO) pop() flit {
	fl := f.flits[f.head]
	f.head++
	return fl
}

// refEngine is the mutable state of the reference simulation.
type refEngine struct {
	sys *traffic.System
	cfg Config

	linkl noc.Cycles
	routl noc.Cycles
	buf   int

	routes []noc.Route
	// fifos[flow][hop] is the VC buffer fed by route[hop], for
	// hop in [0, len(route)-2]. The ejection link feeds the sink.
	fifos [][]*refVCFIFO
	// onLink[l] lists the (flow, hop) pairs whose route crosses link l,
	// i.e. the arbitration candidates of link l.
	onLink [][]cand

	busyUntil []noc.Cycles // per link

	// source state per flow
	queue       [][]*packet // released, not fully injected
	nextRelease []noc.Cycles
	released    []int
	pktSeq      []int
	// jittered releases scheduled but not yet due, ordered by time.
	pending [][]noc.Cycles
	jitter  *rand.Rand

	// arrivals is a FIFO of in-transit flits; since every transfer takes
	// exactly linkl cycles, arrivals complete in submission order.
	arrivals    []arrival
	arrivalHead int

	res       *Result
	inFlight  int
	flitsLive int // flits inside FIFOs or in transit
}

func newRefEngine(sys *traffic.System, cfg Config) *refEngine {
	n := sys.NumFlows()
	topo := sys.Topology()
	rc := topo.Config()
	e := &refEngine{
		sys:         sys,
		cfg:         cfg,
		linkl:       rc.LinkLatency,
		routl:       rc.RouteLatency,
		buf:         rc.BufDepth,
		routes:      make([]noc.Route, n),
		fifos:       make([][]*refVCFIFO, n),
		onLink:      make([][]cand, topo.NumLinks()),
		busyUntil:   make([]noc.Cycles, topo.NumLinks()),
		queue:       make([][]*packet, n),
		nextRelease: make([]noc.Cycles, n),
		released:    make([]int, n),
		pktSeq:      make([]int, n),
		pending:     make([][]noc.Cycles, n),
		jitter:      rand.New(rand.NewSource(cfg.JitterSeed)),
		res: &Result{
			WorstLatency:   make([]noc.Cycles, n),
			TotalLatency:   make([]noc.Cycles, n),
			Completed:      make([]int, n),
			Released:       make([]int, n),
			DeadlineMisses: make([]int, n),
			MaxOccupancy:   make([][]int, n),
		},
	}
	if cfg.RecordLatencies {
		e.res.Latencies = make([][]noc.Cycles, n)
	}
	for i := 0; i < n; i++ {
		e.res.WorstLatency[i] = -1
		e.routes[i] = sys.Route(i)
		e.res.MaxOccupancy[i] = make([]int, e.routes[i].Len()-1)
		e.fifos[i] = make([]*refVCFIFO, e.routes[i].Len()-1)
		for h := range e.fifos[i] {
			e.fifos[i][h] = &refVCFIFO{}
		}
		for h, l := range e.routes[i] {
			e.onLink[l] = append(e.onLink[l], cand{flow: i, hop: h})
		}
		if cfg.Offsets != nil {
			e.nextRelease[i] = cfg.Offsets[i]
		}
	}
	// Keep candidate lists priority-sorted so arbitration scans stop at
	// the first eligible candidate.
	for l := range e.onLink {
		cands := e.onLink[l]
		for a := 1; a < len(cands); a++ {
			for b := a; b > 0 && sys.Flow(cands[b].flow).Priority < sys.Flow(cands[b-1].flow).Priority; b-- {
				cands[b], cands[b-1] = cands[b-1], cands[b]
			}
		}
	}
	return e
}

func (e *refEngine) run() {
	var transfers []cand
	for t := noc.Cycles(0); t < e.cfg.Duration; t++ {
		// 1. Deliver flits whose link traversal completes at t.
		for e.arrivalHead < len(e.arrivals) && e.arrivals[e.arrivalHead].at <= t {
			a := e.arrivals[e.arrivalHead]
			e.arrivalHead++
			e.deliver(a)
		}
		if e.arrivalHead == len(e.arrivals) && e.arrivalHead > 0 {
			e.arrivals = e.arrivals[:0]
			e.arrivalHead = 0
		}
		// 2. Release periodic packets whose tick is due. With jitter
		// injection the actual release may trail the tick by up to J
		// cycles; releases of one flow stay ordered (a source emits
		// packets in order).
		for i := 0; i < e.sys.NumFlows(); i++ {
			f := e.sys.Flow(i)
			for e.nextRelease[i] <= t {
				if e.cfg.MaxPacketsPerFlow > 0 && e.released[i] >= e.cfg.MaxPacketsPerFlow {
					break
				}
				e.released[i]++
				relAt := e.nextRelease[i]
				if e.cfg.InjectJitter && f.Jitter > 0 {
					relAt += noc.Cycles(e.jitter.Int63n(int64(f.Jitter) + 1))
					if n := len(e.pending[i]); n > 0 && relAt < e.pending[i][n-1] {
						relAt = e.pending[i][n-1]
					}
				}
				if relAt <= t {
					e.releasePacket(i, relAt)
				} else {
					e.pending[i] = append(e.pending[i], relAt)
				}
				e.nextRelease[i] += f.Period
			}
			for len(e.pending[i]) > 0 && e.pending[i][0] <= t {
				e.releasePacket(i, e.pending[i][0])
				e.pending[i] = e.pending[i][1:]
			}
		}
		// Fast-forward across idle gaps: nothing can happen before the
		// next (possibly jittered) release when the network is empty.
		if e.flitsLive == 0 && e.allQueuesEmpty() {
			next := e.cfg.Duration
			for i := range e.nextRelease {
				if len(e.pending[i]) > 0 && e.pending[i][0] < next {
					next = e.pending[i][0]
				}
				if e.cfg.MaxPacketsPerFlow > 0 && e.released[i] >= e.cfg.MaxPacketsPerFlow {
					continue
				}
				if e.nextRelease[i] < next {
					next = e.nextRelease[i]
				}
			}
			if next > t+1 {
				t = next - 1 // loop increment brings us to the release
			}
			continue
		}
		// 3. Arbitrate every link: highest-priority eligible candidate
		// (head flit, routed, with downstream credit) wins.
		transfers = transfers[:0]
		for l, cands := range e.onLink {
			if e.busyUntil[l] > t || len(cands) == 0 {
				continue
			}
			for _, c := range cands {
				if e.eligible(c, t) {
					transfers = append(transfers, c)
					break
				}
			}
		}
		// 4. Apply the transfers decided this cycle simultaneously.
		for _, c := range transfers {
			e.transfer(c, t)
		}
	}
	e.res.InFlight = e.inFlight
}

// releasePacket makes a packet of flow i available for injection at
// cycle relAt (its latency is measured from relAt).
func (e *refEngine) releasePacket(i int, relAt noc.Cycles) {
	p := &packet{
		flow:    i,
		id:      e.pktSeq[i],
		release: relAt,
		length:  e.sys.Flow(i).Length,
	}
	e.pktSeq[i]++
	e.res.Released[i]++
	e.inFlight++
	e.queue[i] = append(e.queue[i], p)
}

func (e *refEngine) allQueuesEmpty() bool {
	for _, q := range e.queue {
		if len(q) > 0 {
			return false
		}
	}
	return true
}

// eligible reports whether candidate c (flow crossing hop c.hop of its
// route) can transfer a flit this cycle: it must have a head flit that
// has been routed, and the downstream VC buffer must have a free slot
// (credit-based flow control).
func (e *refEngine) eligible(c cand, t noc.Cycles) bool {
	route := e.routes[c.flow]
	if c.hop == 0 {
		// Injection: the source node offers the next flit of its oldest
		// pending packet.
		q := e.queue[c.flow]
		if len(q) == 0 {
			return false
		}
		return e.fifos[c.flow][0].occupancy() < e.buf
	}
	f := e.fifos[c.flow][c.hop-1]
	if f.len() == 0 {
		return false
	}
	if f.peek().readyAt > t {
		return false // header still being routed
	}
	if c.hop == route.Len()-1 {
		return true // ejection into the node: always consumes
	}
	return e.fifos[c.flow][c.hop].occupancy() < e.buf
}

// transfer moves one flit of candidate c onto its link at cycle t.
func (e *refEngine) transfer(c cand, t noc.Cycles) {
	route := e.routes[c.flow]
	l := route[c.hop]
	var fl flit
	if c.hop == 0 {
		p := e.queue[c.flow][0]
		fl = flit{pkt: p, seq: p.injected}
		p.injected++
		if p.injected == p.length {
			e.queue[c.flow] = e.queue[c.flow][1:]
		}
		e.flitsLive++
	} else {
		fl = e.fifos[c.flow][c.hop-1].pop()
	}
	if c.hop < route.Len()-1 {
		e.fifos[c.flow][c.hop].inflight++
	}
	e.busyUntil[l] = t + e.linkl
	e.arrivals = append(e.arrivals, arrival{at: t + e.linkl, flow: c.flow, hop: c.hop, fl: fl})
	if e.cfg.TraceWriter != nil {
		fmt.Fprintf(e.cfg.TraceWriter, "%d,%d,%d,%d,%d\n", t, int(l), c.flow, fl.pkt.id, fl.seq)
	}
}

// deliver completes a link traversal: the flit lands in the next VC
// buffer, or in the destination node when the link was the ejection one.
func (e *refEngine) deliver(a arrival) {
	route := e.routes[a.flow]
	if a.hop == route.Len()-1 {
		// Ejected: consumed by the destination node.
		p := a.fl.pkt
		p.arrived++
		e.flitsLive--
		if p.arrived == p.length {
			e.inFlight--
			lat := a.at - p.release
			e.res.Completed[a.flow]++
			e.res.TotalLatency[a.flow] += lat
			if lat > e.res.WorstLatency[a.flow] {
				e.res.WorstLatency[a.flow] = lat
			}
			if lat > e.sys.Flow(a.flow).Deadline {
				e.res.DeadlineMisses[a.flow]++
			}
			if e.cfg.RecordLatencies {
				e.res.Latencies[a.flow] = append(e.res.Latencies[a.flow], lat)
			}
		}
		return
	}
	f := e.fifos[a.flow][a.hop]
	f.inflight--
	fl := a.fl
	if fl.seq == 0 {
		fl.readyAt = a.at + e.routl // header pays the routing latency
	} else {
		fl.readyAt = a.at
	}
	f.push(fl)
	if occ := f.len(); occ > e.res.MaxOccupancy[a.flow][a.hop] {
		e.res.MaxOccupancy[a.flow][a.hop] = occ
	}
}
