package sim_test

import (
	"testing"

	"wormnoc/internal/noc"
	"wormnoc/internal/sim"
	"wormnoc/internal/workload"
)

// TestLongerHorizonNeverReducesWorst: the worst observed latency is
// monotone in the simulation horizon (more packets observed, same
// deterministic schedule).
func TestLongerHorizonNeverReducesWorst(t *testing.T) {
	sys := workload.Didactic(2)
	prev := make([]noc.Cycles, sys.NumFlows())
	for i := range prev {
		prev[i] = -1
	}
	for _, horizon := range []noc.Cycles{2_000, 8_000, 32_000, 128_000} {
		res, err := sim.Run(sys, sim.Config{Duration: horizon})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < sys.NumFlows(); i++ {
			if res.WorstLatency[i] < prev[i] {
				t.Errorf("flow %d: worst dropped from %d to %d at horizon %d",
					i, prev[i], res.WorstLatency[i], horizon)
			}
			prev[i] = res.WorstLatency[i]
		}
	}
}

// TestSteadyStatePeriodicity: the didactic scenario is periodic with
// hyperperiod lcm(200, 4000, 6000) = 12000; per-flow completion counts
// over k hyperperiods scale linearly once the pipeline is warm.
func TestSteadyStatePeriodicity(t *testing.T) {
	sys := workload.Didactic(2)
	const hyper = 12_000
	one, err := sim.Run(sys, sim.Config{Duration: 2 * hyper})
	if err != nil {
		t.Fatal(err)
	}
	two, err := sim.Run(sys, sim.Config{Duration: 4 * hyper})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < sys.NumFlows(); i++ {
		// Released counts are exactly proportional to the horizon.
		if two.Released[i] != 2*one.Released[i] {
			t.Errorf("flow %d: released %d then %d (not proportional)",
				i, one.Released[i], two.Released[i])
		}
		// Worst latency must be identical: the schedule repeats.
		if two.WorstLatency[i] != one.WorstLatency[i] {
			t.Errorf("flow %d: worst changed across hyperperiods: %d vs %d",
				i, one.WorstLatency[i], two.WorstLatency[i])
		}
	}
}

// TestRunIsDeterministic: identical configurations give identical
// results (the engine has no hidden nondeterminism).
func TestRunIsDeterministic(t *testing.T) {
	topo := noc.MustMesh(3, 3, noc.RouterConfig{BufDepth: 3, LinkLatency: 1, RouteLatency: 1})
	sys, err := workload.Synthetic(topo, workload.SynthConfig{
		NumFlows: 10, PeriodMin: 1_000, PeriodMax: 30_000, LenMin: 16, LenMax: 256, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	a, err := sim.Run(sys, sim.Config{Duration: 100_000})
	if err != nil {
		t.Fatal(err)
	}
	b, err := sim.Run(sys, sim.Config{Duration: 100_000})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < sys.NumFlows(); i++ {
		if a.WorstLatency[i] != b.WorstLatency[i] || a.Completed[i] != b.Completed[i] ||
			a.TotalLatency[i] != b.TotalLatency[i] {
			t.Fatalf("nondeterministic results for flow %d", i)
		}
	}
}

// TestThroughputConservation: over a long horizon with a feasible
// workload, completions track releases (the network does not silently
// drop or duplicate packets).
func TestThroughputConservation(t *testing.T) {
	topo := noc.MustMesh(4, 4, noc.RouterConfig{BufDepth: 2, LinkLatency: 1, RouteLatency: 0})
	sys, err := workload.Synthetic(topo, workload.SynthConfig{
		NumFlows: 24, PeriodMin: 2_000, PeriodMax: 40_000, LenMin: 16, LenMax: 512, Seed: 12,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(sys, sim.Config{Duration: 400_000})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < sys.NumFlows(); i++ {
		gap := res.Released[i] - res.Completed[i]
		if gap < 0 || gap > 2 {
			t.Errorf("flow %d: released %d completed %d (gap %d)",
				i, res.Released[i], res.Completed[i], gap)
		}
	}
}
