package canon

import (
	"crypto/sha256"
	"encoding/hex"

	"wormnoc/internal/core"
)

// deltaVersion tags the edit-chain key encoding. Like keyVersion, bump
// on ANY change to what or how delta fields are hashed.
const deltaVersion = "wormnoc-canon-delta/1\n"

// DeltaKey chains one edit onto a previous step's key: the key of
// "(whatever prev identifies) with d applied". prev is either Key(base
// document, options) — the first step of a what-if chain — or the
// DeltaKey of the preceding step. Chaining means step i's key is
// computed in O(1) from step i−1's, without materialising or re-hashing
// the full edited system, yet two chains collide only if they start
// from analysis-equivalent bases and apply identical edits in identical
// order.
//
// Semantically different chains that produce the same edited system
// (e.g. two orderings of independent edits) get different keys; the
// cache then stores the same result twice, which costs a duplicate
// entry but never a wrong answer.
func DeltaKey(prev string, d core.Delta) string {
	h := sha256.New()
	h.Write([]byte(deltaVersion))
	str(h, prev)
	// The kind is hashed by NAME so reordering the core.DeltaKind enum
	// cannot silently repartition a persistent cache.
	str(h, d.Kind.String())
	num(h, int64(d.Flow))
	num(h, int64(d.Other))
	num(h, int64(d.Cycles))
	num(h, int64(d.Length))
	num(h, int64(d.BufDepth))
	num(h, int64(d.Src))
	num(h, int64(d.Dst))
	str(h, d.NewFlow.Name)
	num(h, int64(d.NewFlow.Priority))
	num(h, int64(d.NewFlow.Period))
	num(h, int64(d.NewFlow.Deadline))
	num(h, int64(d.NewFlow.Jitter))
	num(h, int64(d.NewFlow.Length))
	num(h, int64(d.NewFlow.Src))
	num(h, int64(d.NewFlow.Dst))
	return hex.EncodeToString(h.Sum(nil))
}

// ChainKeys returns the per-step keys of a whole edit chain starting
// from base (normally Key(doc, opt)): keys[i] identifies the system
// after deltas[0..i] under the base's options.
func ChainKeys(base string, deltas []core.Delta) []string {
	keys := make([]string, len(deltas))
	prev := base
	for i, d := range deltas {
		prev = DeltaKey(prev, d)
		keys[i] = prev
	}
	return keys
}
