// Package canon computes canonical cache keys for analysis requests:
// collision-resistant hashes of (topology, router configuration, flow
// set, analysis method, analysis options) that the serving layer
// (internal/serve) uses to deduplicate work across requests.
//
// # Stability contract
//
// Two requests map to the same key if and only if they are
// analysis-equivalent — every field that can influence the response is
// hashed, and nothing else:
//
//   - keys are computed from decoded values, so JSON formatting, field
//     order and the presence of absent-vs-zero optional fields never
//     matter;
//   - options are normalised first (see normalize): a zero/negative
//     MaxIterations and core.DefaultMaxIterations hash identically, a
//     negative BufDepth hashes as "use the platform's";
//   - the analysis method is hashed by NAME ("IBN"), not by its numeric
//     selector, so reordering the core.Method enum cannot silently
//     repartition a persistent cache;
//   - flows are hashed in document order, because results are indexed by
//     flow order; flow names are included since responses echo them.
//
// Keys are prefixed with a format version (keyVersion). Any change to
// the encoding MUST bump it, which atomically invalidates every old key
// instead of aliasing new requests onto stale cached results. Within one
// version, keys are stable across processes, platforms and restarts, so
// they are safe to use in persistent or distributed caches.
//
// All functions are pure and safe for concurrent use.
package canon

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"hash"

	"wormnoc/internal/core"
	"wormnoc/internal/traffic"
)

// keyVersion tags the encoding format. Bump on ANY change to what or how
// fields are hashed. Version 2 added the mesh routing policy (documents
// may now select YX routing, which changes every route and hence every
// bound).
const keyVersion = "wormnoc-canon/2\n"

// Key returns the canonical cache key of one analysis request: the
// hex-encoded SHA-256 of the versioned encoding of the system document
// and the normalised options.
func Key(doc traffic.Document, opt core.Options) string {
	h := sha256.New()
	h.Write([]byte(keyVersion))
	hashDocument(h, doc)
	hashOptions(h, opt)
	return hex.EncodeToString(h.Sum(nil))
}

// SystemKey returns the canonical key of the system alone (topology,
// router configuration and flow set, no analysis options). The serving
// layer keys its pool of warm engines by it: every method and option
// combination over one system shares one engine and hence one set of
// interference sets.
func SystemKey(doc traffic.Document) string {
	h := sha256.New()
	h.Write([]byte(keyVersion))
	hashDocument(h, doc)
	return hex.EncodeToString(h.Sum(nil))
}

// Normalize returns opt with the equivalence classes of the stability
// contract collapsed to one representative: method names resolved,
// "default" iteration caps made explicit, and out-of-range overrides
// zeroed. Key hashes the normalised form, so callers only need Normalize
// when they want to inspect or store what was actually keyed.
func Normalize(opt core.Options) core.Options {
	if opt.MaxIterations <= 0 {
		opt.MaxIterations = core.DefaultMaxIterations
	}
	if opt.BufDepth < 0 {
		opt.BufDepth = 0
	}
	return opt
}

func hashDocument(h hash.Hash, doc traffic.Document) {
	str(h, "mesh")
	num(h, int64(doc.Mesh.Width))
	num(h, int64(doc.Mesh.Height))
	num(h, int64(doc.Mesh.BufDepth))
	num(h, int64(doc.Mesh.NumVCs))
	num(h, doc.Mesh.LinkLatency)
	num(h, doc.Mesh.RouteLatency)
	str(h, normalizeRouting(doc.Mesh.Routing))
	str(h, "flows")
	num(h, int64(len(doc.Flows)))
	for _, f := range doc.Flows {
		str(h, f.Name)
		num(h, int64(f.Priority))
		num(h, f.Period)
		num(h, f.Deadline)
		num(h, f.Jitter)
		num(h, int64(f.Length))
		num(h, int64(f.Src))
		num(h, int64(f.Dst))
	}
	// The document comment is presentation-only and deliberately not
	// hashed: it cannot influence the analysis.
}

func hashOptions(h hash.Hash, opt core.Options) {
	opt = Normalize(opt)
	str(h, "opts")
	str(h, opt.Method.String())
	num(h, int64(opt.BufDepth))
	boolean(h, opt.Eq7)
	boolean(h, opt.NoUpstreamFallback)
	num(h, int64(opt.MaxIterations))
}

// normalizeRouting collapses the spellings Document.System accepts for
// one routing policy onto a single representative, so "", "xy" and "XY"
// key identically (they materialise identical systems).
func normalizeRouting(r string) string {
	if r == "yx" || r == "YX" {
		return "yx"
	}
	return "xy"
}

// str writes a length-prefixed string, so ("ab","c") and ("a","bc")
// hash differently.
func str(h hash.Hash, s string) {
	num(h, int64(len(s)))
	h.Write([]byte(s))
}

func num(h hash.Hash, v int64) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(v))
	h.Write(buf[:])
}

func boolean(h hash.Hash, v bool) {
	if v {
		num(h, 1)
	} else {
		num(h, 0)
	}
}
