package canon_test

import (
	"testing"

	"wormnoc/internal/canon"
	"wormnoc/internal/core"
	"wormnoc/internal/traffic"
)

func TestDeltaKeyDeterministicAndDistinct(t *testing.T) {
	base := "aaaa"
	d := core.Delta{Kind: core.DeltaPeriod, Flow: 3, Cycles: 1200}
	if canon.DeltaKey(base, d) != canon.DeltaKey(base, d) {
		t.Error("identical (prev, delta) pairs produced different keys")
	}
	variants := []core.Delta{
		{Kind: core.DeltaPeriod, Flow: 3, Cycles: 1201},
		{Kind: core.DeltaPeriod, Flow: 4, Cycles: 1200},
		{Kind: core.DeltaDeadline, Flow: 3, Cycles: 1200},
		{Kind: core.DeltaJitter, Flow: 3, Cycles: 1200},
		{Kind: core.DeltaPrioritySwap, Flow: 3, Other: 4},
		{Kind: core.DeltaMapping, Flow: 3, Src: 0, Dst: 5},
		{Kind: core.DeltaBufDepth, BufDepth: 8},
		{Kind: core.DeltaAddFlow, NewFlow: traffic.Flow{Priority: 9, Period: 100, Deadline: 100, Length: 1, Dst: 1}},
		{Kind: core.DeltaRemoveFlow, Flow: 3},
	}
	seen := map[string]core.Delta{canon.DeltaKey(base, d): d}
	for _, v := range variants {
		k := canon.DeltaKey(base, v)
		if prev, dup := seen[k]; dup {
			t.Errorf("deltas %v and %v collide on key %s", prev, v, k)
		}
		seen[k] = v
	}
	if canon.DeltaKey("bbbb", d) == canon.DeltaKey(base, d) {
		t.Error("key ignores the previous step's key")
	}
}

func TestChainKeysOrderSensitive(t *testing.T) {
	a := core.Delta{Kind: core.DeltaPeriod, Flow: 0, Cycles: 500}
	b := core.Delta{Kind: core.DeltaJitter, Flow: 1, Cycles: 7}
	ab := canon.ChainKeys("base", []core.Delta{a, b})
	ba := canon.ChainKeys("base", []core.Delta{b, a})
	if len(ab) != 2 || len(ba) != 2 {
		t.Fatalf("chain lengths %d, %d", len(ab), len(ba))
	}
	if ab[1] == ba[1] {
		t.Error("edit order does not influence the chained key")
	}
	if ab[0] != canon.DeltaKey("base", a) {
		t.Error("ChainKeys[0] disagrees with DeltaKey")
	}
	if ab[1] != canon.DeltaKey(ab[0], b) {
		t.Error("ChainKeys[1] is not chained from ChainKeys[0]")
	}
}
