package canon

import (
	"strings"
	"testing"

	"wormnoc/internal/core"
	"wormnoc/internal/traffic"
	"wormnoc/internal/workload"
)

func didacticDoc() traffic.Document {
	return workload.Didactic(2).ToDocument()
}

func TestKeyDeterministic(t *testing.T) {
	opt := core.Options{Method: core.IBN, BufDepth: 2}
	k1 := Key(didacticDoc(), opt)
	k2 := Key(didacticDoc(), opt)
	if k1 != k2 {
		t.Fatalf("identical requests keyed differently: %s vs %s", k1, k2)
	}
	if len(k1) != 64 || strings.ToLower(k1) != k1 {
		t.Fatalf("key is not lower-case sha256 hex: %q", k1)
	}
}

// The didactic key is pinned: it must survive process restarts and
// refactors of the encoder. If this test fails, the encoding changed and
// keyVersion MUST be bumped (then update the constant here).
func TestKeyPinnedAcrossProcesses(t *testing.T) {
	got := Key(didacticDoc(), core.Options{Method: core.IBN, BufDepth: 2})
	const want = "a7c8eb7afdadfd2b8ab4b63dd1ae3038e6e177032b42c98c10706afa91cf1407"
	if got != want {
		t.Fatalf("canonical key drifted:\n got  %s\n want %s\n(bump keyVersion if the encoding changed on purpose)", got, want)
	}
}

func TestKeySensitivity(t *testing.T) {
	base := didacticDoc()
	baseOpt := core.Options{Method: core.IBN, BufDepth: 2}
	baseKey := Key(base, baseOpt)

	mutations := map[string]func() (traffic.Document, core.Options){
		"method": func() (traffic.Document, core.Options) {
			return didacticDoc(), core.Options{Method: core.XLWX, BufDepth: 2}
		},
		"bufdepth": func() (traffic.Document, core.Options) {
			return didacticDoc(), core.Options{Method: core.IBN, BufDepth: 3}
		},
		"eq7": func() (traffic.Document, core.Options) {
			return didacticDoc(), core.Options{Method: core.IBN, BufDepth: 2, Eq7: true}
		},
		"nofallback": func() (traffic.Document, core.Options) {
			return didacticDoc(), core.Options{Method: core.IBN, BufDepth: 2, NoUpstreamFallback: true}
		},
		"maxiter": func() (traffic.Document, core.Options) {
			return didacticDoc(), core.Options{Method: core.IBN, BufDepth: 2, MaxIterations: 7}
		},
		"mesh-buf": func() (traffic.Document, core.Options) {
			d := didacticDoc()
			d.Mesh.BufDepth++
			return d, baseOpt
		},
		"flow-period": func() (traffic.Document, core.Options) {
			d := didacticDoc()
			d.Flows[0].Period++
			return d, baseOpt
		},
		"flow-name": func() (traffic.Document, core.Options) {
			d := didacticDoc()
			d.Flows[0].Name += "x"
			return d, baseOpt
		},
		"flow-order": func() (traffic.Document, core.Options) {
			d := didacticDoc()
			d.Flows[0], d.Flows[1] = d.Flows[1], d.Flows[0]
			return d, baseOpt
		},
		"routing": func() (traffic.Document, core.Options) {
			d := didacticDoc()
			d.Mesh.Routing = "yx"
			return d, baseOpt
		},
	}
	for name, mutate := range mutations {
		doc, opt := mutate()
		if Key(doc, opt) == baseKey {
			t.Errorf("mutation %q did not change the key", name)
		}
	}
}

// Length-prefixed strings: shifting a byte between adjacent fields must
// not collide.
func TestKeyNoFieldBleed(t *testing.T) {
	a := didacticDoc()
	a.Flows[0].Name = "ab"
	a.Flows[1].Name = "c"
	b := didacticDoc()
	b.Flows[0].Name = "a"
	b.Flows[1].Name = "bc"
	if Key(a, core.Options{Method: core.SB}) == Key(b, core.Options{Method: core.SB}) {
		t.Fatal("adjacent string fields bleed into each other")
	}
}

func TestKeyNormalisation(t *testing.T) {
	doc := didacticDoc()
	// Unset and explicit-default iteration caps are the same request.
	k0 := Key(doc, core.Options{Method: core.IBN})
	kDef := Key(doc, core.Options{Method: core.IBN, MaxIterations: core.DefaultMaxIterations})
	if k0 != kDef {
		t.Error("MaxIterations 0 and DefaultMaxIterations keyed differently")
	}
	kNeg := Key(doc, core.Options{Method: core.IBN, BufDepth: -1})
	if kNeg != k0 {
		t.Error("negative and zero BufDepth keyed differently")
	}
	// Absent, "xy" and "XY" routing all materialise XY routes.
	docXY := didacticDoc()
	docXY.Mesh.Routing = "xy"
	if Key(docXY, core.Options{Method: core.IBN}) != k0 {
		t.Error(`explicit "xy" routing keyed differently from the default`)
	}
	docXY.Mesh.Routing = "XY"
	if Key(docXY, core.Options{Method: core.IBN}) != k0 {
		t.Error(`upper-case "XY" routing keyed differently from the default`)
	}
	// The comment is presentation-only.
	doc.Commen = "a remark"
	if Key(doc, core.Options{Method: core.IBN}) != k0 {
		t.Error("document comment leaked into the key")
	}
}

func TestSystemKeyIgnoresOptions(t *testing.T) {
	doc := didacticDoc()
	if SystemKey(doc) != SystemKey(doc) {
		t.Fatal("SystemKey not deterministic")
	}
	if SystemKey(doc) == Key(doc, core.Options{Method: core.SB}) {
		t.Fatal("SystemKey should differ from a full request key")
	}
	changed := didacticDoc()
	changed.Flows[2].Length++
	if SystemKey(doc) == SystemKey(changed) {
		t.Fatal("SystemKey insensitive to the flow set")
	}
}
