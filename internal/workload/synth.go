package workload

import (
	"fmt"
	"math/rand"

	"wormnoc/internal/noc"
	"wormnoc/internal/priority"
	"wormnoc/internal/traffic"
)

// SynthConfig parameterises the synthetic flow-set generator used for the
// large-scale evaluation of Section VI: "periods uniformly distributed
// between 0.5 s and 0.5 ms, maximum packet lengths uniformly distributed
// between 128 and 4096 flits, and deadlines equal to the respective
// periods. Sources and destinations of packet flows are randomly
// selected. Rate-monotonic priority assignment is used."
//
// The paper gives periods in wall-clock time without fixing the NoC
// clock, so the cycle-domain period range is a free calibration
// parameter. The defaults keep the paper's 1000:1 period ratio and are
// chosen so the schedulability crossover falls in the same 40–430-flow
// range as Figure 4 (see EXPERIMENTS.md); absolute percentages shift
// with the clock interpretation, but the curve shapes and the analysis
// ordering the paper reports do not.
type SynthConfig struct {
	// NumFlows is the size of the generated flow set.
	NumFlows int
	// PeriodMin/PeriodMax bound the uniform period distribution, in
	// cycles. Zero values select the defaults (4e3, 4e6).
	PeriodMin, PeriodMax noc.Cycles
	// LenMin/LenMax bound the uniform packet-length distribution, in
	// flits. Zero values select the defaults (128, 4096).
	LenMin, LenMax int
	// Seed makes generation deterministic.
	Seed int64
}

// Default synthetic workload parameters (see SynthConfig).
const (
	DefaultPeriodMin noc.Cycles = 4e3
	DefaultPeriodMax noc.Cycles = 4e6
	DefaultLenMin               = 128
	DefaultLenMax               = 4096
)

func (c *SynthConfig) setDefaults() {
	if c.PeriodMin == 0 {
		c.PeriodMin = DefaultPeriodMin
	}
	if c.PeriodMax == 0 {
		c.PeriodMax = DefaultPeriodMax
	}
	if c.LenMin == 0 {
		c.LenMin = DefaultLenMin
	}
	if c.LenMax == 0 {
		c.LenMax = DefaultLenMax
	}
}

// Synthetic generates a random flow set on the given topology following
// the paper's Section VI recipe. Generation is deterministic in
// cfg.Seed. Priorities are assigned rate-monotonically (shorter period =
// higher priority), with index order breaking ties so priorities stay
// unique.
func Synthetic(topo *noc.Topology, cfg SynthConfig) (*traffic.System, error) {
	cfg.setDefaults()
	if cfg.NumFlows < 1 {
		return nil, fmt.Errorf("workload: NumFlows must be >= 1, got %d", cfg.NumFlows)
	}
	if cfg.PeriodMin < 1 || cfg.PeriodMax < cfg.PeriodMin {
		return nil, fmt.Errorf("workload: bad period range [%d, %d]", cfg.PeriodMin, cfg.PeriodMax)
	}
	if cfg.LenMin < 1 || cfg.LenMax < cfg.LenMin {
		return nil, fmt.Errorf("workload: bad length range [%d, %d]", cfg.LenMin, cfg.LenMax)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := topo.NumNodes()
	flows := make([]traffic.Flow, cfg.NumFlows)
	for i := range flows {
		src := noc.NodeID(rng.Intn(n))
		dst := noc.NodeID(rng.Intn(n - 1))
		if dst >= src {
			dst++
		}
		period := cfg.PeriodMin + noc.Cycles(rng.Int63n(int64(cfg.PeriodMax-cfg.PeriodMin)+1))
		length := cfg.LenMin + rng.Intn(cfg.LenMax-cfg.LenMin+1)
		flows[i] = traffic.Flow{
			Name:     fmt.Sprintf("s%d", i),
			Period:   period,
			Deadline: period,
			Length:   length,
			Src:      src,
			Dst:      dst,
		}
	}
	AssignRateMonotonic(flows)
	return traffic.NewSystem(topo, flows)
}

// AssignRateMonotonic assigns unique priorities 1..n to the flows by
// non-decreasing period (shorter period = higher priority, i.e. smaller
// priority value), breaking ties by slice position. The paper uses
// rate-monotonic assignment "despite sub-optimality, given that no
// optimal assignment is known for this problem".
func AssignRateMonotonic(flows []traffic.Flow) {
	priority.RateMonotonic(flows)
}

// AssignDeadlineMonotonic assigns unique priorities 1..n by
// non-decreasing deadline. Provided as an alternative policy for
// workloads with constrained deadlines (D < T), such as the AV benchmark
// variants; not used by the paper's own experiments.
func AssignDeadlineMonotonic(flows []traffic.Flow) {
	priority.DeadlineMonotonic(flows)
}
