package workload

import (
	"errors"
	"fmt"
	"math/rand"

	"wormnoc/internal/noc"
	"wormnoc/internal/traffic"
)

// ErrNoNetworkFlows is returned by BuildAV/MapAV when a mapping co-locates
// every communicating task pair, leaving no traffic on the network. Such
// mappings are trivially schedulable.
var ErrNoNetworkFlows = errors.New("workload: AV mapping leaves no flow on the network")

// The autonomous-vehicle (AV) benchmark.
//
// Figure 5 of the paper maps "the autonomous vehicle (AV) benchmark from
// [5]" (Indrusiak, J. Syst. Arch. 2014) onto 26 mesh topologies. The
// original flow table is not reproduced in the paper, so this package
// ships a faithful substitute: an autonomous-driving application graph of
// 38 tasks and 39 periodic flows whose structure (camera/LIDAR/radar
// sensor pipelines feeding fusion, detection, planning and actuation
// control loops), rates (ms-scale control, 30 Hz vision, slow map and
// telemetry traffic) and payload mix (multi-kflit sensor frames versus
// tens-of-flit control messages) match the characteristics of the
// original benchmark. See DESIGN.md §4.
//
// Periods are expressed in NoC clock cycles via MSCycles. As with the
// synthetic workload (see SynthConfig), the paper fixes wall-clock
// periods but not the NoC clock, so the cycles-per-millisecond factor is
// the calibration knob: it is chosen so the benchmark loads the meshes
// the way Figure 5 shows, with the analysis ordering
// (IBN2 >= IBN100 >= XLWX) and the improvement magnitudes preserved.

// MSCycles is one millisecond expressed in NoC clock cycles.
const MSCycles noc.Cycles = 500

// AV task indices. Node mapping assigns each task to a mesh node; flows
// between tasks mapped to the same node never enter the network.
const (
	TaskCamFront = iota
	TaskCamRear
	TaskCamLeft
	TaskCamRight
	TaskVisPreFront
	TaskVisPreRear
	TaskVisPreLeft
	TaskVisPreRight
	TaskLidar
	TaskLidarProc
	TaskRadarFront
	TaskRadarRear
	TaskUltrasonic1
	TaskUltrasonic2
	TaskUltrasonic3
	TaskUltrasonic4
	TaskGPS
	TaskIMU
	TaskWheelOdo
	TaskLocalization
	TaskSensorFusion
	TaskObstacleDetect
	TaskObstacleTrack
	TaskLaneDetect
	TaskTrafficSignRec
	TaskPathPlanner
	TaskBehaviorDecision
	TaskTrajectoryCtrl
	TaskSteeringCtrl
	TaskThrottleCtrl
	TaskBrakeCtrl
	TaskStabilityCtrl
	TaskVehicleState
	TaskMapServer
	TaskTelemetry
	TaskDataLogger
	TaskHMI
	TaskV2X
	numAVTasks
)

// AVTaskNames returns the names of the 38 AV tasks, indexed by the Task*
// constants.
func AVTaskNames() []string {
	return []string{
		"CamFront", "CamRear", "CamLeft", "CamRight",
		"VisPreFront", "VisPreRear", "VisPreLeft", "VisPreRight",
		"Lidar", "LidarProc", "RadarFront", "RadarRear",
		"Ultrasonic1", "Ultrasonic2", "Ultrasonic3", "Ultrasonic4",
		"GPS", "IMU", "WheelOdo", "Localization",
		"SensorFusion", "ObstacleDetect", "ObstacleTrack", "LaneDetect",
		"TrafficSignRec", "PathPlanner", "BehaviorDecision", "TrajectoryCtrl",
		"SteeringCtrl", "ThrottleCtrl", "BrakeCtrl", "StabilityCtrl",
		"VehicleState", "MapServer", "Telemetry", "DataLogger",
		"HMI", "V2X",
	}
}

// AVFlow is one flow of the AV application graph, with task-level
// endpoints (mapped to nodes by MapAV).
type AVFlow struct {
	Name             string
	SrcTask, DstTask int
	Period, Deadline noc.Cycles
	Length           int // flits
}

// AVFlows returns the 39 flows of the AV application graph.
func AVFlows() []AVFlow {
	ms := func(m float64) noc.Cycles { return noc.Cycles(m * float64(MSCycles)) }
	f := func(name string, src, dst int, periodMS float64, length int) AVFlow {
		return AVFlow{Name: name, SrcTask: src, DstTask: dst,
			Period: ms(periodMS), Deadline: ms(periodMS), Length: length}
	}
	tight := func(name string, src, dst int, periodMS, deadlineMS float64, length int) AVFlow {
		return AVFlow{Name: name, SrcTask: src, DstTask: dst,
			Period: ms(periodMS), Deadline: ms(deadlineMS), Length: length}
	}
	return []AVFlow{
		// 30 Hz vision pipeline: raw frame slices, then feature maps.
		f("camF", TaskCamFront, TaskVisPreFront, 33, 4096),
		f("camR", TaskCamRear, TaskVisPreRear, 33, 4096),
		f("camL", TaskCamLeft, TaskVisPreLeft, 33, 4096),
		f("camRt", TaskCamRight, TaskVisPreRight, 33, 4096),
		f("featF", TaskVisPreFront, TaskObstacleDetect, 33, 1024),
		f("featR", TaskVisPreRear, TaskObstacleDetect, 33, 1024),
		f("featL", TaskVisPreLeft, TaskObstacleDetect, 33, 1024),
		f("featRt", TaskVisPreRight, TaskObstacleDetect, 33, 1024),
		f("lane-in", TaskVisPreFront, TaskLaneDetect, 33, 1024),
		f("sign-in", TaskVisPreFront, TaskTrafficSignRec, 66, 1024),
		// Ranging sensors into fusion.
		f("lidar", TaskLidar, TaskLidarProc, 100, 4096),
		f("cloud", TaskLidarProc, TaskSensorFusion, 100, 1024),
		f("radarF", TaskRadarFront, TaskSensorFusion, 25, 256),
		f("radarR", TaskRadarRear, TaskSensorFusion, 25, 256),
		f("us1", TaskUltrasonic1, TaskSensorFusion, 20, 64),
		f("us2", TaskUltrasonic2, TaskSensorFusion, 20, 64),
		f("us3", TaskUltrasonic3, TaskSensorFusion, 20, 64),
		f("us4", TaskUltrasonic4, TaskSensorFusion, 20, 64),
		// Localisation inputs and outputs.
		f("gps", TaskGPS, TaskLocalization, 100, 64),
		tight("imu", TaskIMU, TaskLocalization, 5, 2.5, 32),
		f("odo", TaskWheelOdo, TaskLocalization, 10, 32),
		f("map", TaskMapServer, TaskPathPlanner, 200, 2048),
		f("pose", TaskLocalization, TaskPathPlanner, 10, 128),
		// Perception chain.
		f("fused", TaskSensorFusion, TaskObstacleDetect, 20, 512),
		f("objects", TaskObstacleDetect, TaskObstacleTrack, 33, 512),
		f("tracks", TaskObstacleTrack, TaskPathPlanner, 33, 256),
		f("lanes", TaskLaneDetect, TaskPathPlanner, 33, 128),
		f("signs", TaskTrafficSignRec, TaskBehaviorDecision, 66, 64),
		// Planning and actuation control loops (constrained deadlines).
		f("path", TaskPathPlanner, TaskBehaviorDecision, 33, 256),
		tight("cmd", TaskBehaviorDecision, TaskTrajectoryCtrl, 10, 5, 128),
		tight("steer", TaskTrajectoryCtrl, TaskSteeringCtrl, 5, 2.5, 32),
		tight("throttle", TaskTrajectoryCtrl, TaskThrottleCtrl, 5, 2.5, 32),
		tight("brake", TaskTrajectoryCtrl, TaskBrakeCtrl, 5, 2.5, 32),
		tight("esc", TaskVehicleState, TaskStabilityCtrl, 5, 2.5, 64),
		tight("esc-brake", TaskStabilityCtrl, TaskBrakeCtrl, 5, 2.5, 32),
		// Comfort/telemetry traffic.
		f("telemetry", TaskVehicleState, TaskTelemetry, 100, 512),
		f("log", TaskSensorFusion, TaskDataLogger, 100, 2048),
		f("hmi", TaskPathPlanner, TaskHMI, 50, 512),
		f("v2x", TaskV2X, TaskBehaviorDecision, 100, 128),
	}
}

// MapAV maps the 38 AV tasks uniformly at random onto the nodes of the
// topology (deterministically in seed) and returns the resulting network
// flow set with rate-monotonic priorities. Flows between tasks mapped to
// the same node never traverse the network and are omitted (their
// network latency is zero, so they are trivially schedulable).
func MapAV(topo *noc.Topology, seed int64) (*traffic.System, error) {
	rng := rand.New(rand.NewSource(seed))
	mapping := make([]noc.NodeID, numAVTasks)
	for t := range mapping {
		mapping[t] = noc.NodeID(rng.Intn(topo.NumNodes()))
	}
	return BuildAV(topo, mapping)
}

// BuildAV instantiates the AV flow set for an explicit task→node mapping.
// It returns an error when the mapping leaves no flow on the network (all
// communicating task pairs co-mapped), which callers should treat as a
// trivially schedulable mapping.
func BuildAV(topo *noc.Topology, mapping []noc.NodeID) (*traffic.System, error) {
	if len(mapping) != numAVTasks {
		return nil, fmt.Errorf("workload: AV mapping must cover %d tasks, got %d", numAVTasks, len(mapping))
	}
	for t, n := range mapping {
		if !topo.ContainsNode(n) {
			return nil, fmt.Errorf("workload: AV task %d mapped to node %d outside %s", t, int(n), topo)
		}
	}
	var flows []traffic.Flow
	for _, af := range AVFlows() {
		src, dst := mapping[af.SrcTask], mapping[af.DstTask]
		if src == dst {
			continue // local communication, never enters the NoC
		}
		flows = append(flows, traffic.Flow{
			Name:     af.Name,
			Period:   af.Period,
			Deadline: af.Deadline,
			Length:   af.Length,
			Src:      src,
			Dst:      dst,
		})
	}
	if len(flows) == 0 {
		return nil, ErrNoNetworkFlows
	}
	AssignRateMonotonic(flows)
	return traffic.NewSystem(topo, flows)
}

// NumAVTasks returns the number of tasks of the AV application graph.
func NumAVTasks() int { return numAVTasks }
