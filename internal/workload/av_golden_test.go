package workload

import (
	"testing"

	"wormnoc/internal/core"
	"wormnoc/internal/noc"
)

// TestAVGoldenMapping pins one concrete AV mapping end to end: the
// identity placement of the 38 tasks onto a 7x6 mesh (task t on node t),
// its flow census and the schedulability verdicts of the analyses. This
// guards the benchmark definition against accidental edits — any change
// to the task graph, the periods or the clock scale shows up here.
func TestAVGoldenMapping(t *testing.T) {
	topo := noc.MustMesh(7, 6, noc.RouterConfig{BufDepth: 2, LinkLatency: 1, RouteLatency: 0})
	mapping := make([]noc.NodeID, NumAVTasks())
	for i := range mapping {
		mapping[i] = noc.NodeID(i)
	}
	sys, err := BuildAV(topo, mapping)
	if err != nil {
		t.Fatal(err)
	}
	// The identity placement co-locates no tasks: all 39 flows network.
	if sys.NumFlows() != 39 {
		t.Fatalf("flows = %d, want 39", sys.NumFlows())
	}
	// Spot-pin the extreme flows of the graph.
	var camF, steer *int
	for i := 0; i < sys.NumFlows(); i++ {
		switch sys.Flow(i).Name {
		case "camF":
			v := i
			camF = &v
		case "steer":
			v := i
			steer = &v
		}
	}
	if camF == nil || steer == nil {
		t.Fatal("expected flows missing")
	}
	if f := sys.Flow(*camF); f.Length != 4096 || f.Period != 33*MSCycles {
		t.Errorf("camF changed: %+v", f)
	}
	if f := sys.Flow(*steer); f.Length != 32 || f.Deadline != f.Period/2 {
		t.Errorf("steer changed: %+v", f)
	}
	// RM priorities: the 5ms control flows occupy the top levels.
	top := sys.ByPriority()[0]
	if p := sys.Flow(top).Period; p != 5*MSCycles {
		t.Errorf("top-priority flow has period %d, want %d", p, 5*MSCycles)
	}
	// Analysis verdicts on this placement (golden values).
	sets := core.BuildSets(sys)
	verdicts := map[core.Method]bool{}
	for _, m := range []core.Method{core.SB, core.XLWX, core.IBN} {
		res, err := core.AnalyzeWithSets(sys, sets, core.Options{Method: m})
		if err != nil {
			t.Fatal(err)
		}
		verdicts[m] = res.Schedulable
	}
	// The identity placement routes the heavy vision pipeline across
	// many shared column links; IBN certifies it, XLWX does not — a
	// concrete instance of Figure 5's gap.
	if !verdicts[core.IBN] {
		t.Error("IBN should certify the identity placement")
	}
	if verdicts[core.XLWX] {
		t.Error("XLWX unexpectedly certifies the identity placement (workload drifted?)")
	}
	if !verdicts[core.SB] {
		t.Error("SB (optimistic) should certify whatever IBN certifies")
	}
}
