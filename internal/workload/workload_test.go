package workload

import (
	"errors"
	"testing"
	"testing/quick"

	"wormnoc/internal/noc"
	"wormnoc/internal/traffic"
)

func TestDidacticMatchesTableI(t *testing.T) {
	sys := Didactic(2)
	if sys.NumFlows() != 3 {
		t.Fatalf("flows = %d", sys.NumFlows())
	}
	want := []struct {
		c        noc.Cycles
		length   int
		routeLen int
		period   noc.Cycles
		prio     int
	}{
		{62, 60, 3, 200, 1},
		{204, 198, 7, 4000, 2},
		{132, 128, 5, 6000, 3},
	}
	for i, w := range want {
		f := sys.Flow(i)
		if sys.C(i) != w.c || f.Length != w.length || sys.Route(i).Len() != w.routeLen ||
			f.Period != w.period || f.Priority != w.prio || f.Deadline != f.Period || f.Jitter != 0 {
			t.Errorf("τ%d mismatch: C=%d %+v", i+1, sys.C(i), f)
		}
	}
	if got := sys.Topology().Config().BufDepth; got != 2 {
		t.Errorf("buf depth = %d", got)
	}
	if Didactic(10).Topology().Config().BufDepth != 10 {
		t.Error("buffer depth parameter ignored")
	}
}

func TestSyntheticRespectsBounds(t *testing.T) {
	topo := noc.MustMesh(4, 4, noc.RouterConfig{BufDepth: 2, LinkLatency: 1})
	prop := func(seed int64) bool {
		sys, err := Synthetic(topo, SynthConfig{NumFlows: 50, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if sys.NumFlows() != 50 {
			return false
		}
		seen := make(map[int]bool)
		for i := 0; i < 50; i++ {
			f := sys.Flow(i)
			if f.Period < DefaultPeriodMin || f.Period > DefaultPeriodMax {
				t.Logf("period %d out of range", f.Period)
				return false
			}
			if f.Length < DefaultLenMin || f.Length > DefaultLenMax {
				return false
			}
			if f.Deadline != f.Period || f.Jitter != 0 || f.Src == f.Dst {
				return false
			}
			if seen[f.Priority] {
				t.Logf("duplicate priority %d", f.Priority)
				return false
			}
			seen[f.Priority] = true
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestSyntheticRateMonotonic(t *testing.T) {
	topo := noc.MustMesh(4, 4, noc.RouterConfig{BufDepth: 2, LinkLatency: 1})
	sys, err := Synthetic(topo, SynthConfig{NumFlows: 100, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	// Priority order must equal period order.
	byP := sys.ByPriority()
	for i := 1; i < len(byP); i++ {
		if sys.Flow(byP[i-1]).Period > sys.Flow(byP[i]).Period {
			t.Fatalf("RM violated: P%d has T=%d before P%d with T=%d",
				i, sys.Flow(byP[i-1]).Period, i+1, sys.Flow(byP[i]).Period)
		}
	}
}

func TestSyntheticDeterminism(t *testing.T) {
	topo := noc.MustMesh(4, 4, noc.RouterConfig{BufDepth: 2, LinkLatency: 1})
	a, err := Synthetic(topo, SynthConfig{NumFlows: 30, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Synthetic(topo, SynthConfig{NumFlows: 30, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		if a.Flow(i) != b.Flow(i) {
			t.Fatalf("flow %d differs across identical seeds", i)
		}
	}
	c, err := Synthetic(topo, SynthConfig{NumFlows: 30, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := 0; i < 30; i++ {
		if a.Flow(i) != c.Flow(i) {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical workloads")
	}
}

func TestSyntheticErrors(t *testing.T) {
	topo := noc.MustMesh(4, 4, noc.RouterConfig{BufDepth: 2, LinkLatency: 1})
	bad := []SynthConfig{
		{NumFlows: 0},
		{NumFlows: 5, PeriodMin: 100, PeriodMax: 50},
		{NumFlows: 5, LenMin: 100, LenMax: 50},
		{NumFlows: 5, PeriodMin: -1, PeriodMax: 50},
	}
	for i, cfg := range bad {
		if _, err := Synthetic(topo, cfg); err == nil {
			t.Errorf("config %d should fail: %+v", i, cfg)
		}
	}
}

func TestAssignPriorities(t *testing.T) {
	flows := []traffic.Flow{
		{Period: 300, Deadline: 100},
		{Period: 100, Deadline: 300},
		{Period: 200, Deadline: 200},
	}
	AssignRateMonotonic(flows)
	if flows[1].Priority != 1 || flows[2].Priority != 2 || flows[0].Priority != 3 {
		t.Errorf("RM priorities: %+v", flows)
	}
	AssignDeadlineMonotonic(flows)
	if flows[0].Priority != 1 || flows[2].Priority != 2 || flows[1].Priority != 3 {
		t.Errorf("DM priorities: %+v", flows)
	}
	// Ties broken stably by position.
	tied := []traffic.Flow{{Period: 100}, {Period: 100}, {Period: 100}}
	AssignRateMonotonic(tied)
	for i, f := range tied {
		if f.Priority != i+1 {
			t.Errorf("stable tie-break violated: %+v", tied)
		}
	}
}

func TestAVGraphShape(t *testing.T) {
	names := AVTaskNames()
	if len(names) != NumAVTasks() || len(names) != 38 {
		t.Fatalf("AV tasks = %d names for %d tasks", len(names), NumAVTasks())
	}
	seen := map[string]bool{}
	for _, n := range names {
		if n == "" || seen[n] {
			t.Errorf("bad/duplicate task name %q", n)
		}
		seen[n] = true
	}
	flows := AVFlows()
	if len(flows) != 39 {
		t.Fatalf("AV flows = %d, want 39", len(flows))
	}
	for _, f := range flows {
		if f.SrcTask < 0 || f.SrcTask >= NumAVTasks() || f.DstTask < 0 || f.DstTask >= NumAVTasks() {
			t.Errorf("flow %q has endpoints outside the task set", f.Name)
		}
		if f.SrcTask == f.DstTask {
			t.Errorf("flow %q is a self loop", f.Name)
		}
		if f.Period < 1 || f.Deadline < 1 || f.Deadline > f.Period || f.Length < 1 {
			t.Errorf("flow %q has bad parameters: %+v", f.Name, f)
		}
	}
}

func TestMapAV(t *testing.T) {
	topo := noc.MustMesh(4, 4, noc.RouterConfig{BufDepth: 2, LinkLatency: 1})
	sys, err := MapAV(topo, 1)
	if err != nil {
		t.Fatal(err)
	}
	if sys.NumFlows() < 1 || sys.NumFlows() > 39 {
		t.Fatalf("mapped flows = %d", sys.NumFlows())
	}
	// Determinism.
	sys2, err := MapAV(topo, 1)
	if err != nil {
		t.Fatal(err)
	}
	if sys2.NumFlows() != sys.NumFlows() {
		t.Error("MapAV not deterministic")
	}
	for i := 0; i < sys.NumFlows(); i++ {
		if sys.Flow(i) != sys2.Flow(i) {
			t.Error("MapAV not deterministic")
			break
		}
	}
}

func TestBuildAVErrors(t *testing.T) {
	topo := noc.MustMesh(2, 2, noc.RouterConfig{BufDepth: 2, LinkLatency: 1})
	if _, err := BuildAV(topo, make([]noc.NodeID, 3)); err == nil {
		t.Error("short mapping must fail")
	}
	badNode := make([]noc.NodeID, NumAVTasks())
	badNode[5] = 99
	if _, err := BuildAV(topo, badNode); err == nil {
		t.Error("out-of-mesh mapping must fail")
	}
	// All tasks on one node: no network flow.
	allZero := make([]noc.NodeID, NumAVTasks())
	_, err := BuildAV(topo, allZero)
	if !errors.Is(err, ErrNoNetworkFlows) {
		t.Errorf("co-mapped AV should yield ErrNoNetworkFlows, got %v", err)
	}
}

func TestBuildAVDropsLocalFlows(t *testing.T) {
	topo := noc.MustMesh(2, 2, noc.RouterConfig{BufDepth: 2, LinkLatency: 1})
	// Map the camera pipeline pair-wise together: camF becomes local.
	mapping := make([]noc.NodeID, NumAVTasks())
	for i := range mapping {
		mapping[i] = noc.NodeID(i % 4)
	}
	mapping[TaskCamFront] = 1
	mapping[TaskVisPreFront] = 1
	sys, err := BuildAV(topo, mapping)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < sys.NumFlows(); i++ {
		if sys.Flow(i).Name == "camF" {
			t.Error("co-mapped flow camF must be dropped")
		}
		if sys.Flow(i).Src == sys.Flow(i).Dst {
			t.Error("local flow leaked into the system")
		}
	}
}
