// Package workload builds the traffic workloads evaluated in the paper:
// the didactic 3-flow MPB example of Section V, the synthetically
// generated flow sets of increasing load of Section VI, and a substitute
// for the autonomous-vehicle (AV) benchmark of Indrusiak 2014 used in
// Figure 5 (see DESIGN.md §4 for the substitution rationale).
package workload

import (
	"wormnoc/internal/noc"
	"wormnoc/internal/traffic"
)

// DidacticBufDefault is the buffer depth the paper tabulates first for
// the didactic example (Table II also reports 2-flit buffers).
const DidacticBufDefault = 10

// Didactic returns the didactic example of Section V of the paper
// (Figure 3 and Table I): three flows on a six-router line with
// single-cycle links and combinational routing, chosen to highlight the
// downstream indirect interference of τ1 over τ3 through τ2.
//
// Nodes a..f are 0..5 on a 6x1 mesh:
//
//	τ1: e→f  (P1, L=60,  T=D=200)   — the short high-priority "hammer"
//	τ2: a→f  (P2, L=198, T=D=4000)  — the long victim-turned-interferer
//	τ3: b→e  (P3, L=128, T=D=6000)  — the analysed low-priority flow
//
// τ3 shares three links with τ2 (cd₂₃ = r2→r3→r4→r5); τ1 shares one link
// with τ2 (r5→r6) downstream of cd₂₃ and none with τ3, so every hit of τ1
// on τ2 lets buffered flits of τ2 re-interfere with τ3 — the MPB effect.
//
// The zero-load latencies reproduce Table I exactly:
// C₁=62, C₂=204, C₃=132 (|route| of 3, 7 and 5 links).
func Didactic(bufDepth int) *traffic.System {
	topo := noc.MustMesh(6, 1, noc.RouterConfig{
		BufDepth:     bufDepth,
		LinkLatency:  1,
		RouteLatency: 0,
	})
	flows := []traffic.Flow{
		{Name: "τ1", Priority: 1, Length: 60, Period: 200, Deadline: 200, Src: 4, Dst: 5},
		{Name: "τ2", Priority: 2, Length: 198, Period: 4000, Deadline: 4000, Src: 0, Dst: 5},
		{Name: "τ3", Priority: 3, Length: 128, Period: 6000, Deadline: 6000, Src: 1, Dst: 4},
	}
	return traffic.MustSystem(topo, flows)
}
