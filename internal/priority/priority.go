// Package priority implements priority-assignment policies for flow sets
// on priority-preemptive NoCs.
//
// The paper's experiments use rate-monotonic assignment "despite
// sub-optimality, given that no optimal assignment is known for this
// problem". Besides rate- and deadline-monotonic orderings, this package
// provides an Audsley-style lowest-priority-first search that uses any of
// the response-time analyses as its schedulability oracle. Because the
// wormhole analyses violate the independence assumptions behind Audsley's
// optimality proof (a flow's bound depends on the relative order of its
// higher-priority interferers), the search is a heuristic here — but it
// still dominates RM/DM on constrained-deadline workloads in practice.
package priority

import (
	"context"
	"fmt"
	"sort"

	"wormnoc/internal/core"
	"wormnoc/internal/noc"
	"wormnoc/internal/traffic"
)

// RateMonotonic assigns unique priorities 1..n by non-decreasing period
// (ties broken by slice position).
func RateMonotonic(flows []traffic.Flow) {
	assignBy(flows, func(a, b traffic.Flow) bool { return a.Period < b.Period })
}

// DeadlineMonotonic assigns unique priorities 1..n by non-decreasing
// deadline (ties broken by slice position).
func DeadlineMonotonic(flows []traffic.Flow) {
	assignBy(flows, func(a, b traffic.Flow) bool { return a.Deadline < b.Deadline })
}

func assignBy(flows []traffic.Flow, less func(a, b traffic.Flow) bool) {
	idx := make([]int, len(flows))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return less(flows[idx[a]], flows[idx[b]]) })
	for rank, i := range idx {
		flows[i].Priority = rank + 1
	}
}

// Audsley searches for a schedulable priority assignment with the
// lowest-priority-first strategy: for each priority level from n down to
// 1, it finds a still-unassigned flow that is schedulable at that level
// (with all other unassigned flows assumed higher-priority) and fixes it
// there. The given analysis (opt) is the schedulability oracle.
//
// On success it returns the flows with priorities assigned and ok=true.
// If at some level no candidate is schedulable, it returns ok=false and
// the flows carry the best-effort assignment found by falling back to
// deadline-monotonic order for the remaining levels.
//
// The search runs O(n²) analyses in the worst case; candidates are tried
// in deadline-monotonic order (largest deadline first at each level),
// which usually succeeds on the first try.
func Audsley(topo *noc.Topology, flows []traffic.Flow, opt core.Options) ([]traffic.Flow, bool, error) {
	return AudsleyContext(context.Background(), topo, flows, opt)
}

// AudsleyContext is Audsley under a context: cancelling ctx aborts the
// search with the context's error.
//
// All candidate analyses of one search share a single delta-aware
// engine (core.Incremental). The mapping never changes during the
// search, so the engine's contention domains are computed once;
// consecutive trial assignments differ in a handful of priority levels,
// so each candidate becomes a short chain of priority-swap deltas
// followed by a frontier-only re-analysis — bit-identical to the
// from-scratch analysis the search used to run per candidate.
func AudsleyContext(ctx context.Context, topo *noc.Topology, flows []traffic.Flow, opt core.Options) ([]traffic.Flow, bool, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	n := len(flows)
	if n == 0 {
		return nil, false, fmt.Errorf("priority: empty flow set")
	}
	out := make([]traffic.Flow, n)
	copy(out, flows)

	// unassigned flows, tried largest-deadline-first at each level.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return out[order[a]].Deadline > out[order[b]].Deadline
	})

	assigned := make([]int, 0, n) // flow index fixed per level, lowest first
	inAssigned := make([]bool, n)
	s := &audsleySearch{ctx: ctx, topo: topo, flows: out, opt: opt}

	for level := n; level >= 1; level-- {
		found := -1
		for _, cand := range order {
			if inAssigned[cand] {
				continue
			}
			ok, err := s.schedulable(trialPriorities(out, assigned, cand, level), cand)
			if err != nil {
				return nil, false, err
			}
			if ok {
				found = cand
				break
			}
		}
		if found < 0 {
			// Dead end: fall back to DM for every remaining flow.
			rest := make([]int, 0, level)
			for i := range out {
				if !inAssigned[i] {
					rest = append(rest, i)
				}
			}
			sort.SliceStable(rest, func(a, b int) bool {
				return out[rest[a]].Deadline < out[rest[b]].Deadline
			})
			for rank, i := range rest {
				out[i].Priority = rank + 1
			}
			for rank, i := range assigned {
				out[i].Priority = n - rank
			}
			return out, false, nil
		}
		inAssigned[found] = true
		assigned = append(assigned, found)
	}
	for rank, i := range assigned {
		out[i].Priority = n - rank
	}
	return out, true, nil
}

// trialPriorities computes the hypothetical assignment of one candidate
// check: cand at the probed level, the already-assigned flows on the
// levels below it (n, n−1, … in their fixed order) and every other flow
// above it.
//
// In Audsley's original setting the relative order of the
// higher-priority flows is irrelevant; for the wormhole analyses it is
// not (cand's bound uses their response times, and a deadline miss above
// leaves cand's bound uncomputable). The heuristic therefore orders the
// hypothetical higher-priority flows deadline-monotonically, the
// canonical order most likely to keep them all schedulable.
func trialPriorities(flows []traffic.Flow, assigned []int, cand, level int) []int {
	n := len(flows)
	prio := make([]int, n)
	prio[cand] = level
	// Assigned flows occupy levels n, n-1, ... below cand.
	isAssigned := make([]bool, n)
	for rank, i := range assigned {
		prio[i] = n - rank
		isAssigned[i] = true
	}
	// Remaining flows take the levels above cand, deadline-monotonically.
	var rest []int
	for i := range flows {
		if i != cand && !isAssigned[i] {
			rest = append(rest, i)
		}
	}
	sort.SliceStable(rest, func(a, b int) bool {
		return flows[rest[a]].Deadline < flows[rest[b]].Deadline
	})
	for rank, i := range rest {
		prio[i] = rank + 1
	}
	return prio
}

// audsleySearch holds the shared analysis engine of one Audsley run. The
// engine's system always carries the most recent trial assignment (prio,
// by flow index); the next trial is reached by swapping priorities, never
// by rebuilding the system.
type audsleySearch struct {
	ctx   context.Context
	topo  *noc.Topology
	flows []traffic.Flow
	opt   core.Options
	eng   *core.Incremental
	prio  []int
}

// schedulable reports whether flow cand meets its deadline under the
// trial assignment.
func (s *audsleySearch) schedulable(trial []int, cand int) (bool, error) {
	if err := s.ctx.Err(); err != nil {
		return false, err
	}
	if s.eng == nil {
		fl := make([]traffic.Flow, len(s.flows))
		copy(fl, s.flows)
		for i := range fl {
			fl[i].Priority = trial[i]
		}
		sys, err := traffic.NewSystem(s.topo, fl)
		if err != nil {
			return false, err
		}
		s.eng = core.NewIncremental(sys)
		s.prio = append([]int(nil), trial...)
	} else if deltas := swapChain(s.prio, trial); len(deltas) > 0 {
		if err := s.eng.Apply(deltas...); err != nil {
			return false, err
		}
	}
	res, err := s.eng.Analyze(s.ctx, s.opt)
	if err != nil {
		return false, err
	}
	return res.Flows[cand].Status == core.Schedulable, nil
}

// swapChain decomposes the permutation taking cur to tgt into
// priority-swap deltas (cycle decomposition: at most n−1 swaps, none
// when the assignments already agree) and updates cur in place to tgt.
// Both slices must hold permutations of 1..n indexed by flow.
func swapChain(cur, tgt []int) []core.Delta {
	n := len(cur)
	pos := make([]int, n+1) // pos[p] = flow currently at priority p
	for i, p := range cur {
		pos[p] = i
	}
	var deltas []core.Delta
	for i := 0; i < n; i++ {
		if cur[i] == tgt[i] {
			continue
		}
		j := pos[tgt[i]]
		deltas = append(deltas, core.Delta{Kind: core.DeltaPrioritySwap, Flow: i, Other: j})
		cur[j] = cur[i]
		pos[cur[i]] = j
		cur[i] = tgt[i]
		pos[tgt[i]] = i
	}
	return deltas
}
