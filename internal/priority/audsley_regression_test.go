package priority_test

import (
	"testing"

	"wormnoc/internal/core"
	"wormnoc/internal/noc"
	"wormnoc/internal/priority"
	"wormnoc/internal/traffic"
)

// TestAudsleyUnassignedOrderRegression reproduces a scenario where the
// lowest-priority-first search only succeeds if the hypothetical
// higher-priority flows are ordered sensibly (deadline-monotonically):
// with them in input order, the tight-deadline flow misses up top and
// poisons every candidate's bound with DependencyFailed, making the
// search falsely report infeasibility even though a schedulable
// assignment exists.
func TestAudsleyUnassignedOrderRegression(t *testing.T) {
	topo := noc.MustMesh(4, 4, noc.RouterConfig{BufDepth: 2, LinkLatency: 1, RouteLatency: 0})
	flows := []traffic.Flow{
		{Name: "bulkA", Period: 5_000, Deadline: 5_000, Length: 1500, Src: 0, Dst: 12},
		{Name: "bulkB", Period: 6_000, Deadline: 6_000, Length: 1500, Src: 1, Dst: 12},
		{Name: "tight", Period: 9_000, Deadline: 900, Length: 64, Src: 4, Dst: 12},
		{Name: "telemetry", Period: 20_000, Deadline: 20_000, Length: 512, Src: 5, Dst: 12},
	}
	out, ok, err := priority.Audsley(topo, flows, core.Options{Method: core.IBN})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("Audsley must find the (deadline-monotonic) assignment")
	}
	sys := traffic.MustSystem(topo, out)
	res, err := core.Analyze(sys, core.Options{Method: core.IBN})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Schedulable {
		t.Fatalf("returned assignment unschedulable: %+v", out)
	}
	// Rate-monotonic fails on the same set (the example's premise).
	rm := make([]traffic.Flow, len(flows))
	copy(rm, flows)
	priority.RateMonotonic(rm)
	rmRes, err := core.Analyze(traffic.MustSystem(topo, rm), core.Options{Method: core.IBN})
	if err != nil {
		t.Fatal(err)
	}
	if rmRes.Schedulable {
		t.Error("premise broken: RM should fail this set")
	}
}
