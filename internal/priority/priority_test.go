package priority_test

import (
	"context"

	"testing"

	"wormnoc/internal/core"
	"wormnoc/internal/noc"
	"wormnoc/internal/priority"
	"wormnoc/internal/traffic"
	"wormnoc/internal/workload"
)

func TestMonotonicAssignments(t *testing.T) {
	flows := []traffic.Flow{
		{Name: "a", Period: 300, Deadline: 80},
		{Name: "b", Period: 100, Deadline: 100},
		{Name: "c", Period: 200, Deadline: 150},
	}
	priority.RateMonotonic(flows)
	if flows[1].Priority != 1 || flows[2].Priority != 2 || flows[0].Priority != 3 {
		t.Errorf("RM: %+v", flows)
	}
	priority.DeadlineMonotonic(flows)
	if flows[0].Priority != 1 || flows[1].Priority != 2 || flows[2].Priority != 3 {
		t.Errorf("DM: %+v", flows)
	}
}

// rmFailsDmWorks is the classic constrained-deadline scenario: the
// short-period flow hogs the shared path, so under RM the tight-deadline
// flow misses; giving the tight flow top priority schedules both.
func rmFailsDmWorks(t *testing.T) (*noc.Topology, []traffic.Flow) {
	t.Helper()
	topo := noc.MustMesh(4, 1, noc.RouterConfig{BufDepth: 2, LinkLatency: 1, RouteLatency: 0})
	return topo, []traffic.Flow{
		// C = 5 + 49 = 54.
		{Name: "bulk", Period: 100, Deadline: 100, Length: 50, Src: 0, Dst: 3},
		// C = 5 + 9 = 14; D = 40 < one hit of bulk.
		{Name: "tight", Period: 400, Deadline: 40, Length: 10, Src: 0, Dst: 3},
	}
}

func TestRMFailsOnConstrainedDeadlines(t *testing.T) {
	topo, flows := rmFailsDmWorks(t)
	priority.RateMonotonic(flows)
	sys := traffic.MustSystem(topo, flows)
	res, err := core.Analyze(sys, core.Options{Method: core.IBN})
	if err != nil {
		t.Fatal(err)
	}
	if res.Schedulable {
		t.Fatal("RM should fail on this set")
	}
	priority.DeadlineMonotonic(flows)
	sys = traffic.MustSystem(topo, flows)
	res, err = core.Analyze(sys, core.Options{Method: core.IBN})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Schedulable {
		t.Fatalf("DM should schedule this set: %+v", res.Flows)
	}
}

func TestAudsleyFindsAssignmentRMCannot(t *testing.T) {
	topo, flows := rmFailsDmWorks(t)
	priority.RateMonotonic(flows) // start from the failing assignment
	out, ok, err := priority.Audsley(topo, flows, core.Options{Method: core.IBN})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("Audsley should find an assignment")
	}
	sys := traffic.MustSystem(topo, out)
	res, err := core.Analyze(sys, core.Options{Method: core.IBN})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Schedulable {
		t.Fatalf("Audsley's assignment is not schedulable: %+v", out)
	}
	// The tight-deadline flow must have ended up on top.
	for _, f := range out {
		if f.Name == "tight" && f.Priority != 1 {
			t.Errorf("tight flow at priority %d", f.Priority)
		}
	}
}

func TestAudsleyReportsInfeasible(t *testing.T) {
	// Two heavy flows sharing one path, both with deadlines below the
	// other's C: no priority order works.
	topo := noc.MustMesh(4, 1, noc.RouterConfig{BufDepth: 2, LinkLatency: 1, RouteLatency: 0})
	flows := []traffic.Flow{
		{Name: "x", Period: 200, Deadline: 60, Length: 50, Src: 0, Dst: 3}, // C = 54
		{Name: "y", Period: 200, Deadline: 60, Length: 50, Src: 0, Dst: 3}, // C = 54
	}
	out, ok, err := priority.Audsley(topo, flows, core.Options{Method: core.IBN})
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("no assignment should exist")
	}
	// Best-effort priorities must still be a valid permutation.
	seen := map[int]bool{}
	for _, f := range out {
		if f.Priority < 1 || f.Priority > 2 || seen[f.Priority] {
			t.Errorf("invalid fallback priorities: %+v", out)
		}
		seen[f.Priority] = true
	}
}

func TestAudsleyPermutationValid(t *testing.T) {
	topo := noc.MustMesh(3, 3, noc.RouterConfig{BufDepth: 2, LinkLatency: 1, RouteLatency: 0})
	sys, err := workload.Synthetic(topo, workload.SynthConfig{NumFlows: 12, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	out, ok, err := priority.Audsley(topo, sys.Flows(), core.Options{Method: core.XLWX})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, f := range out {
		if f.Priority < 1 || f.Priority > len(out) || seen[f.Priority] {
			t.Fatalf("invalid permutation: %+v", out)
		}
		seen[f.Priority] = true
	}
	if ok {
		// The returned assignment must check out end to end.
		s := traffic.MustSystem(topo, out)
		res, err := core.Analyze(s, core.Options{Method: core.XLWX})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Schedulable {
			t.Error("Audsley claimed success but the set is unschedulable")
		}
	}
}

func TestAudsleyAtLeastAsGoodAsRM(t *testing.T) {
	// Over a few random sets: whenever RM schedules, Audsley must too.
	topo := noc.MustMesh(3, 3, noc.RouterConfig{BufDepth: 2, LinkLatency: 1, RouteLatency: 0})
	for seed := int64(0); seed < 10; seed++ {
		sys, err := workload.Synthetic(topo, workload.SynthConfig{NumFlows: 15, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		rm, err := core.Analyze(sys, core.Options{Method: core.IBN})
		if err != nil {
			t.Fatal(err)
		}
		_, ok, err := priority.Audsley(topo, sys.Flows(), core.Options{Method: core.IBN})
		if err != nil {
			t.Fatal(err)
		}
		if rm.Schedulable && !ok {
			t.Errorf("seed %d: RM schedulable but Audsley failed", seed)
		}
	}
}

func TestAudsleyEmpty(t *testing.T) {
	topo := noc.MustMesh(2, 2, noc.RouterConfig{BufDepth: 2, LinkLatency: 1})
	if _, _, err := priority.Audsley(topo, nil, core.Options{Method: core.IBN}); err == nil {
		t.Error("empty flow set must fail")
	}
}

func TestAudsleyContextCancelled(t *testing.T) {
	topo, flows := rmFailsDmWorks(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := priority.AudsleyContext(ctx, topo, flows, core.Options{Method: core.IBN}); err == nil {
		t.Error("cancelled context must abort the search")
	}
}

// TestAudsleyContextMatchesAudsley pins that the shared-engine search is
// deterministic and that the context-free wrapper takes the same path:
// same success verdicts and same assignments across random workloads,
// with every successful assignment re-certified from scratch by the
// other Audsley tests.
func TestAudsleyContextMatchesAudsley(t *testing.T) {
	topo := noc.MustMesh(3, 3, noc.RouterConfig{BufDepth: 2, LinkLatency: 1, RouteLatency: 0})
	for seed := int64(0); seed < 6; seed++ {
		sys, err := workload.Synthetic(topo, workload.SynthConfig{NumFlows: 14, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		a, okA, err := priority.Audsley(topo, sys.Flows(), core.Options{Method: core.IBN})
		if err != nil {
			t.Fatal(err)
		}
		b, okB, err := priority.AudsleyContext(context.Background(), topo, sys.Flows(), core.Options{Method: core.IBN})
		if err != nil {
			t.Fatal(err)
		}
		if okA != okB {
			t.Fatalf("seed %d: verdicts differ (%v vs %v)", seed, okA, okB)
		}
		for i := range a {
			if a[i].Priority != b[i].Priority {
				t.Errorf("seed %d flow %d: priorities differ (%d vs %d)", seed, i, a[i].Priority, b[i].Priority)
			}
		}
	}
}
