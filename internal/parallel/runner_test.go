package parallel

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

func TestRunnerRunsAllTasks(t *testing.T) {
	for _, w := range []int{0, 1, 3, 64} {
		var ran int64
		err := (&Runner{Workers: w}).Run(40, func(i int) error {
			atomic.AddInt64(&ran, 1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if ran != 40 {
			t.Errorf("workers=%d: ran %d tasks, want 40", w, ran)
		}
	}
}

func TestRunnerSequentialStopsOnError(t *testing.T) {
	boom := errors.New("boom")
	var ran int64
	err := (&Runner{Workers: 1}).Run(100, func(i int) error {
		atomic.AddInt64(&ran, 1)
		if i == 3 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if ran != 4 {
		t.Errorf("ran %d tasks, want exactly 4 (0..3)", ran)
	}
}

// TestRunnerStopsDispatchAfterError is the regression test for the old
// exp.parallelFor behaviour, which kept dispatching (and running) all n
// tasks after a worker had already recorded an error. With early
// cancellation, only tasks already in flight may still run.
func TestRunnerStopsDispatchAfterError(t *testing.T) {
	boom := errors.New("boom")
	const n = 500
	var ran int64
	err := (&Runner{Workers: 2}).Run(n, func(i int) error {
		atomic.AddInt64(&ran, 1)
		if i == 0 {
			return boom
		}
		time.Sleep(time.Millisecond)
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	// Task 0 fails ~immediately; with 2 workers and 1ms tasks the
	// dispatcher must stop long before draining all 500. Allow a
	// generous margin for scheduling noise.
	if got := atomic.LoadInt64(&ran); got >= n/2 {
		t.Errorf("ran %d of %d tasks after the first error; dispatch was not cancelled", got, n)
	}
}

func TestRunnerExternalCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancelled before the run starts
	var ran int64
	err := (&Runner{Workers: 4, Context: ctx}).Run(100, func(i int) error {
		atomic.AddInt64(&ran, 1)
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran != 0 {
		t.Errorf("ran %d tasks under a cancelled context, want 0", ran)
	}
}

func TestRunnerTaskErrorBeatsContextError(t *testing.T) {
	boom := errors.New("boom")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	err := (&Runner{Workers: 2, Context: ctx}).Run(50, func(i int) error {
		if i == 0 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the task error", err)
	}
}

func TestRunnerProgress(t *testing.T) {
	for _, w := range []int{1, 4} {
		var seen []int
		err := (&Runner{
			Workers:  w,
			Progress: func(done, total int) { seen = append(seen, done) },
		}).Run(20, func(i int) error { return nil })
		if err != nil {
			t.Fatal(err)
		}
		if len(seen) != 20 {
			t.Fatalf("workers=%d: %d progress calls, want 20", w, len(seen))
		}
		for k, d := range seen {
			if d != k+1 {
				t.Fatalf("workers=%d: progress not monotone: %v", w, seen)
			}
		}
	}
}

func TestRunnerZeroTasks(t *testing.T) {
	if err := (&Runner{}).Run(0, func(i int) error { return errors.New("never") }); err != nil {
		t.Fatalf("empty run: %v", err)
	}
}
