package parallel

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
)

// A panic in task 0 with a single worker (the serial path) must come
// back as a typed *PanicError carrying index and stack — never crash
// the calling goroutine.
func TestPanicIsolatedSerial(t *testing.T) {
	err := (&Runner{Workers: 1}).Run(10, func(i int) error {
		if i == 0 {
			panic("task zero exploded")
		}
		return nil
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v (%T), want *PanicError", err, err)
	}
	if pe.Index != 0 {
		t.Errorf("panic index = %d, want 0", pe.Index)
	}
	if pe.Value != "task zero exploded" {
		t.Errorf("panic value = %v", pe.Value)
	}
	if len(pe.Stack) == 0 || !strings.Contains(string(pe.Stack), "panic_test") {
		t.Errorf("stack not captured at the panic site:\n%s", pe.Stack)
	}
	if !strings.Contains(pe.Error(), "task 0 panicked") {
		t.Errorf("Error() = %q", pe.Error())
	}
}

// A panic on the concurrent path cancels the pool like a task error and
// is returned as the first error.
func TestPanicIsolatedConcurrent(t *testing.T) {
	var ran int64
	err := (&Runner{Workers: 4}).Run(200, func(i int) error {
		atomic.AddInt64(&ran, 1)
		if i == 7 {
			panic(fmt.Sprintf("boom %d", i))
		}
		return nil
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v (%T), want *PanicError", err, err)
	}
	if pe.Index != 7 {
		t.Errorf("panic index = %d, want 7", pe.Index)
	}
}

// A task that cancels the external context and then panics: the panic
// (a task error) takes precedence over the context error, and the pool
// still shuts down cleanly.
func TestPanicAfterContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	err := (&Runner{Workers: 2, Context: ctx}).Run(50, func(i int) error {
		if i == 0 {
			cancel()
			panic("after cancel")
		}
		return nil
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PanicError (task error precedence over ctx)", err)
	}
	if pe.Value != "after cancel" {
		t.Errorf("panic value = %v", pe.Value)
	}
}

// KeepGoing with every task failing returns a *TaskErrors covering all
// indices, and every task runs.
func TestKeepGoingAllTasksFail(t *testing.T) {
	for _, w := range []int{1, 4} {
		const n = 23
		var ran int64
		err := (&Runner{Workers: w, KeepGoing: true}).Run(n, func(i int) error {
			atomic.AddInt64(&ran, 1)
			return fmt.Errorf("fail %d", i)
		})
		if ran != n {
			t.Fatalf("workers=%d: ran %d tasks, want %d", w, ran, n)
		}
		var te *TaskErrors
		if !errors.As(err, &te) {
			t.Fatalf("workers=%d: err = %v (%T), want *TaskErrors", w, err, err)
		}
		if te.Len() != n || te.NumTasks != n {
			t.Fatalf("workers=%d: %d/%d failures recorded, want %d/%d", w, te.Len(), te.NumTasks, n, n)
		}
		for i := 0; i < n; i++ {
			if got := te.Of(i); got == nil || got.Error() != fmt.Sprintf("fail %d", i) {
				t.Fatalf("workers=%d: Of(%d) = %v", w, i, got)
			}
		}
		if got := len(te.Unwrap()); got != n {
			t.Fatalf("workers=%d: Unwrap() has %d errors, want %d", w, got, n)
		}
		if !strings.Contains(te.Error(), fmt.Sprintf("%d of %d", n, n)) {
			t.Errorf("workers=%d: Error() = %q", w, te.Error())
		}
	}
}

// KeepGoing records panics per index as *PanicError while siblings keep
// running to completion.
func TestKeepGoingRecordsPanicsPerIndex(t *testing.T) {
	const n = 40
	var ran int64
	err := (&Runner{Workers: 4, KeepGoing: true}).Run(n, func(i int) error {
		atomic.AddInt64(&ran, 1)
		if i%10 == 3 {
			panic(i)
		}
		return nil
	})
	if ran != n {
		t.Fatalf("ran %d tasks, want %d (KeepGoing must not cancel)", ran, n)
	}
	var te *TaskErrors
	if !errors.As(err, &te) {
		t.Fatalf("err = %v (%T), want *TaskErrors", err, err)
	}
	wantIdx := []int{3, 13, 23, 33}
	if got := te.Indices(); len(got) != len(wantIdx) {
		t.Fatalf("failed indices %v, want %v", got, wantIdx)
	}
	for _, i := range wantIdx {
		var pe *PanicError
		if !errors.As(te.Of(i), &pe) || pe.Index != i || pe.Value != i {
			t.Fatalf("Of(%d) = %v, want *PanicError{Index:%d, Value:%d}", i, te.Of(i), i, i)
		}
	}
}

// Progress callbacks under panics: serialised, strictly monotone, and
// counting only successful tasks.
func TestProgressOrderingUnderPanics(t *testing.T) {
	for _, keepGoing := range []bool{true, false} {
		for _, w := range []int{1, 4} {
			var seen []int
			const n = 30
			err := (&Runner{
				Workers:   w,
				KeepGoing: keepGoing,
				Progress:  func(done, total int) { seen = append(seen, done) },
			}).Run(n, func(i int) error {
				if i%7 == 2 {
					panic("drop")
				}
				return nil
			})
			if err == nil {
				t.Fatalf("keepGoing=%v workers=%d: expected an error", keepGoing, w)
			}
			for k, d := range seen {
				if d != k+1 {
					t.Fatalf("keepGoing=%v workers=%d: progress not monotone from 1: %v", keepGoing, w, seen)
				}
			}
			if keepGoing {
				// Every non-panicking task completes: n minus the 5
				// panicking indices (2, 9, 16, 23, 30 is out of range →
				// 2, 9, 16, 23).
				want := 0
				for i := 0; i < n; i++ {
					if i%7 != 2 {
						want++
					}
				}
				if len(seen) != want {
					t.Fatalf("workers=%d: %d progress calls, want %d", w, len(seen), want)
				}
			}
		}
	}
}

// KeepGoing with a cancelled context: started tasks' failures are
// reported, unstarted tasks are absent (no phantom errors), and with no
// task failures the context error is surfaced.
func TestKeepGoingContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := (&Runner{Workers: 3, Context: ctx, KeepGoing: true}).Run(10, func(i int) error {
		return fmt.Errorf("fail %d", i)
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled (nothing ran)", err)
	}
}

// RunContext with KeepGoing: mixed successes and failures leave the
// successes untouched.
func TestKeepGoingMixed(t *testing.T) {
	results := make([]int, 10)
	err := (&Runner{Workers: 2, KeepGoing: true}).RunContext(context.Background(), 10, func(i int) error {
		if i%2 == 1 {
			return fmt.Errorf("odd %d", i)
		}
		results[i] = i * i
		return nil
	})
	var te *TaskErrors
	if !errors.As(err, &te) || te.Len() != 5 {
		t.Fatalf("err = %v, want *TaskErrors with 5 failures", err)
	}
	for i := 0; i < 10; i += 2 {
		if results[i] != i*i {
			t.Fatalf("successful task %d result lost", i)
		}
		if te.Of(i) != nil {
			t.Fatalf("task %d succeeded but has error %v", i, te.Of(i))
		}
	}
}
