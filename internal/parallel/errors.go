package parallel

import (
	"fmt"
	"runtime/debug"
	"sort"
	"strings"
)

// PanicError is a worker panic converted into an error: the Runner
// recovers every task panic so one corrupted task cannot kill the
// process (and, in the serving layer, every in-flight request with it).
// It carries the task index and the stack captured at recovery.
type PanicError struct {
	// Index is the task index whose function panicked.
	Index int
	// Value is the recovered panic value.
	Value any
	// Stack is the goroutine stack captured at the recovery point.
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("parallel: task %d panicked: %v", e.Index, e.Value)
}

// newPanicError captures the current stack; call it from a deferred
// recover only.
func newPanicError(i int, v any) *PanicError {
	return &PanicError{Index: i, Value: v, Stack: debug.Stack()}
}

// TaskErrors aggregates the per-index failures of a KeepGoing run. It
// is returned by Runner.Run when at least one task failed; tasks absent
// from the set either succeeded or were never started (context
// cancelled before dispatch).
type TaskErrors struct {
	// NumTasks is the n the run was invoked with.
	NumTasks int
	byIndex  map[int]error
}

// add records err for task i, allocating on first use.
func (e *TaskErrors) add(i int, err error) *TaskErrors {
	if e == nil {
		e = &TaskErrors{byIndex: make(map[int]error)}
	}
	e.byIndex[i] = err
	return e
}

// Len returns the number of failed tasks.
func (e *TaskErrors) Len() int {
	if e == nil {
		return 0
	}
	return len(e.byIndex)
}

// Of returns the error recorded for task i (nil when the task
// succeeded or never ran).
func (e *TaskErrors) Of(i int) error {
	if e == nil {
		return nil
	}
	return e.byIndex[i]
}

// Indices returns the failed task indices in ascending order.
func (e *TaskErrors) Indices() []int {
	if e == nil {
		return nil
	}
	out := make([]int, 0, len(e.byIndex))
	for i := range e.byIndex {
		out = append(out, i)
	}
	sort.Ints(out)
	return out
}

func (e *TaskErrors) Error() string {
	idx := e.Indices()
	if len(idx) == 0 {
		return "parallel: no task errors"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "parallel: %d of %d task(s) failed; first (task %d): %v",
		len(idx), e.NumTasks, idx[0], e.byIndex[idx[0]])
	return b.String()
}

// Unwrap exposes the recorded errors (ascending task index) to
// errors.Is / errors.As.
func (e *TaskErrors) Unwrap() []error {
	idx := e.Indices()
	out := make([]error, len(idx))
	for k, i := range idx {
		out[k] = e.byIndex[i]
	}
	return out
}
