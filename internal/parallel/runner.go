// Package parallel provides the worker-pool runner shared by the
// experiment harness (internal/exp), the simulator's parameter sweeps
// (internal/sim) and the serving layer's batch fan-out
// (internal/serve). It exists as its own package because those
// import-wise unrelated layers need the same semantics: bounded
// concurrency, deterministic task indexing, early cancellation on the
// first error, serialised progress callbacks — and, since the fault-
// containment work, panic isolation: a panicking task becomes a typed
// *PanicError instead of killing the process.
package parallel

import (
	"context"
	"runtime"
	"strconv"
	"sync"

	"wormnoc/internal/faultinject"
)

// Runner executes independent tasks on a bounded worker pool.
//
// By default a Runner stops dispatching as soon as a task fails or the
// context is cancelled: at most Workers tasks that were already in
// flight still complete, everything else is skipped. With KeepGoing the
// pool instead records per-index failures and runs every task. In both
// modes a task panic is recovered and converted into a *PanicError; it
// never propagates to the caller's goroutine or crashes the process.
// The zero value is a valid runner using all CPUs and no cancellation.
type Runner struct {
	// Workers bounds concurrency; 0 (or negative) selects GOMAXPROCS.
	Workers int
	// Context, when non-nil, cancels the run early: tasks not yet
	// started are skipped and Run returns the context's error (unless a
	// task error was recorded first, which takes precedence).
	Context context.Context
	// Progress, when non-nil, is called after every successfully
	// completed task with the number done so far and the total. Calls
	// are serialised; done is monotonically increasing. Failed tasks do
	// not count as done.
	Progress func(done, total int)
	// KeepGoing, when true, records failures per task index instead of
	// cancelling the pool: every task runs (unless the context dies
	// first) and Run returns a *TaskErrors aggregating the failures.
	// The serving layer uses this for per-item batch isolation.
	KeepGoing bool
}

// RunContext is Run with ctx taking the place of the runner's Context
// field for this call only. It lets a shared, long-lived Runner (e.g.
// the serving layer's batch fan-out) impose per-call deadlines without
// mutating the Runner, which would race with concurrent callers.
func (r *Runner) RunContext(ctx context.Context, n int, fn func(i int) error) error {
	call := *r
	call.Context = ctx
	return call.Run(n, fn)
}

// safeCall runs fn(w, i) with the pool's fault-injection hook and panic
// containment: a panic in the task (or injected at the site) is
// recovered into a *PanicError carrying the index and stack.
func safeCall(ctx context.Context, w, i int, fn func(w, i int) error) (err error) {
	defer func() {
		if v := recover(); v != nil {
			err = newPanicError(i, v)
		}
	}()
	if faultinject.Enabled() {
		if ferr := faultinject.Fire(ctx, faultinject.SiteParallelTask, strconv.Itoa(i)); ferr != nil {
			return ferr
		}
	}
	return fn(w, i)
}

// Run executes fn(i) for every i in [0, n). In the default mode it
// returns the first error recorded — a task's own error, a *PanicError
// for a recovered panic, or the context's error when cancelled
// externally. With KeepGoing it returns a *TaskErrors when at least one
// task failed, the context's error when the run was cut short with no
// task failures, and nil otherwise. fn must be safe for concurrent
// invocation on distinct indices.
func (r *Runner) Run(n int, fn func(i int) error) error {
	return r.RunWorkers(n, func(_, i int) error { return fn(i) })
}

// RunWorkers is Run with the executing worker slot exposed: fn receives
// (w, i) where w in [0, workers) identifies the worker goroutine running
// task i and workers is min(Workers or GOMAXPROCS, n). Tasks with the
// same w run sequentially, so callers can pin per-worker reusable state
// — one simulation engine per slot, say — without further locking
// (sim.RunMany is the canonical client). Error, cancellation, progress
// and panic-containment semantics are exactly Run's.
func (r *Runner) RunWorkers(n int, fn func(w, i int) error) error {
	parent := r.Context
	if parent == nil {
		parent = context.Background()
	}
	w := r.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w <= 1 {
		return r.runSerial(parent, n, fn)
	}
	return r.runPool(parent, w, n, fn)
}

func (r *Runner) runSerial(parent context.Context, n int, fn func(w, i int) error) error {
	var te *TaskErrors
	done := 0
	for i := 0; i < n; i++ {
		if err := parent.Err(); err != nil {
			if te != nil {
				te.NumTasks = n
				return te
			}
			return err
		}
		if err := safeCall(parent, 0, i, fn); err != nil {
			if !r.KeepGoing {
				return err
			}
			te = te.add(i, err)
			continue
		}
		done++
		if r.Progress != nil {
			r.Progress(done, n)
		}
	}
	if te != nil {
		te.NumTasks = n
		return te
	}
	return parent.Err()
}

func (r *Runner) runPool(parent context.Context, w, n int, fn func(w, i int) error) error {
	ctx, cancel := context.WithCancel(parent)
	defer cancel()
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
		te       *TaskErrors
		done     int
	)
	work := make(chan int)
	for k := 0; k < w; k++ {
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			for i := range work {
				// A task handed over just before cancellation is
				// skipped here rather than run.
				if ctx.Err() != nil {
					continue
				}
				err := safeCall(ctx, slot, i, fn)
				mu.Lock()
				if err != nil {
					if r.KeepGoing {
						te = te.add(i, err)
						mu.Unlock()
						continue
					}
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					cancel()
					continue
				}
				done++
				if r.Progress != nil {
					r.Progress(done, n)
				}
				mu.Unlock()
			}
		}(k)
	}
dispatch:
	for i := 0; i < n; i++ {
		select {
		case work <- i:
		case <-ctx.Done():
			break dispatch
		}
	}
	close(work)
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	if firstErr != nil {
		return firstErr
	}
	if te != nil {
		te.NumTasks = n
		return te
	}
	return parent.Err()
}
