// Package parallel provides the worker-pool runner shared by the
// experiment harness (internal/exp) and the simulator's parameter
// sweeps (internal/sim). It exists as its own package because both of
// those import-wise unrelated layers need the same semantics: bounded
// concurrency, deterministic task indexing, early cancellation on the
// first error, and serialised progress callbacks.
package parallel

import (
	"context"
	"runtime"
	"sync"
)

// Runner executes independent tasks on a bounded worker pool.
//
// Unlike a fire-and-forget pool, a Runner stops dispatching as soon as a
// task fails or the context is cancelled: at most Workers tasks that
// were already in flight still complete, everything else is skipped.
// The zero value is a valid runner using all CPUs and no cancellation.
type Runner struct {
	// Workers bounds concurrency; 0 (or negative) selects GOMAXPROCS.
	Workers int
	// Context, when non-nil, cancels the run early: tasks not yet
	// started are skipped and Run returns the context's error (unless a
	// task error was recorded first, which takes precedence).
	Context context.Context
	// Progress, when non-nil, is called after every successfully
	// completed task with the number done so far and the total. Calls
	// are serialised; done is monotonically increasing.
	Progress func(done, total int)
}

// RunContext is Run with ctx taking the place of the runner's Context
// field for this call only. It lets a shared, long-lived Runner (e.g.
// the serving layer's batch fan-out) impose per-call deadlines without
// mutating the Runner, which would race with concurrent callers.
func (r *Runner) RunContext(ctx context.Context, n int, fn func(i int) error) error {
	call := *r
	call.Context = ctx
	return call.Run(n, fn)
}

// Run executes fn(i) for every i in [0, n) and returns the first error
// recorded (or the context's error when cancelled externally). fn must
// be safe for concurrent invocation on distinct indices.
func (r *Runner) Run(n int, fn func(i int) error) error {
	parent := r.Context
	if parent == nil {
		parent = context.Background()
	}
	w := r.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			if err := parent.Err(); err != nil {
				return err
			}
			if err := fn(i); err != nil {
				return err
			}
			if r.Progress != nil {
				r.Progress(i+1, n)
			}
		}
		return nil
	}

	ctx, cancel := context.WithCancel(parent)
	defer cancel()
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
		done     int
	)
	work := make(chan int)
	for k := 0; k < w; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				// A task handed over just before cancellation is
				// skipped here rather than run.
				if ctx.Err() != nil {
					continue
				}
				err := fn(i)
				mu.Lock()
				if err != nil {
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					cancel()
					continue
				}
				done++
				if r.Progress != nil {
					r.Progress(done, n)
				}
				mu.Unlock()
			}
		}()
	}
dispatch:
	for i := 0; i < n; i++ {
		select {
		case work <- i:
		case <-ctx.Done():
			break dispatch
		}
	}
	close(work)
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	if firstErr != nil {
		return firstErr
	}
	return parent.Err()
}
