package exp

import (
	"fmt"
	"strings"
)

// Chart renders the sweep as an ASCII line chart in the style of the
// paper's Figure 4: schedulability percentage (y) against flow-set size
// (x), one symbol per analysis ('*' where series overlap).
func (r *SweepResult) Chart(height int) string {
	if len(r.Points) == 0 {
		return "(no points)\n"
	}
	if height < 4 {
		height = 20
	}
	cols := len(r.Points)
	grid := make([][]byte, height+1)
	for y := range grid {
		grid[y] = []byte(strings.Repeat(" ", cols*3))
	}
	symbols := "SXIBabcdef" // S=SB X=XLWX I=IBN2 B=IBN100, then generic
	symFor := func(a int) byte {
		name := r.Analyses[a]
		switch {
		case name == "SB":
			return 'S'
		case name == "XLWX":
			return 'X'
		case strings.HasPrefix(name, "IBN2") && name != "IBN200":
			return 'I'
		case strings.HasPrefix(name, "IBN"):
			return 'B'
		case a < len(symbols):
			return symbols[a]
		default:
			return '?'
		}
	}
	for p, pt := range r.Points {
		for a, c := range pt.Schedulable {
			pct := 0.0
			if pt.Sets > 0 {
				pct = float64(c) / float64(pt.Sets)
			}
			row := height - int(pct*float64(height)+0.5)
			col := p*3 + 1
			sym := symFor(a)
			switch grid[row][col] {
			case ' ':
				grid[row][col] = sym
			case sym:
			default:
				grid[row][col] = '*'
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%% schedulable vs #flows, %s mesh ('*' = overlap)\n", r.Mesh)
	for y := 0; y <= height; y++ {
		pct := 100 * (height - y) / height
		fmt.Fprintf(&b, "%4d%% |%s\n", pct, strings.TrimRight(string(grid[y]), " "))
	}
	fmt.Fprintf(&b, "      +%s\n", strings.Repeat("-", cols*3))
	b.WriteString("       ")
	for p, pt := range r.Points {
		label := fmt.Sprintf("%d", pt.NumFlows)
		if p%2 == 0 {
			if len(label) > 3 {
				label = label[:3]
			}
			fmt.Fprintf(&b, "%-6s", label)
		}
	}
	b.WriteByte('\n')
	b.WriteString("legend:")
	for a, name := range r.Analyses {
		fmt.Fprintf(&b, " %c=%s", symFor(a), name)
	}
	b.WriteByte('\n')
	return b.String()
}
