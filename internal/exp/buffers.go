package exp

import (
	"fmt"
	"io"

	"wormnoc/internal/core"
	"wormnoc/internal/workload"
)

// BufferAblationConfig parameterises the buffer-size study the paper
// reports in the text of Section VI: "We have performed the same
// experiments with a range of different buffer sizes between 2 and 100
// [...] in every case, the analysis was able to guarantee schedulability
// of a smaller number of flow sets when considering routers with larger
// buffers."
type BufferAblationConfig struct {
	// Width, Height select the mesh.
	Width, Height int
	// FlowCounts is the x-axis (flow-set sizes).
	FlowCounts []int
	// BufDepths lists the IBN buffer depths to compare.
	BufDepths []int
	// SetsPerPoint is the number of random flow sets per size.
	SetsPerPoint int
	// Synth is the generator template; NumFlows and Seed are overridden.
	Synth workload.SynthConfig
	// Seed makes the experiment deterministic.
	Seed int64
	// Workers bounds parallelism (0 = all CPUs).
	Workers int
	// Runner, when non-nil, executes the ablation's tasks (its worker
	// bound overrides Workers).
	Runner *Runner
	// Progress, when non-nil, receives the final table.
	Progress io.Writer
}

// DefaultBufDepths is the buffer range the paper examined.
func DefaultBufDepths() []int { return []int{2, 4, 8, 16, 32, 64, 100} }

// RunBufferAblation evaluates IBN at every buffer depth of the
// configuration over the same synthetic flow sets. The resulting sweep
// has one "analysis" column per buffer depth (plus XLWX, the
// buffer-independent limit of IBN as buffers grow).
func RunBufferAblation(cfg BufferAblationConfig) (*SweepResult, error) {
	if len(cfg.BufDepths) == 0 {
		cfg.BufDepths = DefaultBufDepths()
	}
	analyses := make([]AnalysisSpec, 0, len(cfg.BufDepths)+1)
	for _, b := range cfg.BufDepths {
		analyses = append(analyses, AnalysisSpec{
			Name:    fmt.Sprintf("IBN%d", b),
			Options: core.Options{Method: core.IBN, BufDepth: b},
		})
	}
	analyses = append(analyses, AnalysisSpec{Name: "XLWX", Options: core.Options{Method: core.XLWX}})
	return RunSweep(SweepConfig{
		Width: cfg.Width, Height: cfg.Height,
		FlowCounts:   cfg.FlowCounts,
		SetsPerPoint: cfg.SetsPerPoint,
		Analyses:     analyses,
		Synth:        cfg.Synth,
		Seed:         cfg.Seed,
		Workers:      cfg.Workers,
		Runner:       cfg.Runner,
		Progress:     cfg.Progress,
	})
}

// CheckBufferMonotonicity verifies, over a finished buffer-ablation
// result whose columns are ordered IBN-by-increasing-depth then XLWX,
// that schedulability never increases with buffer depth and that XLWX is
// never better than any IBN column. It returns a description of the
// first violation, or "".
func CheckBufferMonotonicity(r *SweepResult) string {
	for _, p := range r.Points {
		for a := 1; a < len(p.Schedulable); a++ {
			if p.Schedulable[a] > p.Schedulable[a-1] {
				return fmt.Sprintf("at %d flows: %s guarantees %d sets but %s only %d",
					p.NumFlows, r.Analyses[a], p.Schedulable[a], r.Analyses[a-1], p.Schedulable[a-1])
			}
		}
	}
	return ""
}

// note: Table/CSV rendering is inherited from SweepResult.
