package exp

import (
	"fmt"
	"strings"

	"wormnoc/internal/core"
	"wormnoc/internal/noc"
	"wormnoc/internal/workload"
)

// TightnessConfig parameterises a bound-tightness study: instead of the
// binary fully-schedulable verdict of Figure 4, it quantifies *how much*
// tighter the proposed analysis is, flow by flow — the per-flow view of
// the pessimism reduction the paper claims.
type TightnessConfig struct {
	// Width, Height select the mesh.
	Width, Height int
	// FlowCounts is the x-axis.
	FlowCounts []int
	// SetsPerPoint is the number of random flow sets per size.
	SetsPerPoint int
	// BufDepth is the IBN buffer depth (default 2).
	BufDepth int
	// Synth is the generator template; NumFlows and Seed are overridden.
	Synth workload.SynthConfig
	// Seed makes the experiment deterministic.
	Seed int64
	// Workers bounds parallelism (0 = all CPUs).
	Workers int
	// Runner, when non-nil, executes the study's tasks (its worker bound
	// overrides Workers).
	Runner *Runner
}

// TightnessPoint aggregates one x-axis point.
type TightnessPoint struct {
	NumFlows int
	// Flows counts flows whose bound both XLWX and IBN could compute
	// (both Schedulable); ratios below are over these.
	Flows int
	// MeanRatio and MaxRatio summarise R_XLWX / R_IBN (>= 1; 1 = no
	// improvement).
	MeanRatio, MaxRatio float64
	// Improved counts flows with R_IBN strictly below R_XLWX.
	Improved int
	// SchedulableIBN / SchedulableXLWX count per-flow schedulability
	// (weighted schedulability numerators) over all analysed flows.
	SchedulableIBN, SchedulableXLWX int
	// TotalFlows counts all flows analysed at this point.
	TotalFlows int
}

// TightnessResult is the outcome of RunTightness.
type TightnessResult struct {
	Mesh     string
	BufDepth int
	Points   []TightnessPoint
	// Telemetry aggregates the engine counters of every analysis run.
	Telemetry core.Telemetry
}

// RunTightness generates random flow sets and compares the XLWX and IBN
// bounds flow by flow.
func RunTightness(cfg TightnessConfig) (*TightnessResult, error) {
	if len(cfg.FlowCounts) == 0 || cfg.SetsPerPoint < 1 {
		return nil, fmt.Errorf("exp: tightness needs flow counts and SetsPerPoint >= 1")
	}
	if cfg.BufDepth == 0 {
		cfg.BufDepth = 2
	}
	topo, err := noc.NewMesh(cfg.Width, cfg.Height, noc.RouterConfig{
		BufDepth: cfg.BufDepth, LinkLatency: 1, RouteLatency: 0,
	})
	if err != nil {
		return nil, err
	}
	res := &TightnessResult{
		Mesh:     fmt.Sprintf("%dx%d", cfg.Width, cfg.Height),
		BufDepth: cfg.BufDepth,
		Points:   make([]TightnessPoint, len(cfg.FlowCounts)),
	}
	type task struct{ point, set int }
	var tasks []task
	for p := range cfg.FlowCounts {
		res.Points[p].NumFlows = cfg.FlowCounts[p]
		for s := 0; s < cfg.SetsPerPoint; s++ {
			tasks = append(tasks, task{p, s})
		}
	}
	type sample struct {
		point                  int
		sumRatio, maxRatio     float64
		flows, improved        int
		schedIBN, schedXLWX, n int
	}
	samples := make([]sample, len(tasks))
	tels := make([]core.Telemetry, len(tasks))
	err = taskRunner(cfg.Runner, cfg.Workers).Run(len(tasks), func(ti int) error {
		tk := tasks[ti]
		synth := cfg.Synth
		synth.NumFlows = cfg.FlowCounts[tk.point]
		synth.Seed = taskSeed(cfg.Seed, tk.point, tk.set)
		sys, err := workload.Synthetic(topo, synth)
		if err != nil {
			return err
		}
		eng := core.NewEngine(sys)
		xlwx, err := eng.Analyze(core.Options{Method: core.XLWX})
		if err != nil {
			return err
		}
		ibn, err := eng.Analyze(core.Options{Method: core.IBN, BufDepth: cfg.BufDepth})
		if err != nil {
			return err
		}
		s := sample{point: tk.point, n: sys.NumFlows()}
		for i := 0; i < sys.NumFlows(); i++ {
			if ibn.Flows[i].Status == core.Schedulable {
				s.schedIBN++
			}
			if xlwx.Flows[i].Status == core.Schedulable {
				s.schedXLWX++
			}
			if ibn.Flows[i].Status == core.Schedulable && xlwx.Flows[i].Status == core.Schedulable {
				ratio := float64(xlwx.R(i)) / float64(ibn.R(i))
				s.flows++
				s.sumRatio += ratio
				if ratio > s.maxRatio {
					s.maxRatio = ratio
				}
				if xlwx.R(i) > ibn.R(i) {
					s.improved++
				}
			}
		}
		samples[ti] = s
		tels[ti] = eng.Telemetry()
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, t := range tels {
		res.Telemetry.Add(t)
	}
	sums := make([]float64, len(cfg.FlowCounts))
	for _, s := range samples {
		p := &res.Points[s.point]
		p.Flows += s.flows
		p.Improved += s.improved
		p.SchedulableIBN += s.schedIBN
		p.SchedulableXLWX += s.schedXLWX
		p.TotalFlows += s.n
		sums[s.point] += s.sumRatio
		if s.maxRatio > p.MaxRatio {
			p.MaxRatio = s.maxRatio
		}
	}
	for p := range res.Points {
		if res.Points[p].Flows > 0 {
			res.Points[p].MeanRatio = sums[p] / float64(res.Points[p].Flows)
		}
	}
	return res, nil
}

// Table renders the tightness study.
func (r *TightnessResult) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "XLWX vs IBN (buf=%d) bound tightness, %s mesh\n", r.BufDepth, r.Mesh)
	fmt.Fprintf(&b, "%8s %10s %10s %10s %12s %12s\n",
		"#flows", "mean R×", "max R×", "%improved", "%flows IBN", "%flows XLWX")
	for _, p := range r.Points {
		improved := "n/a"
		if p.Flows > 0 {
			improved = fmt.Sprintf("%5.1f", 100*float64(p.Improved)/float64(p.Flows))
		}
		fmt.Fprintf(&b, "%8d %10.3f %10.3f %10s %12s %12s\n",
			p.NumFlows, p.MeanRatio, p.MaxRatio, improved,
			percent(p.SchedulableIBN, p.TotalFlows), percent(p.SchedulableXLWX, p.TotalFlows))
	}
	return b.String()
}
