package exp

import (
	"fmt"
	"io"
	"strings"

	"wormnoc/internal/core"
	"wormnoc/internal/noc"
	"wormnoc/internal/workload"
)

// SweepConfig parameterises a Figure-4-style schedulability sweep:
// synthetic flow sets of increasing size on one mesh, analysed by several
// analyses, reporting the percentage of fully schedulable sets per size.
type SweepConfig struct {
	// Width, Height select the mesh (4x4 and 8x8 in the paper).
	Width, Height int
	// FlowCounts is the x-axis: flow-set sizes to evaluate.
	FlowCounts []int
	// SetsPerPoint is the number of random flow sets per size (100 in the
	// paper).
	SetsPerPoint int
	// Analyses are the curves; defaults to StandardAnalyses().
	Analyses []AnalysisSpec
	// Synth is the generator template; NumFlows and Seed are overridden
	// per task. Zero values select the paper's parameters.
	Synth workload.SynthConfig
	// Seed makes the whole sweep deterministic.
	Seed int64
	// Workers bounds parallelism (0 = all CPUs).
	Workers int
	// Runner, when non-nil, executes the sweep's tasks (its worker bound
	// overrides Workers); use it for context cancellation and progress
	// callbacks.
	Runner *Runner
	// Progress, when non-nil, receives one line per completed point.
	Progress io.Writer
}

// Fig4aConfig returns the configuration of Figure 4(a): a 4x4 NoC with
// flow sets of 40 to 430 flows in steps of 30, 100 sets per point.
func Fig4aConfig(seed int64) SweepConfig {
	return SweepConfig{
		Width: 4, Height: 4,
		FlowCounts:   countRange(40, 430, 30),
		SetsPerPoint: 100,
		Analyses:     StandardAnalyses(),
		Seed:         seed,
	}
}

// Fig4bConfig returns the configuration of Figure 4(b): an 8x8 NoC with
// flow sets of 40 to 520 flows in steps of 20, 100 sets per point.
func Fig4bConfig(seed int64) SweepConfig {
	return SweepConfig{
		Width: 8, Height: 8,
		FlowCounts:   countRange(40, 520, 20),
		SetsPerPoint: 100,
		Analyses:     StandardAnalyses(),
		Seed:         seed,
	}
}

func countRange(from, to, step int) []int {
	var out []int
	for n := from; n <= to; n += step {
		out = append(out, n)
	}
	return out
}

// SweepPoint is the outcome of one x-axis point.
type SweepPoint struct {
	NumFlows int
	// Schedulable[a] counts flow sets deemed fully schedulable by
	// analysis a (indexed like SweepResult.Analyses).
	Schedulable []int
	// Sets is the number of flow sets evaluated.
	Sets int
}

// SweepResult is the outcome of a schedulability sweep.
type SweepResult struct {
	Mesh     string
	Analyses []string
	Points   []SweepPoint
	// Telemetry aggregates the engine counters of every analysis run of
	// the sweep.
	Telemetry core.Telemetry
}

// RunSweep generates cfg.SetsPerPoint random flow sets for every entry of
// cfg.FlowCounts, analyses each with every analysis of cfg.Analyses
// (sharing the interference sets across analyses of the same flow set)
// and counts fully schedulable sets.
func RunSweep(cfg SweepConfig) (*SweepResult, error) {
	if len(cfg.FlowCounts) == 0 || cfg.SetsPerPoint < 1 {
		return nil, fmt.Errorf("exp: sweep needs flow counts and SetsPerPoint >= 1")
	}
	if cfg.Analyses == nil {
		cfg.Analyses = StandardAnalyses()
	}
	topo, err := noc.NewMesh(cfg.Width, cfg.Height, noc.RouterConfig{
		BufDepth: 2, LinkLatency: 1, RouteLatency: 0,
	})
	if err != nil {
		return nil, err
	}
	res := &SweepResult{
		Mesh:     fmt.Sprintf("%dx%d", cfg.Width, cfg.Height),
		Analyses: make([]string, len(cfg.Analyses)),
		Points:   make([]SweepPoint, len(cfg.FlowCounts)),
	}
	for a, spec := range cfg.Analyses {
		res.Analyses[a] = spec.Name
	}
	for p, n := range cfg.FlowCounts {
		res.Points[p] = SweepPoint{
			NumFlows:    n,
			Schedulable: make([]int, len(cfg.Analyses)),
			Sets:        cfg.SetsPerPoint,
		}
	}

	type task struct{ point, set int }
	tasks := make([]task, 0, len(cfg.FlowCounts)*cfg.SetsPerPoint)
	for p := range cfg.FlowCounts {
		for s := 0; s < cfg.SetsPerPoint; s++ {
			tasks = append(tasks, task{p, s})
		}
	}
	// sched[t][a] records whether task t's set was schedulable under
	// analysis a; tels[t] the task's engine telemetry. Both aggregated
	// afterwards to keep workers lock-free and results deterministic.
	sched := make([][]bool, len(tasks))
	tels := make([]core.Telemetry, len(tasks))

	err = taskRunner(cfg.Runner, cfg.Workers).Run(len(tasks), func(ti int) error {
		tk := tasks[ti]
		synth := cfg.Synth
		synth.NumFlows = cfg.FlowCounts[tk.point]
		synth.Seed = taskSeed(cfg.Seed, tk.point, tk.set)
		sys, err := workload.Synthetic(topo, synth)
		if err != nil {
			return err
		}
		eng := core.NewEngine(sys)
		row := make([]bool, len(cfg.Analyses))
		for a, spec := range cfg.Analyses {
			r, err := eng.Analyze(spec.Options)
			if err != nil {
				return err
			}
			row[a] = r.Schedulable
		}
		sched[ti] = row
		tels[ti] = eng.Telemetry()
		return nil
	})
	if err != nil {
		return nil, err
	}
	for ti, row := range sched {
		for a, ok := range row {
			if ok {
				res.Points[tasks[ti].point].Schedulable[a]++
			}
		}
		res.Telemetry.Add(tels[ti])
	}
	if cfg.Progress != nil {
		fmt.Fprint(cfg.Progress, res.Table())
	}
	return res, nil
}

// Table renders the sweep as an ASCII table of schedulability
// percentages, one row per flow count.
func (r *SweepResult) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%% schedulable flow sets, %s mesh\n", r.Mesh)
	fmt.Fprintf(&b, "%8s", "#flows")
	for _, a := range r.Analyses {
		fmt.Fprintf(&b, " %8s", a)
	}
	b.WriteByte('\n')
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%8d", p.NumFlows)
		for _, c := range p.Schedulable {
			fmt.Fprintf(&b, " %8s", percent(c, p.Sets))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// CSV renders the sweep as comma-separated values with a header row.
func (r *SweepResult) CSV() string {
	var b strings.Builder
	b.WriteString("flows")
	for _, a := range r.Analyses {
		b.WriteString("," + a)
	}
	b.WriteByte('\n')
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%d", p.NumFlows)
		for _, c := range p.Schedulable {
			fmt.Fprintf(&b, ",%.1f", 100*float64(c)/float64(p.Sets))
		}
		b.WriteByte('\n')
	}
	return b.String()
}
