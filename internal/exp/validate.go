package exp

import (
	"fmt"
	"math/rand"
	"strings"

	"wormnoc/internal/core"
	"wormnoc/internal/noc"
	"wormnoc/internal/sim"
	"wormnoc/internal/workload"
)

// ValidationConfig parameterises the counter-example hunt: random
// MPB-prone scenarios are attacked with the adversarial phasing search,
// and every observed latency is compared against every analysis's bound.
// The paper's safety claims translate to: SB and SLA should be caught
// producing optimistic bounds (that is the MPB problem), while XLWX and
// IBN must survive every attack.
type ValidationConfig struct {
	// Scenarios is the number of random platforms/workloads attacked.
	Scenarios int
	// Duration is the simulation horizon per phasing probe.
	Duration noc.Cycles
	// Restarts/ProbesPerFlow tune the per-scenario search effort.
	Restarts, ProbesPerFlow int
	// Seed makes the hunt deterministic.
	Seed int64
	// Workers bounds parallelism across scenarios (0 = all CPUs).
	Workers int
	// Runner, when non-nil, executes the hunt's scenarios (its worker
	// bound overrides Workers).
	Runner *Runner
}

// ValidationResult aggregates the hunt.
type ValidationResult struct {
	Analyses []string
	// Violations[a] counts (scenario, flow) pairs where an observed
	// latency exceeded analysis a's bound for a flow it declared
	// schedulable.
	Violations []int
	// WorstExcess[a] is the largest observed-minus-bound excess in
	// cycles.
	WorstExcess []noc.Cycles
	// Scenarios and FlowsChecked count the attack surface.
	Scenarios, FlowsChecked int
	// Telemetry aggregates the engine counters of every analysis run.
	Telemetry core.Telemetry
}

// RunValidation hunts for counter-examples against all four analyses.
func RunValidation(cfg ValidationConfig) (*ValidationResult, error) {
	if cfg.Scenarios < 1 {
		return nil, fmt.Errorf("exp: validation needs Scenarios >= 1")
	}
	if cfg.Duration < 1 {
		cfg.Duration = 80_000
	}
	if cfg.Restarts < 1 {
		cfg.Restarts = 3
	}
	if cfg.ProbesPerFlow < 1 {
		cfg.ProbesPerFlow = 4
	}
	specs := []struct {
		name string
		opt  core.Options
	}{
		{"SB", core.Options{Method: core.SB}},
		{"SLA", core.Options{Method: core.SLA}},
		{"XLWX", core.Options{Method: core.XLWX}},
		{"IBN", core.Options{Method: core.IBN}},
	}
	res := &ValidationResult{
		Analyses:    make([]string, len(specs)),
		Violations:  make([]int, len(specs)),
		WorstExcess: make([]noc.Cycles, len(specs)),
		Scenarios:   cfg.Scenarios,
	}
	for a, s := range specs {
		res.Analyses[a] = s.name
	}

	type outcome struct {
		violations []int
		excess     []noc.Cycles
		flows      int
		tel        core.Telemetry
	}
	outcomes := make([]outcome, cfg.Scenarios)
	err := taskRunner(cfg.Runner, cfg.Workers).Run(cfg.Scenarios, func(sc int) error {
		seed := taskSeed(cfg.Seed, sc, 0)
		rng := rand.New(rand.NewSource(seed))
		// MPB-prone platforms: small meshes, moderate buffers, tight
		// periods relative to packet lengths.
		topo, err := noc.NewMesh(2+rng.Intn(3), 1+rng.Intn(3), noc.RouterConfig{
			BufDepth:     2 + rng.Intn(15),
			LinkLatency:  1,
			RouteLatency: noc.Cycles(rng.Intn(2)),
		})
		if err != nil {
			return err
		}
		if topo.NumNodes() < 2 {
			topo, err = noc.NewMesh(3, 1, topo.Config())
			if err != nil {
				return err
			}
		}
		sys, err := workload.Synthetic(topo, workload.SynthConfig{
			NumFlows:  3 + rng.Intn(8),
			PeriodMin: 600,
			PeriodMax: 15_000,
			LenMin:    16,
			LenMax:    320,
			Seed:      seed,
		})
		if err != nil {
			return err
		}
		eng := core.NewEngine(sys)
		bounds := make([]*core.Result, len(specs))
		for a, s := range specs {
			bounds[a], err = eng.Analyze(s.opt)
			if err != nil {
				return err
			}
		}
		out := outcome{violations: make([]int, len(specs)), excess: make([]noc.Cycles, len(specs)), tel: eng.Telemetry()}
		for target := 0; target < sys.NumFlows(); target++ {
			// Only attack flows some analysis bounded.
			any := false
			for a := range specs {
				if bounds[a].Flows[target].Status == core.Schedulable {
					any = true
				}
			}
			if !any {
				continue
			}
			out.flows++
			search, err := sim.SearchWorstCase(sys, sim.SearchConfig{
				Base:          sim.Config{Duration: cfg.Duration},
				Target:        target,
				Restarts:      cfg.Restarts,
				RefineSteps:   1,
				ProbesPerFlow: cfg.ProbesPerFlow,
				Seed:          taskSeed(cfg.Seed, sc, target+1),
			})
			if err != nil {
				return err
			}
			for a := range specs {
				fr := bounds[a].Flows[target]
				if fr.Status != core.Schedulable {
					continue
				}
				if search.Worst > fr.R {
					out.violations[a]++
					if ex := search.Worst - fr.R; ex > out.excess[a] {
						out.excess[a] = ex
					}
				}
			}
		}
		outcomes[sc] = out
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, out := range outcomes {
		res.FlowsChecked += out.flows
		res.Telemetry.Add(out.tel)
		for a := range res.Violations {
			res.Violations[a] += out.violations[a]
			if out.excess[a] > res.WorstExcess[a] {
				res.WorstExcess[a] = out.excess[a]
			}
		}
	}
	return res, nil
}

// Table renders the hunt.
func (r *ValidationResult) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "counter-example hunt: %d scenarios, %d flow bounds attacked\n",
		r.Scenarios, r.FlowsChecked)
	fmt.Fprintf(&b, "%8s %12s %14s %10s\n", "analysis", "violations", "worst excess", "verdict")
	for a, name := range r.Analyses {
		verdict := "SAFE so far"
		if r.Violations[a] > 0 {
			verdict = "OPTIMISTIC"
		}
		fmt.Fprintf(&b, "%8s %12d %14d %10s\n", name, r.Violations[a], r.WorstExcess[a], verdict)
	}
	return b.String()
}
