package exp

import (
	"fmt"
	"math/rand"
	"strings"

	"wormnoc/internal/core"
	"wormnoc/internal/noc"
	"wormnoc/internal/sim"
	"wormnoc/internal/workload"
)

// AvgCaseConfig parameterises the average-case-versus-guarantee study
// behind the paper's closing remark: "large buffers (which are known to
// provide improvements on average-case performance) can result in more
// pessimistic worst-case latencies using the proposed analysis". For a
// range of buffer depths it simulates random workloads (average-case
// behaviour) and computes the IBN bounds (guaranteed behaviour), both
// normalised per flow by the zero-load latency C.
type AvgCaseConfig struct {
	// Width, Height select the mesh.
	Width, Height int
	// NumFlows is the size of each random flow set.
	NumFlows int
	// Sets is the number of random flow sets averaged per depth.
	Sets int
	// BufDepths lists the buffer depths to compare (default 2,10,100).
	BufDepths []int
	// Duration is the simulation horizon per run.
	Duration noc.Cycles
	// Synth is the generator template; NumFlows and Seed are overridden.
	Synth workload.SynthConfig
	// Seed makes the study deterministic.
	Seed int64
	// Workers bounds parallelism (0 = all CPUs).
	Workers int
	// Runner, when non-nil, executes the study's tasks (its worker bound
	// overrides Workers).
	Runner *Runner
}

// AvgCasePoint aggregates one buffer depth.
type AvgCasePoint struct {
	BufDepth int
	// MeanObserved is the mean of (mean observed latency / C) over all
	// flows that completed packets: the average-case inflation.
	MeanObserved float64
	// WorstObserved is the mean of (worst observed latency / C): the
	// observed tail.
	WorstObserved float64
	// MeanBound is the mean of (R_IBN / C) over schedulable flows: the
	// guaranteed inflation.
	MeanBound float64
	// SchedulablePct is the percentage of flows IBN certifies.
	SchedulablePct float64
	// Flows counts flows contributing to the observed means.
	Flows int
}

// AvgCaseResult is the outcome of RunAvgCase.
type AvgCaseResult struct {
	Mesh   string
	Points []AvgCasePoint
	// Telemetry aggregates the engine counters of every analysis run.
	Telemetry core.Telemetry
}

// RunAvgCase runs the study. The same flow sets and release phasings are
// reused across buffer depths, so differences are attributable to the
// buffers alone.
func RunAvgCase(cfg AvgCaseConfig) (*AvgCaseResult, error) {
	if cfg.NumFlows < 1 || cfg.Sets < 1 {
		return nil, fmt.Errorf("exp: avgcase needs NumFlows and Sets >= 1")
	}
	if len(cfg.BufDepths) == 0 {
		cfg.BufDepths = []int{2, 10, 100}
	}
	if cfg.Duration < 1 {
		cfg.Duration = 400_000
	}
	res := &AvgCaseResult{
		Mesh:   fmt.Sprintf("%dx%d", cfg.Width, cfg.Height),
		Points: make([]AvgCasePoint, len(cfg.BufDepths)),
	}
	type task struct{ depth, set int }
	var tasks []task
	for d := range cfg.BufDepths {
		res.Points[d].BufDepth = cfg.BufDepths[d]
		for s := 0; s < cfg.Sets; s++ {
			tasks = append(tasks, task{d, s})
		}
	}
	type sample struct {
		depth                 int
		sumObs, sumWorst      float64
		obsFlows              int
		sumBound              float64
		boundFlows, schedable int
		totalFlows            int
	}
	samples := make([]sample, len(tasks))
	tels := make([]core.Telemetry, len(tasks))
	err := taskRunner(cfg.Runner, cfg.Workers).Run(len(tasks), func(ti int) error {
		tk := tasks[ti]
		topo, err := noc.NewMesh(cfg.Width, cfg.Height, noc.RouterConfig{
			BufDepth: cfg.BufDepths[tk.depth], LinkLatency: 1, RouteLatency: 0,
		})
		if err != nil {
			return err
		}
		synth := cfg.Synth
		synth.NumFlows = cfg.NumFlows
		synth.Seed = taskSeed(cfg.Seed, 0, tk.set) // same workload across depths
		sys, err := workload.Synthetic(topo, synth)
		if err != nil {
			return err
		}
		// Same phasing across depths too.
		rng := rand.New(rand.NewSource(taskSeed(cfg.Seed, 1, tk.set)))
		offsets := make([]noc.Cycles, sys.NumFlows())
		for i := range offsets {
			offsets[i] = noc.Cycles(rng.Int63n(int64(sys.Flow(i).Period)))
		}
		simRes, err := sim.Run(sys, sim.Config{Duration: cfg.Duration, Offsets: offsets})
		if err != nil {
			return err
		}
		eng := core.NewEngine(sys)
		ibn, err := eng.Analyze(core.Options{Method: core.IBN})
		if err != nil {
			return err
		}
		s := sample{depth: tk.depth, totalFlows: sys.NumFlows()}
		for i := 0; i < sys.NumFlows(); i++ {
			c := float64(sys.C(i))
			if simRes.Completed[i] > 0 {
				s.sumObs += simRes.MeanLatency(i) / c
				s.sumWorst += float64(simRes.WorstLatency[i]) / c
				s.obsFlows++
			}
			if ibn.Flows[i].Status == core.Schedulable {
				s.schedable++
				s.sumBound += float64(ibn.R(i)) / c
				s.boundFlows++
			}
		}
		samples[ti] = s
		tels[ti] = eng.Telemetry()
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, t := range tels {
		res.Telemetry.Add(t)
	}
	type agg struct {
		obs, worst, bound          float64
		obsN, boundN, sched, total int
	}
	aggs := make([]agg, len(cfg.BufDepths))
	for _, s := range samples {
		a := &aggs[s.depth]
		a.obs += s.sumObs
		a.worst += s.sumWorst
		a.bound += s.sumBound
		a.obsN += s.obsFlows
		a.boundN += s.boundFlows
		a.sched += s.schedable
		a.total += s.totalFlows
	}
	for d := range res.Points {
		p := &res.Points[d]
		a := aggs[d]
		if a.obsN > 0 {
			p.MeanObserved = a.obs / float64(a.obsN)
			p.WorstObserved = a.worst / float64(a.obsN)
			p.Flows = a.obsN
		}
		if a.boundN > 0 {
			p.MeanBound = a.bound / float64(a.boundN)
		}
		if a.total > 0 {
			p.SchedulablePct = 100 * float64(a.sched) / float64(a.total)
		}
	}
	return res, nil
}

// Table renders the study.
func (r *AvgCaseResult) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "average case vs guarantee by buffer depth, %s mesh (latencies normalised by C)\n", r.Mesh)
	fmt.Fprintf(&b, "%8s %14s %14s %14s %14s\n",
		"buf", "mean observed", "worst observed", "mean IBN bound", "% schedulable")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%8d %14.3f %14.3f %14.3f %14.1f\n",
			p.BufDepth, p.MeanObserved, p.WorstObserved, p.MeanBound, p.SchedulablePct)
	}
	return b.String()
}
