package exp

import (
	"strings"
	"testing"

	"wormnoc/internal/workload"
)

func TestRunAvgCase(t *testing.T) {
	res, err := RunAvgCase(AvgCaseConfig{
		Width: 4, Height: 4,
		NumFlows:  40,
		Sets:      3,
		BufDepths: []int{2, 100},
		Duration:  120_000,
		Synth: workload.SynthConfig{
			PeriodMin: 4_000, PeriodMax: 100_000, LenMin: 64, LenMax: 1024,
		},
		Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 {
		t.Fatalf("points: %+v", res.Points)
	}
	small, big := res.Points[0], res.Points[1]
	// Sanity: normalised latencies are at least 1 (zero-load floor).
	for _, p := range res.Points {
		if p.Flows == 0 {
			t.Fatalf("buf=%d: no observations", p.BufDepth)
		}
		if p.MeanObserved < 1 || p.WorstObserved < p.MeanObserved-1e-9 {
			t.Errorf("buf=%d: observed stats implausible: %+v", p.BufDepth, p)
		}
		if p.MeanBound < 1 {
			t.Errorf("buf=%d: bound below zero-load: %+v", p.BufDepth, p)
		}
	}
	// The paper's trade-off: the guarantee degrades with larger buffers...
	if big.MeanBound < small.MeanBound {
		t.Errorf("IBN bound improved with larger buffers: %.3f -> %.3f",
			small.MeanBound, big.MeanBound)
	}
	if big.SchedulablePct > small.SchedulablePct {
		t.Errorf("schedulability improved with larger buffers: %.1f -> %.1f",
			small.SchedulablePct, big.SchedulablePct)
	}
	// ...while the observed average case must not degrade materially
	// (deeper buffers can only reduce backpressure stalls).
	if big.MeanObserved > small.MeanObserved*1.02 {
		t.Errorf("average case degraded with larger buffers: %.3f -> %.3f",
			small.MeanObserved, big.MeanObserved)
	}
	if !strings.Contains(res.Table(), "mean IBN bound") {
		t.Errorf("table rendering:\n%s", res.Table())
	}
}

func TestRunAvgCaseErrors(t *testing.T) {
	if _, err := RunAvgCase(AvgCaseConfig{Width: 4, Height: 4}); err == nil {
		t.Error("empty config must fail")
	}
	if _, err := RunAvgCase(AvgCaseConfig{Width: 0, Height: 1, NumFlows: 5, Sets: 1}); err == nil {
		t.Error("bad mesh must fail")
	}
}
