// Package exp is the experiment harness that regenerates the paper's
// large-scale quantitative evaluation (Section VI): the schedulability
// sweeps of Figure 4, the autonomous-vehicle mapping study of Figure 5
// and the buffer-size ablation discussed in the text.
//
// All experiments are deterministic in their seed and parallelised over a
// worker pool; results carry enough structure to be rendered as ASCII
// tables (for terminals and EXPERIMENTS.md) or CSV (for plotting).
package exp

import (
	"fmt"

	"wormnoc/internal/core"
	"wormnoc/internal/parallel"
)

// AnalysisSpec names one analysis configuration of an experiment.
type AnalysisSpec struct {
	// Name labels the result column, e.g. "IBN2".
	Name string
	// Options selects the analysis; BufDepth is typically used to compare
	// buffer sizes without rebuilding platforms.
	Options core.Options
}

// StandardAnalyses returns the four configurations plotted in Figure 4:
// the unsafe SB baseline, the safe XLWX baseline, and the proposed
// analysis with 2-flit (IBN2) and 100-flit (IBN100) buffers.
func StandardAnalyses() []AnalysisSpec {
	return []AnalysisSpec{
		{Name: "SB", Options: core.Options{Method: core.SB}},
		{Name: "XLWX", Options: core.Options{Method: core.XLWX}},
		{Name: "IBN2", Options: core.Options{Method: core.IBN, BufDepth: 2}},
		{Name: "IBN100", Options: core.Options{Method: core.IBN, BufDepth: 100}},
	}
}

// AVAnalyses returns the three configurations plotted in Figure 5.
func AVAnalyses() []AnalysisSpec {
	return []AnalysisSpec{
		{Name: "XLWX", Options: core.Options{Method: core.XLWX}},
		{Name: "IBN2", Options: core.Options{Method: core.IBN, BufDepth: 2}},
		{Name: "IBN100", Options: core.Options{Method: core.IBN, BufDepth: 100}},
	}
}

// Runner executes an experiment's tasks: a context-aware worker pool
// with early cancellation on the first error and serialised progress
// callbacks (see internal/parallel). Every experiment config accepts an
// optional *Runner; when nil, a default runner bounded by the config's
// Workers field is used.
type Runner = parallel.Runner

// taskRunner resolves a config's runner: the explicit one when set,
// else a fresh default bounded by workers.
func taskRunner(r *Runner, workers int) *Runner {
	if r != nil {
		return r
	}
	return &Runner{Workers: workers}
}

// parallelFor runs fn(i) for i in [0, n) on w workers and returns the
// first error (if any). fn must be safe for concurrent invocation on
// distinct indices. It is a thin wrapper over the context-aware Runner,
// which — unlike the historic implementation — stops dispatching
// remaining tasks once a worker has recorded an error.
func parallelFor(n, w int, fn func(i int) error) error {
	return (&Runner{Workers: w}).Run(n, fn)
}

// taskSeed derives a decorrelated deterministic seed for one experiment
// task from a base seed and two task coordinates (splitmix64 finaliser).
func taskSeed(base int64, a, b int) int64 {
	z := uint64(base) + 0x9e3779b97f4a7c15*(uint64(a)+1) + 0xbf58476d1ce4e5b9*(uint64(b)+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z & 0x7fffffffffffffff)
}

// percent renders 0..1 counts as a percentage string.
func percent(count, total int) string {
	if total == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%5.1f", 100*float64(count)/float64(total))
}
