package exp

import (
	"errors"
	"sync"
	"time"

	"strings"
	"testing"

	"wormnoc/internal/core"
)

func TestRunSweepSmall(t *testing.T) {
	cfg := SweepConfig{
		Width: 4, Height: 4,
		FlowCounts:   []int{40, 220},
		SetsPerPoint: 8,
		Seed:         1,
	}
	res, err := RunSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 {
		t.Fatalf("points = %d", len(res.Points))
	}
	if len(res.Analyses) != 4 || res.Analyses[0] != "SB" || res.Analyses[1] != "XLWX" {
		t.Fatalf("analyses = %v", res.Analyses)
	}
	idx := map[string]int{}
	for a, name := range res.Analyses {
		idx[name] = a
	}
	for _, p := range res.Points {
		if p.Sets != 8 {
			t.Errorf("sets = %d", p.Sets)
		}
		for a, c := range p.Schedulable {
			if c < 0 || c > p.Sets {
				t.Errorf("count %d out of range for %s", c, res.Analyses[a])
			}
		}
		// The paper's ordering: SB >= IBN2 >= IBN100 >= XLWX.
		sb, xlwx := p.Schedulable[idx["SB"]], p.Schedulable[idx["XLWX"]]
		ibn2, ibn100 := p.Schedulable[idx["IBN2"]], p.Schedulable[idx["IBN100"]]
		if !(sb >= ibn2 && ibn2 >= ibn100 && ibn100 >= xlwx) {
			t.Errorf("at %d flows: ordering violated: SB=%d IBN2=%d IBN100=%d XLWX=%d",
				p.NumFlows, sb, ibn2, ibn100, xlwx)
		}
	}
	// Low load must be easier than high load for every analysis.
	for a := range res.Analyses {
		if res.Points[0].Schedulable[a] < res.Points[1].Schedulable[a] {
			t.Errorf("%s: more flows should not increase schedulability", res.Analyses[a])
		}
	}
}

func TestRunSweepDeterminism(t *testing.T) {
	cfg := SweepConfig{
		Width: 3, Height: 3,
		FlowCounts:   []int{60},
		SetsPerPoint: 6,
		Seed:         7,
	}
	a, err := RunSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 1
	b, err := RunSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Points {
		for j := range a.Points[i].Schedulable {
			if a.Points[i].Schedulable[j] != b.Points[i].Schedulable[j] {
				t.Fatalf("results depend on worker count: %+v vs %+v", a.Points, b.Points)
			}
		}
	}
}

func TestRunSweepErrors(t *testing.T) {
	if _, err := RunSweep(SweepConfig{Width: 4, Height: 4}); err == nil {
		t.Error("empty sweep must fail")
	}
	if _, err := RunSweep(SweepConfig{Width: 0, Height: 4, FlowCounts: []int{5}, SetsPerPoint: 1}); err == nil {
		t.Error("bad mesh must fail")
	}
}

func TestSweepRendering(t *testing.T) {
	res := &SweepResult{
		Mesh:     "4x4",
		Analyses: []string{"A", "B"},
		Points: []SweepPoint{
			{NumFlows: 40, Schedulable: []int{10, 5}, Sets: 10},
		},
	}
	tbl := res.Table()
	if !strings.Contains(tbl, "100.0") || !strings.Contains(tbl, "50.0") || !strings.Contains(tbl, "4x4") {
		t.Errorf("table rendering wrong:\n%s", tbl)
	}
	csv := res.CSV()
	if !strings.HasPrefix(csv, "flows,A,B\n") || !strings.Contains(csv, "40,100.0,50.0") {
		t.Errorf("csv rendering wrong:\n%s", csv)
	}
}

func TestFigConfigs(t *testing.T) {
	a := Fig4aConfig(1)
	if a.Width != 4 || a.Height != 4 || a.FlowCounts[0] != 40 || a.FlowCounts[len(a.FlowCounts)-1] != 430 {
		t.Errorf("Fig4a config wrong: %+v", a)
	}
	b := Fig4bConfig(1)
	if b.Width != 8 || b.Height != 8 || b.FlowCounts[len(b.FlowCounts)-1] != 520 {
		t.Errorf("Fig4b config wrong: %+v", b)
	}
	if got := len(Fig5Topologies()); got != 26 {
		t.Errorf("Figure 5 has %d topologies, want 26", got)
	}
	// Node counts span 4..100 and are non-decreasing.
	prev := 0
	for _, wh := range Fig5Topologies() {
		n := wh[0] * wh[1]
		if n < prev {
			t.Errorf("topologies not ordered by node count: %v", Fig5Topologies())
		}
		prev = n
	}
	if prev != 100 {
		t.Errorf("largest topology has %d nodes, want 100", prev)
	}
}

func TestRunAVSmall(t *testing.T) {
	res, err := RunAV(AVConfig{
		Topologies:          [][2]int{{2, 2}, {4, 4}},
		MappingsPerTopology: 10,
		Seed:                1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 || len(res.Analyses) != 3 {
		t.Fatalf("shape wrong: %+v", res)
	}
	for _, p := range res.Points {
		xlwx, ibn2, ibn100 := p.Schedulable[0], p.Schedulable[1], p.Schedulable[2]
		if !(ibn2 >= ibn100 && ibn100 >= xlwx) {
			t.Errorf("%dx%d: ordering violated: XLWX=%d IBN2=%d IBN100=%d",
				p.Width, p.Height, xlwx, ibn2, ibn100)
		}
	}
	if !strings.Contains(res.Table(), "2x2") {
		t.Error("AV table rendering wrong")
	}
	if !strings.Contains(res.CSV(), "topology,nodes,XLWX,IBN2,IBN100") {
		t.Errorf("AV csv rendering wrong:\n%s", res.CSV())
	}
}

func TestRunAVErrors(t *testing.T) {
	if _, err := RunAV(AVConfig{}); err == nil {
		t.Error("zero mappings must fail")
	}
	if _, err := RunAV(AVConfig{Topologies: [][2]int{{0, 1}}, MappingsPerTopology: 1}); err == nil {
		t.Error("bad topology must fail")
	}
}

func TestRunBufferAblationSmall(t *testing.T) {
	res, err := RunBufferAblation(BufferAblationConfig{
		Width: 4, Height: 4,
		FlowCounts:   []int{200},
		BufDepths:    []int{2, 10, 100},
		SetsPerPoint: 8,
		Seed:         2,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"IBN2", "IBN10", "IBN100", "XLWX"}
	for i, a := range want {
		if res.Analyses[i] != a {
			t.Fatalf("analyses = %v, want %v", res.Analyses, want)
		}
	}
	if v := CheckBufferMonotonicity(res); v != "" {
		t.Errorf("monotonicity violated: %s", v)
	}
}

func TestCheckBufferMonotonicityDetectsViolation(t *testing.T) {
	res := &SweepResult{
		Analyses: []string{"IBN2", "IBN10"},
		Points:   []SweepPoint{{NumFlows: 10, Schedulable: []int{3, 5}, Sets: 10}},
	}
	if v := CheckBufferMonotonicity(res); v == "" {
		t.Error("violation not detected")
	}
}

func TestTaskSeedDecorrelated(t *testing.T) {
	seen := map[int64]bool{}
	for a := 0; a < 50; a++ {
		for b := 0; b < 50; b++ {
			s := taskSeed(1, a, b)
			if s < 0 {
				t.Fatalf("negative seed %d", s)
			}
			if seen[s] {
				t.Fatalf("seed collision at (%d,%d)", a, b)
			}
			seen[s] = true
		}
	}
	if taskSeed(1, 2, 3) != taskSeed(1, 2, 3) {
		t.Error("taskSeed must be deterministic")
	}
	if taskSeed(1, 2, 3) == taskSeed(2, 2, 3) {
		t.Error("base seed must matter")
	}
}

func TestStandardAnalyses(t *testing.T) {
	std := StandardAnalyses()
	if len(std) != 4 || std[2].Options.Method != core.IBN || std[2].Options.BufDepth != 2 {
		t.Errorf("StandardAnalyses = %+v", std)
	}
	av := AVAnalyses()
	if len(av) != 3 || av[0].Options.Method != core.XLWX {
		t.Errorf("AVAnalyses = %+v", av)
	}
}

func TestPercent(t *testing.T) {
	if percent(5, 10) != " 50.0" {
		t.Errorf("percent(5,10) = %q", percent(5, 10))
	}
	if percent(1, 0) != "n/a" {
		t.Errorf("percent(1,0) = %q", percent(1, 0))
	}
}

func TestChart(t *testing.T) {
	res := &SweepResult{
		Mesh:     "4x4",
		Analyses: []string{"SB", "XLWX", "IBN2", "IBN100"},
		Points: []SweepPoint{
			{NumFlows: 40, Schedulable: []int{10, 10, 10, 10}, Sets: 10},
			{NumFlows: 100, Schedulable: []int{10, 2, 9, 8}, Sets: 10},
			{NumFlows: 160, Schedulable: []int{9, 0, 4, 3}, Sets: 10},
		},
	}
	chart := res.Chart(10)
	for _, want := range []string{"100%", "0%", "legend: S=SB X=XLWX I=IBN2 B=IBN100", "4x4"} {
		if !strings.Contains(chart, want) {
			t.Errorf("chart missing %q:\n%s", want, chart)
		}
	}
	// The all-equal first column renders as an overlap marker.
	if !strings.Contains(chart, "*") {
		t.Errorf("expected overlap marker:\n%s", chart)
	}
	if out := (&SweepResult{}).Chart(10); !strings.Contains(out, "no points") {
		t.Error("empty chart placeholder missing")
	}
}

// TestParallelForStopsAfterError is the regression test for the historic
// parallelFor bug: the old implementation kept dispatching every
// remaining task after a worker had already failed. The shared runner
// must cancel the dispatch instead.
func TestParallelForStopsAfterError(t *testing.T) {
	const n = 400
	var mu sync.Mutex
	ran := 0
	err := parallelFor(n, 2, func(i int) error {
		mu.Lock()
		ran++
		mu.Unlock()
		if i == 0 {
			return errors.New("boom")
		}
		time.Sleep(time.Millisecond)
		return nil
	})
	if err == nil || err.Error() != "boom" {
		t.Fatalf("err = %v, want boom", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if ran >= n/2 {
		t.Errorf("ran %d of %d tasks after the error; dispatch did not stop", ran, n)
	}
}

// TestTaskRunner checks the config-level runner resolution: an explicit
// runner wins, otherwise a default bounded by Workers is built.
func TestTaskRunner(t *testing.T) {
	r := &Runner{Workers: 3}
	if got := taskRunner(r, 7); got != r {
		t.Error("explicit runner must be returned as is")
	}
	if got := taskRunner(nil, 7); got == nil || got.Workers != 7 {
		t.Errorf("default runner = %+v, want Workers=7", got)
	}
}
