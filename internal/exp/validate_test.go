package exp

import (
	"strings"
	"testing"
)

func TestRunValidationSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("validation hunt is slow in -short mode")
	}
	res, err := RunValidation(ValidationConfig{
		Scenarios:     4,
		Duration:      20_000,
		Restarts:      1,
		ProbesPerFlow: 2,
		Seed:          7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Scenarios != 4 || res.FlowsChecked == 0 {
		t.Fatalf("hunt shape: %+v", res)
	}
	idx := map[string]int{}
	for a, name := range res.Analyses {
		idx[name] = a
	}
	// The safe analyses must survive every attack.
	for _, name := range []string{"XLWX", "IBN"} {
		if v := res.Violations[idx[name]]; v != 0 {
			t.Errorf("counter-example found against %s (%d violations, worst excess %d)",
				name, v, res.WorstExcess[idx[name]])
		}
	}
	// The unsafe analyses can only be at least as violated as the safe
	// ones (their bounds are tighter or equal).
	if res.Violations[idx["SB"]] < res.Violations[idx["XLWX"]] {
		t.Error("SB cannot be safer than XLWX")
	}
	if !strings.Contains(res.Table(), "analysis") {
		t.Errorf("table rendering:\n%s", res.Table())
	}
}

func TestRunValidationErrors(t *testing.T) {
	if _, err := RunValidation(ValidationConfig{}); err == nil {
		t.Error("zero scenarios must fail")
	}
}
