package exp

import (
	"strings"
	"testing"
)

func TestRunTightness(t *testing.T) {
	res, err := RunTightness(TightnessConfig{
		Width: 4, Height: 4,
		FlowCounts:   []int{60, 220},
		SetsPerPoint: 6,
		Seed:         5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 || res.BufDepth != 2 {
		t.Fatalf("result shape: %+v", res)
	}
	for _, p := range res.Points {
		if p.Flows == 0 {
			t.Fatalf("no comparable flows at %d", p.NumFlows)
		}
		if p.MeanRatio < 1 || p.MaxRatio < p.MeanRatio {
			t.Errorf("at %d flows: mean %.3f max %.3f (IBN must never be looser)",
				p.NumFlows, p.MeanRatio, p.MaxRatio)
		}
		if p.SchedulableIBN < p.SchedulableXLWX {
			t.Errorf("at %d flows: IBN schedules fewer flows (%d) than XLWX (%d)",
				p.NumFlows, p.SchedulableIBN, p.SchedulableXLWX)
		}
		if p.SchedulableIBN > p.TotalFlows || p.Improved > p.Flows {
			t.Errorf("inconsistent counters: %+v", p)
		}
	}
	// At high load the improvement must be substantial (there is real
	// downstream indirect interference to cap).
	hi := res.Points[1]
	if hi.MeanRatio <= 1.0 {
		t.Errorf("expected measurable tightening at 220 flows, mean ratio %.3f", hi.MeanRatio)
	}
	tbl := res.Table()
	if !strings.Contains(tbl, "4x4") || !strings.Contains(tbl, "mean") {
		t.Errorf("table rendering:\n%s", tbl)
	}
}

func TestRunTightnessErrors(t *testing.T) {
	if _, err := RunTightness(TightnessConfig{Width: 4, Height: 4}); err == nil {
		t.Error("empty config must fail")
	}
	if _, err := RunTightness(TightnessConfig{Width: 0, Height: 1, FlowCounts: []int{5}, SetsPerPoint: 1}); err == nil {
		t.Error("bad mesh must fail")
	}
}
