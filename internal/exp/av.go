package exp

import (
	"errors"
	"fmt"
	"io"
	"strings"

	"wormnoc/internal/core"
	"wormnoc/internal/noc"
	"wormnoc/internal/workload"
)

// Fig5Topologies returns the 26 mesh shapes of Figure 5, ordered by node
// count (from 2x2 = 4 nodes to 10x10 = 100 nodes).
func Fig5Topologies() [][2]int {
	return [][2]int{
		{2, 2}, {3, 2}, {3, 3}, {4, 3}, {4, 4},
		{5, 4}, {6, 4}, {5, 5}, {7, 4}, {6, 5},
		{7, 5}, {6, 6}, {8, 5}, {7, 6}, {8, 6},
		{7, 7}, {9, 6}, {8, 7}, {9, 7}, {8, 8},
		{10, 7}, {9, 8}, {10, 8}, {9, 9}, {10, 9}, {10, 10},
	}
}

// AVConfig parameterises the Figure-5 experiment: random mappings of the
// autonomous-vehicle benchmark onto a series of topologies, counting
// mappings deemed fully schedulable by each analysis.
type AVConfig struct {
	// Topologies lists mesh shapes; defaults to Fig5Topologies().
	Topologies [][2]int
	// MappingsPerTopology is the number of random task mappings per shape
	// (100 in the paper).
	MappingsPerTopology int
	// Analyses are the curves; defaults to AVAnalyses().
	Analyses []AnalysisSpec
	// Seed makes the experiment deterministic.
	Seed int64
	// Workers bounds parallelism (0 = all CPUs).
	Workers int
	// Runner, when non-nil, executes the experiment's tasks (its worker
	// bound overrides Workers); use it for context cancellation and
	// progress callbacks.
	Runner *Runner
	// Progress, when non-nil, receives the final table.
	Progress io.Writer
}

// AVPoint is the outcome for one topology.
type AVPoint struct {
	Width, Height int
	// Schedulable[a] counts mappings deemed fully schedulable by analysis
	// a (indexed like AVResult.Analyses).
	Schedulable []int
	// Mappings is the number of mappings evaluated.
	Mappings int
}

// AVResult is the outcome of the Figure-5 experiment.
type AVResult struct {
	Analyses []string
	Points   []AVPoint
	// Telemetry aggregates the engine counters of every analysis run.
	Telemetry core.Telemetry
}

// RunAV maps the AV benchmark cfg.MappingsPerTopology times onto every
// topology and counts schedulable mappings per analysis. Mappings that
// leave no flow on the network (all communicating tasks co-mapped) count
// as schedulable for every analysis.
func RunAV(cfg AVConfig) (*AVResult, error) {
	if cfg.MappingsPerTopology < 1 {
		return nil, fmt.Errorf("exp: MappingsPerTopology must be >= 1")
	}
	if cfg.Topologies == nil {
		cfg.Topologies = Fig5Topologies()
	}
	if cfg.Analyses == nil {
		cfg.Analyses = AVAnalyses()
	}
	res := &AVResult{
		Analyses: make([]string, len(cfg.Analyses)),
		Points:   make([]AVPoint, len(cfg.Topologies)),
	}
	for a, spec := range cfg.Analyses {
		res.Analyses[a] = spec.Name
	}

	type task struct{ topo, mapping int }
	tasks := make([]task, 0, len(cfg.Topologies)*cfg.MappingsPerTopology)
	topos := make([]*noc.Topology, len(cfg.Topologies))
	for ti, wh := range cfg.Topologies {
		t, err := noc.NewMesh(wh[0], wh[1], noc.RouterConfig{
			BufDepth: 2, LinkLatency: 1, RouteLatency: 0,
		})
		if err != nil {
			return nil, err
		}
		topos[ti] = t
		res.Points[ti] = AVPoint{
			Width: wh[0], Height: wh[1],
			Schedulable: make([]int, len(cfg.Analyses)),
			Mappings:    cfg.MappingsPerTopology,
		}
		for m := 0; m < cfg.MappingsPerTopology; m++ {
			tasks = append(tasks, task{ti, m})
		}
	}
	sched := make([][]bool, len(tasks))
	tels := make([]core.Telemetry, len(tasks))

	err := taskRunner(cfg.Runner, cfg.Workers).Run(len(tasks), func(i int) error {
		tk := tasks[i]
		row := make([]bool, len(cfg.Analyses))
		sys, err := workload.MapAV(topos[tk.topo], taskSeed(cfg.Seed, tk.topo, tk.mapping))
		switch {
		case errors.Is(err, workload.ErrNoNetworkFlows):
			// All communication local: trivially schedulable.
			for a := range row {
				row[a] = true
			}
			sched[i] = row
			return nil
		case err != nil:
			return err
		}
		eng := core.NewEngine(sys)
		for a, spec := range cfg.Analyses {
			r, err := eng.Analyze(spec.Options)
			if err != nil {
				return err
			}
			row[a] = r.Schedulable
		}
		sched[i] = row
		tels[i] = eng.Telemetry()
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i, row := range sched {
		if row == nil {
			return nil, errors.New("exp: internal error: missing AV task result")
		}
		for a, ok := range row {
			if ok {
				res.Points[tasks[i].topo].Schedulable[a]++
			}
		}
		res.Telemetry.Add(tels[i])
	}
	if cfg.Progress != nil {
		fmt.Fprint(cfg.Progress, res.Table())
	}
	return res, nil
}

// Table renders the experiment as an ASCII table of schedulable-mapping
// percentages, one row per topology.
func (r *AVResult) Table() string {
	var b strings.Builder
	b.WriteString("% schedulable AV-benchmark mappings\n")
	fmt.Fprintf(&b, "%8s", "topology")
	for _, a := range r.Analyses {
		fmt.Fprintf(&b, " %8s", a)
	}
	b.WriteByte('\n')
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%8s", fmt.Sprintf("%dx%d", p.Width, p.Height))
		for _, c := range p.Schedulable {
			fmt.Fprintf(&b, " %8s", percent(c, p.Mappings))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// CSV renders the experiment as comma-separated values.
func (r *AVResult) CSV() string {
	var b strings.Builder
	b.WriteString("topology,nodes")
	for _, a := range r.Analyses {
		b.WriteString("," + a)
	}
	b.WriteByte('\n')
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%dx%d,%d", p.Width, p.Height, p.Width*p.Height)
		for _, c := range p.Schedulable {
			fmt.Fprintf(&b, ",%.1f", 100*float64(c)/float64(p.Mappings))
		}
		b.WriteByte('\n')
	}
	return b.String()
}
