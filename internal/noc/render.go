package noc

import (
	"fmt"
	"strings"
)

// DOT renders the topology as a Graphviz digraph: one node per router
// (positioned on the mesh grid), one edge per mesh link, with the local
// node attached via a dashed injection/ejection pair. Pipe the output
// through `dot -Kneato -n -Tsvg` to obtain a faithful mesh drawing.
func (t *Topology) DOT() string {
	var b strings.Builder
	b.WriteString("digraph mesh {\n")
	fmt.Fprintf(&b, "  label=\"%s\";\n", t)
	b.WriteString("  node [shape=box];\n")
	for r := 0; r < t.NumRouters(); r++ {
		x, y := t.Coord(RouterID(r))
		fmt.Fprintf(&b, "  r%d [label=\"r%d\\n(%d,%d)\" pos=\"%d,%d!\"];\n", r, r, x, y, x*120, y*120)
		fmt.Fprintf(&b, "  n%d [label=\"n%d\" shape=ellipse pos=\"%d,%d!\"];\n", r, r, x*120+45, y*120+45)
	}
	for _, l := range t.links {
		switch l.Kind {
		case Mesh:
			fmt.Fprintf(&b, "  r%d -> r%d;\n", int(l.Src), int(l.Dst))
		case Injection:
			fmt.Fprintf(&b, "  n%d -> r%d [style=dashed];\n", int(l.Src), int(l.Dst))
		case Ejection:
			fmt.Fprintf(&b, "  r%d -> n%d [style=dashed];\n", int(l.Src), int(l.Dst))
		}
	}
	b.WriteString("}\n")
	return b.String()
}

// ASCII renders the mesh as a text grid of routers with bidirectional
// mesh connections, highest row (largest y) first.
func (t *Topology) ASCII() string {
	var b strings.Builder
	cell := 6
	for y := t.h - 1; y >= 0; y-- {
		for x := 0; x < t.w; x++ {
			r := t.RouterAt(x, y)
			label := fmt.Sprintf("[r%d]", int(r))
			b.WriteString(label)
			if x+1 < t.w {
				b.WriteString(strings.Repeat("─", cell-len(label)+2))
			}
		}
		b.WriteByte('\n')
		if y > 0 {
			for x := 0; x < t.w; x++ {
				b.WriteString("  │   ")
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// RenderRoute describes a route hop by hop in human-readable form.
func (t *Topology) RenderRoute(r Route) string {
	if len(r) == 0 {
		return "(empty route)"
	}
	parts := make([]string, len(r))
	for i, l := range r {
		parts[i] = t.Link(l).String()
	}
	return strings.Join(parts, " → ")
}
