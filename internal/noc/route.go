package noc

import (
	"fmt"
	"strings"
)

// Route is the totally ordered set of links used to transfer packets from
// a source node to a destination node, including the injection and
// ejection links, i.e. route(πa, πb) of the system model. Its length
// |route| counts links; the number of routers traversed is |route|-1.
type Route []LinkID

// Len returns |route|, the number of links of the route.
func (r Route) Len() int { return len(r) }

// Hops returns the number of routers the route traverses (|route|-1).
func (r Route) Hops() int {
	if len(r) == 0 {
		return 0
	}
	return len(r) - 1
}

// Order returns the 1-based position of link l in the route
// (order(λ, route) in the paper), or 0 if the link is not part of it.
func (r Route) Order(l LinkID) int {
	for i, x := range r {
		if x == l {
			return i + 1
		}
	}
	return 0
}

// Contains reports whether link l belongs to the route.
func (r Route) Contains(l LinkID) bool { return r.Order(l) != 0 }

// First returns first(route): the first link, or NoLink for an empty
// route.
func (r Route) First() LinkID {
	if len(r) == 0 {
		return NoLink
	}
	return r[0]
}

// Last returns last(route): the last link, or NoLink for an empty route.
func (r Route) Last() LinkID {
	if len(r) == 0 {
		return NoLink
	}
	return r[len(r)-1]
}

// Equal reports whether two routes consist of the same links in the same
// order.
func (r Route) Equal(o Route) bool {
	if len(r) != len(o) {
		return false
	}
	for i := range r {
		if r[i] != o[i] {
			return false
		}
	}
	return true
}

// String renders the route as its bracketed link-ID sequence, e.g.
// "[3 17 22]".
func (r Route) String() string {
	parts := make([]string, len(r))
	for i, l := range r {
		parts[i] = fmt.Sprintf("%d", int(l))
	}
	return "[" + strings.Join(parts, " ") + "]"
}

// RoutingPolicy selects the deterministic dimension-order routing
// variant of the mesh. Both variants produce minimal routes and
// contiguous contention domains, which is all the analyses require.
type RoutingPolicy uint8

const (
	// XY routes along the X dimension first, then Y (the default and the
	// paper's configuration).
	XY RoutingPolicy = iota
	// YX routes along the Y dimension first, then X.
	YX
)

// String returns the conventional policy name, "XY" or "YX".
func (p RoutingPolicy) String() string {
	switch p {
	case XY:
		return "XY"
	case YX:
		return "YX"
	default:
		return fmt.Sprintf("RoutingPolicy(%d)", uint8(p))
	}
}

// Route computes route(src, dst) under the topology's dimension-order
// routing policy (XY by default): the packet first travels along one
// dimension to completion, then along the other. The route includes the
// injection link of src and the ejection link of dst.
//
// src and dst must be distinct valid nodes.
func (t *Topology) Route(src, dst NodeID) (Route, error) {
	if !t.ContainsNode(src) {
		return nil, fmt.Errorf("noc: source node %d outside %dx%d mesh", int(src), t.w, t.h)
	}
	if !t.ContainsNode(dst) {
		return nil, fmt.Errorf("noc: destination node %d outside %dx%d mesh", int(dst), t.w, t.h)
	}
	if src == dst {
		return nil, fmt.Errorf("noc: route source and destination are both node %d", int(src))
	}
	sx, sy := t.Coord(RouterID(src))
	dx, dy := t.Coord(RouterID(dst))
	route := make(Route, 0, abs(dx-sx)+abs(dy-sy)+2)
	route = append(route, t.inj[src])
	r := RouterID(src)
	x, y := sx, sy
	walkX := func() {
		for x != dx {
			var d Direction
			if x < dx {
				d, x = East, x+1
			} else {
				d, x = West, x-1
			}
			l := t.MeshLink(r, d)
			route = append(route, l)
			r = t.links[l].Dst
		}
	}
	walkY := func() {
		for y != dy {
			var d Direction
			if y < dy {
				d, y = North, y+1
			} else {
				d, y = South, y-1
			}
			l := t.MeshLink(r, d)
			route = append(route, l)
			r = t.links[l].Dst
		}
	}
	if t.routing == YX {
		walkY()
		walkX()
	} else {
		walkX()
		walkY()
	}
	route = append(route, t.ej[dst])
	return route, nil
}

// MustRoute is Route that panics on error; intended for tests and
// examples.
func (t *Topology) MustRoute(src, dst NodeID) Route {
	r, err := t.Route(src, dst)
	if err != nil {
		panic(err)
	}
	return r
}

// ContentionDomain computes cd(a, b) = a ∩ b: the set of links shared by
// two routes, ordered by their appearance along route a. Under
// dimension-order routing the result is always a contiguous segment of
// both routes (the system model assumes contention domains are never
// disjoint sets of links).
func ContentionDomain(a, b Route) Route {
	if len(a) == 0 || len(b) == 0 {
		return nil
	}
	inB := make(map[LinkID]struct{}, len(b))
	for _, l := range b {
		inB[l] = struct{}{}
	}
	var cd Route
	for _, l := range a {
		if _, ok := inB[l]; ok {
			cd = append(cd, l)
		}
	}
	return cd
}

// IsContiguousIn reports whether the links of cd occupy consecutive
// positions, in order, along route r. The response-time analyses rely on
// contention domains being contiguous segments of both routes involved;
// this helper lets callers (and tests) validate the assumption.
func (r Route) IsContiguousIn(cd Route) bool {
	if len(cd) == 0 {
		return true
	}
	start := r.Order(cd[0])
	if start == 0 {
		return false
	}
	for i, l := range cd {
		if r.Order(l) != start+i {
			return false
		}
	}
	return true
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
