package noc

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestRouteStructure pins concrete XY routes.
func TestRouteStructure(t *testing.T) {
	topo := MustMesh(4, 4, defaultCfg())
	// 0=(0,0) → 15=(3,3): X first (east x3) then Y (north x3).
	r := topo.MustRoute(0, 15)
	if r.Len() != 8 {
		t.Fatalf("|route(0,15)| = %d, want 8", r.Len())
	}
	if topo.Link(r.First()).Kind != Injection {
		t.Error("route must start with the injection link")
	}
	if topo.Link(r.Last()).Kind != Ejection {
		t.Error("route must end with the ejection link")
	}
	// Middle links: 3 easts then 3 norths.
	wantDst := []int{1, 2, 3, 7, 11, 15}
	for i, l := range r[1 : len(r)-1] {
		link := topo.Link(l)
		if link.Kind != Mesh {
			t.Fatalf("hop %d is %v, want mesh", i, link.Kind)
		}
		if int(link.Dst) != wantDst[i] {
			t.Errorf("hop %d reaches router %d, want %d", i, int(link.Dst), wantDst[i])
		}
	}
}

func TestRouteErrors(t *testing.T) {
	topo := MustMesh(4, 4, defaultCfg())
	if _, err := topo.Route(0, 0); err == nil {
		t.Error("route to self must fail")
	}
	if _, err := topo.Route(-1, 3); err == nil {
		t.Error("negative source must fail")
	}
	if _, err := topo.Route(0, 16); err == nil {
		t.Error("out-of-mesh destination must fail")
	}
}

func TestRouteHelpers(t *testing.T) {
	topo := MustMesh(4, 1, defaultCfg())
	r := topo.MustRoute(0, 3) // inj, 3 mesh, ej = 5 links
	if r.Hops() != 4 {
		t.Errorf("Hops = %d, want 4", r.Hops())
	}
	for i, l := range r {
		if got := r.Order(l); got != i+1 {
			t.Errorf("Order(link %d) = %d, want %d", i, got, i+1)
		}
		if !r.Contains(l) {
			t.Errorf("Contains(link %d) = false", i)
		}
	}
	if r.Order(LinkID(10_000)) != 0 {
		t.Error("Order of absent link must be 0")
	}
	if r.Contains(LinkID(10_000)) {
		t.Error("Contains of absent link must be false")
	}
	if r.First() != r[0] || r.Last() != r[len(r)-1] {
		t.Error("First/Last mismatch")
	}
	var empty Route
	if empty.First() != NoLink || empty.Last() != NoLink || empty.Hops() != 0 {
		t.Error("empty route helpers must return sentinels")
	}
	if !r.Equal(r) {
		t.Error("route must equal itself")
	}
	if r.Equal(r[:len(r)-1]) {
		t.Error("routes of different length must differ")
	}
	other := topo.MustRoute(3, 0)
	if r.Equal(other) {
		t.Error("opposite routes must differ")
	}
	if r.String() == "" {
		t.Error("route String must not be empty")
	}
}

// TestRoutePropertiesXY checks, over random node pairs on random meshes,
// the defining properties of dimension-order routing: minimality (the
// route has Manhattan-distance mesh links plus injection and ejection),
// X-before-Y ordering, contiguity (each link starts where the previous
// ended) and determinism.
func TestRoutePropertiesXY(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		w, h := 1+rng.Intn(9), 1+rng.Intn(9)
		if w*h < 2 {
			w, h = 2, 1
		}
		topo := MustMesh(w, h, defaultCfg())
		src := NodeID(rng.Intn(w * h))
		dst := NodeID(rng.Intn(w*h - 1))
		if dst >= src {
			dst++
		}
		r := topo.MustRoute(src, dst)
		sx, sy := topo.Coord(RouterID(src))
		dx, dy := topo.Coord(RouterID(dst))
		if r.Len() != abs(sx-dx)+abs(sy-dy)+2 {
			t.Logf("non-minimal route %v for %d→%d on %dx%d", r, src, dst, w, h)
			return false
		}
		if topo.Link(r.First()).Kind != Injection || topo.Link(r.Last()).Kind != Ejection {
			return false
		}
		// Contiguity and X-before-Y.
		cur := RouterID(src)
		seenY := false
		for _, lid := range r[1 : len(r)-1] {
			l := topo.Link(lid)
			if l.Kind != Mesh || l.Src != cur {
				return false
			}
			ax, _ := topo.Coord(l.Src)
			bx, _ := topo.Coord(l.Dst)
			if ax == bx { // Y move
				seenY = true
			} else if seenY {
				t.Logf("X move after Y move in %v", r)
				return false
			}
			cur = l.Dst
		}
		if cur != RouterID(dst) {
			return false
		}
		// Determinism.
		return r.Equal(topo.MustRoute(src, dst))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestContentionDomainProperties checks, over random flow pairs, the
// system-model assumption the analyses rely on: contention domains are
// contiguous segments of both routes involved, and symmetric as sets.
func TestContentionDomainProperties(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		w, h := 2+rng.Intn(8), 2+rng.Intn(8)
		topo := MustMesh(w, h, defaultCfg())
		pick := func() (NodeID, NodeID) {
			s := NodeID(rng.Intn(w * h))
			d := NodeID(rng.Intn(w*h - 1))
			if d >= s {
				d++
			}
			return s, d
		}
		s1, d1 := pick()
		s2, d2 := pick()
		a := topo.MustRoute(s1, d1)
		b := topo.MustRoute(s2, d2)
		cdA := ContentionDomain(a, b)
		cdB := ContentionDomain(b, a)
		if len(cdA) != len(cdB) {
			return false
		}
		seen := make(map[LinkID]bool, len(cdA))
		for _, l := range cdA {
			seen[l] = true
		}
		for _, l := range cdB {
			if !seen[l] {
				return false
			}
		}
		if !a.IsContiguousIn(cdA) {
			t.Logf("cd %v not contiguous in route a %v", cdA, a)
			return false
		}
		if !b.IsContiguousIn(cdB) {
			t.Logf("cd %v not contiguous in route b %v", cdB, b)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestContentionDomainConcrete(t *testing.T) {
	topo := MustMesh(6, 1, defaultCfg())
	r2 := topo.MustRoute(0, 5)
	r3 := topo.MustRoute(1, 4)
	cd := ContentionDomain(r3, r2)
	if len(cd) != 3 {
		t.Fatalf("|cd| = %d, want 3", len(cd))
	}
	// All three shared links are mesh links between routers 1..4.
	for _, l := range cd {
		if topo.Link(l).Kind != Mesh {
			t.Errorf("shared link %v should be a mesh link", topo.Link(l))
		}
	}
	// Empty cases.
	if cd := ContentionDomain(nil, r2); cd != nil {
		t.Error("empty route gives nil contention domain")
	}
	rA := topo.MustRoute(0, 1)
	rB := topo.MustRoute(4, 5)
	if cd := ContentionDomain(rA, rB); len(cd) != 0 {
		t.Errorf("disjoint routes share %v", cd)
	}
}

func TestIsContiguousIn(t *testing.T) {
	topo := MustMesh(5, 1, defaultCfg())
	r := topo.MustRoute(0, 4)
	if !r.IsContiguousIn(nil) {
		t.Error("empty cd is contiguous")
	}
	if !r.IsContiguousIn(Route{r[1], r[2]}) {
		t.Error("adjacent sub-route is contiguous")
	}
	if r.IsContiguousIn(Route{r[1], r[3]}) {
		t.Error("gapped subset is not contiguous")
	}
	if r.IsContiguousIn(Route{r[2], r[1]}) {
		t.Error("reversed subset is not contiguous")
	}
	if r.IsContiguousIn(Route{LinkID(999)}) {
		t.Error("foreign link is not contiguous")
	}
}
