package noc

import (
	"strings"
	"testing"
)

func TestDOT(t *testing.T) {
	topo := MustMesh(2, 2, defaultCfg())
	dot := topo.DOT()
	if !strings.HasPrefix(dot, "digraph mesh {") || !strings.HasSuffix(dot, "}\n") {
		t.Errorf("not a digraph:\n%s", dot)
	}
	for _, want := range []string{"r0", "r3", "n0 -> r0", "r3 -> n3", "r0 -> r1", "r2 -> r0"} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q", want)
		}
	}
	// One edge line per link.
	edges := strings.Count(dot, "->")
	if edges != topo.NumLinks() {
		t.Errorf("DOT has %d edges, want %d links", edges, topo.NumLinks())
	}
}

func TestASCII(t *testing.T) {
	topo := MustMesh(3, 2, defaultCfg())
	art := topo.ASCII()
	for r := 0; r < 6; r++ {
		if !strings.Contains(art, "[r"+string(rune('0'+r))+"]") {
			t.Errorf("ASCII missing router %d:\n%s", r, art)
		}
	}
	// Highest row first: r3 (y=1) appears before r0 (y=0).
	if strings.Index(art, "[r3]") > strings.Index(art, "[r0]") {
		t.Errorf("rows not top-down:\n%s", art)
	}
}

func TestRenderRoute(t *testing.T) {
	topo := MustMesh(3, 1, defaultCfg())
	r := topo.MustRoute(0, 2)
	s := topo.RenderRoute(r)
	if !strings.Contains(s, "→") || !strings.Contains(s, "λ[n0→r0]") {
		t.Errorf("route rendering: %s", s)
	}
	if topo.RenderRoute(nil) != "(empty route)" {
		t.Error("empty route rendering")
	}
}
