package noc

import (
	"strings"
	"testing"
)

func defaultCfg() RouterConfig {
	return RouterConfig{BufDepth: 2, LinkLatency: 1, RouteLatency: 0}
}

func TestNewMeshDimensions(t *testing.T) {
	cases := []struct {
		w, h      int
		wantLinks int
	}{
		// links = 2·W·H (inj+ej) + 2·(mesh edges); mesh edges =
		// H·(W-1) + W·(H-1) per direction.
		{2, 2, 2*4 + 2*(2*1+2*1)},
		{4, 4, 2*16 + 2*(4*3+4*3)},
		{6, 1, 2*6 + 2*5},
		{1, 6, 2*6 + 2*5},
		{3, 5, 2*15 + 2*(5*2+3*4)},
		{10, 10, 2*100 + 2*(10*9+10*9)},
	}
	for _, tc := range cases {
		topo, err := NewMesh(tc.w, tc.h, defaultCfg())
		if err != nil {
			t.Fatalf("NewMesh(%d,%d): %v", tc.w, tc.h, err)
		}
		if got := topo.NumNodes(); got != tc.w*tc.h {
			t.Errorf("%dx%d: NumNodes = %d, want %d", tc.w, tc.h, got, tc.w*tc.h)
		}
		if got := topo.NumLinks(); got != tc.wantLinks {
			t.Errorf("%dx%d: NumLinks = %d, want %d", tc.w, tc.h, got, tc.wantLinks)
		}
		if topo.Width() != tc.w || topo.Height() != tc.h {
			t.Errorf("%dx%d: dimensions mismatch: %dx%d", tc.w, tc.h, topo.Width(), topo.Height())
		}
	}
}

func TestNewMeshRejectsBadInput(t *testing.T) {
	if _, err := NewMesh(0, 4, defaultCfg()); err == nil {
		t.Error("NewMesh(0,4) should fail")
	}
	if _, err := NewMesh(4, -1, defaultCfg()); err == nil {
		t.Error("NewMesh(4,-1) should fail")
	}
	if _, err := NewMesh(1, 1, defaultCfg()); err == nil {
		t.Error("NewMesh(1,1) should fail (needs >= 2 nodes)")
	}
	bad := []RouterConfig{
		{BufDepth: 0, LinkLatency: 1},
		{BufDepth: 2, LinkLatency: 0},
		{BufDepth: 2, LinkLatency: 1, RouteLatency: -1},
		{BufDepth: 2, LinkLatency: 1, NumVCs: -1},
	}
	for i, cfg := range bad {
		if _, err := NewMesh(4, 4, cfg); err == nil {
			t.Errorf("config %d (%+v) should be rejected", i, cfg)
		}
	}
}

func TestCoordRoundTrip(t *testing.T) {
	topo := MustMesh(7, 5, defaultCfg())
	for r := 0; r < topo.NumRouters(); r++ {
		x, y := topo.Coord(RouterID(r))
		if x < 0 || x >= 7 || y < 0 || y >= 5 {
			t.Fatalf("router %d: coord (%d,%d) out of mesh", r, x, y)
		}
		if back := topo.RouterAt(x, y); back != RouterID(r) {
			t.Fatalf("RouterAt(Coord(%d)) = %d", r, int(back))
		}
	}
}

func TestLinkEndpointsAndKinds(t *testing.T) {
	topo := MustMesh(3, 3, defaultCfg())
	inj, ej, mesh := 0, 0, 0
	for _, l := range topo.Links() {
		switch l.Kind {
		case Injection:
			inj++
			if l.Src != l.Dst {
				t.Errorf("injection link %v must connect a node to its own router", l)
			}
		case Ejection:
			ej++
			if l.Src != l.Dst {
				t.Errorf("ejection link %v must connect a router to its own node", l)
			}
		case Mesh:
			mesh++
			ax, ay := topo.Coord(l.Src)
			bx, by := topo.Coord(l.Dst)
			if abs(ax-bx)+abs(ay-by) != 1 {
				t.Errorf("mesh link %v connects non-neighbours", l)
			}
		}
		if topo.Link(l.ID) != l {
			t.Errorf("Link(%d) does not round-trip", int(l.ID))
		}
	}
	if inj != 9 || ej != 9 || mesh != 24 {
		t.Errorf("link census = %d/%d/%d, want 9/9/24", inj, ej, mesh)
	}
}

func TestMeshLinkDirections(t *testing.T) {
	topo := MustMesh(3, 3, defaultCfg())
	center := topo.RouterAt(1, 1)
	for _, d := range []Direction{East, West, North, South} {
		l := topo.MeshLink(center, d)
		if l == NoLink {
			t.Fatalf("center router should have a %v link", d)
		}
		link := topo.Link(l)
		x, y := topo.Coord(link.Dst)
		switch d {
		case East:
			if x != 2 || y != 1 {
				t.Errorf("east of (1,1) is (%d,%d)", x, y)
			}
		case West:
			if x != 0 || y != 1 {
				t.Errorf("west of (1,1) is (%d,%d)", x, y)
			}
		case North:
			if x != 1 || y != 2 {
				t.Errorf("north of (1,1) is (%d,%d)", x, y)
			}
		case South:
			if x != 1 || y != 0 {
				t.Errorf("south of (1,1) is (%d,%d)", x, y)
			}
		}
	}
	// Boundary routers lack outward links.
	if topo.MeshLink(topo.RouterAt(0, 0), West) != NoLink {
		t.Error("(0,0) should have no west link")
	}
	if topo.MeshLink(topo.RouterAt(2, 2), North) != NoLink {
		t.Error("(2,2) should have no north link")
	}
}

func TestWithConfig(t *testing.T) {
	topo := MustMesh(4, 4, defaultCfg())
	big, err := topo.WithConfig(RouterConfig{BufDepth: 100, LinkLatency: 2, RouteLatency: 1})
	if err != nil {
		t.Fatal(err)
	}
	if big.Config().BufDepth != 100 || topo.Config().BufDepth != 2 {
		t.Error("WithConfig must not mutate the original")
	}
	if big.NumLinks() != topo.NumLinks() {
		t.Error("WithConfig must preserve structure")
	}
	if _, err := topo.WithConfig(RouterConfig{}); err == nil {
		t.Error("WithConfig must validate")
	}
}

func TestStringers(t *testing.T) {
	topo := MustMesh(2, 2, defaultCfg())
	if s := topo.String(); !strings.Contains(s, "2x2") {
		t.Errorf("Topology.String() = %q", s)
	}
	for _, k := range []LinkKind{Injection, Mesh, Ejection, LinkKind(9)} {
		if k.String() == "" {
			t.Errorf("LinkKind(%d).String() empty", k)
		}
	}
	for _, d := range []Direction{East, West, North, South, Direction(9)} {
		if d.String() == "" {
			t.Errorf("Direction(%d).String() empty", d)
		}
	}
	for _, l := range topo.Links() {
		if !strings.Contains(l.String(), "λ") {
			t.Errorf("Link.String() = %q", l.String())
		}
	}
}

func TestContainsNode(t *testing.T) {
	topo := MustMesh(3, 2, defaultCfg())
	for n := 0; n < 6; n++ {
		if !topo.ContainsNode(NodeID(n)) {
			t.Errorf("node %d should be contained", n)
		}
	}
	for _, n := range []int{-1, 6, 100} {
		if topo.ContainsNode(NodeID(n)) {
			t.Errorf("node %d should not be contained", n)
		}
	}
}

func TestMustMeshPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustMesh with bad dims must panic")
		}
	}()
	MustMesh(0, 0, defaultCfg())
}
