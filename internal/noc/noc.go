// Package noc models the hardware platform analysed by the paper: a
// wormhole-switched network-on-chip with a 2D mesh topology,
// dimension-order (XY) routing and priority-preemptive virtual-channel
// arbitration.
//
// The package provides the structural part of the system model of
// Section II of the paper: the sets of nodes Π, routers Ξ and
// unidirectional links Λ, the route function, and the contention-domain
// machinery (ordered link subsets, order/first/last helpers) that the
// response-time analyses in internal/core are built on.
//
// Terminology follows the paper:
//
//   - buf(Ξ)   — FIFO buffer depth (in flits) of a single virtual channel
//   - vc(Ξ)    — number of virtual channels (= priority levels) per router
//   - linkl(Ξ) — cycles for a router to transmit one flit over a link
//   - routl(Ξ) — cycles for a router to route a header flit
//
// The network is homogeneous: every router shares one RouterConfig.
package noc

import (
	"errors"
	"fmt"
)

// Cycles is a duration or instant measured in NoC clock cycles. All
// latencies, periods, deadlines and jitters in this module are expressed
// in cycles of the (single, global) network clock.
type Cycles int64

// NodeID identifies a processing node π attached to exactly one router.
// Nodes and routers share the same index space: node i is attached to
// router i.
type NodeID int

// RouterID identifies a router ξ of the mesh.
type RouterID int

// LinkID identifies one unidirectional link λ of the network. LinkIDs are
// dense indices into Topology.Links().
type LinkID int

// NoLink is the sentinel returned by lookups that find no link.
const NoLink LinkID = -1

// LinkKind distinguishes the three classes of unidirectional links in the
// model. Injection and ejection links connect a node to its local router;
// mesh links connect neighbouring routers.
type LinkKind uint8

const (
	// Injection links carry flits from a node into its local router.
	Injection LinkKind = iota
	// Mesh links carry flits between two neighbouring routers.
	Mesh
	// Ejection links carry flits from a router to its local node.
	Ejection
)

// String returns the lowercase kind name ("injection", "mesh" or
// "ejection").
func (k LinkKind) String() string {
	switch k {
	case Injection:
		return "injection"
	case Mesh:
		return "mesh"
	case Ejection:
		return "ejection"
	default:
		return fmt.Sprintf("LinkKind(%d)", uint8(k))
	}
}

// Direction enumerates the four mesh directions used by XY routing.
type Direction uint8

const (
	East  Direction = iota // +x
	West                   // -x
	North                  // +y
	South                  // -y
	numDirections
)

// String returns the lowercase compass name of the direction.
func (d Direction) String() string {
	switch d {
	case East:
		return "east"
	case West:
		return "west"
	case North:
		return "north"
	case South:
		return "south"
	default:
		return fmt.Sprintf("Direction(%d)", uint8(d))
	}
}

// Link is one unidirectional link of the network.
//
// For Mesh links, Src and Dst are the upstream and downstream routers.
// For Injection links, Dst is the router and Src is the router of the
// injecting node (they are equal, as node i attaches to router i).
// For Ejection links, Src is the router and Dst the router of the
// receiving node.
type Link struct {
	ID   LinkID
	Kind LinkKind
	Src  RouterID
	Dst  RouterID
}

// String renders the link in the paper's λ notation, distinguishing
// node↔router (injection/ejection) from router→router (mesh) hops.
func (l Link) String() string {
	switch l.Kind {
	case Injection:
		return fmt.Sprintf("λ[n%d→r%d]", int(l.Src), int(l.Dst))
	case Ejection:
		return fmt.Sprintf("λ[r%d→n%d]", int(l.Src), int(l.Dst))
	default:
		return fmt.Sprintf("λ[r%d→r%d]", int(l.Src), int(l.Dst))
	}
}

// RouterConfig holds the homogeneous per-router parameters of the
// platform, i.e. the functions buf(Ξ), vc(Ξ), linkl(Ξ) and routl(Ξ) of
// the system model.
type RouterConfig struct {
	// BufDepth is buf(Ξ): the capacity, in flits, of the FIFO buffer
	// implementing a single virtual channel. Must be >= 1; the paper uses
	// values between 2 and 100.
	BufDepth int
	// NumVCs is vc(Ξ): the number of virtual channels (and therefore
	// distinct priority levels) each router supports. A value of 0 means
	// "as many as needed" (one per flow priority), which is the assumption
	// made by all the analyses reproduced here.
	NumVCs int
	// LinkLatency is linkl(Ξ): cycles to transfer one flit over a link.
	LinkLatency Cycles
	// RouteLatency is routl(Ξ): cycles to route a header flit at a router.
	RouteLatency Cycles
}

// DefaultRouterConfig mirrors the configuration used by the paper's
// didactic example: single-cycle links, combinational routing and 2-flit
// virtual-channel buffers.
func DefaultRouterConfig() RouterConfig {
	return RouterConfig{BufDepth: 2, NumVCs: 0, LinkLatency: 1, RouteLatency: 0}
}

// Validate reports whether the configuration is usable.
func (c RouterConfig) Validate() error {
	switch {
	case c.BufDepth < 1:
		return fmt.Errorf("noc: BufDepth must be >= 1, got %d", c.BufDepth)
	case c.NumVCs < 0:
		return fmt.Errorf("noc: NumVCs must be >= 0, got %d", c.NumVCs)
	case c.LinkLatency < 1:
		return fmt.Errorf("noc: LinkLatency must be >= 1 cycle, got %d", c.LinkLatency)
	case c.RouteLatency < 0:
		return fmt.Errorf("noc: RouteLatency must be >= 0 cycles, got %d", c.RouteLatency)
	}
	return nil
}

// Topology is a W×H 2D mesh of routers, each with one attached node, with
// unidirectional links in both directions between neighbours plus one
// injection and one ejection link per node. A 1×N (or N×1) mesh is a
// line, which is the shape of the paper's didactic example.
//
// Topology is immutable after construction and safe for concurrent use.
type Topology struct {
	w, h    int
	cfg     RouterConfig
	routing RoutingPolicy
	links   []Link
	// inj[n] and ej[n] are the injection/ejection link of node n.
	inj []LinkID
	ej  []LinkID
	// mesh[r*numDirections+d] is the mesh link leaving router r in
	// direction d, or NoLink at the mesh boundary.
	mesh []LinkID
}

// NewMesh builds a W×H mesh with the given homogeneous router
// configuration.
func NewMesh(w, h int, cfg RouterConfig) (*Topology, error) {
	if w < 1 || h < 1 {
		return nil, fmt.Errorf("noc: mesh dimensions must be >= 1, got %dx%d", w, h)
	}
	if w*h < 2 {
		return nil, errors.New("noc: mesh must have at least 2 nodes")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := w * h
	t := &Topology{
		w:    w,
		h:    h,
		cfg:  cfg,
		inj:  make([]LinkID, n),
		ej:   make([]LinkID, n),
		mesh: make([]LinkID, n*int(numDirections)),
	}
	for i := range t.mesh {
		t.mesh[i] = NoLink
	}
	add := func(kind LinkKind, src, dst RouterID) LinkID {
		id := LinkID(len(t.links))
		t.links = append(t.links, Link{ID: id, Kind: kind, Src: src, Dst: dst})
		return id
	}
	for r := 0; r < n; r++ {
		t.inj[r] = add(Injection, RouterID(r), RouterID(r))
		t.ej[r] = add(Ejection, RouterID(r), RouterID(r))
	}
	for r := 0; r < n; r++ {
		x, y := r%w, r/w
		if x+1 < w {
			t.mesh[r*int(numDirections)+int(East)] = add(Mesh, RouterID(r), RouterID(r+1))
		}
		if x > 0 {
			t.mesh[r*int(numDirections)+int(West)] = add(Mesh, RouterID(r), RouterID(r-1))
		}
		if y+1 < h {
			t.mesh[r*int(numDirections)+int(North)] = add(Mesh, RouterID(r), RouterID(r+w))
		}
		if y > 0 {
			t.mesh[r*int(numDirections)+int(South)] = add(Mesh, RouterID(r), RouterID(r-w))
		}
	}
	return t, nil
}

// MustMesh is NewMesh that panics on error; intended for tests, examples
// and static configuration.
func MustMesh(w, h int, cfg RouterConfig) *Topology {
	t, err := NewMesh(w, h, cfg)
	if err != nil {
		panic(err)
	}
	return t
}

// Width returns the mesh width W.
func (t *Topology) Width() int { return t.w }

// Height returns the mesh height H.
func (t *Topology) Height() int { return t.h }

// NumNodes returns |Π| = W·H.
func (t *Topology) NumNodes() int { return t.w * t.h }

// NumRouters returns |Ξ| = W·H.
func (t *Topology) NumRouters() int { return t.w * t.h }

// NumLinks returns |Λ|, counting injection, ejection and mesh links.
func (t *Topology) NumLinks() int { return len(t.links) }

// Config returns the homogeneous router configuration.
func (t *Topology) Config() RouterConfig { return t.cfg }

// WithConfig returns a copy of the topology that shares the structural
// data (links, routes are identical) but uses a different router
// configuration. It is the cheap way to re-analyse the same network with
// a different buffer depth.
func (t *Topology) WithConfig(cfg RouterConfig) (*Topology, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	clone := *t
	clone.cfg = cfg
	return &clone, nil
}

// Routing returns the topology's dimension-order routing policy.
func (t *Topology) Routing() RoutingPolicy { return t.routing }

// WithRouting returns a copy of the topology using the given routing
// policy. Systems must be rebuilt against the new topology, as routes
// change.
func (t *Topology) WithRouting(p RoutingPolicy) (*Topology, error) {
	if p != XY && p != YX {
		return nil, fmt.Errorf("noc: unknown routing policy %d", uint8(p))
	}
	clone := *t
	clone.routing = p
	return &clone, nil
}

// Link returns the link with the given ID.
func (t *Topology) Link(id LinkID) Link {
	return t.links[id]
}

// Links returns all links of the network. The returned slice must not be
// modified.
func (t *Topology) Links() []Link { return t.links }

// InjectionLink returns the link from node n into its router.
func (t *Topology) InjectionLink(n NodeID) LinkID { return t.inj[n] }

// EjectionLink returns the link from node n's router to node n.
func (t *Topology) EjectionLink(n NodeID) LinkID { return t.ej[n] }

// MeshLink returns the mesh link leaving router r in direction d, or
// NoLink if r is at the boundary in that direction.
func (t *Topology) MeshLink(r RouterID, d Direction) LinkID {
	return t.mesh[int(r)*int(numDirections)+int(d)]
}

// Coord returns the (x, y) mesh coordinates of router r.
func (t *Topology) Coord(r RouterID) (x, y int) {
	return int(r) % t.w, int(r) / t.w
}

// RouterAt returns the router at mesh coordinates (x, y).
func (t *Topology) RouterAt(x, y int) RouterID {
	return RouterID(y*t.w + x)
}

// ContainsNode reports whether n is a valid node of this topology.
func (t *Topology) ContainsNode(n NodeID) bool {
	return n >= 0 && int(n) < t.NumNodes()
}

// String summarises the mesh shape and router configuration on one
// line, e.g. "mesh 4x4 (16 nodes, 80 links, buf=4 linkl=1 routl=0)".
func (t *Topology) String() string {
	return fmt.Sprintf("mesh %dx%d (%d nodes, %d links, buf=%d linkl=%d routl=%d)",
		t.w, t.h, t.NumNodes(), t.NumLinks(),
		t.cfg.BufDepth, t.cfg.LinkLatency, t.cfg.RouteLatency)
}
