package noc

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWithRouting(t *testing.T) {
	topo := MustMesh(4, 4, defaultCfg())
	if topo.Routing() != XY {
		t.Fatalf("default routing = %v, want XY", topo.Routing())
	}
	yx, err := topo.WithRouting(YX)
	if err != nil {
		t.Fatal(err)
	}
	if yx.Routing() != YX || topo.Routing() != XY {
		t.Error("WithRouting must not mutate the original")
	}
	if _, err := topo.WithRouting(RoutingPolicy(7)); err == nil {
		t.Error("unknown policy must be rejected")
	}
	for _, p := range []RoutingPolicy{XY, YX, RoutingPolicy(7)} {
		if p.String() == "" {
			t.Errorf("RoutingPolicy(%d).String() empty", uint8(p))
		}
	}
}

func TestYXRouteStructure(t *testing.T) {
	topo, err := MustMesh(4, 4, defaultCfg()).WithRouting(YX)
	if err != nil {
		t.Fatal(err)
	}
	// 0=(0,0) → 15=(3,3): Y first (north x3) then X (east x3).
	r := topo.MustRoute(0, 15)
	if r.Len() != 8 {
		t.Fatalf("|route| = %d, want 8", r.Len())
	}
	wantDst := []int{4, 8, 12, 13, 14, 15}
	for i, l := range r[1 : len(r)-1] {
		if got := int(topo.Link(l).Dst); got != wantDst[i] {
			t.Errorf("hop %d reaches router %d, want %d", i, got, wantDst[i])
		}
	}
}

// TestYXMirrorsXY: the YX route between two nodes visits the transposed
// routers of the XY route on the transposed mesh.
func TestYXMirrorsXY(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		w, h := 2+rng.Intn(6), 2+rng.Intn(6)
		xyT := MustMesh(w, h, defaultCfg())
		yxT, err := MustMesh(h, w, defaultCfg()).WithRouting(YX)
		if err != nil {
			t.Fatal(err)
		}
		src := rng.Intn(w * h)
		dst := rng.Intn(w*h - 1)
		if dst >= src {
			dst++
		}
		// Compare router sequences: XY on (w,h) from (sx,sy) to (dx,dy)
		// equals YX on (h,w) from (sy,sx) to (dy,dx) with coordinates
		// swapped.
		sx, sy := xyT.Coord(RouterID(src))
		dx, dy := xyT.Coord(RouterID(dst))
		xyRoute := xyT.MustRoute(NodeID(src), NodeID(dst))
		yxRoute := yxT.MustRoute(NodeID(sy+sx*h), NodeID(dy+dx*h))
		if xyRoute.Len() != yxRoute.Len() {
			t.Logf("lengths differ: %d vs %d", xyRoute.Len(), yxRoute.Len())
			return false
		}
		for i := 1; i < xyRoute.Len()-1; i++ {
			a := xyT.Link(xyRoute[i])
			b := yxT.Link(yxRoute[i])
			axx, axy := xyT.Coord(a.Dst)
			byx, byy := yxT.Coord(b.Dst)
			if axx != byy || axy != byx {
				t.Logf("hop %d: XY reaches (%d,%d), YX reaches (%d,%d)", i, axx, axy, byx, byy)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestYXRoutePropertiesHold: minimality and contiguous contention
// domains hold under YX exactly as under XY.
func TestYXRoutePropertiesHold(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		w, h := 2+rng.Intn(6), 2+rng.Intn(6)
		topo, err := MustMesh(w, h, defaultCfg()).WithRouting(YX)
		if err != nil {
			t.Fatal(err)
		}
		pick := func() (NodeID, NodeID) {
			s := rng.Intn(w * h)
			d := rng.Intn(w*h - 1)
			if d >= s {
				d++
			}
			return NodeID(s), NodeID(d)
		}
		s1, d1 := pick()
		s2, d2 := pick()
		a := topo.MustRoute(s1, d1)
		b := topo.MustRoute(s2, d2)
		sx, sy := topo.Coord(RouterID(s1))
		dx, dy := topo.Coord(RouterID(d1))
		if a.Len() != abs(sx-dx)+abs(sy-dy)+2 {
			return false
		}
		cd := ContentionDomain(a, b)
		return a.IsContiguousIn(cd) && b.IsContiguousIn(ContentionDomain(b, a))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
