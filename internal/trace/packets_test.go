package trace_test

import (
	"testing"

	"wormnoc/internal/noc"
	"wormnoc/internal/sim"
	"wormnoc/internal/trace"
	"wormnoc/internal/workload"
)

// TestPacketsCrossValidatesSimulator: packet records reconstructed from
// the trace must agree with the simulator's own accounting — completion
// counts, and latencies for packets whose release instants are known
// (offset 0, periodic).
func TestPacketsCrossValidatesSimulator(t *testing.T) {
	sys := workload.Didactic(2)
	events, res := captureTrace(t, sys, sim.Config{Duration: 15_000})
	recs, err := trace.Packets(sys, events)
	if err != nil {
		t.Fatal(err)
	}
	completed := make([]int, sys.NumFlows())
	worst := make([]noc.Cycles, sys.NumFlows())
	for i := range worst {
		worst[i] = -1
	}
	for _, r := range recs {
		if r.Completed < 0 {
			continue
		}
		completed[r.Flow]++
		// Release = packet id × period (offsets 0, no jitter).
		release := noc.Cycles(r.Packet) * sys.Flow(r.Flow).Period
		if r.Injected < release {
			t.Errorf("flow %d packet %d injected at %d before release %d",
				r.Flow, r.Packet, r.Injected, release)
		}
		if lat := r.Completed - release; lat > worst[r.Flow] {
			worst[r.Flow] = lat
		}
	}
	for i := 0; i < sys.NumFlows(); i++ {
		if completed[i] != res.Completed[i] {
			t.Errorf("flow %d: trace reconstructs %d completions, simulator reports %d",
				i, completed[i], res.Completed[i])
		}
		if worst[i] != res.WorstLatency[i] {
			t.Errorf("flow %d: trace-reconstructed worst %d, simulator reports %d",
				i, worst[i], res.WorstLatency[i])
		}
	}
}

// TestPacketsPartialDelivery: a packet cut off by the horizon reports
// Completed = -1.
func TestPacketsPartialDelivery(t *testing.T) {
	sys := workload.Didactic(2)
	// τ2 needs 324+ cycles; cut at 100 so it is mid-flight.
	events, res := captureTrace(t, sys, sim.Config{Duration: 100, MaxPacketsPerFlow: 1})
	if res.InFlight == 0 {
		t.Fatal("expected packets in flight at the horizon")
	}
	recs, err := trace.Packets(sys, events)
	if err != nil {
		t.Fatal(err)
	}
	sawPartial := false
	for _, r := range recs {
		if r.Completed < 0 {
			sawPartial = true
		}
	}
	if !sawPartial {
		t.Error("no partial packet reconstructed")
	}
}

func TestPacketsRejectsForeignFlows(t *testing.T) {
	sys := workload.Didactic(2)
	if _, err := trace.Packets(sys, []trace.Event{{Flow: 99}}); err == nil {
		t.Error("foreign flow index must fail")
	}
}
