// Package trace parses and visualises flit-transfer traces produced by
// the simulator (sim.Config.TraceWriter). Its ASCII Gantt rendering of
// per-link occupancy makes wormhole phenomena directly visible: the
// pipeline diagonal of an uncontended packet, preemption holes, and the
// backpressure/replay pattern of multi-point progressive blocking.
package trace

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"wormnoc/internal/noc"
	"wormnoc/internal/traffic"
)

// Event is one flit transfer: at Cycle, flit Flit of packet Packet of
// flow Flow started crossing Link.
type Event struct {
	Cycle  noc.Cycles
	Link   noc.LinkID
	Flow   int
	Packet int
	Flit   int
}

// Parse reads a CSV trace (cycle,link,flow,packet,flit per line, with an
// optional header line) and returns the events in input order.
func Parse(r io.Reader) ([]Event, error) {
	var events []Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if lineNo == 1 && strings.HasPrefix(line, "cycle") {
			continue // header
		}
		fields := strings.Split(line, ",")
		if len(fields) != 5 {
			return nil, fmt.Errorf("trace: line %d: want 5 fields, got %d", lineNo, len(fields))
		}
		var vals [5]int64
		for i, f := range fields {
			v, err := strconv.ParseInt(strings.TrimSpace(f), 10, 64)
			if err != nil {
				return nil, fmt.Errorf("trace: line %d field %d: %v", lineNo, i+1, err)
			}
			vals[i] = v
		}
		events = append(events, Event{
			Cycle:  noc.Cycles(vals[0]),
			Link:   noc.LinkID(vals[1]),
			Flow:   int(vals[2]),
			Packet: int(vals[3]),
			Flit:   int(vals[4]),
		})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	return events, nil
}

// LinkUtilisation returns, per link, the number of flit transfers in the
// trace.
func LinkUtilisation(events []Event) map[noc.LinkID]int {
	util := make(map[noc.LinkID]int)
	for _, e := range events {
		util[e.Link]++
	}
	return util
}

// GanttOptions configures RenderGantt.
type GanttOptions struct {
	// From/To bound the rendered cycle window; To == 0 means "after the
	// last event".
	From, To noc.Cycles
	// Links selects and orders the rows; nil renders every link that
	// carried traffic, ordered by LinkID.
	Links []noc.LinkID
	// Width is the maximum number of time columns (default 96). The
	// cycles-per-column scale is chosen to fit the window.
	Width int
}

// flowSymbol maps a flow index to a stable printable rune.
func flowSymbol(flow int) byte {
	const symbols = "0123456789abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ"
	if flow >= 0 && flow < len(symbols) {
		return symbols[flow]
	}
	return '?'
}

// RenderGantt renders per-link occupancy over time: one row per link,
// one column per bucket of cycles, showing which flow used the link
// ('.' idle, '*' several flows within one bucket). The system provides
// link labels; pass nil to label links by ID only.
func RenderGantt(sys *traffic.System, events []Event, opt GanttOptions) string {
	if len(events) == 0 {
		return "(empty trace)\n"
	}
	if opt.Width <= 0 {
		opt.Width = 96
	}
	from, to := opt.From, opt.To
	if to == 0 {
		for _, e := range events {
			if e.Cycle >= to {
				to = e.Cycle + 1
			}
		}
	}
	if to <= from {
		return "(empty window)\n"
	}
	window := to - from
	perCol := (window + noc.Cycles(opt.Width) - 1) / noc.Cycles(opt.Width)
	cols := int((window + perCol - 1) / perCol)

	links := opt.Links
	if links == nil {
		seen := map[noc.LinkID]bool{}
		for _, e := range events {
			if !seen[e.Link] {
				seen[e.Link] = true
				links = append(links, e.Link)
			}
		}
		sort.Slice(links, func(a, b int) bool { return links[a] < links[b] })
	}
	rowIdx := make(map[noc.LinkID]int, len(links))
	for i, l := range links {
		rowIdx[l] = i
	}
	rows := make([][]byte, len(links))
	for i := range rows {
		rows[i] = []byte(strings.Repeat(".", cols))
	}
	for _, e := range events {
		if e.Cycle < from || e.Cycle >= to {
			continue
		}
		ri, ok := rowIdx[e.Link]
		if !ok {
			continue
		}
		c := int((e.Cycle - from) / perCol)
		sym := flowSymbol(e.Flow)
		switch rows[ri][c] {
		case '.':
			rows[ri][c] = sym
		case sym:
		default:
			rows[ri][c] = '*'
		}
	}

	var sb strings.Builder
	fmt.Fprintf(&sb, "cycles %d..%d, %d cycle(s) per column; flows by symbol, '*' = several\n",
		from, to-1, perCol)
	for i, l := range links {
		label := fmt.Sprintf("link %d", int(l))
		if sys != nil {
			label = sys.Topology().Link(l).String()
		}
		fmt.Fprintf(&sb, "%-14s |%s|\n", label, rows[i])
	}
	return sb.String()
}

// FlowLegend renders the symbol legend for a system's flows.
func FlowLegend(sys *traffic.System) string {
	var sb strings.Builder
	sb.WriteString("legend:")
	for i := 0; i < sys.NumFlows(); i++ {
		name := sys.Flow(i).Name
		if name == "" {
			name = fmt.Sprintf("flow%d", i)
		}
		fmt.Fprintf(&sb, " %c=%s", flowSymbol(i), name)
	}
	sb.WriteByte('\n')
	return sb.String()
}
