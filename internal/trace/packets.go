package trace

import (
	"fmt"
	"sort"

	"wormnoc/internal/noc"
	"wormnoc/internal/traffic"
)

// PacketRecord reconstructs one packet's journey from a trace.
type PacketRecord struct {
	Flow, Packet int
	// Injected is the cycle the first flit entered the injection link.
	Injected noc.Cycles
	// Completed is the cycle the last flit arrived at the destination
	// (its ejection-transfer start plus the link latency), or -1 if the
	// packet did not finish within the trace.
	Completed noc.Cycles
	// Flits counts distinct flits seen on the ejection link.
	Flits int
}

// Packets reconstructs per-packet records from a trace: for each packet
// it reports when injection started and when (and whether) the last flit
// reached the destination. Records are ordered by flow, then packet id.
func Packets(sys *traffic.System, events []Event) ([]PacketRecord, error) {
	linkl := sys.Topology().Config().LinkLatency
	type key struct{ flow, pkt int }
	recs := make(map[key]*PacketRecord)
	for _, e := range events {
		if e.Flow < 0 || e.Flow >= sys.NumFlows() {
			return nil, fmt.Errorf("trace: event references flow %d outside the system", e.Flow)
		}
		route := sys.Route(e.Flow)
		k := key{e.Flow, e.Packet}
		r, ok := recs[k]
		if !ok {
			r = &PacketRecord{Flow: e.Flow, Packet: e.Packet, Injected: -1, Completed: -1}
			recs[k] = r
		}
		switch e.Link {
		case route.First():
			if r.Injected < 0 || e.Cycle < r.Injected {
				r.Injected = e.Cycle
			}
		case route.Last():
			r.Flits++
			if done := e.Cycle + linkl; done > r.Completed {
				r.Completed = done
			}
		}
	}
	out := make([]PacketRecord, 0, len(recs))
	for _, r := range recs {
		if r.Flits != sys.Flow(r.Flow).Length {
			r.Completed = -1 // partial delivery within the trace window
		}
		out = append(out, *r)
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Flow != out[b].Flow {
			return out[a].Flow < out[b].Flow
		}
		return out[a].Packet < out[b].Packet
	})
	return out, nil
}
