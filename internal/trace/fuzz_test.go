package trace_test

import (
	"strings"
	"testing"

	"wormnoc/internal/trace"
)

// FuzzParse checks the trace parser never panics and that accepted
// traces have as many events as non-empty, non-header lines.
func FuzzParse(f *testing.F) {
	f.Add("cycle,link,flow,packet,flit\n0,1,2,3,4\n")
	f.Add("0,1,2,3,4\n5,6,7,8,9\n")
	f.Add("")
	f.Add("a,b,c,d,e")
	f.Add("1,2,3\n")
	f.Add("-1,-2,-3,-4,-5\n")
	f.Fuzz(func(t *testing.T, in string) {
		if len(in) > 1<<16 {
			t.Skip()
		}
		events, err := trace.Parse(strings.NewReader(in))
		if err != nil {
			return
		}
		lines := 0
		for i, l := range strings.Split(in, "\n") {
			l = strings.TrimSpace(l)
			if l == "" || (i == 0 && strings.HasPrefix(l, "cycle")) {
				continue
			}
			lines++
		}
		if len(events) != lines {
			t.Fatalf("parsed %d events from %d data lines", len(events), lines)
		}
	})
}
