package trace_test

import (
	"bytes"
	"strings"
	"testing"

	"wormnoc/internal/noc"
	"wormnoc/internal/sim"
	"wormnoc/internal/trace"
	"wormnoc/internal/traffic"
	"wormnoc/internal/workload"
)

func captureTrace(t *testing.T, sys *traffic.System, cfg sim.Config) ([]trace.Event, *sim.Result) {
	t.Helper()
	var buf bytes.Buffer
	cfg.TraceWriter = &buf
	res, err := sim.Run(sys, cfg)
	if err != nil {
		t.Fatal(err)
	}
	events, err := trace.Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return events, res
}

func TestParse(t *testing.T) {
	in := "cycle,link,flow,packet,flit\n0,3,1,0,0\n1,4,1,0,1\n\n2,3,0,2,5\n"
	events, err := trace.Parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 3 {
		t.Fatalf("events = %d, want 3", len(events))
	}
	want := trace.Event{Cycle: 2, Link: 3, Flow: 0, Packet: 2, Flit: 5}
	if events[2] != want {
		t.Errorf("event = %+v, want %+v", events[2], want)
	}
}

func TestParseErrors(t *testing.T) {
	for name, in := range map[string]string{
		"short line": "1,2,3\n",
		"non-number": "a,b,c,d,e\n",
	} {
		if _, err := trace.Parse(strings.NewReader(in)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

// TestTraceMatchesSimulation: every flit of a completed packet crosses
// every link of its route exactly once, in route order.
func TestTraceMatchesSimulation(t *testing.T) {
	sys := workload.Didactic(2)
	events, res := captureTrace(t, sys, sim.Config{Duration: 8_000, MaxPacketsPerFlow: 1})
	if res.Completed[1] != 1 {
		t.Fatalf("τ2 did not complete: %+v", res.Completed)
	}
	// Count transfers per (flow, link).
	type key struct {
		flow int
		link noc.LinkID
	}
	count := map[key]int{}
	for _, e := range events {
		count[key{e.Flow, e.Link}]++
	}
	for i := 0; i < sys.NumFlows(); i++ {
		if res.Completed[i] != 1 {
			continue
		}
		for _, l := range sys.Route(i) {
			if got := count[key{i, l}]; got != sys.Flow(i).Length {
				t.Errorf("flow %d link %d: %d transfers, want %d", i, int(l), got, sys.Flow(i).Length)
			}
		}
	}
	// Per-flit ordering along the route.
	seen := map[[3]int]noc.Cycles{} // (flow, flit, order) -> cycle
	for _, e := range events {
		o := sys.Route(e.Flow).Order(e.Link)
		if o == 0 {
			t.Fatalf("flow %d crossed link %d not on its route", e.Flow, int(e.Link))
		}
		seen[[3]int{e.Flow, e.Flit, o}] = e.Cycle
	}
	for k, c := range seen {
		if k[2] > 1 {
			prev, ok := seen[[3]int{k[0], k[1], k[2] - 1}]
			if !ok {
				t.Fatalf("flow %d flit %d skipped hop %d", k[0], k[1], k[2]-1)
			}
			if prev >= c {
				t.Errorf("flow %d flit %d: hop %d at %d not after hop %d at %d",
					k[0], k[1], k[2], c, k[2]-1, prev)
			}
		}
	}
}

func TestLinkUtilisation(t *testing.T) {
	sys := workload.Didactic(2)
	events, _ := captureTrace(t, sys, sim.Config{Duration: 8_000, MaxPacketsPerFlow: 1})
	util := trace.LinkUtilisation(events)
	// τ2's injection link carries exactly its 198 flits.
	inj := sys.Route(1)[0]
	if util[inj] != 198 {
		t.Errorf("injection link of τ2 carried %d flits, want 198", util[inj])
	}
	total := 0
	for _, c := range util {
		total += c
	}
	if total != len(events) {
		t.Errorf("utilisation total %d != %d events", total, len(events))
	}
}

func TestRenderGantt(t *testing.T) {
	sys := workload.Didactic(2)
	events, _ := captureTrace(t, sys, sim.Config{Duration: 600})
	out := trace.RenderGantt(sys, events, trace.GanttOptions{Width: 60})
	if !strings.Contains(out, "cycles 0..") {
		t.Errorf("missing header:\n%s", out)
	}
	// All three flows appear.
	for _, sym := range []string{"0", "1", "2"} {
		if !strings.Contains(out, sym) {
			t.Errorf("flow symbol %s missing:\n%s", sym, out)
		}
	}
	// Row count = number of links with traffic.
	util := trace.LinkUtilisation(events)
	if got := strings.Count(out, "|\n"); got != len(util) {
		t.Errorf("rows = %d, want %d", got, len(util))
	}
	// Restricting the window and links works.
	link := sys.Route(1)[1]
	small := trace.RenderGantt(sys, events, trace.GanttOptions{
		From: 100, To: 200, Links: []noc.LinkID{link}, Width: 100,
	})
	if strings.Count(small, "|\n") != 1 || !strings.Contains(small, "1 cycle(s) per column") {
		t.Errorf("restricted render:\n%s", small)
	}
	// Degenerate inputs.
	if out := trace.RenderGantt(sys, nil, trace.GanttOptions{}); !strings.Contains(out, "empty trace") {
		t.Error("nil events should render a placeholder")
	}
	if out := trace.RenderGantt(sys, events, trace.GanttOptions{From: 10, To: 5}); !strings.Contains(out, "empty window") {
		t.Error("inverted window should render a placeholder")
	}
}

func TestFlowLegend(t *testing.T) {
	sys := workload.Didactic(2)
	legend := trace.FlowLegend(sys)
	if !strings.Contains(legend, "0=τ1") || !strings.Contains(legend, "2=τ3") {
		t.Errorf("legend = %q", legend)
	}
}
