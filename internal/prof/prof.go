// Package prof wires runtime/pprof into the command-line tools: a CPU
// profile recorded for the whole run and a heap profile snapshotted at
// exit. cmd/nocserve exposes the same data over HTTP (net/http/pprof on
// its -pprof mux); this package is the batch-tool equivalent.
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins profiling according to the two file paths (either may be
// empty to disable that profile). The returned stop function ends the
// CPU profile and writes the heap profile; it is idempotent, so callers
// can both defer it and invoke it explicitly before os.Exit.
func Start(cpuPath, memPath string) (stop func(), err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("prof: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("prof: starting CPU profile: %w", err)
		}
	}
	done := false
	return func() {
		if done {
			return
		}
		done = true
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintf(os.Stderr, "prof: %v\n", err)
				return
			}
			runtime.GC() // materialise final live-heap state
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "prof: writing heap profile: %v\n", err)
			}
			f.Close()
		}
	}, nil
}
