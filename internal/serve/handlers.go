package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"math/rand/v2"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"wormnoc/internal/canon"
	"wormnoc/internal/core"
	"wormnoc/internal/faultinject"
	"wormnoc/internal/parallel"
	"wormnoc/internal/traffic"
)

// RequestOptions mirrors core.Options on the wire (see docs/API.md).
// All fields are optional; the zero value selects the defaults the CLIs
// use.
type RequestOptions struct {
	// BufDepth overrides buf(Ξ) for IBN/SLA when > 0.
	BufDepth int `json:"buf,omitempty"`
	// Eq7 selects the un-clamped Equation-7 ablation (IBN only; unsafe).
	Eq7 bool `json:"eq7,omitempty"`
	// NoUpstreamFallback disables IBN's upstream-interference safety
	// fallback (ablation; unsafe).
	NoUpstreamFallback bool `json:"no_upstream_fallback,omitempty"`
	// MaxIterations caps the per-flow fixed-point iteration (0 = the
	// engine default).
	MaxIterations int `json:"max_iterations,omitempty"`
}

func (o *RequestOptions) toCore(m core.Method) core.Options {
	opt := core.Options{Method: m}
	if o != nil {
		opt.BufDepth = o.BufDepth
		opt.Eq7 = o.Eq7
		opt.NoUpstreamFallback = o.NoUpstreamFallback
		opt.MaxIterations = o.MaxIterations
	}
	return opt
}

// AnalyzeRequest is the body of POST /v1/analyze.
type AnalyzeRequest struct {
	// System is the platform + flow set, in the same schema as the CLIs'
	// flow-set files (internal/traffic.Document).
	System traffic.Document `json:"system"`
	// Method names the analysis: "SB", "SLA", "XLWX" or "IBN".
	Method string `json:"method"`
	// Options tunes the analysis (optional).
	Options *RequestOptions `json:"options,omitempty"`
	// TimeoutMs is this request's deadline in milliseconds; 0 selects
	// the server default, larger values are capped by it.
	TimeoutMs int64 `json:"timeout_ms,omitempty"`
}

// FlowResult is one flow's outcome inside an AnalyzeResponse.
type FlowResult struct {
	Name     string `json:"name,omitempty"`
	Priority int    `json:"priority"`
	// C is the zero-load latency (Equation 1), R the worst-case bound,
	// both in cycles. R is meaningful for statuses "schedulable" and
	// "deadline-miss" only.
	C        int64  `json:"c"`
	Deadline int64  `json:"deadline"`
	R        int64  `json:"r"`
	Status   string `json:"status"`
}

// AnalyzeResponse is the body of a successful POST /v1/analyze, and of
// each successful element of a batch.
type AnalyzeResponse struct {
	Method      string       `json:"method"`
	Schedulable bool         `json:"schedulable"`
	Flows       []FlowResult `json:"flows"`
	// Key is the canonical request hash the result is cached under.
	Key string `json:"key"`
	// SystemKey is the canonical hash of the system alone (no method or
	// options) — the handle POST /v1/whatif accepts as a base reference.
	// Empty inside what-if steps (edited systems are identified by their
	// chained Key, not pooled as warm engines).
	SystemKey string `json:"system_key,omitempty"`
	// Cached reports whether this response was served from the result
	// cache without re-analysis.
	Cached bool `json:"cached"`
	// ElapsedUs is the analysis wall time of the run that produced the
	// result (not of this request when Cached).
	ElapsedUs int64 `json:"elapsed_us"`
}

// BatchRequest is the body of POST /v1/batch: one method + options
// applied to many systems (the design-space-exploration shape: same
// analysis, varied topology/flow set).
type BatchRequest struct {
	Systems   []traffic.Document `json:"systems"`
	Method    string             `json:"method"`
	Options   *RequestOptions    `json:"options,omitempty"`
	TimeoutMs int64              `json:"timeout_ms,omitempty"`
}

// Per-item error codes of a BatchItem (see docs/API.md). They classify
// the failure so clients can decide what to do per item: re-submitting
// an "invalid_system" is pointless, a "timeout" may succeed with a
// larger budget, a "panic" should be reported with its message, and a
// "transient" already consumed the server-side retry budget.
const (
	errCodeInvalid   = "invalid_system"
	errCodeTimeout   = "timeout"
	errCodePanic     = "panic"
	errCodeTransient = "transient"
)

// BatchItem is one system's outcome inside a BatchResponse: either an
// embedded AnalyzeResponse or an error (with its classification code),
// never both. Items fail independently — a fault in one never discards
// its siblings' results.
type BatchItem struct {
	*AnalyzeResponse
	// Error is the human-readable failure (empty on success).
	Error string `json:"error,omitempty"`
	// Code classifies the failure: "invalid_system", "timeout", "panic"
	// or "transient" (empty on success).
	Code string `json:"code,omitempty"`
	// Retries counts the server-side retry attempts this item consumed
	// (transient faults only).
	Retries int `json:"retries,omitempty"`
}

// BatchResponse is the body of POST /v1/batch. Results are indexed like
// the request's systems. The response is 200 whenever at least one item
// produced a result (or no deadline expired); per-item failures are
// reported in place.
type BatchResponse struct {
	Results   []BatchItem `json:"results"`
	CacheHits int         `json:"cache_hits"`
	// Failed counts the items that carry an error instead of a result.
	Failed int `json:"failed"`
}

// MethodInfo describes one registered analysis at GET /v1/methods.
type MethodInfo struct {
	Name string `json:"name"`
	// Safe reports whether the analysis is a sound upper bound under
	// multi-point progressive blocking. Unsafe analyses are served for
	// comparison studies only.
	Safe        bool   `json:"safe"`
	Description string `json:"description"`
}

// methodCatalog carries the human-facing metadata of the analyses the
// core registry cannot know.
var methodCatalog = map[core.Method]MethodInfo{
	core.SB:   {Safe: false, Description: "Shi & Burns 2008; historic baseline, optimistic (unsafe) under multi-point progressive blocking"},
	core.SLA:  {Safe: false, Description: "simplified stage-level analysis; buffer-aware refinement of SB, still unsafe under MPB"},
	core.XLWX: {Safe: true, Description: "Xiong et al. 2017 with the interference-jitter fix (Eq. 5); safe state-of-the-art baseline"},
	core.IBN:  {Safe: true, Description: "the paper's buffer-aware analysis (Eqs. 6-8); never looser than XLWX"},
}

// decodeStrict decodes r into v, rejecting unknown fields and trailing
// garbage so schema typos fail loudly instead of silently analysing a
// default.
func decodeStrict(r io.Reader, v any) error {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	if dec.More() {
		return errors.New("trailing data after JSON body")
	}
	return nil
}

// isTransient reports whether err (or anything it wraps) marks itself
// as retryable via a Transient() bool method. Injected faults do;
// invalid systems, deadline expiries and panics do not.
func isTransient(err error) bool {
	var t interface{ Transient() bool }
	return errors.As(err, &t) && t.Transient()
}

// classifyError maps an analysis failure to its per-item error code and
// the HTTP status it carries when it is the whole response.
func classifyError(err error) (code string, status int) {
	var pe *parallel.PanicError
	var ie *core.InternalError
	switch {
	case errors.As(err, &pe), errors.As(err, &ie):
		return errCodePanic, http.StatusInternalServerError
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return errCodeTimeout, http.StatusGatewayTimeout
	case isTransient(err):
		return errCodeTransient, http.StatusInternalServerError
	default:
		return errCodeInvalid, http.StatusUnprocessableEntity
	}
}

// isInternalFault reports whether err consumes the method's error
// budget: panics and transient server-side faults do, client errors and
// deadline expiries do not.
func isInternalFault(err error) bool {
	if err == nil {
		return false
	}
	code, _ := classifyError(err)
	return code == errCodePanic || code == errCodeTransient
}

// itemErrorMessage renders one batch item's failure for the wire.
// Panic-coded faults mirror the wrap middleware's redaction: the raw
// panic value (and stack) stays in the server-side log, the client
// gets an opaque incident reference.
func itemErrorMessage(i int, code string, err error) string {
	if code != errCodePanic {
		return err.Error()
	}
	id := incidentID()
	log.Printf("serve: batch item %d fault (incident %s): %v", i, id, err)
	return fmt.Sprintf("internal error (incident %s)", id)
}

// analyzeOne runs (or cache-serves) one system+options pair. It is the
// shared core of /v1/analyze and each /v1/batch element. The returned
// status is the HTTP status the outcome maps to; resp is nil unless
// status is 200. Engine construction and the analysis itself run behind
// the core panic boundary, so a library invariant violation surfaces as
// a typed *core.InternalError, never a raw panic. An injected cache
// fault degrades to recompute-and-don't-store rather than failing the
// request.
func (s *Server) analyzeOne(ctx context.Context, doc traffic.Document, opt core.Options) (resp *AnalyzeResponse, status int, err error) {
	key := canon.Key(doc, opt)
	cacheOK := true
	if faultinject.Enabled() {
		if ferr := faultinject.Fire(ctx, faultinject.SiteServeCacheGet, key); ferr != nil {
			cacheOK = false
		}
	}
	if cacheOK {
		if cached, ok := s.results.Get(key); ok {
			s.met.recordCache(true)
			hit := *cached
			hit.Cached = true
			return &hit, http.StatusOK, nil
		}
	}
	s.met.recordCache(false)

	eng, err := s.engine(ctx, doc)
	if err != nil {
		_, status = classifyError(err)
		return nil, status, err
	}
	t0 := time.Now()
	res, err := eng.AnalyzeSafe(ctx, opt)
	if err != nil {
		_, status = classifyError(err)
		return nil, status, err
	}
	sys := eng.System()
	out := &AnalyzeResponse{
		Method:      opt.Method.String(),
		Schedulable: res.Schedulable,
		Flows:       make([]FlowResult, sys.NumFlows()),
		Key:         key,
		SystemKey:   canon.SystemKey(doc),
		ElapsedUs:   time.Since(t0).Microseconds(),
	}
	for i := range out.Flows {
		f := sys.Flow(i)
		out.Flows[i] = FlowResult{
			Name:     f.Name,
			Priority: f.Priority,
			C:        int64(sys.C(i)),
			Deadline: int64(f.Deadline),
			R:        int64(res.Flows[i].R),
			Status:   res.Flows[i].Status.String(),
		}
	}
	if cacheOK {
		putOK := true
		if faultinject.Enabled() {
			if ferr := faultinject.Fire(ctx, faultinject.SiteServeCachePut, key); ferr != nil {
				putOK = false
			}
		}
		if putOK {
			s.results.Put(key, out)
		}
	}
	return out, http.StatusOK, nil
}

// maxRetryBackoff caps the exponential retry backoff: it bounds the
// worst-case per-attempt delay and keeps the doubling below from
// overflowing time.Duration when ItemRetries is configured large.
const maxRetryBackoff = time.Second

// retryDelay returns the backoff before retry attempt (0-based): base
// doubled per attempt, clamped to maxRetryBackoff, jittered ±50% to
// avoid retry synchronisation.
func retryDelay(base time.Duration, attempt int) time.Duration {
	d := base
	for i := 0; i < attempt && d < maxRetryBackoff; i++ {
		d <<= 1
	}
	if d > maxRetryBackoff {
		d = maxRetryBackoff
	}
	return d/2 + time.Duration(rand.Int64N(int64(d)))
}

// analyzeWithRetry is analyzeOne plus the bounded retry policy for
// transient faults: up to cfg.ItemRetries re-attempts with doubling,
// ±50%-jittered backoff, aborted early by the context. The returned
// retries counts the re-attempts actually executed.
func (s *Server) analyzeWithRetry(ctx context.Context, doc traffic.Document, opt core.Options) (resp *AnalyzeResponse, status, retries int, err error) {
	for attempt := 0; ; attempt++ {
		resp, status, err = s.analyzeOne(ctx, doc, opt)
		if err == nil || attempt >= s.cfg.ItemRetries || !isTransient(err) || ctx.Err() != nil {
			return resp, status, attempt, err
		}
		t := time.NewTimer(retryDelay(s.cfg.RetryBackoff, attempt))
		select {
		case <-ctx.Done():
			t.Stop()
			return resp, status, attempt, err
		case <-t.C:
		}
		s.met.recordRetry()
	}
}

func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	var req AnalyzeRequest
	if err := decodeStrict(r.Body, &req); err != nil {
		writeError(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	m, err := core.ParseMethod(req.Method)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	opt := req.Options.toCore(m)

	// Cache hits are served without an admission slot: they do no
	// analysis work, and shedding them would defeat the cache.
	key := canon.Key(req.System, opt)
	if cached, ok := s.results.Get(key); ok {
		s.met.recordCache(true)
		hit := *cached
		hit.Cached = true
		writeJSON(w, http.StatusOK, &hit)
		return
	}

	// The circuit breaker sheds only the tripped method. The cache check
	// above runs before this gate, so an open breaker never 503s a
	// cache-servable /v1/analyze request. (Batches of an open method are
	// shed wholly, cache-servable items included — see handleBatch.)
	if !s.brk.allow(m.String()) {
		w.Header().Set("Retry-After", strconv.Itoa(int(s.cfg.BreakerCooldown/time.Second)+1))
		writeError(w, http.StatusServiceUnavailable, "analysis method %s is degraded (circuit open), retry later", m)
		return
	}
	// A request that passed the gate but never reaches record below —
	// shed at admission, or served from the cache inside analyzeOne —
	// must hand back the half-open probe slot it may hold, or the
	// breaker would wedge in half-open with no probe outcome arriving.
	recorded := false
	defer func() {
		if !recorded {
			s.brk.release(m.String())
		}
	}()

	release := s.admit()
	if release == nil {
		s.met.recordShed()
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "analysis capacity saturated (%d in flight), retry later", s.cfg.MaxInFlight)
		return
	}
	defer release()

	ctx, cancel := context.WithTimeout(r.Context(), s.requestTimeout(req.TimeoutMs))
	defer cancel()
	resp, status, _, err := s.analyzeWithRetry(ctx, req.System, opt)
	if err != nil || !resp.Cached {
		// Cache hits do no engine work and stay out of the error budget.
		s.brk.record(m.String(), isInternalFault(err))
		recorded = true
	}
	if err != nil {
		code, _ := classifyError(err)
		if code == errCodePanic {
			id := incidentID()
			log.Printf("serve: analysis fault (incident %s): %v", id, err)
			s.met.recordPanic()
			// The raw panic value stays in the server-side log; the
			// client sees the same redacted form the wrap middleware
			// uses for uncontained panics.
			writeJSON(w, status, errorResponse{
				Error:      fmt.Sprintf("internal error (incident %s)", id),
				IncidentID: id,
			})
			return
		}
		writeError(w, status, "%v", err)
		return
	}
	writeJSON(w, status, resp)
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req BatchRequest
	if err := decodeStrict(r.Body, &req); err != nil {
		writeError(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	if len(req.Systems) == 0 {
		writeError(w, http.StatusUnprocessableEntity, "batch names no systems")
		return
	}
	if len(req.Systems) > s.cfg.MaxBatchSystems {
		writeError(w, http.StatusUnprocessableEntity, "batch of %d systems exceeds the cap of %d", len(req.Systems), s.cfg.MaxBatchSystems)
		return
	}
	m, err := core.ParseMethod(req.Method)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	opt := req.Options.toCore(m)

	// A batch names a single method, so a tripped breaker sheds the
	// whole batch — and only batches (and analyses) of that method. The
	// gate runs before any per-item cache lookup, so cache-servable
	// items of an open method are shed too.
	if !s.brk.allow(m.String()) {
		w.Header().Set("Retry-After", strconv.Itoa(int(s.cfg.BreakerCooldown/time.Second)+1))
		writeError(w, http.StatusServiceUnavailable, "analysis method %s is degraded (circuit open), retry later", m)
		return
	}
	// As in handleAnalyze: a batch that records no run outcome (every
	// item cache-served, or shed at admission) must hand back a
	// half-open probe slot it may hold. Items record from worker
	// goroutines, hence the atomic.
	var recorded atomic.Bool
	defer func() {
		if !recorded.Load() {
			s.brk.release(m.String())
		}
	}()

	// One admission slot covers the whole batch; its internal fan-out is
	// bounded separately by BatchWorkers.
	release := s.admit()
	if release == nil {
		s.met.recordShed()
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "analysis capacity saturated (%d in flight), retry later", s.cfg.MaxInFlight)
		return
	}
	defer release()

	ctx, cancel := context.WithTimeout(r.Context(), s.requestTimeout(req.TimeoutMs))
	defer cancel()

	n := len(req.Systems)
	out := BatchResponse{Results: make([]BatchItem, n)}
	handled := make([]bool, n)
	// Every item succeeds, fails or times out independently: the
	// KeepGoing pool records per-index failures (including recovered
	// panics) instead of cancelling siblings, and each item consumes its
	// own retry budget for transient faults.
	runner := &parallel.Runner{Workers: s.cfg.BatchWorkers, KeepGoing: true}
	runErr := runner.RunContext(ctx, n, func(i int) error {
		if faultinject.Enabled() {
			if ferr := faultinject.Fire(ctx, faultinject.SiteServeBatchItem, strconv.Itoa(i)); ferr != nil {
				return ferr
			}
		}
		resp, _, retries, err := s.analyzeWithRetry(ctx, req.Systems[i], opt)
		if err != nil || !resp.Cached {
			s.brk.record(m.String(), isInternalFault(err))
			recorded.Store(true)
		}
		if err != nil {
			code, _ := classifyError(err)
			if code == errCodePanic {
				s.met.recordItemPanic()
			}
			out.Results[i] = BatchItem{Error: itemErrorMessage(i, code, err), Code: code, Retries: retries}
		} else {
			out.Results[i] = BatchItem{AnalyzeResponse: resp, Retries: retries}
		}
		handled[i] = true
		return nil
	})
	// Items the fn above never completed: a panic raised (or injected)
	// at the task boundary — recorded per index by the KeepGoing pool —
	// or a task never dispatched because the batch deadline expired.
	var te *parallel.TaskErrors
	if runErr != nil {
		errors.As(runErr, &te)
	}
	for i := range out.Results {
		if handled[i] {
			continue
		}
		ierr := te.Of(i)
		if ierr == nil {
			cause := ctx.Err()
			if cause == nil {
				cause = context.DeadlineExceeded
			}
			ierr = fmt.Errorf("batch item not run: %w", cause)
		}
		code, _ := classifyError(ierr)
		if code == errCodePanic {
			s.met.recordItemPanic()
		}
		// An internal fault surfacing at the task boundary consumes the
		// error budget exactly like the same fault raised inside
		// analyzeWithRetry. Items that never ran (deadline expired before
		// dispatch) had no run outcome and feed nothing into the window.
		if isInternalFault(ierr) {
			s.brk.record(m.String(), true)
			recorded.Store(true)
		}
		out.Results[i] = BatchItem{Error: itemErrorMessage(i, code, ierr), Code: code}
	}
	for i := range out.Results {
		if res := out.Results[i].AnalyzeResponse; res != nil {
			if res.Cached {
				out.CacheHits++
			}
		} else {
			out.Failed++
		}
	}
	// Batch-level 504 only when the deadline expired and *every* item
	// was lost; any partial success is a 200 with mixed results.
	if out.Failed == n && ctx.Err() != nil {
		writeError(w, http.StatusGatewayTimeout, "batch aborted, no item completed: %v", ctx.Err())
		return
	}
	writeJSON(w, http.StatusOK, &out)
}

func (s *Server) handleMethods(w http.ResponseWriter, r *http.Request) {
	ids := core.Methods()
	out := make([]MethodInfo, 0, len(ids))
	for _, id := range ids {
		info := methodCatalog[id]
		info.Name = id.String()
		out = append(out, info)
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	trips, shed := s.brk.counters()
	snap := s.met.snapshot(
		len(s.sem), s.cfg.MaxInFlight,
		s.results.Len(), s.cfg.ResultCacheSize,
		s.engines.Len(), s.cfg.EngineCacheSize,
		s.liveTelemetry(),
		trips, shed, s.brk.openMethods(),
	)
	// A coordinator's local node folds the fleet counters in, so one
	// /metrics scrape covers both the local engine pool and the cluster
	// (hedges, retries, rebalances, cluster_backends{state=...}).
	if s.cfg.ClusterStatus != nil {
		if cs := s.cfg.ClusterStatus(); cs != nil {
			snap["cluster"] = cs
		}
	}
	writeJSON(w, http.StatusOK, snap)
}

// handleHealthz reports liveness plus the degraded-readiness state of
// the circuit breaker: while one or more methods are tripped the server
// stays up (200) but flags itself degraded and names the shed methods,
// so orchestration can distinguish "partially serving" from "dead"
// (draining is still a 503 via the wrap gate). Running as a
// coordinator's local node (Config.ClusterStatus set), the body
// additionally reports per-backend and per-shard fleet state — a dead
// or breaker-open backend flags the coordinator degraded exactly like a
// tripped local method does.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	open := s.brk.openMethods()
	ok := len(open) == 0
	body := map[string]any{}
	if len(open) > 0 {
		body["degraded"] = true
		body["open_methods"] = open
	}
	if s.cfg.ClusterStatus != nil {
		if cs := s.cfg.ClusterStatus(); cs != nil {
			body["cluster"] = map[string]any{
				"backends":       cs.Backends,
				"shards_covered": cs.ShardsCovered,
				"states":         cs.States,
			}
			if !cs.Healthy() {
				ok = false
				body["degraded"] = true
			}
		}
	}
	body["ok"] = ok
	writeJSON(w, http.StatusOK, body)
}
