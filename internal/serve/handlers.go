package serve

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"time"

	"wormnoc/internal/canon"
	"wormnoc/internal/core"
	"wormnoc/internal/parallel"
	"wormnoc/internal/traffic"
)

// RequestOptions mirrors core.Options on the wire (see docs/API.md).
// All fields are optional; the zero value selects the defaults the CLIs
// use.
type RequestOptions struct {
	// BufDepth overrides buf(Ξ) for IBN/SLA when > 0.
	BufDepth int `json:"buf,omitempty"`
	// Eq7 selects the un-clamped Equation-7 ablation (IBN only; unsafe).
	Eq7 bool `json:"eq7,omitempty"`
	// NoUpstreamFallback disables IBN's upstream-interference safety
	// fallback (ablation; unsafe).
	NoUpstreamFallback bool `json:"no_upstream_fallback,omitempty"`
	// MaxIterations caps the per-flow fixed-point iteration (0 = the
	// engine default).
	MaxIterations int `json:"max_iterations,omitempty"`
}

func (o *RequestOptions) toCore(m core.Method) core.Options {
	opt := core.Options{Method: m}
	if o != nil {
		opt.BufDepth = o.BufDepth
		opt.Eq7 = o.Eq7
		opt.NoUpstreamFallback = o.NoUpstreamFallback
		opt.MaxIterations = o.MaxIterations
	}
	return opt
}

// AnalyzeRequest is the body of POST /v1/analyze.
type AnalyzeRequest struct {
	// System is the platform + flow set, in the same schema as the CLIs'
	// flow-set files (internal/traffic.Document).
	System traffic.Document `json:"system"`
	// Method names the analysis: "SB", "SLA", "XLWX" or "IBN".
	Method string `json:"method"`
	// Options tunes the analysis (optional).
	Options *RequestOptions `json:"options,omitempty"`
	// TimeoutMs is this request's deadline in milliseconds; 0 selects
	// the server default, larger values are capped by it.
	TimeoutMs int64 `json:"timeout_ms,omitempty"`
}

// FlowResult is one flow's outcome inside an AnalyzeResponse.
type FlowResult struct {
	Name     string `json:"name,omitempty"`
	Priority int    `json:"priority"`
	// C is the zero-load latency (Equation 1), R the worst-case bound,
	// both in cycles. R is meaningful for statuses "schedulable" and
	// "deadline-miss" only.
	C        int64  `json:"c"`
	Deadline int64  `json:"deadline"`
	R        int64  `json:"r"`
	Status   string `json:"status"`
}

// AnalyzeResponse is the body of a successful POST /v1/analyze, and of
// each successful element of a batch.
type AnalyzeResponse struct {
	Method      string       `json:"method"`
	Schedulable bool         `json:"schedulable"`
	Flows       []FlowResult `json:"flows"`
	// Key is the canonical request hash the result is cached under.
	Key string `json:"key"`
	// Cached reports whether this response was served from the result
	// cache without re-analysis.
	Cached bool `json:"cached"`
	// ElapsedUs is the analysis wall time of the run that produced the
	// result (not of this request when Cached).
	ElapsedUs int64 `json:"elapsed_us"`
}

// BatchRequest is the body of POST /v1/batch: one method + options
// applied to many systems (the design-space-exploration shape: same
// analysis, varied topology/flow set).
type BatchRequest struct {
	Systems   []traffic.Document `json:"systems"`
	Method    string             `json:"method"`
	Options   *RequestOptions    `json:"options,omitempty"`
	TimeoutMs int64              `json:"timeout_ms,omitempty"`
}

// BatchItem is one system's outcome inside a BatchResponse: either an
// embedded AnalyzeResponse or an error, never both.
type BatchItem struct {
	*AnalyzeResponse
	Error string `json:"error,omitempty"`
}

// BatchResponse is the body of POST /v1/batch. Results are indexed like
// the request's systems.
type BatchResponse struct {
	Results   []BatchItem `json:"results"`
	CacheHits int         `json:"cache_hits"`
}

// MethodInfo describes one registered analysis at GET /v1/methods.
type MethodInfo struct {
	Name string `json:"name"`
	// Safe reports whether the analysis is a sound upper bound under
	// multi-point progressive blocking. Unsafe analyses are served for
	// comparison studies only.
	Safe        bool   `json:"safe"`
	Description string `json:"description"`
}

// methodCatalog carries the human-facing metadata of the analyses the
// core registry cannot know.
var methodCatalog = map[core.Method]MethodInfo{
	core.SB:   {Safe: false, Description: "Shi & Burns 2008; historic baseline, optimistic (unsafe) under multi-point progressive blocking"},
	core.SLA:  {Safe: false, Description: "simplified stage-level analysis; buffer-aware refinement of SB, still unsafe under MPB"},
	core.XLWX: {Safe: true, Description: "Xiong et al. 2017 with the interference-jitter fix (Eq. 5); safe state-of-the-art baseline"},
	core.IBN:  {Safe: true, Description: "the paper's buffer-aware analysis (Eqs. 6-8); never looser than XLWX"},
}

// decodeStrict decodes r into v, rejecting unknown fields and trailing
// garbage so schema typos fail loudly instead of silently analysing a
// default.
func decodeStrict(r io.Reader, v any) error {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	if dec.More() {
		return errors.New("trailing data after JSON body")
	}
	return nil
}

// analyzeOne runs (or cache-serves) one system+options pair. It is the
// shared core of /v1/analyze and each /v1/batch element. The returned
// status is the HTTP status the outcome maps to; resp is nil unless
// status is 200.
func (s *Server) analyzeOne(ctx context.Context, doc traffic.Document, opt core.Options) (resp *AnalyzeResponse, status int, err error) {
	key := canon.Key(doc, opt)
	if cached, ok := s.results.Get(key); ok {
		s.met.recordCache(true)
		hit := *cached
		hit.Cached = true
		return &hit, http.StatusOK, nil
	}
	s.met.recordCache(false)

	eng, err := s.engine(doc)
	if err != nil {
		return nil, http.StatusUnprocessableEntity, err
	}
	t0 := time.Now()
	res, err := eng.AnalyzeContext(ctx, opt)
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
			return nil, http.StatusGatewayTimeout, err
		}
		return nil, http.StatusUnprocessableEntity, err
	}
	sys := eng.System()
	out := &AnalyzeResponse{
		Method:      opt.Method.String(),
		Schedulable: res.Schedulable,
		Flows:       make([]FlowResult, sys.NumFlows()),
		Key:         key,
		ElapsedUs:   time.Since(t0).Microseconds(),
	}
	for i := range out.Flows {
		f := sys.Flow(i)
		out.Flows[i] = FlowResult{
			Name:     f.Name,
			Priority: f.Priority,
			C:        int64(sys.C(i)),
			Deadline: int64(f.Deadline),
			R:        int64(res.Flows[i].R),
			Status:   res.Flows[i].Status.String(),
		}
	}
	s.results.Put(key, out)
	return out, http.StatusOK, nil
}

func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	var req AnalyzeRequest
	if err := decodeStrict(r.Body, &req); err != nil {
		writeError(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	m, err := core.ParseMethod(req.Method)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	opt := req.Options.toCore(m)

	// Cache hits are served without an admission slot: they do no
	// analysis work, and shedding them would defeat the cache.
	key := canon.Key(req.System, opt)
	if cached, ok := s.results.Get(key); ok {
		s.met.recordCache(true)
		hit := *cached
		hit.Cached = true
		writeJSON(w, http.StatusOK, &hit)
		return
	}

	release := s.admit()
	if release == nil {
		s.met.recordShed()
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "analysis capacity saturated (%d in flight), retry later", s.cfg.MaxInFlight)
		return
	}
	defer release()

	ctx, cancel := context.WithTimeout(r.Context(), s.requestTimeout(req.TimeoutMs))
	defer cancel()
	resp, status, err := s.analyzeOne(ctx, req.System, opt)
	if err != nil {
		writeError(w, status, "%v", err)
		return
	}
	writeJSON(w, status, resp)
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req BatchRequest
	if err := decodeStrict(r.Body, &req); err != nil {
		writeError(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	if len(req.Systems) == 0 {
		writeError(w, http.StatusUnprocessableEntity, "batch names no systems")
		return
	}
	if len(req.Systems) > s.cfg.MaxBatchSystems {
		writeError(w, http.StatusUnprocessableEntity, "batch of %d systems exceeds the cap of %d", len(req.Systems), s.cfg.MaxBatchSystems)
		return
	}
	m, err := core.ParseMethod(req.Method)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	opt := req.Options.toCore(m)

	// One admission slot covers the whole batch; its internal fan-out is
	// bounded separately by BatchWorkers.
	release := s.admit()
	if release == nil {
		s.met.recordShed()
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "analysis capacity saturated (%d in flight), retry later", s.cfg.MaxInFlight)
		return
	}
	defer release()

	ctx, cancel := context.WithTimeout(r.Context(), s.requestTimeout(req.TimeoutMs))
	defer cancel()

	out := BatchResponse{Results: make([]BatchItem, len(req.Systems))}
	runner := &parallel.Runner{Workers: s.cfg.BatchWorkers}
	// Per-item outcomes (including per-item analysis errors) land in the
	// result slice; the runner only aborts the fan-out when the shared
	// context dies, so one bad system cannot cancel its siblings.
	runErr := runner.RunContext(ctx, len(req.Systems), func(i int) error {
		resp, _, err := s.analyzeOne(ctx, req.Systems[i], opt)
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			out.Results[i] = BatchItem{Error: err.Error()}
			return nil
		}
		out.Results[i] = BatchItem{AnalyzeResponse: resp}
		return nil
	})
	if runErr != nil {
		writeError(w, http.StatusGatewayTimeout, "batch aborted: %v", runErr)
		return
	}
	for i := range out.Results {
		if res := out.Results[i].AnalyzeResponse; res != nil && res.Cached {
			out.CacheHits++
		}
	}
	writeJSON(w, http.StatusOK, &out)
}

func (s *Server) handleMethods(w http.ResponseWriter, r *http.Request) {
	ids := core.Methods()
	out := make([]MethodInfo, 0, len(ids))
	for _, id := range ids {
		info := methodCatalog[id]
		info.Name = id.String()
		out = append(out, info)
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	snap := s.met.snapshot(
		len(s.sem), s.cfg.MaxInFlight,
		s.results.Len(), s.cfg.ResultCacheSize,
		s.engines.Len(), s.cfg.EngineCacheSize,
		s.liveTelemetry(),
	)
	writeJSON(w, http.StatusOK, snap)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"ok": true})
}
