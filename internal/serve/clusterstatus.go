package serve

// This file defines the fleet-state reporting contract between the
// serving layer and the cluster coordinator (internal/cluster). A
// standalone worker knows nothing about the fleet; a coordinator
// injects a ClusterStatus provider via Config.ClusterStatus, and the
// server then folds per-backend and per-shard state into GET /healthz
// and a "cluster" section (including cluster_backends{state=...}
// counts) into GET /metrics. The provider lives here as a callback, not
// an import, so serve never depends on cluster (which depends on
// serve).

// BackendState names one backend's membership state as reported at
// /healthz and /metrics.
type BackendState string

// The backend membership states.
const (
	// BackendAlive: the backend passed its last health probe and is
	// routable.
	BackendAlive BackendState = "alive"
	// BackendDead: the backend failed enough consecutive probes (or
	// transport attempts) to be deterministically rebalanced away from.
	BackendDead BackendState = "dead"
	// BackendOpen: the backend is probe-alive but its circuit breaker is
	// open, so it is shed until the cooldown's half-open probe succeeds.
	BackendOpen BackendState = "open"
)

// BackendStatus is one backend's row in the coordinator's /healthz and
// /metrics fleet sections.
type BackendStatus struct {
	// Name is the backend's stable identifier (ring membership is keyed
	// by it).
	Name string `json:"name"`
	// URL is the backend's base URL.
	URL string `json:"url"`
	// State is the membership state ("alive", "dead" or "open").
	State BackendState `json:"state"`
	// ConsecutiveFailures counts probe/transport failures since the last
	// success (resets on success; DeadAfter of them mark the backend
	// dead).
	ConsecutiveFailures int `json:"consecutive_failures,omitempty"`
	// Shards is how many hash-ring shards the backend currently owns.
	Shards int `json:"shards"`
}

// ClusterStatus is the fleet snapshot a coordinator's status provider
// returns: the per-backend states, shard coverage, and the fan-out
// counters the chaos suite reconciles exactly against the fault
// injector.
type ClusterStatus struct {
	// Backends holds one row per configured backend, in membership
	// (name-sorted) order.
	Backends []BackendStatus `json:"backends"`
	// ShardsCovered is the fraction of ring shards with at least one
	// routable owner (1.0 = every shard has a live backend; 0 = full
	// local-degradation mode).
	ShardsCovered float64 `json:"shards_covered"`
	// States counts backends per state — the cluster_backends{state=...}
	// gauge.
	States map[BackendState]int `json:"cluster_backends"`
	// HedgesFired counts hedged second-try requests launched after the
	// latency-quantile delay.
	HedgesFired int64 `json:"hedges_fired"`
	// HedgeWins counts hedges whose response was used (the primary lost
	// the race and was cancelled).
	HedgeWins int64 `json:"hedge_wins"`
	// Retries counts transport-level re-attempts against further
	// replicas after transient/connection errors.
	Retries int64 `json:"retries"`
	// Rebalances counts deterministic ring rebalances: every transition
	// of a backend to dead or back to alive.
	Rebalances int64 `json:"rebalances"`
	// LocalFallbacks counts requests computed locally because no shard
	// owner was routable (the degradation ladder's last rung).
	LocalFallbacks int64 `json:"local_fallbacks"`
	// ProxiedShed counts requests shed by workers (429/503 proxied
	// through) plus coordinator-side sheds.
	ProxiedShed int64 `json:"proxied_shed"`
	// BreakerTrips counts per-backend circuit-breaker trips.
	BreakerTrips int64 `json:"breaker_trips"`
}

// Healthy reports whether every backend is alive (the fleet analogue of
// a clean method-breaker set): any dead or breaker-open backend flags
// the coordinator degraded at /healthz while it keeps serving.
func (cs *ClusterStatus) Healthy() bool {
	for _, b := range cs.Backends {
		if b.State != BackendAlive {
			return false
		}
	}
	return true
}
