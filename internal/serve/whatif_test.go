package serve

import (
	"encoding/json"
	"net/http"
	"testing"

	"wormnoc/internal/core"
	"wormnoc/internal/traffic"
)

// whatifChain is a representative edit chain over the didactic system:
// parameter edits, a structural swap, a re-mapping, an add and a remove.
func whatifChain() []DeltaSpec {
	return []DeltaSpec{
		{Kind: "period", Flow: 2, Cycles: 6_500},
		{Kind: "swap-priority", Flow: 0, Other: 1},
		{Kind: "remap", Flow: 1, Src: 0, Dst: 3},
		{Kind: "add-flow", NewFlow: &traffic.FlowSpec{Name: "extra", Priority: 4, Period: 2_000, Deadline: 2_000, Length: 16, Src: 2, Dst: 0}},
		{Kind: "remove-flow", Flow: 3},
		{Kind: "buf", BufDepth: 6},
	}
}

// TestWhatIfMatchesScratch pins the endpoint's core promise: every
// step's bounds are bit-identical to a from-scratch /v1/analyze of the
// correspondingly edited system.
func TestWhatIfMatchesScratch(t *testing.T) {
	ts := newTestServer(t, Config{})
	chain := whatifChain()
	resp, body := postJSON(t, ts.URL+"/v1/whatif", WhatIfRequest{
		System: ptr(didacticDoc()), Method: "IBN", Deltas: chain,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out WhatIfResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Failed != 0 || len(out.Steps) != len(chain) {
		t.Fatalf("chain did not complete: %+v", out)
	}
	if out.BaseKey == "" {
		t.Fatal("response names no base key")
	}

	// Replay the chain from scratch and analyse each prefix over HTTP.
	sys, err := didacticDoc().System()
	if err != nil {
		t.Fatal(err)
	}
	for i, spec := range chain {
		d, err := spec.toCore()
		if err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		sys, err = core.ApplyDelta(sys, d)
		if err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		_, scratchBody := postJSON(t, ts.URL+"/v1/analyze", AnalyzeRequest{
			System: sys.ToDocument(), Method: "IBN",
		})
		var scratch AnalyzeResponse
		if err := json.Unmarshal(scratchBody, &scratch); err != nil {
			t.Fatal(err)
		}
		step := out.Steps[i]
		if step.AnalyzeResponse == nil {
			t.Fatalf("step %d carries no result: %+v", i, step)
		}
		if step.Schedulable != scratch.Schedulable || len(step.Flows) != len(scratch.Flows) {
			t.Fatalf("step %d diverges from scratch: %+v vs %+v", i, step.AnalyzeResponse, scratch)
		}
		for j := range step.Flows {
			if step.Flows[j].R != scratch.Flows[j].R || step.Flows[j].Status != scratch.Flows[j].Status {
				t.Errorf("step %d flow %d: incremental R=%d (%s), scratch R=%d (%s)",
					i, j, step.Flows[j].R, step.Flows[j].Status, scratch.Flows[j].R, scratch.Flows[j].Status)
			}
		}
		if step.Key == "" || (i > 0 && step.Key == out.Steps[i-1].Key) {
			t.Errorf("step %d has no distinct chained key", i)
		}
	}
	if out.FullRuns < 1 || out.PartialRuns == 0 {
		t.Errorf("chain should mix one full and several partial runs: %+v", out)
	}
}

func TestWhatIfCacheHits(t *testing.T) {
	ts := newTestServer(t, Config{})
	req := WhatIfRequest{System: ptr(didacticDoc()), Method: "IBN", Deltas: whatifChain()}
	_, first := postJSON(t, ts.URL+"/v1/whatif", req)
	var out1 WhatIfResponse
	if err := json.Unmarshal(first, &out1); err != nil {
		t.Fatal(err)
	}
	if out1.CacheHits != 0 {
		t.Fatalf("fresh chain reports %d cache hits", out1.CacheHits)
	}
	_, second := postJSON(t, ts.URL+"/v1/whatif", req)
	var out2 WhatIfResponse
	if err := json.Unmarshal(second, &out2); err != nil {
		t.Fatal(err)
	}
	if out2.CacheHits != len(req.Deltas) {
		t.Fatalf("replayed chain hit the cache %d/%d times", out2.CacheHits, len(req.Deltas))
	}
	for i, step := range out2.Steps {
		if step.AnalyzeResponse == nil || !step.Cached {
			t.Errorf("replayed step %d not served from cache", i)
		}
		if step.Key != out1.Steps[i].Key {
			t.Errorf("step %d keys differ across identical requests", i)
		}
	}
	// A cache-hit chain runs no analysis at all.
	if out2.FullRuns != 0 || out2.PartialRuns != 0 {
		t.Errorf("cached chain still analysed: %+v", out2)
	}
}

func TestWhatIfBySystemKey(t *testing.T) {
	ts := newTestServer(t, Config{})
	// Unknown key: 404.
	resp, _ := postJSON(t, ts.URL+"/v1/whatif", WhatIfRequest{
		SystemKey: "deadbeef", Method: "IBN", Deltas: whatifChain()[:1],
	})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown system_key: status %d", resp.StatusCode)
	}
	// Analyse first; the response's system_key then addresses the warm
	// engine.
	_, body := postJSON(t, ts.URL+"/v1/analyze", AnalyzeRequest{System: didacticDoc(), Method: "IBN"})
	var ar AnalyzeResponse
	if err := json.Unmarshal(body, &ar); err != nil {
		t.Fatal(err)
	}
	if ar.SystemKey == "" {
		t.Fatal("analyze response names no system_key")
	}
	resp, body = postJSON(t, ts.URL+"/v1/whatif", WhatIfRequest{
		SystemKey: ar.SystemKey, Method: "IBN", Deltas: whatifChain(),
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out WhatIfResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Failed != 0 || len(out.Steps) != len(whatifChain()) {
		t.Fatalf("chain by system_key did not complete: %+v", out)
	}
	// The same chain inline must produce the same chained keys (the base
	// key derives from the system content, not from how it was named).
	_, body = postJSON(t, ts.URL+"/v1/whatif", WhatIfRequest{
		System: ptr(didacticDoc()), Method: "IBN", Deltas: whatifChain(),
	})
	var inline WhatIfResponse
	if err := json.Unmarshal(body, &inline); err != nil {
		t.Fatal(err)
	}
	if inline.BaseKey != out.BaseKey {
		t.Errorf("inline and by-key base keys differ: %s vs %s", inline.BaseKey, out.BaseKey)
	}
}

func TestWhatIfInvalidDeltaStopsChain(t *testing.T) {
	ts := newTestServer(t, Config{})
	deltas := []DeltaSpec{
		{Kind: "period", Flow: 0, Cycles: 1_500},
		{Kind: "period", Flow: 99, Cycles: 1_500}, // out of range
		{Kind: "period", Flow: 1, Cycles: 1_500},  // never reached
	}
	resp, body := postJSON(t, ts.URL+"/v1/whatif", WhatIfRequest{
		System: ptr(didacticDoc()), Method: "IBN", Deltas: deltas,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out WhatIfResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Steps) != 2 || out.Failed != 1 {
		t.Fatalf("chain should stop at the failing step: %+v", out)
	}
	if out.Steps[0].AnalyzeResponse == nil || out.Steps[0].Error != "" {
		t.Errorf("step 0 should have succeeded: %+v", out.Steps[0])
	}
	if out.Steps[1].Error == "" || out.Steps[1].Code != errCodeInvalid || out.Steps[1].AnalyzeResponse != nil {
		t.Errorf("step 1 should carry the invalid-delta error: %+v", out.Steps[1])
	}
	// Unknown kinds fail the same way, in their step.
	resp, body = postJSON(t, ts.URL+"/v1/whatif", WhatIfRequest{
		System: ptr(didacticDoc()), Method: "IBN",
		Deltas: []DeltaSpec{{Kind: "teleport", Flow: 0}},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Failed != 1 || len(out.Steps) != 1 || out.Steps[0].Code != errCodeInvalid {
		t.Fatalf("unknown kind should fail its step: %+v", out)
	}
}

func TestWhatIfRequestErrors(t *testing.T) {
	ts := newTestServer(t, Config{MaxWhatIfDeltas: 2})
	cases := []struct {
		name   string
		body   any
		status int
	}{
		{"no base", WhatIfRequest{Method: "IBN", Deltas: whatifChain()[:1]}, http.StatusUnprocessableEntity},
		{"two bases", WhatIfRequest{System: ptr(didacticDoc()), SystemKey: "x", Method: "IBN", Deltas: whatifChain()[:1]}, http.StatusUnprocessableEntity},
		{"no deltas", WhatIfRequest{System: ptr(didacticDoc()), Method: "IBN"}, http.StatusUnprocessableEntity},
		{"too many deltas", WhatIfRequest{System: ptr(didacticDoc()), Method: "IBN", Deltas: whatifChain()[:3]}, http.StatusUnprocessableEntity},
		{"bad method", WhatIfRequest{System: ptr(didacticDoc()), Method: "VOODOO", Deltas: whatifChain()[:1]}, http.StatusUnprocessableEntity},
		{"bad json", map[string]any{"system": 42}, http.StatusBadRequest},
	}
	for _, tc := range cases {
		resp, body := postJSON(t, ts.URL+"/v1/whatif", tc.body)
		if resp.StatusCode != tc.status {
			t.Errorf("%s: status %d (want %d): %s", tc.name, resp.StatusCode, tc.status, body)
		}
	}
}

func ptr[T any](v T) *T { return &v }
