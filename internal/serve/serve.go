// Package serve implements analysis-as-a-service: a JSON-over-HTTP
// layer over the analysis engine (internal/core) for design-space
// exploration clients that re-run near-identical analyses thousands of
// times (buffer-depth sweeps, priority orderings, mapping searches).
//
// Endpoints (documented in detail in docs/API.md):
//
//	POST /v1/analyze  — one system, one method: response-time bounds
//	POST /v1/batch    — many systems fanned out over a worker pool
//	POST /v1/whatif   — an edit chain against a base system, evaluated
//	                    incrementally on a delta-aware engine
//	GET  /v1/methods  — the registered analyses and their safety
//	GET  /metrics     — counters, cache hit ratio, latency percentiles
//	GET  /healthz     — liveness (also reports draining state)
//
// # Request lifecycle and production shape
//
// Every request is decoded strictly (unknown JSON fields are errors),
// then keyed by a canonical hash of (topology, router config, flow set,
// method, options) from internal/canon. A size-bounded LRU serves
// repeated requests without re-analysis; misses pass an admission
// controller — a semaphore that sheds load with 429 + Retry-After
// instead of queueing unboundedly — and run on a warm per-system
// core.Engine from a second LRU, so repeated analyses of one system
// reuse its interference sets and memo arenas. Per-request deadlines
// (the request's timeout_ms, capped by the server default) propagate as
// a context.Context into the engine's fixed-point loops; an expired
// deadline aborts mid-iteration with 504. Shutdown stops admitting new
// work (503) and drains in-flight analyses.
//
// # Concurrency
//
// A Server is a single object shared by all connections; every piece of
// mutable state (both LRUs, the metrics, the admission semaphore) is
// individually synchronised, and engines are themselves safe for
// concurrent runs. Handlers hold no locks while analysing.
package serve

import (
	"context"
	cryptorand "crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"wormnoc/internal/canon"
	"wormnoc/internal/core"
	"wormnoc/internal/faultinject"
	"wormnoc/internal/traffic"
)

// Config tunes a Server. The zero value selects production-reasonable
// defaults (see each field).
type Config struct {
	// MaxInFlight bounds concurrently executing analyses (cache misses
	// and batches). Further work is shed with 429. Default:
	// 2×GOMAXPROCS.
	MaxInFlight int
	// ResultCacheSize bounds the response LRU (entries). Default 4096.
	ResultCacheSize int
	// EngineCacheSize bounds the warm-engine LRU (entries; one engine
	// pins one system's interference sets in memory). Default 64.
	EngineCacheSize int
	// DefaultTimeout is applied when a request names no timeout_ms, and
	// caps any timeout_ms a client does name. Default 30s.
	DefaultTimeout time.Duration
	// MaxRequestBytes caps request bodies. Default 16 MiB.
	MaxRequestBytes int64
	// BatchWorkers bounds one batch's fan-out. Default GOMAXPROCS.
	BatchWorkers int
	// MaxBatchSystems caps the systems accepted per batch request
	// (larger batches get 422). Default 1024.
	MaxBatchSystems int
	// MaxWhatIfDeltas caps the edit chain accepted per what-if request
	// (longer chains get 422). Default 256.
	MaxWhatIfDeltas int
	// EnablePprof mounts net/http/pprof under /debug/pprof/.
	EnablePprof bool
	// ItemRetries bounds how often one analysis unit (a request, or one
	// batch item) is retried after a *transient* fault (errors exposing
	// Transient() true, e.g. injected faults). Permanent errors —
	// invalid systems, deadline expiries, panics — are never retried.
	// Default 2; negative disables retries.
	ItemRetries int
	// RetryBackoff is the base backoff before the first retry, doubled
	// per attempt and jittered ±50% to avoid retry synchronisation.
	// Default 2ms.
	RetryBackoff time.Duration
	// BreakerWindow is the per-method sliding window of recent run
	// outcomes the circuit breaker inspects. Default 64.
	BreakerWindow int
	// BreakerThreshold trips a method's breaker when at least this many
	// internal faults (panics, core.InternalError, transient faults)
	// sit in its window. Default 16.
	BreakerThreshold int
	// BreakerCooldown is how long a tripped method sheds before a probe
	// request is let through. Default 15s.
	BreakerCooldown time.Duration
	// ClusterStatus, when non-nil, marks this server as a fleet
	// coordinator's local node: /healthz gains a per-backend/per-shard
	// "cluster" section (and reports degraded while any backend is dead
	// or shed) and /metrics gains the cluster counters, including the
	// cluster_backends{state=...} gauge. Standalone workers leave it
	// nil. The callback must be safe for concurrent use.
	ClusterStatus func() *ClusterStatus
}

func (c Config) withDefaults() Config {
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 2 * runtime.GOMAXPROCS(0)
	}
	if c.ResultCacheSize <= 0 {
		c.ResultCacheSize = 4096
	}
	if c.EngineCacheSize <= 0 {
		c.EngineCacheSize = 64
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 30 * time.Second
	}
	if c.MaxRequestBytes <= 0 {
		c.MaxRequestBytes = 16 << 20
	}
	if c.BatchWorkers <= 0 {
		c.BatchWorkers = runtime.GOMAXPROCS(0)
	}
	if c.MaxBatchSystems <= 0 {
		c.MaxBatchSystems = 1024
	}
	if c.MaxWhatIfDeltas <= 0 {
		c.MaxWhatIfDeltas = 256
	}
	if c.ItemRetries == 0 {
		c.ItemRetries = 2
	}
	if c.ItemRetries < 0 {
		c.ItemRetries = 0
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 2 * time.Millisecond
	}
	if c.BreakerWindow <= 0 {
		c.BreakerWindow = 64
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = 16
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 15 * time.Second
	}
	return c
}

// Server is the analysis service. Create one with New, expose it with
// Handler, stop it with Shutdown. Safe for concurrent use.
type Server struct {
	cfg      Config
	results  *lruCache[*AnalyzeResponse]
	engines  *lruCache[*core.Engine]
	sem      chan struct{}
	met      *metrics
	brk      *breaker
	mux      *http.ServeMux
	draining atomic.Bool
	inflight sync.WaitGroup
	// enginesMu serialises engine construction so concurrent misses on
	// one system build its interference sets once, not once per caller.
	enginesMu sync.Mutex
}

// New builds a Server with the given configuration.
func New(cfg Config) *Server {
	s := &Server{
		cfg: cfg.withDefaults(),
		met: newMetrics(),
	}
	s.results = newLRU[*AnalyzeResponse](s.cfg.ResultCacheSize, nil)
	s.engines = newLRU[*core.Engine](s.cfg.EngineCacheSize, func(_ string, e *core.Engine) {
		// A nil engine can only reach the pool through a bug in the
		// build path, but a fault there must not take the eviction
		// path (and the whole server) down with it.
		if e == nil {
			return
		}
		s.met.retire(e.Telemetry())
	})
	s.sem = make(chan struct{}, s.cfg.MaxInFlight)
	s.brk = newBreaker(s.cfg.BreakerWindow, s.cfg.BreakerThreshold, s.cfg.BreakerCooldown)

	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/analyze", s.wrap("analyze", true, s.handleAnalyze))
	s.mux.HandleFunc("POST /v1/batch", s.wrap("batch", true, s.handleBatch))
	s.mux.HandleFunc("POST /v1/whatif", s.wrap("whatif", true, s.handleWhatIf))
	s.mux.HandleFunc("GET /v1/methods", s.wrap("methods", false, s.handleMethods))
	s.mux.HandleFunc("GET /metrics", s.wrap("metrics", false, s.handleMetrics))
	s.mux.HandleFunc("GET /healthz", s.wrap("healthz", false, s.handleHealthz))
	if s.cfg.EnablePprof {
		s.mux.HandleFunc("/debug/pprof/", pprof.Index)
		s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return s
}

// Handler returns the server's HTTP handler, suitable for http.Server.
func (s *Server) Handler() http.Handler { return s.mux }

// Shutdown makes the server refuse new requests with 503 and waits for
// in-flight ones to drain, or for ctx to expire. Combine with
// http.Server.Shutdown, which additionally drains connections.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// statusRecorder captures the status code a handler writes, for the
// per-status response counters and so the panic-recovery middleware
// knows whether a 500 can still be written.
type statusRecorder struct {
	http.ResponseWriter
	status int
	wrote  bool
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.wrote = true
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	r.wrote = true
	return r.ResponseWriter.Write(b)
}

// incidentID returns a fresh opaque identifier correlating a recovered
// panic's 500 response with the stack logged server-side.
func incidentID() string {
	var b [8]byte
	if _, err := cryptorand.Read(b[:]); err != nil {
		// crypto/rand never fails on supported platforms; fall back to
		// a time-derived id rather than crashing the recovery path.
		return fmt.Sprintf("inc-t%x", time.Now().UnixNano())
	}
	return "inc-" + hex.EncodeToString(b[:])
}

// wrap applies the request lifecycle shared by every endpoint: panic
// recovery (500 + incident ID — a handler fault never kills the
// process), in-flight tracking for graceful drain, the 503 gate while
// draining, body-size capping, and metrics (request/status counters;
// latency percentiles for the analysis endpoints when timed).
func (s *Server) wrap(endpoint string, timed bool, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		s.inflight.Add(1)
		defer s.inflight.Done()
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		defer func() { s.met.recordRequest(endpoint, rec.status) }()
		defer func() {
			if v := recover(); v != nil {
				id := incidentID()
				log.Printf("serve: panic in %s handler (incident %s): %v\n%s", endpoint, id, v, debug.Stack())
				s.met.recordPanic()
				if !rec.wrote {
					writeJSON(rec, http.StatusInternalServerError, errorResponse{
						Error:      fmt.Sprintf("internal error (incident %s)", id),
						IncidentID: id,
					})
				} else {
					// Headers are gone; the most we can do is record
					// the real outcome for the status counters.
					rec.status = http.StatusInternalServerError
				}
			}
		}()
		if s.draining.Load() {
			writeError(rec, http.StatusServiceUnavailable, "server is shutting down")
			return
		}
		if r.Body != nil {
			r.Body = http.MaxBytesReader(rec, r.Body, s.cfg.MaxRequestBytes)
		}
		t0 := time.Now()
		h(rec, r)
		if timed {
			s.met.recordLatency(time.Since(t0))
		}
	}
}

// admit tries to take an admission slot without queueing. The returned
// release func is nil when the server is saturated — the caller must
// then shed the request.
func (s *Server) admit() (release func()) {
	select {
	case s.sem <- struct{}{}:
		return func() { <-s.sem }
	default:
		return nil
	}
}

// engine returns the warm engine for the document's system, building
// (and caching) system + interference sets on first sight. Construction
// runs behind core.NewEngineSafe, so a panic while building the
// interference sets of an adversarial system surfaces as a typed
// *core.InternalError and never leaves a nil engine in the pool.
func (s *Server) engine(ctx context.Context, doc traffic.Document) (*core.Engine, error) {
	key := canon.SystemKey(doc)
	if e, ok := s.engines.Get(key); ok && e != nil {
		return e, nil
	}
	s.enginesMu.Lock()
	defer s.enginesMu.Unlock()
	if e, ok := s.engines.Get(key); ok && e != nil {
		return e, nil
	}
	if faultinject.Enabled() {
		if err := faultinject.Fire(ctx, faultinject.SiteServeEngineBuild, key); err != nil {
			return nil, err
		}
	}
	sys, err := doc.System()
	if err != nil {
		return nil, err
	}
	e, err := core.NewEngineSafe(sys)
	if err != nil {
		return nil, err
	}
	s.engines.Put(key, e)
	return e, nil
}

// liveTelemetry sums the telemetry of every engine currently pooled.
func (s *Server) liveTelemetry() core.Telemetry {
	var tel core.Telemetry
	for _, e := range s.engines.Values() {
		if e == nil {
			continue
		}
		tel.Add(e.Telemetry())
	}
	return tel
}

// requestTimeout resolves a request's timeout_ms against the server
// default: unset/non-positive selects the default, anything larger is
// capped by it.
func (s *Server) requestTimeout(timeoutMs int64) time.Duration {
	d := time.Duration(timeoutMs) * time.Millisecond
	if d <= 0 || d > s.cfg.DefaultTimeout {
		return s.cfg.DefaultTimeout
	}
	return d
}

// errorResponse is the JSON body of every non-2xx response. IncidentID
// is set on 500s from recovered panics so a client report can be
// correlated with the stack logged server-side.
type errorResponse struct {
	Error      string `json:"error"`
	IncidentID string `json:"incident_id,omitempty"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorResponse{Error: fmt.Sprintf(format, args...)})
}
