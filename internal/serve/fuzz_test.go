package serve

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"testing"
	"time"
)

// FuzzAnalyzeHandler drives arbitrary request bodies through the full
// decode → validate → analyze pipeline of POST /v1/analyze. The
// invariants: no panic escapes the handler stack (the fuzzer itself
// crashes on one), the status is a sane HTTP code, and every response —
// success or error — is valid JSON.
func FuzzAnalyzeHandler(f *testing.F) {
	valid, err := json.Marshal(AnalyzeRequest{System: didacticDoc(), Method: "IBN"})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add([]byte(``))
	f.Add([]byte(`{`))
	f.Add([]byte(`null`))
	f.Add([]byte(`{"system": {}, "method": "IBN"}`))
	f.Add([]byte(`{"system": {"mesh": {"width": 2, "height": 1, "buf": 1, "linkl": 1, "routl": 0}, "flows": []}, "method": "XLWX"}`))
	f.Add([]byte(`{"system": {"mesh": {"width": -1, "height": 0, "buf": -5, "linkl": 1, "routl": 0}, "flows": [{"priority": 1, "period": 10, "deadline": 10, "length": 1, "src": 0, "dst": 99}]}, "method": "SB"}`))
	f.Add([]byte(`{"system": {"mesh": {"width": 2, "height": 2, "buf": 1, "linkl": 1, "routl": 0}, "flows": [{"priority": 1, "period": 9223372036854775807, "deadline": 9223372036854775807, "length": 9223372036854775807, "src": 0, "dst": 3}]}, "method": "IBN", "options": {"max_iterations": 1073741824}, "timeout_ms": 9999999}`))
	f.Add([]byte(`{"system": {"mesh": {"width": 2, "height": 1, "buf": 1, "linkl": 1, "routl": 0}, "flows": [{"priority": 1, "period": 10, "deadline": 10, "length": 1, "src": 0, "dst": 1}]}, "method": "IBN"} trailing`))

	// A short server deadline keeps adversarial fixed points (huge
	// periods, tiny links) from stalling the fuzzer.
	srv := New(Config{DefaultTimeout: 200 * time.Millisecond, MaxRequestBytes: 1 << 20})
	mux := srv.Handler()

	f.Fuzz(func(t *testing.T, body []byte) {
		req := httptest.NewRequest("POST", "/v1/analyze", bytes.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, req)
		if rec.Code < 200 || rec.Code > 599 {
			t.Fatalf("status %d outside the HTTP range", rec.Code)
		}
		if !json.Valid(rec.Body.Bytes()) {
			t.Fatalf("status %d with a non-JSON body: %q", rec.Code, rec.Body.Bytes())
		}
	})
}
