package serve

import (
	"sort"
	"sync"
	"time"
)

// breakerState is the classic three-state circuit-breaker lifecycle.
type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

// breaker is a per-method error-budget circuit breaker. Each analysis
// method (SB, SLA, XLWX, IBN) carries its own sliding window of recent
// run outcomes; when the count of *internal* faults (recovered panics,
// core.InternalError, injected transient faults — never client errors
// or deadline expiries) in the window reaches the threshold, the method
// trips open and its requests are shed with 503 until the cooldown
// expires. A tripped method does not affect its siblings: XLWX keeps
// serving while IBN is open. After the cooldown one probe request is
// let through (half-open); success closes the breaker and clears the
// window, another internal fault re-opens it for a fresh cooldown.
// A probe that finishes without producing a run outcome — shed at
// admission, served entirely from the result cache — must hand its
// slot back via release, and a probe silent for a whole further
// cooldown forfeits the slot to the next request, so the breaker can
// never wedge in half-open.
//
// /healthz reports the open methods as a degraded-readiness state.
type breaker struct {
	mu        sync.Mutex
	window    int
	threshold int
	cooldown  time.Duration
	// now is replaceable for tests.
	now     func() time.Time
	methods map[string]*methodBreaker
	trips   int64
	shed    int64
}

type methodBreaker struct {
	// ring holds the last `window` outcomes (true = internal fault).
	ring      []bool
	idx, n    int
	fails     int
	state     breakerState
	openUntil time.Time
	// probing guards the half-open state: only one request probes.
	// probeStart is when that probe was admitted; a probe that reports
	// nothing for a whole cooldown forfeits the slot (see allow).
	probing    bool
	probeStart time.Time
}

func newBreaker(window, threshold int, cooldown time.Duration) *breaker {
	return &breaker{
		window:    window,
		threshold: threshold,
		cooldown:  cooldown,
		now:       time.Now,
		methods:   make(map[string]*methodBreaker),
	}
}

func (b *breaker) method(name string) *methodBreaker {
	m, ok := b.methods[name]
	if !ok {
		m = &methodBreaker{ring: make([]bool, b.window)}
		b.methods[name] = m
	}
	return m
}

// allow reports whether a request for the method may run. Shed requests
// (false) are counted.
func (b *breaker) allow(name string) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	m := b.method(name)
	switch m.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if b.now().Before(m.openUntil) {
			b.shed++
			return false
		}
		m.state = breakerHalfOpen
		m.probing = true
		m.probeStart = b.now()
		return true
	default: // half-open
		if m.probing {
			// Backstop against a leaked slot: a probe that has reported
			// nothing for a whole cooldown (its request died outside the
			// record/release paths) forfeits the slot to this request
			// instead of wedging the method in half-open.
			if b.now().Sub(m.probeStart) >= b.cooldown {
				m.probeStart = b.now()
				return true
			}
			b.shed++
			return false
		}
		m.probing = true
		m.probeStart = b.now()
		return true
	}
}

// release hands back a half-open probe slot without recording a run
// outcome. Callers that passed allow but finish without reaching
// record — shed at admission, or served entirely from the result
// cache — must call it, or the next probe would wait out the takeover
// timeout in allow.
func (b *breaker) release(name string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if m, ok := b.methods[name]; ok && m.state == breakerHalfOpen {
		m.probing = false
	}
}

// record feeds one run outcome into the method's window. internalFault
// marks server-side faults only; client errors and timeouts count as
// successes for error-budget purposes.
func (b *breaker) record(name string, internalFault bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	m := b.method(name)
	switch m.state {
	case breakerHalfOpen:
		m.probing = false
		if internalFault {
			m.state = breakerOpen
			m.openUntil = b.now().Add(b.cooldown)
			b.trips++
			return
		}
		// Probe succeeded: close with a clean window.
		m.state = breakerClosed
		for i := range m.ring {
			m.ring[i] = false
		}
		m.idx, m.n, m.fails = 0, 0, 0
		return
	case breakerOpen:
		// A straggler from before the trip; the window is moot.
		return
	}
	if m.n == len(m.ring) {
		if m.ring[m.idx] {
			m.fails--
		}
	} else {
		m.n++
	}
	m.ring[m.idx] = internalFault
	if internalFault {
		m.fails++
	}
	m.idx = (m.idx + 1) % len(m.ring)
	if m.fails >= b.threshold {
		m.state = breakerOpen
		m.openUntil = b.now().Add(b.cooldown)
		b.trips++
	}
}

// openMethods returns the names of methods currently not closed
// (open or probing half-open), sorted.
func (b *breaker) openMethods() []string {
	b.mu.Lock()
	defer b.mu.Unlock()
	var out []string
	for name, m := range b.methods {
		if m.state != breakerClosed {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// counters returns the cumulative trip and shed counts.
func (b *breaker) counters() (trips, shed int64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.trips, b.shed
}

// Breaker is the exported face of the per-key error-budget circuit
// breaker, for callers outside this package. The serving layer keys it
// by analysis method; the cluster coordinator (internal/cluster) reuses
// the identical lifecycle keyed by backend name, so a misbehaving
// backend is shed and probed exactly like a misbehaving method. Safe
// for concurrent use.
type Breaker struct {
	b *breaker
}

// NewBreaker builds a breaker with the given sliding window size, fault
// threshold and open-state cooldown (see the package's breaker doc for
// the full lifecycle).
func NewBreaker(window, threshold int, cooldown time.Duration) *Breaker {
	return &Breaker{b: newBreaker(window, threshold, cooldown)}
}

// Allow reports whether a request for the key may proceed; shed
// requests are counted.
func (b *Breaker) Allow(key string) bool { return b.b.allow(key) }

// Record feeds one outcome into the key's window; fault marks
// error-budget-consuming failures only.
func (b *Breaker) Record(key string, fault bool) { b.b.record(key, fault) }

// Release hands back a half-open probe slot taken by Allow when the
// caller finishes without a recordable outcome (e.g. a hedged request
// cancelled after losing its race).
func (b *Breaker) Release(key string) { b.b.release(key) }

// Open returns the keys whose breakers are currently not closed,
// sorted.
func (b *Breaker) Open() []string { return b.b.openMethods() }

// Counters returns the cumulative trip and shed counts.
func (b *Breaker) Counters() (trips, shed int64) { return b.b.counters() }
