package serve

import (
	"sort"
	"sync"
	"time"
)

// breakerState is the classic three-state circuit-breaker lifecycle.
type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

// breaker is a per-method error-budget circuit breaker. Each analysis
// method (SB, SLA, XLWX, IBN) carries its own sliding window of recent
// run outcomes; when the count of *internal* faults (recovered panics,
// core.InternalError, injected transient faults — never client errors
// or deadline expiries) in the window reaches the threshold, the method
// trips open and its requests are shed with 503 until the cooldown
// expires. A tripped method does not affect its siblings: XLWX keeps
// serving while IBN is open. After the cooldown one probe request is
// let through (half-open); success closes the breaker and clears the
// window, another internal fault re-opens it for a fresh cooldown.
//
// /healthz reports the open methods as a degraded-readiness state.
type breaker struct {
	mu        sync.Mutex
	window    int
	threshold int
	cooldown  time.Duration
	// now is replaceable for tests.
	now     func() time.Time
	methods map[string]*methodBreaker
	trips   int64
	shed    int64
}

type methodBreaker struct {
	// ring holds the last `window` outcomes (true = internal fault).
	ring      []bool
	idx, n    int
	fails     int
	state     breakerState
	openUntil time.Time
	// probing guards the half-open state: only one request probes.
	probing bool
}

func newBreaker(window, threshold int, cooldown time.Duration) *breaker {
	return &breaker{
		window:    window,
		threshold: threshold,
		cooldown:  cooldown,
		now:       time.Now,
		methods:   make(map[string]*methodBreaker),
	}
}

func (b *breaker) method(name string) *methodBreaker {
	m, ok := b.methods[name]
	if !ok {
		m = &methodBreaker{ring: make([]bool, b.window)}
		b.methods[name] = m
	}
	return m
}

// allow reports whether a request for the method may run. Shed requests
// (false) are counted.
func (b *breaker) allow(name string) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	m := b.method(name)
	switch m.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if b.now().Before(m.openUntil) {
			b.shed++
			return false
		}
		m.state = breakerHalfOpen
		m.probing = true
		return true
	default: // half-open
		if m.probing {
			b.shed++
			return false
		}
		m.probing = true
		return true
	}
}

// record feeds one run outcome into the method's window. internalFault
// marks server-side faults only; client errors and timeouts count as
// successes for error-budget purposes.
func (b *breaker) record(name string, internalFault bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	m := b.method(name)
	switch m.state {
	case breakerHalfOpen:
		m.probing = false
		if internalFault {
			m.state = breakerOpen
			m.openUntil = b.now().Add(b.cooldown)
			b.trips++
			return
		}
		// Probe succeeded: close with a clean window.
		m.state = breakerClosed
		for i := range m.ring {
			m.ring[i] = false
		}
		m.idx, m.n, m.fails = 0, 0, 0
		return
	case breakerOpen:
		// A straggler from before the trip; the window is moot.
		return
	}
	if m.n == len(m.ring) {
		if m.ring[m.idx] {
			m.fails--
		}
	} else {
		m.n++
	}
	m.ring[m.idx] = internalFault
	if internalFault {
		m.fails++
	}
	m.idx = (m.idx + 1) % len(m.ring)
	if m.fails >= b.threshold {
		m.state = breakerOpen
		m.openUntil = b.now().Add(b.cooldown)
		b.trips++
	}
}

// openMethods returns the names of methods currently not closed
// (open or probing half-open), sorted.
func (b *breaker) openMethods() []string {
	b.mu.Lock()
	defer b.mu.Unlock()
	var out []string
	for name, m := range b.methods {
		if m.state != breakerClosed {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// counters returns the cumulative trip and shed counts.
func (b *breaker) counters() (trips, shed int64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.trips, b.shed
}
