package serve_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"

	"wormnoc/internal/serve"
	"wormnoc/internal/workload"
)

// A client analyses the paper's didactic example (Table II) over HTTP:
// POST the system + method to /v1/analyze and read per-flow bounds back.
// The same request JSON works against a real `nocserve` deployment; the
// httptest server only exists so this example is compiler-checked.
func Example_analyzeEndpoint() {
	ts := httptest.NewServer(serve.New(serve.Config{}).Handler())
	defer ts.Close()

	request := serve.AnalyzeRequest{
		System:  workload.Didactic(2).ToDocument(),
		Method:  "IBN",
		Options: &serve.RequestOptions{BufDepth: 2},
	}
	payload, _ := json.Marshal(request)
	resp, err := http.Post(ts.URL+"/v1/analyze", "application/json", bytes.NewReader(payload))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()

	var out serve.AnalyzeResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		log.Fatal(err)
	}
	fmt.Println("status:", resp.StatusCode)
	fmt.Println("schedulable:", out.Schedulable)
	for _, f := range out.Flows {
		fmt.Printf("%s R=%d (%s)\n", f.Name, f.R, f.Status)
	}
	// Output:
	// status: 200
	// schedulable: true
	// τ1 R=62 (schedulable)
	// τ2 R=328 (schedulable)
	// τ3 R=348 (schedulable)
}

// Re-sending an identical request is served from the result cache: no
// re-analysis, and the response says so.
func Example_resultCache() {
	ts := httptest.NewServer(serve.New(serve.Config{}).Handler())
	defer ts.Close()

	payload, _ := json.Marshal(serve.AnalyzeRequest{
		System: workload.Didactic(2).ToDocument(),
		Method: "XLWX",
	})
	for i := 0; i < 2; i++ {
		resp, err := http.Post(ts.URL+"/v1/analyze", "application/json", bytes.NewReader(payload))
		if err != nil {
			log.Fatal(err)
		}
		var out serve.AnalyzeResponse
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			log.Fatal(err)
		}
		resp.Body.Close()
		fmt.Printf("request %d: R(τ3)=%d cached=%v\n", i+1, out.Flows[2].R, out.Cached)
	}
	// Output:
	// request 1: R(τ3)=460 cached=false
	// request 2: R(τ3)=460 cached=true
}

// A buffer-depth sweep as one batch call: the same flow set at several
// buffer depths, fanned out over the server's worker pool.
func Example_batchEndpoint() {
	ts := httptest.NewServer(serve.New(serve.Config{}).Handler())
	defer ts.Close()

	req := serve.BatchRequest{Method: "IBN"}
	for _, buf := range []int{2, 4, 10} {
		doc := workload.Didactic(buf).ToDocument()
		req.Systems = append(req.Systems, doc)
	}
	payload, _ := json.Marshal(req)
	resp, err := http.Post(ts.URL+"/v1/batch", "application/json", bytes.NewReader(payload))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()

	var out serve.BatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		log.Fatal(err)
	}
	for i, item := range out.Results {
		fmt.Printf("buf=%d R(τ3)=%d\n", []int{2, 4, 10}[i], item.Flows[2].R)
	}
	// Output:
	// buf=2 R(τ3)=348
	// buf=4 R(τ3)=360
	// buf=10 R(τ3)=396
}
