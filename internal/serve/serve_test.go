package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"wormnoc/internal/traffic"
	"wormnoc/internal/workload"
)

func newTestServer(t *testing.T, cfg Config) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(New(cfg).Handler())
	t.Cleanup(ts.Close)
	return ts
}

func didacticDoc() traffic.Document {
	return workload.Didactic(2).ToDocument()
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	payload, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

func getJSON(t *testing.T, url string, v any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if v != nil {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatal(err)
		}
	}
	return resp
}

// slowDoc builds a two-flow system whose lower-priority flow sits at the
// fixed-point convergence boundary (the direct interferer fully loads
// the shared link), so its iteration walks to the huge deadline in
// ~C2-sized steps: millions of iterations, ideal for exercising
// deadlines and admission control deterministically.
func slowDoc() traffic.Document {
	return traffic.Document{
		Mesh: traffic.MeshSpec{Width: 2, Height: 1, BufDepth: 2, LinkLatency: 1, RouteLatency: 0},
		Flows: []traffic.FlowSpec{
			{Name: "hog", Priority: 1, Period: 100, Deadline: 100, Length: 98, Src: 0, Dst: 1},
			{Name: "victim", Priority: 2, Period: 1 << 40, Deadline: 1 << 40, Length: 58, Src: 0, Dst: 1},
		},
	}
}

func TestAnalyzeDidactic(t *testing.T) {
	ts := newTestServer(t, Config{})
	resp, body := postJSON(t, ts.URL+"/v1/analyze", AnalyzeRequest{
		System: didacticDoc(), Method: "IBN",
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out AnalyzeResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if !out.Schedulable || out.Cached || out.Method != "IBN" {
		t.Fatalf("unexpected response: %+v", out)
	}
	// Table II, IBN at buf=2: R(τ3) = 348.
	if len(out.Flows) != 3 || out.Flows[2].R != 348 || out.Flows[2].Status != "schedulable" {
		t.Fatalf("didactic bounds wrong: %+v", out.Flows)
	}
	if out.Key == "" {
		t.Fatal("response carries no cache key")
	}
}

// The acceptance criterion: identical back-to-back requests hit the
// cache, visible both in the response and in the /metrics hit counter.
func TestAnalyzeCacheHit(t *testing.T) {
	ts := newTestServer(t, Config{})
	req := AnalyzeRequest{System: didacticDoc(), Method: "IBN", Options: &RequestOptions{BufDepth: 2}}

	_, first := postJSON(t, ts.URL+"/v1/analyze", req)
	resp, second := postJSON(t, ts.URL+"/v1/analyze", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, second)
	}
	var out1, out2 AnalyzeResponse
	if err := json.Unmarshal(first, &out1); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(second, &out2); err != nil {
		t.Fatal(err)
	}
	if out1.Cached {
		t.Fatal("first request claims to be cached")
	}
	if !out2.Cached {
		t.Fatal("identical back-to-back request missed the cache")
	}
	if out1.Key != out2.Key {
		t.Fatalf("keys differ: %s vs %s", out1.Key, out2.Key)
	}
	if out1.Flows[2].R != out2.Flows[2].R {
		t.Fatal("cached result differs from computed result")
	}

	var met struct {
		Cache struct {
			Hits   int64 `json:"hits"`
			Misses int64 `json:"misses"`
		} `json:"cache"`
	}
	getJSON(t, ts.URL+"/metrics", &met)
	if met.Cache.Hits != 1 || met.Cache.Misses != 1 {
		t.Fatalf("metrics cache counters: hits=%d misses=%d, want 1/1", met.Cache.Hits, met.Cache.Misses)
	}
}

// Equivalent options (formatting, defaulted fields) map to one cache
// entry via the canonical key.
func TestCacheKeyCanonicalisation(t *testing.T) {
	ts := newTestServer(t, Config{})
	_, b1 := postJSON(t, ts.URL+"/v1/analyze", AnalyzeRequest{System: didacticDoc(), Method: "ibn"})
	_, b2 := postJSON(t, ts.URL+"/v1/analyze", AnalyzeRequest{
		System: didacticDoc(), Method: "IBN", Options: &RequestOptions{MaxIterations: 1 << 20},
	})
	var out1, out2 AnalyzeResponse
	if err := json.Unmarshal(b1, &out1); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(b2, &out2); err != nil {
		t.Fatal(err)
	}
	if out1.Key != out2.Key || !out2.Cached {
		t.Fatalf("equivalent requests not deduplicated: %s vs %s (cached=%v)", out1.Key, out2.Key, out2.Cached)
	}
}

// The acceptance criterion: a 1ms deadline aborts the fixed-point
// iteration promptly with a context-cancellation error instead of
// running it to completion.
func TestAnalyzeDeadline(t *testing.T) {
	ts := newTestServer(t, Config{})
	t0 := time.Now()
	resp, body := postJSON(t, ts.URL+"/v1/analyze", AnalyzeRequest{
		System:    slowDoc(),
		Method:    "SB",
		Options:   &RequestOptions{MaxIterations: 1 << 30},
		TimeoutMs: 1,
	})
	elapsed := time.Since(t0)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d (want 504): %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "context deadline exceeded") {
		t.Fatalf("error is not a context cancellation: %s", body)
	}
	// The uncancelled run takes tens of milliseconds to seconds; "promptly"
	// means nowhere near that.
	if elapsed > 2*time.Second {
		t.Fatalf("cancellation took %v, not prompt", elapsed)
	}
}

func TestBadRequests(t *testing.T) {
	ts := newTestServer(t, Config{})
	for name, tc := range map[string]struct {
		body string
		want int
	}{
		"malformed json": {`{"system": `, http.StatusBadRequest},
		"unknown field":  {`{"system": {}, "method": "IBN", "wat": 1}`, http.StatusBadRequest},
		"unknown method": {`{"system": {"mesh": {"width": 2, "height": 1, "buf": 1, "linkl": 1, "routl": 0}, "flows": [{"priority": 1, "period": 10, "deadline": 10, "length": 1, "src": 0, "dst": 1}]}, "method": "FOO"}`, http.StatusUnprocessableEntity},
		"invalid system": {`{"system": {"mesh": {"width": 0, "height": 0, "buf": 1, "linkl": 1, "routl": 0}, "flows": [{"priority": 1, "period": 10, "deadline": 10, "length": 1, "src": 0, "dst": 1}]}, "method": "IBN"}`, http.StatusUnprocessableEntity},
		"empty batch":    {`{"systems": [], "method": "IBN"}`, http.StatusUnprocessableEntity},
	} {
		url := ts.URL + "/v1/analyze"
		if strings.Contains(tc.body, "systems") {
			url = ts.URL + "/v1/batch"
		}
		resp, err := http.Post(url, "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		var e errorResponse
		if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
			t.Fatalf("%s: non-JSON error body: %v", name, err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status %d, want %d (error %q)", name, resp.StatusCode, tc.want, e.Error)
		}
		if e.Error == "" {
			t.Errorf("%s: empty error message", name)
		}
	}
}

// Saturated admission control sheds with 429 + Retry-After instead of
// queueing. The semaphore is filled directly to keep the test
// deterministic.
func TestAdmissionControlSheds(t *testing.T) {
	srv := New(Config{MaxInFlight: 2})
	srv.sem <- struct{}{}
	srv.sem <- struct{}{}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, body := postJSON(t, ts.URL+"/v1/analyze", AnalyzeRequest{System: didacticDoc(), Method: "IBN"})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d (want 429): %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	var met struct {
		Shed int64 `json:"shed"`
	}
	getJSON(t, ts.URL+"/metrics", &met)
	if met.Shed != 1 {
		t.Fatalf("shed counter = %d, want 1", met.Shed)
	}

	// Cache hits must still be served while saturated: free a slot, warm
	// the cache, re-fill, and re-request.
	<-srv.sem
	resp, _ = postJSON(t, ts.URL+"/v1/analyze", AnalyzeRequest{System: didacticDoc(), Method: "IBN"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warming request failed with %d", resp.StatusCode)
	}
	srv.sem <- struct{}{}
	resp, body = postJSON(t, ts.URL+"/v1/analyze", AnalyzeRequest{System: didacticDoc(), Method: "IBN"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cache hit was shed: status %d: %s", resp.StatusCode, body)
	}
	var out AnalyzeResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if !out.Cached {
		t.Fatal("expected a cached response while saturated")
	}
}

func TestBatch(t *testing.T) {
	ts := newTestServer(t, Config{})
	// Warm the cache with the didactic system.
	postJSON(t, ts.URL+"/v1/analyze", AnalyzeRequest{System: didacticDoc(), Method: "XLWX"})

	other := didacticDoc()
	other.Mesh.BufDepth = 10
	bad := didacticDoc()
	bad.Flows[0].Deadline = bad.Flows[0].Period + 1 // invalid: D > T
	resp, body := postJSON(t, ts.URL+"/v1/batch", BatchRequest{
		Systems: []traffic.Document{didacticDoc(), other, bad},
		Method:  "XLWX",
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out BatchResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != 3 {
		t.Fatalf("got %d results, want 3", len(out.Results))
	}
	if out.Results[0].AnalyzeResponse == nil || !out.Results[0].Cached {
		t.Fatalf("warmed system not served from cache: %+v", out.Results[0])
	}
	if out.Results[1].AnalyzeResponse == nil || out.Results[1].Error != "" {
		t.Fatalf("valid system failed: %+v", out.Results[1])
	}
	// XLWX ignores buffer depth, but the system differs, so the bounds
	// must match the didactic XLWX values anyway (R(τ3) = 460).
	if r := out.Results[1].Flows[2].R; r != 460 {
		t.Fatalf("batch XLWX R(τ3) = %d, want 460", r)
	}
	if out.Results[2].AnalyzeResponse != nil || out.Results[2].Error == "" {
		t.Fatalf("invalid system did not error: %+v", out.Results[2])
	}
	if out.CacheHits != 1 {
		t.Fatalf("cache_hits = %d, want 1", out.CacheHits)
	}
}

func TestMethodsEndpoint(t *testing.T) {
	ts := newTestServer(t, Config{})
	var out []MethodInfo
	resp := getJSON(t, ts.URL+"/v1/methods", &out)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	byName := map[string]MethodInfo{}
	for _, m := range out {
		byName[m.Name] = m
	}
	for _, want := range []string{"SB", "SLA", "XLWX", "IBN"} {
		if _, ok := byName[want]; !ok {
			t.Fatalf("method %s missing from %v", want, out)
		}
	}
	if byName["SB"].Safe || !byName["IBN"].Safe {
		t.Fatalf("safety flags wrong: %v", out)
	}
	for _, m := range out {
		if m.Description == "" {
			t.Errorf("method %s has no description", m.Name)
		}
	}
}

func TestMetricsShape(t *testing.T) {
	ts := newTestServer(t, Config{})
	postJSON(t, ts.URL+"/v1/analyze", AnalyzeRequest{System: didacticDoc(), Method: "IBN"})
	postJSON(t, ts.URL+"/v1/analyze", AnalyzeRequest{System: didacticDoc(), Method: "IBN"})

	var met struct {
		Requests  map[string]int64 `json:"requests"`
		Responses map[string]int64 `json:"responses"`
		Latency   struct {
			Count int64 `json:"count"`
			P50   int64 `json:"p50"`
			P99   int64 `json:"p99"`
		} `json:"latency_us"`
		Telemetry struct {
			Runs       int64 `json:"runs"`
			Iterations int64 `json:"iterations"`
		} `json:"telemetry"`
		Engines struct {
			Entries int `json:"entries"`
		} `json:"engines"`
	}
	getJSON(t, ts.URL+"/metrics", &met)
	if met.Requests["analyze"] != 2 {
		t.Fatalf("analyze request counter = %d, want 2", met.Requests["analyze"])
	}
	if met.Responses["200"] != 2 {
		t.Fatalf("200 counter = %d, want 2: %v", met.Responses["200"], met.Responses)
	}
	if met.Latency.Count != 2 || met.Latency.P99 < met.Latency.P50 {
		t.Fatalf("latency summary wrong: %+v", met.Latency)
	}
	if met.Telemetry.Runs != 1 || met.Telemetry.Iterations == 0 {
		t.Fatalf("engine telemetry not aggregated: %+v", met.Telemetry)
	}
	if met.Engines.Entries != 1 {
		t.Fatalf("engine pool entries = %d, want 1", met.Engines.Entries)
	}
}

// Engine-pool eviction must not lose telemetry: the retired aggregate
// keeps counting.
func TestEngineEvictionRetainsTelemetry(t *testing.T) {
	ts := newTestServer(t, Config{EngineCacheSize: 1})
	a := didacticDoc()
	b := didacticDoc()
	b.Mesh.BufDepth = 10
	postJSON(t, ts.URL+"/v1/analyze", AnalyzeRequest{System: a, Method: "IBN"})
	postJSON(t, ts.URL+"/v1/analyze", AnalyzeRequest{System: b, Method: "IBN"}) // evicts a's engine

	var met struct {
		Telemetry struct {
			Runs int64 `json:"runs"`
		} `json:"telemetry"`
		Engines struct {
			Entries int `json:"entries"`
		} `json:"engines"`
	}
	getJSON(t, ts.URL+"/metrics", &met)
	if met.Engines.Entries != 1 {
		t.Fatalf("engine pool entries = %d, want 1", met.Engines.Entries)
	}
	if met.Telemetry.Runs != 2 {
		t.Fatalf("telemetry runs = %d after eviction, want 2", met.Telemetry.Runs)
	}
}

func TestGracefulShutdown(t *testing.T) {
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("drain failed: %v", err)
	}
	resp, body := postJSON(t, ts.URL+"/v1/analyze", AnalyzeRequest{System: didacticDoc(), Method: "IBN"})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d after shutdown (want 503): %s", resp.StatusCode, body)
	}
}

func TestMethodNotAllowed(t *testing.T) {
	ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/v1/analyze")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/analyze returned %d, want 405", resp.StatusCode)
	}
}

func TestLRUCache(t *testing.T) {
	var evicted []string
	c := newLRU[int](2, func(k string, v int) { evicted = append(evicted, fmt.Sprintf("%s=%d", k, v)) })
	c.Put("a", 1)
	c.Put("b", 2)
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a missing")
	}
	c.Put("c", 3) // evicts b (a was refreshed by Get)
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted")
	}
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a should have survived (recently used)")
	}
	if len(evicted) != 1 || evicted[0] != "b=2" {
		t.Fatalf("eviction callback saw %v, want [b=2]", evicted)
	}
	if c.Len() != 2 {
		t.Fatalf("len = %d, want 2", c.Len())
	}
	vals := c.Values()
	if len(vals) != 2 {
		t.Fatalf("values = %v", vals)
	}
}
