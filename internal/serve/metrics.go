package serve

import (
	"sort"
	"sync"
	"time"

	"wormnoc/internal/core"
)

// latencyWindow is how many recent analyze/batch latencies the
// percentile estimator keeps. Power of two, used as a ring buffer.
const latencyWindow = 1024

// metrics holds the server's observability counters, exposed as JSON at
// GET /metrics. All fields are guarded by mu; the handlers update them
// through the record* methods, which are safe for concurrent use.
type metrics struct {
	mu        sync.Mutex
	start     time.Time
	requests  map[string]int64 // per endpoint
	responses map[int]int64    // per HTTP status code
	shed      int64            // 429s from admission control
	hits      int64            // result-cache hits
	misses    int64            // result-cache misses
	// lat is a ring of the most recent analyze/batch latencies (µs).
	lat  [latencyWindow]int64
	latN int64 // total recorded, ring index = latN % latencyWindow
	// Fault-containment counters: request-level recovered panics (500 +
	// incident), per-batch-item recovered panics, and transient-fault
	// retry attempts. Chaos tests reconcile these exactly against the
	// fault injector's fired counts.
	panics     int64
	itemPanics int64
	retries    int64
	// retired accumulates the telemetry of evicted engines so the
	// aggregate at /metrics never shrinks when the engine pool rotates.
	retired core.Telemetry
}

func newMetrics() *metrics {
	return &metrics{
		start:     time.Now(),
		requests:  make(map[string]int64),
		responses: make(map[int]int64),
	}
}

func (m *metrics) recordRequest(endpoint string, status int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.requests[endpoint]++
	m.responses[status]++
}

func (m *metrics) recordLatency(d time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.lat[m.latN%latencyWindow] = d.Microseconds()
	m.latN++
}

func (m *metrics) recordShed() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.shed++
}

func (m *metrics) recordCache(hit bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if hit {
		m.hits++
	} else {
		m.misses++
	}
}

func (m *metrics) recordPanic() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.panics++
}

func (m *metrics) recordItemPanic() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.itemPanics++
}

func (m *metrics) recordRetry() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.retries++
}

func (m *metrics) retire(tel core.Telemetry) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.retired.Add(tel)
}

// percentile returns the p-th percentile (0 < p <= 100) of sorted,
// using the nearest-rank method.
func percentile(sorted []int64, p int) int64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := (p*len(sorted) + 99) / 100
	if rank < 1 {
		rank = 1
	}
	return sorted[rank-1]
}

// snapshot renders the counters into the wire form of GET /metrics.
// liveTel is the summed telemetry of the engines currently in the pool;
// the retired aggregate is added so evictions never lose counters.
// breakerTrips/breakerShed/openMethods come from the circuit breaker.
func (m *metrics) snapshot(inflight, maxInflight, cacheLen, cacheCap, engineLen, engineCap int, liveTel core.Telemetry, breakerTrips, breakerShed int64, openMethods []string) map[string]any {
	m.mu.Lock()
	defer m.mu.Unlock()

	n := m.latN
	if n > latencyWindow {
		n = latencyWindow
	}
	lat := make([]int64, n)
	copy(lat, m.lat[:n])
	sort.Slice(lat, func(a, b int) bool { return lat[a] < lat[b] })

	hitRatio := 0.0
	if m.hits+m.misses > 0 {
		hitRatio = float64(m.hits) / float64(m.hits+m.misses)
	}
	requests := make(map[string]int64, len(m.requests))
	for k, v := range m.requests {
		requests[k] = v
	}
	responses := make(map[int]int64, len(m.responses))
	for k, v := range m.responses {
		responses[k] = v
	}
	tel := m.retired
	tel.Add(liveTel)

	var maxLat int64
	if len(lat) > 0 {
		maxLat = lat[len(lat)-1]
	}
	return map[string]any{
		"uptime_s":     int64(time.Since(m.start).Seconds()),
		"inflight":     inflight,
		"max_inflight": maxInflight,
		"requests":     requests,
		"responses":    responses,
		"shed":         m.shed,
		"cache": map[string]any{
			"hits":      m.hits,
			"misses":    m.misses,
			"hit_ratio": hitRatio,
			"entries":   cacheLen,
			"capacity":  cacheCap,
		},
		"engines": map[string]any{
			"entries":  engineLen,
			"capacity": engineCap,
		},
		"faults": map[string]any{
			"panics":        m.panics,
			"item_panics":   m.itemPanics,
			"retries":       m.retries,
			"breaker_trips": breakerTrips,
			"breaker_shed":  breakerShed,
			"breaker_open":  append([]string{}, openMethods...),
		},
		"latency_us": map[string]any{
			"count": m.latN,
			"p50":   percentile(lat, 50),
			"p90":   percentile(lat, 90),
			"p99":   percentile(lat, 99),
			"max":   maxLat,
		},
		"telemetry": map[string]any{
			"runs":                 tel.Runs,
			"flows":                tel.Flows,
			"iterations":           tel.Iterations,
			"memo_hits":            tel.MemoHits,
			"memo_misses":          tel.MemoMisses,
			"max_downstream_depth": tel.MaxDownstreamDepth,
			"flow_nanos":           tel.FlowNanos,
			"max_flow_nanos":       tel.MaxFlowNanos,
		},
	}
}
