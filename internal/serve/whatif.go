package serve

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net/http"
	"strconv"
	"time"

	"wormnoc/internal/canon"
	"wormnoc/internal/core"
	"wormnoc/internal/faultinject"
	"wormnoc/internal/noc"
	"wormnoc/internal/traffic"
)

// DeltaSpec mirrors core.Delta on the wire (see docs/API.md). Kind names
// the edit ("period", "deadline", "jitter", "length", "buf",
// "swap-priority", "remap", "add-flow", "remove-flow"); only the fields
// that kind reads are meaningful.
type DeltaSpec struct {
	Kind string `json:"kind"`
	// Flow is the edited flow's index (first flow of a swap-priority).
	Flow int `json:"flow,omitempty"`
	// Other is the second flow of a swap-priority.
	Other int `json:"other,omitempty"`
	// Cycles is the new period, deadline, or jitter value.
	Cycles int64 `json:"cycles,omitempty"`
	// Length is the new payload length of a length delta.
	Length int `json:"length,omitempty"`
	// BufDepth is the new platform buffer depth of a buf delta.
	BufDepth int `json:"buf,omitempty"`
	// Src and Dst are the new endpoints of a remap.
	Src int `json:"src,omitempty"`
	Dst int `json:"dst,omitempty"`
	// NewFlow is the flow appended by an add-flow.
	NewFlow *traffic.FlowSpec `json:"new_flow,omitempty"`
}

// toCore parses the wire form into the engine's typed edit.
func (d DeltaSpec) toCore() (core.Delta, error) {
	kind, err := core.ParseDeltaKind(d.Kind)
	if err != nil {
		return core.Delta{}, err
	}
	cd := core.Delta{
		Kind:     kind,
		Flow:     d.Flow,
		Other:    d.Other,
		Cycles:   noc.Cycles(d.Cycles),
		Length:   d.Length,
		BufDepth: d.BufDepth,
		Src:      noc.NodeID(d.Src),
		Dst:      noc.NodeID(d.Dst),
	}
	if kind == core.DeltaAddFlow {
		if d.NewFlow == nil {
			return core.Delta{}, errors.New("add-flow delta names no new_flow")
		}
		f := *d.NewFlow
		cd.NewFlow = traffic.Flow{
			Name:     f.Name,
			Priority: f.Priority,
			Period:   noc.Cycles(f.Period),
			Deadline: noc.Cycles(f.Deadline),
			Jitter:   noc.Cycles(f.Jitter),
			Length:   f.Length,
			Src:      noc.NodeID(f.Src),
			Dst:      noc.NodeID(f.Dst),
		}
	}
	return cd, nil
}

// WhatIfRequest is the body of POST /v1/whatif: a base system plus an
// edit chain, evaluated sequentially on one delta-aware engine.
type WhatIfRequest struct {
	// System is the inline base system. Exactly one of System and
	// SystemKey must be set.
	System *traffic.Document `json:"system,omitempty"`
	// SystemKey references a previously analysed base by the system_key
	// of its /v1/analyze response; it is served from the warm-engine
	// cache and 404s once evicted (resend the system inline then).
	SystemKey string `json:"system_key,omitempty"`
	// Method names the analysis: "SB", "SLA", "XLWX" or "IBN".
	Method string `json:"method"`
	// Options tunes the analysis (optional).
	Options *RequestOptions `json:"options,omitempty"`
	// Deltas is the edit chain, applied in order. Evaluation stops at
	// the first delta that fails to apply or analyse.
	Deltas []DeltaSpec `json:"deltas"`
	// TimeoutMs bounds the whole chain (0 = server default, which also
	// caps it).
	TimeoutMs int64 `json:"timeout_ms,omitempty"`
}

// WhatIfStep is one edit's outcome inside a WhatIfResponse: the bounds
// of the system with the chain's deltas up to and including this one
// applied, or the error that stopped the chain — never both.
type WhatIfStep struct {
	// Delta echoes the edit this step applied.
	Delta DeltaSpec `json:"delta"`
	*AnalyzeResponse
	// Error is the failure that stopped the chain here (empty on
	// success). Code classifies it like a batch item's.
	Error string `json:"error,omitempty"`
	Code  string `json:"code,omitempty"`
}

// WhatIfResponse is the body of POST /v1/whatif. Steps holds one entry
// per evaluated delta, in request order; a failed step is the last one.
type WhatIfResponse struct {
	// BaseKey is the canonical (system, method, options) hash of the
	// unedited base — the root the steps' chained keys derive from.
	BaseKey string `json:"base_key"`
	// Steps are the per-delta results. Len < len(request deltas) only
	// when a step failed (the failing step is included).
	Steps []WhatIfStep `json:"steps"`
	// CacheHits counts steps served from the result cache.
	CacheHits int `json:"cache_hits"`
	// Failed is 1 when the chain stopped at a failing step, else 0.
	Failed int `json:"failed"`
	// Incremental-engine observability for the whole chain.
	FullRuns        int64 `json:"full_runs"`
	PartialRuns     int64 `json:"partial_runs"`
	FlowsReanalyzed int64 `json:"flows_reanalyzed"`
	FlowsSkipped    int64 `json:"flows_skipped"`
	WarmAccepted    int64 `json:"warm_accepted,omitempty"`
}

// whatifErrorMessage renders a step failure for the wire, redacting
// panic-coded faults exactly like batch items do.
func whatifErrorMessage(i int, code string, err error) string {
	if code != errCodePanic {
		return err.Error()
	}
	id := incidentID()
	log.Printf("serve: whatif step %d fault (incident %s): %v", i, id, err)
	return fmt.Sprintf("internal error (incident %s)", id)
}

// handleWhatIf evaluates an edit chain against a base system on one
// request-local core.Incremental. The engine is derived from the warm
// per-system Engine (shared immutable interference sets, so a whatif
// against an analysed base never rebuilds them), each step's result is
// cached under a chained canonical key (canon.DeltaKey), and a step
// whose key hits the result cache applies its delta without
// re-analysing — the pending invalidation simply accumulates into the
// next analysed step. Admission, the per-method circuit breaker,
// fault injection and the request deadline apply as for /v1/analyze.
func (s *Server) handleWhatIf(w http.ResponseWriter, r *http.Request) {
	var req WhatIfRequest
	if err := decodeStrict(r.Body, &req); err != nil {
		writeError(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	if (req.System == nil) == (req.SystemKey == "") {
		writeError(w, http.StatusUnprocessableEntity, "exactly one of system and system_key must be set")
		return
	}
	if len(req.Deltas) == 0 {
		writeError(w, http.StatusUnprocessableEntity, "what-if names no deltas")
		return
	}
	if len(req.Deltas) > s.cfg.MaxWhatIfDeltas {
		writeError(w, http.StatusUnprocessableEntity, "chain of %d deltas exceeds the cap of %d", len(req.Deltas), s.cfg.MaxWhatIfDeltas)
		return
	}
	m, err := core.ParseMethod(req.Method)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	opt := req.Options.toCore(m)

	// The breaker gates the whole chain: one method, one verdict, as for
	// a batch. Steps record their run outcomes individually below.
	if !s.brk.allow(m.String()) {
		w.Header().Set("Retry-After", strconv.Itoa(int(s.cfg.BreakerCooldown/time.Second)+1))
		writeError(w, http.StatusServiceUnavailable, "analysis method %s is degraded (circuit open), retry later", m)
		return
	}
	recorded := false
	defer func() {
		if !recorded {
			s.brk.release(m.String())
		}
	}()

	// One admission slot covers the whole chain.
	release := s.admit()
	if release == nil {
		s.met.recordShed()
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "analysis capacity saturated (%d in flight), retry later", s.cfg.MaxInFlight)
		return
	}
	defer release()

	ctx, cancel := context.WithTimeout(r.Context(), s.requestTimeout(req.TimeoutMs))
	defer cancel()

	// Resolve the base: a warm engine (by reference or built on first
	// sight) whose immutable interference sets seed the chain's engine.
	var eng *core.Engine
	var doc traffic.Document
	if req.SystemKey != "" {
		e, ok := s.engines.Get(req.SystemKey)
		if !ok || e == nil {
			writeError(w, http.StatusNotFound, "system_key %q is not in the warm-engine cache; resend the system inline", req.SystemKey)
			return
		}
		eng = e
		doc = e.System().ToDocument()
	} else {
		doc = *req.System
		e, err := s.engine(ctx, doc)
		if err != nil {
			if isInternalFault(err) {
				s.brk.record(m.String(), true)
				recorded = true
			}
			code, status := classifyError(err)
			writeError(w, status, "%s", whatifErrorMessage(-1, code, err))
			return
		}
		eng = e
	}
	inc := eng.Incremental()

	resp := &WhatIfResponse{BaseKey: canon.Key(doc, opt), Steps: make([]WhatIfStep, 0, len(req.Deltas))}
	prevKey := resp.BaseKey
	for i, spec := range req.Deltas {
		step := WhatIfStep{Delta: spec}
		d, err := spec.toCore()
		if err == nil {
			err = inc.ApplySafe(d)
		}
		if err != nil {
			// The delta itself is bad (or applying it faulted): the chain
			// stops here with the failure recorded in this step.
			if isInternalFault(err) {
				s.brk.record(m.String(), true)
				recorded = true
			}
			code, _ := classifyError(err)
			step.Error, step.Code = whatifErrorMessage(i, code, err), code
			resp.Steps = append(resp.Steps, step)
			resp.Failed = 1
			break
		}
		prevKey = canon.DeltaKey(prevKey, d)

		cacheOK := true
		if faultinject.Enabled() {
			if ferr := faultinject.Fire(ctx, faultinject.SiteServeCacheGet, prevKey); ferr != nil {
				cacheOK = false
			}
		}
		if cacheOK {
			if cached, ok := s.results.Get(prevKey); ok {
				s.met.recordCache(true)
				hit := *cached
				hit.Cached = true
				step.AnalyzeResponse = &hit
				resp.Steps = append(resp.Steps, step)
				resp.CacheHits++
				continue
			}
		}
		s.met.recordCache(false)

		t0 := time.Now()
		var res *core.Result
		for attempt := 0; ; attempt++ {
			res, err = inc.AnalyzeSafe(ctx, opt)
			if err == nil || attempt >= s.cfg.ItemRetries || !isTransient(err) || ctx.Err() != nil {
				break
			}
			t := time.NewTimer(retryDelay(s.cfg.RetryBackoff, attempt))
			select {
			case <-ctx.Done():
				t.Stop()
			case <-t.C:
				s.met.recordRetry()
			}
		}
		s.brk.record(m.String(), isInternalFault(err))
		recorded = true
		if err != nil {
			code, _ := classifyError(err)
			if code == errCodePanic {
				s.met.recordItemPanic()
			}
			step.Error, step.Code = whatifErrorMessage(i, code, err), code
			resp.Steps = append(resp.Steps, step)
			resp.Failed = 1
			break
		}
		sys := inc.System()
		out := &AnalyzeResponse{
			Method:      opt.Method.String(),
			Schedulable: res.Schedulable,
			Flows:       make([]FlowResult, sys.NumFlows()),
			Key:         prevKey,
			ElapsedUs:   time.Since(t0).Microseconds(),
		}
		for j := range out.Flows {
			f := sys.Flow(j)
			out.Flows[j] = FlowResult{
				Name:     f.Name,
				Priority: f.Priority,
				C:        int64(sys.C(j)),
				Deadline: int64(f.Deadline),
				R:        int64(res.Flows[j].R),
				Status:   res.Flows[j].Status.String(),
			}
		}
		if cacheOK {
			putOK := true
			if faultinject.Enabled() {
				if ferr := faultinject.Fire(ctx, faultinject.SiteServeCachePut, prevKey); ferr != nil {
					putOK = false
				}
			}
			if putOK {
				s.results.Put(prevKey, out)
			}
		}
		step.AnalyzeResponse = out
		resp.Steps = append(resp.Steps, step)
	}

	stats := inc.Stats()
	resp.FullRuns = stats.FullRuns
	resp.PartialRuns = stats.PartialRuns
	resp.FlowsReanalyzed = stats.FlowsReanalyzed
	resp.FlowsSkipped = stats.FlowsSkipped
	resp.WarmAccepted = stats.WarmAccepted

	// Chain-level 504 only when the deadline expired before any step
	// produced a result; partial success is a 200 with the failing step
	// in place, like a batch.
	if len(resp.Steps) == resp.Failed && ctx.Err() != nil {
		writeError(w, http.StatusGatewayTimeout, "what-if aborted, no step completed: %v", ctx.Err())
		return
	}
	writeJSON(w, http.StatusOK, resp)
}
