package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"wormnoc/internal/faultinject"
	"wormnoc/internal/traffic"
)

// faultMetrics is the "faults" object of GET /metrics, used to
// reconcile the counters against the injector's fired counts.
type faultMetrics struct {
	Faults struct {
		Panics       int64    `json:"panics"`
		ItemPanics   int64    `json:"item_panics"`
		Retries      int64    `json:"retries"`
		BreakerTrips int64    `json:"breaker_trips"`
		BreakerShed  int64    `json:"breaker_shed"`
		BreakerOpen  []string `json:"breaker_open"`
	} `json:"faults"`
}

// The headline chaos test: a batch of 32 distinct systems with panics
// injected into 8 of them must come back 200 with 24 correct results
// and 8 typed per-item errors, the server must keep serving afterwards,
// and the /metrics fault counters must reconcile exactly with the
// injector's fired counts.
func TestChaosBatchPartialSuccess(t *testing.T) {
	panicIdx := map[int]bool{1: true, 5: true, 9: true, 13: true, 17: true, 21: true, 25: true, 29: true}
	var keys []string
	for i := range panicIdx {
		keys = append(keys, strconv.Itoa(i))
	}
	in := faultinject.New(1).Add(faultinject.Fault{
		Site: faultinject.SiteServeBatchItem,
		Kind: faultinject.KindPanic,
		Keys: keys,
	})
	faultinject.Enable(in)
	defer faultinject.Disable()

	// A high threshold keeps the circuit breaker out of this test.
	srv := New(Config{BreakerThreshold: 1000})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	const n = 32
	systems := make([]traffic.Document, n)
	for i := range systems {
		systems[i] = didacticDoc()
		systems[i].Mesh.BufDepth = i + 1 // 32 distinct systems
	}
	resp, body := postJSON(t, ts.URL+"/v1/batch", BatchRequest{Systems: systems, Method: "XLWX"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d (want 200 despite 8 injected panics): %s", resp.StatusCode, body)
	}
	var out BatchResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != n {
		t.Fatalf("got %d results, want %d", len(out.Results), n)
	}
	for i, item := range out.Results {
		if panicIdx[i] {
			if item.AnalyzeResponse != nil {
				t.Fatalf("item %d: panic was injected but a result came back: %+v", i, item)
			}
			if item.Code != errCodePanic {
				t.Fatalf("item %d: code %q, want %q (error %q)", i, item.Code, errCodePanic, item.Error)
			}
			// Panic values are redacted on the wire (logged server-side):
			// the client sees an incident reference, never the raw value.
			if strings.Contains(item.Error, "injected panic") {
				t.Fatalf("item %d: error %q leaks the raw panic value", i, item.Error)
			}
			if !strings.Contains(item.Error, "internal error (incident ") {
				t.Fatalf("item %d: error %q is not the redacted incident form", i, item.Error)
			}
			continue
		}
		if item.AnalyzeResponse == nil || item.Error != "" || item.Code != "" {
			t.Fatalf("item %d: healthy system failed: %+v", i, item)
		}
		// XLWX is buffer-independent: every system bounds R(τ3) = 460.
		if r := item.Flows[2].R; r != 460 {
			t.Fatalf("item %d: R(τ3) = %d, want 460", i, r)
		}
	}
	if out.Failed != len(panicIdx) {
		t.Fatalf("failed = %d, want %d", out.Failed, len(panicIdx))
	}

	// The metrics counters reconcile exactly with the injector.
	if fired := in.TotalFired(); fired != int64(len(panicIdx)) {
		t.Fatalf("injector fired %d faults, want %d", fired, len(panicIdx))
	}
	var met faultMetrics
	getJSON(t, ts.URL+"/metrics", &met)
	if met.Faults.ItemPanics != in.TotalFired() {
		t.Fatalf("item_panics = %d, want %d (injector fired)", met.Faults.ItemPanics, in.TotalFired())
	}
	if met.Faults.Panics != 0 || met.Faults.Retries != 0 || met.Faults.BreakerTrips != 0 {
		t.Fatalf("unexpected fault counters: %+v", met.Faults)
	}

	// The server keeps serving after the chaos.
	faultinject.Disable()
	resp, body = postJSON(t, ts.URL+"/v1/analyze", AnalyzeRequest{System: didacticDoc(), Method: "IBN"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("follow-up analyze after chaos: status %d: %s", resp.StatusCode, body)
	}
}

// A transient fault inside the engine's fixed point is retried with
// backoff and succeeds on the second attempt; the item reports the
// retry it consumed and /metrics counts it.
func TestChaosTransientFaultRetried(t *testing.T) {
	in := faultinject.New(1).Add(faultinject.Fault{
		Site:  faultinject.SiteCoreFixedPoint,
		Kind:  faultinject.KindError,
		Times: 1,
	})
	faultinject.Enable(in)
	defer faultinject.Disable()

	srv := New(Config{RetryBackoff: time.Millisecond})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, body := postJSON(t, ts.URL+"/v1/batch", BatchRequest{
		Systems: []traffic.Document{didacticDoc()}, Method: "IBN",
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out BatchResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	item := out.Results[0]
	if item.AnalyzeResponse == nil {
		t.Fatalf("item failed despite retry budget: %+v", item)
	}
	if item.Retries != 1 {
		t.Fatalf("item consumed %d retries, want 1", item.Retries)
	}
	if r := item.Flows[2].R; r != 348 {
		t.Fatalf("retried result R(τ3) = %d, want 348", r)
	}
	if in.TotalFired() != 1 {
		t.Fatalf("injector fired %d, want 1", in.TotalFired())
	}
	var met faultMetrics
	getJSON(t, ts.URL+"/metrics", &met)
	if met.Faults.Retries != 1 {
		t.Fatalf("retries counter = %d, want 1", met.Faults.Retries)
	}
	if met.Faults.ItemPanics != 0 || met.Faults.Panics != 0 {
		t.Fatalf("unexpected panic counters: %+v", met.Faults)
	}
}

// Repeated internal faults in one method trip its circuit breaker: that
// method is shed with 503 while the others keep serving, /healthz turns
// degraded naming the open method, and after the cooldown a successful
// probe closes the breaker again.
func TestChaosBreakerTripsAndRecovers(t *testing.T) {
	faultinject.Enable(faultinject.New(1).Add(faultinject.Fault{
		Site: faultinject.SiteServeBatchItem,
		Kind: faultinject.KindPanic,
	}))
	defer faultinject.Disable()

	srv := New(Config{BreakerWindow: 8, BreakerThreshold: 3, BreakerCooldown: time.Hour})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Three injected per-item panics in one IBN batch reach the
	// threshold and trip the IBN breaker.
	systems := make([]traffic.Document, 3)
	for i := range systems {
		systems[i] = didacticDoc()
		systems[i].Mesh.BufDepth = i + 1
	}
	resp, body := postJSON(t, ts.URL+"/v1/batch", BatchRequest{Systems: systems, Method: "IBN"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("tripping batch: status %d: %s", resp.StatusCode, body)
	}

	// IBN is now shed — batches and single analyses alike.
	resp, body = postJSON(t, ts.URL+"/v1/analyze", AnalyzeRequest{System: didacticDoc(), Method: "IBN"})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("tripped method: status %d (want 503): %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("breaker 503 without Retry-After")
	}

	// Sibling methods keep serving: the fault site only fires in
	// batches, so a plain XLWX analyze is healthy.
	resp, body = postJSON(t, ts.URL+"/v1/analyze", AnalyzeRequest{System: didacticDoc(), Method: "XLWX"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sibling method was shed too: status %d: %s", resp.StatusCode, body)
	}

	// /healthz reports degraded readiness naming the open method.
	var health struct {
		OK          bool     `json:"ok"`
		Degraded    bool     `json:"degraded"`
		OpenMethods []string `json:"open_methods"`
	}
	hresp := getJSON(t, ts.URL+"/healthz", &health)
	if hresp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d while degraded, want 200", hresp.StatusCode)
	}
	if health.OK || !health.Degraded {
		t.Fatalf("healthz not degraded: %+v", health)
	}
	if len(health.OpenMethods) != 1 || health.OpenMethods[0] != "IBN" {
		t.Fatalf("open_methods = %v, want [IBN]", health.OpenMethods)
	}
	var met faultMetrics
	getJSON(t, ts.URL+"/metrics", &met)
	if met.Faults.BreakerTrips != 1 {
		t.Fatalf("breaker_trips = %d, want 1", met.Faults.BreakerTrips)
	}
	if met.Faults.BreakerShed == 0 {
		t.Fatal("breaker_shed = 0 after a shed request")
	}
	if len(met.Faults.BreakerOpen) != 1 || met.Faults.BreakerOpen[0] != "IBN" {
		t.Fatalf("breaker_open = %v, want [IBN]", met.Faults.BreakerOpen)
	}

	// Past the cooldown (fake clock) and with the fault gone, the next
	// IBN request is the half-open probe; its success closes the breaker.
	faultinject.Disable()
	srv.brk.mu.Lock()
	srv.brk.now = func() time.Time { return time.Now().Add(2 * time.Hour) }
	srv.brk.mu.Unlock()
	resp, body = postJSON(t, ts.URL+"/v1/analyze", AnalyzeRequest{System: didacticDoc(), Method: "IBN"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("probe after cooldown: status %d: %s", resp.StatusCode, body)
	}
	// The healthy body omits degraded/open_methods entirely; zero the
	// struct so stale fields from the degraded decode can't leak in.
	health.OK, health.Degraded, health.OpenMethods = false, false, nil
	getJSON(t, ts.URL+"/healthz", &health)
	if !health.OK || health.Degraded {
		t.Fatalf("healthz still degraded after recovery: %+v", health)
	}
}

// A panic classified out of the analysis path (here: injected into the
// engine's fixed point) turns into a 500 with an incident ID — and the
// server, not having died, serves the same request fine once the fault
// is gone.
func TestChaosAnalyzePanicBecomes500WithIncident(t *testing.T) {
	faultinject.Enable(faultinject.New(1).Add(faultinject.Fault{
		Site: faultinject.SiteCoreFixedPoint,
		Kind: faultinject.KindPanic,
	}))
	defer faultinject.Disable()

	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, body := postJSON(t, ts.URL+"/v1/analyze", AnalyzeRequest{System: didacticDoc(), Method: "IBN"})
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status %d (want 500): %s", resp.StatusCode, body)
	}
	var e errorResponse
	if err := json.Unmarshal(body, &e); err != nil {
		t.Fatalf("500 body is not JSON: %s", body)
	}
	if e.IncidentID == "" || !strings.Contains(e.Error, e.IncidentID) {
		t.Fatalf("500 carries no incident ID: %+v", e)
	}
	if !strings.Contains(e.Error, "internal error") {
		t.Fatalf("error %q does not mark itself internal", e.Error)
	}
	var met faultMetrics
	getJSON(t, ts.URL+"/metrics", &met)
	if met.Faults.Panics != 1 {
		t.Fatalf("panics counter = %d, want 1", met.Faults.Panics)
	}

	faultinject.Disable()
	resp, body = postJSON(t, ts.URL+"/v1/analyze", AnalyzeRequest{System: didacticDoc(), Method: "IBN"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("server unhealthy after recovered panic: status %d: %s", resp.StatusCode, body)
	}
}

// A panic escaping a handler entirely (here: injected into the engine
// build, outside the per-item boundaries) is caught by the recovery
// middleware: 500 + incident ID, process alive.
func TestChaosWrapMiddlewareRecoversHandlerPanic(t *testing.T) {
	faultinject.Enable(faultinject.New(1).Add(faultinject.Fault{
		Site: faultinject.SiteServeEngineBuild,
		Kind: faultinject.KindPanic,
	}))
	defer faultinject.Disable()

	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, body := postJSON(t, ts.URL+"/v1/analyze", AnalyzeRequest{System: didacticDoc(), Method: "IBN"})
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status %d (want 500): %s", resp.StatusCode, body)
	}
	var e errorResponse
	if err := json.Unmarshal(body, &e); err != nil {
		t.Fatalf("500 body is not JSON: %s", body)
	}
	if e.IncidentID == "" {
		t.Fatalf("500 carries no incident ID: %+v", e)
	}

	faultinject.Disable()
	resp, _ = postJSON(t, ts.URL+"/v1/analyze", AnalyzeRequest{System: didacticDoc(), Method: "IBN"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("server dead after handler panic: status %d", resp.StatusCode)
	}
}

// Regression for the half-open probe-slot leak: a probe request that is
// shed at admission (429, before any breaker record) must hand its slot
// back; otherwise the method wedges in half-open, shedding every
// request with 503 until a restart.
func TestBreakerProbeSurvivesAdmissionShed(t *testing.T) {
	faultinject.Enable(faultinject.New(1).Add(faultinject.Fault{
		Site: faultinject.SiteServeBatchItem,
		Kind: faultinject.KindPanic,
	}))
	defer faultinject.Disable()

	srv := New(Config{BreakerWindow: 8, BreakerThreshold: 1, BreakerCooldown: time.Hour, MaxInFlight: 2})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// One injected per-item panic trips the IBN breaker (threshold 1).
	resp, body := postJSON(t, ts.URL+"/v1/batch", BatchRequest{
		Systems: []traffic.Document{didacticDoc()}, Method: "IBN",
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("tripping batch: status %d: %s", resp.StatusCode, body)
	}
	resp, body = postJSON(t, ts.URL+"/v1/analyze", AnalyzeRequest{System: didacticDoc(), Method: "IBN"})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("tripped method: status %d (want 503): %s", resp.StatusCode, body)
	}

	// Past the cooldown (fake clock), fault gone, but admission is
	// saturated: the half-open probe passes the breaker gate and is then
	// shed with 429 before it can record an outcome.
	faultinject.Disable()
	srv.brk.mu.Lock()
	srv.brk.now = func() time.Time { return time.Now().Add(2 * time.Hour) }
	srv.brk.mu.Unlock()
	srv.sem <- struct{}{}
	srv.sem <- struct{}{}
	resp, body = postJSON(t, ts.URL+"/v1/analyze", AnalyzeRequest{System: didacticDoc(), Method: "IBN"})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("probe while saturated: status %d (want 429): %s", resp.StatusCode, body)
	}

	// With capacity back, the next request must be admitted as the new
	// probe and close the breaker — not 503 off a leaked probe slot.
	<-srv.sem
	<-srv.sem
	resp, body = postJSON(t, ts.URL+"/v1/analyze", AnalyzeRequest{System: didacticDoc(), Method: "IBN"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("probe after admission shed: status %d (want 200; probe slot leaked?): %s", resp.StatusCode, body)
	}
}

// Regression for the other probe-leak path: a half-open probe batch
// served entirely from the result cache records no run outcome and must
// hand the probe slot back instead of wedging the method.
func TestBreakerProbeReleasedOnCachedBatch(t *testing.T) {
	srv := New(Config{BreakerWindow: 8, BreakerThreshold: 1, BreakerCooldown: time.Hour})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Warm the cache for the didactic system, then trip XLWX with an
	// injected per-item panic on a different system.
	resp, body := postJSON(t, ts.URL+"/v1/analyze", AnalyzeRequest{System: didacticDoc(), Method: "XLWX"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warming request: status %d: %s", resp.StatusCode, body)
	}
	faultinject.Enable(faultinject.New(1).Add(faultinject.Fault{
		Site: faultinject.SiteServeBatchItem,
		Kind: faultinject.KindPanic,
	}))
	defer faultinject.Disable()
	other := didacticDoc()
	other.Mesh.BufDepth = 9
	resp, body = postJSON(t, ts.URL+"/v1/batch", BatchRequest{
		Systems: []traffic.Document{other}, Method: "XLWX",
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("tripping batch: status %d: %s", resp.StatusCode, body)
	}
	faultinject.Disable()

	// Past the cooldown, the probe slot goes to a batch whose only item
	// is cache-served: no record happens, the slot must be released.
	srv.brk.mu.Lock()
	srv.brk.now = func() time.Time { return time.Now().Add(2 * time.Hour) }
	srv.brk.mu.Unlock()
	resp, body = postJSON(t, ts.URL+"/v1/batch", BatchRequest{
		Systems: []traffic.Document{didacticDoc()}, Method: "XLWX",
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cached probe batch: status %d: %s", resp.StatusCode, body)
	}
	var out BatchResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.CacheHits != 1 {
		t.Fatalf("probe batch cache_hits = %d, want 1", out.CacheHits)
	}

	// An uncached XLWX request must now be admitted as the real probe
	// (its success closes the breaker) instead of 503ing forever.
	uncached := didacticDoc()
	uncached.Mesh.BufDepth = 11
	resp, body = postJSON(t, ts.URL+"/v1/analyze", AnalyzeRequest{System: uncached, Method: "XLWX"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("probe after cached batch: status %d (want 200; probe slot leaked?): %s", resp.StatusCode, body)
	}
	if open := srv.brk.openMethods(); len(open) != 0 {
		t.Fatalf("breaker still open after successful probe: %v", open)
	}
}

// Regression: a nil engine in the pool (only reachable through a bug in
// the build path) must neither break the eviction callback nor the
// /metrics telemetry walk.
func TestNilEngineEvictionGuard(t *testing.T) {
	srv := New(Config{EngineCacheSize: 1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	srv.engines.Put("deliberately-nil", nil)
	// liveTelemetry walks the pool and must skip the nil entry.
	resp := getJSON(t, ts.URL+"/metrics", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics with a nil pooled engine: status %d", resp.StatusCode)
	}
	// Evicting the nil entry exercises the onEvict guard.
	srv.engines.Put("other", nil)
	if srv.engines.Len() != 1 {
		t.Fatalf("pool len = %d, want 1", srv.engines.Len())
	}
	// The server still analyses (evicting "other", again nil).
	resp2, body := postJSON(t, ts.URL+"/v1/analyze", AnalyzeRequest{System: didacticDoc(), Method: "IBN"})
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("analyze after nil evictions: status %d: %s", resp2.StatusCode, body)
	}
}
