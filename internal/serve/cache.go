package serve

import (
	"container/list"
	"sync"
)

// lruCache is a size-bounded, mutex-guarded least-recently-used cache
// with string keys. It backs both the result cache (canonical request
// key → response) and the warm-engine pool (system key → *core.Engine).
//
// All methods are safe for concurrent use. Get marks the entry most
// recently used; Put inserts or refreshes and evicts the least recently
// used entry once the capacity is exceeded, invoking onEvict (outside
// any later use, but under the cache lock — keep callbacks cheap).
type lruCache[V any] struct {
	mu      sync.Mutex
	cap     int
	ll      *list.List // front = most recently used
	items   map[string]*list.Element
	onEvict func(key string, v V)
}

type lruEntry[V any] struct {
	key string
	v   V
}

// newLRU returns a cache bounded to capacity entries (minimum 1).
func newLRU[V any](capacity int, onEvict func(string, V)) *lruCache[V] {
	if capacity < 1 {
		capacity = 1
	}
	return &lruCache[V]{
		cap:     capacity,
		ll:      list.New(),
		items:   make(map[string]*list.Element, capacity),
		onEvict: onEvict,
	}
}

// Get returns the cached value and marks it most recently used.
func (c *lruCache[V]) Get(key string) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		return el.Value.(*lruEntry[V]).v, true
	}
	var zero V
	return zero, false
}

// Put inserts (or refreshes) key → v, evicting the least recently used
// entry when the cache is full.
func (c *lruCache[V]) Put(key string, v V) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*lruEntry[V]).v = v
		return
	}
	c.items[key] = c.ll.PushFront(&lruEntry[V]{key: key, v: v})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		e := oldest.Value.(*lruEntry[V])
		delete(c.items, e.key)
		if c.onEvict != nil {
			c.onEvict(e.key, e.v)
		}
	}
}

// Values returns a snapshot of every cached value, most recently used
// first, without touching recency.
func (c *lruCache[V]) Values() []V {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]V, 0, c.ll.Len())
	for el := c.ll.Front(); el != nil; el = el.Next() {
		out = append(out, el.Value.(*lruEntry[V]).v)
	}
	return out
}

// Len returns the current number of entries.
func (c *lruCache[V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
