package serve

import (
	"testing"
	"time"
)

// newTestBreaker returns a breaker on a settable fake clock.
func newTestBreaker(window, threshold int, cooldown time.Duration) (*breaker, *time.Time) {
	clock := new(time.Time)
	*clock = time.Unix(0, 0)
	b := newBreaker(window, threshold, cooldown)
	b.now = func() time.Time { return *clock }
	return b, clock
}

// trip drives the method to the open state via threshold faults.
func trip(t *testing.T, b *breaker, name string, threshold int) {
	t.Helper()
	for i := 0; i < threshold; i++ {
		if !b.allow(name) {
			t.Fatalf("fault %d: method already shed", i)
		}
		b.record(name, true)
	}
	if b.allow(name) {
		t.Fatal("method not tripped after threshold faults")
	}
}

func TestBreakerTripProbeCloseCycle(t *testing.T) {
	b, clock := newTestBreaker(8, 3, time.Minute)
	trip(t, b, "IBN", 3)

	// Siblings are unaffected.
	if !b.allow("XLWX") {
		t.Fatal("sibling method shed by IBN's trip")
	}

	// Past the cooldown exactly one probe passes; the next request is
	// shed while the probe is outstanding.
	*clock = clock.Add(time.Minute)
	if !b.allow("IBN") {
		t.Fatal("probe not admitted after cooldown")
	}
	if b.allow("IBN") {
		t.Fatal("second request admitted while probe outstanding")
	}
	b.record("IBN", false)
	if !b.allow("IBN") {
		t.Fatal("method not closed after successful probe")
	}
	if open := b.openMethods(); len(open) != 0 {
		t.Fatalf("openMethods = %v after recovery", open)
	}
}

func TestBreakerFailedProbeReopens(t *testing.T) {
	b, clock := newTestBreaker(8, 2, time.Minute)
	trip(t, b, "IBN", 2)
	*clock = clock.Add(time.Minute)
	if !b.allow("IBN") {
		t.Fatal("probe not admitted")
	}
	b.record("IBN", true)
	if b.allow("IBN") {
		t.Fatal("method closed after failed probe")
	}
	// A fresh cooldown applies before the next probe.
	*clock = clock.Add(time.Minute)
	if !b.allow("IBN") {
		t.Fatal("second probe not admitted after re-open cooldown")
	}
}

// The high-severity leak: a probe that ends without a record (admission
// shed, cache hit) releases its slot, and the next request probes
// immediately.
func TestBreakerProbeReleased(t *testing.T) {
	b, clock := newTestBreaker(8, 1, time.Minute)
	trip(t, b, "IBN", 1)
	*clock = clock.Add(time.Minute)
	if !b.allow("IBN") {
		t.Fatal("probe not admitted")
	}
	b.release("IBN")
	if !b.allow("IBN") {
		t.Fatal("probe slot not returned by release")
	}
	b.record("IBN", false)
	if !b.allow("IBN") {
		t.Fatal("method not closed after released-then-retried probe")
	}
}

// Backstop: even a probe that never records nor releases (its request
// died) forfeits the slot after a cooldown instead of wedging the
// method in half-open forever.
func TestBreakerLeakedProbeTimesOut(t *testing.T) {
	b, clock := newTestBreaker(8, 1, time.Minute)
	trip(t, b, "IBN", 1)
	*clock = clock.Add(time.Minute)
	if !b.allow("IBN") {
		t.Fatal("probe not admitted")
	}
	// Leak the probe. Before the takeover timeout requests are shed...
	*clock = clock.Add(30 * time.Second)
	if b.allow("IBN") {
		t.Fatal("request admitted while probe within its cooldown")
	}
	// ...after it, the slot is forfeited to the next request.
	*clock = clock.Add(30 * time.Second)
	if !b.allow("IBN") {
		t.Fatal("leaked probe slot never timed out")
	}
	b.record("IBN", false)
	if !b.allow("IBN") {
		t.Fatal("method not closed after takeover probe succeeded")
	}
}

// release is a no-op outside half-open: it must not resurrect a closed
// window or touch unknown methods.
func TestBreakerReleaseNoOpOutsideHalfOpen(t *testing.T) {
	b, _ := newTestBreaker(8, 2, time.Minute)
	b.release("never-seen")
	if !b.allow("IBN") {
		t.Fatal("closed method shed")
	}
	b.record("IBN", false)
	b.release("IBN")
	if !b.allow("IBN") {
		t.Fatal("release broke a closed method")
	}
	trip(t, b, "SLA", 2)
	b.release("SLA")
	if b.allow("SLA") {
		t.Fatal("release re-admitted an open method before its cooldown")
	}
}

// Regression: the shifted backoff must not overflow for large attempt
// counts (a plain base << attempt overflows int64 past ~40 attempts at
// the 2ms default, making rand.Int64N panic on a non-positive bound).
func TestRetryDelayClampedNoOverflow(t *testing.T) {
	base := 2 * time.Millisecond
	for _, attempt := range []int{0, 1, 10, 40, 63, 64, 200, 1 << 20} {
		d := retryDelay(base, attempt)
		if d <= 0 {
			t.Fatalf("attempt %d: delay %v not positive", attempt, d)
		}
		if max := maxRetryBackoff + maxRetryBackoff/2; d > max {
			t.Fatalf("attempt %d: delay %v exceeds jittered cap %v", attempt, d, max)
		}
	}
	// The doubling still applies below the cap: attempt 2 draws from
	// [4ms, 12ms) around an 8ms centre.
	for i := 0; i < 100; i++ {
		if d := retryDelay(base, 2); d < 4*time.Millisecond || d >= 12*time.Millisecond {
			t.Fatalf("attempt 2: delay %v outside the jitter envelope", d)
		}
	}
}
