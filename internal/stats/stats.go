// Package stats provides the small set of descriptive statistics the
// experiment harness and tools need: means, percentiles and fixed-width
// histograms over latency samples.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Summary holds descriptive statistics of a sample set.
type Summary struct {
	Count         int
	Min, Max      float64
	Mean          float64
	StdDev        float64
	P50, P90, P99 float64
}

// Summarise computes a Summary; it returns a zero Summary for an empty
// sample set.
func Summarise(samples []float64) Summary {
	if len(samples) == 0 {
		return Summary{}
	}
	s := Summary{Count: len(samples), Min: math.Inf(1), Max: math.Inf(-1)}
	var sum float64
	for _, v := range samples {
		sum += v
		if v < s.Min {
			s.Min = v
		}
		if v > s.Max {
			s.Max = v
		}
	}
	s.Mean = sum / float64(len(samples))
	var sq float64
	for _, v := range samples {
		d := v - s.Mean
		sq += d * d
	}
	s.StdDev = math.Sqrt(sq / float64(len(samples)))
	sorted := append([]float64(nil), samples...)
	sort.Float64s(sorted)
	s.P50 = Percentile(sorted, 50)
	s.P90 = Percentile(sorted, 90)
	s.P99 = Percentile(sorted, 99)
	return s
}

// Percentile returns the p-th percentile (0..100) of an ASCENDING-sorted
// sample set, with linear interpolation between ranks. It returns NaN
// for empty input.
func Percentile(sorted []float64, p float64) float64 {
	n := len(sorted)
	if n == 0 {
		return math.NaN()
	}
	if n == 1 {
		return sorted[0]
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[n-1]
	}
	rank := p / 100 * float64(n-1)
	lo := int(math.Floor(rank))
	frac := rank - float64(lo)
	if lo+1 >= n {
		return sorted[n-1]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// String renders the summary's order statistics on one line for tables
// and log output.
func (s Summary) String() string {
	if s.Count == 0 {
		return "n=0"
	}
	return fmt.Sprintf("n=%d min=%.1f p50=%.1f mean=%.1f p90=%.1f p99=%.1f max=%.1f σ=%.1f",
		s.Count, s.Min, s.P50, s.Mean, s.P90, s.P99, s.Max, s.StdDev)
}

// Histogram renders a fixed-width ASCII histogram of the samples over
// `bins` equal-width buckets, `width` characters for the largest bar.
func Histogram(samples []float64, bins, width int) string {
	if len(samples) == 0 || bins < 1 {
		return "(no samples)\n"
	}
	if width < 1 {
		width = 40
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range samples {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if hi == lo {
		hi = lo + 1
	}
	counts := make([]int, bins)
	for _, v := range samples {
		b := int(float64(bins) * (v - lo) / (hi - lo))
		if b >= bins {
			b = bins - 1
		}
		counts[b]++
	}
	maxC := 0
	for _, c := range counts {
		if c > maxC {
			maxC = c
		}
	}
	var sb strings.Builder
	for b, c := range counts {
		from := lo + float64(b)*(hi-lo)/float64(bins)
		to := lo + float64(b+1)*(hi-lo)/float64(bins)
		bar := strings.Repeat("█", c*width/maxC)
		fmt.Fprintf(&sb, "[%10.1f, %10.1f) %6d %s\n", from, to, c, bar)
	}
	return sb.String()
}
