package stats

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummarise(t *testing.T) {
	s := Summarise([]float64{1, 2, 3, 4, 5})
	if s.Count != 5 || s.Min != 1 || s.Max != 5 || s.Mean != 3 || s.P50 != 3 {
		t.Errorf("summary: %+v", s)
	}
	if math.Abs(s.StdDev-math.Sqrt(2)) > 1e-12 {
		t.Errorf("stddev = %f", s.StdDev)
	}
	if z := Summarise(nil); z.Count != 0 || z.String() != "n=0" {
		t.Errorf("empty summary: %+v", z)
	}
	if !strings.Contains(s.String(), "mean=3.0") {
		t.Errorf("rendering: %s", s)
	}
}

func TestPercentile(t *testing.T) {
	sorted := []float64{10, 20, 30, 40}
	cases := []struct {
		p    float64
		want float64
	}{
		{0, 10}, {100, 40}, {50, 25}, {25, 17.5}, {-5, 10}, {200, 40},
	}
	for _, tc := range cases {
		if got := Percentile(sorted, tc.p); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("P%.0f = %f, want %f", tc.p, got, tc.want)
		}
	}
	if got := Percentile([]float64{7}, 50); got != 7 {
		t.Errorf("single sample: %f", got)
	}
	if !math.IsNaN(Percentile(nil, 50)) {
		t.Error("empty percentile must be NaN")
	}
}

// TestSummaryInvariants: min <= p50 <= p90 <= p99 <= max, and the mean
// lies within [min, max], for random samples.
func TestSummaryInvariants(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(200)
		samples := make([]float64, n)
		for i := range samples {
			samples[i] = rng.NormFloat64()*100 + 500
		}
		s := Summarise(samples)
		return s.Min <= s.P50 && s.P50 <= s.P90 && s.P90 <= s.P99 && s.P99 <= s.Max &&
			s.Mean >= s.Min && s.Mean <= s.Max && s.StdDev >= 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestHistogram(t *testing.T) {
	h := Histogram([]float64{1, 1, 2, 9}, 4, 20)
	if strings.Count(h, "\n") != 4 {
		t.Errorf("histogram rows:\n%s", h)
	}
	if !strings.Contains(h, "█") {
		t.Errorf("no bars:\n%s", h)
	}
	if Histogram(nil, 4, 20) != "(no samples)\n" {
		t.Error("empty histogram placeholder")
	}
	// Constant samples must not divide by zero.
	if h := Histogram([]float64{5, 5, 5}, 3, 10); !strings.Contains(h, "3") {
		t.Errorf("constant histogram:\n%s", h)
	}
}
