package core

import (
	"context"
	"fmt"
	"strings"

	"wormnoc/internal/noc"
	"wormnoc/internal/traffic"
)

// InterferenceTerm explains the contribution of one direct interferer τj
// to a flow's response-time bound.
type InterferenceTerm struct {
	// Interferer is the flow index of τj.
	Interferer int
	// Hits is the number of interference hits of τj at the fixed point,
	// ceil((R + J_j + JI_j)/T_j).
	Hits noc.Cycles
	// Jitter is the jitter term used in the hit count (J_j, plus the
	// interference jitter JI_j = R_j − C_j where the analysis applies it).
	Jitter noc.Cycles
	// Cj is τj's zero-load latency (the classic per-hit cost).
	Cj noc.Cycles
	// IDown is the downstream indirect interference I^down_{ji} added to
	// every hit (zero under SB and SLA).
	IDown noc.Cycles
	// PerHit is the cost of one hit: Cj + IDown (SB/XLWX/IBN) or the
	// stage-level refined cost (SLA).
	PerHit noc.Cycles
	// Total is Hits · PerHit: this term's contribution to R.
	Total noc.Cycles
	// Downstream and Upstream are S^downj_Ii and S^upj_Ii: the indirect
	// interferers of τi acting on τj after/before the shared links.
	Downstream, Upstream []int
	// UsedFallback reports that IBN used the XLWX term for this pair
	// because τj suffers upstream indirect interference.
	UsedFallback bool
	// BufferedInterference is bi_ij (Equation 6), the per-hit replay cap
	// IBN applies to each downstream hit. Zero for SB/XLWX.
	BufferedInterference noc.Cycles
	// ContentionDomain is |cd_ij|.
	ContentionDomain int
}

// Breakdown decomposes one flow's response-time bound into its
// zero-load latency and per-interferer contributions: R = C + Σ Total.
type Breakdown struct {
	// Method is the analysis the breakdown decomposes.
	Method Method
	// Flow is the analysed flow's index.
	Flow int
	// Name is the flow's human-readable label.
	Name string
	// C and R are the zero-load latency and the bound (R is only
	// meaningful when Status is Schedulable or DeadlineMiss).
	C, R noc.Cycles
	// Status is the flow's analysis outcome.
	Status FlowStatus
	// Terms lists one interference contribution per direct interferer,
	// evaluated at the fixed point.
	Terms []InterferenceTerm
	// Blocking is the non-preemptive flit-transfer blocking term (see
	// blocking.go); zero on single-cycle links. The identity
	// R = C + Blocking + Σ Terms[].Total holds for Schedulable flows.
	Blocking noc.Cycles
}

// Explain runs the analysis and decomposes the bound of the given flow
// into per-interferer terms evaluated at the fixed point. The identity
// R = C + Σ terms holds exactly for Schedulable flows.
func Explain(sys *traffic.System, sets *Sets, opt Options, flow int) (*Breakdown, error) {
	return NewEngineWithSets(sys, sets).Explain(opt, flow)
}

// Explain runs the analysis over the engine's system and decomposes the
// bound of the given flow into per-interferer terms evaluated at the
// fixed point. It shares the run machinery (option normalisation,
// fixed-point iterator, memo arenas) with Analyze.
func (e *Engine) Explain(opt Options, flow int) (*Breakdown, error) {
	if flow < 0 || flow >= e.sys.NumFlows() {
		return nil, fmt.Errorf("core: flow index %d out of range (%d flows)", flow, e.sys.NumFlows())
	}
	a, err := e.run(context.Background(), opt)
	if err != nil {
		return nil, err
	}
	defer e.release(a)

	b := &Breakdown{
		Method: opt.Method,
		Flow:   flow,
		Name:   e.sys.Flow(flow).Name,
		C:      e.sys.C(flow),
		R:      a.R[flow],
		Status: a.status[flow],
	}
	if b.Status == DependencyFailed {
		return b, nil
	}
	var blockPerEpisode noc.Cycles
	if linkl := e.sys.Topology().Config().LinkLatency; linkl > 1 {
		blockPerEpisode = (linkl - 1) * noc.Cycles(a.sharedLowLinks(flow))
	}
	episodes := noc.Cycles(1)
	for _, j := range a.sets.Direct(flow) {
		term, err := a.m.explainTerm(a, flow, j)
		if err != nil {
			return nil, err
		}
		term.Hits = ceilDiv(a.R[flow]+term.Jitter, e.sys.Flow(j).Period)
		term.Total = term.Hits * term.PerHit
		if blockPerEpisode > 0 {
			replays, err := a.replayEpisodes(flow, j)
			if err != nil {
				return nil, err
			}
			episodes += term.Hits * (1 + replays)
		}
		b.Terms = append(b.Terms, term)
	}
	b.Blocking = blockPerEpisode * episodes
	return b, nil
}

// String renders the breakdown as a human-readable report.
func (b *Breakdown) String() string {
	var sb strings.Builder
	name := b.Name
	if name == "" {
		name = fmt.Sprintf("flow%d", b.Flow)
	}
	fmt.Fprintf(&sb, "%s under %v: R = %d (C = %d, status %v)\n", name, b.Method, b.R, b.C, b.Status)
	var sum noc.Cycles
	for _, t := range b.Terms {
		sum += t.Total
		fmt.Fprintf(&sb, "  + %6d from flow %d: %d hit(s) × %d (C=%d, I_down=%d), jitter %d",
			t.Total, t.Interferer, t.Hits, t.PerHit, t.Cj, t.IDown, t.Jitter)
		if len(t.Downstream) > 0 {
			fmt.Fprintf(&sb, ", downstream blockers %v", t.Downstream)
			if b.Method == IBN {
				if t.UsedFallback {
					sb.WriteString(" (upstream interference: XLWX fallback)")
				} else {
					fmt.Fprintf(&sb, " (bi cap %d over |cd|=%d)", t.BufferedInterference, t.ContentionDomain)
				}
			}
		}
		sb.WriteByte('\n')
	}
	if b.Blocking > 0 {
		fmt.Fprintf(&sb, "  + %6d non-preemptive flit-transfer blocking (multi-cycle links)\n", b.Blocking)
	}
	fmt.Fprintf(&sb, "  = C %d + interference %d\n", b.C, sum+b.Blocking)
	return sb.String()
}
