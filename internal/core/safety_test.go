package core_test

import (
	"math/rand"
	"testing"

	"wormnoc/internal/core"
	"wormnoc/internal/noc"
	"wormnoc/internal/sim"
	"wormnoc/internal/traffic"
	"wormnoc/internal/workload"
)

// TestBoundsSafeAgainstSimulation is the flagship integration test: on
// randomised scenarios, the cycle-accurate simulator must never observe a
// latency above the IBN or XLWX bound of a schedulable flow. (SB carries
// no such guarantee — that is the MPB problem — so it is not checked.)
//
// Scenarios use random release phasings; each seed also randomises the
// platform (mesh size, buffer depth, link/routing latencies).
func TestBoundsSafeAgainstSimulation(t *testing.T) {
	trials := 60
	if testing.Short() {
		trials = 10
	}
	for trial := 0; trial < trials; trial++ {
		seed := int64(1000 + trial)
		rng := rand.New(rand.NewSource(seed))
		w, h := 2+rng.Intn(3), 2+rng.Intn(3)
		topo := noc.MustMesh(w, h, noc.RouterConfig{
			BufDepth:     2 + rng.Intn(9),
			LinkLatency:  1,
			RouteLatency: noc.Cycles(rng.Intn(2)),
		})
		sys, err := workload.Synthetic(topo, workload.SynthConfig{
			NumFlows:  3 + rng.Intn(10),
			PeriodMin: 800,
			PeriodMax: 20_000,
			LenMin:    8,
			LenMax:    256,
			Seed:      seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		sets := core.BuildSets(sys)
		ibn, err := core.AnalyzeWithSets(sys, sets, core.Options{Method: core.IBN})
		if err != nil {
			t.Fatal(err)
		}
		xlwx, err := core.AnalyzeWithSets(sys, sets, core.Options{Method: core.XLWX})
		if err != nil {
			t.Fatal(err)
		}

		// Several random phasings per scenario.
		for run := 0; run < 4; run++ {
			offsets := make([]noc.Cycles, sys.NumFlows())
			for i := range offsets {
				offsets[i] = noc.Cycles(rng.Int63n(int64(sys.Flow(i).Period)))
			}
			res, err := sim.Run(sys, sim.Config{Duration: 150_000, Offsets: offsets})
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < sys.NumFlows(); i++ {
				obs := res.WorstLatency[i]
				if obs < 0 {
					continue
				}
				if obs < sys.C(i) {
					t.Errorf("seed %d run %d flow %d: observed %d below zero-load %d",
						seed, run, i, obs, sys.C(i))
				}
				if ibn.Flows[i].Status == core.Schedulable && obs > ibn.R(i) {
					t.Errorf("seed %d run %d flow %d (%s): observed %d EXCEEDS IBN bound %d",
						seed, run, i, sys.Flow(i).Name, obs, ibn.R(i))
				}
				if xlwx.Flows[i].Status == core.Schedulable && obs > xlwx.R(i) {
					t.Errorf("seed %d run %d flow %d (%s): observed %d EXCEEDS XLWX bound %d",
						seed, run, i, sys.Flow(i).Name, obs, xlwx.R(i))
				}
			}
		}
	}
}

// TestSimulatedMPBGeometry drives a purpose-built 4-flow MPB chain (two
// levels of downstream indirect interference) and checks bounds hold.
func TestSimulatedMPBGeometry(t *testing.T) {
	// Line of 8 routers; τ4 lowest priority is hit by a chain of
	// downstream blockers.
	topo := noc.MustMesh(8, 1, noc.RouterConfig{BufDepth: 2, LinkLatency: 1, RouteLatency: 0})
	sys := traffic.MustSystem(topo, []traffic.Flow{
		{Name: "k2", Priority: 1, Period: 150, Deadline: 150, Length: 30, Src: 6, Dst: 7},
		{Name: "k1", Priority: 2, Period: 400, Deadline: 400, Length: 80, Src: 4, Dst: 7},
		{Name: "j", Priority: 3, Period: 8000, Deadline: 8000, Length: 200, Src: 0, Dst: 6},
		{Name: "i", Priority: 4, Period: 12000, Deadline: 12000, Length: 100, Src: 1, Dst: 4},
	})
	sets := core.BuildSets(sys)
	ibn, err := core.AnalyzeWithSets(sys, sets, core.Options{Method: core.IBN})
	if err != nil {
		t.Fatal(err)
	}
	if !ibn.Schedulable {
		t.Fatalf("MPB geometry should be schedulable under IBN: %+v", ibn.Flows)
	}
	sweep, err := sim.SweepOffsets(sys, sim.Config{Duration: 30_000}, 0, 150, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < sys.NumFlows(); i++ {
		if sweep.Worst[i] > ibn.R(i) {
			t.Errorf("flow %s: observed %d exceeds IBN bound %d", sys.Flow(i).Name, sweep.Worst[i], ibn.R(i))
		}
	}
	// The low-priority victim must actually suffer interference beyond C.
	if sweep.Worst[3] <= sys.C(3) {
		t.Errorf("victim saw no interference: %d <= C %d", sweep.Worst[3], sys.C(3))
	}
}
