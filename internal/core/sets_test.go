package core_test

import (
	"testing"
	"testing/quick"

	"wormnoc/internal/core"
	"wormnoc/internal/noc"
	"wormnoc/internal/traffic"
)

// lineSystem builds flows on a 10-router line; each spec is
// (priority, src, dst).
func lineSystem(t *testing.T, specs ...[3]int) *traffic.System {
	t.Helper()
	topo := noc.MustMesh(10, 1, noc.RouterConfig{BufDepth: 2, LinkLatency: 1, RouteLatency: 0})
	flows := make([]traffic.Flow, len(specs))
	for i, s := range specs {
		flows[i] = traffic.Flow{
			Name:     string(rune('a' + i)),
			Priority: s[0],
			Period:   1_000_000,
			Deadline: 1_000_000,
			Length:   10,
			Src:      noc.NodeID(s[1]),
			Dst:      noc.NodeID(s[2]),
		}
	}
	return traffic.MustSystem(topo, flows)
}

// TestUpstreamDownstreamPartition builds the two canonical geometries of
// Xiong et al.'s definitions: an indirect interferer hitting τj before
// (upstream) and after (downstream) its contention domain with τi.
func TestUpstreamDownstreamPartition(t *testing.T) {
	// Flow 0 = τk (P1), flow 1 = τj (P2), flow 2 = τi (P3).
	// τj runs 0→9. τi shares the middle (3..6). τk placement varies.
	t.Run("downstream", func(t *testing.T) {
		sys := lineSystem(t,
			[3]int{1, 7, 9}, // τk on links after τi's segment
			[3]int{2, 0, 9},
			[3]int{3, 3, 6},
		)
		sets := core.BuildSets(sys)
		if got := sets.Downstream(2, 1); len(got) != 1 || got[0] != 0 {
			t.Errorf("Downstream = %v, want [0]", got)
		}
		if got := sets.Upstream(2, 1); len(got) != 0 {
			t.Errorf("Upstream = %v, want empty", got)
		}
	})
	t.Run("upstream", func(t *testing.T) {
		sys := lineSystem(t,
			[3]int{1, 0, 2}, // τk on links before τi's segment
			[3]int{2, 0, 9},
			[3]int{3, 3, 6},
		)
		sets := core.BuildSets(sys)
		if got := sets.Upstream(2, 1); len(got) != 1 || got[0] != 0 {
			t.Errorf("Upstream = %v, want [0]", got)
		}
		if got := sets.Downstream(2, 1); len(got) != 0 {
			t.Errorf("Downstream = %v, want empty", got)
		}
	})
	t.Run("both", func(t *testing.T) {
		sys := lineSystem(t,
			[3]int{1, 0, 2}, // upstream τk
			[3]int{2, 7, 9}, // downstream τk'
			[3]int{3, 0, 9}, // τj
			[3]int{4, 3, 6}, // τi
		)
		sets := core.BuildSets(sys)
		if got := sets.Upstream(3, 2); len(got) != 1 || got[0] != 0 {
			t.Errorf("Upstream = %v, want [0]", got)
		}
		if got := sets.Downstream(3, 2); len(got) != 1 || got[0] != 1 {
			t.Errorf("Downstream = %v, want [1]", got)
		}
	})
}

// TestIndirectExcludesDirect: a flow sharing links with τi belongs to
// S^D_i and must not appear in S^I_i even if it also interferes with a
// direct interferer.
func TestIndirectExcludesDirect(t *testing.T) {
	sys := lineSystem(t,
		[3]int{1, 2, 8}, // shares with both others: direct for both
		[3]int{2, 0, 9},
		[3]int{3, 3, 6},
	)
	sets := core.BuildSets(sys)
	if got := sets.Direct(2); len(got) != 2 {
		t.Fatalf("S^D = %v, want two direct interferers", got)
	}
	if got := sets.Indirect(2); len(got) != 0 {
		t.Errorf("S^I = %v, want empty (flow 0 is direct)", got)
	}
}

// TestLowerPriorityNeverInterferes: lower-priority flows appear in no
// interference set.
func TestLowerPriorityNeverInterferes(t *testing.T) {
	sys := lineSystem(t,
		[3]int{3, 0, 9}, // lowest priority despite being first
		[3]int{1, 3, 6},
		[3]int{2, 2, 8},
	)
	sets := core.BuildSets(sys)
	if got := sets.Direct(1); len(got) != 0 {
		t.Errorf("highest-priority flow has S^D = %v", got)
	}
	for _, j := range sets.Direct(0) {
		if !sys.HigherPriority(j, 0) {
			t.Errorf("flow %d in S^D(0) has lower priority", j)
		}
	}
	for _, k := range sets.Indirect(0) {
		if !sys.HigherPriority(k, 0) {
			t.Errorf("flow %d in S^I(0) has lower priority", k)
		}
	}
}

// TestPartitionDisjointAndWithinSets: over random systems, the
// upstream/downstream partitions are disjoint subsets of S^I_i ∩ S^D_j.
func TestPartitionDisjointAndWithinSets(t *testing.T) {
	prop := func(seed int64) bool {
		sys := randomSystem(t, seed, 25)
		sets := core.BuildSets(sys)
		for i := 0; i < sys.NumFlows(); i++ {
			indirect := make(map[int]bool)
			for _, k := range sets.Indirect(i) {
				indirect[k] = true
			}
			for _, j := range sets.Direct(i) {
				up := sets.Upstream(i, j)
				down := sets.Downstream(i, j)
				inUp := make(map[int]bool)
				for _, k := range up {
					inUp[k] = true
					if !indirect[k] {
						t.Logf("seed %d: upstream member %d not in S^I(%d)", seed, k, i)
						return false
					}
					if !sys.HigherPriority(k, j) || len(sets.CD(j, k)) == 0 {
						return false
					}
				}
				for _, k := range down {
					if inUp[k] {
						t.Logf("seed %d: flow %d both upstream and downstream", seed, k)
						return false
					}
					if !indirect[k] {
						return false
					}
					if !sys.HigherPriority(k, j) || len(sets.CD(j, k)) == 0 {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestCDSymmetricSameLinks: cd(i,j) and cd(j,i) contain the same links.
func TestCDSymmetricSameLinks(t *testing.T) {
	prop := func(seed int64) bool {
		sys := randomSystem(t, seed, 20)
		sets := core.BuildSets(sys)
		n := sys.NumFlows()
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				a, b := sets.CD(i, j), sets.CD(j, i)
				if len(a) != len(b) {
					return false
				}
				m := make(map[noc.LinkID]bool, len(a))
				for _, l := range a {
					m[l] = true
				}
				for _, l := range b {
					if !m[l] {
						return false
					}
				}
				// Ordered along route_i.
				if !sys.Route(i).IsContiguousIn(a) {
					t.Logf("seed %d: cd(%d,%d) not contiguous along route %d", seed, i, j, i)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestBufferedInterferenceFormula pins Equation 6 against a hand
// computation on varying configurations.
func TestBufferedInterferenceFormula(t *testing.T) {
	topo := noc.MustMesh(10, 1, noc.RouterConfig{BufDepth: 5, LinkLatency: 3, RouteLatency: 2})
	sys := traffic.MustSystem(topo, []traffic.Flow{
		{Name: "j", Priority: 1, Period: 1e6, Deadline: 1e6, Length: 10, Src: 0, Dst: 9},
		{Name: "i", Priority: 2, Period: 1e6, Deadline: 1e6, Length: 10, Src: 2, Dst: 6},
	})
	sets := core.BuildSets(sys)
	// cd(i=1, j=0) = mesh links r2→r3..r5→r6 = 4 links.
	if got := len(sets.CD(1, 0)); got != 4 {
		t.Fatalf("|cd| = %d, want 4", got)
	}
	if got, want := sets.BufferedInterference(1, 0, 0), noc.Cycles(5*3*4); got != want {
		t.Errorf("bi = %d, want %d", got, want)
	}
	if got, want := sets.BufferedInterference(1, 0, 2), noc.Cycles(2*3*4); got != want {
		t.Errorf("bi override = %d, want %d", got, want)
	}
}

// TestClusters pins the contention-cluster decomposition on hand-built
// geometries: chains of pairwise-sharing flows coalesce transitively,
// link-disjoint flows stay apart, and the ordering contract (clusters by
// smallest member, members ascending) holds.
func TestClusters(t *testing.T) {
	t.Run("chain coalesces transitively", func(t *testing.T) {
		// a(0→4) shares with b(3→7), b shares with c(6→9), but a and c
		// are link-disjoint: one cluster all the same, via b.
		sys := lineSystem(t,
			[3]int{1, 0, 4},
			[3]int{2, 3, 7},
			[3]int{3, 6, 9},
		)
		got := core.BuildSets(sys).Clusters()
		if len(got) != 1 || len(got[0]) != 3 {
			t.Fatalf("Clusters = %v, want one cluster of all three", got)
		}
	})
	t.Run("disjoint flows split", func(t *testing.T) {
		// Two contending pairs on disjoint segments plus one solo flow.
		sys := lineSystem(t,
			[3]int{1, 0, 2},
			[3]int{2, 1, 3},
			[3]int{3, 5, 7},
			[3]int{4, 6, 8},
			[3]int{5, 9, 4}, // opposite direction: disjoint links
		)
		got := core.BuildSets(sys).Clusters()
		want := [][]int{{0, 1}, {2, 3}, {4}}
		if len(got) != len(want) {
			t.Fatalf("Clusters = %v, want %v", got, want)
		}
		for c := range want {
			if len(got[c]) != len(want[c]) {
				t.Fatalf("Clusters = %v, want %v", got, want)
			}
			for k := range want[c] {
				if got[c][k] != want[c][k] {
					t.Fatalf("Clusters = %v, want %v", got, want)
				}
			}
		}
	})
	t.Run("every flow appears exactly once", func(t *testing.T) {
		sys := lineSystem(t,
			[3]int{3, 0, 9},
			[3]int{1, 2, 5},
			[3]int{2, 9, 0},
			[3]int{4, 4, 8},
		)
		seen := make(map[int]int)
		for _, cl := range core.BuildSets(sys).Clusters() {
			for _, f := range cl {
				seen[f]++
			}
		}
		for i := 0; i < sys.NumFlows(); i++ {
			if seen[i] != 1 {
				t.Errorf("flow %d appears %d times across clusters", i, seen[i])
			}
		}
	})
}
