package core_test

import (
	"strings"
	"sync"
	"testing"

	"wormnoc/internal/core"
	"wormnoc/internal/noc"
	"wormnoc/internal/traffic"
	"wormnoc/internal/workload"
)

var engineMethods = []struct {
	name string
	opt  core.Options
}{
	{"SB", core.Options{Method: core.SB}},
	{"SLA", core.Options{Method: core.SLA}},
	{"XLWX", core.Options{Method: core.XLWX}},
	{"IBN", core.Options{Method: core.IBN}},
	{"IBN-eq7", core.Options{Method: core.IBN, Eq7: true}},
	{"IBN-nofb", core.Options{Method: core.IBN, NoUpstreamFallback: true}},
}

func sameResult(t *testing.T, label string, want, got *core.Result) {
	t.Helper()
	if want.Schedulable != got.Schedulable {
		t.Errorf("%s: Schedulable = %v, want %v", label, got.Schedulable, want.Schedulable)
	}
	if len(want.Flows) != len(got.Flows) {
		t.Fatalf("%s: %d flows, want %d", label, len(got.Flows), len(want.Flows))
	}
	for i := range want.Flows {
		if want.Flows[i] != got.Flows[i] {
			t.Errorf("%s: flow %d = %+v, want %+v", label, i, got.Flows[i], want.Flows[i])
		}
	}
}

// TestEngineMatchesAnalyze pins the refactoring invariant: an Engine must
// reproduce core.Analyze bit for bit, for every method, on the didactic
// example and on random systems — including repeated runs on the same
// engine (recycled arenas must not leak state between runs).
func TestEngineMatchesAnalyze(t *testing.T) {
	systems := []*traffic.System{workload.Didactic(2), workload.Didactic(100)}
	for seed := int64(1); seed <= 8; seed++ {
		systems = append(systems, randomSystem(t, seed, 20))
	}
	for si, sys := range systems {
		eng := core.NewEngine(sys)
		for round := 0; round < 2; round++ { // round 1 exercises pooled arenas
			for _, m := range engineMethods {
				want, err := core.Analyze(sys, m.opt)
				if err != nil {
					t.Fatalf("system %d %s: Analyze: %v", si, m.name, err)
				}
				got, err := eng.Analyze(m.opt)
				if err != nil {
					t.Fatalf("system %d %s: engine: %v", si, m.name, err)
				}
				sameResult(t, m.name, want, got)
			}
		}
	}
}

// TestEngineConcurrentReuse runs all four analyses over one shared engine
// from parallel goroutines (under -race in CI) and checks every result
// against a sequential baseline, plus that the cumulative telemetry saw
// the traffic.
func TestEngineConcurrentReuse(t *testing.T) {
	sys := randomSystem(t, 3, 25)
	eng := core.NewEngine(sys)
	baseline := make([]*core.Result, len(engineMethods))
	for mi, m := range engineMethods {
		res, err := eng.Analyze(m.opt)
		if err != nil {
			t.Fatalf("%s: %v", m.name, err)
		}
		baseline[mi] = res
	}

	const rounds = 8
	var wg sync.WaitGroup
	errs := make(chan error, rounds*len(engineMethods))
	for r := 0; r < rounds; r++ {
		for mi := range engineMethods {
			wg.Add(1)
			go func(mi int) {
				defer wg.Done()
				got, err := eng.Analyze(engineMethods[mi].opt)
				if err != nil {
					errs <- err
					return
				}
				for i := range got.Flows {
					if got.Flows[i] != baseline[mi].Flows[i] {
						t.Errorf("%s: concurrent flow %d = %+v, want %+v",
							engineMethods[mi].name, i, got.Flows[i], baseline[mi].Flows[i])
						return
					}
				}
			}(mi)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	tel := eng.Telemetry()
	wantRuns := int64((rounds + 1) * len(engineMethods))
	if tel.Runs != wantRuns {
		t.Errorf("Runs = %d, want %d", tel.Runs, wantRuns)
	}
	if want := wantRuns * int64(sys.NumFlows()); tel.Flows != want {
		t.Errorf("Flows = %d, want %d", tel.Flows, want)
	}
	if tel.Iterations == 0 {
		t.Error("Iterations = 0, want > 0")
	}
	if tel.MemoMisses == 0 {
		t.Error("MemoMisses = 0, want > 0 (XLWX/IBN ran)")
	}
	if tel.FlowNanos == 0 || tel.MaxFlowNanos == 0 {
		t.Errorf("FlowNanos = %d, MaxFlowNanos = %d, want > 0", tel.FlowNanos, tel.MaxFlowNanos)
	}
}

func TestAnalyzeWithTelemetry(t *testing.T) {
	sys := workload.Didactic(2)
	eng := core.NewEngine(sys)
	res, tel, err := eng.AnalyzeWithTelemetry(core.Options{Method: core.XLWX})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Schedulable {
		t.Fatalf("didactic set must be XLWX-schedulable: %+v", res.Flows)
	}
	if tel.Runs != 1 {
		t.Errorf("Runs = %d, want 1", tel.Runs)
	}
	if tel.Flows != int64(sys.NumFlows()) {
		t.Errorf("Flows = %d, want %d", tel.Flows, sys.NumFlows())
	}
	if tel.Iterations < int64(sys.NumFlows()) {
		t.Errorf("Iterations = %d, want >= one per flow", tel.Iterations)
	}
	if tel.MemoMisses == 0 {
		t.Error("MemoMisses = 0, want > 0 (didactic has direct interference)")
	}
	if len(tel.PerFlowNanos) != sys.NumFlows() {
		t.Fatalf("len(PerFlowNanos) = %d, want %d", len(tel.PerFlowNanos), sys.NumFlows())
	}
	var sum, max int64
	for _, d := range tel.PerFlowNanos {
		sum += d
		if d > max {
			max = d
		}
	}
	if sum != tel.FlowNanos || max != tel.MaxFlowNanos {
		t.Errorf("per-flow timings (sum %d, max %d) disagree with totals (%d, %d)",
			sum, max, tel.FlowNanos, tel.MaxFlowNanos)
	}

	// The SB/SLA paths have no downstream recursion, so their runs must
	// not touch the memos.
	_, tel, err = eng.AnalyzeWithTelemetry(core.Options{Method: core.SB})
	if err != nil {
		t.Fatal(err)
	}
	if tel.MemoHits != 0 || tel.MemoMisses != 0 {
		t.Errorf("SB run touched the idown memo: hits %d, misses %d", tel.MemoHits, tel.MemoMisses)
	}
}

func TestTelemetryAddAndString(t *testing.T) {
	a := core.Telemetry{Runs: 1, Flows: 4, Iterations: 10, MemoHits: 2, MemoMisses: 3,
		MaxDownstreamDepth: 2, FlowNanos: 100, MaxFlowNanos: 60}
	b := core.Telemetry{Runs: 2, Flows: 8, Iterations: 5, MemoHits: 1, MemoMisses: 1,
		MaxDownstreamDepth: 5, FlowNanos: 50, MaxFlowNanos: 40}
	a.Add(b)
	if a.Runs != 3 || a.Flows != 12 || a.Iterations != 15 || a.MemoHits != 3 || a.MemoMisses != 4 {
		t.Errorf("Add sums wrong: %+v", a)
	}
	if a.MaxDownstreamDepth != 5 || a.MaxFlowNanos != 60 || a.FlowNanos != 150 {
		t.Errorf("Add gauges wrong: %+v", a)
	}
	s := a.String()
	for _, want := range []string{"3 run(s)", "12 flow(s)", "15", "3/4"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q, missing %q", s, want)
		}
	}
}

func TestEngineUnknownMethod(t *testing.T) {
	eng := core.NewEngine(workload.Didactic(2))
	_, err := eng.Analyze(core.Options{Method: core.Method(99)})
	if err == nil || !strings.Contains(err.Error(), "unknown analysis method") {
		t.Fatalf("err = %v, want unknown-method error", err)
	}
	_, err = eng.Explain(core.Options{Method: core.Method(99)}, 0)
	if err == nil || !strings.Contains(err.Error(), "unknown analysis method") {
		t.Fatalf("Explain err = %v, want unknown-method error", err)
	}
	_, err = eng.Explain(core.Options{Method: core.IBN}, 99)
	if err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Fatalf("Explain err = %v, want out-of-range error", err)
	}
}

// benchSystem is a 4x4 mesh with enough flows for the memo arenas to
// matter.
func benchSystem(b *testing.B) *traffic.System {
	b.Helper()
	topo := noc.MustMesh(4, 4, noc.RouterConfig{BufDepth: 2, LinkLatency: 1, RouteLatency: 0})
	sys, err := workload.Synthetic(topo, workload.SynthConfig{NumFlows: 60, Seed: 7})
	if err != nil {
		b.Fatal(err)
	}
	return sys
}

// BenchmarkEngineReuse measures repeated analysis on one engine: the
// sets are built once and the arenas are recycled.
func BenchmarkEngineReuse(b *testing.B) {
	sys := benchSystem(b)
	eng := core.NewEngine(sys)
	opt := core.Options{Method: core.IBN}
	if _, err := eng.Analyze(opt); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Analyze(opt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEnginePerCallAnalyze is the baseline: a fresh engine (sets,
// arenas) per call, which is what core.Analyze does.
func BenchmarkEnginePerCallAnalyze(b *testing.B) {
	sys := benchSystem(b)
	opt := core.Options{Method: core.IBN}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Analyze(sys, opt); err != nil {
			b.Fatal(err)
		}
	}
}
