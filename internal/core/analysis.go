package core

import (
	"context"
	"fmt"
	"strconv"

	"wormnoc/internal/faultinject"
	"wormnoc/internal/noc"
	"wormnoc/internal/traffic"
)

// Method selects one of the response-time analyses.
type Method int

const (
	// SB is the Shi & Burns 2008 analysis. It predates the discovery of
	// multi-point progressive blocking and produces OPTIMISTIC (unsafe)
	// bounds in MPB scenarios; it is included as the historic baseline the
	// paper plots in Figure 4.
	SB Method = iota
	// XLWX is the Xiong et al. 2017 analysis with the interference-jitter
	// fix of Indrusiak et al. (Equation 5 of the paper): the safe
	// state-of-the-art baseline, which treats downstream indirect
	// interference as if it were direct interference.
	XLWX
	// IBN is the paper's proposed buffer-aware analysis (Equations 6–8):
	// like XLWX but bounding each downstream hit's replayed interference
	// by the buffer capacity of the contention domain.
	IBN
	// SLA is a simplified stage-level analysis in the spirit of Kashif &
	// Patel 2015: SB refined by the buffered overlap along the contention
	// domain (see sla.go). Equal to SB at 1-flit buffers, tighter with
	// deeper ones, and — like SB — UNSAFE under MPB.
	SLA
)

// String returns the method's canonical name ("SB", "XLWX", "IBN",
// "SLA"), the inverse of ParseMethod.
func (m Method) String() string {
	switch m {
	case SB:
		return "SB"
	case XLWX:
		return "XLWX"
	case IBN:
		return "IBN"
	case SLA:
		return "SLA"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// Options configures an analysis run.
type Options struct {
	// Method selects the analysis. Default SB (zero value) is explicit in
	// all call sites of this repository; prefer naming it.
	Method Method
	// BufDepth overrides buf(Ξ) of the platform when > 0. Only IBN uses
	// the buffer depth; the override makes IBN2/IBN100-style comparisons
	// cheap (no need to rebuild topology or system).
	BufDepth int
	// Eq7 makes IBN use the un-clamped Equation 7 (the buffered
	// interference bi_ij alone, without min-ing it against the XLWX term).
	// As the paper notes, Equation 7 can exceed the XLWX bound when
	// downstream interference cannot fill the contention-domain buffers;
	// this ablation exists to demonstrate exactly that.
	Eq7 bool
	// NoUpstreamFallback disables IBN's safety rule of falling back to the
	// XLWX term for direct interferers that suffer upstream indirect
	// interference (whose packets may arrive "chopped up" into waves,
	// invalidating Equation 8's buffering argument). Disabling the
	// fallback reproduces the optimism hazard discussed in Section IV and
	// must not be used for real guarantees.
	NoUpstreamFallback bool
	// MaxIterations caps the response-time fixed-point iteration per flow
	// (0 means DefaultMaxIterations). The iteration is monotone, so the
	// cap only triggers on pathological inputs.
	MaxIterations int
}

// DefaultMaxIterations is the per-flow fixed-point iteration cap applied
// when Options.MaxIterations is zero or negative. Exported so cache-key
// canonicalisation (internal/canon) can map "unset" and "default" to the
// same key.
const DefaultMaxIterations = 1 << 20

// FlowStatus describes the outcome of analysing one flow.
type FlowStatus int

const (
	// Schedulable: the fixed point converged with R <= D.
	Schedulable FlowStatus = iota
	// DeadlineMiss: the response-time bound exceeded the deadline.
	DeadlineMiss
	// DependencyFailed: a higher-priority flow this flow's bound depends
	// on was itself unschedulable, so no bound could be computed.
	DependencyFailed
	// Diverged: the iteration hit MaxIterations without converging.
	Diverged
)

// String returns the status as a lower-case hyphenated word, e.g.
// "schedulable" or "deadline-miss" (the wire form used by cmd/nocserve).
func (st FlowStatus) String() string {
	switch st {
	case Schedulable:
		return "schedulable"
	case DeadlineMiss:
		return "deadline-miss"
	case DependencyFailed:
		return "dependency-failed"
	case Diverged:
		return "diverged"
	default:
		return fmt.Sprintf("FlowStatus(%d)", int(st))
	}
}

// FlowResult is the per-flow outcome of an analysis.
type FlowResult struct {
	// R is the worst-case latency upper bound in cycles. Valid only when
	// Status is Schedulable or DeadlineMiss (for DeadlineMiss it holds the
	// first value observed past the deadline).
	R noc.Cycles
	// Status classifies the outcome.
	Status FlowStatus
}

// Result is the outcome of analysing a whole flow set.
type Result struct {
	// Method is the analysis that produced the result.
	Method Method
	// Flows holds per-flow results, indexed like the System's flows.
	Flows []FlowResult
	// Schedulable is true when every flow's bound meets its deadline.
	Schedulable bool
}

// R returns the response-time bound of flow i.
func (r *Result) R(i int) noc.Cycles { return r.Flows[i].R }

// Analyze computes worst-case response-time bounds for every flow of the
// system under the selected analysis. Flows are processed from highest
// to lowest priority; a flow whose bound depends on an unschedulable
// higher-priority flow is marked DependencyFailed.
//
// For repeated analyses of one system (several methods, buffer depths,
// or concurrent callers) prefer an Engine, which reuses the interference
// sets and the per-run working state.
func Analyze(sys *traffic.System, opt Options) (*Result, error) {
	return NewEngine(sys).Analyze(opt)
}

// AnalyzeContext is Analyze with early cancellation: the run aborts with
// ctx.Err() as soon as the context expires, checked between flows and
// every few fixed-point iterations (see Engine.AnalyzeContext).
func AnalyzeContext(ctx context.Context, sys *traffic.System, opt Options) (*Result, error) {
	return NewEngine(sys).AnalyzeContext(ctx, opt)
}

// AnalyzeWithSets is Analyze with pre-built interference sets, allowing
// several analyses of the same flow set (e.g. SB vs XLWX vs IBN at
// several buffer depths) to share the set construction.
func AnalyzeWithSets(sys *traffic.System, sets *Sets, opt Options) (*Result, error) {
	return NewEngineWithSets(sys, sets).Analyze(opt)
}

// term is one direct interferer's precomputed contribution to the
// fixed-point iteration. Interference terms are independent of R_i (they
// depend only on the already-final bounds of higher-priority flows), so
// they are computed once and the iteration only re-evaluates ceilings.
type term struct {
	jitter  noc.Cycles // J_j (+ interference jitter where applicable)
	period  noc.Cycles // T_j
	hit     noc.Cycles // interference added per hit of τj
	replays noc.Cycles // MPB replay episodes per hit (blocking term)
}

// analyzer is the working state of one analysis run: the selected
// method, the arena holding results and memos, and the run's telemetry.
type analyzer struct {
	sys  *traffic.System
	sets *Sets
	opt  Options
	m    method
	ar   *arena
	// ctx cancels the run early; checked between flows and periodically
	// inside the fixed-point loop. Never nil (context.Background() when
	// the caller supplied none).
	ctx context.Context
	// R and status of flows already analysed (higher priority first);
	// views into the arena.
	R        []noc.Cycles
	status   []FlowStatus
	analyzed []bool
	// depth tracks the live I^down recursion depth for telemetry.
	depth int64
	tel   Telemetry
}

// errDependency signals that a required higher-priority bound is missing.
type errDependency struct{ flow int }

func (e errDependency) Error() string {
	return fmt.Sprintf("core: depends on unschedulable flow %d", e.flow)
}

// ceilDiv returns ceil(a/b) for a >= 0, b > 0.
func ceilDiv(a, b noc.Cycles) noc.Cycles {
	return (a + b - 1) / b
}

// ctxCheckInterval is how many fixed-point iterations pass between
// context-cancellation checks. A power of two so the check compiles to a
// mask; small enough that even a 1ms deadline aborts a pathological
// iteration promptly.
const ctxCheckInterval = 64

// analyzeFlow computes the response-time bound of flow i, assuming all
// higher-priority flows have been analysed already. It returns a non-nil
// error only when the run's context was cancelled mid-iteration (or a
// fault was injected at the fixed-point site under test); every
// analytical outcome (including divergence) is reported via the flow's
// status instead.
func (a *analyzer) analyzeFlow(i int) error {
	return a.analyzeFlowFrom(i, 0)
}

// analyzeFlowFrom is analyzeFlow with a warm-start seed: when seed
// exceeds the zero-load latency, the fixed-point iteration starts there
// instead of at C_i. The iteration function F is monotone in r, so any
// seed r0 with C_i <= r0 <= lfp (the least fixed point at or above C_i)
// yields iterates squeezed between the cold Kleene chain and lfp, and
// therefore converges to exactly lfp — the monotone-restart argument the
// incremental engine relies on when it seeds from a previous converged
// bound after an interference-enlarging edit. A seed above lfp would
// converge to some higher fixed point; callers must only pass seeds
// known to be at or below the new least fixed point.
func (a *analyzer) analyzeFlowFrom(i int, seed noc.Cycles) error {
	defer func() { a.analyzed[i] = true }()
	fi := a.sys.Flow(i)
	ci := a.sys.C(i)
	// An arena reused across incremental passes holds stale values;
	// every outcome below must write R[i], including the dependency
	// failures that leave it at the cold-run zero.
	a.R[i] = 0

	terms := a.ar.terms[:0]
	defer func() { a.ar.terms = terms[:0] }()
	// Non-preemptive flit-transfer blocking applies only to multi-cycle
	// links (see blocking.go); it is zero in the paper's configuration.
	var blockPerEpisode noc.Cycles
	if linkl := a.sys.Topology().Config().LinkLatency; linkl > 1 {
		blockPerEpisode = (linkl - 1) * noc.Cycles(a.sharedLowLinks(i))
	}
	for _, j := range a.sets.Direct(i) {
		if a.status[j] != Schedulable {
			a.status[i] = DependencyFailed
			return nil
		}
		jitter, hit, err := a.m.term(a, i, j)
		if err != nil {
			a.status[i] = DependencyFailed
			return nil
		}
		t := term{jitter: jitter, period: a.sys.Flow(j).Period, hit: hit}
		if blockPerEpisode > 0 {
			replays, err := a.replayEpisodes(i, j)
			if err != nil {
				a.status[i] = DependencyFailed
				return nil
			}
			t.replays = replays
		}
		terms = append(terms, t)
	}

	r := ci
	if seed > ci {
		r = seed
	}
	for iter := 0; ; iter++ {
		if iter%ctxCheckInterval == 0 {
			if err := a.ctx.Err(); err != nil {
				return err
			}
			if faultinject.Enabled() {
				if err := faultinject.Fire(a.ctx, faultinject.SiteCoreFixedPoint, strconv.Itoa(i)); err != nil {
					return err
				}
			}
		}
		a.tel.Iterations++
		next := ci
		episodes := noc.Cycles(1)
		for _, t := range terms {
			hits := ceilDiv(r+t.jitter, t.period)
			next += hits * t.hit
			episodes += hits * (1 + t.replays)
		}
		next += blockPerEpisode * episodes
		if next == r {
			a.R[i] = r
			// Convergence alone is not schedulability: a flow whose
			// zero-load latency already exceeds its deadline converges
			// at r = C on the first iteration without ever taking the
			// growth path below.
			if r > fi.Deadline {
				a.status[i] = DeadlineMiss
			} else {
				a.status[i] = Schedulable
			}
			return nil
		}
		r = next
		if r > fi.Deadline {
			a.R[i] = r
			a.status[i] = DeadlineMiss
			return nil
		}
		if iter >= a.opt.MaxIterations {
			a.R[i] = r
			a.status[i] = Diverged
			return nil
		}
	}
}

// hasIndirectVia reports whether some flow of S^I_i directly interferes
// with τj, i.e. whether τj can pass indirect interference on to τi.
func (a *analyzer) hasIndirectVia(i, j int) bool {
	for _, k := range a.sets.Indirect(i) {
		if a.sys.HigherPriority(k, j) && len(a.sets.CD(j, k)) > 0 {
			return true
		}
	}
	return false
}

// requireR returns the final response-time bound of flow j, or an error
// when j was not schedulable (its bound is then meaningless).
func (a *analyzer) requireR(j int) (noc.Cycles, error) {
	if !a.analyzed[j] || a.status[j] != Schedulable {
		return 0, errDependency{flow: j}
	}
	return a.R[j], nil
}

// enter/leave bracket one level of the I^down recursion for the depth
// telemetry.
func (a *analyzer) enter() {
	a.depth++
	if a.depth > a.tel.MaxDownstreamDepth {
		a.tel.MaxDownstreamDepth = a.depth
	}
}

func (a *analyzer) leave() { a.depth-- }

// idownXLWX evaluates Equation 3: the downstream indirect interference
// suffered by τj from every τk ∈ S^downj_Ii, each hit of τk costing its
// full interference contribution C_k + I^down_{kj}. Memoised in the
// arena's XLWX space, which also serves IBN's upstream fallback.
func (a *analyzer) idownXLWX(j, i int) (noc.Cycles, error) {
	rank := a.sets.pairRank(j, i)
	if a.ar.xlwxSet[rank] {
		a.tel.MemoHits++
		return a.ar.xlwxVal[rank], nil
	}
	a.tel.MemoMisses++
	a.enter()
	defer a.leave()
	rj, err := a.requireR(j)
	if err != nil {
		return 0, err
	}
	var sum noc.Cycles
	for _, k := range a.sets.Downstream(i, j) {
		rk, err := a.requireR(k)
		if err != nil {
			return 0, err
		}
		fk := a.sys.Flow(k)
		inner, err := a.idownXLWX(k, j)
		if err != nil {
			return 0, err
		}
		jiK := rk - a.sys.C(k)
		hits := ceilDiv(rj+fk.Jitter+jiK, fk.Period)
		sum += hits * (a.sys.C(k) + inner)
	}
	a.ar.xlwxVal[rank] = sum
	a.ar.xlwxSet[rank] = true
	return sum, nil
}

// idownIBN evaluates the proposed analysis's downstream term:
//
//   - when τj suffers upstream indirect interference (S^upj_Ii non-empty)
//     its packets may arrive into cd_ij chopped into waves, so Equation 8
//     is not applicable and the XLWX term (Equation 3) is used — the
//     proposed analysis is then exactly XLWX for this pair;
//   - otherwise, Equation 8: each downstream hit by τk costs
//     min(bi_ij, C_k + I^down_{kj}), where bi_ij (Equation 6) is the
//     buffer capacity of the contention domain cd_ij.
func (a *analyzer) idownIBN(j, i int) (noc.Cycles, error) {
	rank := a.sets.pairRank(j, i)
	if a.ar.ibnSet[rank] {
		a.tel.MemoHits++
		return a.ar.ibnVal[rank], nil
	}
	if !a.opt.NoUpstreamFallback && len(a.sets.Upstream(i, j)) > 0 {
		return a.idownXLWX(j, i)
	}
	a.tel.MemoMisses++
	a.enter()
	defer a.leave()
	rj, err := a.requireR(j)
	if err != nil {
		return 0, err
	}
	bi := a.sets.BufferedInterference(i, j, a.opt.BufDepth)
	var sum noc.Cycles
	for _, k := range a.sets.Downstream(i, j) {
		fk := a.sys.Flow(k)
		perHit := bi
		if !a.opt.Eq7 {
			inner, err := a.idownIBN(k, j)
			if err != nil {
				return 0, err
			}
			if alt := a.sys.C(k) + inner; alt < perHit {
				perHit = alt
			}
		}
		hits := ceilDiv(rj+fk.Jitter, fk.Period)
		sum += hits * perHit
	}
	a.ar.ibnVal[rank] = sum
	a.ar.ibnSet[rank] = true
	return sum, nil
}
