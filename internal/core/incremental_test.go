package core_test

import (
	"context"
	"math/rand"
	"testing"
	"testing/quick"

	"wormnoc/internal/core"
	"wormnoc/internal/noc"
	"wormnoc/internal/oracle"
	"wormnoc/internal/traffic"
	"wormnoc/internal/workload"
)

// allOptions is the configuration matrix every incremental-vs-scratch
// comparison runs under: all four methods, plus an IBN variant with a
// pinned buffer override (insensitive to platform buf-depth deltas).
var allOptions = []core.Options{
	{Method: core.SB},
	{Method: core.SLA},
	{Method: core.XLWX},
	{Method: core.IBN},
	{Method: core.IBN, BufDepth: 4},
}

// requireSameResult fails the test when the two results are not
// bit-identical (per-flow R and status, and the aggregate flag).
func requireSameResult(t *testing.T, tag string, got, want *core.Result) bool {
	t.Helper()
	if got.Schedulable != want.Schedulable || len(got.Flows) != len(want.Flows) {
		t.Errorf("%s: schedulable=%v/%d flows, want %v/%d flows",
			tag, got.Schedulable, len(got.Flows), want.Schedulable, len(want.Flows))
		return false
	}
	for i := range got.Flows {
		if got.Flows[i] != want.Flows[i] {
			t.Errorf("%s: flow %d: got {R=%d %v}, want {R=%d %v}",
				tag, i, got.Flows[i].R, got.Flows[i].Status, want.Flows[i].R, want.Flows[i].Status)
			return false
		}
	}
	return true
}

// checkStep compares the incremental engine's result against a fresh
// from-scratch analysis of sys for every configuration of the matrix.
func checkStep(t *testing.T, tag string, inc *core.Incremental, sys *traffic.System) bool {
	t.Helper()
	sets := core.BuildSets(sys)
	for _, opt := range allOptions {
		got, err := inc.Analyze(context.Background(), opt)
		if err != nil {
			t.Errorf("%s %v: incremental: %v", tag, opt.Method, err)
			return false
		}
		want := analyze(t, sys, sets, opt)
		if !requireSameResult(t, tag+" "+opt.Method.String(), got, want) {
			return false
		}
	}
	return true
}

// TestIncrementalMatchesScratchChains is the central property of the
// delta-aware engine: a random edit chain applied incrementally yields
// results bit-identical to re-analysing the edited system from scratch,
// at every step, for every method.
func TestIncrementalMatchesScratchChains(t *testing.T) {
	prop := func(seed int64) bool {
		sys := randomSystem(t, seed, 24)
		deltas, _, err := oracle.RandomDeltas(seed, sys, 10)
		if err != nil {
			t.Fatal(err)
		}
		inc := core.NewIncremental(sys)
		if !checkStep(t, "base", inc, sys) {
			return false
		}
		cur := sys
		for di, d := range deltas {
			next, err := core.ApplyDelta(cur, d)
			if err != nil {
				t.Fatalf("seed %d delta %d (%v): %v", seed, di, d, err)
			}
			cur = next
			if err := inc.Apply(d); err != nil {
				t.Errorf("seed %d delta %d (%v): incremental apply: %v", seed, di, d, err)
				return false
			}
			if !checkStep(t, d.String(), inc, cur) {
				t.Logf("seed %d diverged at delta %d", seed, di)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestIncrementalGrowShrink drives the warm-start path directly: a wave
// of interference-enlarging edits (period down, jitter up, payload up)
// followed by the exact opposites, comparing against scratch at every
// step and asserting the warm path was actually taken during the
// growing wave.
func TestIncrementalGrowShrink(t *testing.T) {
	sys := randomSystem(t, 7, 24)
	inc := core.NewIncremental(sys)
	if !checkStep(t, "base", inc, sys) {
		t.FailNow()
	}
	rng := rand.New(rand.NewSource(7))
	cur := sys
	apply := func(d core.Delta) {
		t.Helper()
		next, err := core.ApplyDelta(cur, d)
		if err != nil {
			t.Fatalf("%v: %v", d, err)
		}
		if err := inc.Apply(d); err != nil {
			t.Fatalf("%v: incremental: %v", d, err)
		}
		cur = next
		if !checkStep(t, d.String(), inc, cur) {
			t.FailNow()
		}
	}
	var grown []core.Delta
	for step := 0; step < 8; step++ {
		k := rng.Intn(cur.NumFlows())
		f := cur.Flow(k)
		var d core.Delta
		switch step % 3 {
		case 0: // period down (but not below the deadline)
			p := f.Deadline + (f.Period-f.Deadline)/2
			d = core.Delta{Kind: core.DeltaPeriod, Flow: k, Cycles: p}
		case 1: // jitter up
			d = core.Delta{Kind: core.DeltaJitter, Flow: k, Cycles: f.Jitter + noc.Cycles(50+rng.Intn(200))}
		default: // payload up
			d = core.Delta{Kind: core.DeltaLength, Flow: k, Length: f.Length + 1 + rng.Intn(64)}
		}
		grown = append(grown, core.Delta{Kind: d.Kind, Flow: k,
			Cycles: map[core.DeltaKind]noc.Cycles{core.DeltaPeriod: f.Period, core.DeltaJitter: f.Jitter}[d.Kind],
			Length: f.Length})
		apply(d)
	}
	if st := inc.Stats(); st.WarmAccepted == 0 {
		t.Errorf("growing wave never warm-started a fixed point: %+v", st)
	}
	// Undo every edit in reverse: each undo shrinks interference, so the
	// engine must take the cold path yet still match scratch exactly.
	for i := len(grown) - 1; i >= 0; i-- {
		apply(grown[i])
	}
}

// TestIncrementalBufDepthDelta covers the platform buffer-depth edit in
// both directions: invisible to SB/XLWX and to a pinned Options.BufDepth
// run, interference-growing for IBN, interference-shrinking for SLA.
func TestIncrementalBufDepthDelta(t *testing.T) {
	sys := randomSystem(t, 11, 20)
	inc := core.NewIncremental(sys)
	if !checkStep(t, "base", inc, sys) {
		t.FailNow()
	}
	cur := sys
	for _, buf := range []int{1, 8, 3, 16, 2} {
		d := core.Delta{Kind: core.DeltaBufDepth, BufDepth: buf}
		next, err := core.ApplyDelta(cur, d)
		if err != nil {
			t.Fatalf("buf %d: %v", buf, err)
		}
		if err := inc.Apply(d); err != nil {
			t.Fatalf("buf %d: incremental: %v", buf, err)
		}
		cur = next
		if !checkStep(t, d.String(), inc, cur) {
			t.FailNow()
		}
	}
}

// TestIncrementalDependencyPropagation forces a deadline edit that flips
// a high-priority flow to DeadlineMiss and back, verifying the frontier
// carries the dependency failures to every transitive dependent.
func TestIncrementalDependencyPropagation(t *testing.T) {
	sys := randomSystem(t, 13, 20)
	inc := core.NewIncremental(sys)
	if !checkStep(t, "base", inc, sys) {
		t.FailNow()
	}
	// Pick the highest-priority flow with direct dependents.
	sets := core.BuildSets(sys)
	victim := -1
	for _, i := range sys.ByPriority() {
		for j := 0; j < sys.NumFlows(); j++ {
			for _, d := range sets.Direct(j) {
				if d == i {
					victim = i
					break
				}
			}
		}
		if victim >= 0 {
			break
		}
	}
	if victim < 0 {
		t.Skip("no interference in generated system")
	}
	old := sys.Flow(victim).Deadline
	cur := sys
	for _, dl := range []noc.Cycles{1, old} {
		d := core.Delta{Kind: core.DeltaDeadline, Flow: victim, Cycles: dl}
		next, err := core.ApplyDelta(cur, d)
		if err != nil {
			t.Fatal(err)
		}
		if err := inc.Apply(d); err != nil {
			t.Fatal(err)
		}
		cur = next
		if !checkStep(t, d.String(), inc, cur) {
			t.FailNow()
		}
	}
}

// TestIncrementalSnapshotRollback: snapshot → edit branch → rollback
// round-trips restore bit-identical results, and a snapshot survives
// being rolled back to more than once (edit-tree exploration).
func TestIncrementalSnapshotRollback(t *testing.T) {
	sys := randomSystem(t, 99, 24)
	inc := core.NewIncremental(sys)
	base := make(map[core.Method]*core.Result)
	for _, opt := range allOptions {
		res, err := inc.Analyze(context.Background(), opt)
		if err != nil {
			t.Fatal(err)
		}
		if opt.BufDepth == 0 {
			base[opt.Method] = res
		}
	}
	snap := inc.Snapshot()

	for branch := int64(0); branch < 3; branch++ {
		deltas, edited, err := oracle.RandomDeltas(1000+branch, inc.System(), 6)
		if err != nil {
			t.Fatal(err)
		}
		if err := inc.Apply(deltas...); err != nil {
			t.Fatalf("branch %d: %v", branch, err)
		}
		if !checkStep(t, "branch", inc, edited) {
			t.FailNow()
		}
		inc.Rollback(snap)
		if inc.System() != snap.System() {
			t.Fatalf("branch %d: rollback did not restore the system", branch)
		}
		for _, opt := range allOptions {
			res, err := inc.Analyze(context.Background(), opt)
			if err != nil {
				t.Fatal(err)
			}
			if opt.BufDepth == 0 {
				requireSameResult(t, "rollback "+opt.Method.String(), res, base[opt.Method])
			}
		}
	}
	if st := inc.Stats(); st.Rollbacks != 3 {
		t.Errorf("Rollbacks = %d, want 3", st.Rollbacks)
	}
}

// TestIncrementalCachedResult: with no pending edits, Analyze serves the
// previous result without re-analysing anything.
func TestIncrementalCachedResult(t *testing.T) {
	sys := randomSystem(t, 5, 16)
	inc := core.NewIncremental(sys)
	a, err := inc.Analyze(context.Background(), core.Options{Method: core.IBN})
	if err != nil {
		t.Fatal(err)
	}
	b, err := inc.Analyze(context.Background(), core.Options{Method: core.IBN})
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("second Analyze without edits did not reuse the published result")
	}
	st := inc.Stats()
	if st.CachedRuns != 1 || st.FullRuns != 1 {
		t.Errorf("stats = %+v, want 1 full + 1 cached run", st)
	}
}

// TestIncrementalCancellationRecovers: a cancelled Analyze must not
// poison the state — the next call falls back to a from-scratch pass
// and still matches the scratch engine.
func TestIncrementalCancellationRecovers(t *testing.T) {
	sys := randomSystem(t, 21, 24)
	inc := core.NewIncremental(sys)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := inc.Analyze(ctx, core.Options{Method: core.IBN}); err == nil {
		t.Fatal("expected cancellation error")
	}
	if !checkStep(t, "recovered", inc, sys) {
		t.FailNow()
	}
	// Cancel mid-chain: apply an edit, cancel the partial pass, recover.
	d := core.Delta{Kind: core.DeltaJitter, Flow: 0, Cycles: sys.Flow(0).Jitter + 100}
	edited, err := core.ApplyDelta(sys, d)
	if err != nil {
		t.Fatal(err)
	}
	if err := inc.Apply(d); err != nil {
		t.Fatal(err)
	}
	if _, err := inc.Analyze(ctx, core.Options{Method: core.IBN}); err == nil {
		t.Fatal("expected cancellation error on partial pass")
	}
	if !checkStep(t, "recovered-partial", inc, edited) {
		t.FailNow()
	}
}

// TestIncrementalAddRemoveChain hammers the flow add/remove remapping:
// a chain of alternating adds and removes interleaved with parameter
// edits stays bit-identical to scratch.
func TestIncrementalAddRemoveChain(t *testing.T) {
	topo := noc.MustMesh(3, 3, noc.RouterConfig{BufDepth: 4, LinkLatency: 1})
	sys, err := workload.Synthetic(topo, workload.SynthConfig{
		NumFlows: 8, PeriodMin: 2_000, PeriodMax: 60_000, LenMin: 16, LenMax: 256, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	inc := core.NewIncremental(sys)
	if !checkStep(t, "base", inc, sys) {
		t.FailNow()
	}
	rng := rand.New(rand.NewSource(17))
	cur := sys
	prio := 100
	for step := 0; step < 12; step++ {
		var d core.Delta
		switch step % 3 {
		case 0:
			prio++
			period := noc.Cycles(3_000 + rng.Int63n(30_000))
			src := noc.NodeID(rng.Intn(9))
			dst := noc.NodeID(rng.Intn(8))
			if dst >= src {
				dst++
			}
			d = core.Delta{Kind: core.DeltaAddFlow, NewFlow: traffic.Flow{
				Name: "x", Priority: prio, Period: period, Deadline: period,
				Length: 16 + rng.Intn(64), Src: src, Dst: dst,
			}}
		case 1:
			k := rng.Intn(cur.NumFlows())
			d = core.Delta{Kind: core.DeltaPeriod, Flow: k,
				Cycles: cur.Flow(k).Deadline + noc.Cycles(rng.Int63n(10_000))}
		default:
			d = core.Delta{Kind: core.DeltaRemoveFlow, Flow: rng.Intn(cur.NumFlows())}
		}
		next, err := core.ApplyDelta(cur, d)
		if err != nil {
			t.Fatalf("step %d %v: %v", step, d, err)
		}
		if err := inc.Apply(d); err != nil {
			t.Fatalf("step %d %v: incremental: %v", step, d, err)
		}
		cur = next
		if !checkStep(t, d.String(), inc, cur) {
			t.Fatalf("diverged at step %d (%v)", step, d)
		}
	}
}

// TestIncrementalInvalidDelta: invalid edits are rejected atomically —
// the engine keeps serving results for the unedited system.
func TestIncrementalInvalidDelta(t *testing.T) {
	sys := randomSystem(t, 31, 12)
	inc := core.NewIncremental(sys)
	if !checkStep(t, "base", inc, sys) {
		t.FailNow()
	}
	bad := []core.Delta{
		{Kind: core.DeltaPeriod, Flow: -1, Cycles: 100},
		{Kind: core.DeltaPeriod, Flow: 0, Cycles: 0},
		{Kind: core.DeltaPeriod, Flow: 0, Cycles: sys.Flow(0).Deadline - 1},
		{Kind: core.DeltaPrioritySwap, Flow: 1, Other: 1},
		{Kind: core.DeltaMapping, Flow: 0, Src: 1, Dst: 1},
		{Kind: core.DeltaRemoveFlow, Flow: sys.NumFlows()},
		{Kind: core.DeltaKind(99)},
	}
	for _, d := range bad {
		if err := inc.Apply(d); err == nil {
			t.Errorf("%v: no error", d)
		}
	}
	if !checkStep(t, "after-rejects", inc, sys) {
		t.FailNow()
	}
}
