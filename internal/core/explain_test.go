package core_test

import (
	"strings"
	"testing"
	"testing/quick"

	"wormnoc/internal/core"
	"wormnoc/internal/noc"
	"wormnoc/internal/traffic"
	"wormnoc/internal/workload"
)

// TestExplainDidactic pins the decomposition of τ3's bound on the
// Section V example, for all three analyses.
func TestExplainDidactic(t *testing.T) {
	sys := workload.Didactic(2)
	sets := core.BuildSets(sys)

	sb, err := core.Explain(sys, sets, core.Options{Method: core.SB}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if sb.R != 336 || len(sb.Terms) != 1 {
		t.Fatalf("SB breakdown: %+v", sb)
	}
	if sb.Terms[0].Total != 204 || sb.Terms[0].Hits != 1 || sb.Terms[0].IDown != 0 {
		t.Errorf("SB term: %+v", sb.Terms[0])
	}
	// SB applies the interference jitter JI_2 = 124 (τ2 suffers from τ1).
	if sb.Terms[0].Jitter != 124 {
		t.Errorf("SB jitter = %d, want 124", sb.Terms[0].Jitter)
	}

	xlwx, err := core.Explain(sys, sets, core.Options{Method: core.XLWX}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if xlwx.R != 460 || xlwx.Terms[0].IDown != 124 || xlwx.Terms[0].Total != 328 {
		t.Errorf("XLWX breakdown: %+v", xlwx.Terms[0])
	}

	ibn, err := core.Explain(sys, sets, core.Options{Method: core.IBN}, 2)
	if err != nil {
		t.Fatal(err)
	}
	tm := ibn.Terms[0]
	if ibn.R != 348 || tm.IDown != 12 || tm.BufferedInterference != 6 {
		t.Errorf("IBN breakdown: %+v", tm)
	}
	if tm.UsedFallback {
		t.Error("IBN must not fall back here (no upstream interference)")
	}
	if len(tm.Downstream) != 1 || tm.Downstream[0] != 0 || tm.ContentionDomain != 3 {
		t.Errorf("IBN sets: %+v", tm)
	}
	if s := ibn.String(); !strings.Contains(s, "bi cap 6") || !strings.Contains(s, "R = 348") {
		t.Errorf("IBN rendering:\n%s", s)
	}
}

// TestExplainIdentity: R = C + Σ term totals for every schedulable flow,
// across analyses and random systems.
func TestExplainIdentity(t *testing.T) {
	prop := func(seed int64) bool {
		sys := randomSystem(t, seed, 25)
		sets := core.BuildSets(sys)
		for _, m := range []core.Method{core.SB, core.XLWX, core.IBN} {
			res := analyze(t, sys, sets, core.Options{Method: m})
			for i := 0; i < sys.NumFlows(); i++ {
				if res.Flows[i].Status != core.Schedulable {
					continue
				}
				b, err := core.Explain(sys, sets, core.Options{Method: m}, i)
				if err != nil {
					t.Fatal(err)
				}
				if b.R != res.R(i) {
					t.Logf("seed %d %v flow %d: Explain R %d != Analyze R %d", seed, m, i, b.R, res.R(i))
					return false
				}
				sum := b.Blocking
				for _, tm := range b.Terms {
					sum += tm.Total
				}
				if b.C+sum != b.R {
					t.Logf("seed %d %v flow %d: C %d + Σ %d != R %d", seed, m, i, b.C, sum, b.R)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestExplainErrors(t *testing.T) {
	sys := workload.Didactic(2)
	sets := core.BuildSets(sys)
	if _, err := core.Explain(sys, sets, core.Options{Method: core.IBN}, 9); err == nil {
		t.Error("out-of-range flow must fail")
	}
	if _, err := core.Explain(sys, sets, core.Options{Method: core.Method(9)}, 0); err == nil {
		t.Error("unknown method must fail")
	}
}

// TestExplainDependencyFailed: breakdown of a flow whose dependency
// failed reports the status and no terms.
func TestExplainDependencyFailed(t *testing.T) {
	topo := noc.MustMesh(4, 1, noc.RouterConfig{BufDepth: 2, LinkLatency: 1, RouteLatency: 0})
	sys := traffic.MustSystem(topo, []traffic.Flow{
		{Name: "p1", Priority: 1, Period: 100, Deadline: 100, Length: 80, Src: 0, Dst: 3},
		{Name: "p2", Priority: 2, Period: 300, Deadline: 90, Length: 10, Src: 0, Dst: 3},
		{Name: "p3", Priority: 3, Period: 5000, Deadline: 5000, Length: 10, Src: 0, Dst: 3},
	})
	sets := core.BuildSets(sys)
	b, err := core.Explain(sys, sets, core.Options{Method: core.XLWX}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if b.Status != core.DependencyFailed || len(b.Terms) != 0 {
		t.Errorf("breakdown: %+v", b)
	}
	if !strings.Contains(b.String(), "dependency-failed") {
		t.Errorf("rendering: %s", b.String())
	}
}
