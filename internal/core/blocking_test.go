package core_test

import (
	"testing"

	"wormnoc/internal/core"
	"wormnoc/internal/noc"
	"wormnoc/internal/sim"
	"wormnoc/internal/traffic"
)

// TestBlockingTermRegression reproduces the soundness gap our validation
// found on multi-cycle links: with linkl = 2, atomic flit transfers let
// a lower-priority flit block even the top-priority flow for up to
// linkl−1 cycles — the simulator observed 71 cycles against a pre-fix
// bound of C = 70. The blocking term must cover it.
func TestBlockingTermRegression(t *testing.T) {
	topo := noc.MustMesh(5, 1, noc.RouterConfig{BufDepth: 3, LinkLatency: 2, RouteLatency: 0})
	sys := traffic.MustSystem(topo, []traffic.Flow{
		{Name: "hi", Priority: 1, Period: 1000, Deadline: 1000, Length: 30, Src: 0, Dst: 4},
		{Name: "lo", Priority: 2, Period: 4000, Deadline: 4000, Length: 20, Src: 0, Dst: 4},
	})
	ibn, err := core.Analyze(sys, core.Options{Method: core.IBN})
	if err != nil {
		t.Fatal(err)
	}
	// hi shares all 6 route links with lo: B = (2−1)·6·1 = 6 on top of
	// C = 2·6 + 2·29 = 70.
	if got := ibn.R(0); got != sys.C(0)+6 {
		t.Errorf("R(hi) = %d, want C+6 = %d", got, sys.C(0)+6)
	}
	// The adversarially phased simulation must stay within the bound.
	sweep, err := sim.SweepOffsets(sys, sim.Config{Duration: 20_000}, 0, 1000, 7)
	if err != nil {
		t.Fatal(err)
	}
	if sweep.Worst[0] > ibn.R(0) {
		t.Errorf("observed %d exceeds blocked bound %d", sweep.Worst[0], ibn.R(0))
	}
	if sweep.Worst[0] <= sys.C(0) {
		t.Skip("phasing did not trigger the partial-transfer wait on this run")
	}
}

// TestBlockingZeroOnSingleCycleLinks: the paper's configuration is
// untouched by the blocking term.
func TestBlockingZeroOnSingleCycleLinks(t *testing.T) {
	topo := noc.MustMesh(5, 1, noc.RouterConfig{BufDepth: 3, LinkLatency: 1, RouteLatency: 0})
	sys := traffic.MustSystem(topo, []traffic.Flow{
		{Name: "hi", Priority: 1, Period: 1000, Deadline: 1000, Length: 30, Src: 0, Dst: 4},
		{Name: "lo", Priority: 2, Period: 4000, Deadline: 4000, Length: 20, Src: 0, Dst: 4},
	})
	ibn, err := core.Analyze(sys, core.Options{Method: core.IBN})
	if err != nil {
		t.Fatal(err)
	}
	if ibn.R(0) != sys.C(0) {
		t.Errorf("top-priority bound %d != C %d at linkl=1", ibn.R(0), sys.C(0))
	}
}

// TestBlockingZeroWithoutLowerPriorityNeighbours: a lowest-priority flow
// never waits for lower-priority transfers.
func TestBlockingZeroWithoutLowerPriorityNeighbours(t *testing.T) {
	topo := noc.MustMesh(5, 1, noc.RouterConfig{BufDepth: 3, LinkLatency: 4, RouteLatency: 0})
	sys := traffic.MustSystem(topo, []traffic.Flow{
		{Name: "only", Priority: 1, Period: 10_000, Deadline: 10_000, Length: 30, Src: 0, Dst: 4},
	})
	ibn, err := core.Analyze(sys, core.Options{Method: core.IBN})
	if err != nil {
		t.Fatal(err)
	}
	if ibn.R(0) != sys.C(0) {
		t.Errorf("lone flow bound %d != C %d", ibn.R(0), sys.C(0))
	}
}

// TestBlockingExplainIdentity: the breakdown exposes the blocking term
// and preserves the decomposition identity on multi-cycle links.
func TestBlockingExplainIdentity(t *testing.T) {
	topo := noc.MustMesh(5, 1, noc.RouterConfig{BufDepth: 3, LinkLatency: 2, RouteLatency: 0})
	sys := traffic.MustSystem(topo, []traffic.Flow{
		{Name: "hi", Priority: 1, Period: 1000, Deadline: 1000, Length: 30, Src: 0, Dst: 4},
		{Name: "lo", Priority: 2, Period: 4000, Deadline: 4000, Length: 20, Src: 0, Dst: 4},
	})
	sets := core.BuildSets(sys)
	b, err := core.Explain(sys, sets, core.Options{Method: core.IBN}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if b.Blocking != 6 {
		t.Errorf("Blocking = %d, want 6", b.Blocking)
	}
	sum := b.Blocking
	for _, tm := range b.Terms {
		sum += tm.Total
	}
	if b.C+sum != b.R {
		t.Errorf("identity broken: C %d + Σ %d != R %d", b.C, sum, b.R)
	}
}
