package core

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"

	"wormnoc/internal/traffic"
)

// InternalError is a library invariant violation (a panic inside
// internal/noc, internal/traffic or this package) converted into a
// typed error at a Guard/AnalyzeSafe boundary. Long-lived callers — the
// serving layer above all — use these boundaries so an adversarial or
// malformed system that trips an internal panic (e.g. the memo-key
// check in sets.go) degrades into an error response instead of killing
// the process.
type InternalError struct {
	// Op names the guarded operation, e.g. "analyze" or "engine build".
	Op string
	// Value is the recovered panic value.
	Value any
	// Stack is the goroutine stack captured at the recovery point.
	Stack []byte
}

// Error formats the guarded operation and the recovered panic value;
// the captured stack is not included (inspect Stack directly).
func (e *InternalError) Error() string {
	return fmt.Sprintf("core: internal error in %s: %v", e.Op, e.Value)
}

// Guard runs fn and converts a panic into an *InternalError tagged with
// op. A panic value that already is an *InternalError is passed through
// unchanged, so nested guards do not re-wrap.
func Guard(op string, fn func() error) (err error) {
	defer func() {
		if v := recover(); v != nil {
			if ie, ok := v.(*InternalError); ok {
				err = ie
				return
			}
			err = &InternalError{Op: op, Value: v, Stack: debug.Stack()}
		}
	}()
	return fn()
}

// NewEngineSafe is NewEngine behind a Guard: a panic while building the
// interference sets (malformed routes, inconsistent priorities that
// slipped past validation) returns an *InternalError instead of
// propagating.
func NewEngineSafe(sys *traffic.System) (e *Engine, err error) {
	err = Guard("engine build", func() error {
		e = NewEngine(sys)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return e, nil
}

// AnalyzeSafe is AnalyzeContext behind a Guard: any panic raised inside
// the analysis (invariant violations in the interference sets, the
// solver, or a registered method) is returned as an *InternalError so
// callers never see a raw panic. This is the boundary the serving layer
// crosses for every request.
func (e *Engine) AnalyzeSafe(ctx context.Context, opt Options) (res *Result, err error) {
	err = Guard("analyze", func() error {
		var aerr error
		res, aerr = e.AnalyzeContext(ctx, opt)
		return aerr
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// ApplySafe is Incremental.Apply behind a Guard. A recovered panic may
// have interrupted the per-configuration invalidation mid-way, so every
// cached state is additionally marked for a from-scratch pass — the
// engine stays usable, it just forfeits its incremental advantage once.
func (inc *Incremental) ApplySafe(deltas ...Delta) error {
	err := Guard("incremental apply", func() error { return inc.Apply(deltas...) })
	if err != nil {
		var ie *InternalError
		if errors.As(err, &ie) {
			for _, st := range inc.states {
				st.full = true
			}
		}
	}
	return err
}

// AnalyzeSafe is Incremental.Analyze behind a Guard. Analyze itself
// already marks the configuration for a from-scratch pass on any abort
// (error or panic), so a fault never leaves a half-updated arena being
// served.
func (inc *Incremental) AnalyzeSafe(ctx context.Context, opt Options) (res *Result, err error) {
	err = Guard("incremental analyze", func() error {
		var aerr error
		res, aerr = inc.Analyze(ctx, opt)
		return aerr
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}
