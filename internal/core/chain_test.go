package core_test

import (
	"testing"

	"wormnoc/internal/core"
	"wormnoc/internal/noc"
	"wormnoc/internal/traffic"
)

// chainSystem builds a two-level MPB chain on a 10-router line with
// buf=2, linkl=1, routl=0:
//
//	τk2 (P1): 8→9, L=20,  T=100    C = 22   (hits τk1 downstream)
//	τk1 (P2): 6→9, L=40,  T=500    C = 44   (hits τj downstream)
//	τj  (P3): 0→8, L=100, T=10000  C = 109
//	τi  (P4): 1→5, L=50,  T=20000  C = 55
//
// Geometry: cd(i,j) = 4 mid-line links; cd(j,k1) = 2 links strictly
// downstream of cd(i,j); cd(k1,k2) = 2 links strictly downstream of
// cd(k1,j); k1 and k2 never touch τi, and k2 never touches τj — so τi
// suffers MPB through τj, whose blocker τk1 itself suffers MPB through
// τk2: the I^down recursion goes two levels deep.
func chainSystem(t *testing.T) *traffic.System {
	t.Helper()
	topo := noc.MustMesh(10, 1, noc.RouterConfig{BufDepth: 2, LinkLatency: 1, RouteLatency: 0})
	return traffic.MustSystem(topo, []traffic.Flow{
		{Name: "k2", Priority: 1, Period: 100, Deadline: 100, Length: 20, Src: 8, Dst: 9},
		{Name: "k1", Priority: 2, Period: 500, Deadline: 500, Length: 40, Src: 6, Dst: 9},
		{Name: "j", Priority: 3, Period: 10000, Deadline: 10000, Length: 100, Src: 0, Dst: 8},
		{Name: "i", Priority: 4, Period: 20000, Deadline: 20000, Length: 50, Src: 1, Dst: 5},
	})
}

// TestChainGeometry pins the interference structure the hand computation
// below relies on.
func TestChainGeometry(t *testing.T) {
	sys := chainSystem(t)
	if got := []noc.Cycles{sys.C(0), sys.C(1), sys.C(2), sys.C(3)}; got[0] != 22 || got[1] != 44 || got[2] != 109 || got[3] != 55 {
		t.Fatalf("C = %v, want [22 44 109 55]", got)
	}
	sets := core.BuildSets(sys)
	if d := sets.Direct(3); len(d) != 1 || d[0] != 2 {
		t.Fatalf("S^D(i) = %v, want [j]", d)
	}
	if in := sets.Indirect(3); len(in) != 1 || in[0] != 1 {
		t.Fatalf("S^I(i) = %v, want [k1]", in)
	}
	if in := sets.Indirect(2); len(in) != 1 || in[0] != 0 {
		t.Fatalf("S^I(j) = %v, want [k2]", in)
	}
	if d := sets.Downstream(3, 2); len(d) != 1 || d[0] != 1 {
		t.Fatalf("Downstream(i,j) = %v, want [k1]", d)
	}
	if d := sets.Downstream(2, 1); len(d) != 1 || d[0] != 0 {
		t.Fatalf("Downstream(j,k1) = %v, want [k2]", d)
	}
	if got := len(sets.CD(3, 2)); got != 4 {
		t.Fatalf("|cd(i,j)| = %d, want 4", got)
	}
	if got := len(sets.CD(2, 1)); got != 2 {
		t.Fatalf("|cd(j,k1)| = %d, want 2", got)
	}
	// bi values used below: bi(i,j) = 2·1·4 = 8, bi(j,k1) = 2·1·2 = 4.
	if bi := sets.BufferedInterference(3, 2, 0); bi != 8 {
		t.Fatalf("bi(i,j) = %d, want 8", bi)
	}
	if bi := sets.BufferedInterference(2, 1, 0); bi != 4 {
		t.Fatalf("bi(j,k1) = %d, want 4", bi)
	}
}

// TestChainHandComputed pins the full hand computation of the chain for
// all four analyses:
//
//	R(k2) = 22 everywhere; R(k1) = 44 + 1·22 = 66 everywhere.
//
//	XLWX: I^down(k1,j) = 1·(22+0) = 22          → R(j) = 109 + (44+22) = 175
//	      I^down(j,i)  = 1·(44+22) = 66          → R(i) = 55 + (109+66) = 230
//	IBN:  I^down(k1,j) = 1·min(4, 22) = 4        → R(j) = 109 + (44+4) = 157
//	      I^down(j,i)  = 1·min(8, 44+4) = 8      → R(i) = 55 + (109+8) = 172
//	SB:   R(j) = 109 + 44 = 153 (JI(k1)=22 adds no hit)
//	      R(i) = 55 + 109 = 164 (JI(j)=44 adds no hit)
//	SLA (buf=2): per-hit saving (buf−1)·linkl·|cd| capped by C−L:
//	      k2 on k1: min(1·2, 2)=2; k1 on j: min(1·2, 4)=2;
//	      j on i: min(1·4, 9)=4.
//	      R(k1) = 44+20 = 64; R(j) = 109+42 = 151; R(i) = 55+105 = 160.
func TestChainHandComputed(t *testing.T) {
	sys := chainSystem(t)
	sets := core.BuildSets(sys)
	want := map[core.Method][4]noc.Cycles{
		core.XLWX: {22, 66, 175, 230},
		core.IBN:  {22, 66, 157, 172},
		core.SB:   {22, 66, 153, 164},
		core.SLA:  {22, 64, 151, 160},
	}
	for m, exp := range want {
		res, err := core.AnalyzeWithSets(sys, sets, core.Options{Method: m})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Schedulable {
			t.Fatalf("%v: chain should be schedulable: %+v", m, res.Flows)
		}
		for i, w := range exp {
			if got := res.R(i); got != w {
				t.Errorf("%v: R(%s) = %d, want %d", m, sys.Flow(i).Name, got, w)
			}
		}
	}
}

// TestChainExplainRecursion checks the decomposition exposes the
// two-level recursion: τi's single τj-hit carries I_down = 8 under IBN
// and 66 under XLWX.
func TestChainExplainRecursion(t *testing.T) {
	sys := chainSystem(t)
	sets := core.BuildSets(sys)
	ibn, err := core.Explain(sys, sets, core.Options{Method: core.IBN}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(ibn.Terms) != 1 || ibn.Terms[0].IDown != 8 || ibn.Terms[0].Hits != 1 {
		t.Errorf("IBN term: %+v", ibn.Terms)
	}
	xlwx, err := core.Explain(sys, sets, core.Options{Method: core.XLWX}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(xlwx.Terms) != 1 || xlwx.Terms[0].IDown != 66 {
		t.Errorf("XLWX term: %+v", xlwx.Terms)
	}
}
