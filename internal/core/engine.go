package core

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"time"

	"wormnoc/internal/noc"
	"wormnoc/internal/traffic"
)

// Telemetry aggregates observability counters of one or more analysis
// runs. Engine.Telemetry returns the engine's cumulative counters;
// Engine.AnalyzeWithTelemetry additionally returns a per-run snapshot.
type Telemetry struct {
	// Runs counts completed analysis runs.
	Runs int64
	// Flows counts flows analysed across all runs.
	Flows int64
	// Iterations counts response-time fixed-point iterations.
	Iterations int64
	// MemoHits / MemoMisses count downstream-interference memo lookups
	// (I^down recursion). Both stay zero for SB and SLA, which have no
	// downstream term.
	MemoHits, MemoMisses int64
	// MaxDownstreamDepth is the deepest I^down recursion observed.
	MaxDownstreamDepth int64
	// FlowNanos / MaxFlowNanos track per-flow wall time: the sum over
	// all analysed flows and the slowest single flow.
	FlowNanos, MaxFlowNanos int64
	// PerFlowNanos holds the wall time of each flow of one run, indexed
	// like the system's flows. Only populated on per-run snapshots from
	// AnalyzeWithTelemetry; Add ignores it.
	PerFlowNanos []int64
}

// Add merges the counters of o into t (sums for totals, max for the
// depth and slowest-flow gauges). Per-flow timings are not merged.
func (t *Telemetry) Add(o Telemetry) {
	t.Runs += o.Runs
	t.Flows += o.Flows
	t.Iterations += o.Iterations
	t.MemoHits += o.MemoHits
	t.MemoMisses += o.MemoMisses
	if o.MaxDownstreamDepth > t.MaxDownstreamDepth {
		t.MaxDownstreamDepth = o.MaxDownstreamDepth
	}
	t.FlowNanos += o.FlowNanos
	if o.MaxFlowNanos > t.MaxFlowNanos {
		t.MaxFlowNanos = o.MaxFlowNanos
	}
}

// String renders the telemetry as a short human-readable report (the
// CLIs' -stats output).
func (t Telemetry) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "engine telemetry: %d run(s), %d flow(s) analysed\n", t.Runs, t.Flows)
	fmt.Fprintf(&b, "  fixed-point iterations:   %d\n", t.Iterations)
	fmt.Fprintf(&b, "  idown memo hits/misses:   %d/%d\n", t.MemoHits, t.MemoMisses)
	fmt.Fprintf(&b, "  max downstream depth:     %d\n", t.MaxDownstreamDepth)
	fmt.Fprintf(&b, "  flow wall time: total %v, slowest flow %v\n",
		time.Duration(t.FlowNanos).Round(time.Microsecond),
		time.Duration(t.MaxFlowNanos).Round(time.Microsecond))
	return b.String()
}

// Engine runs response-time analyses of one system repeatedly and
// cheaply: the interference sets are built once, and the per-run working
// state (result arrays and the downstream-interference memos, slices
// keyed by dense direct-pair ranks instead of per-run map allocations)
// is recycled through an arena pool. An Engine is safe for concurrent
// use; every Analyze call works on its own arena.
type Engine struct {
	sys  *traffic.System
	sets *Sets
	pool sync.Pool

	mu  sync.Mutex
	tel Telemetry
}

// NewEngine builds the interference sets of the system and returns an
// engine ready to run any registered analysis over them.
func NewEngine(sys *traffic.System) *Engine {
	return NewEngineWithSets(sys, BuildSets(sys))
}

// NewEngineWithSets is NewEngine with pre-built interference sets.
func NewEngineWithSets(sys *traffic.System, sets *Sets) *Engine {
	return &Engine{sys: sys, sets: sets}
}

// Sets returns the engine's interference sets (immutable, shared).
func (e *Engine) Sets() *Sets { return e.sets }

// System returns the analysed system.
func (e *Engine) System() *traffic.System { return e.sys }

// Telemetry returns a snapshot of the engine's cumulative counters.
func (e *Engine) Telemetry() Telemetry {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.tel
}

// arena is the recyclable working state of one analysis run.
type arena struct {
	R         []noc.Cycles
	status    []FlowStatus
	analyzed  []bool
	flowNanos []int64
	// Downstream-interference memos, keyed by Sets.pairRank. xlwx is the
	// Equation-3 memo (XLWX runs and IBN's upstream fallback); ibn is
	// the Equation-8 memo.
	xlwxVal, ibnVal []noc.Cycles
	xlwxSet, ibnSet []bool
	// terms is scratch space for the per-flow interference terms.
	terms []term
}

// newArena allocates the working state for a system of n flows and p
// direct-interference pairs.
func newArena(n, p int) *arena {
	return &arena{
		R:         make([]noc.Cycles, n),
		status:    make([]FlowStatus, n),
		analyzed:  make([]bool, n),
		flowNanos: make([]int64, n),
		xlwxVal:   make([]noc.Cycles, p),
		ibnVal:    make([]noc.Cycles, p),
		xlwxSet:   make([]bool, p),
		ibnSet:    make([]bool, p),
	}
}

func (e *Engine) acquire(opt Options, m method) *analyzer {
	ar, _ := e.pool.Get().(*arena)
	if ar == nil {
		ar = newArena(e.sys.NumFlows(), e.sets.numPairs())
	} else {
		for i := range ar.R {
			ar.R[i] = 0
			ar.status[i] = Schedulable
			ar.analyzed[i] = false
			ar.flowNanos[i] = 0
		}
		for i := range ar.xlwxSet {
			ar.xlwxSet[i] = false
			ar.ibnSet[i] = false
		}
	}
	return &analyzer{
		sys:      e.sys,
		sets:     e.sets,
		opt:      opt,
		m:        m,
		ar:       ar,
		R:        ar.R,
		status:   ar.status,
		analyzed: ar.analyzed,
	}
}

// release merges the run's telemetry into the engine and returns the
// arena to the pool. The analyzer must not be used afterwards.
func (e *Engine) release(a *analyzer) {
	e.mu.Lock()
	e.tel.Add(a.tel)
	e.mu.Unlock()
	e.pool.Put(a.ar)
}

// prepare validates the options against the method registry and applies
// the iteration-cap default — the single place both Analyze and Explain
// (and any future entry point) normalise options.
func prepare(opt Options) (method, Options, error) {
	m, ok := methods[opt.Method]
	if !ok {
		return nil, opt, fmt.Errorf("core: unknown analysis method %d", int(opt.Method))
	}
	if opt.MaxIterations <= 0 {
		opt.MaxIterations = DefaultMaxIterations
	}
	return m, opt, nil
}

// run executes one full analysis pass (highest to lowest priority) and
// returns the analyzer holding the final per-flow state. The caller
// must release it via e.release. A cancelled context aborts the pass
// between flows or mid-iteration and surfaces ctx.Err(); the partially
// filled analyzer is released here, never returned.
func (e *Engine) run(ctx context.Context, opt Options) (*analyzer, error) {
	m, opt, err := prepare(opt)
	if err != nil {
		return nil, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	a := e.acquire(opt, m)
	a.ctx = ctx
	for _, i := range e.sys.ByPriority() {
		t0 := time.Now()
		err := a.analyzeFlow(i)
		d := time.Since(t0).Nanoseconds()
		a.ar.flowNanos[i] = d
		a.tel.FlowNanos += d
		if d > a.tel.MaxFlowNanos {
			a.tel.MaxFlowNanos = d
		}
		a.tel.Flows++
		if err != nil {
			a.tel.Runs = 1
			e.release(a)
			return nil, err
		}
	}
	a.tel.Runs = 1
	return a, nil
}

// Analyze computes worst-case response-time bounds for every flow of the
// engine's system under the selected analysis.
func (e *Engine) Analyze(opt Options) (*Result, error) {
	return e.AnalyzeContext(context.Background(), opt)
}

// AnalyzeContext is Analyze with early cancellation: when ctx expires the
// run stops and returns ctx.Err() instead of a result. Cancellation is
// checked before each flow and every ctxCheckInterval fixed-point
// iterations, so even a single pathological flow (huge deadline, load at
// the convergence boundary) aborts promptly rather than iterating to
// MaxIterations. A nil ctx is treated as context.Background().
func (e *Engine) AnalyzeContext(ctx context.Context, opt Options) (*Result, error) {
	res, _, err := e.analyzeContext(ctx, opt, false)
	return res, err
}

// AnalyzeWithTelemetry is Analyze plus a per-run telemetry snapshot
// including per-flow wall times.
func (e *Engine) AnalyzeWithTelemetry(opt Options) (*Result, Telemetry, error) {
	return e.analyzeContext(context.Background(), opt, true)
}

func (e *Engine) analyzeContext(ctx context.Context, opt Options, wantTelemetry bool) (*Result, Telemetry, error) {
	a, err := e.run(ctx, opt)
	if err != nil {
		return nil, Telemetry{}, err
	}
	res := &Result{
		Method:      opt.Method,
		Flows:       make([]FlowResult, e.sys.NumFlows()),
		Schedulable: true,
	}
	for i := range res.Flows {
		res.Flows[i] = FlowResult{R: a.R[i], Status: a.status[i]}
		if a.status[i] != Schedulable {
			res.Schedulable = false
		}
	}
	tel := a.tel
	if wantTelemetry {
		tel.PerFlowNanos = append([]int64(nil), a.ar.flowNanos...)
	}
	e.release(a)
	return res, tel, nil
}
