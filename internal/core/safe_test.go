package core_test

import (
	"context"
	"errors"
	"strings"
	"testing"

	"wormnoc/internal/core"
	"wormnoc/internal/faultinject"
	"wormnoc/internal/workload"
)

func TestGuardConvertsPanic(t *testing.T) {
	err := core.Guard("demo", func() error { panic("invariant violated") })
	var ie *core.InternalError
	if !errors.As(err, &ie) {
		t.Fatalf("err = %v (%T), want *InternalError", err, err)
	}
	if ie.Op != "demo" || ie.Value != "invariant violated" {
		t.Fatalf("InternalError = {Op:%q, Value:%v}", ie.Op, ie.Value)
	}
	if len(ie.Stack) == 0 {
		t.Fatal("stack not captured")
	}
	if !strings.Contains(ie.Error(), "internal error in demo") {
		t.Fatalf("Error() = %q", ie.Error())
	}
}

func TestGuardPassesThroughErrorsAndNil(t *testing.T) {
	sentinel := errors.New("plain")
	if err := core.Guard("demo", func() error { return sentinel }); !errors.Is(err, sentinel) {
		t.Fatalf("plain error not passed through: %v", err)
	}
	if err := core.Guard("demo", func() error { return nil }); err != nil {
		t.Fatalf("nil not passed through: %v", err)
	}
}

func TestGuardDoesNotRewrapNestedInternalError(t *testing.T) {
	inner := &core.InternalError{Op: "inner", Value: "v"}
	err := core.Guard("outer", func() error { panic(inner) })
	var ie *core.InternalError
	if !errors.As(err, &ie) || ie != inner {
		t.Fatalf("nested guard re-wrapped: %v", err)
	}
}

func TestAnalyzeSafeHappyPath(t *testing.T) {
	eng, err := core.NewEngineSafe(workload.Didactic(2))
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.AnalyzeSafe(context.Background(), core.Options{Method: core.IBN})
	if err != nil {
		t.Fatal(err)
	}
	if res.R(2) != 348 {
		t.Fatalf("R(τ3) = %d, want 348", res.R(2))
	}
}

// An injected panic inside the fixed-point loop must surface as a typed
// *InternalError from AnalyzeSafe — and the raw AnalyzeContext would
// have propagated it, which is exactly what the boundary contains.
func TestAnalyzeSafeContainsInjectedPanic(t *testing.T) {
	faultinject.Enable(faultinject.New(7).Add(faultinject.Fault{
		Site: faultinject.SiteCoreFixedPoint,
		Kind: faultinject.KindPanic,
	}))
	defer faultinject.Disable()

	eng, err := core.NewEngineSafe(workload.Didactic(2))
	if err != nil {
		t.Fatal(err)
	}
	_, err = eng.AnalyzeSafe(context.Background(), core.Options{Method: core.IBN})
	var ie *core.InternalError
	if !errors.As(err, &ie) {
		t.Fatalf("err = %v (%T), want *InternalError", err, err)
	}
	if ie.Op != "analyze" {
		t.Fatalf("Op = %q, want analyze", ie.Op)
	}
	if !strings.Contains(ie.Error(), "injected panic at core.fixedpoint") {
		t.Fatalf("Error() = %q", ie.Error())
	}

	// The engine stays usable once the injector is gone.
	faultinject.Disable()
	res, err := eng.AnalyzeSafe(context.Background(), core.Options{Method: core.IBN})
	if err != nil {
		t.Fatal(err)
	}
	if res.R(2) != 348 {
		t.Fatalf("post-recovery R(τ3) = %d, want 348", res.R(2))
	}
}

// An injected transient error in the fixed point surfaces unchanged
// (AnalyzeSafe only converts panics, not errors), preserving its
// Transient marker for the retry policy above.
func TestAnalyzeSafePassesThroughInjectedError(t *testing.T) {
	faultinject.Enable(faultinject.New(7).Add(faultinject.Fault{
		Site: faultinject.SiteCoreFixedPoint,
		Kind: faultinject.KindError,
	}))
	defer faultinject.Disable()

	eng := core.NewEngine(workload.Didactic(2))
	_, err := eng.AnalyzeSafe(context.Background(), core.Options{Method: core.IBN})
	var fe *faultinject.InjectedError
	if !errors.As(err, &fe) {
		t.Fatalf("err = %v (%T), want *faultinject.InjectedError", err, err)
	}
	if !fe.Transient() {
		t.Fatal("injected error lost its Transient marker")
	}
}
