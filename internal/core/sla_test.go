package core_test

import (
	"testing"
	"testing/quick"

	"wormnoc/internal/core"
	"wormnoc/internal/noc"
	"wormnoc/internal/sim"
	"wormnoc/internal/workload"
)

// TestSLADidacticValues pins the stage-level bounds on the Section V
// example: with 2 shared links between τ2 and τ1 the per-hit saving on
// τ2 is capped at C₁ − L₁ = 2, and on τ3 the per-hit saving over the
// 3-link contention domain is capped at C₂ − L₂ = 6.
func TestSLADidacticValues(t *testing.T) {
	cases := []struct {
		buf  int
		want []noc.Cycles // R(τ1), R(τ2), R(τ3)
	}{
		// buf=1: zero saving → identical to SB (62, 328, 336).
		{1, []noc.Cycles{62, 328, 336}},
		// buf=2: saving 2 on τ2's hits (cap), 3 on τ3's hit.
		// R2 = 204 + 2·60 = 324; R3 = 132 + (204−3) = 333.
		{2, []noc.Cycles{62, 324, 333}},
		// buf=10: savings capped at 2 and 6.
		// R2 = 324; R3 = 132 + 198 = 330.
		{10, []noc.Cycles{62, 324, 330}},
	}
	for _, tc := range cases {
		res, err := core.Analyze(workload.Didactic(tc.buf), core.Options{Method: core.SLA})
		if err != nil {
			t.Fatal(err)
		}
		for i, want := range tc.want {
			if got := res.R(i); got != want {
				t.Errorf("buf=%d: R(τ%d) = %d, want %d", tc.buf, i+1, got, want)
			}
		}
	}
}

// TestSLAEqualsSBAtMinimalBuffers: property 1 from the paper's review.
func TestSLAEqualsSBAtMinimalBuffers(t *testing.T) {
	prop := func(seed int64) bool {
		sys := randomSystem(t, seed, 30)
		sets := core.BuildSets(sys)
		sb := analyze(t, sys, sets, core.Options{Method: core.SB})
		sla := analyze(t, sys, sets, core.Options{Method: core.SLA, BufDepth: 1})
		for i := 0; i < sys.NumFlows(); i++ {
			if sb.Flows[i] != sla.Flows[i] {
				t.Logf("seed %d flow %d: SB %+v vs SLA(b=1) %+v", seed, i, sb.Flows[i], sla.Flows[i])
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestSLATighterWithLargerBuffers: property 2 — bounds are monotone
// non-increasing in buffer depth and never exceed SB's.
func TestSLATighterWithLargerBuffers(t *testing.T) {
	prop := func(seed int64) bool {
		sys := randomSystem(t, seed, 30)
		sets := core.BuildSets(sys)
		sb := analyze(t, sys, sets, core.Options{Method: core.SB})
		prev := make([]noc.Cycles, sys.NumFlows())
		for i := range prev {
			prev[i] = -1
		}
		for _, b := range []int{1, 2, 4, 16, 64} {
			sla := analyze(t, sys, sets, core.Options{Method: core.SLA, BufDepth: b})
			for i := 0; i < sys.NumFlows(); i++ {
				if sla.Flows[i].Status != core.Schedulable {
					continue
				}
				if sb.Flows[i].Status == core.Schedulable && sla.R(i) > sb.R(i) {
					t.Logf("seed %d flow %d: SLA(b=%d) %d > SB %d", seed, i, b, sla.R(i), sb.R(i))
					return false
				}
				if prev[i] >= 0 && sla.R(i) > prev[i] {
					t.Logf("seed %d flow %d: SLA not monotone at b=%d", seed, i, b)
					return false
				}
				prev[i] = sla.R(i)
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestSLAUnsafeUnderMPB: property 3 — the simulator observes latencies
// beyond the SLA bounds in the didactic MPB scenario, at both buffer
// depths (350 > 330 at b=10, 334 > 333 at b=2).
func TestSLAUnsafeUnderMPB(t *testing.T) {
	if testing.Short() {
		t.Skip("offset sweep is slow in -short mode")
	}
	for _, buf := range []int{10, 2} {
		sys := workload.Didactic(buf)
		sla, err := core.Analyze(sys, core.Options{Method: core.SLA})
		if err != nil {
			t.Fatal(err)
		}
		sweep, err := sim.SweepOffsets(sys, sim.Config{Duration: 20_000}, 0, 200, 1)
		if err != nil {
			t.Fatal(err)
		}
		if sweep.Worst[2] <= sla.R(2) {
			t.Errorf("buf=%d: observed %d does not exceed SLA bound %d; MPB unsafety not demonstrated",
				buf, sweep.Worst[2], sla.R(2))
		}
	}
}

// TestSLAExplain: the breakdown reports the refined per-hit cost.
func TestSLAExplain(t *testing.T) {
	sys := workload.Didactic(10)
	sets := core.BuildSets(sys)
	b, err := core.Explain(sys, sets, core.Options{Method: core.SLA}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if b.R != 330 || len(b.Terms) != 1 || b.Terms[0].PerHit != 198 {
		t.Errorf("SLA breakdown: R=%d terms=%+v", b.R, b.Terms)
	}
}
