package core_test

import (
	"testing"

	"wormnoc/internal/core"
	"wormnoc/internal/noc"
	"wormnoc/internal/traffic"
	"wormnoc/internal/workload"
)

func TestScaleLimitDidactic(t *testing.T) {
	sys := workload.Didactic(2)
	limit, err := core.ScaleLimit(sys, core.Options{Method: core.IBN}, 0.5, 64, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	// The didactic set is lightly loaded: substantial headroom, but τ1's
	// own C must stay below its 200-cycle deadline (C = 2 + L), capping
	// the scale near 200/62 ≈ 3.2.
	if limit < 2 || limit > 4 {
		t.Errorf("IBN scale limit = %f, want within (2, 4)", limit)
	}
	// The looser XLWX certifies no more headroom than IBN.
	xl, err := core.ScaleLimit(sys, core.Options{Method: core.XLWX}, 0.5, 64, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if xl > limit+0.02 {
		t.Errorf("XLWX headroom %f exceeds IBN %f", xl, limit)
	}
}

func TestScaleLimitUnschedulable(t *testing.T) {
	// A set that is already unschedulable reports 0 headroom at lo >= 1.
	topo := noc.MustMesh(4, 1, noc.RouterConfig{BufDepth: 2, LinkLatency: 1, RouteLatency: 0})
	sys := mustChain(t, topo)
	limit, err := core.ScaleLimit(sys, core.Options{Method: core.IBN}, 1, 8, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if limit != 0 {
		t.Errorf("limit = %f, want 0 for an unschedulable set", limit)
	}
	// But shrinking can rescue it: allow lo < 1.
	limit, err = core.ScaleLimit(sys, core.Options{Method: core.IBN}, 0.05, 8, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if limit <= 0 || limit >= 1 {
		t.Errorf("shrunken limit = %f, want within (0, 1)", limit)
	}
}

func TestScaleLimitSaturatesAtHi(t *testing.T) {
	// A single tiny flow with a huge deadline can scale to the cap.
	topo := noc.MustMesh(4, 1, noc.RouterConfig{BufDepth: 2, LinkLatency: 1, RouteLatency: 0})
	sys := mustSingle(t, topo)
	limit, err := core.ScaleLimit(sys, core.Options{Method: core.IBN}, 1, 4, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if limit != 4 {
		t.Errorf("limit = %f, want the cap 4", limit)
	}
}

func TestScaleLimitErrors(t *testing.T) {
	sys := workload.Didactic(2)
	if _, err := core.ScaleLimit(sys, core.Options{Method: core.IBN}, 0, 2, 0.01); err == nil {
		t.Error("lo = 0 must fail")
	}
	if _, err := core.ScaleLimit(sys, core.Options{Method: core.IBN}, 2, 1, 0.01); err == nil {
		t.Error("hi < lo must fail")
	}
}

func mustChain(t *testing.T, topo *noc.Topology) *traffic.System {
	t.Helper()
	return traffic.MustSystem(topo, []traffic.Flow{
		{Name: "hog", Priority: 1, Period: 100, Deadline: 100, Length: 80, Src: 0, Dst: 3},
		{Name: "meek", Priority: 2, Period: 400, Deadline: 90, Length: 10, Src: 0, Dst: 3},
	})
}

func mustSingle(t *testing.T, topo *noc.Topology) *traffic.System {
	t.Helper()
	return traffic.MustSystem(topo, []traffic.Flow{
		{Name: "solo", Priority: 1, Period: 1_000_000, Deadline: 1_000_000, Length: 16, Src: 0, Dst: 3},
	})
}
