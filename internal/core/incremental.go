package core

import (
	"context"
	"fmt"

	"wormnoc/internal/noc"
	"wormnoc/internal/traffic"
)

// Incremental is the delta-aware analysis engine: it holds a system, its
// interference sets, and the converged per-flow state of every analysis
// configuration run so far, and re-establishes bounds after typed edits
// (Delta) by re-analysing only the affected-flow frontier instead of the
// whole system.
//
// # Invalidation
//
// A flow's bound R_i is a function of the flows its fixed point reads:
// its direct interferers S^D_i (terms and hit counts) and its indirect
// interferers S^I_i (the upstream/downstream partitions and the I^down
// recursion, whose recursive pairs (k, j) stay inside S^D_i ∪ S^I_i).
// Writing D(i) = S^D_i ∪ S^I_i, the bound depends exactly on the
// transitive closure of i under D. An edit to flow k can therefore only
// perturb flows whose closure contains k — the frontier Apply computes
// by reverse reachability from the edited flows, over the union of the
// dependency graphs before and after the edit (an edit that removes an
// interference edge still changes the flows that used to see it; one
// that adds an edge changes the flows that now do).
//
// One term escapes D: the non-preemptive flit-transfer blocking of
// multi-cycle links counts route links shared with LOWER-priority flows
// (blocking.go). Parameter edits cannot change it, but on platforms with
// linkl > 1 a structural edit additionally seeds the frontier with every
// flow sharing a link with the edited flows, before and after the edit.
//
// # Warm starts
//
// When every edit since a state's last analysis can only enlarge
// interference under that state's method (Delta.grows), the old least
// fixed points are lower bounds on the new ones, so affected flows seed
// their iteration from the previous converged bound (monotone restart;
// see analyzeFlowFrom). Results are still bit-identical to a from-
// scratch run: a warm result is only accepted when it converged
// Schedulable and the cold run provably reaches the same fixed point
// within the iteration cap; every other outcome (deadline misses and
// divergences record path-dependent R values) falls back to a cold
// rerun of that flow.
//
// # Concurrency
//
// Unlike Engine, an Incremental is a stateful single-writer object: it
// must not be used from multiple goroutines concurrently. Fan-out
// callers keep one Incremental per goroutine (or per search) and share
// the immutable base Sets via Engine.Incremental.
type Incremental struct {
	sys    *traffic.System
	sets   *Sets
	states map[stateKey]*incState
	stats  IncStats
}

// IncStats aggregates observability counters of an Incremental's
// lifetime, the incremental analogue of Engine telemetry.
type IncStats struct {
	// Applies counts Apply calls; Edits counts deltas applied.
	Applies, Edits int64
	// FullRuns, PartialRuns and CachedRuns classify Analyze calls: a
	// from-scratch pass over every flow, a frontier-only pass, or a
	// result served without re-analysing anything.
	FullRuns, PartialRuns, CachedRuns int64
	// FlowsReanalyzed and FlowsSkipped count, across partial runs, flows
	// inside and outside the affected frontier.
	FlowsReanalyzed, FlowsSkipped int64
	// WarmAccepted counts warm-started fixed points whose result was
	// accepted; WarmFallbacks counts warm starts redone cold (outcome
	// not Schedulable, or cold convergence within the cap not provable).
	WarmAccepted, WarmFallbacks int64
	// Rollbacks counts Rollback calls.
	Rollbacks int64
}

// stateKey identifies one analysis configuration (normalised Options).
type stateKey struct {
	method  Method
	buf     int
	eq7     bool
	noUp    bool
	maxIter int
}

func keyOf(opt Options) stateKey {
	return stateKey{
		method:  opt.Method,
		buf:     opt.BufDepth,
		eq7:     opt.Eq7,
		noUp:    opt.NoUpstreamFallback,
		maxIter: opt.MaxIterations,
	}
}

// incState is the converged state of one analysis configuration plus
// the invalidation accumulated against it since its last analysis.
type incState struct {
	opt Options
	m   method
	// ar holds the per-flow bounds, statuses and I^down memos of the
	// last analysis; partial passes update it in place.
	ar *arena
	// res is the last published Result. Never mutated in place, so it
	// can be shared with callers and snapshots; nil when the flow count
	// changed since it was built.
	res *Result
	// affected is the pending frontier: flows to re-analyse.
	affected map[int]bool
	// warm reports that every pending edit grows interference under
	// this configuration, allowing warm-started fixed points.
	warm bool
	// flush reports a pending structural edit: pair ranks moved, so the
	// memo arenas must be discarded wholesale.
	flush bool
	// full forces a from-scratch pass: set initially and when a run
	// aborted mid-pass (cancellation, injected fault) leaving the arena
	// half-updated.
	full bool
}

func (st *incState) reset() {
	st.affected = make(map[int]bool)
	st.warm = true
	st.flush = false
}

func (st *incState) clone() *incState {
	c := &incState{opt: st.opt, m: st.m, res: st.res, warm: st.warm, flush: st.flush, full: st.full}
	c.affected = make(map[int]bool, len(st.affected))
	for i := range st.affected {
		c.affected[i] = true
	}
	if st.ar != nil {
		c.ar = &arena{
			R:         append([]noc.Cycles(nil), st.ar.R...),
			status:    append([]FlowStatus(nil), st.ar.status...),
			analyzed:  append([]bool(nil), st.ar.analyzed...),
			flowNanos: append([]int64(nil), st.ar.flowNanos...),
			xlwxVal:   append([]noc.Cycles(nil), st.ar.xlwxVal...),
			ibnVal:    append([]noc.Cycles(nil), st.ar.ibnVal...),
			xlwxSet:   append([]bool(nil), st.ar.xlwxSet...),
			ibnSet:    append([]bool(nil), st.ar.ibnSet...),
		}
	}
	return c
}

// NewIncremental builds the interference sets of the system and returns
// a delta-aware engine over them.
func NewIncremental(sys *traffic.System) *Incremental {
	return NewIncrementalWithSets(sys, BuildSets(sys))
}

// NewIncrementalWithSets is NewIncremental with pre-built sets.
func NewIncrementalWithSets(sys *traffic.System, sets *Sets) *Incremental {
	return &Incremental{sys: sys, sets: sets, states: make(map[stateKey]*incState)}
}

// Incremental returns a delta-aware engine over the engine's system,
// sharing its immutable interference sets (no BuildSets cost). The
// Engine is unaffected by edits applied to the returned Incremental.
func (e *Engine) Incremental() *Incremental {
	return NewIncrementalWithSets(e.sys, e.sets)
}

// System returns the current (post-edit) system.
func (inc *Incremental) System() *traffic.System { return inc.sys }

// Sets returns the current interference sets.
func (inc *Incremental) Sets() *Sets { return inc.sets }

// Stats returns a snapshot of the engine's counters.
func (inc *Incremental) Stats() IncStats { return inc.stats }

// Reset replaces the engine's system wholesale, discarding every cached
// state — the escape hatch for edits that cannot be expressed as deltas
// (e.g. a mapping optimiser candidate with a different flow set).
func (inc *Incremental) Reset(sys *traffic.System) {
	inc.sys = sys
	inc.sets = BuildSets(sys)
	inc.states = make(map[stateKey]*incState)
}

// Apply applies the edits in order. Each delta is atomic: an invalid
// delta returns an error naming its position with the preceding deltas
// applied and the failing one discarded, leaving the engine consistent.
func (inc *Incremental) Apply(deltas ...Delta) error {
	for i, d := range deltas {
		if err := inc.applyOne(d); err != nil {
			if len(deltas) > 1 {
				return fmt.Errorf("core: delta %d: %w", i, err)
			}
			return err
		}
		inc.stats.Edits++
	}
	inc.stats.Applies++
	return nil
}

func (inc *Incremental) applyOne(d Delta) error {
	oldSys, oldSets := inc.sys, inc.sets
	newSys, err := ApplyDelta(oldSys, d)
	if err != nil {
		return err
	}
	var newSets *Sets
	switch d.Kind {
	case DeltaPrioritySwap:
		newSets = oldSets.withPriorities(newSys)
	case DeltaMapping:
		newSets = oldSets.withRoute(newSys, d.Flow)
	case DeltaAddFlow:
		newSets = oldSets.withFlowAppended(newSys)
	case DeltaRemoveFlow:
		newSets = oldSets.withFlowRemoved(newSys, d.Flow)
	default:
		newSets = oldSets.rebind(newSys)
	}

	multiCycle := oldSys.Topology().Config().LinkLatency > 1
	switch d.Kind {
	case DeltaPeriod, DeltaDeadline, DeltaJitter, DeltaLength:
		// The dependency graph is unchanged; the closure over the current
		// sets is the frontier for every state.
		frontier := reverseReach(map[int]bool{d.Flow: true}, oldSys.NumFlows(), oldSets)
		for _, st := range inc.states {
			st.note(frontier, d.grows(oldSys, st.opt), false)
		}
	case DeltaBufDepth:
		// Invisible to buffer-insensitive configurations: their results
		// stand untouched. Sensitive ones see every pair's term change.
		all := allFlows(oldSys.NumFlows())
		for _, st := range inc.states {
			if !bufSensitive(st.opt) {
				continue
			}
			st.note(all, d.grows(oldSys, st.opt), false)
		}
	case DeltaPrioritySwap, DeltaMapping:
		seeds := map[int]bool{d.Flow: true}
		if d.Kind == DeltaPrioritySwap {
			seeds[d.Other] = true
		}
		if multiCycle {
			// The flit-transfer blocking term reads lower-priority route
			// sharers, outside the D-closure: seed them explicitly.
			for k := range seeds {
				linkSharers(seeds, oldSets, k)
				linkSharers(seeds, newSets, k)
			}
		}
		frontier := reverseReach(seeds, oldSys.NumFlows(), oldSets, newSets)
		for _, st := range inc.states {
			st.note(frontier, false, true)
		}
	case DeltaAddFlow:
		// The new flow exists only in the new graph; appending cannot
		// remove dependency edges among the old flows, so the new graph
		// alone is the union.
		k := newSys.NumFlows() - 1
		seeds := map[int]bool{k: true}
		if multiCycle {
			linkSharers(seeds, newSets, k)
		}
		frontier := reverseReach(seeds, newSys.NumFlows(), newSets)
		for _, st := range inc.states {
			st.addFlow()
			st.note(frontier, false, true)
		}
	case DeltaRemoveFlow:
		// Removal only deletes dependency edges, so the old graph alone
		// is the union; the frontier is computed in the old indexing and
		// remapped.
		seeds := map[int]bool{d.Flow: true}
		if multiCycle {
			linkSharers(seeds, oldSets, d.Flow)
		}
		frontier := reverseReach(seeds, oldSys.NumFlows(), oldSets)
		delete(frontier, d.Flow)
		remapped := make(map[int]bool, len(frontier))
		for i := range frontier {
			if i > d.Flow {
				remapped[i-1] = true
			} else {
				remapped[i] = true
			}
		}
		for _, st := range inc.states {
			st.removeFlow(d.Flow)
			st.note(remapped, false, true)
		}
	}
	inc.sys, inc.sets = newSys, newSets
	return nil
}

// note merges a delta's invalidation into the state's pending set.
func (st *incState) note(frontier map[int]bool, grows, structural bool) {
	if st.full {
		return
	}
	for i := range frontier {
		st.affected[i] = true
	}
	st.warm = st.warm && grows
	st.flush = st.flush || structural
}

// addFlow extends the state's arrays for an appended flow (analysed on
// the next pass: the caller puts it in the frontier).
func (st *incState) addFlow() {
	st.res = nil
	if st.full || st.ar == nil {
		return
	}
	st.ar.R = append(st.ar.R, 0)
	st.ar.status = append(st.ar.status, Schedulable)
	st.ar.analyzed = append(st.ar.analyzed, false)
	st.ar.flowNanos = append(st.ar.flowNanos, 0)
}

// removeFlow splices flow k out of the state's arrays, remapping the
// pending frontier is the caller's job.
func (st *incState) removeFlow(k int) {
	st.res = nil
	if st.full || st.ar == nil {
		return
	}
	st.ar.R = append(st.ar.R[:k], st.ar.R[k+1:]...)
	st.ar.status = append(st.ar.status[:k], st.ar.status[k+1:]...)
	st.ar.analyzed = append(st.ar.analyzed[:k], st.ar.analyzed[k+1:]...)
	st.ar.flowNanos = append(st.ar.flowNanos[:k], st.ar.flowNanos[k+1:]...)
	// The pending frontier indices shift too; Apply rebuilds them after
	// calling this, and the stale entries it merged before the removal
	// were remapped there.
	remapped := make(map[int]bool, len(st.affected))
	for i := range st.affected {
		switch {
		case i == k:
		case i > k:
			remapped[i-1] = true
		default:
			remapped[i] = true
		}
	}
	st.affected = remapped
}

func allFlows(n int) map[int]bool {
	all := make(map[int]bool, n)
	for i := 0; i < n; i++ {
		all[i] = true
	}
	return all
}

// linkSharers adds to dst every flow with a non-empty contention domain
// with flow k under ss.
func linkSharers(dst map[int]bool, ss *Sets, k int) {
	if k >= len(ss.cd) {
		return
	}
	for i := range ss.cd {
		if i != k && len(ss.cd[k][i]) > 0 {
			dst[i] = true
		}
	}
}

// reverseReach returns every flow whose dependency closure intersects
// the seed set: a BFS from the seeds along reversed D-edges (j → i for
// every j ∈ S^D_i ∪ S^I_i) over the union of the given sets. Seeds are
// included. Sets with fewer than n flows (pre-append graphs) contribute
// their edges as-is; indices are assumed stable.
func reverseReach(seeds map[int]bool, n int, setsList ...*Sets) map[int]bool {
	rev := make([][]int, n)
	for _, s := range setsList {
		// The edge derivation is shared with (*Sets).Clusters so the
		// frontier and the cluster decomposition can never disagree on
		// what a dependency is.
		s.dependencyEdges(func(i, j int) {
			if i < n {
				rev[j] = append(rev[j], i)
			}
		})
	}
	reached := make(map[int]bool, len(seeds))
	queue := make([]int, 0, len(seeds))
	for s := range seeds {
		if s < n && !reached[s] {
			reached[s] = true
			queue = append(queue, s)
		}
	}
	for len(queue) > 0 {
		j := queue[0]
		queue = queue[1:]
		for _, i := range rev[j] {
			if !reached[i] {
				reached[i] = true
				queue = append(queue, i)
			}
		}
	}
	return reached
}

// Analyze returns bounds for the current system under opt, re-analysing
// only the flows invalidated since this configuration's previous call.
// The returned Result is immutable and may be retained across further
// edits. A cancellation or injected fault aborts with an error and
// leaves the configuration marked for a from-scratch pass on its next
// call, so a half-updated arena is never served.
func (inc *Incremental) Analyze(ctx context.Context, opt Options) (*Result, error) {
	m, opt, err := prepare(opt)
	if err != nil {
		return nil, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	key := keyOf(opt)
	st := inc.states[key]
	if st == nil {
		st = &incState{opt: opt, m: m, full: true}
		st.reset()
		inc.states[key] = st
	}
	// Any abort — an error return or a panic unwinding through here —
	// leaves the arena half-updated; force the next call onto the
	// from-scratch path. The happy paths clear the flag on completion.
	done := false
	defer func() {
		if !done {
			st.full = true
		}
	}()
	var res *Result
	if st.full {
		res, err = inc.runFull(ctx, st)
	} else if len(st.affected) == 0 {
		if st.res == nil {
			inc.publish(st)
		}
		inc.stats.CachedRuns++
		res = st.res
	} else {
		res, err = inc.runPartial(ctx, st)
	}
	done = err == nil
	return res, err
}

func (inc *Incremental) runFull(ctx context.Context, st *incState) (*Result, error) {
	st.ar = newArena(inc.sys.NumFlows(), inc.sets.numPairs())
	a := inc.analyzer(ctx, st)
	for _, i := range inc.sys.ByPriority() {
		if err := a.analyzeFlow(i); err != nil {
			return nil, err // st.full stays set
		}
	}
	st.full = false
	st.reset()
	inc.stats.FullRuns++
	return inc.publish(st), nil
}

func (inc *Incremental) runPartial(ctx context.Context, st *incState) (*Result, error) {
	pairs := inc.sets.numPairs()
	switch {
	case len(st.ar.xlwxSet) != pairs:
		st.ar.xlwxVal = make([]noc.Cycles, pairs)
		st.ar.ibnVal = make([]noc.Cycles, pairs)
		st.ar.xlwxSet = make([]bool, pairs)
		st.ar.ibnSet = make([]bool, pairs)
	case st.flush:
		for i := range st.ar.xlwxSet {
			st.ar.xlwxSet[i] = false
			st.ar.ibnSet[i] = false
		}
	default:
		// Pair ranks are stable; only entries under affected flows can
		// have changed inputs (a pair (j, i) reads flows in i's closure,
		// and a non-affected i has an unperturbed closure).
		for i := range st.affected {
			for r := inc.sets.pairOffset[i]; r < inc.sets.pairOffset[i+1]; r++ {
				st.ar.xlwxSet[r] = false
				st.ar.ibnSet[r] = false
			}
		}
	}

	a := inc.analyzer(ctx, st)
	maxIter := noc.Cycles(st.opt.MaxIterations)
	for _, i := range inc.sys.ByPriority() {
		if !st.affected[i] {
			inc.stats.FlowsSkipped++
			continue
		}
		var seed noc.Cycles
		if st.warm && a.analyzed[i] && a.status[i] == Schedulable {
			seed = a.R[i]
		}
		if err := a.analyzeFlowFrom(i, seed); err != nil {
			st.full = true
			return nil, err
		}
		if seed > 0 {
			// Accept the warm fixed point only when a cold run provably
			// reproduces it: it must have converged Schedulable (deadline
			// misses and divergences record path-dependent R values) and
			// lie within MaxIterations of C_i (the cold chain grows by at
			// least one cycle per iteration, so it reaches the same fixed
			// point before the cap). Otherwise rerun cold; memo entries
			// written by the warm attempt are seed-independent (they read
			// only the final bounds of other flows) and stay valid.
			if a.status[i] == Schedulable && a.R[i]-inc.sys.C(i)+2 <= maxIter {
				inc.stats.WarmAccepted++
			} else {
				inc.stats.WarmFallbacks++
				if err := a.analyzeFlowFrom(i, 0); err != nil {
					st.full = true
					return nil, err
				}
			}
		}
		inc.stats.FlowsReanalyzed++
	}
	st.reset()
	inc.stats.PartialRuns++
	return inc.publish(st), nil
}

func (inc *Incremental) analyzer(ctx context.Context, st *incState) *analyzer {
	return &analyzer{
		sys:      inc.sys,
		sets:     inc.sets,
		opt:      st.opt,
		m:        st.m,
		ar:       st.ar,
		ctx:      ctx,
		R:        st.ar.R,
		status:   st.ar.status,
		analyzed: st.ar.analyzed,
	}
}

func (inc *Incremental) publish(st *incState) *Result {
	res := &Result{
		Method:      st.opt.Method,
		Flows:       make([]FlowResult, len(st.ar.R)),
		Schedulable: true,
	}
	for i := range res.Flows {
		res.Flows[i] = FlowResult{R: st.ar.R[i], Status: st.ar.status[i]}
		if st.ar.status[i] != Schedulable {
			res.Schedulable = false
		}
	}
	st.res = res
	return res
}

// IncSnapshot is an immutable checkpoint of an Incremental: the system,
// sets, and every configuration's converged state at Snapshot time.
type IncSnapshot struct {
	sys    *traffic.System
	sets   *Sets
	states map[stateKey]*incState
}

// System returns the snapshotted system.
func (s *IncSnapshot) System() *traffic.System { return s.sys }

// Snapshot checkpoints the engine's current state. Snapshots are cheap
// relative to analysis (a copy of the per-flow arrays and memos per
// cached configuration) and independent of later edits, enabling
// edit-tree exploration: snapshot, apply a branch of deltas, analyse,
// roll back, try the next branch.
func (inc *Incremental) Snapshot() *IncSnapshot {
	states := make(map[stateKey]*incState, len(inc.states))
	for k, st := range inc.states {
		states[k] = st.clone()
	}
	return &IncSnapshot{sys: inc.sys, sets: inc.sets, states: states}
}

// Rollback restores the engine to a snapshot's state. The snapshot
// remains valid and can be rolled back to again (the engine takes
// copies, not ownership).
func (inc *Incremental) Rollback(s *IncSnapshot) {
	inc.sys, inc.sets = s.sys, s.sets
	inc.states = make(map[stateKey]*incState, len(s.states))
	for k, st := range s.states {
		inc.states[k] = st.clone()
	}
	inc.stats.Rollbacks++
}
