package core

import (
	"wormnoc/internal/noc"
)

// SLA-style stage-level refinement.
//
// Kashif and Patel's SLA (IEEE ToC 2015) reduces SB's pessimism by
// analysing interference link by link: while a higher-priority packet τj
// occupies the links it shares with τi, τi's flits can still make
// progress into the virtual-channel buffers of the routers along the
// contention domain, progress that does not have to be repeated once τj
// clears. The paper under reproduction characterises SLA by three
// properties (Section III):
//
//  1. its bounds equal SB's with minimal buffer sizes,
//  2. they get increasingly tighter with larger per-VC buffers,
//  3. like SB, it is UNSAFE under multi-point progressive blocking.
//
// This file implements a simplified stage-level analysis with exactly
// those properties (the full SLA algorithm is considerably more
// intricate; since the paper only discusses it qualitatively, we
// reproduce its documented behaviour rather than its full machinery):
// each hit of τj costs C_j minus the overlap τi can buffer,
//
//	hit_j = C_j − min((buf−1)·linkl·|cd_ij|, C_j − linkl·L_j)
//
// i.e. up to buf−1 flits of progress per contention-domain router, never
// below the time τj's payload needs to stream through a shared link.
// At buf = 1 the saving is zero and the analysis degenerates to SB
// exactly. Like SB it accounts no buffered-interference replay, so MPB
// scenarios break it — the didactic example's simulated worst case
// (350 at buf = 10, 334 at buf = 2) exceeds the SLA bounds (330, 333),
// which the test suite demonstrates.
//
// Use it only as a historic baseline, never for real guarantees.

// slaHit returns the per-hit interference of direct interferer j on flow
// i under the stage-level refinement.
func (a *analyzer) slaHit(i, j int) noc.Cycles {
	cfg := a.sys.Topology().Config()
	buf := cfg.BufDepth
	if a.opt.BufDepth > 0 {
		buf = a.opt.BufDepth
	}
	cj := a.sys.C(j)
	saving := noc.Cycles(buf-1) * cfg.LinkLatency * noc.Cycles(len(a.sets.CD(i, j)))
	if floor := cj - cfg.LinkLatency*noc.Cycles(a.sys.Flow(j).Length); saving > floor {
		saving = floor
	}
	if saving < 0 {
		saving = 0
	}
	return cj - saving
}
