package core_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"wormnoc/internal/core"
	"wormnoc/internal/noc"
	"wormnoc/internal/oracle"
	"wormnoc/internal/traffic"
	"wormnoc/internal/workload"
)

// randomSystem generates a random, moderately loaded flow set on a random
// small mesh, deterministically in seed.
func randomSystem(t testing.TB, seed int64, maxFlows int) *traffic.System {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	w, h := 2+rng.Intn(4), 2+rng.Intn(4)
	topo := noc.MustMesh(w, h, noc.RouterConfig{
		BufDepth:     1 + rng.Intn(16),
		LinkLatency:  1 + noc.Cycles(rng.Intn(2)),
		RouteLatency: noc.Cycles(rng.Intn(3)),
	})
	sys, err := workload.Synthetic(topo, workload.SynthConfig{
		NumFlows:  2 + rng.Intn(maxFlows-1),
		PeriodMin: 2_000,
		PeriodMax: 200_000,
		LenMin:    16,
		LenMax:    1024,
		Seed:      seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func analyze(t testing.TB, sys *traffic.System, sets *core.Sets, opt core.Options) *core.Result {
	t.Helper()
	res, err := core.AnalyzeWithSets(sys, sets, opt)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestIBNNeverLooserThanXLWX: the paper's central claim — for every flow
// whose bound both analyses can compute, R_IBN <= R_XLWX, and any flow
// set XLWX deems schedulable is also schedulable under IBN.
func TestIBNNeverLooserThanXLWX(t *testing.T) {
	prop := func(seed int64) bool {
		sys := randomSystem(t, seed, 40)
		sets := core.BuildSets(sys)
		xlwx := analyze(t, sys, sets, core.Options{Method: core.XLWX})
		ibn := analyze(t, sys, sets, core.Options{Method: core.IBN})
		for i := 0; i < sys.NumFlows(); i++ {
			if xlwx.Flows[i].Status == core.Schedulable {
				if ibn.Flows[i].Status != core.Schedulable {
					t.Logf("seed %d flow %d: XLWX schedulable but IBN %v", seed, i, ibn.Flows[i].Status)
					return false
				}
				if ibn.R(i) > xlwx.R(i) {
					t.Logf("seed %d flow %d: R_IBN %d > R_XLWX %d", seed, i, ibn.R(i), xlwx.R(i))
					return false
				}
			}
		}
		if xlwx.Schedulable && !ibn.Schedulable {
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestSBNeverLooserThanXLWX: SB's (optimistic) bounds never exceed
// XLWX's, which is exactly why SB appears as the top curve of Figure 4.
func TestSBNeverLooserThanXLWX(t *testing.T) {
	prop := func(seed int64) bool {
		sys := randomSystem(t, seed, 40)
		sets := core.BuildSets(sys)
		xlwx := analyze(t, sys, sets, core.Options{Method: core.XLWX})
		sb := analyze(t, sys, sets, core.Options{Method: core.SB})
		for i := 0; i < sys.NumFlows(); i++ {
			if xlwx.Flows[i].Status == core.Schedulable && sb.Flows[i].Status == core.Schedulable {
				if sb.R(i) > xlwx.R(i) {
					t.Logf("seed %d flow %d: R_SB %d > R_XLWX %d", seed, i, sb.R(i), xlwx.R(i))
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestIBNMonotoneInBufferDepth: the counter-intuitive headline — IBN
// bounds never decrease as buffers grow.
func TestIBNMonotoneInBufferDepth(t *testing.T) {
	depths := []int{1, 2, 4, 10, 32, 100}
	prop := func(seed int64) bool {
		sys := randomSystem(t, seed, 30)
		sets := core.BuildSets(sys)
		prev := make([]noc.Cycles, sys.NumFlows())
		for i := range prev {
			prev[i] = -1
		}
		for _, d := range depths {
			res := analyze(t, sys, sets, core.Options{Method: core.IBN, BufDepth: d})
			for i := 0; i < sys.NumFlows(); i++ {
				if res.Flows[i].Status != core.Schedulable {
					continue
				}
				if prev[i] >= 0 && res.R(i) < prev[i] {
					t.Logf("seed %d flow %d: R at buf=%d is %d < previous %d",
						seed, i, d, res.R(i), prev[i])
					return false
				}
				prev[i] = res.R(i)
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestEq7AtLeastEq8: the unclamped Equation 7 is never tighter than the
// clamped Equation 8 (the min can only reduce the term).
func TestEq7AtLeastEq8(t *testing.T) {
	prop := func(seed int64) bool {
		sys := randomSystem(t, seed, 30)
		sets := core.BuildSets(sys)
		eq8 := analyze(t, sys, sets, core.Options{Method: core.IBN, BufDepth: 8})
		eq7 := analyze(t, sys, sets, core.Options{Method: core.IBN, BufDepth: 8, Eq7: true})
		for i := 0; i < sys.NumFlows(); i++ {
			if eq7.Flows[i].Status == core.Schedulable && eq8.Flows[i].Status == core.Schedulable {
				if eq7.R(i) < eq8.R(i) {
					t.Logf("seed %d flow %d: eq7 %d < eq8 %d", seed, i, eq7.R(i), eq8.R(i))
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestNoFallbackAtMostDefault: disabling the upstream-interference
// fallback can only tighten (it replaces XLWX terms with Eq. 8 terms) —
// that is precisely why it risks optimism and exists only as an ablation.
func TestNoFallbackAtMostDefault(t *testing.T) {
	prop := func(seed int64) bool {
		sys := randomSystem(t, seed, 30)
		sets := core.BuildSets(sys)
		def := analyze(t, sys, sets, core.Options{Method: core.IBN, BufDepth: 4})
		nofb := analyze(t, sys, sets, core.Options{Method: core.IBN, BufDepth: 4, NoUpstreamFallback: true})
		for i := 0; i < sys.NumFlows(); i++ {
			if def.Flows[i].Status == core.Schedulable && nofb.Flows[i].Status == core.Schedulable {
				if nofb.R(i) > def.R(i) {
					t.Logf("seed %d flow %d: nofallback %d > default %d", seed, i, nofb.R(i), def.R(i))
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestBoundsAtLeastZeroLoad: every computed bound is at least the
// zero-load latency. On single-cycle links the highest-priority flow's
// bound is exactly C; on multi-cycle links it additionally carries the
// non-preemptive flit-transfer blocking of up to (linkl-1) per shared
// link (see blocking.go).
func TestBoundsAtLeastZeroLoad(t *testing.T) {
	prop := func(seed int64) bool {
		sys := randomSystem(t, seed, 30)
		sets := core.BuildSets(sys)
		linkl := sys.Topology().Config().LinkLatency
		for _, m := range []core.Method{core.SB, core.XLWX, core.IBN} {
			res := analyze(t, sys, sets, core.Options{Method: m})
			for i := 0; i < sys.NumFlows(); i++ {
				if res.Flows[i].Status == core.Schedulable && res.R(i) < sys.C(i) {
					return false
				}
				if sys.Flow(i).Priority == 1 {
					maxBlock := (linkl - 1) * noc.Cycles(sys.Route(i).Len())
					if res.Flows[i].Status != core.Schedulable {
						// A top-priority flow misses only when its
						// zero-load bound alone overruns the deadline.
						if res.Flows[i].Status != core.DeadlineMiss || res.R(i) <= sys.Flow(i).Deadline {
							return false
						}
						continue
					}
					if res.R(i) < sys.C(i) || res.R(i) > sys.C(i)+maxBlock {
						t.Logf("seed %d: top-priority flow has R=%d C=%d linkl=%d",
							seed, res.R(i), sys.C(i), linkl)
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestIBNMonotoneDirectPair: the sharpest form of buffer monotonicity —
// for a directly adjacent pair of depths (b, b+1) the bound at b+1 is
// never below the bound at b. The ladder test above can only see
// monotonicity breaches between its fixed rungs; the pair test pins the
// property where a regression would first appear.
func TestIBNMonotoneDirectPair(t *testing.T) {
	prop := func(seed int64, rawDepth uint8) bool {
		sys := randomSystem(t, seed, 30)
		sets := core.BuildSets(sys)
		b := 1 + int(rawDepth)%32
		at := analyze(t, sys, sets, core.Options{Method: core.IBN, BufDepth: b})
		next := analyze(t, sys, sets, core.Options{Method: core.IBN, BufDepth: b + 1})
		for i := 0; i < sys.NumFlows(); i++ {
			if at.Flows[i].Status != core.Schedulable || next.Flows[i].Status != core.Schedulable {
				continue
			}
			if next.R(i) < at.R(i) {
				t.Logf("seed %d flow %d: R at buf=%d is %d < %d at buf=%d",
					seed, i, b+1, next.R(i), at.R(i), b)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// The same central claims, checked over the verification oracle's
// scenario distribution: unlike randomSystem's synthetic workloads,
// oracle scenarios include 1×N lines, YX routing and jittered flows,
// and are biased towards schedulable (hence comparable) bounds.
func TestInvariantsOverOracleScenarios(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		sc := oracle.Generate(seed, oracle.GenConfig{})
		sys, err := sc.System()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		sets := core.BuildSets(sys)
		xlwx := analyze(t, sys, sets, core.Options{Method: core.XLWX})
		ibn := analyze(t, sys, sets, core.Options{Method: core.IBN})
		ibnNext := analyze(t, sys, sets, core.Options{Method: core.IBN, BufDepth: sys.Topology().Config().BufDepth + 1})
		for i := 0; i < sys.NumFlows(); i++ {
			if xlwx.Flows[i].Status != core.Schedulable {
				continue
			}
			if ibn.Flows[i].Status != core.Schedulable {
				t.Errorf("seed %d flow %d: XLWX schedulable but IBN %v", seed, i, ibn.Flows[i].Status)
				continue
			}
			if ibn.R(i) > xlwx.R(i) {
				t.Errorf("seed %d flow %d: R_IBN %d > R_XLWX %d", seed, i, ibn.R(i), xlwx.R(i))
			}
			if ibnNext.Flows[i].Status == core.Schedulable && ibnNext.R(i) < ibn.R(i) {
				t.Errorf("seed %d flow %d: one extra buffer flit tightened R_IBN %d -> %d",
					seed, i, ibn.R(i), ibnNext.R(i))
			}
		}
	}
}

// TestAnalysisDeterminism: analysing the same system twice gives
// identical results (the memoisation must not depend on map order).
func TestAnalysisDeterminism(t *testing.T) {
	sys := randomSystem(t, 424242, 40)
	for _, m := range []core.Method{core.SB, core.XLWX, core.IBN} {
		a := analyze(t, sys, core.BuildSets(sys), core.Options{Method: m})
		b := analyze(t, sys, core.BuildSets(sys), core.Options{Method: m})
		for i := 0; i < sys.NumFlows(); i++ {
			if a.Flows[i] != b.Flows[i] {
				t.Errorf("%v flow %d: %+v vs %+v", m, i, a.Flows[i], b.Flows[i])
			}
		}
	}
}
