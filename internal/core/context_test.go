package core_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"wormnoc/internal/core"
	"wormnoc/internal/noc"
	"wormnoc/internal/traffic"
	"wormnoc/internal/workload"
)

func TestAnalyzeContextCancelled(t *testing.T) {
	sys := workload.Didactic(2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := core.NewEngine(sys).AnalyzeContext(ctx, core.Options{Method: core.IBN})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}

func TestAnalyzeContextNilAndBackground(t *testing.T) {
	sys := workload.Didactic(2)
	eng := core.NewEngine(sys)
	for _, ctx := range []context.Context{nil, context.Background()} {
		res, err := eng.AnalyzeContext(ctx, core.Options{Method: core.IBN})
		if err != nil {
			t.Fatalf("ctx %v: %v", ctx, err)
		}
		if res.R(2) != 348 {
			t.Fatalf("ctx %v: R(τ3) = %d, want 348", ctx, res.R(2))
		}
	}
}

// A deadline must abort a single pathological flow mid-iteration, not
// just between flows: the victim flow below sits at the convergence
// boundary (its interferer fully loads the shared link), so its
// fixed-point walks towards a 2^40-cycle deadline in ~C-sized steps.
func TestAnalyzeContextDeadlineInsideFixedPoint(t *testing.T) {
	topo := noc.MustMesh(2, 1, noc.RouterConfig{BufDepth: 2, LinkLatency: 1, RouteLatency: 0})
	sys := traffic.MustSystem(topo, []traffic.Flow{
		{Name: "hog", Priority: 1, Period: 100, Deadline: 100, Length: 98, Src: 0, Dst: 1},
		{Name: "victim", Priority: 2, Period: 1 << 40, Deadline: 1 << 40, Length: 58, Src: 0, Dst: 1},
	})
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	t0 := time.Now()
	_, err := core.NewEngine(sys).AnalyzeContext(ctx, core.Options{Method: core.SB, MaxIterations: 1 << 30})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(t0); elapsed > 2*time.Second {
		t.Fatalf("cancellation took %v, not prompt", elapsed)
	}
}

// A cancelled run must leave the engine fully usable (the arena goes
// back to the pool in a resettable state).
func TestEngineReusableAfterCancellation(t *testing.T) {
	sys := workload.Didactic(2)
	eng := core.NewEngine(sys)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := eng.AnalyzeContext(ctx, core.Options{Method: core.IBN}); err == nil {
		t.Fatal("cancelled run did not error")
	}
	res, err := eng.Analyze(core.Options{Method: core.IBN})
	if err != nil {
		t.Fatal(err)
	}
	if res.R(2) != 348 {
		t.Fatalf("post-cancellation R(τ3) = %d, want 348", res.R(2))
	}
}
