package core

import (
	"fmt"
	"sort"
	"strings"

	"wormnoc/internal/noc"
)

// method is the per-analysis strategy plugged into the engine: how a hit
// of a direct interferer is priced, and how downstream indirect
// interference is bounded. Implementations must be stateless — all
// mutable state lives in the analyzer — so one registry entry can serve
// concurrent runs of the same Engine.
type method interface {
	// term prices direct interferer τj acting on τi: the jitter term
	// entering the hit count and the cost of one hit. An error means the
	// term depends on a flow that was not schedulable.
	term(a *analyzer, i, j int) (jitter, hit noc.Cycles, err error)
	// idown returns the downstream indirect interference I^down_{ji}
	// added to every hit of τj on τi (zero for the analyses that predate
	// the MPB characterisation).
	idown(a *analyzer, j, i int) (noc.Cycles, error)
	// explainTerm fills the per-interferer fields of a Breakdown term,
	// except Hits and Total which depend on the analysed flow's final
	// bound and are filled by Explain itself.
	explainTerm(a *analyzer, i, j int) (InterferenceTerm, error)
}

// methods is the analysis registry. The four analyses of the paper
// register themselves below; lookupMethod rejects selectors with no
// entry, replacing the range checks previously scattered through
// Analyze and Explain.
var methods = map[Method]method{}

func registerMethod(id Method, m method) {
	if _, dup := methods[id]; dup {
		panic("core: duplicate analysis method " + id.String())
	}
	methods[id] = m
}

func init() {
	registerMethod(SB, sbMethod{})
	registerMethod(XLWX, xlwxMethod{})
	registerMethod(IBN, ibnMethod{})
	registerMethod(SLA, slaMethod{})
}

// Methods returns the selectors of every registered analysis in
// ascending selector order. The set is fixed at init time, so the result
// is stable for the lifetime of the process.
func Methods() []Method {
	out := make([]Method, 0, len(methods))
	for id := range methods {
		out = append(out, id)
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

// ParseMethod maps a case-insensitive analysis name ("IBN", "xlwx", …)
// to its selector — the inverse of Method.String. It is the single
// parser shared by the CLIs and the HTTP service, so an unknown name
// yields the same error text everywhere.
func ParseMethod(s string) (Method, error) {
	want := strings.ToUpper(strings.TrimSpace(s))
	for _, id := range Methods() {
		if id.String() == want {
			return id, nil
		}
	}
	names := make([]string, 0, len(methods))
	for _, id := range Methods() {
		names = append(names, id.String())
	}
	return 0, fmt.Errorf("core: unknown analysis method %q (want one of %s)", s, strings.Join(names, ", "))
}

// baseExplainTerm fills the method-independent fields of a breakdown
// term for direct interferer τj on τi.
func baseExplainTerm(a *analyzer, i, j int) InterferenceTerm {
	return InterferenceTerm{
		Interferer:       j,
		Cj:               a.sys.C(j),
		Downstream:       a.sets.Downstream(i, j),
		Upstream:         a.sets.Upstream(i, j),
		ContentionDomain: len(a.sets.CD(i, j)),
	}
}

// sbMethod is the Shi & Burns 2008 analysis: every hit costs C_j alone,
// and the interference jitter of τj is added only when τj itself suffers
// interference from flows indirect to τi (the back-to-back hit
// scenario). Exactly what MPB invalidates — kept as the historic
// baseline of Figure 4.
type sbMethod struct{}

func (sbMethod) term(a *analyzer, i, j int) (jitter, hit noc.Cycles, err error) {
	jitter = a.sys.Flow(j).Jitter
	if a.hasIndirectVia(i, j) {
		jitter += a.R[j] - a.sys.C(j)
	}
	return jitter, a.sys.C(j), nil
}

func (sbMethod) idown(a *analyzer, j, i int) (noc.Cycles, error) { return 0, nil }

func (m sbMethod) explainTerm(a *analyzer, i, j int) (InterferenceTerm, error) {
	t := baseExplainTerm(a, i, j)
	t.Jitter, t.PerHit, _ = m.term(a, i, j)
	return t, nil
}

// slaMethod is the simplified stage-level analysis (see sla.go): SB with
// each hit refined by the overlap τi can buffer along the contention
// domain. Like SB it is unsafe under MPB.
type slaMethod struct{}

func (slaMethod) term(a *analyzer, i, j int) (jitter, hit noc.Cycles, err error) {
	jitter = a.sys.Flow(j).Jitter
	if a.hasIndirectVia(i, j) {
		jitter += a.R[j] - a.sys.C(j)
	}
	return jitter, a.slaHit(i, j), nil
}

func (slaMethod) idown(a *analyzer, j, i int) (noc.Cycles, error) { return 0, nil }

func (m slaMethod) explainTerm(a *analyzer, i, j int) (InterferenceTerm, error) {
	t := baseExplainTerm(a, i, j)
	t.Jitter, t.PerHit, _ = m.term(a, i, j)
	return t, nil
}

// xlwxMethod is Equation 5: hits of τj are counted with release plus
// interference jitter, each hit costing C_j plus the downstream indirect
// interference I^down_{ji} of Equation 3.
type xlwxMethod struct{}

func (m xlwxMethod) term(a *analyzer, i, j int) (jitter, hit noc.Cycles, err error) {
	jitter = a.sys.Flow(j).Jitter + (a.R[j] - a.sys.C(j))
	idown, err := m.idown(a, j, i)
	if err != nil {
		return 0, 0, err
	}
	return jitter, a.sys.C(j) + idown, nil
}

func (xlwxMethod) idown(a *analyzer, j, i int) (noc.Cycles, error) {
	return a.idownXLWX(j, i)
}

func (m xlwxMethod) explainTerm(a *analyzer, i, j int) (InterferenceTerm, error) {
	t := baseExplainTerm(a, i, j)
	jitter, hit, err := m.term(a, i, j)
	if err != nil {
		return t, err
	}
	t.Jitter, t.PerHit = jitter, hit
	t.IDown = hit - t.Cj
	return t, nil
}

// ibnMethod is the paper's proposed buffer-aware analysis: XLWX with
// each downstream hit's replayed interference bounded by the buffer
// capacity of the contention domain (Equations 6–8).
type ibnMethod struct{}

func (m ibnMethod) term(a *analyzer, i, j int) (jitter, hit noc.Cycles, err error) {
	jitter = a.sys.Flow(j).Jitter + (a.R[j] - a.sys.C(j))
	idown, err := m.idown(a, j, i)
	if err != nil {
		return 0, 0, err
	}
	return jitter, a.sys.C(j) + idown, nil
}

func (ibnMethod) idown(a *analyzer, j, i int) (noc.Cycles, error) {
	return a.idownIBN(j, i)
}

func (m ibnMethod) explainTerm(a *analyzer, i, j int) (InterferenceTerm, error) {
	t := baseExplainTerm(a, i, j)
	jitter, hit, err := m.term(a, i, j)
	if err != nil {
		return t, err
	}
	t.Jitter, t.PerHit = jitter, hit
	t.IDown = hit - t.Cj
	t.BufferedInterference = a.sets.BufferedInterference(i, j, a.opt.BufDepth)
	t.UsedFallback = !a.opt.NoUpstreamFallback && len(t.Upstream) > 0
	return t, nil
}
