package core

import (
	"fmt"
	"strings"

	"wormnoc/internal/noc"
	"wormnoc/internal/traffic"
)

// DeltaKind enumerates the typed edits the incremental engine accepts.
type DeltaKind int

const (
	// DeltaPeriod sets flow Flow's period to Cycles.
	DeltaPeriod DeltaKind = iota
	// DeltaDeadline sets flow Flow's deadline to Cycles.
	DeltaDeadline
	// DeltaJitter sets flow Flow's release jitter to Cycles.
	DeltaJitter
	// DeltaLength sets flow Flow's payload length to Length flits.
	DeltaLength
	// DeltaBufDepth sets the platform's per-VC buffer depth to BufDepth.
	DeltaBufDepth
	// DeltaPrioritySwap exchanges the priorities of flows Flow and Other.
	DeltaPrioritySwap
	// DeltaMapping re-maps flow Flow to the endpoints Src → Dst.
	DeltaMapping
	// DeltaAddFlow appends NewFlow to the flow set (it receives the next
	// flow index).
	DeltaAddFlow
	// DeltaRemoveFlow removes flow Flow; flows above it shift down by one.
	DeltaRemoveFlow
)

// deltaKindNames maps kinds to their canonical wire names, used by the
// HTTP service and the cache-key canonicaliser. Order matches the enum.
var deltaKindNames = [...]string{
	DeltaPeriod:       "period",
	DeltaDeadline:     "deadline",
	DeltaJitter:       "jitter",
	DeltaLength:       "length",
	DeltaBufDepth:     "buf",
	DeltaPrioritySwap: "swap-priority",
	DeltaMapping:      "remap",
	DeltaAddFlow:      "add-flow",
	DeltaRemoveFlow:   "remove-flow",
}

// String returns the kind's canonical wire name, the inverse of
// ParseDeltaKind.
func (k DeltaKind) String() string {
	if k >= 0 && int(k) < len(deltaKindNames) {
		return deltaKindNames[k]
	}
	return fmt.Sprintf("DeltaKind(%d)", int(k))
}

// ParseDeltaKind maps a wire name ("period", "swap-priority", …) to its
// kind — the single parser shared by the HTTP service and the CLIs.
func ParseDeltaKind(s string) (DeltaKind, error) {
	want := strings.ToLower(strings.TrimSpace(s))
	for k, name := range deltaKindNames {
		if name == want {
			return DeltaKind(k), nil
		}
	}
	return 0, fmt.Errorf("core: unknown delta kind %q (want one of %s)",
		s, strings.Join(deltaKindNames[:], ", "))
}

// Delta is one typed edit of a system. Only the fields its Kind names
// are meaningful; the rest stay zero.
type Delta struct {
	// Kind selects which edit this delta encodes and which of the
	// remaining fields are meaningful.
	Kind DeltaKind
	// Flow is the edited flow's index (the first flow of a priority
	// swap). Unused by DeltaBufDepth and DeltaAddFlow.
	Flow int
	// Other is the second flow of a DeltaPrioritySwap.
	Other int
	// Cycles is the new period, deadline, or jitter value.
	Cycles noc.Cycles
	// Length is the new payload length of a DeltaLength.
	Length int
	// BufDepth is the new platform buffer depth of a DeltaBufDepth.
	BufDepth int
	// Src and Dst are the new endpoints of a DeltaMapping.
	Src, Dst noc.NodeID
	// NewFlow is the flow appended by a DeltaAddFlow.
	NewFlow traffic.Flow
}

// String renders the delta compactly for logs and violation reports.
func (d Delta) String() string {
	switch d.Kind {
	case DeltaPeriod, DeltaDeadline, DeltaJitter:
		return fmt.Sprintf("%s(flow %d → %d)", d.Kind, d.Flow, int64(d.Cycles))
	case DeltaLength:
		return fmt.Sprintf("%s(flow %d → %d)", d.Kind, d.Flow, d.Length)
	case DeltaBufDepth:
		return fmt.Sprintf("%s(→ %d)", d.Kind, d.BufDepth)
	case DeltaPrioritySwap:
		return fmt.Sprintf("%s(flows %d ↔ %d)", d.Kind, d.Flow, d.Other)
	case DeltaMapping:
		return fmt.Sprintf("%s(flow %d → %d→%d)", d.Kind, d.Flow, int(d.Src), int(d.Dst))
	case DeltaAddFlow:
		return fmt.Sprintf("%s(%v)", d.Kind, d.NewFlow)
	case DeltaRemoveFlow:
		return fmt.Sprintf("%s(flow %d)", d.Kind, d.Flow)
	default:
		return d.Kind.String()
	}
}

// Validate checks the delta against a flow set of n flows. Constraints
// that need the whole system (deadline ≤ period, unique priorities,
// routable endpoints) are left to the System rebuild, which re-validates
// everything.
func (d Delta) Validate(n int) error {
	needFlow := func() error {
		if d.Flow < 0 || d.Flow >= n {
			return fmt.Errorf("core: delta %s: flow index %d out of range (%d flows)", d.Kind, d.Flow, n)
		}
		return nil
	}
	switch d.Kind {
	case DeltaPeriod, DeltaDeadline:
		if d.Cycles < 1 {
			return fmt.Errorf("core: delta %s: value must be >= 1 cycle, got %d", d.Kind, int64(d.Cycles))
		}
		return needFlow()
	case DeltaJitter:
		if d.Cycles < 0 {
			return fmt.Errorf("core: delta %s: value must be >= 0, got %d", d.Kind, int64(d.Cycles))
		}
		return needFlow()
	case DeltaLength:
		if d.Length < 1 {
			return fmt.Errorf("core: delta %s: length must be >= 1 flit, got %d", d.Kind, d.Length)
		}
		return needFlow()
	case DeltaBufDepth:
		if d.BufDepth < 1 {
			return fmt.Errorf("core: delta %s: buffer depth must be >= 1, got %d", d.Kind, d.BufDepth)
		}
		return nil
	case DeltaPrioritySwap:
		if err := needFlow(); err != nil {
			return err
		}
		if d.Other < 0 || d.Other >= n {
			return fmt.Errorf("core: delta %s: flow index %d out of range (%d flows)", d.Kind, d.Other, n)
		}
		if d.Other == d.Flow {
			return fmt.Errorf("core: delta %s: cannot swap flow %d with itself", d.Kind, d.Flow)
		}
		return nil
	case DeltaMapping:
		if d.Src == d.Dst {
			return fmt.Errorf("core: delta %s: source and destination are both node %d", d.Kind, int(d.Src))
		}
		return needFlow()
	case DeltaAddFlow:
		return d.NewFlow.Validate()
	case DeltaRemoveFlow:
		return needFlow()
	default:
		return fmt.Errorf("core: unknown delta kind %d", int(d.Kind))
	}
}

// structural reports whether the delta changes the interference graph
// (routes, priorities, or the flow set itself) rather than only flow or
// platform parameters. Structural edits invalidate pair ranks and rule
// out warm-starting.
func (d Delta) structural() bool {
	switch d.Kind {
	case DeltaPrioritySwap, DeltaMapping, DeltaAddFlow, DeltaRemoveFlow:
		return true
	}
	return false
}

// grows reports whether applying d to sys can only enlarge (never
// shrink) any flow's interference under the analysis selected by opt —
// the precondition for seeding the fixed points from the previous
// converged bounds (see analyzeFlowFrom's monotone-restart argument).
// The classification is per method:
//
//   - a period decrease, jitter increase, or payload increase enlarges
//     every term it enters, under every method;
//   - a deadline change never enters the iteration function at all (it
//     only classifies the converged bound), so the previous bound is
//     still the exact least fixed point;
//   - a platform buffer-depth change is invisible to SB and XLWX (and to
//     any run whose Options.BufDepth override pins the depth): deeper
//     buffers enlarge IBN's buffered-interference cap bi_ij (Eq. 6) but
//     shrink SLA's per-hit cost, so the growth direction flips between
//     the two;
//   - structural edits can do both at once and never qualify.
func (d Delta) grows(sys *traffic.System, opt Options) bool {
	switch d.Kind {
	case DeltaPeriod:
		return d.Cycles <= sys.Flow(d.Flow).Period
	case DeltaDeadline:
		return true
	case DeltaJitter:
		return d.Cycles >= sys.Flow(d.Flow).Jitter
	case DeltaLength:
		return d.Length >= sys.Flow(d.Flow).Length
	case DeltaBufDepth:
		if !bufSensitive(opt) {
			return true // no term changes at all
		}
		old := sys.Topology().Config().BufDepth
		if opt.Method == SLA {
			return d.BufDepth <= old
		}
		return d.BufDepth >= old
	default:
		return false
	}
}

// bufSensitive reports whether a run configured by opt reads the
// platform's buffer depth: SB and XLWX never do, and an explicit
// Options.BufDepth override shadows the platform value for IBN and SLA.
func bufSensitive(opt Options) bool {
	if opt.Method == SB || opt.Method == XLWX {
		return false
	}
	return opt.BufDepth <= 0
}

// ApplyDelta materialises the edited system. The input system is not
// modified; an invalid edit (out-of-range index, deadline above period,
// unroutable mapping, duplicate priority, …) returns an error and no
// system.
func ApplyDelta(sys *traffic.System, d Delta) (*traffic.System, error) {
	if err := d.Validate(sys.NumFlows()); err != nil {
		return nil, err
	}
	if d.Kind == DeltaBufDepth {
		cfg := sys.Topology().Config()
		cfg.BufDepth = d.BufDepth
		return sys.WithConfig(cfg)
	}
	flows := append([]traffic.Flow(nil), sys.Flows()...)
	switch d.Kind {
	case DeltaPeriod:
		flows[d.Flow].Period = d.Cycles
	case DeltaDeadline:
		flows[d.Flow].Deadline = d.Cycles
	case DeltaJitter:
		flows[d.Flow].Jitter = d.Cycles
	case DeltaLength:
		flows[d.Flow].Length = d.Length
	case DeltaPrioritySwap:
		flows[d.Flow].Priority, flows[d.Other].Priority = flows[d.Other].Priority, flows[d.Flow].Priority
	case DeltaMapping:
		flows[d.Flow].Src, flows[d.Flow].Dst = d.Src, d.Dst
	case DeltaAddFlow:
		flows = append(flows, d.NewFlow)
	case DeltaRemoveFlow:
		flows = append(flows[:d.Flow], flows[d.Flow+1:]...)
	}
	return traffic.NewSystem(sys.Topology(), flows)
}

// ApplyDeltas folds ApplyDelta over a chain of edits — the from-scratch
// reference the oracle's incremental-divergent invariant compares
// against. Delta i failing aborts the fold with the edits before i
// applied; the error identifies the position.
func ApplyDeltas(sys *traffic.System, deltas []Delta) (*traffic.System, error) {
	for i, d := range deltas {
		next, err := ApplyDelta(sys, d)
		if err != nil {
			return nil, fmt.Errorf("core: delta %d: %w", i, err)
		}
		sys = next
	}
	return sys, nil
}
