package core_test

import (
	"strings"
	"testing"

	"wormnoc/internal/core"
	"wormnoc/internal/noc"
	"wormnoc/internal/traffic"
)

// twoFlowSystem puts a heavy high-priority flow against a light
// low-priority one on a shared path, with a tunable low-priority
// deadline.
func twoFlowSystem(t *testing.T, loPeriod, loDeadline noc.Cycles) *traffic.System {
	t.Helper()
	topo := noc.MustMesh(4, 1, noc.RouterConfig{BufDepth: 2, LinkLatency: 1, RouteLatency: 0})
	return traffic.MustSystem(topo, []traffic.Flow{
		{Name: "hi", Priority: 1, Period: 100, Deadline: 100, Length: 50, Src: 0, Dst: 3},
		{Name: "lo", Priority: 2, Period: loPeriod, Deadline: loDeadline, Length: 10, Src: 0, Dst: 3},
	})
}

func TestDeadlineMissStatus(t *testing.T) {
	// hi: C = 5 links... route len 5? 4x1 line 0→3: inj+3mesh+ej = 5
	// links, C = 5 + 49 = 54 > its period share; lo suffers repeated hits.
	sys := twoFlowSystem(t, 200, 60) // lo deadline 60 < one hit of hi (54+)
	res, err := core.Analyze(sys, core.Options{Method: core.XLWX})
	if err != nil {
		t.Fatal(err)
	}
	if res.Flows[0].Status != core.Schedulable {
		t.Fatalf("hi should be schedulable: %+v", res.Flows[0])
	}
	if res.Flows[1].Status != core.DeadlineMiss {
		t.Fatalf("lo should miss its deadline: %+v", res.Flows[1])
	}
	if res.Schedulable {
		t.Error("set must be unschedulable")
	}
	if res.Flows[1].R <= sys.Flow(1).Deadline {
		t.Error("DeadlineMiss must report the first bound past the deadline")
	}
}

// A flow with no higher-priority interference converges at r = C on the
// first iteration; if C already exceeds the deadline, that convergence
// must still be a DeadlineMiss. Found by the verification oracle: its
// shrinker halved a solo flow's period until C > D = T and every
// analysis still reported the flow schedulable.
func TestDeadlineMissWithoutInterference(t *testing.T) {
	topo := noc.MustMesh(2, 1, noc.RouterConfig{BufDepth: 2, LinkLatency: 1, RouteLatency: 0})
	sys := traffic.MustSystem(topo, []traffic.Flow{
		{Name: "solo", Priority: 1, Period: 3, Deadline: 3, Length: 60, Src: 0, Dst: 1},
	})
	for _, m := range core.Methods() {
		res, err := core.Analyze(sys, core.Options{Method: m})
		if err != nil {
			t.Fatal(err)
		}
		if res.Flows[0].Status != core.DeadlineMiss {
			t.Errorf("%s: solo flow with C=%d > D=3 reported %v", m, res.Flows[0].R, res.Flows[0].Status)
		}
	}
}

func TestDependencyFailedStatus(t *testing.T) {
	// Make the HIGH priority flow unschedulable (C > D is impossible
	// with D<=T validation, so use an intermediate flow instead):
	// p1 hammers p2 until p2 misses; p3 depends on p2's bound.
	// p1: C = 5 + 79 = 84 over T = 100; p2: C = 14, one hit of p1 gives
	// R = 98 > D = 90 → DeadlineMiss; p3's bound needs R(p2) → fails.
	topo := noc.MustMesh(4, 1, noc.RouterConfig{BufDepth: 2, LinkLatency: 1, RouteLatency: 0})
	sys := traffic.MustSystem(topo, []traffic.Flow{
		{Name: "p1", Priority: 1, Period: 100, Deadline: 100, Length: 80, Src: 0, Dst: 3},
		{Name: "p2", Priority: 2, Period: 300, Deadline: 90, Length: 10, Src: 0, Dst: 3},
		{Name: "p3", Priority: 3, Period: 5000, Deadline: 5000, Length: 10, Src: 0, Dst: 3},
	})
	res, err := core.Analyze(sys, core.Options{Method: core.XLWX})
	if err != nil {
		t.Fatal(err)
	}
	if res.Flows[1].Status != core.DeadlineMiss {
		t.Fatalf("p2 should miss: %+v", res.Flows[1])
	}
	if res.Flows[2].Status != core.DependencyFailed {
		t.Fatalf("p3 should be DependencyFailed: %+v", res.Flows[2])
	}
}

func TestDivergedStatus(t *testing.T) {
	// A 64%-utilised interferer makes lo's fixed point climb through
	// several hit counts (204 → 396 → 460 → … → 588); capping the
	// iterations at 1 forces Diverged.
	topo := noc.MustMesh(4, 1, noc.RouterConfig{BufDepth: 2, LinkLatency: 1, RouteLatency: 0})
	sys := traffic.MustSystem(topo, []traffic.Flow{
		{Name: "hi", Priority: 1, Period: 100, Deadline: 100, Length: 60, Src: 0, Dst: 3},
		{Name: "lo", Priority: 2, Period: 100_000, Deadline: 100_000, Length: 200, Src: 0, Dst: 3},
	})
	res, err := core.Analyze(sys, core.Options{Method: core.SB, MaxIterations: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Flows[1].Status != core.Diverged {
		t.Fatalf("expected Diverged with MaxIterations=1, got %+v", res.Flows[1])
	}
	// With the default cap it converges.
	res, err = core.Analyze(sys, core.Options{Method: core.SB})
	if err != nil {
		t.Fatal(err)
	}
	if res.Flows[1].Status != core.Schedulable {
		t.Fatalf("expected convergence, got %+v", res.Flows[1])
	}
}

func TestUnknownMethodRejected(t *testing.T) {
	sys := twoFlowSystem(t, 1000, 1000)
	if _, err := core.Analyze(sys, core.Options{Method: core.Method(42)}); err == nil {
		t.Error("unknown method must be rejected")
	}
}

func TestNoInterferenceEqualsZeroLoad(t *testing.T) {
	// Two flows on disjoint routes: both bounds equal C under every
	// analysis.
	topo := noc.MustMesh(4, 4, noc.RouterConfig{BufDepth: 2, LinkLatency: 1, RouteLatency: 0})
	sys := traffic.MustSystem(topo, []traffic.Flow{
		{Name: "a", Priority: 1, Period: 1000, Deadline: 1000, Length: 16, Src: 0, Dst: 1},
		{Name: "b", Priority: 2, Period: 1000, Deadline: 1000, Length: 16, Src: 14, Dst: 15},
	})
	for _, m := range []core.Method{core.SB, core.XLWX, core.IBN} {
		res, err := core.Analyze(sys, core.Options{Method: m})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 2; i++ {
			if res.R(i) != sys.C(i) {
				t.Errorf("%v: R(%d) = %d, want C = %d", m, i, res.R(i), sys.C(i))
			}
		}
	}
}

// TestBackToBackHit reproduces the classic indirect-interference jitter
// scenario that distinguishes SB-with-JI from a naive analysis: τj
// delayed by τk can hit τi twice in quick succession.
func TestBackToBackHit(t *testing.T) {
	// τk (P1) shares only with τj (P2); τj shares with τi (P3).
	sys := lineSystem(t,
		[3]int{1, 0, 2}, // τk upstream segment of τj
		[3]int{2, 0, 9}, // τj full line
		[3]int{3, 4, 7}, // τi mid segment
	)
	// Recreate with loads that make the interference jitter bite: τk at
	// 86% utilisation pushes R_j to 585, so JI_j = 515 and τi takes two
	// back-to-back hits of τj within one T_j = 600 window.
	topo := sys.Topology()
	flows := make([]traffic.Flow, 3)
	copy(flows, sys.Flows())
	flows[0].Period, flows[0].Deadline, flows[0].Length = 120, 120, 100
	flows[1].Period, flows[1].Deadline, flows[1].Length = 600, 600, 60
	flows[2].Period, flows[2].Deadline, flows[2].Length = 5000, 5000, 30
	sys = traffic.MustSystem(topo, flows)

	sets := core.BuildSets(sys)
	sb, err := core.AnalyzeWithSets(sys, sets, core.Options{Method: core.SB})
	if err != nil {
		t.Fatal(err)
	}
	// τj suffers interference from τk, so its interference jitter
	// R_j - C_j must be reflected in τi's hit count: R_i must exceed
	// C_i + 1·C_j (a single clean hit).
	if sb.R(2) <= sys.C(2)+sys.C(1) {
		t.Errorf("back-to-back hits not captured: R = %d", sb.R(2))
	}
}

func TestMethodAndStatusStrings(t *testing.T) {
	for _, m := range []core.Method{core.SB, core.XLWX, core.IBN, core.Method(9)} {
		if m.String() == "" {
			t.Errorf("Method(%d).String() empty", int(m))
		}
	}
	for _, s := range []core.FlowStatus{core.Schedulable, core.DeadlineMiss, core.DependencyFailed, core.Diverged, core.FlowStatus(9)} {
		if s.String() == "" {
			t.Errorf("FlowStatus(%d).String() empty", int(s))
		}
	}
	if !strings.Contains(core.SB.String(), "SB") {
		t.Error("SB stringer wrong")
	}
}
