package core

import (
	"fmt"

	"wormnoc/internal/traffic"
)

// Sensitivity analysis: how much load headroom does a design have?
//
// A schedulability verdict is binary; designers usually want to know how
// far a flow set is from the edge. ScaleLimit answers the classic
// sensitivity question: by what uniform factor can every packet length
// be scaled while the set remains schedulable under the given analysis?
// A limit of 1.85 means payloads could grow 85% before the guarantee
// breaks; a limit below 1 means the set is already unschedulable and
// must shrink. Because IBN is tighter than XLWX, it certifies strictly
// more headroom — a directly actionable form of the paper's pessimism
// reduction.

// ScaleLimit binary-searches the largest factor in [lo, hi] by which all
// packet lengths can be scaled (rounded down, minimum 1 flit) with the
// system remaining fully schedulable under opt. It returns the largest
// schedulable factor found at the given precision (default 0.01), or 0
// if even scaling to `lo` is unschedulable.
func ScaleLimit(sys *traffic.System, opt Options, lo, hi, precision float64) (float64, error) {
	if lo <= 0 || hi < lo {
		return 0, fmt.Errorf("core: scale range [%g, %g] invalid", lo, hi)
	}
	if precision <= 0 {
		precision = 0.01
	}
	schedulableAt := func(scale float64) (bool, error) {
		flows := make([]traffic.Flow, sys.NumFlows())
		copy(flows, sys.Flows())
		for i := range flows {
			l := int(float64(flows[i].Length) * scale)
			if l < 1 {
				l = 1
			}
			flows[i].Length = l
		}
		scaled, err := traffic.NewSystem(sys.Topology(), flows)
		if err != nil {
			return false, err
		}
		res, err := Analyze(scaled, opt)
		if err != nil {
			return false, err
		}
		return res.Schedulable, nil
	}
	ok, err := schedulableAt(lo)
	if err != nil || !ok {
		return 0, err
	}
	if ok, err := schedulableAt(hi); err != nil {
		return 0, err
	} else if ok {
		return hi, nil
	}
	for hi-lo > precision {
		mid := (lo + hi) / 2
		ok, err := schedulableAt(mid)
		if err != nil {
			return 0, err
		}
		if ok {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo, nil
}
