package core

import (
	"wormnoc/internal/noc"
)

// Non-preemptive flit-transfer blocking (multi-cycle links).
//
// The paper — like the SB/SLA/XLWX literature it builds on — evaluates
// single-cycle links (linkl(Ξ) = 1), where link arbitration happens every
// cycle and higher-priority packets preempt at flit boundaries with zero
// residual cost. With linkl(Ξ) > 1 a flit transfer is atomic: a packet
// that wants a link currently carrying a LOWER-priority flit must wait
// for up to linkl−1 cycles — blocking that none of the published
// interference terms account for (our own adversarial validation caught
// the analyses being one cycle optimistic on 2-cycle links before this
// term existed).
//
// The term charged here is deliberately conservative: a packet can wait
// behind a partial lower-priority transfer once per "resume" of its
// pipeline at each route link that any lower-priority flow crosses.
// Resumes happen at the initial traversal and after every interference
// episode; episodes are bounded by the direct hits plus, for each direct
// interferer τj, the downstream hits that make τj's buffered flits
// replay (the MPB stop-and-go):
//
//	B_i(R) = (linkl−1) · sharedLow_i · (1 + Σ_j hits_j(R)·(1 + replays_j))
//
// where sharedLow_i counts links of route_i shared with at least one
// lower-priority flow and replays_j = Σ_{k ∈ S^downj_Ii} ceil((R_j+J_k)/T_k).
// For linkl = 1 the term is identically zero, so every result of the
// paper is unaffected.

// sharedLowLinks counts the links of route_i also used by at least one
// lower-priority flow — the links where a partial lower-priority flit
// transfer can make τi wait.
func (a *analyzer) sharedLowLinks(i int) int {
	shared := make(map[noc.LinkID]struct{})
	for m := 0; m < a.sys.NumFlows(); m++ {
		if m == i || !a.sys.HigherPriority(i, m) {
			continue
		}
		for _, l := range a.sets.CD(i, m) {
			shared[l] = struct{}{}
		}
	}
	return len(shared)
}

// replayEpisodes bounds the number of stop-and-go replays of direct
// interferer τj relevant to τi: the downstream hits τj suffers during
// its own response time.
func (a *analyzer) replayEpisodes(i, j int) (noc.Cycles, error) {
	rj, err := a.requireR(j)
	if err != nil {
		return 0, err
	}
	var episodes noc.Cycles
	for _, k := range a.sets.Downstream(i, j) {
		fk := a.sys.Flow(k)
		episodes += ceilDiv(rj+fk.Jitter, fk.Period)
	}
	return episodes, nil
}
