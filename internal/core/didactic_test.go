package core_test

import (
	"testing"

	"wormnoc/internal/core"
	"wormnoc/internal/noc"
	"wormnoc/internal/workload"
)

// analyzeDidactic runs one analysis over the Section V example.
func analyzeDidactic(t *testing.T, bufDepth int, opt core.Options) *core.Result {
	t.Helper()
	sys := workload.Didactic(bufDepth)
	res, err := core.Analyze(sys, opt)
	if err != nil {
		t.Fatalf("Analyze(%v): %v", opt, err)
	}
	return res
}

// TestTableIZeroLoadLatencies pins the C column of Table I.
func TestTableIZeroLoadLatencies(t *testing.T) {
	sys := workload.Didactic(2)
	wantC := []noc.Cycles{62, 204, 132}
	wantRouteLen := []int{3, 7, 5}
	for i := range wantC {
		if got := sys.C(i); got != wantC[i] {
			t.Errorf("C(τ%d) = %d, want %d", i+1, got, wantC[i])
		}
		if got := sys.Route(i).Len(); got != wantRouteLen[i] {
			t.Errorf("|route(τ%d)| = %d, want %d", i+1, got, wantRouteLen[i])
		}
	}
}

// TestTableIIAnalysisColumns pins every analytic column of Table II.
func TestTableIIAnalysisColumns(t *testing.T) {
	cases := []struct {
		name string
		buf  int
		opt  core.Options
		want []noc.Cycles // R for τ1, τ2, τ3
	}{
		{"SB", 2, core.Options{Method: core.SB}, []noc.Cycles{62, 328, 336}},
		{"XLWX", 2, core.Options{Method: core.XLWX}, []noc.Cycles{62, 328, 460}},
		{"IBN b=10", 10, core.Options{Method: core.IBN}, []noc.Cycles{62, 328, 396}},
		{"IBN b=2", 2, core.Options{Method: core.IBN}, []noc.Cycles{62, 328, 348}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res := analyzeDidactic(t, tc.buf, tc.opt)
			if !res.Schedulable {
				t.Fatalf("%s: example should be fully schedulable, got %+v", tc.name, res.Flows)
			}
			for i, want := range tc.want {
				if got := res.R(i); got != want {
					t.Errorf("%s: R(τ%d) = %d, want %d", tc.name, i+1, got, want)
				}
			}
		})
	}
}

// TestIBNBufferOverride checks that Options.BufDepth reproduces the
// b=2 result on a platform built with 10-flit buffers.
func TestIBNBufferOverride(t *testing.T) {
	res := analyzeDidactic(t, 10, core.Options{Method: core.IBN, BufDepth: 2})
	if got := res.R(2); got != 348 {
		t.Errorf("IBN with BufDepth override 2 on buf=10 platform: R(τ3) = %d, want 348", got)
	}
}

// TestDidacticInterferenceSets pins the interference-set structure that
// Section V walks through.
func TestDidacticInterferenceSets(t *testing.T) {
	sys := workload.Didactic(2)
	sets := core.BuildSets(sys)

	if got := sets.Direct(0); len(got) != 0 {
		t.Errorf("S^D(τ1) = %v, want empty", got)
	}
	if got := sets.Direct(1); len(got) != 1 || got[0] != 0 {
		t.Errorf("S^D(τ2) = %v, want [τ1]", got)
	}
	if got := sets.Direct(2); len(got) != 1 || got[0] != 1 {
		t.Errorf("S^D(τ3) = %v, want [τ2]", got)
	}
	if got := sets.Indirect(2); len(got) != 1 || got[0] != 0 {
		t.Errorf("S^I(τ3) = %v, want [τ1]", got)
	}
	if got := len(sets.CD(2, 1)); got != 3 {
		t.Errorf("|cd(τ3,τ2)| = %d, want 3", got)
	}
	// τ1 (e→f) and τ2 (a→f) share the last mesh link and the ejection
	// link into node f.
	if got := len(sets.CD(1, 0)); got != 2 {
		t.Errorf("|cd(τ2,τ1)| = %d, want 2", got)
	}
	if got := sets.CD(2, 0); len(got) != 0 {
		t.Errorf("cd(τ3,τ1) = %v, want empty", got)
	}
	// τ1 blocks τ2 downstream of cd(τ3,τ2): the MPB trigger.
	if got := sets.Downstream(2, 1); len(got) != 1 || got[0] != 0 {
		t.Errorf("S^down(τ2 w.r.t. τ3) = %v, want [τ1]", got)
	}
	if got := sets.Upstream(2, 1); len(got) != 0 {
		t.Errorf("S^up(τ2 w.r.t. τ3) = %v, want empty", got)
	}
}

// TestBufferedInterference pins Equation 6 on the didactic geometry.
func TestBufferedInterference(t *testing.T) {
	sys := workload.Didactic(2)
	sets := core.BuildSets(sys)
	if got := sets.BufferedInterference(2, 1, 0); got != 6 {
		t.Errorf("bi(τ3,τ2) with buf=2 = %d, want 6", got)
	}
	if got := sets.BufferedInterference(2, 1, 10); got != 30 {
		t.Errorf("bi(τ3,τ2) with buf=10 = %d, want 30", got)
	}
}

// TestEq7CanExceedXLWX demonstrates the motivation for the min() in
// Equation 8: on a 100-flit-buffer platform the raw buffered-interference
// bound (Eq. 7) exceeds the XLWX term, while full IBN never does.
func TestEq7CanExceedXLWX(t *testing.T) {
	xlwx := analyzeDidactic(t, 100, core.Options{Method: core.XLWX})
	eq7 := analyzeDidactic(t, 100, core.Options{Method: core.IBN, Eq7: true})
	ibn := analyzeDidactic(t, 100, core.Options{Method: core.IBN})
	if eq7.R(2) <= xlwx.R(2) {
		t.Errorf("Eq7 R(τ3) = %d should exceed XLWX %d at buf=100 (bi=300 > Ck+Idown=62)",
			eq7.R(2), xlwx.R(2))
	}
	if ibn.R(2) > xlwx.R(2) {
		t.Errorf("IBN R(τ3) = %d must never exceed XLWX %d", ibn.R(2), xlwx.R(2))
	}
}
