// Package core implements the worst-case response-time analyses the
// paper studies for priority-preemptive wormhole NoCs:
//
//   - SB:   Shi & Burns (NOCS 2008) — the classic direct/indirect
//     interference analysis, shown by Xiong et al. to be optimistic
//     (unsafe) under multi-point progressive blocking (MPB).
//   - XLWX: Xiong, Wu, Lu & Xie (IEEE ToC 2017), with the interference-
//     jitter fix by Indrusiak et al. — the safe state-of-the-art baseline
//     (Equation 5 of the paper).
//   - IBN:  the paper's proposed buffer-aware analysis (Equations 6–8),
//     which bounds the interference a blocked packet can replay by the
//     buffer capacity available inside the contention domain.
//
// The package also exposes the interference-set machinery shared by the
// analyses: direct sets S^D, indirect sets S^I, and the upstream /
// downstream partitions of indirect interferers introduced by Xiong et
// al. to characterise MPB.
//
// # Concurrency
//
// An Engine is safe for concurrent use: the interference sets it wraps
// are immutable after construction, every Analyze/Explain call checks
// out a private arena from a sync.Pool, and the cumulative Telemetry is
// mutex-guarded. Analyses accept a context (AnalyzeContext) and honour
// cancellation between flows and inside the fixed-point loops, so a
// caller-imposed deadline aborts even a single pathological flow
// promptly. The long-lived serving layer (internal/serve) relies on both
// guarantees to share one warm engine per system across requests.
package core

import (
	"sort"

	"wormnoc/internal/noc"
	"wormnoc/internal/traffic"
)

// Sets holds the interference sets of a flow set, as defined in
// Section III of the paper. Build it once per system with BuildSets; it
// is immutable afterwards and safe for concurrent use.
type Sets struct {
	sys *traffic.System
	// cd[i][j] is the contention domain cd_ij = route_i ∩ route_j,
	// ordered along route_i (nil when empty). Symmetric as a set.
	cd [][]noc.Route
	// direct[i] is S^D_i: flows with higher priority than τi sharing at
	// least one link with it. Sorted by flow index.
	direct [][]int
	// indirect[i] is S^I_i: flows not in S^D_i that directly interfere
	// with at least one member of S^D_i. Sorted by flow index.
	indirect [][]int
	// pairOffset[i] is the dense rank of the first (j, i) direct pair of
	// flow i in the flattened enumeration of all direct sets;
	// pairOffset[n] is the total pair count. The downstream-interference
	// recursions only ever memoise keys (j, i) with j ∈ S^D_i, so this
	// ranking lets the engine replace per-run map[pair] memos with
	// reusable slices.
	pairOffset []int
}

// BuildSets computes contention domains and the direct/indirect
// interference sets for every flow of the system.
func BuildSets(sys *traffic.System) *Sets {
	n := sys.NumFlows()
	s := &Sets{
		sys:      sys,
		cd:       make([][]noc.Route, n),
		direct:   make([][]int, n),
		indirect: make([][]int, n),
	}
	// Link membership maps for fast intersection.
	member := make([]map[noc.LinkID]struct{}, n)
	for i := 0; i < n; i++ {
		r := sys.Route(i)
		m := make(map[noc.LinkID]struct{}, r.Len())
		for _, l := range r {
			m[l] = struct{}{}
		}
		member[i] = m
	}
	for i := 0; i < n; i++ {
		s.cd[i] = make([]noc.Route, n)
	}
	for i := 0; i < n; i++ {
		ri := sys.Route(i)
		for j := i + 1; j < n; j++ {
			var cd noc.Route
			for _, l := range ri {
				if _, ok := member[j][l]; ok {
					cd = append(cd, l)
				}
			}
			if cd != nil {
				s.cd[i][j] = cd
				// The same set ordered along route_j.
				cdj := make(noc.Route, 0, len(cd))
				for _, l := range sys.Route(j) {
					if _, ok := member[i][l]; ok {
						cdj = append(cdj, l)
					}
				}
				s.cd[j][i] = cdj
			}
		}
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if j != i && sys.HigherPriority(j, i) && len(s.cd[i][j]) > 0 {
				s.direct[i] = append(s.direct[i], j)
			}
		}
	}
	for i := 0; i < n; i++ {
		inDirect := make(map[int]bool, len(s.direct[i]))
		for _, j := range s.direct[i] {
			inDirect[j] = true
		}
		seen := make(map[int]bool)
		for _, j := range s.direct[i] {
			for _, k := range s.direct[j] {
				if k != i && !inDirect[k] && !seen[k] {
					seen[k] = true
				}
			}
		}
		for k := 0; k < n; k++ {
			if seen[k] {
				s.indirect[i] = append(s.indirect[i], k)
			}
		}
	}
	s.pairOffset = make([]int, n+1)
	for i := 0; i < n; i++ {
		s.pairOffset[i+1] = s.pairOffset[i] + len(s.direct[i])
	}
	return s
}

// numPairs returns the total number of (direct interferer, flow) pairs —
// the size of the engine's memo arenas.
func (s *Sets) numPairs() int { return s.pairOffset[len(s.pairOffset)-1] }

// pairRank maps a memo key (j, i), with j a direct interferer of τi, to
// its dense rank in [0, numPairs()).
func (s *Sets) pairRank(j, i int) int {
	d := s.direct[i]
	k := sort.SearchInts(d, j)
	if k == len(d) || d[k] != j {
		panic("core: memo key is not a direct-interference pair")
	}
	return s.pairOffset[i] + k
}

// CD returns the contention domain cd_ij (links shared by route_i and
// route_j), ordered along route_i. The result is nil when the flows do
// not share links. The returned slice must not be modified.
func (s *Sets) CD(i, j int) noc.Route { return s.cd[i][j] }

// Direct returns S^D_i, the direct interference set of flow i: every
// flow with a higher priority and a non-empty contention domain with τi.
func (s *Sets) Direct(i int) []int { return s.direct[i] }

// Indirect returns S^I_i, the indirect interference set of flow i: flows
// that interfere with a member of S^D_i but not with τi itself.
func (s *Sets) Indirect(i int) []int { return s.indirect[i] }

// orderRange returns the smallest and largest order (1-based position)
// that the links of cd occupy along route r. cd must be non-empty and a
// subset of r.
func orderRange(r noc.Route, cd noc.Route) (lo, hi int) {
	lo, hi = 0, 0
	for _, l := range cd {
		o := r.Order(l)
		if o == 0 {
			continue
		}
		if lo == 0 || o < lo {
			lo = o
		}
		if o > hi {
			hi = o
		}
	}
	return lo, hi
}

// Upstream returns S^upj_Ii: the flows τk ∈ S^I_i ∩ S^D_j whose
// contention domain with τj lies strictly upstream (along route_j) of
// cd_ij, i.e. order(last(cd_jk), route_j) < order(first(cd_ij), route_j).
// Such flows delay τj before it reaches the links it shares with τi.
func (s *Sets) Upstream(i, j int) []int {
	return s.partition(i, j, true)
}

// Downstream returns S^downj_Ii: the flows τk ∈ S^I_i ∩ S^D_j whose
// contention domain with τj lies strictly downstream (along route_j) of
// cd_ij, i.e. order(first(cd_jk), route_j) > order(last(cd_ij), route_j).
// Such flows block τj after it has passed τi's links — the trigger of
// multi-point progressive blocking.
func (s *Sets) Downstream(i, j int) []int {
	return s.partition(i, j, false)
}

func (s *Sets) partition(i, j int, upstream bool) []int {
	cdij := s.cd[j][i] // cd_ij ordered along route_j
	if len(cdij) == 0 {
		return nil
	}
	rj := s.sys.Route(j)
	ijLo, ijHi := orderRange(rj, cdij)
	var out []int
	for _, k := range s.indirect[i] {
		if !s.sys.HigherPriority(k, j) {
			continue // k ∉ S^D_j
		}
		cdjk := s.cd[j][k]
		if len(cdjk) == 0 {
			continue // k ∉ S^D_j
		}
		jkLo, jkHi := orderRange(rj, cdjk)
		if upstream {
			if jkHi < ijLo {
				out = append(out, k)
			}
		} else {
			if jkLo > ijHi {
				out = append(out, k)
			}
		}
	}
	return out
}

// BufferedInterference evaluates Equation 6 of the paper: the maximum
// buffered interference bi_ij that a single downstream hit on τj can
// replay onto τi, bounded by the buffer capacity inside their contention
// domain,
//
//	bi_ij = buf(Ξ) · linkl(Ξ) · |cd_ij|
//
// bufDepth overrides buf(Ξ) when > 0 (used to compare buffer sizes
// without rebuilding the platform).
func (s *Sets) BufferedInterference(i, j, bufDepth int) noc.Cycles {
	cfg := s.sys.Topology().Config()
	buf := cfg.BufDepth
	if bufDepth > 0 {
		buf = bufDepth
	}
	return noc.Cycles(buf) * cfg.LinkLatency * noc.Cycles(len(s.cd[i][j]))
}
