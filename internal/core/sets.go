// Package core implements the worst-case response-time analyses the
// paper studies for priority-preemptive wormhole NoCs:
//
//   - SB:   Shi & Burns (NOCS 2008) — the classic direct/indirect
//     interference analysis, shown by Xiong et al. to be optimistic
//     (unsafe) under multi-point progressive blocking (MPB).
//   - XLWX: Xiong, Wu, Lu & Xie (IEEE ToC 2017), with the interference-
//     jitter fix by Indrusiak et al. — the safe state-of-the-art baseline
//     (Equation 5 of the paper).
//   - IBN:  the paper's proposed buffer-aware analysis (Equations 6–8),
//     which bounds the interference a blocked packet can replay by the
//     buffer capacity available inside the contention domain.
//
// The package also exposes the interference-set machinery shared by the
// analyses: direct sets S^D, indirect sets S^I, and the upstream /
// downstream partitions of indirect interferers introduced by Xiong et
// al. to characterise MPB.
//
// # Concurrency
//
// An Engine is safe for concurrent use: the interference sets it wraps
// are immutable after construction, every Analyze/Explain call checks
// out a private arena from a sync.Pool, and the cumulative Telemetry is
// mutex-guarded. Analyses accept a context (AnalyzeContext) and honour
// cancellation between flows and inside the fixed-point loops, so a
// caller-imposed deadline aborts even a single pathological flow
// promptly. The long-lived serving layer (internal/serve) relies on both
// guarantees to share one warm engine per system across requests.
package core

import (
	"sort"

	"wormnoc/internal/noc"
	"wormnoc/internal/traffic"
)

// Sets holds the interference sets of a flow set, as defined in
// Section III of the paper. Build it once per system with BuildSets; it
// is immutable afterwards and safe for concurrent use.
type Sets struct {
	sys *traffic.System
	// cd[i][j] is the contention domain cd_ij = route_i ∩ route_j,
	// ordered along route_i (nil when empty). Symmetric as a set.
	cd [][]noc.Route
	// direct[i] is S^D_i: flows with higher priority than τi sharing at
	// least one link with it. Sorted by flow index.
	direct [][]int
	// indirect[i] is S^I_i: flows not in S^D_i that directly interfere
	// with at least one member of S^D_i. Sorted by flow index.
	indirect [][]int
	// pairOffset[i] is the dense rank of the first (j, i) direct pair of
	// flow i in the flattened enumeration of all direct sets;
	// pairOffset[n] is the total pair count. The downstream-interference
	// recursions only ever memoise keys (j, i) with j ∈ S^D_i, so this
	// ranking lets the engine replace per-run map[pair] memos with
	// reusable slices.
	pairOffset []int
}

// BuildSets computes contention domains and the direct/indirect
// interference sets for every flow of the system.
func BuildSets(sys *traffic.System) *Sets {
	n := sys.NumFlows()
	cd := make([][]noc.Route, n)
	// Link membership maps for fast intersection.
	member := make([]map[noc.LinkID]struct{}, n)
	for i := 0; i < n; i++ {
		r := sys.Route(i)
		m := make(map[noc.LinkID]struct{}, r.Len())
		for _, l := range r {
			m[l] = struct{}{}
		}
		member[i] = m
	}
	for i := 0; i < n; i++ {
		cd[i] = make([]noc.Route, n)
	}
	for i := 0; i < n; i++ {
		ri := sys.Route(i)
		for j := i + 1; j < n; j++ {
			var cdi noc.Route
			for _, l := range ri {
				if _, ok := member[j][l]; ok {
					cdi = append(cdi, l)
				}
			}
			if cdi != nil {
				cd[i][j] = cdi
				// The same set ordered along route_j.
				cdj := make(noc.Route, 0, len(cdi))
				for _, l := range sys.Route(j) {
					if _, ok := member[i][l]; ok {
						cdj = append(cdj, l)
					}
				}
				cd[j][i] = cdj
			}
		}
	}
	return deriveSets(sys, cd)
}

// deriveSets computes the priority-dependent structures (direct and
// indirect sets, pair ranks) from a contention-domain matrix. The matrix
// itself depends only on routes, so a priority reassignment can reuse it
// wholesale and a single re-routed flow only needs its own row and
// column refreshed — the basis of the incremental engine's cheap
// structural edits (BuildSets at n=400 costs about as much as a full IBN
// analysis, so rebuilding it per edit would forfeit the speedup).
//
// The rows of cd are adopted, not copied: callers hand over a matrix
// they will not mutate afterwards.
func deriveSets(sys *traffic.System, cd [][]noc.Route) *Sets {
	n := sys.NumFlows()
	s := &Sets{
		sys:      sys,
		cd:       cd,
		direct:   make([][]int, n),
		indirect: make([][]int, n),
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if j != i && sys.HigherPriority(j, i) && len(s.cd[i][j]) > 0 {
				s.direct[i] = append(s.direct[i], j)
			}
		}
	}
	// Epoch-stamped scratch arrays instead of per-flow maps: deriveSets
	// reruns on every structural edit of the incremental engine (priority
	// swaps, re-mappings), where the map-based pass dominated the Apply
	// cost at n=400.
	inDirect := make([]int, n)
	seen := make([]int, n)
	for i := 0; i < n; i++ {
		ep := i + 1
		for _, j := range s.direct[i] {
			inDirect[j] = ep
		}
		count := 0
		for _, j := range s.direct[i] {
			for _, k := range s.direct[j] {
				if k != i && inDirect[k] != ep && seen[k] != ep {
					seen[k] = ep
					count++
				}
			}
		}
		if count > 0 {
			s.indirect[i] = make([]int, 0, count)
			for k := 0; k < n; k++ {
				if seen[k] == ep {
					s.indirect[i] = append(s.indirect[i], k)
				}
			}
		}
	}
	s.pairOffset = make([]int, n+1)
	for i := 0; i < n; i++ {
		s.pairOffset[i+1] = s.pairOffset[i] + len(s.direct[i])
	}
	return s
}

// cdPair intersects two routes: the shared links ordered along ri and,
// when non-empty, the same set ordered along rj (BuildSets' convention).
func cdPair(ri, rj noc.Route) (cdi, cdj noc.Route) {
	member := make(map[noc.LinkID]struct{}, rj.Len())
	for _, l := range rj {
		member[l] = struct{}{}
	}
	for _, l := range ri {
		if _, ok := member[l]; ok {
			cdi = append(cdi, l)
		}
	}
	if cdi == nil {
		return nil, nil
	}
	mi := make(map[noc.LinkID]struct{}, ri.Len())
	for _, l := range ri {
		mi[l] = struct{}{}
	}
	cdj = make(noc.Route, 0, len(cdi))
	for _, l := range rj {
		if _, ok := mi[l]; ok {
			cdj = append(cdj, l)
		}
	}
	return cdi, cdj
}

// rebind returns a view of the sets over sys. Only valid when sys has
// the same routes and priorities as the original system (parameter-only
// edits: period, deadline, jitter, payload, buffer depth), in which case
// every derived structure is route- and priority-identical.
func (s *Sets) rebind(sys *traffic.System) *Sets {
	c := *s
	c.sys = sys
	return &c
}

// withPriorities re-derives the priority-dependent structures over sys,
// reusing the contention-domain matrix (routes unchanged).
func (s *Sets) withPriorities(sys *traffic.System) *Sets {
	return deriveSets(sys, s.cd)
}

// withRoute refreshes row and column k of the contention-domain matrix
// (flow k was re-mapped in sys) and re-derives the sets. Rows whose
// entry against k stays empty are shared outright with the original
// matrix (rows are never mutated after derivation); only rows the
// re-map actually touches are copied.
func (s *Sets) withRoute(sys *traffic.System, k int) *Sets {
	n := sys.NumFlows()
	cd := make([][]noc.Route, n)
	rk := sys.Route(k)
	row := make([]noc.Route, n)
	for i := 0; i < n; i++ {
		if i == k {
			cd[i] = row
			continue
		}
		cdi, cdk := cdPair(sys.Route(i), rk)
		row[i] = cdk
		if cdi == nil && s.cd[i][k] == nil {
			cd[i] = s.cd[i]
			continue
		}
		cp := make([]noc.Route, n)
		copy(cp, s.cd[i])
		cp[k] = cdi
		cd[i] = cp
	}
	return deriveSets(sys, cd)
}

// withFlowAppended extends the matrix with the new last flow of sys and
// re-derives the sets. Rows of the surviving flows are extended copies;
// their existing entries are shared.
func (s *Sets) withFlowAppended(sys *traffic.System) *Sets {
	n := sys.NumFlows()
	k := n - 1
	cd := make([][]noc.Route, n)
	rk := sys.Route(k)
	row := make([]noc.Route, n)
	for i := 0; i < k; i++ {
		cp := make([]noc.Route, n)
		copy(cp, s.cd[i])
		cdi, cdk := cdPair(sys.Route(i), rk)
		cp[k] = cdi
		row[i] = cdk
		cd[i] = cp
	}
	cd[k] = row
	return deriveSets(sys, cd)
}

// withFlowRemoved drops row and column k from the matrix (flow k was
// removed from sys; flows above k shift down by one) and re-derives the
// sets.
func (s *Sets) withFlowRemoved(sys *traffic.System, k int) *Sets {
	n := sys.NumFlows()
	cd := make([][]noc.Route, n)
	for i := 0; i < n; i++ {
		oi := i
		if oi >= k {
			oi++
		}
		cp := make([]noc.Route, n)
		copy(cp, s.cd[oi][:k])
		copy(cp[k:], s.cd[oi][k+1:])
		cd[i] = cp
	}
	return deriveSets(sys, cd)
}

// dependencyEdges calls fn(i, j) for every dependency edge of the
// interference graph: j ∈ S^D_i ∪ S^I_i, i.e. flow i's bound depends on
// flow j's parameters. This is the single derivation of the graph that
// both consumers share: the incremental engine's reverse-reachability
// frontier (reverseReach) walks the edges backwards, and Clusters takes
// their undirected closure — so a future change to what counts as a
// dependency cannot desynchronise the two.
func (s *Sets) dependencyEdges(fn func(i, j int)) {
	for i := range s.direct {
		for _, j := range s.direct[i] {
			fn(i, j)
		}
		for _, j := range s.indirect[i] {
			fn(i, j)
		}
	}
}

// Clusters returns the connected components of the interference graph
// over S^D ∪ S^I: flows i and j land in the same cluster exactly when a
// chain of dependency edges links them. Flows in different clusters
// share no links with each other — directly or transitively — so
// nothing couples them in either the analyses or the simulator: link
// arbitration involves only the flows routed over the link, and
// credit-based flow control only couples flows through shared links.
// The explicit-state backend (internal/exhaustive) exploits this to
// factorise its phasing grid into one independent sub-exploration per
// cluster.
//
// Each cluster is sorted by flow index and the clusters themselves are
// ordered by their smallest member, so the decomposition is
// deterministic. Flows with no dependency edges form singleton
// clusters.
func (s *Sets) Clusters() [][]int {
	n := len(s.direct)
	// Union-find over flow indices; dependency edges are the union ops.
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	s.dependencyEdges(func(i, j int) {
		ri, rj := find(i), find(j)
		if ri != rj {
			if ri < rj {
				parent[rj] = ri
			} else {
				parent[ri] = rj
			}
		}
	})
	// Roots are canonical smallest members, so grouping by root and
	// appending in index order yields the documented ordering.
	byRoot := make(map[int][]int, n)
	roots := make([]int, 0, n)
	for i := 0; i < n; i++ {
		r := find(i)
		if _, ok := byRoot[r]; !ok {
			roots = append(roots, r)
		}
		byRoot[r] = append(byRoot[r], i)
	}
	sort.Ints(roots)
	out := make([][]int, 0, len(roots))
	for _, r := range roots {
		out = append(out, byRoot[r])
	}
	return out
}

// numPairs returns the total number of (direct interferer, flow) pairs —
// the size of the engine's memo arenas.
func (s *Sets) numPairs() int { return s.pairOffset[len(s.pairOffset)-1] }

// pairRank maps a memo key (j, i), with j a direct interferer of τi, to
// its dense rank in [0, numPairs()).
func (s *Sets) pairRank(j, i int) int {
	d := s.direct[i]
	k := sort.SearchInts(d, j)
	if k == len(d) || d[k] != j {
		panic("core: memo key is not a direct-interference pair")
	}
	return s.pairOffset[i] + k
}

// CD returns the contention domain cd_ij (links shared by route_i and
// route_j), ordered along route_i. The result is nil when the flows do
// not share links. The returned slice must not be modified.
func (s *Sets) CD(i, j int) noc.Route { return s.cd[i][j] }

// Direct returns S^D_i, the direct interference set of flow i: every
// flow with a higher priority and a non-empty contention domain with τi.
func (s *Sets) Direct(i int) []int { return s.direct[i] }

// Indirect returns S^I_i, the indirect interference set of flow i: flows
// that interfere with a member of S^D_i but not with τi itself.
func (s *Sets) Indirect(i int) []int { return s.indirect[i] }

// orderRange returns the smallest and largest order (1-based position)
// that the links of cd occupy along route r. cd must be non-empty and a
// subset of r.
func orderRange(r noc.Route, cd noc.Route) (lo, hi int) {
	lo, hi = 0, 0
	for _, l := range cd {
		o := r.Order(l)
		if o == 0 {
			continue
		}
		if lo == 0 || o < lo {
			lo = o
		}
		if o > hi {
			hi = o
		}
	}
	return lo, hi
}

// Upstream returns S^upj_Ii: the flows τk ∈ S^I_i ∩ S^D_j whose
// contention domain with τj lies strictly upstream (along route_j) of
// cd_ij, i.e. order(last(cd_jk), route_j) < order(first(cd_ij), route_j).
// Such flows delay τj before it reaches the links it shares with τi.
func (s *Sets) Upstream(i, j int) []int {
	return s.partition(i, j, true)
}

// Downstream returns S^downj_Ii: the flows τk ∈ S^I_i ∩ S^D_j whose
// contention domain with τj lies strictly downstream (along route_j) of
// cd_ij, i.e. order(first(cd_jk), route_j) > order(last(cd_ij), route_j).
// Such flows block τj after it has passed τi's links — the trigger of
// multi-point progressive blocking.
func (s *Sets) Downstream(i, j int) []int {
	return s.partition(i, j, false)
}

func (s *Sets) partition(i, j int, upstream bool) []int {
	cdij := s.cd[j][i] // cd_ij ordered along route_j
	if len(cdij) == 0 {
		return nil
	}
	rj := s.sys.Route(j)
	ijLo, ijHi := orderRange(rj, cdij)
	var out []int
	for _, k := range s.indirect[i] {
		if !s.sys.HigherPriority(k, j) {
			continue // k ∉ S^D_j
		}
		cdjk := s.cd[j][k]
		if len(cdjk) == 0 {
			continue // k ∉ S^D_j
		}
		jkLo, jkHi := orderRange(rj, cdjk)
		if upstream {
			if jkHi < ijLo {
				out = append(out, k)
			}
		} else {
			if jkLo > ijHi {
				out = append(out, k)
			}
		}
	}
	return out
}

// BufferedInterference evaluates Equation 6 of the paper: the maximum
// buffered interference bi_ij that a single downstream hit on τj can
// replay onto τi, bounded by the buffer capacity inside their contention
// domain,
//
//	bi_ij = buf(Ξ) · linkl(Ξ) · |cd_ij|
//
// bufDepth overrides buf(Ξ) when > 0 (used to compare buffer sizes
// without rebuilding the platform).
func (s *Sets) BufferedInterference(i, j, bufDepth int) noc.Cycles {
	cfg := s.sys.Topology().Config()
	buf := cfg.BufDepth
	if bufDepth > 0 {
		buf = bufDepth
	}
	return noc.Cycles(buf) * cfg.LinkLatency * noc.Cycles(len(s.cd[i][j]))
}
