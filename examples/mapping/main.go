// Mapping: uses the analysis as a design-space-exploration oracle — the
// way the paper's Figure 5 experiment uses it. A small sensor-fusion
// application is mapped many times onto a 3x3 mesh; each mapping is
// accepted or rejected by IBN and XLWX, showing that the tighter analysis
// certifies more of the design space (and which mapping minimises the
// worst normalised slack).
package main

import (
	"fmt"
	"log"
	"math/rand"

	"wormnoc"
)

// The application: a task graph with periods (cycles), message lengths
// (flits) and task-level endpoints.
type appFlow struct {
	name     string
	src, dst int // task indices
	period   wormnoc.Cycles
	length   int
}

const numTasks = 8

var taskNames = [numTasks]string{
	"camera", "lidar", "preproc", "fusion", "detect", "plan", "actuate", "log",
}

var app = []appFlow{
	{"frame", 0, 2, 5_000, 4096},
	{"cloud", 1, 3, 10_000, 2048},
	{"feat", 2, 3, 6_000, 1024},
	{"env", 3, 4, 6_000, 512},
	{"objs", 4, 5, 6_000, 256},
	{"traj", 5, 6, 2_500, 64},
	{"dump", 3, 7, 25_000, 2048},
}

// build instantiates the network flow set for one task→node mapping,
// skipping co-mapped (local) communications.
func build(topo *wormnoc.Topology, mapping [numTasks]wormnoc.NodeID) (*wormnoc.System, error) {
	var flows []wormnoc.Flow
	for _, af := range app {
		src, dst := mapping[af.src], mapping[af.dst]
		if src == dst {
			continue
		}
		flows = append(flows, wormnoc.Flow{
			Name: af.name, Period: af.period, Deadline: af.period,
			Length: af.length, Src: src, Dst: dst,
		})
	}
	if len(flows) == 0 {
		return nil, nil // fully co-mapped: trivially schedulable
	}
	// Rate-monotonic priorities.
	for rank := range flows {
		best := rank
		for j := rank + 1; j < len(flows); j++ {
			if flows[j].Period < flows[best].Period {
				best = j
			}
		}
		flows[rank], flows[best] = flows[best], flows[rank]
		flows[rank].Priority = rank + 1
	}
	return wormnoc.NewSystem(topo, flows)
}

func main() {
	topo, err := wormnoc.NewMesh(3, 3, wormnoc.RouterConfig{
		BufDepth: 2, LinkLatency: 1, RouteLatency: 0,
	})
	if err != nil {
		log.Fatal(err)
	}

	const trials = 400
	rng := rand.New(rand.NewSource(7))
	okIBN, okXLWX := 0, 0
	bestSlack := -1.0
	var bestMapping [numTasks]wormnoc.NodeID

	for trial := 0; trial < trials; trial++ {
		var mapping [numTasks]wormnoc.NodeID
		for t := range mapping {
			mapping[t] = wormnoc.NodeID(rng.Intn(topo.NumNodes()))
		}
		sys, err := build(topo, mapping)
		if err != nil {
			log.Fatal(err)
		}
		if sys == nil {
			okIBN++
			okXLWX++
			continue
		}
		sets := wormnoc.BuildSets(sys)
		ibn, err := wormnoc.AnalyzeWithSets(sys, sets, wormnoc.AnalysisOptions{Method: wormnoc.IBN})
		if err != nil {
			log.Fatal(err)
		}
		xlwx, err := wormnoc.AnalyzeWithSets(sys, sets, wormnoc.AnalysisOptions{Method: wormnoc.XLWX})
		if err != nil {
			log.Fatal(err)
		}
		if xlwx.Schedulable {
			okXLWX++
		}
		if ibn.Schedulable {
			okIBN++
			// Worst normalised slack (D-R)/D across flows: a robustness
			// figure of merit for picking among certified mappings.
			slack := 1.0
			for i := 0; i < sys.NumFlows(); i++ {
				s := float64(sys.Flow(i).Deadline-ibn.R(i)) / float64(sys.Flow(i).Deadline)
				if s < slack {
					slack = s
				}
			}
			if slack > bestSlack {
				bestSlack = slack
				bestMapping = mapping
			}
		}
	}

	fmt.Printf("random mappings of an %d-task app onto a 3x3 NoC: %d trials\n\n", numTasks, trials)
	fmt.Printf("certified schedulable by XLWX: %4d (%.1f%%)\n", okXLWX, 100*float64(okXLWX)/trials)
	fmt.Printf("certified schedulable by IBN:  %4d (%.1f%%)\n", okIBN, 100*float64(okIBN)/trials)
	fmt.Printf("\nIBN certifies %.1f%% more of the design space than XLWX.\n",
		100*float64(okIBN-okXLWX)/float64(trials))
	fmt.Printf("\nbest IBN-certified mapping (worst slack %.2f):\n", bestSlack)
	for t, n := range bestMapping {
		fmt.Printf("  %-8s -> node %d (%d,%d)\n", taskNames[t], int(n), int(n)%3, int(n)/3)
	}
}
