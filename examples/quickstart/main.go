// Quickstart: declare a platform and a flow set, compute worst-case
// latency bounds with the paper's buffer-aware analysis (IBN), compare
// against the state-of-the-art baseline (XLWX), and cross-check the
// bounds with the cycle-accurate simulator.
package main

import (
	"fmt"
	"log"

	"wormnoc"
)

func main() {
	// A 4x4 mesh with 2-flit virtual-channel buffers, single-cycle links
	// and combinational routing — the configuration of the paper's IBN2
	// curves.
	topo, err := wormnoc.NewMesh(4, 4, wormnoc.RouterConfig{
		BufDepth:     2,
		LinkLatency:  1,
		RouteLatency: 0,
	})
	if err != nil {
		log.Fatal(err)
	}

	// A small mixed workload: a tight control loop, two sensor streams
	// and a bulk video flow. Priority 1 is the highest; deadlines must
	// not exceed periods.
	flows := []wormnoc.Flow{
		{Name: "control", Priority: 1, Period: 2_000, Deadline: 2_000, Length: 32, Src: 0, Dst: 15},
		{Name: "sensorA", Priority: 2, Period: 10_000, Deadline: 10_000, Length: 256, Src: 12, Dst: 3},
		{Name: "sensorB", Priority: 3, Period: 10_000, Deadline: 10_000, Length: 256, Src: 4, Dst: 11},
		{Name: "video", Priority: 4, Period: 40_000, Deadline: 40_000, Length: 4_096, Src: 1, Dst: 14},
	}
	sys, err := wormnoc.NewSystem(topo, flows)
	if err != nil {
		log.Fatal(err)
	}

	// Analyse with the proposed buffer-aware analysis and the baseline,
	// sharing the interference sets between the two runs.
	sets := wormnoc.BuildSets(sys)
	ibn, err := wormnoc.AnalyzeWithSets(sys, sets, wormnoc.AnalysisOptions{Method: wormnoc.IBN})
	if err != nil {
		log.Fatal(err)
	}
	xlwx, err := wormnoc.AnalyzeWithSets(sys, sets, wormnoc.AnalysisOptions{Method: wormnoc.XLWX})
	if err != nil {
		log.Fatal(err)
	}

	// Observe actual latencies for a while with the simulator.
	obs, err := wormnoc.Simulate(sys, wormnoc.SimConfig{Duration: 200_000})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-8s %8s %8s %10s %10s %10s\n", "flow", "C", "D", "R_IBN", "R_XLWX", "observed")
	for i := range flows {
		fmt.Printf("%-8s %8d %8d %10d %10d %10d\n",
			sys.Flow(i).Name, sys.C(i), sys.Flow(i).Deadline,
			ibn.R(i), xlwx.R(i), obs.WorstLatency[i])
	}
	fmt.Printf("\nIBN:  schedulable = %v\n", ibn.Schedulable)
	fmt.Printf("XLWX: schedulable = %v\n", xlwx.Schedulable)
}
