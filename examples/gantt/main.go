// Gantt: watch multi-point progressive blocking happen, cycle by cycle.
// The simulator traces every flit transfer of the paper's didactic
// scenario and the trace is rendered as an ASCII link-occupancy chart:
// you can see τ2's wormhole freeze under backpressure when τ1 preempts it
// downstream, τ3 slipping through the vacated links, and τ2's buffered
// flits replaying their interference on τ3 afterwards.
package main

import (
	"bytes"
	"fmt"
	"log"

	"wormnoc"
)

func main() {
	topo, err := wormnoc.NewMesh(6, 1, wormnoc.RouterConfig{
		BufDepth: 2, LinkLatency: 1, RouteLatency: 0,
	})
	if err != nil {
		log.Fatal(err)
	}
	sys, err := wormnoc.NewSystem(topo, []wormnoc.Flow{
		{Name: "τ1", Priority: 1, Period: 200, Deadline: 200, Length: 60, Src: 4, Dst: 5},
		{Name: "τ2", Priority: 2, Period: 4000, Deadline: 4000, Length: 198, Src: 0, Dst: 5},
		{Name: "τ3", Priority: 3, Period: 6000, Deadline: 6000, Length: 128, Src: 1, Dst: 4},
	})
	if err != nil {
		log.Fatal(err)
	}

	var traceBuf bytes.Buffer
	res, err := wormnoc.Simulate(sys, wormnoc.SimConfig{
		Duration:          600,
		MaxPacketsPerFlow: 4,
		TraceWriter:       &traceBuf,
	})
	if err != nil {
		log.Fatal(err)
	}
	events, err := wormnoc.ParseTrace(&traceBuf)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("The MPB didactic scenario, first 400 cycles, 4 cycles per column:")
	fmt.Println()
	fmt.Print(wormnoc.RenderGantt(sys, events, wormnoc.GanttOptions{To: 400, Width: 100}))
	fmt.Print(wormnoc.FlowLegend(sys))
	fmt.Println(`
How to read it:
 - τ2 (symbol 1) claims the line first; τ3 (2) is blocked behind it.
 - Each release of τ1 (0) preempts τ2 on the r4→r5 / r5→n5 links.
   Backpressure stalls ALL of τ2's flits within ~|cd| cycles, so the
   mid-line links (r1→r2 .. r3→r4) go over to τ3.
 - When τ1 finishes, τ2's flits buffered inside the contention domain
   drain first — the '1' columns reappearing on r1→r2..r3→r4 right after
   each preemption are interference REPLAYED on τ3 by flits that already
   interfered once. That replay, bounded by buf·linkl·|cd| per hit, is
   exactly what the paper's Equation 6 charges.`)
	fmt.Printf("\nobserved latencies: τ1=%d τ2=%d τ3=%d (C: %d, %d, %d)\n",
		res.WorstLatency[0], res.WorstLatency[1], res.WorstLatency[2],
		sys.C(0), sys.C(1), sys.C(2))
}
