// Priorities: compare priority-assignment policies under the buffer-aware
// analysis. The paper uses rate-monotonic assignment "despite
// sub-optimality"; this example shows a constrained-deadline workload
// where RM fails, deadline-monotonic helps, and the Audsley-style search
// (using IBN as its oracle) recovers full schedulability — plus the
// term-by-term explanation of why RM failed.
package main

import (
	"fmt"
	"log"

	"wormnoc"
)

func main() {
	topo, err := wormnoc.NewMesh(4, 4, wormnoc.RouterConfig{
		BufDepth: 2, LinkLatency: 1, RouteLatency: 0,
	})
	if err != nil {
		log.Fatal(err)
	}

	// A gateway column: bulk sensor streams and a tight actuation
	// message funnel through the x=0 column toward node 12.
	flows := []wormnoc.Flow{
		{Name: "bulkA", Period: 5_000, Deadline: 5_000, Length: 1500, Src: 0, Dst: 12},
		{Name: "bulkB", Period: 6_000, Deadline: 6_000, Length: 1500, Src: 1, Dst: 12},
		{Name: "tight", Period: 9_000, Deadline: 900, Length: 64, Src: 4, Dst: 12},
		{Name: "telemetry", Period: 20_000, Deadline: 20_000, Length: 512, Src: 5, Dst: 12},
	}

	report := func(policy string, fs []wormnoc.Flow) *wormnoc.AnalysisResult {
		sys, err := wormnoc.NewSystem(topo, fs)
		if err != nil {
			log.Fatal(err)
		}
		res, err := wormnoc.Analyze(sys, wormnoc.AnalysisOptions{Method: wormnoc.IBN})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s:", policy)
		for i := 0; i < sys.NumFlows(); i++ {
			f := sys.Flow(i)
			mark := "✓"
			if res.Flows[i].Status != wormnoc.Schedulable {
				mark = "✗"
			}
			fmt.Printf("  %s P%d %s", f.Name, f.Priority, mark)
		}
		if res.Schedulable {
			fmt.Print("   → SCHEDULABLE")
		} else {
			fmt.Print("   → not schedulable")
		}
		fmt.Println()
		return res
	}

	rm := make([]wormnoc.Flow, len(flows))
	copy(rm, flows)
	wormnoc.AssignRateMonotonic(rm)
	report("rate-monotonic (paper)", rm)

	dm := make([]wormnoc.Flow, len(flows))
	copy(dm, flows)
	wormnoc.AssignDeadlineMonotonic(dm)
	report("deadline-monotonic", dm)

	auds, ok, err := wormnoc.AssignAudsley(topo, flows, wormnoc.AnalysisOptions{Method: wormnoc.IBN})
	if err != nil {
		log.Fatal(err)
	}
	report(fmt.Sprintf("Audsley search (found=%v)", ok), auds)

	// Explain the RM failure term by term.
	sys, err := wormnoc.NewSystem(topo, rm)
	if err != nil {
		log.Fatal(err)
	}
	sets := wormnoc.BuildSets(sys)
	for i := 0; i < sys.NumFlows(); i++ {
		if sys.Flow(i).Name != "tight" {
			continue
		}
		b, err := wormnoc.Explain(sys, sets, wormnoc.AnalysisOptions{Method: wormnoc.IBN}, i)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("\nwhy RM fails the tight flow:")
		fmt.Print(b)
	}
}
